package vlp

// Benchmarks: one per paper figure (the regenerator code path at a small
// calibrated size — run cmd/experiments for the full series) plus the
// ablation benches called out in DESIGN.md and micro-benchmarks of the
// hot substrates.

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/assign"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/geoi"
	"repro/internal/lp"
	"repro/internal/planar"
	"repro/internal/realworld"
	"repro/internal/roadnet"
	"repro/internal/serial"
	"repro/internal/server"
	"repro/internal/trace"
)

// benchEnv is a lazily-built shared fixture: a small city, its
// partition, fleet traces and priors.
type benchEnv struct {
	g     *roadnet.Graph
	part  *discretize.Partition
	prior []float64
	prob  *core.Problem
	mech  *core.Mechanism
}

var (
	benchOnce sync.Once
	bench     benchEnv
)

func benchSetup(b *testing.B) *benchEnv {
	b.Helper()
	benchOnce.Do(func() {
		rng := rand.New(rand.NewSource(77))
		bench.g = roadnet.Grid(rng, roadnet.GridConfig{
			Rows: 3, Cols: 3, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.15,
		})
		part, err := discretize.New(bench.g, 0.15)
		if err != nil {
			panic(err)
		}
		bench.part = part
		traces, err := trace.Simulate(rng, bench.g, trace.SimConfig{
			Vehicles: 12, Duration: 900, RecordEvery: 7,
			SpeedKmh: 30, CenterBias: 1, DropoutProb: 0.2,
		})
		if err != nil {
			panic(err)
		}
		bench.prior = trace.PriorFromTraces(part, traces, 0.5)
		prob, err := core.NewProblem(part, core.Config{
			Epsilon: 5, PriorP: bench.prior, PriorQ: bench.prior,
		})
		if err != nil {
			panic(err)
		}
		bench.prob = prob
		sol, err := core.SolveCG(prob, core.CGOptions{Xi: -0.1, RelGap: 0.05})
		if err != nil {
			panic(err)
		}
		bench.mech = sol.Mechanism
	})
	return &bench
}

// --- Per-figure benches -------------------------------------------------

func BenchmarkFig09DatasetStats(b *testing.B) {
	e := benchSetup(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traces, err := trace.Simulate(rng, e.g, trace.SimConfig{
			Vehicles: 12, Duration: 600, RecordEvery: 7, SpeedKmh: 30, CenterBias: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		trace.Stats(traces)
	}
}

func BenchmarkFig10LowerBound(b *testing.B) {
	e := benchSetup(b)
	for i := 0; i < b.N; i++ {
		sol, err := core.SolveCG(e.prob, core.CGOptions{Xi: 0, RelGap: 0.02})
		if err != nil {
			b.Fatal(err)
		}
		if sol.LowerBound > sol.ETDD+1e-9 {
			b.Fatal("bound above achieved quality loss")
		}
	}
}

func BenchmarkFig11VsPlanar(b *testing.B) {
	e := benchSetup(b)
	for i := 0; i < b.N; i++ {
		ours, err := core.SolveCG(e.prob, core.CGOptions{Xi: -0.1, RelGap: 0.05})
		if err != nil {
			b.Fatal(err)
		}
		twoDb, err := planar.Solve2D(e.part, 5, 0, e.prior, planar.Options{
			CG: core.CGOptions{Xi: -0.1, RelGap: 0.05},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := attack.NewBayes(ours.Mechanism, e.prior); err != nil {
			b.Fatal(err)
		}
		if _, err := attack.NewBayes(twoDb.Mechanism, e.prior); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12EpsilonSweep(b *testing.B) {
	e := benchSetup(b)
	for i := 0; i < b.N; i++ {
		for _, eps := range []float64{2, 8} {
			pr, err := core.NewProblem(e.part, core.Config{
				Epsilon: eps, PriorP: e.prior, PriorQ: e.prior,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.SolveCG(pr, core.CGOptions{Xi: -0.1, RelGap: 0.05}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig13aConstraintReduction(b *testing.B) {
	e := benchSetup(b)
	aux := e.part.AuxGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red := geoi.Reduce(e.part, aux, 0)
		if len(red.Pairs) == 0 {
			b.Fatal("no reduced pairs")
		}
	}
}

func BenchmarkFig13bConvergence(b *testing.B) {
	e := benchSetup(b)
	for i := 0; i < b.N; i++ {
		iters := 0
		_, err := core.SolveCG(e.prob, core.CGOptions{
			Xi: 0, RelGap: 0.01,
			OnIteration: func(int, core.CGIteration) { iters++ },
		})
		if err != nil {
			b.Fatal(err)
		}
		if iters == 0 {
			b.Fatal("no iterations observed")
		}
	}
}

func BenchmarkFig13cdXiSweep(b *testing.B) {
	e := benchSetup(b)
	for i := 0; i < b.N; i++ {
		for _, xi := range []float64{-0.5, -0.1} {
			if _, err := core.SolveCG(e.prob, core.CGOptions{Xi: xi}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig13efApproxRatio(b *testing.B) {
	e := benchSetup(b)
	for i := 0; i < b.N; i++ {
		sol, err := core.SolveCG(e.prob, core.CGOptions{Xi: 0, RelGap: 0.01})
		if err != nil {
			b.Fatal(err)
		}
		_ = sol.ApproxRatio()
	}
}

func BenchmarkFig14Assignment(b *testing.B) {
	e := benchSetup(b)
	rng := rand.New(rand.NewSource(14))
	k := e.part.K()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vehicles := make([]int, 10)
		tasks := make([]int, 6)
		for j := range vehicles {
			vehicles[j] = rng.Intn(k)
		}
		for j := range tasks {
			tasks[j] = rng.Intn(k)
		}
		est := make([][]float64, len(tasks))
		for t, task := range tasks {
			est[t] = make([]float64, len(vehicles))
			for v, veh := range vehicles {
				rep := e.mech.SampleInterval(rng, veh)
				est[t][v] = e.part.MidDist(rep, task)
			}
		}
		if _, _, err := assign.Hungarian(est); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15HMM(b *testing.B) {
	e := benchSetup(b)
	rng := rand.New(rand.NewSource(15))
	k := e.part.K()
	trans := attack.LearnTransitions(k, [][]int{{0, 1, 2, 3, 2, 1}}, 0.01)
	hmm, err := attack.NewHMM(e.mech, e.prior, trans)
	if err != nil {
		b.Fatal(err)
	}
	reports := make([]int, 40)
	for i := range reports {
		reports[i] = rng.Intn(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := hmm.Viterbi(reports); len(got) != len(reports) {
			b.Fatal("bad viterbi output")
		}
	}
}

func benchPilot(b *testing.B, g *roadnet.Graph) {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	cfg := realworld.Config{
		Delta: 0.3, Epsilon: 5, Tasks: 4, Groups: 2,
		ReportEvery: 25, DriveTime: 300,
		CG: core.CGOptions{Xi: -0.2, RelGap: 0.1, MaxIterations: 10},
	}
	for i := 0; i < b.N; i++ {
		if _, err := realworld.Run(rng, g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17Pilot(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 3, Spacing: 0.3, OneWayFrac: 0.4})
	benchPilot(b, g)
}

func BenchmarkFig19Regions(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	a := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.5})
	bb := roadnet.Grid(rng, roadnet.GridConfig{Rows: 3, Cols: 3, Spacing: 0.15, OneWayFrac: 0.8})
	for i := 0; i < b.N; i++ {
		benchPilotOnce(b, a)
		benchPilotOnce(b, bb)
	}
}

func benchPilotOnce(b *testing.B, g *roadnet.Graph) {
	b.Helper()
	rng := rand.New(rand.NewSource(20))
	cfg := realworld.Config{
		Delta: 0.25, Epsilon: 5, Tasks: 4, Groups: 1,
		ReportEvery: 25, DriveTime: 200,
		CG: core.CGOptions{Xi: -0.2, RelGap: 0.1, MaxIterations: 8},
	}
	if _, err := realworld.Run(rng, g, cfg); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig20TaskSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 3, Spacing: 0.3})
	cfg := realworld.Config{
		Delta: 0.3, Epsilon: 5, Tasks: 4, Groups: 1,
		ReportEvery: 25, DriveTime: 200,
		CG: core.CGOptions{Xi: -0.2, RelGap: 0.1, MaxIterations: 8},
	}
	pilot, err := realworld.Run(rng, g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := core.NewProblem(pilot.Mechanism.Part, core.Config{Epsilon: cfg.Epsilon})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{4, 8} {
			c := cfg
			c.Tasks = n
			if _, err := realworld.RunGroup(rng, pr, pilot.Mechanism, c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig21VsPlanarPilot(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 3, Spacing: 0.3, OneWayFrac: 0.4})
	part, err := discretize.New(g, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planar.Solve2D(part, 5, 0, nil, planar.Options{
			CG: core.CGOptions{Xi: -0.2, RelGap: 0.1, MaxIterations: 8},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTradeoffBound(b *testing.B) {
	e := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if v := e.prob.TradeoffLowerBound(5); v < 0 {
			b.Fatal("negative bound")
		}
	}
}

// --- Ablation benches ---------------------------------------------------

func BenchmarkAblationConstraintReduction(b *testing.B) {
	rng := rand.New(rand.NewSource(30))
	g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3, OneWayFrac: 0.5})
	part, err := discretize.New(g, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := core.NewProblem(part, core.Config{Epsilon: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full-constraints", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveDirect(pr, core.DirectOptions{FullConstraints: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveDirect(pr, core.DirectOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationDirectVsCG(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3, OneWayFrac: 0.5})
	part, err := discretize.New(g, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := core.NewProblem(part, core.Config{Epsilon: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveDirect(pr, core.DirectOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveCG(pr, core.CGOptions{Xi: 0}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationParallelPricing(b *testing.B) {
	e := benchSetup(b)
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveCG(e.prob, core.CGOptions{Xi: -0.1, RelGap: 0.05}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveCG(e.prob, core.CGOptions{Xi: -0.1, RelGap: 0.05, Sequential: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationSeeding(b *testing.B) {
	e := benchSetup(b)
	b.Run("rich-seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveCG(e.prob, core.CGOptions{Xi: -0.1, RelGap: 0.05}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plain-seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveCG(e.prob, core.CGOptions{Xi: -0.1, RelGap: 0.05, PlainSeed: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Warm-start benches ---------------------------------------------------

// cgBenchSizes are the tracked problem sizes for the warm-vs-cold solver
// benchmarks (cmd/vlpbench runs the same set and emits BENCH_solver.json).
var cgBenchSizes = []struct {
	Name       string
	Rows, Cols int
	Delta      float64
}{
	{"K12", 2, 2, 0.3},
	{"K24", 2, 3, 0.2},
	{"K44", 3, 3, 0.15},
}

func cgBenchProblem(rows, cols int, delta float64) (*core.Problem, error) {
	rng := rand.New(rand.NewSource(77))
	g := roadnet.Grid(rng, roadnet.GridConfig{
		Rows: rows, Cols: cols, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.15,
	})
	part, err := discretize.New(g, delta)
	if err != nil {
		return nil, err
	}
	return core.NewProblem(part, core.Config{Epsilon: 5})
}

// BenchmarkSolveCG compares the persistent warm-started pipeline (the
// default) against the rebuild-everything baseline (ColdRestart) at the
// tracked sizes. The acceptance bar for the warm-start work is warm ≥2×
// over cold at the largest size, with allocations down ≥10×.
func BenchmarkSolveCG(b *testing.B) {
	for _, size := range cgBenchSizes {
		pr, err := cgBenchProblem(size.Rows, size.Cols, size.Delta)
		if err != nil {
			b.Fatal(err)
		}
		opts := core.CGOptions{Xi: 0, RelGap: 0.01}
		b.Run(size.Name+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o := opts
				o.ColdRestart = true
				if _, err := core.SolveCG(pr, o); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(size.Name+"/warm", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveCG(pr, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate micro-benches ---------------------------------------------

func BenchmarkSimplexCoveringLP(b *testing.B) {
	rng := rand.New(rand.NewSource(40))
	p := lp.NewProblem(60)
	for j := 0; j < 60; j++ {
		p.SetObjectiveCoeff(j, 1+rng.Float64())
	}
	for i := 0; i < 40; i++ {
		terms := make([]lp.Term, 0, 12)
		for j := 0; j < 60; j++ {
			if rng.Float64() < 0.2 {
				terms = append(terms, lp.Term{Var: j, Coef: 0.5 + rng.Float64()})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, lp.Term{Var: i % 60, Coef: 1})
		}
		p.AddConstraint(terms, lp.GE, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := lp.Solve(p, lp.Options{})
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("%v %v", err, sol.Status)
		}
	}
}

func BenchmarkIPMCoveringLP(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	p := lp.NewProblem(60)
	for j := 0; j < 60; j++ {
		p.SetObjectiveCoeff(j, 1+rng.Float64())
	}
	for i := 0; i < 40; i++ {
		terms := make([]lp.Term, 0, 12)
		for j := 0; j < 60; j++ {
			if rng.Float64() < 0.2 {
				terms = append(terms, lp.Term{Var: j, Coef: 0.5 + rng.Float64()})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, lp.Term{Var: i % 60, Coef: 1})
		}
		p.AddConstraint(terms, lp.GE, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := lp.SolveIPM(p, lp.Options{})
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("%v %v", err, sol.Status)
		}
	}
}

func BenchmarkAllPairsDijkstra(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	g := roadnet.RomeLike(rng, roadnet.DefaultRomeLike())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllPairs()
	}
}

func BenchmarkHungarian20x30(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	cost := make([][]float64, 20)
	for i := range cost {
		cost[i] = make([]float64, 30)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 10
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := assign.Hungarian(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCostMatrix(b *testing.B) {
	e := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildCosts(e.part, e.prior, e.prior)
	}
}

func BenchmarkBayesAttack(b *testing.B) {
	e := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv, err := attack.NewBayes(e.mech, e.prior)
		if err != nil {
			b.Fatal(err)
		}
		_ = adv.AdvError()
	}
}

func BenchmarkMechanismSample(b *testing.B) {
	e := benchSetup(b)
	rng := rand.New(rand.NewSource(44))
	loc := roadnet.RandomLocation(rng, e.g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.mech.Sample(rng, loc)
	}
}

// --- Obfuscation service benches -----------------------------------------

func benchServeSpec(e *benchEnv) *serial.SolveSpec {
	return &serial.SolveSpec{
		Network: serial.FromGraph(e.g),
		Delta:   0.15,
		Epsilon: 5,
		Prior:   e.prior,
	}
}

func benchServePost(b *testing.B, h http.Handler, path string, payload []byte) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(payload))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("%s returned %d: %s", path, w.Code, w.Body.String())
	}
}

// BenchmarkServeColdSolve measures the cold path: a fresh vlpserved
// instance receiving a spec it has never seen, forcing a full CG solve.
func BenchmarkServeColdSolve(b *testing.B) {
	e := benchSetup(b)
	payload, err := json.Marshal(benchServeSpec(e))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := server.New(context.Background(), server.Config{CacheSize: 1, MaxSolves: 1})
		benchServePost(b, srv.Handler(), "/solve", payload)
	}
}

// BenchmarkServeObfuscateCached measures the hot path: batched
// obfuscation against an already-cached mechanism. The acceptance bar
// for the service split is this path running ≥100× faster than the
// cold solve above.
func BenchmarkServeObfuscateCached(b *testing.B) {
	e := benchSetup(b)
	spec := benchServeSpec(e)
	srv := server.New(context.Background(), server.Config{CacheSize: 4, MaxSolves: 2, Seed: 7})
	h := srv.Handler()
	warm, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}
	benchServePost(b, h, "/solve", warm)

	rng := rand.New(rand.NewSource(45))
	req := serial.ObfuscateRequest{SolveSpec: *spec}
	for j := 0; j < 16; j++ {
		road := rng.Intn(e.g.NumEdges())
		w := e.g.Edge(roadnet.EdgeID(road)).Weight
		req.Locations = append(req.Locations, serial.Loc{Road: road, FromStart: rng.Float64() * w})
	}
	payload, err := json.Marshal(&req)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServePost(b, h, "/obfuscate", payload)
	}
}

#!/bin/sh
# Tier-1+ gate. The first four commands are the fast tier-1 check
# (build, vet, vlplint, tests); the race pass re-runs every test under
# the race detector and is what guards the concurrent obfuscation
# service (internal/server) and the parallel column-generation pricing.
# Expect the race pass to take a few minutes — internal/core dominates.
#
#   ./ci.sh         full gate
#   ./ci.sh -quick  build + vet + vlplint + lint-suite tests
#                   (pre-push sanity, well under a minute)
set -eux

go build ./...
go vet ./...

# Domain-invariant static analysis: cmd/vlplint enforces the solver's
# safety contracts (Geo-I repair gate, atomic stats, context plumbing,
# float tolerance, chaos-point coverage, kernel determinism, plus
# nilness/shadow) and the whole-program invariants (privtaint: no true
# location reaches a sink unsampled; lockorder: acyclic global lock
# graph including the lease flock; errflow: durable-I/O errors never
# dropped; goctx: every goroutine cancellable or joined). Zero findings
# against the checked-in (empty) baseline is a hard gate; the full
# finding list is emitted as the vlplint.json artifact either way. See
# DESIGN.md "Static analysis" for the invariant catalogue and the
# suppression directive.
go run ./cmd/vlplint -json -baseline lint.baseline.json ./... > vlplint.json || {
    cat vlplint.json
    exit 1
}

if [ "${1:-}" = "-quick" ]; then
    # The lint suite's own tests ride in -quick: the analyzers gate
    # every push, so a broken // want expectation or a regressed taint
    # summary must surface in the pre-push check, not the full gate.
    go test ./internal/lint/...
    exit 0
fi

go test ./...
go test -race ./...

# Chaos gate: the fault-injection suite must hold the Geo-I guarantee
# under injected errors/panics/stalls at every solver site, with the
# race detector watching the degradation ladder's locks — and, for the
# durable store, under injected write/fsync/rename/read failures. The
# breaker and ENOSPC-shed suites guard the two serving-path fault
# latches (blackholed leader proxy, full disk) under -race.
go test -race -run 'TestChaos|TestBreaker' ./internal/server
go test -race -run 'TestStore' ./internal/server ./internal/store

# Kill-and-restart recovery gate: a real vlpserved process is SIGKILLed
# after a solve and again mid-solve; its successor over the same store
# directory must serve the finished mechanism with zero cold solves and
# complete the interrupted one from its checkpoint.
go test -count=1 -run 'TestKillRestartRecovery' ./cmd/vlpserved

# Kill-the-leader failover gate: three real vlpserved processes share a
# store in -fleet mode; the lease-holding leader is SIGKILLed mid-solve
# and a follower must take over within one lease TTL with a bumped
# fencing token, resume the interrupted solve from its checkpoint, and
# keep the remaining follower on the proxy path (zero local cold
# solves). The in-process lease/fence protocol tests run under -race.
go test -count=1 -run 'TestLeaderFailover' ./cmd/vlpserved
go test -race -run 'TestFleet|TestLease' ./internal/server ./internal/store

# Fleet chaos gate: a ~15s seeded vlpchaos run — three real vlpserved
# processes share a store while the harness walks the standard fault
# schedule (disk full, torn writes, stalled fsync, SIGSTOP'd leader,
# blackholed proxy). Hard-fails on any invariant violation: a response
# outside {2xx, 429}, a timeout from a live member, an out-of-domain
# location, a fencing-token regression, a pause that failed to fence
# the old leader out, or a dirty store replay. The emitted report is
# archived as BENCH_chaos.json and re-validated through the strict
# schema gate (chaos.ValidateJSON), mirroring the vlpload smoke.
VLP_CHAOS_OUT="$PWD/BENCH_chaos.json" go test -count=1 -run 'TestChaosSmoke' ./cmd/vlpchaos
go run ./cmd/vlpchaos -check BENCH_chaos.json

# Admission/coalescing gate: the serving-tier invariants under the race
# detector — cached digests keep serving (and are never 429'd) while a
# deliberately slow cold solve holds every solve-pool slot, and a
# same-digest burst inside one coalescing window costs exactly one
# solve. These also run in the -race pass above; the explicit run keeps
# the gate legible and fails fast when the admission layer regresses.
go test -race -run 'TestAdmission|TestServeGate|TestCoalesce' ./internal/server

# Load-harness smoke: a ~5s open-loop vlpload run against an in-process
# vlpserved. Hard-fails on any response outside {2xx, 429} and on a
# BENCH_serve.json that does not pass the checked-in schema check
# (internal/loadgen.ValidateJSON), so the serving path and the
# benchmark artifact format are exercised end-to-end on every gate.
# The fleet variant round-robins a -targets run over a two-member
# shared-store fleet and gates the per_target report breakdown.
go test -count=1 -run 'TestLoadSmoke' ./cmd/vlpload
go test -count=1 -run 'TestLoadFleetSmoke' ./cmd/vlpload

# Presolve-invariance gate: the LP presolve pass is solver-internal and
# must never change a served mechanism. Both column-generation LP shapes
# are irreducible, so presolve must take its zero-reduction aliasing
# path and a fixed instance must solve to bit-identical wire bytes with
# the pass disabled (lp.Options.NoPresolve).
go test -count=1 -run 'TestPresolveInvariant' ./internal/serial

# Allocation-regression gate: the warm-start hot paths (persistent
# master re-solve, persistent pricing subproblems) carry AllocsPerRun
# budgets; run them without -race, whose instrumentation changes alloc
# counts. A failure here means a kernel started allocating per round.
go test -count=1 -run 'Allocs' ./internal/lp ./internal/core

# Fuzz smoke: ten seconds per serial decoder, enough to catch a freshly
# introduced parsing crash without stalling the gate.
go test -fuzz=FuzzNetworkRoundTrip -fuzztime=10s -run '^$' ./internal/serial
go test -fuzz=FuzzMechanismRoundTrip -fuzztime=10s -run '^$' ./internal/serial
go test -fuzz=FuzzStoreDecode -fuzztime=10s -run '^$' ./internal/serial
go test -fuzz=FuzzMPSRoundTrip -fuzztime=10s -run '^$' ./internal/lp

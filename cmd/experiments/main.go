// Command experiments regenerates the paper's evaluation figures.
//
// Usage:
//
//	experiments [-full] [-seed N] [-fig name[,name...]] [-list]
//
// Without -fig it runs every registered figure. -full switches from the
// seconds-scale Quick profile to the paper-proportioned Full profile
// (minutes). Output is the text-table equivalent of each figure's
// series, written to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run the paper-proportioned Full profile (minutes)")
	seed := flag.Int64("seed", 42, "deterministic seed for all experiments")
	figs := flag.String("fig", "", "comma-separated figure names (default: all)")
	list := flag.Bool("list", false, "list figure names and exit")
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}

	cfg := experiments.Config{Scale: experiments.Quick, Seed: *seed}
	if *full {
		cfg.Scale = experiments.Full
	}

	names := experiments.Names()
	if *figs != "" {
		names = strings.Split(*figs, ",")
	}

	exit := 0
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		res, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			exit = 1
			continue
		}
		fmt.Printf("### %s (elapsed %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		for _, t := range res.Tables() {
			fmt.Println(t)
		}
	}
	os.Exit(exit)
}

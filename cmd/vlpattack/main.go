// Command vlpattack audits a solved obfuscation mechanism (from
// vlpsolve) against the paper's threat models: the single-report
// Bayesian optimal-inference attack and, when the spatial correlation of
// a simulated fleet is supplied, the HMM attacks (Viterbi MAP and the
// smoothed-marginal Bayes-optimal variant).
//
// Usage:
//
//	vlpattack -in mech.json [-hmm] [-interval 35] [-duration 1800] [-seed N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/serial"
	"repro/internal/trace"
)

func main() {
	in := flag.String("in", "", "mechanism JSON from vlpsolve; required")
	hmm := flag.Bool("hmm", false, "also run the spatial-correlation (HMM) attacks")
	interval := flag.Float64("interval", 35, "report interval in seconds for the HMM attack")
	duration := flag.Float64("duration", 1800, "simulated drive seconds per vehicle")
	vehicles := flag.Int("vehicles", 25, "fleet size used to learn transitions")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	if *in == "" {
		fatalf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		fatalf("open: %v", err)
	}
	var sm serial.Mechanism
	err = serial.ReadJSON(f, &sm)
	f.Close()
	if err != nil {
		fatalf("decode: %v", err)
	}
	mech, err := sm.ToMechanism()
	if err != nil {
		fatalf("mechanism: %v", err)
	}
	part := mech.Part
	k := part.K()
	prior := core.UniformPrior(k)

	bayes, err := attack.NewBayes(mech, prior)
	if err != nil {
		fatalf("bayes: %v", err)
	}
	fmt.Printf("mechanism: K=%d, ε=%.3g/km, δ=%.3g km, solved ETDD %.4g km\n",
		k, sm.Epsilon, sm.Delta, sm.ETDD)
	fmt.Printf("Bayesian optimal-inference attack: expected error %.4f km\n", bayes.AdvError())

	if !*hmm {
		return
	}
	rng := rand.New(rand.NewSource(*seed))
	traces, err := trace.Simulate(rng, part.G, trace.SimConfig{
		Vehicles: *vehicles, Duration: *duration, RecordEvery: *interval,
		SpeedKmh: 30, CenterBias: 1,
	})
	if err != nil {
		fatalf("simulate: %v", err)
	}
	var seqs [][]int
	for _, tr := range traces[1:] {
		if s := trace.IntervalSequence(part, tr, 1); len(s) > 1 {
			seqs = append(seqs, s)
		}
	}
	trans := attack.LearnTransitions(k, seqs, 1e-3)
	h, err := attack.NewHMM(mech, prior, trans)
	if err != nil {
		fatalf("hmm: %v", err)
	}

	victim := trace.IntervalSequence(part, traces[0], 1)
	if len(victim) < 3 {
		fatalf("victim trace too short; raise -duration")
	}
	reports := make([]int, len(victim))
	for t, i := range victim {
		reports[t] = mech.SampleInterval(rng, i)
	}
	fmt.Printf("HMM attacks over a %d-report victim trajectory (%.0f s interval):\n",
		len(victim), *interval)
	fmt.Printf("  Viterbi (MAP path):         error %.4f km\n", h.SequenceError(victim, reports))
	fmt.Printf("  smoothed marginal (Bayes):  error %.4f km\n", h.MarginalSequenceError(victim, reports))
	naive := 0.0
	for t, i := range victim {
		naive += part.MidDistMin(i, bayes.Estimate(reports[t]))
	}
	fmt.Printf("  independent per-report:     error %.4f km\n", naive/float64(len(victim)))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vlpattack: "+format+"\n", args...)
	os.Exit(1)
}

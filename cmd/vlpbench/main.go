// Command vlpbench runs the tracked solver benchmark suite and emits a
// machine-readable report, so warm-start and kernel regressions show up
// as numbers in version control rather than anecdotes.
//
// The suite is the benchmark set from the repository's bench_test.go:
// BenchmarkSolveCG cold (rebuild-everything baseline) vs warm (persistent
// master + pricing) at the tracked sizes, plus the serving-layer cold
// solve and cached obfuscation paths. For every pair the report records
// ns/op, bytes/op, allocs/op, column-generation rounds, and the
// warm-over-cold speedup factors.
//
// Usage:
//
//	vlpbench [-out BENCH_solver.json] [-benchtime 3x] [-quick]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/lp"
	"repro/internal/roadnet"
	"repro/internal/serial"
	"repro/internal/server"
	"repro/internal/trace"
)

// benchSizes mirrors the cgBenchSizes table in bench_test.go.
// DenseColdNs is the checked-in cold ns/op of the last dense-kernel
// build (BENCH_solver.json before the sparse CSC/CSR + presolve
// kernels landed); the report carries speedup_vs_dense against it so
// the sparse-kernel win stays visible after the baseline is gone.
var benchSizes = []struct {
	Name        string
	Rows, Cols  int
	Delta       float64
	DenseColdNs int64
}{
	{"K12", 2, 2, 0.3, 588986},
	{"K24", 2, 3, 0.2, 209022050},
	{"K44", 3, 3, 0.15, 2086205858},
}

type measurement struct {
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	CGRounds    int     `json:"cg_rounds,omitempty"`
	ETDD        float64 `json:"etdd,omitempty"`
}

// presolveReport is the lp.Presolve reduction on one LP shape: absolute
// removals plus ratios against the original size. Near-zero values are
// the expected (honest) result on CG formulations.
type presolveReport struct {
	Rows        int     `json:"rows"`
	Cols        int     `json:"cols"`
	Nnz         int     `json:"nnz"`
	RowsRemoved int     `json:"rows_removed"`
	ColsRemoved int     `json:"cols_removed"`
	NnzRemoved  int     `json:"nnz_removed"`
	RowRatio    float64 `json:"row_ratio"`
	ColRatio    float64 `json:"col_ratio"`
	NnzRatio    float64 `json:"nnz_ratio"`
}

func toPresolveReport(st lp.PresolveStats) presolveReport {
	return presolveReport{
		Rows: st.Rows, Cols: st.Cols, Nnz: st.Nnz,
		RowsRemoved: st.RowsRemoved, ColsRemoved: st.ColsRemoved, NnzRemoved: st.NnzRemoved,
		RowRatio: intRatio(st.RowsRemoved, st.Rows),
		ColRatio: intRatio(st.ColsRemoved, st.Cols),
		NnzRatio: intRatio(st.NnzRemoved, st.Nnz),
	}
}

func intRatio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

type pairReport struct {
	Size       string      `json:"size"`
	K          int         `json:"k"`
	Cold       measurement `json:"cold"`
	Warm       measurement `json:"warm"`
	Speedup    float64     `json:"speedup"`
	AllocRatio float64     `json:"alloc_ratio"`
	BytesRatio float64     `json:"bytes_ratio"`
	// DenseBaselineNs is the checked-in cold ns/op of the dense kernels;
	// SpeedupVsDense = dense baseline / current cold.
	DenseBaselineNs int64   `json:"dense_baseline_ns"`
	SpeedupVsDense  float64 `json:"speedup_vs_dense"`
	// Presolve reduction ratios for this tier's two LP shapes.
	PresolveMaster  presolveReport `json:"presolve_master"`
	PresolvePricing presolveReport `json:"presolve_pricing"`
}

type serveReport struct {
	ColdSolve           measurement `json:"cold_solve"`
	ObfuscateCached     measurement `json:"obfuscate_cached"`
	SpeedupCachedVsCold float64     `json:"speedup_cached_vs_cold"`
}

type report struct {
	GeneratedUnix int64        `json:"generated_unix"`
	GoVersion     string       `json:"go_version"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	BenchTime     string       `json:"benchtime"`
	SolveCG       []pairReport `json:"solve_cg"`
	Serve         *serveReport `json:"serve,omitempty"`
}

func main() {
	testing.Init() // registers test.benchtime before we set it below
	out := flag.String("out", "BENCH_solver.json", "output report path (- for stdout)")
	benchtime := flag.String("benchtime", "3x", "benchtime passed to each benchmark (e.g. 3x, 2s)")
	quick := flag.Bool("quick", false, "smallest size only, skip the serving benches (CI smoke)")
	flag.Parse()

	if err := flag.CommandLine.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fatalf("bad -benchtime %q: %v", *benchtime, err)
	}

	rep := report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		BenchTime:     *benchtime,
	}

	sizes := benchSizes
	if *quick {
		sizes = sizes[:1]
	}
	for _, size := range sizes {
		pr, err := benchProblem(size.Rows, size.Cols, size.Delta)
		if err != nil {
			fatalf("%s: %v", size.Name, err)
		}
		fmt.Fprintf(os.Stderr, "solvecg %s (K=%d): cold...", size.Name, pr.Part.K())
		cold := measureSolveCG(pr, true)
		fmt.Fprintf(os.Stderr, " %s, warm...", time.Duration(cold.NsPerOp))
		warm := measureSolveCG(pr, false)
		fmt.Fprintf(os.Stderr, " %s\n", time.Duration(warm.NsPerOp))
		psMaster, psPricing := core.PresolveReduction(pr)
		rep.SolveCG = append(rep.SolveCG, pairReport{
			Size:            size.Name,
			K:               pr.Part.K(),
			Cold:            cold,
			Warm:            warm,
			Speedup:         ratio(cold.NsPerOp, warm.NsPerOp),
			AllocRatio:      ratio(cold.AllocsPerOp, warm.AllocsPerOp),
			BytesRatio:      ratio(cold.BytesPerOp, warm.BytesPerOp),
			DenseBaselineNs: size.DenseColdNs,
			SpeedupVsDense:  ratio(size.DenseColdNs, cold.NsPerOp),
			PresolveMaster:  toPresolveReport(psMaster),
			PresolvePricing: toPresolveReport(psPricing),
		})
	}

	if !*quick {
		fmt.Fprintf(os.Stderr, "serve: cold solve + cached obfuscate...")
		sr, err := measureServe()
		if err != nil {
			fatalf("serve bench: %v", err)
		}
		rep.Serve = sr
		fmt.Fprintf(os.Stderr, " done\n")
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatalf("encode: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// benchProblem mirrors cgBenchProblem in bench_test.go (same seed and
// grid parameters, so the tracked numbers are comparable).
func benchProblem(rows, cols int, delta float64) (*core.Problem, error) {
	rng := rand.New(rand.NewSource(77))
	g := roadnet.Grid(rng, roadnet.GridConfig{
		Rows: rows, Cols: cols, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.15,
	})
	part, err := discretize.New(g, delta)
	if err != nil {
		return nil, err
	}
	return core.NewProblem(part, core.Config{Epsilon: 5})
}

func measureSolveCG(pr *core.Problem, coldRestart bool) measurement {
	opts := core.CGOptions{Xi: 0, RelGap: 0.01, ColdRestart: coldRestart}
	// One observed solve for rounds and quality, outside the timing.
	res, err := core.SolveCG(pr, opts)
	if err != nil {
		fatalf("solve: %v", err)
	}
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveCG(pr, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	return measurement{
		NsPerOp:     br.NsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		CGRounds:    len(res.Iterations),
		ETDD:        res.ETDD,
	}
}

// measureServe mirrors BenchmarkServeColdSolve and
// BenchmarkServeObfuscateCached: POSTs against the server's handler, a
// fresh instance per op on the cold path and a pre-warmed one for the
// cached obfuscation path.
func measureServe() (*serveReport, error) {
	rng := rand.New(rand.NewSource(77))
	g := roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 3, Cols: 3, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.15,
	})
	part, err := discretize.New(g, 0.15)
	if err != nil {
		return nil, err
	}
	traces, err := trace.Simulate(rng, g, trace.SimConfig{
		Vehicles: 12, Duration: 900, RecordEvery: 7,
		SpeedKmh: 30, CenterBias: 1, DropoutProb: 0.2,
	})
	if err != nil {
		return nil, err
	}
	prior := trace.PriorFromTraces(part, traces, 0.5)
	spec := &serial.SolveSpec{
		Network: serial.FromGraph(g),
		Delta:   0.15,
		Epsilon: 5,
		Prior:   prior,
	}
	solvePayload, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}

	coldRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			srv := server.New(context.Background(), server.Config{CacheSize: 1, MaxSolves: 1})
			if err := servePost(srv.Handler(), "/solve", solvePayload); err != nil {
				b.Fatal(err)
			}
		}
	})

	srv := server.New(context.Background(), server.Config{CacheSize: 4, MaxSolves: 2, Seed: 7})
	h := srv.Handler()
	if err := servePost(h, "/solve", solvePayload); err != nil {
		return nil, err
	}

	req := serial.ObfuscateRequest{SolveSpec: *spec}
	lrng := rand.New(rand.NewSource(45))
	for j := 0; j < 16; j++ {
		road := lrng.Intn(g.NumEdges())
		w := g.Edge(roadnet.EdgeID(road)).Weight
		req.Locations = append(req.Locations, serial.Loc{Road: road, FromStart: lrng.Float64() * w})
	}
	obfPayload, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	cachedRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := servePost(h, "/obfuscate", obfPayload); err != nil {
				b.Fatal(err)
			}
		}
	})

	return &serveReport{
		ColdSolve:           toMeasurement(coldRes),
		ObfuscateCached:     toMeasurement(cachedRes),
		SpeedupCachedVsCold: ratio(coldRes.NsPerOp(), cachedRes.NsPerOp()),
	}, nil
}

func servePost(h http.Handler, path string, payload []byte) error {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(payload))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		return fmt.Errorf("%s returned %d: %s", path, w.Code, w.Body.String())
	}
	return nil
}

func toMeasurement(br testing.BenchmarkResult) measurement {
	return measurement{
		NsPerOp:     br.NsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
	}
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vlpbench: "+format+"\n", args...)
	os.Exit(1)
}

// Command vlpchaos runs the deterministic fleet chaos harness: it
// spawns an N-process vlpserved fleet over one shared store directory
// and drives a seeded request schedule through the standard fault
// phases — disk full, torn writes, stalled fsync, a paused leader
// whose lease expires under it, and a blackholed follower→leader proxy
// path — classifying every response against the availability contract
// and replaying the store from scratch at the end.
//
// Usage:
//
//	vlpchaos -bin ./vlpserved [-n 3] [-seed 1] [-rate 20]
//	         [-phase 2s] [-ttl 1s] [-poll ttl/5] [-timeout 3s]
//	         [-store-dir DIR] [-keep-store] [-v]
//	         [-out BENCH_chaos.json]
//	vlpchaos -check BENCH_chaos.json
//
// The run exits nonzero on any contract violation: a response outside
// {2xx, 429}, a timeout from a live member, an out-of-domain obfuscated
// location, a fencing-token regression, a leader pause that failed to
// bump the fleet's fence, or a dirty store replay. -check validates an
// existing report file through the same strict schema gate ci.sh uses
// (chaos.ValidateJSON) and runs nothing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/chaos"
)

func main() {
	bin := flag.String("bin", "", "vlpserved binary to spawn (required)")
	check := flag.String("check", "", "validate an existing BENCH_chaos.json and exit; runs nothing")
	n := flag.Int("n", 3, "fleet size")
	seed := flag.Int64("seed", 1, "request-schedule seed")
	rate := flag.Float64("rate", 20, "open-loop request rate per second")
	phase := flag.Duration("phase", 2*time.Second, "base duration of each fault phase")
	ttl := flag.Duration("ttl", time.Second, "fleet lease TTL")
	poll := flag.Duration("poll", 0, "fleet heartbeat cadence (0 = ttl/5)")
	timeout := flag.Duration("timeout", 0, "per-request client budget (0 = max(3s, 2×ttl))")
	storeDir := flag.String("store-dir", "", "shared store directory (empty = fresh temp dir)")
	keepStore := flag.Bool("keep-store", false, "keep the store directory for forensics instead of removing it")
	out := flag.String("out", "BENCH_chaos.json", "report output path")
	verbose := flag.Bool("v", false, "forward the children's stderr")
	flag.Parse()

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			fatalf("%v", err)
		}
		if _, err := chaos.ValidateJSON(data); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "vlpchaos: %s passes the schema gate\n", *check)
		return
	}
	if *bin == "" {
		fatalf("-bin is required: point it at a vlpserved binary (go build ./cmd/vlpserved)")
	}

	dir := *storeDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "vlpchaos-store-"); err != nil {
			fatalf("store dir: %v", err)
		}
		if !*keepStore {
			defer os.RemoveAll(dir)
		}
	}

	cfg := chaos.Config{
		Bin:            *bin,
		StoreDir:       dir,
		Procs:          *n,
		Seed:           *seed,
		Rate:           *rate,
		TTL:            *ttl,
		Poll:           *poll,
		RequestTimeout: *timeout,
		Phases:         chaos.StandardPhases(*phase, *ttl),
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "vlpchaos: "+format+"\n", args...)
		},
	}
	if *verbose {
		cfg.ChildLog = os.Stderr
	}

	rep, err := chaos.Run(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	rep.GeneratedUnix = time.Now().Unix()
	rep.GoVersion = runtime.Version()
	if err := rep.Validate(); err != nil {
		fatalf("emitted report fails its own schema gate: %v", err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("vlpchaos: %d requests over %d phases, fence %d → %d (%d failover bumps)\n",
		rep.Requests, len(rep.Phases), rep.FenceStart, rep.FenceEnd, rep.FailoverFenceBumps)
	for _, p := range rep.Phases {
		fmt.Printf("  %-16s %4d req  %4d ok  %3d shed  %3d tolerated  %3d violations\n",
			p.Name, p.Requests, p.OK, p.Shed, p.Tolerated, p.Violations)
	}
	fmt.Printf("  counters: %d solves, %d writes, %d shed writes, %d breaker trips, %d lease losses\n",
		rep.Counters.Solves, rep.Counters.StoreWrites, rep.Counters.StoreWriteShed,
		rep.Counters.ProxyBreakerTrips, rep.Counters.LeaseLosses)
	fmt.Printf("  audit: %d entries, %d checkpoints, %d quarantined, max Geo-I violation %.3g\n",
		rep.Audit.Entries, rep.Audit.Checkpoints, rep.Audit.Quarantined, rep.Audit.MaxGeoIViolation)
	fmt.Printf("  report: %s\n", *out)

	if rep.ViolationCount > 0 || !rep.Audit.ReplayClean {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "vlpchaos: VIOLATION: %s\n", v)
		}
		fatalf("%d contract violations (replay clean: %v)", rep.ViolationCount, rep.Audit.ReplayClean)
	}
	fmt.Println("  contract held: zero violations, replay clean")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vlpchaos: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestChaosSmoke is the CI chaos gate: a real 3-process vlpserved
// fleet runs the standard fault schedule at a bounded scale (~15s) and
// the availability contract must hold exactly — every response 2xx or
// 429 (timeouts only from the paused leader), every 2xx in-domain,
// fencing tokens only ever up, ENOSPC shedding writes instead of
// requests, and a byte-clean store replay at the end. The emitted
// report must pass the strict BENCH_chaos.json schema gate; set
// VLP_CHAOS_OUT to archive it.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and pauses real server processes")
	}
	bin := filepath.Join(t.TempDir(), "vlpserved")
	build := exec.Command("go", "build", "-o", bin, "../vlpserved")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ../vlpserved: %v\n%s", err, out)
	}

	ttl := time.Second
	rep, err := chaos.Run(chaos.Config{
		Bin:      bin,
		StoreDir: t.TempDir(),
		Procs:    3,
		Seed:     7,
		Rate:     15,
		TTL:      ttl,
		Phases:   chaos.StandardPhases(1200*time.Millisecond, ttl),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}

	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.ViolationCount != 0 {
		t.Fatalf("%d contract violations", rep.ViolationCount)
	}
	if !rep.Audit.ReplayClean {
		t.Fatalf("store replay not clean: %+v", rep.Audit)
	}
	if rep.Audit.Entries < 2 {
		t.Fatalf("replay found %d entries, want >= 2 (warmup snapshots)", rep.Audit.Entries)
	}
	if rep.FailoverFenceBumps != 1 {
		t.Fatalf("%d failover fence bumps, want 1 (one leader-pause phase)", rep.FailoverFenceBumps)
	}
	if rep.FenceEnd <= rep.FenceStart {
		t.Fatalf("fence high-water %d → %d: the paused leader was never fenced out", rep.FenceStart, rep.FenceEnd)
	}
	if rep.Counters.StoreWriteShed == 0 {
		t.Error("disk-full phase shed no writes: the ENOSPC degradation path never ran")
	}
	if rep.Requests == 0 {
		t.Fatal("driver dispatched no requests")
	}

	rep.GeneratedUnix = time.Now().Unix()
	rep.GoVersion = runtime.Version()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chaos.ValidateJSON(data); err != nil {
		t.Fatalf("emitted report fails the schema gate: %v", err)
	}
	if out := os.Getenv("VLP_CHAOS_OUT"); out != "" {
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("chaos report archived to %s", out)
	}
}

// Command vlpgen generates synthetic road networks (and optionally
// mobility-derived priors) as JSON for vlpsolve and custom pipelines.
//
// Usage:
//
//	vlpgen -map rome|grid|campus|regionA|regionB [-seed N] [-out file]
//	       [-rows R -cols C -spacing S -oneway F]      (grid only)
//	       [-prior delta]   also emit a trace-estimated prior for the
//	                        given interval length
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/discretize"
	"repro/internal/roadnet"
	"repro/internal/serial"
	"repro/internal/trace"
)

func main() {
	mapKind := flag.String("map", "rome", "map kind: rome, grid, campus, regionA, regionB")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	rows := flag.Int("rows", 4, "grid rows")
	cols := flag.Int("cols", 4, "grid cols")
	spacing := flag.Float64("spacing", 0.3, "grid block length (km)")
	oneway := flag.Float64("oneway", 0.5, "grid one-way street fraction")
	priorDelta := flag.Float64("prior", 0, "if > 0, also emit a simulated-trace prior for this interval length (km)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *roadnet.Graph
	switch *mapKind {
	case "rome":
		g = roadnet.RomeLike(rng, roadnet.DefaultRomeLike())
	case "grid":
		g = roadnet.Grid(rng, roadnet.GridConfig{
			Rows: *rows, Cols: *cols, Spacing: *spacing,
			OneWayFrac: *oneway, WeightJitter: 0.15,
		})
	case "campus":
		g = roadnet.Campus(rng)
	case "regionA":
		g = roadnet.RegionA(rng)
	case "regionB":
		g = roadnet.RegionB(rng)
	default:
		fatalf("unknown map kind %q", *mapKind)
	}

	payload := struct {
		*serial.Network
		Prior []float64 `json:"prior,omitempty"`
	}{Network: serial.FromGraph(g)}

	if *priorDelta > 0 {
		part, err := discretize.New(g, *priorDelta)
		if err != nil {
			fatalf("discretize: %v", err)
		}
		traces, err := trace.Simulate(rng, g, trace.DefaultSim())
		if err != nil {
			fatalf("simulate: %v", err)
		}
		payload.Prior = trace.PriorFromTraces(part, traces, 0.5)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := serial.WriteJSON(w, payload); err != nil {
		fatalf("encode: %v", err)
	}
	fmt.Fprintf(os.Stderr, "map %s: %d nodes, %d edges, %.2f km\n",
		*mapKind, g.NumNodes(), g.NumEdges(), g.TotalLength())
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vlpgen: "+format+"\n", args...)
	os.Exit(1)
}

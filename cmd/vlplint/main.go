// Command vlplint is the multichecker driver for the repo's custom
// static-analysis suite (internal/lint): it mechanically enforces the
// solver stack's safety contracts — the Geo-I repair gate, lock-free
// stats counters, context plumbing, tolerance-based float comparison,
// chaos-suite fault coverage, and kernel determinism — plus nilness and
// shadow checks that go vet does not run by default.
//
// Usage:
//
//	go run ./cmd/vlplint ./...      # analyze the whole module (ci.sh gate)
//	go run ./cmd/vlplint -list      # print the invariant catalogue
//
// vlplint exits non-zero if any finding survives; a false positive is
// silenced in the source with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on (or directly above) the offending line. The reason is mandatory
// and a directive that suppresses nothing is itself an error, so stale
// ignores cannot accumulate.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
	"repro/internal/lint/loader"
	"repro/internal/lint/registry"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and their scopes, then exit")
	flag.Parse()

	suite := registry.All()
	if *list {
		for _, s := range suite {
			fmt.Printf("%-12s scope %-50s %s\n", s.Analyzer.Name, s.Scope, s.Why)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := run(suite, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlplint:", err)
		os.Exit(2)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "vlplint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// finding is one post-suppression diagnostic with its analyzer tag.
type finding struct {
	analyzer string
	d        analysis.Diagnostic
}

func run(suite []registry.Scoped, patterns []string) ([]string, error) {
	l, err := loader.New(".")
	if err != nil {
		return nil, err
	}
	for _, s := range suite {
		if s.Analyzer.Reset != nil {
			s.Analyzer.Reset()
		}
	}

	var pkgs []*loader.Package
	for _, pat := range patterns {
		ps, err := l.Load(pat)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ps...)
	}

	var all []finding
	var ignores []directive.Ignore
	var out []string
	for _, pkg := range pkgs {
		ok, malformed := directive.Parse(pkg.Fset, pkg.Files)
		ignores = append(ignores, ok...)
		for _, m := range malformed {
			pos := pkg.Fset.Position(m.Pos)
			out = append(out, fmt.Sprintf("%s: malformed //lint:ignore directive: need `//lint:ignore analyzer[,analyzer] reason`", pos))
		}
		for _, s := range suite {
			if !s.Scope.MatchString(pkg.Path) {
				continue
			}
			a := s.Analyzer
			pass := &analysis.Pass{
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report: func(d analysis.Diagnostic) {
					all = append(all, finding{a.Name, d})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	// Cross-package finishers (faultpoint's uniqueness check).
	for _, s := range suite {
		if s.Analyzer.Finish != nil {
			a := s.Analyzer
			a.Finish(func(d analysis.Diagnostic) {
				all = append(all, finding{a.Name, d})
			})
		}
	}

	// Apply suppression directives; track which ones earned their keep.
	used := make([]bool, len(ignores))
	for _, f := range all {
		pos := l.Fset().Position(f.d.Pos)
		suppressed := false
		for i := range ignores {
			if ignores[i].Covers(f.analyzer, pos.Filename, pos.Line) {
				used[i] = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, fmt.Sprintf("%s: %s (%s)", pos, f.d.Message, f.analyzer))
		}
	}
	for i, ig := range ignores {
		if !used[i] {
			out = append(out, fmt.Sprintf("%s:%d: //lint:ignore directive suppresses nothing; delete it", ig.File, ig.Line))
		}
	}
	return out, nil
}

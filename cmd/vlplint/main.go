// Command vlplint is the multichecker driver for the repo's custom
// static-analysis suite (internal/lint): it mechanically enforces the
// solver stack's safety contracts — the Geo-I repair gate, lock-free
// stats counters, context plumbing, tolerance-based float comparison,
// chaos-suite fault coverage, and kernel determinism — plus nilness and
// shadow checks that go vet does not run by default, and the
// whole-program analyzers (privtaint, lockorder, errflow, goctx) that
// track taint, lock order, error flow, and goroutine lifecycles across
// function and package boundaries.
//
// Usage:
//
//	go run ./cmd/vlplint ./...               # analyze the whole module (ci.sh gate)
//	go run ./cmd/vlplint -list               # print the invariant catalogue
//	go run ./cmd/vlplint -json ./...         # machine-readable findings on stdout
//	go run ./cmd/vlplint -baseline lint.baseline.json ./...
//
// With -baseline, findings recorded in the given JSON file (the same
// schema -json emits) are subtracted before the exit code is decided.
// The checked-in baseline is empty — the tree owes zero findings — and
// exists so a future emergency can land with a recorded debt instead
// of a weakened analyzer.
//
// vlplint exits non-zero if any finding survives; a false positive is
// silenced in the source with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on (or directly above) the offending line. The reason is mandatory
// and a directive that suppresses nothing is itself an error, so stale
// ignores cannot accumulate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
	"repro/internal/lint/loader"
	"repro/internal/lint/registry"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and their scopes, then exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	baselinePath := flag.String("baseline", "", "JSON file of known findings to subtract (the ratchet)")
	flag.Parse()

	suite := registry.All()
	if *list {
		// Sorted by scope then analyzer name so the catalogue (and any
		// diff over it) is stable.
		rows := make([]registry.Scoped, len(suite))
		copy(rows, suite)
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].Scope.String() != rows[j].Scope.String() {
				return rows[i].Scope.String() < rows[j].Scope.String()
			}
			return rows[i].Analyzer.Name < rows[j].Analyzer.Name
		})
		for _, s := range rows {
			fmt.Printf("%-12s scope %-50s %s\n", s.Analyzer.Name, s.Scope, s.Why)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	records, err := run(suite, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vlplint:", err)
		os.Exit(2)
	}
	if *baselinePath != "" {
		records, err = subtractBaseline(records, *baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vlplint:", err)
			os.Exit(2)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if records == nil {
			records = []record{}
		}
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(os.Stderr, "vlplint:", err)
			os.Exit(2)
		}
	} else {
		for _, r := range records {
			fmt.Printf("%s:%d:%d: %s (%s)\n", r.File, r.Line, r.Col, r.Message, r.Analyzer)
		}
	}
	if len(records) > 0 {
		fmt.Fprintf(os.Stderr, "vlplint: %d finding(s)\n", len(records))
		os.Exit(1)
	}
}

// record is one finding in output order: file, line, col, analyzer,
// message — the sort key and the JSON schema are the same thing.
type record struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// finding is one pre-suppression diagnostic with its analyzer tag.
type finding struct {
	analyzer string
	d        analysis.Diagnostic
}

func run(suite []registry.Scoped, patterns []string) ([]record, error) {
	l, err := loader.New(".")
	if err != nil {
		return nil, err
	}
	for _, s := range suite {
		if s.Analyzer.Reset != nil {
			s.Analyzer.Reset()
		}
	}

	var pkgs []*loader.Package
	for _, pat := range patterns {
		ps, err := l.Load(pat)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ps...)
	}
	requested := make(map[string]bool, len(pkgs))
	for _, pkg := range pkgs {
		requested[pkg.Path] = true
	}

	var all []finding
	var ignores []directive.Ignore
	var records []record
	rel := func(filename string) string {
		if r, err := filepath.Rel(l.ModuleRoot, filename); err == nil {
			return filepath.ToSlash(r)
		}
		return filename
	}
	for _, pkg := range pkgs {
		ok, malformed := directive.Parse(pkg.Fset, pkg.Files)
		ignores = append(ignores, ok...)
		for _, m := range malformed {
			pos := pkg.Fset.Position(m.Pos)
			records = append(records, record{
				File: rel(pos.Filename), Line: pos.Line, Col: pos.Column,
				Analyzer: "directive",
				Message:  "malformed //lint:ignore directive: need `//lint:ignore analyzer[,analyzer] reason`",
			})
		}
		for _, s := range suite {
			if s.Analyzer.Run == nil || !s.Scope.MatchString(pkg.Path) {
				continue
			}
			a := s.Analyzer
			pass := &analysis.Pass{
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report: func(d analysis.Diagnostic) {
					all = append(all, finding{a.Name, d})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	// Whole-program analyzers see everything the loader pulled in —
	// summaries must cross package boundaries — but only report inside
	// packages that were both requested and in scope.
	var passes []*analysis.Pass
	for _, p := range l.Loaded() {
		passes = append(passes, &analysis.Pass{
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
		})
	}
	for _, s := range suite {
		if s.Analyzer.RunProgram == nil {
			continue
		}
		a := s.Analyzer
		scope := s.Scope
		pp := &analysis.ProgramPass{
			Fset:     l.Fset(),
			Packages: passes,
			InScope: func(pkgPath string) bool {
				return requested[pkgPath] && scope.MatchString(pkgPath)
			},
			Report: func(d analysis.Diagnostic) {
				all = append(all, finding{a.Name, d})
			},
		}
		if err := a.RunProgram(pp); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	// Cross-package finishers (faultpoint's uniqueness check).
	for _, s := range suite {
		if s.Analyzer.Finish != nil {
			a := s.Analyzer
			a.Finish(func(d analysis.Diagnostic) {
				all = append(all, finding{a.Name, d})
			})
		}
	}

	// Apply suppression directives; track which ones earned their keep.
	used := make([]bool, len(ignores))
	for _, f := range all {
		pos := l.Fset().Position(f.d.Pos)
		suppressed := false
		for i := range ignores {
			if ignores[i].Covers(f.analyzer, pos.Filename, pos.Line) {
				used[i] = true
				suppressed = true
			}
		}
		if !suppressed {
			records = append(records, record{
				File: rel(pos.Filename), Line: pos.Line, Col: pos.Column,
				Analyzer: f.analyzer, Message: f.d.Message,
			})
		}
	}
	for i, ig := range ignores {
		if !used[i] {
			records = append(records, record{
				File: rel(ig.File), Line: ig.Line, Col: 1,
				Analyzer: "directive",
				Message:  "//lint:ignore directive suppresses nothing; delete it",
			})
		}
	}
	sort.Slice(records, func(i, j int) bool {
		a, b := records[i], records[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return records, nil
}

// subtractBaseline removes findings recorded in the baseline file.
// Matching ignores line/col so a baseline survives unrelated edits to
// the same file.
func subtractBaseline(records []record, path string) ([]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var base []record
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	type key struct{ file, analyzer, message string }
	known := make(map[key]bool, len(base))
	for _, b := range base {
		known[key{b.File, b.Analyzer, b.Message}] = true
	}
	var out []record
	for _, r := range records {
		if !known[key{r.File, r.Analyzer, r.Message}] {
			out = append(out, r)
		}
	}
	return out, nil
}

// Command vlpload is the open-loop load harness for vlpserved: it fires
// obfuscation requests at a constant arrival rate (independent of how
// fast the server answers — the property that exposes queueing collapse,
// unlike a closed-loop driver that self-throttles when the server
// slows), spreads them over a pool of region digests with Zipf-skewed
// popularity, and writes the observed latency/shed/rung trajectory to
// BENCH_serve.json in the same spirit as cmd/vlpbench's
// BENCH_solver.json.
//
// Usage:
//
//	vlpload [-addr http://localhost:8750] [-targets URL,URL,...]
//	        [-rate 100] [-duration 10s]
//	        [-specs 8] [-zipf-s 1.2] [-zipf-v 1] [-seed 1] [-locs 4]
//	        [-rows 2] [-cols 2] [-delta 0.3] [-no-warmup]
//	        [-out BENCH_serve.json]
//	        [-selfserve] [-solve-pool 2] [-serve-pool 32]
//	        [-coalesce-window 0] [-cache 16]
//
// -targets drives a multi-instance fleet: requests round-robin over the
// comma-separated base URLs (deterministically, by arrival index) and
// the report gains a per_target breakdown — per-member latency
// quantiles and shed rates — so a follower whose misses proxy to the
// leader shows up as a higher p99 on its slice rather than vanishing
// into the aggregate. -targets overrides -addr.
//
// The digest pool is a seeded grid network with a ladder of epsilons —
// one digest per epsilon — so the whole request schedule is reproducible
// from (-seed, -rate, -duration, -specs). By default the pool is
// pre-solved through the retrying client (warmup) before measurement, so
// the steady-state run measures the serving tiers rather than the first
// cold solves; -no-warmup measures the cold-start stampede instead.
//
// -selfserve runs an in-process vlpserved instead of targeting -addr:
// handy for CI smoke runs (ci.sh drives this path via TestLoadSmoke) and
// for single-machine experiments where network jitter would drown the
// sub-millisecond cached tier.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/retryhttp"
	"repro/internal/roadnet"
	"repro/internal/serial"
	"repro/internal/server"
)

// wallClock is the production loadgen.Clock; tests inside internal/
// loadgen use the virtual clock instead.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// harnessConfig is everything run needs; main fills it from flags, the
// smoke test fills it directly.
type harnessConfig struct {
	base       string   // target base URL (single-instance runs)
	targets    []string // multi-instance base URLs, round-robin; overrides base when set
	rate       float64
	duration   time.Duration
	specs      int
	zipfS      float64
	zipfV      float64
	seed       int64
	locs       int
	rows, cols int
	delta      float64
	warmup     bool
	client     *http.Client
}

func main() {
	addr := flag.String("addr", "http://localhost:8750", "vlpserved base URL")
	targets := flag.String("targets", "", "comma-separated fleet base URLs; round-robins requests and adds a per-target report breakdown (overrides -addr)")
	rate := flag.Float64("rate", 100, "open-loop arrival rate, requests per second")
	duration := flag.Duration("duration", 10*time.Second, "measurement duration")
	specs := flag.Int("specs", 8, "region-digest pool size (one digest per epsilon rung)")
	zipfS := flag.Float64("zipf-s", 1.2, "Zipf exponent over the digest pool (must be > 1)")
	zipfV := flag.Float64("zipf-v", 1, "Zipf v parameter (must be >= 1)")
	seed := flag.Int64("seed", 1, "schedule seed: fixes the target and location sequence")
	locs := flag.Int("locs", 4, "locations per obfuscate request")
	rows := flag.Int("rows", 2, "grid rows of the workload network")
	cols := flag.Int("cols", 2, "grid columns of the workload network")
	delta := flag.Float64("delta", 0.3, "discretisation interval length")
	noWarmup := flag.Bool("no-warmup", false, "skip pre-solving the digest pool (measures the cold-start stampede)")
	out := flag.String("out", "BENCH_serve.json", "output report path (- for stdout)")
	selfserve := flag.Bool("selfserve", false, "run an in-process vlpserved and ignore -addr")
	solvePool := flag.Int("solve-pool", 2, "selfserve: solve-tier pool size")
	servePool := flag.Int("serve-pool", 32, "selfserve: serve-tier pool size")
	coalesceWindow := flag.Duration("coalesce-window", 0, "selfserve: cold-solve coalescing window")
	cache := flag.Int("cache", 16, "selfserve: mechanism LRU capacity")
	flag.Parse()

	cfg := harnessConfig{
		base: *addr, rate: *rate, duration: *duration,
		specs: *specs, zipfS: *zipfS, zipfV: *zipfV, seed: *seed,
		locs: *locs, rows: *rows, cols: *cols, delta: *delta,
		warmup: !*noWarmup,
	}
	if *targets != "" {
		for _, u := range strings.Split(*targets, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cfg.targets = append(cfg.targets, u)
			}
		}
		if len(cfg.targets) == 0 {
			fatalf("-targets lists no usable URLs: %q", *targets)
		}
		if *selfserve {
			fatalf("-selfserve and -targets conflict: the in-process server is single-instance")
		}
	}

	if *selfserve {
		srv := server.New(context.Background(), server.Config{
			CacheSize:      *cache,
			SolvePool:      *solvePool,
			ServePool:      *servePool,
			CoalesceWindow: *coalesceWindow,
		})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Shutdown(context.Background())
		cfg.base = ts.URL
		fmt.Fprintf(os.Stderr, "vlpload: in-process vlpserved (solve pool %d, serve pool %d, coalesce %v)\n",
			*solvePool, *servePool, *coalesceWindow)
	}

	rep, err := run(context.Background(), cfg, wallClock{})
	if err != nil {
		fatalf("%v", err)
	}
	rep.GeneratedUnix = time.Now().Unix()
	rep.GoVersion = runtime.Version()
	if err := rep.Validate(); err != nil {
		fatalf("emitted report failed its own schema check: %v", err)
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatalf("encode: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("write: %v", err)
	} else {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	fmt.Fprintf(os.Stderr,
		"vlpload: %d requests @ %.1f rps achieved (target %.1f): latency p50=%.2fms p99=%.2fms p999=%.2fms, cached p99=%.2fms, 429 %.1f%%, errors %.1f%%\n",
		rep.Requests, rep.AchievedRate, rep.Config.TargetRate,
		rep.LatencyMs.P50, rep.LatencyMs.P99, rep.LatencyMs.P999,
		rep.CachedLatencyMs.P99, 100*rep.Rate429, 100*rep.ErrorRate)
	for _, t := range rep.PerTarget {
		fmt.Fprintf(os.Stderr,
			"vlpload:   %s: %d requests, p50=%.2fms p99=%.2fms, 429 %.1f%%, errors %.1f%%\n",
			t.URL, t.Requests, t.LatencyMs.P50, t.LatencyMs.P99, 100*t.Rate429, 100*t.ErrorRate)
	}
}

// run executes the full harness against cfg.base and folds the results
// into a Report (GeneratedUnix/GoVersion left for the caller to stamp).
func run(ctx context.Context, cfg harnessConfig, clock loadgen.Clock) (loadgen.Report, error) {
	if cfg.client == nil {
		// The open-loop dispatcher can hold many requests in flight at
		// once; keep enough idle connections that connection churn does
		// not masquerade as serving latency.
		cfg.client = &http.Client{
			Timeout: 2 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		}
	}

	// urls is the round-robin rotation: the configured fleet targets, or
	// just the single base URL. do() indexes it by arrival index so the
	// assignment is part of the deterministic schedule, not runtime state.
	urls := cfg.targets
	if len(urls) == 0 {
		urls = []string{cfg.base}
	}

	specs, payloads, err := buildWorkload(cfg)
	if err != nil {
		return loadgen.Report{}, err
	}

	if cfg.warmup {
		if err := warmup(ctx, cfg, urls, specs); err != nil {
			return loadgen.Report{}, err
		}
	}

	zipf, err := loadgen.NewZipf(cfg.seed, cfg.zipfS, cfg.zipfV, len(specs))
	if err != nil {
		return loadgen.Report{}, err
	}
	plan, err := loadgen.Schedule(cfg.rate, cfg.duration, zipf.Pick)
	if err != nil {
		return loadgen.Report{}, err
	}

	obfURLs := make([]string, len(urls))
	for i, u := range urls {
		obfURLs[i] = u + "/obfuscate"
	}
	do := func(reqCtx context.Context, a loadgen.Arrival) loadgen.Result {
		inst := a.Index % len(obfURLs)
		start := clock.Now()
		status, rung := postObfuscate(reqCtx, cfg.client, obfURLs[inst], payloads[a.Target])
		return loadgen.Result{
			Target:   a.Target,
			Instance: inst,
			Status:   status,
			Rung:     rung,
			Latency:  clock.Now().Sub(start),
		}
	}

	runStart := clock.Now()
	results := loadgen.Run(ctx, clock, plan, do)
	elapsed := clock.Now().Sub(runStart)
	if len(results) == 0 {
		return loadgen.Report{}, fmt.Errorf("vlpload: no requests dispatched (cancelled before the first arrival?)")
	}

	rep := loadgen.BuildReport(loadgen.RunConfig{
		TargetRate:     cfg.rate,
		DurationSec:    cfg.duration.Seconds(),
		Specs:          cfg.specs,
		ZipfS:          cfg.zipfS,
		ZipfV:          cfg.zipfV,
		Seed:           cfg.seed,
		LocsPerRequest: cfg.locs,
		Targets:        cfg.targets,
	}, results, elapsed)
	// In a fleet run the counters come from the first target; server-side
	// counters are per-process, and the leader (started first by
	// convention) is the one whose solve counters matter. fleet_totals
	// sums every member's snapshot for the fleet-wide picture.
	scrapes := make([]*loadgen.ServerCounters, len(urls))
	for i, u := range urls {
		scrapes[i] = fetchServerCounters(ctx, cfg.client, u)
	}
	rep.Server = scrapes[0]
	if len(cfg.targets) > 0 {
		rep.FleetTotals = loadgen.MergeCounters(scrapes)
	}
	return rep, nil
}

// buildWorkload constructs the digest pool (one spec per epsilon rung
// over a seeded grid network) and pre-marshals one obfuscate payload per
// spec, so the hot loop does no JSON encoding.
func buildWorkload(cfg harnessConfig) ([]*serial.SolveSpec, [][]byte, error) {
	if cfg.specs <= 0 {
		return nil, nil, fmt.Errorf("vlpload: digest pool must be positive, got %d", cfg.specs)
	}
	if cfg.locs <= 0 {
		return nil, nil, fmt.Errorf("vlpload: locations per request must be positive, got %d", cfg.locs)
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	g := roadnet.Grid(rng, roadnet.GridConfig{
		Rows: cfg.rows, Cols: cfg.cols, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.15,
	})
	net := serial.FromGraph(g)

	specs := make([]*serial.SolveSpec, cfg.specs)
	payloads := make([][]byte, cfg.specs)
	for i := range specs {
		spec := &serial.SolveSpec{Network: net, Delta: cfg.delta, Epsilon: 1 + 0.5*float64(i)}
		if err := spec.Validate(); err != nil {
			return nil, nil, fmt.Errorf("vlpload: workload spec %d invalid: %w", i, err)
		}
		req := serial.ObfuscateRequest{SolveSpec: *spec}
		for j := 0; j < cfg.locs; j++ {
			road := rng.Intn(g.NumEdges())
			w := g.Edge(roadnet.EdgeID(road)).Weight
			req.Locations = append(req.Locations, serial.Loc{Road: road, FromStart: rng.Float64() * w})
		}
		payload, err := json.Marshal(&req)
		if err != nil {
			return nil, nil, err
		}
		specs[i], payloads[i] = spec, payload
	}
	return specs, payloads, nil
}

// warmup pre-solves every digest in the pool through the retrying
// client, so steady-state measurement starts from a warm cache instead
// of a cold-solve stampede. Every target is warmed with every spec: in
// a fleet the first /solve lands the entry in the shared store (via the
// leader) and the same spec against the other members warms their
// caches read-through, so steady state measures serving, not refresh.
func warmup(ctx context.Context, cfg harnessConfig, urls []string, specs []*serial.SolveSpec) error {
	rc := &retryhttp.Client{HTTP: cfg.client, MaxAttempts: 8, BaseDelay: 200 * time.Millisecond, MaxDelay: 5 * time.Second}
	for i, spec := range specs {
		for _, base := range urls {
			var solved serial.SolveResponse
			status, err := rc.PostJSON(ctx, base+"/solve", spec, &solved)
			if err != nil {
				return fmt.Errorf("vlpload: warmup solve %d/%d against %s: %w", i+1, len(specs), base, err)
			}
			if status < 200 || status >= 300 {
				return fmt.Errorf("vlpload: warmup solve %d/%d against %s: server answered %d past the retry budget",
					i+1, len(specs), base, status)
			}
		}
	}
	return nil
}

// postObfuscate fires one measured request and classifies the outcome:
// (status, rung) with rung set only on a decoded 2xx response. A
// transport or decode failure reports status 0, which the report counts
// as an error.
func postObfuscate(ctx context.Context, client *http.Client, url string, payload []byte) (int, string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return 0, ""
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, ""
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, ""
	}
	var out serial.ObfuscateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, ""
	}
	if out.Cached {
		return resp.StatusCode, loadgen.RungCached
	}
	if out.Quality == "" {
		return resp.StatusCode, serial.QualityOptimal
	}
	return resp.StatusCode, out.Quality
}

// fetchServerCounters snapshots the target's /stats at run end; nil when
// the endpoint is unreachable (the client-side report still stands).
func fetchServerCounters(ctx context.Context, client *http.Client, base string) *loadgen.ServerCounters {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
	if err != nil {
		return nil
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	var snap server.StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}
	return &loadgen.ServerCounters{
		Solves:           snap.Solves,
		CacheHits:        snap.CacheHits,
		CacheMisses:      snap.CacheMisses,
		Rejected:         snap.Rejected,
		Coalesced:        snap.CoalescedRequests,
		AdmissionRejects: snap.AdmissionRejects,
		DegradedServes:   snap.DegradedServes,
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vlpload: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/server"
	"repro/internal/store"
)

// TestLoadSmoke is ci.sh's serving-path smoke gate: a short open-loop
// run against an in-process vlpserved (real solver, tiny grid) must
// produce a BENCH_serve.json that passes the checked-in Go schema check
// with zero responses outside {2xx, 429}. It uses real wall-clock
// dispatch, so it is skipped in -short mode (the deterministic
// scheduler tests live in internal/loadgen and always run).
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock load run; internal/loadgen covers the scheduler deterministically")
	}

	srv := server.New(context.Background(), server.Config{
		CacheSize:      8,
		SolvePool:      2,
		ServePool:      16,
		CoalesceWindow: 2 * time.Millisecond,
		SolveWait:      30 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	cfg := harnessConfig{
		base:     ts.URL,
		rate:     200,
		duration: 1500 * time.Millisecond,
		specs:    3,
		zipfS:    1.2,
		zipfV:    1,
		seed:     1,
		locs:     2,
		rows:     2,
		cols:     2,
		delta:    0.3,
		warmup:   true,
	}
	rep, err := run(context.Background(), cfg, wallClock{})
	if err != nil {
		t.Fatalf("harness run failed: %v", err)
	}
	rep.GeneratedUnix = time.Now().Unix()
	rep.GoVersion = runtime.Version()

	// Hard gate: any response outside {2xx, 429} fails the smoke run.
	if rep.ErrorRate != 0 {
		t.Fatalf("smoke run saw non-2xx/429 responses: error rate %v (report: %+v)", rep.ErrorRate, rep)
	}
	if rep.Requests < 200 {
		t.Fatalf("smoke run dispatched only %d requests; open-loop dispatcher fell behind badly", rep.Requests)
	}

	// The pool is pre-solved, so the steady state must serve overwhelmingly
	// from cache and the server must have solved each digest exactly once.
	if rep.RungMix.Cached == 0 {
		t.Fatalf("no cached serves after warmup; rung mix %+v", rep.RungMix)
	}
	if rep.Server == nil {
		t.Fatal("report missing server-side /stats counters")
	}
	if int(rep.Server.Solves) != cfg.specs {
		t.Fatalf("server solved %d times for a %d-digest warmed pool", rep.Server.Solves, cfg.specs)
	}

	// The emitted artifact must pass the same schema check ci.sh applies.
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	back, err := loadgen.ValidateJSON(data)
	if err != nil {
		t.Fatalf("emitted BENCH_serve.json failed the schema check: %v\n%s", err, data)
	}
	if back.Requests != rep.Requests {
		t.Fatalf("schema round trip changed request count: %d vs %d", back.Requests, rep.Requests)
	}
}

// swapHandler lets the test advertise an httptest URL before the server
// behind it exists (server.New needs FleetConfig.Advertise up front).
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok && h != nil {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "not up", http.StatusServiceUnavailable)
}

// TestLoadFleetSmoke is ci.sh's fleet serving gate: a -targets-style
// round-robin run over a two-member shared-store fleet (leader plus
// read-through follower) must stay inside {2xx, 429}, split requests
// across both members, and emit a report whose per_target breakdown
// passes the checked-in schema check.
func TestLoadFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock load run; internal/loadgen covers the scheduler deterministically")
	}

	dir := t.TempDir()
	fleetMember := func(name string) (*server.Server, *httptest.Server) {
		st, err := store.OpenFleet(dir)
		if err != nil {
			t.Fatal(err)
		}
		sw := &swapHandler{}
		ts := httptest.NewServer(sw)
		srv := server.New(context.Background(), server.Config{
			CacheSize: 8,
			SolvePool: 2,
			ServePool: 16,
			SolveWait: 30 * time.Second,
			Store:     st,
			Fleet: &server.FleetConfig{
				Instance:  name,
				Advertise: ts.URL,
				TTL:       5 * time.Second,
				Poll:      100 * time.Millisecond,
			},
		})
		sw.h.Store(srv.Handler())
		return srv, ts
	}
	// Started first, so it holds the lease; the loader's first target is
	// the one whose /stats the report archives.
	leader, tsLeader := fleetMember("leader")
	defer tsLeader.Close()
	defer leader.Shutdown(context.Background())
	follower, tsFollower := fleetMember("follower")
	defer tsFollower.Close()
	defer follower.Shutdown(context.Background())

	cfg := harnessConfig{
		targets:  []string{tsLeader.URL, tsFollower.URL},
		rate:     200,
		duration: 1500 * time.Millisecond,
		specs:    3,
		zipfS:    1.2,
		zipfV:    1,
		seed:     1,
		locs:     2,
		rows:     2,
		cols:     2,
		delta:    0.3,
		warmup:   true,
	}
	rep, err := run(context.Background(), cfg, wallClock{})
	if err != nil {
		t.Fatalf("fleet harness run failed: %v", err)
	}
	rep.GeneratedUnix = time.Now().Unix()
	rep.GoVersion = runtime.Version()

	if rep.ErrorRate != 0 {
		t.Fatalf("fleet smoke saw non-2xx/429 responses: error rate %v (report: %+v)", rep.ErrorRate, rep)
	}
	if rep.RungMix.Cached == 0 {
		t.Fatalf("no cached serves after fleet warmup; rung mix %+v", rep.RungMix)
	}
	if len(rep.PerTarget) != 2 {
		t.Fatalf("per_target has %d entries for a 2-member fleet", len(rep.PerTarget))
	}
	sum := 0
	for i, tg := range rep.PerTarget {
		if tg.URL != cfg.targets[i] {
			t.Fatalf("per_target[%d] url %q, want %q", i, tg.URL, cfg.targets[i])
		}
		if tg.Requests == 0 {
			t.Fatalf("round-robin starved target %s: %+v", tg.URL, rep.PerTarget)
		}
		if tg.ErrorRate != 0 {
			t.Fatalf("target %s saw errors: %+v", tg.URL, tg)
		}
		sum += tg.Requests
	}
	if sum != rep.Requests {
		t.Fatalf("per_target requests sum to %d, report has %d", sum, rep.Requests)
	}
	// Only the lease holder solves: the follower warmed read-through from
	// the shared store, so the leader's solve count covers the whole pool.
	if rep.Server == nil || int(rep.Server.Solves) != cfg.specs {
		t.Fatalf("leader counters %+v, want exactly %d solves", rep.Server, cfg.specs)
	}
	// The merged block sums both members; the follower never cold-solves,
	// so the fleet-wide solve count still equals the digest pool, while
	// cache traffic can only grow when the follower's slice is added in.
	if rep.FleetTotals == nil || int(rep.FleetTotals.Solves) != cfg.specs {
		t.Fatalf("fleet_totals %+v, want exactly %d solves fleet-wide", rep.FleetTotals, cfg.specs)
	}
	if rep.FleetTotals.CacheHits < rep.Server.CacheHits {
		t.Fatalf("fleet_totals cache_hits %d below the leader's %d", rep.FleetTotals.CacheHits, rep.Server.CacheHits)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadgen.ValidateJSON(data); err != nil {
		t.Fatalf("emitted fleet BENCH_serve.json failed the schema check: %v\n%s", err, data)
	}
}

// TestBuildWorkloadDeterministic: the digest pool and payloads are a
// pure function of the seed, so two harnesses with the same flags load
// identical request streams.
func TestBuildWorkloadDeterministic(t *testing.T) {
	cfg := harnessConfig{specs: 4, locs: 3, rows: 2, cols: 2, delta: 0.3, seed: 9}
	specsA, payloadsA, err := buildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specsB, payloadsB, err := buildWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specsA {
		if specsA[i].Digest() != specsB[i].Digest() {
			t.Fatalf("spec %d digest diverged across identically seeded builds", i)
		}
		if string(payloadsA[i]) != string(payloadsB[i]) {
			t.Fatalf("payload %d diverged across identically seeded builds", i)
		}
	}
	for i := 1; i < len(specsA); i++ {
		if specsA[i].Digest() == specsA[0].Digest() {
			t.Fatalf("spec %d shares a digest with spec 0; pool is not %d distinct regions", i, len(specsA))
		}
	}
}

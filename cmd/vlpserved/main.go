// Command vlpserved is the long-lived obfuscation service: it accepts
// serialized road networks + solve parameters over HTTP, solves each
// distinct spec once (deduplicating concurrent requests) and serves
// obfuscation from a bounded LRU of cached mechanisms.
//
// Usage:
//
//	vlpserved [-addr :8750] [-cache 16] [-solve-pool 2] [-serve-pool 32]
//	          [-coalesce-window 0] [-solve-wait 2m]
//	          [-solve-deadline 2m] [-no-upgrade] [-seed 1]
//	          [-xi -0.05] [-relgap 0.02]
//	          [-store-dir DIR] [-checkpoint-rounds 8] [-no-store]
//	          [-fleet] [-advertise URL] [-instance NAME]
//	          [-lease-ttl 10s] [-fleet-poll lease-ttl/3]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Serving is two admission tiers: -solve-pool bounds concurrent cold
// column-generation solves (excess cold requests get 429), -serve-pool
// bounds concurrent cached sampling on a disjoint pool so cached
// obfuscation never queues behind cold solves, and -coalesce-window
// batches same-digest cold requests into one solve. cmd/vlpload is the
// open-loop harness that measures the resulting latency split.
//
// Fleet mode (-fleet): N instances share one -store-dir. A TTL lease
// in the store elects a single durable writer; the leader solves and
// commits (every commit fenced by its lease token), followers serve
// read-through from the store, proxy misses to the leader's -advertise
// URL, or degrade to the exponential-fallback rung. Kill the leader
// and a follower takes over within one -lease-ttl, resuming the dead
// leader's interrupted solves from their durable checkpoints. See the
// README's "Fleet quickstart".
//
// Endpoints (JSON bodies; see internal/serial for the wire structs):
//
//	POST /solve      {"network": {...}, "delta": D, "epsilon": E, ...}
//	POST /obfuscate  same spec + "locations": [{"road": R, "from_start": X}, ...]
//	GET  /stats      cache hits/misses, solve latencies, per-mechanism ETDD
//	GET  /healthz    readiness (503 once draining)
//
// A solve that cannot finish — per-solve deadline, every waiter gone,
// drain expiry — degrades instead of failing: the service serves the
// interrupted run's best incumbent, or the closed-form exponential
// mechanism, always repaired to full (ε, r)-Geo-I feasibility. See the
// README's "Failure semantics" section.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8750", "listen address")
	cache := flag.Int("cache", 16, "mechanism LRU capacity")
	solves := flag.Int("solves", 2, "max concurrent cold solves (deprecated alias for -solve-pool)")
	solvePool := flag.Int("solve-pool", 0, "solve-tier pool: max concurrent cold solves, excess gets 429 (0 = take -solves)")
	servePool := flag.Int("serve-pool", 32, "serve-tier pool: max concurrent sampling requests, disjoint from the solve pool")
	coalesceWindow := flag.Duration("coalesce-window", 0, "batching delay before a cold solve starts, coalescing same-digest bursts into one solve (0 = off)")
	solveWait := flag.Duration("solve-wait", 2*time.Minute, "max time a request waits for a cold solve")
	solveDeadline := flag.Duration("solve-deadline", 2*time.Minute, "max wall time per CG solve before it degrades to its incumbent (0 = unbounded)")
	noUpgrade := flag.Bool("no-upgrade", false, "disable background re-solves that promote degraded cache entries")
	seed := flag.Int64("seed", 1, "base sampler seed")
	xi := flag.Float64("xi", -0.05, "column-generation termination threshold ξ (≤ 0)")
	relgap := flag.Float64("relgap", 0.02, "column-generation relative dual-gap stop")
	storeDir := flag.String("store-dir", "", "durable snapshot store directory; empty selects vlpserved-store under the OS temp dir")
	checkpointRounds := flag.Int("checkpoint-rounds", 0, "CG rounds between durable mid-solve checkpoints (0 = default 8, negative = no checkpoints)")
	noStore := flag.Bool("no-store", false, "run purely in-memory: no snapshots, no checkpoints, no warm recovery")
	fleet := flag.Bool("fleet", false, "join a shared-store serving fleet: lease-elected single writer, fenced commits (requires the store)")
	advertise := flag.String("advertise", "", "base URL followers use to proxy solves to this instance while it leads (e.g. http://10.0.0.5:8750)")
	instance := flag.String("instance", "", "fleet instance name, unique per process (default vlpserved-<pid>)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "fleet lease duration: a dead leader is replaced within one TTL")
	fleetPoll := flag.Duration("fleet-poll", 0, "fleet heartbeat/refresh cadence (0 = lease-ttl/3)")
	drain := flag.Duration("drain", 5*time.Minute, "shutdown drain budget for in-flight solves")
	cpuprofile := flag.String("cpuprofile", "", "profile CPU from startup until shutdown, written to this file")
	memprofile := flag.String("memprofile", "", "write a heap/alloc profile at shutdown to this file")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "solves" {
			log.Printf("vlpserved: -solves is deprecated, use -solve-pool")
		}
	})

	// Chaos hooks, both opt-in via environment so a production binary is
	// inert: $VLP_FAULTS arms fault sites at startup, and VLP_FAULT_CTL=1
	// additionally mounts POST/GET/DELETE /debug/faults so a harness can
	// re-arm a running process between fault phases.
	if err := faultinject.ArmFromEnv(os.Getenv); err != nil {
		fatalf("%s: %v", faultinject.EnvVar, err)
	}
	faultCtl := os.Getenv("VLP_FAULT_CTL") != ""

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	defer writeMemProfile(*memprofile)

	var st *store.Store
	if !*noStore {
		dir := *storeDir
		if dir == "" {
			dir = filepath.Join(os.TempDir(), "vlpserved-store")
		}
		open := store.Open
		if *fleet {
			// Fleet commits must be fenced by the lease token.
			open = store.OpenFleet
		}
		var err error
		if st, err = open(dir); err != nil {
			fatalf("store: %v", err)
		}
	} else if *fleet {
		fatalf("-fleet needs the shared store; drop -no-store")
	}
	var fleetCfg *server.FleetConfig
	if *fleet {
		fleetCfg = &server.FleetConfig{
			Instance:  *instance,
			Advertise: *advertise,
			TTL:       *leaseTTL,
			Poll:      *fleetPoll,
		}
	}

	srv := server.New(context.Background(), server.Config{
		CacheSize:        *cache,
		MaxSolves:        *solves,
		SolvePool:        *solvePool,
		ServePool:        *servePool,
		CoalesceWindow:   *coalesceWindow,
		SolveWait:        *solveWait,
		SolveDeadline:    *solveDeadline,
		DisableUpgrade:   *noUpgrade,
		Seed:             *seed,
		CG:               core.CGOptions{Xi: *xi, RelGap: *relgap},
		Store:            st,
		CheckpointRounds: *checkpointRounds,
		Fleet:            fleetCfg,
	})
	if st != nil {
		mode := "solo"
		if *fleet {
			mode = "fleet member"
		}
		fmt.Fprintf(os.Stderr, "vlpserved: durable store at %s (%s)\n", st.Dir(), mode)
	}
	handler := srv.Handler()
	if faultCtl {
		mux := http.NewServeMux()
		mux.Handle("/debug/faults", faultinject.Handler())
		mux.Handle("/", handler)
		handler = mux
		fmt.Fprintf(os.Stderr, "vlpserved: fault control surface mounted at /debug/faults\n")
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	pool := *solvePool
	if pool <= 0 {
		pool = *solves
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "vlpserved: listening on %s (cache %d, solve pool %d, serve pool %d, coalesce %v)\n",
		*addr, *cache, pool, *servePool, *coalesceWindow)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatalf("listen: %v", err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "vlpserved: %v, draining\n", sig)
	}

	// Flip /healthz to 503 first so load balancers stop routing here
	// while the listener finishes in-flight requests, then drain the
	// detached solves. Past the drain budget, srv.Shutdown cancels the
	// stragglers and the degradation ladder banks their incumbents.
	srv.BeginShutdown()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "vlpserved: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "vlpserved: solve drain: %v\n", err)
	}
}

// writeMemProfile dumps an allocation profile after a forced GC; it runs
// on the graceful-shutdown path, after the drain completes.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vlpserved: memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "vlpserved: memprofile: %v\n", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vlpserved: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/roadnet"
	"repro/internal/serial"
)

// buildServed compiles the vlpserved binary once per test run.
func buildServed(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vlpserved")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a listen address for a child process. The port is
// released before the child binds it — a benign race in a test that owns
// the machine's ephemeral range for milliseconds.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// served is one vlpserved child process under test control.
type served struct {
	t    *testing.T
	cmd  *exec.Cmd
	addr string
}

func startServed(t *testing.T, bin, addr string, args ...string) *served {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	s := &served{t: t, cmd: cmd, addr: addr}
	t.Cleanup(func() { s.kill() })
	s.waitHealthy()
	return s
}

func (s *served) kill() {
	if s.cmd.Process != nil {
		_ = s.cmd.Process.Signal(syscall.SIGKILL)
		_, _ = s.cmd.Process.Wait()
	}
}

func (s *served) url(path string) string { return "http://" + s.addr + path }

func (s *served) waitHealthy() {
	s.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(s.url("/healthz"))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	s.t.Fatal("vlpserved never became healthy")
}

// stats fetches and decodes GET /stats into a loose map.
func (s *served) stats() map[string]float64 {
	s.t.Helper()
	resp, err := http.Get(s.url("/stats"))
	if err != nil {
		s.t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		s.t.Fatal(err)
	}
	out := map[string]float64{}
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out
}

// waitStat polls /stats until counter ≥ want.
func (s *served) waitStat(counter string, want float64, timeout time.Duration) {
	s.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.stats()[counter] >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.t.Fatalf("%s never reached %v (have %v)", counter, want, s.stats()[counter])
}

// solveSpec posts spec to /solve and returns the decoded response.
func (s *served) solveSpec(spec *serial.SolveSpec, timeout time.Duration) (map[string]interface{}, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		s.t.Fatal(err)
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Post(s.url("/solve"), "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

func quickSpec(t *testing.T) *serial.SolveSpec {
	t.Helper()
	rng := rand.New(rand.NewSource(8))
	net := serial.FromGraph(roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3}))
	return &serial.SolveSpec{Network: net, Delta: 0.3, Epsilon: 5}
}

// slowSpec is sized so an exact solve takes a couple of seconds across
// dozens of CG rounds — wide enough a SIGKILL reliably lands mid-solve.
func slowSpec(t *testing.T) *serial.SolveSpec {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	net := serial.FromGraph(roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 3, Cols: 3, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.15,
	}))
	return &serial.SolveSpec{Network: net, Delta: 0.15, Epsilon: 5, Exact: true}
}

// TestKillRestartRecovery is the end-to-end crash suite: a vlpserved
// process is SIGKILLed — once after completing a solve, once in the
// middle of one — and its successor over the same store directory must
// serve the completed mechanism without a cold solve and finish the
// interrupted solve from its checkpoint.
func TestKillRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	bin := buildServed(t)
	dir := t.TempDir()
	spec := quickSpec(t)

	// Life 1: solve, confirm the snapshot is durable, die without warning.
	s1 := startServed(t, bin, freeAddr(t), "-store-dir", dir)
	first, err := s1.solveSpec(spec, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	s1.waitStat("store_writes", 1, 10*time.Second)
	s1.kill()

	// Life 2: the same spec must be served warm from disk — zero solves.
	s2 := startServed(t, bin, freeAddr(t), "-store-dir", dir)
	second, err := s2.solveSpec(spec, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.stats()
	if st["solves"] != 0 {
		t.Fatalf("warm restart ran %v solves, want 0", st["solves"])
	}
	if st["store_loads"] < 1 {
		t.Fatalf("store_loads = %v, want ≥ 1", st["store_loads"])
	}
	if first["etdd"] != second["etdd"] {
		t.Fatalf("served ETDD changed across restart: %v → %v", first["etdd"], second["etdd"])
	}
	if first["key"] != second["key"] {
		t.Fatalf("digest changed across restart: %v → %v", first["key"], second["key"])
	}

	// Life 2, part two: start a slow exact solve, kill mid-run as soon as
	// a checkpoint is durable.
	slow := slowSpec(t)
	go func() {
		// The request dies with the process; the solve's progress is the
		// checkpoint file, not the response.
		_, _ = s2.solveSpec(slow, 5*time.Minute)
	}()
	s2.waitStat("checkpoint_writes", 1, time.Minute)
	s2.kill()

	// Life 3: the interrupted solve is recovered and finished in the
	// background; the quick spec still serves warm alongside it.
	s3 := startServed(t, bin, freeAddr(t), "-store-dir", dir)
	s3.waitStat("recovered_solves", 1, 10*time.Second)
	if _, err := s3.solveSpec(spec, time.Minute); err != nil {
		t.Fatal(err)
	}
	s3.waitStat("store_writes", 1, 2*time.Minute) // recovered solve persisted optimal
	st = s3.stats()
	if st["solves"] != 0 {
		t.Fatalf("restart cold-solved %v specs, want 0 (recovery is background, quick spec is warm)", st["solves"])
	}
	// The recovered mechanism is served from cache without any new solve.
	res, err := s3.solveSpec(slow, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res["cached"] != true {
		t.Fatal("recovered solve not served from cache")
	}
	if q, ok := res["quality"].(string); ok && q != "" && q != serial.QualityOptimal {
		t.Fatalf("recovered solve served tier %q, want optimal", q)
	}
}

// rawStats fetches GET /stats without dropping non-numeric fields.
func (s *served) rawStats() map[string]interface{} {
	s.t.Helper()
	resp, err := http.Get(s.url("/stats"))
	if err != nil {
		s.t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		s.t.Fatal(err)
	}
	return raw
}

// leaseState reads the instance's fleet role from /stats.
func (s *served) leaseState() string {
	v, _ := s.rawStats()["lease_state"].(string)
	return v
}

// startFleetMember launches one vlpserved -fleet process over dir with
// a short lease so failover tests run in seconds.
func startFleetMember(t *testing.T, bin, dir, name string) *served {
	t.Helper()
	addr := freeAddr(t)
	return startServed(t, bin, addr,
		"-store-dir", dir, "-fleet",
		"-instance", name,
		"-advertise", "http://"+addr,
		"-lease-ttl", "1s", "-fleet-poll", "200ms")
}

// TestLeaderFailover is the kill-the-leader suite: three real vlpserved
// processes share one store directory; the leader is SIGKILLed in the
// middle of a checkpointing solve; a follower must win the election
// within roughly one lease TTL, re-enqueue the interrupted solve from
// its durable checkpoint, and finish it — while the remaining follower
// keeps serving by proxying cold specs to the new leader.
func TestLeaderFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	bin := buildServed(t)
	dir := t.TempDir()

	s1 := startFleetMember(t, bin, dir, "m1")
	s2 := startFleetMember(t, bin, dir, "m2")
	s3 := startFleetMember(t, bin, dir, "m3")

	if got := s1.leaseState(); got != "leader" {
		t.Fatalf("first member lease_state = %q, want leader", got)
	}
	for _, f := range []*served{s2, s3} {
		if got := f.leaseState(); got != "follower" {
			t.Fatalf("late member lease_state = %q, want follower", got)
		}
	}

	// Kill the leader mid-solve, as soon as a checkpoint is durable.
	slow := slowSpec(t)
	go func() { _, _ = s1.solveSpec(slow, 5*time.Minute) }()
	s1.waitStat("checkpoint_writes", 1, time.Minute)
	killedAt := time.Now()
	s1.kill()

	// A follower is elected within ~TTL and its promotion re-enqueues
	// the dead leader's interrupted solve.
	var leader, follower *served
	deadline := time.Now().Add(15 * time.Second)
	for leader == nil && time.Now().Before(deadline) {
		for _, c := range []*served{s2, s3} {
			if c.leaseState() == "leader" {
				leader = c
			} else {
				follower = c
			}
		}
		if leader == nil {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if leader == nil || follower == nil {
		t.Fatalf("no follower took over: m2=%q m3=%q", s2.leaseState(), s3.leaseState())
	}
	if fence := leader.stats()["fence_token"]; fence < 2 {
		t.Fatalf("new leader fence_token = %v, want ≥ 2 (takeover bumps)", fence)
	}
	leader.waitStat("recovered_solves", 1, 10*time.Second)
	// The re-enqueued solve finishes in the background and commits under
	// the new fence.
	leader.waitStat("store_writes", 1, 2*time.Minute)
	res, err := leader.solveSpec(slow, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if q, ok := res["quality"].(string); ok && q != "" && q != serial.QualityOptimal {
		t.Fatalf("recovered solve served tier %q, want optimal", q)
	}
	// The failover window: SIGKILL of the lease holder to the first
	// optimal-tier serve by its successor — election, checkpoint
	// recovery, and the recommit all inside it.
	failover := time.Since(killedAt)
	t.Logf("failover window: SIGKILL -> first optimal serve in %v", failover)
	recordFailover(t, failover)

	// The remaining follower never solves: a cold spec is proxied to the
	// new leader and read back through the store.
	if _, err := follower.solveSpec(quickSpec(t), time.Minute); err != nil {
		t.Fatal(err)
	}
	fst := follower.stats()
	if fst["solves"] != 0 {
		t.Fatalf("follower ran %v solves, want 0", fst["solves"])
	}
	if fst["proxied_solves"] < 1 {
		t.Fatalf("proxied_solves = %v, want ≥ 1", fst["proxied_solves"])
	}
	if fst["store_writes"] != 0 {
		t.Fatalf("follower committed %v snapshots, want 0 (single writer)", fst["store_writes"])
	}
}

// recordFailover stamps the measured failover window into the
// BENCH_serve.json named by VLP_FAILOVER_OUT, re-validating the file
// through the same strict schema gate ci.sh applies. The env var is
// only set when regenerating the checked-in artifact; the CI gate runs
// without it and just logs the measurement, so the tree stays clean.
func recordFailover(t *testing.T, d time.Duration) {
	t.Helper()
	path := os.Getenv("VLP_FAILOVER_OUT")
	if path == "" {
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("VLP_FAILOVER_OUT: %v", err)
	}
	rep, err := loadgen.ValidateJSON(data)
	if err != nil {
		t.Fatalf("VLP_FAILOVER_OUT %s is not a valid BENCH_serve.json: %v", path, err)
	}
	rep.FailoverMs = float64(d) / float64(time.Millisecond)
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadgen.ValidateJSON(out); err != nil {
		t.Fatalf("stamped report failed the schema gate: %v", err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("stamped failover_ms=%.1f into %s", rep.FailoverMs, path)
}

// TestDeprecatedSolvesFlagWarns: the -solves alias still works but
// routes a deprecation warning through the standard log package.
func TestDeprecatedSolvesFlagWarns(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real server process")
	}
	bin := buildServed(t)
	addr := freeAddr(t)
	cmd := exec.Command(bin, "-addr", addr, "-no-store", "-solves", "3")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if resp, err := http.Get("http://" + addr + "/healthz"); err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Join cmd.Wait (and with it exec's stderr copier) before reading the
	// buffer; the warning is logged during startup, so it is complete.
	_ = cmd.Process.Signal(syscall.SIGKILL)
	_ = cmd.Wait()
	if !strings.Contains(stderr.String(), "-solves is deprecated") {
		t.Fatalf("no deprecation warning on stderr, got:\n%s", stderr.String())
	}
}

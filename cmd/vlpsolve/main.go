// Command vlpsolve solves the D-VLP obfuscation LP for a road network
// produced by vlpgen and emits the mechanism as JSON.
//
// Usage:
//
//	vlpsolve -in network.json [-eps E] [-radius R] [-delta D]
//	         [-exact] [-xi X] [-out mech.json] [-stats]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/serial"
)

func main() {
	in := flag.String("in", "", "input network JSON (from vlpgen); required")
	out := flag.String("out", "", "output mechanism JSON (default stdout)")
	eps := flag.Float64("eps", 5, "Geo-I epsilon (1/km)")
	radius := flag.Float64("radius", 0, "Geo-I protection radius r (km); 0 = all pairs")
	delta := flag.Float64("delta", 0.1, "interval length (km)")
	exact := flag.Bool("exact", false, "solve to optimality instead of the 2% dual gap")
	xi := flag.Float64("xi", -0.01, "column-generation termination threshold ξ (≤ 0)")
	stats := flag.Bool("stats", false, "print per-iteration convergence to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the solve to this file")
	memprofile := flag.String("memprofile", "", "write a post-solve heap profile to this file")
	flag.Parse()

	if *in == "" {
		fatalf("-in is required")
	}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	defer writeMemProfile(*memprofile)
	f, err := os.Open(*in)
	if err != nil {
		fatalf("open: %v", err)
	}
	var payload struct {
		serial.Network
		Prior []float64 `json:"prior"`
	}
	err = serial.ReadJSON(f, &payload)
	f.Close()
	if err != nil {
		fatalf("decode: %v", err)
	}
	g, err := payload.ToGraph()
	if err != nil {
		fatalf("network: %v", err)
	}

	part, err := discretize.New(g, *delta)
	if err != nil {
		fatalf("discretize: %v", err)
	}
	var prior []float64
	if len(payload.Prior) == part.K() {
		prior = payload.Prior
	} else if len(payload.Prior) > 0 {
		fmt.Fprintf(os.Stderr, "vlpsolve: prior has %d entries but delta %.3g yields K=%d; using uniform\n",
			len(payload.Prior), *delta, part.K())
	}
	pr, err := core.NewProblem(part, core.Config{
		Epsilon: *eps, Radius: *radius, PriorP: prior, PriorQ: prior,
	})
	if err != nil {
		fatalf("problem: %v", err)
	}

	opts := core.CGOptions{Xi: *xi, RelGap: 0.02}
	if *exact {
		opts = core.CGOptions{Xi: 0}
	}
	if *stats {
		opts.OnIteration = func(iter int, it core.CGIteration) {
			fmt.Fprintf(os.Stderr, "iter %d: master %.6g minZeta %.6g bound %.6g added %d (%s)\n",
				iter, it.MasterObj, it.MinZeta, it.LowerBound, it.ColumnsAdded, it.Elapsed.Round(time.Millisecond))
		}
	}
	start := time.Now()
	sol, err := core.SolveCG(pr, opts)
	if err != nil {
		fatalf("solve: %v", err)
	}
	fmt.Fprintf(os.Stderr, "vlpsolve: K=%d, ETDD=%.6g km, bound=%.6g km, %d iterations, %s\n",
		part.K(), sol.ETDD, sol.LowerBound, len(sol.Iterations), time.Since(start).Round(time.Millisecond))
	if sol.Stopped != "" {
		fmt.Fprintf(os.Stderr, "vlpsolve: note: %s\n", sol.Stopped)
	}

	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatalf("create: %v", err)
		}
		defer of.Close()
		w = of
	}
	if err := serial.WriteJSON(w, serial.FromMechanism(sol.Mechanism, *delta, *eps, *radius, sol.ETDD, sol.LowerBound)); err != nil {
		fatalf("encode: %v", err)
	}
}

// writeMemProfile dumps an allocation profile after a forced GC, so the
// numbers reflect live retention plus cumulative alloc sites rather than
// whatever garbage the last CG round left behind.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("memprofile: %v", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		fatalf("memprofile: %v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vlpsolve: "+format+"\n", args...)
	os.Exit(1)
}

// Crowdsourcing: the paper's full Section-2 framework in motion — a
// fleet of vehicle workers cycling available → occupied → available, a
// Poisson task stream, per-snapshot assignment from obfuscated reports —
// and what privacy costs the platform (assignment regret, task latency).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/roadnet"
	"repro/internal/scsim"
)

func main() {
	rng := rand.New(rand.NewSource(9))
	g := roadnet.RomeLike(rng, roadnet.RomeLikeConfig{
		DowntownRows: 3, DowntownCols: 3, DowntownSpacing: 0.3,
		RingRadiusFactor: 1.5, Radials: 4, SuburbDepth: 1,
		SuburbSpacing: 0.4, OneWayFrac: 0.5, WeightJitter: 0.15,
	})
	part, err := discretize.New(g, 0.25)
	if err != nil {
		log.Fatal(err)
	}

	cfg := scsim.Config{
		Workers:       10,
		TaskRate:      1.0 / 45, // a task every ~45 s
		SnapshotEvery: 30,
		Duration:      2 * 3600,
		SpeedKmh:      30,
		ServiceTime:   120,
	}

	fmt.Printf("city: %d road segments, %d intervals; fleet of %d, ~%d tasks/h\n\n",
		g.NumEdges(), part.K(), cfg.Workers, int(3600*cfg.TaskRate))

	fmt.Println("privacy        tasks done   mean wait   mean travel   assignment regret")
	for _, eps := range []float64{0, 2, 5, 10} {
		c := cfg
		label := "none (exact)"
		if eps > 0 {
			pr, err := core.NewProblem(part, core.Config{Epsilon: eps})
			if err != nil {
				log.Fatal(err)
			}
			sol, err := core.SolveCG(pr, core.CGOptions{Xi: -0.1, RelGap: 0.05})
			if err != nil {
				log.Fatal(err)
			}
			c.Mechanism = sol.Mechanism
			label = fmt.Sprintf("ε = %-2.0f /km  ", eps)
		}
		m, err := scsim.Run(rand.New(rand.NewSource(100)), part, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s   %6d      %6.0f s     %6.3f km     %8.4f km/snapshot\n",
			label, m.TasksCompleted, m.MeanWait, m.MeanTravel, m.AssignmentRegret)
	}
	fmt.Println("\nstricter privacy (smaller ε) costs the platform more regret per")
	fmt.Println("assignment snapshot; the road-aware mechanism keeps it modest.")
}

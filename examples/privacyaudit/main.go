// Privacy audit: attack a solved obfuscation mechanism with the paper's
// two threat models — the single-report Bayesian optimal-inference
// attack and the multi-report HMM (Viterbi) attack whose transition
// model is learned from fleet traces — across reporting cadences
// (Fig. 15's experiment as a library walkthrough).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	g := roadnet.RomeLike(rng, roadnet.RomeLikeConfig{
		DowntownRows: 3, DowntownCols: 3, DowntownSpacing: 0.3,
		RingRadiusFactor: 1.5, Radials: 4, SuburbDepth: 1,
		SuburbSpacing: 0.4, OneWayFrac: 0.5, WeightJitter: 0.15,
	})
	part, err := discretize.New(g, 0.25)
	if err != nil {
		log.Fatal(err)
	}

	// Fleet traces: priors for the defender, transitions for the attacker.
	traces, err := trace.Simulate(rng, g, trace.SimConfig{
		Vehicles: 30, Duration: 1800, RecordEvery: 7,
		SpeedKmh: 30, CenterBias: 1.2, DropoutProb: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	prior := trace.PriorFromTraces(part, traces, 0.5)

	pr, err := core.NewProblem(part, core.Config{Epsilon: 5, PriorP: prior, PriorQ: prior})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := core.SolveCG(pr, core.CGOptions{Xi: -0.1, RelGap: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	mech := sol.Mechanism
	fmt.Printf("mechanism: K=%d, ETDD %.4f km, Geo-I violation %.2g\n\n",
		part.K(), sol.ETDD, pr.GeoIViolation(mech))

	bayes, err := attack.NewBayes(mech, prior)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Bayesian optimal-inference attack: expected error %.4f km\n\n", bayes.AdvError())

	fmt.Println("HMM (Viterbi) attack by report interval:")
	fmt.Println("  interval   Bayes err   HMM err")
	victim := traces[0]
	for _, stride := range []int{4, 8, 12, 16} {
		var seqs [][]int
		for _, tr := range traces[1:] { // attacker learns from the rest of the fleet
			if s := trace.IntervalSequence(part, tr, stride); len(s) > 1 {
				seqs = append(seqs, s)
			}
		}
		trans := attack.LearnTransitions(part.K(), seqs, 1e-3)
		hmm, err := attack.NewHMM(mech, prior, trans)
		if err != nil {
			log.Fatal(err)
		}

		truth := trace.IntervalSequence(part, victim, stride)
		reports := make([]int, len(truth))
		for t, i := range truth {
			reports[t] = mech.SampleInterval(rng, i)
		}
		hmmErr := hmm.SequenceError(truth, reports)
		bErr := 0.0
		for t, i := range truth {
			bErr += part.MidDistMin(i, bayes.Estimate(reports[t]))
		}
		bErr /= float64(len(truth))
		fmt.Printf("  %5.0f s   %8.4f km  %7.4f km\n",
			float64(stride)*7, bErr, hmmErr)
	}
	fmt.Println("\nshorter report intervals correlate consecutive locations, so the")
	fmt.Println("HMM adversary infers more (lower error = less privacy).")
}

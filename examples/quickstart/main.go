// Quickstart: build a small road network, solve an obfuscation
// mechanism, obfuscate a location and inspect the privacy/quality
// numbers — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	vlp "repro"
)

func main() {
	// A 3×3 downtown block: two-way avenues, two one-way streets.
	r := vlp.NewRoadNetwork()
	var n [3][3]int
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			n[i][j] = r.AddNode(float64(j)*0.3, float64(i)*0.3)
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if i == 1 { // the middle avenue runs one-way eastbound
				r.AddRoad(n[i][j], n[i][j+1], 0)
			} else {
				r.AddTwoWayRoad(n[i][j], n[i][j+1], 0)
			}
			if j == 1 && i < 2 { // and one street runs one-way northbound
				r.AddRoad(n[i][2], n[i+1][2], 0)
			} else if i < 2 {
				r.AddTwoWayRoad(n[i][j], n[i+1][j], 0)
			}
		}
	}
	// Close the grid's remaining verticals.
	r.AddTwoWayRoad(n[0][2], n[1][2], 0)
	r.AddTwoWayRoad(n[1][0], n[2][0], 0)

	mech, err := vlp.Build(r, vlp.Params{
		Epsilon: 5,    // 1/km — the Geo-I privacy budget
		Delta:   0.15, // km — discretisation interval
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("intervals (K):       %d\n", mech.NumIntervals())
	fmt.Printf("quality loss (ETDD): %.4f km (optimal ≥ %.4f km)\n",
		mech.QualityLoss(), mech.LowerBound())
	adv, err := mech.AdversaryError()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adversary error:     %.4f km (higher = more private)\n", adv)
	fmt.Printf("Geo-I violation:     %.2g (≤ 0 means satisfied)\n\n", mech.GeoIViolation())

	// Obfuscate a few reports from a vehicle parked 50 m into road 0.
	rng := rand.New(rand.NewSource(7))
	truth := vlp.Location{Road: 0, FromStart: 0.05}
	fmt.Println("five obfuscated reports for the same true location:")
	for i := 0; i < 5; i++ {
		obf := mech.Obfuscate(rng, truth)
		fmt.Printf("  road %2d at %.3f km from its start\n", obf.Road, obf.FromStart)
	}
}

// Ridesharing: the paper's multi-vehicle task-assignment scenario
// (Fig. 14). A dispatch server receives obfuscated vehicle locations,
// matches tasks to vehicles by estimated travel distance with an optimal
// (Hungarian) matching, and pays the true travel cost. The example
// compares our road-network mechanism against the planar (2Db) baseline
// and the no-privacy floor.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/planar"
	"repro/internal/roadnet"
)

const (
	numVehicles = 12
	numTasks    = 8
	rounds      = 20
	eps         = 5.0
	delta       = 0.25
)

func main() {
	rng := rand.New(rand.NewSource(11))
	g := roadnet.RomeLike(rng, roadnet.RomeLikeConfig{
		DowntownRows: 3, DowntownCols: 3, DowntownSpacing: 0.3,
		RingRadiusFactor: 1.5, Radials: 4, SuburbDepth: 1,
		SuburbSpacing: 0.4, OneWayFrac: 0.5, WeightJitter: 0.15,
	})
	part, err := discretize.New(g, delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d nodes, %d road segments, %d intervals\n",
		g.NumNodes(), g.NumEdges(), part.K())

	pr, err := core.NewProblem(part, core.Config{Epsilon: eps})
	if err != nil {
		log.Fatal(err)
	}
	ours, err := core.SolveCG(pr, core.CGOptions{Xi: -0.1, RelGap: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	twoDb, err := planar.Solve2D(part, eps, 0, nil, planar.Options{
		CG: core.CGOptions{Xi: -0.1, RelGap: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved: ours ETDD %.4f km; 2Db Euclidean loss %.4f km\n\n",
		ours.ETDD, twoDb.EuclidLoss)

	var totOurs, totPlanar, totTrue float64
	for round := 0; round < rounds; round++ {
		vehicles := make([]int, numVehicles)
		tasks := make([]int, numTasks)
		for i := range vehicles {
			vehicles[i] = part.Locate(roadnet.RandomLocation(rng, g))
		}
		for i := range tasks {
			tasks[i] = part.Locate(roadnet.RandomLocation(rng, g))
		}
		totTrue += dispatch(part, vehicles, vehicles, tasks)

		obfOurs := make([]int, numVehicles)
		obfPlanar := make([]int, numVehicles)
		for i, v := range vehicles {
			obfOurs[i] = ours.Mechanism.SampleInterval(rng, v)
			obfPlanar[i] = twoDb.Mechanism.SampleInterval(rng, v)
		}
		totOurs += dispatch(part, vehicles, obfOurs, tasks)
		totPlanar += dispatch(part, vehicles, obfPlanar, tasks)
	}

	fmt.Printf("mean true travel cost over %d dispatch rounds (%d vehicles, %d tasks):\n",
		rounds, numVehicles, numTasks)
	fmt.Printf("  no obfuscation:       %.3f km\n", totTrue/rounds)
	fmt.Printf("  ours (road Geo-I):    %.3f km\n", totOurs/rounds)
	fmt.Printf("  2Db (planar Geo-I):   %.3f km\n", totPlanar/rounds)
}

// dispatch matches tasks to vehicles using reported intervals and
// returns the true total travel distance of the matched vehicles.
func dispatch(part *discretize.Partition, trueV, reportedV, tasks []int) float64 {
	est := make([][]float64, len(tasks))
	for t, task := range tasks {
		est[t] = make([]float64, len(reportedV))
		for v, rep := range reportedV {
			est[t][v] = part.MidDist(rep, task)
		}
	}
	match, _, err := assign.Hungarian(est)
	if err != nil {
		log.Fatal(err)
	}
	total := 0.0
	for t, v := range match {
		total += part.MidDist(trueV[v], tasks[t])
	}
	return total
}

// Serveclient: a well-behaved vlpserved client. The service sheds load
// on purpose — 429 past the solve-admission gate, 503 while draining —
// so a production caller wraps its requests in the retrying client
// (internal/retryhttp) instead of treating those as failures. This
// example spins up an in-process server (or targets a live one via
// -addr), then solves a spec and obfuscates a location batch through
// the retry layer, printing the quality tier of each response so
// degraded serves are visible.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/retryhttp"
	"repro/internal/roadnet"
	"repro/internal/serial"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "", "vlpserved base URL (empty: run an in-process server)")
	epsilon := flag.Float64("epsilon", 4, "privacy budget ε")
	flag.Parse()

	base := *addr
	if base == "" {
		// Self-contained demo: an in-process instance with a tight solve
		// admission gate, so the retry path actually exercises 429s when
		// the example is run with concurrent batches.
		srv := server.New(context.Background(), server.Config{MaxSolves: 1, SolveDeadline: time.Minute})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Shutdown(context.Background())
		base = ts.URL
	}

	client := &retryhttp.Client{
		HTTP:        &http.Client{Timeout: 5 * time.Minute},
		MaxAttempts: 5,
		BaseDelay:   200 * time.Millisecond,
		MaxDelay:    10 * time.Second,
	}

	// A small random downtown grid as the shared road network.
	g := roadnet.Grid(rand.New(rand.NewSource(7)), roadnet.GridConfig{
		Rows: 3, Cols: 3, Spacing: 0.3, OneWayFrac: 0.3, WeightJitter: 0.1,
	})
	spec := serial.SolveSpec{Network: serial.FromGraph(g), Delta: 0.15, Epsilon: *epsilon}

	var solved serial.SolveResponse
	if err := post(client, base+"/solve", &spec, &solved); err != nil {
		log.Fatalf("solve: %v", err)
	}
	fmt.Printf("solved %s: K=%d ETDD=%.4f quality=%s cached=%v\n",
		solved.Key[:12], solved.K, solved.ETDD, solved.Quality, solved.Cached)

	// Obfuscate a vehicle's reported positions, one batch per tick.
	rng := rand.New(rand.NewSource(42))
	req := serial.ObfuscateRequest{SolveSpec: spec}
	for i := 0; i < 8; i++ {
		road := rng.Intn(g.NumEdges())
		w := g.Edge(roadnet.EdgeID(road)).Weight
		req.Locations = append(req.Locations, serial.Loc{Road: road, FromStart: rng.Float64() * w})
	}
	var obf serial.ObfuscateResponse
	if err := post(client, base+"/obfuscate", &req, &obf); err != nil {
		log.Fatalf("obfuscate: %v", err)
	}
	fmt.Printf("obfuscated %d locations (quality=%s):\n", len(obf.Locations), obf.Quality)
	for i, loc := range obf.Locations {
		fmt.Printf("  true road %2d @ %.3f  ->  reported road %2d @ %.3f\n",
			req.Locations[i].Road, req.Locations[i].FromStart, loc.Road, loc.FromStart)
	}
}

// post sends a JSON body through the retrying client's shared PostJSON
// path (the same one cmd/vlpload's warmup uses), surfacing any final
// non-2xx status as an error.
func post(c *retryhttp.Client, url string, in, out interface{}) error {
	status, err := c.PostJSON(context.Background(), url, in, out)
	if err != nil {
		return err
	}
	if status < 200 || status >= 300 {
		return fmt.Errorf("%s: server answered %d past the retry budget", url, status)
	}
	return nil
}

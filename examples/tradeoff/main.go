// Trade-off: sweep the privacy budget ε and chart quality loss against
// adversary error, alongside the closed-form Proposition 4.5 lower bound
// (Section 4.4's analysis as a runnable walkthrough).
package main

import (
	"fmt"
	"log"
	"strings"

	vlp "repro"
)

func main() {
	r := vlp.NewRoadNetwork()
	// A 4×3 town with a one-way main street.
	var n [3][4]int
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			n[i][j] = r.AddNode(float64(j)*0.35, float64(i)*0.35)
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == 1 {
				r.AddRoad(n[i][j], n[i][j+1], 0) // one-way main street
			} else {
				r.AddTwoWayRoad(n[i][j], n[i][j+1], 0)
			}
		}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			r.AddTwoWayRoad(n[i][j], n[i+1][j], 0)
		}
	}

	fmt.Println("eps    quality-loss  lower-bound  adversary-error")
	var lastLoss float64
	for _, eps := range []float64{1, 2, 3, 5, 8, 12} {
		m, err := vlp.Build(r, vlp.Params{Epsilon: eps, Delta: 0.35})
		if err != nil {
			log.Fatal(err)
		}
		adv, err := m.AdversaryError()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4.0f   %9.4f km  %8.4f km  %12.4f km  %s\n",
			eps, m.QualityLoss(), m.LowerBound(), adv,
			bar(m.QualityLoss(), 0.8))
		lastLoss = m.QualityLoss()
	}
	_ = lastLoss
	fmt.Println("\nhigher ε buys accuracy (lower quality loss) at the price of privacy")
	fmt.Println("(lower adversary error); the bound is Proposition 4.5's floor.")
}

// bar renders v against a full-scale maximum as a tiny ASCII gauge.
func bar(v, max float64) string {
	cells := int(v / max * 24)
	if cells > 24 {
		cells = 24
	}
	if cells < 0 {
		cells = 0
	}
	return "[" + strings.Repeat("#", cells) + strings.Repeat(".", 24-cells) + "]"
}

// Package assign implements the server-side multi-vehicle task
// assignment of the paper's Fig. 14 experiment: given an estimated
// travel-cost matrix (based on the workers' *obfuscated* locations), the
// server matches every task to a distinct vehicle. An optimal
// minimum-cost matching (the O(n³) Hungarian algorithm with potentials)
// and a greedy baseline are provided; the experiment then accounts the
// matching's *true* travel cost.
package assign

import (
	"fmt"
	"math"
)

// Hungarian solves the rectangular assignment problem: cost[i][j] is the
// cost of assigning row i (task) to column j (vehicle), with
// len(cost) ≤ len(cost[0]). It returns, per row, the chosen column —
// all distinct — and the minimal total cost.
func Hungarian(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if m < n {
		return nil, 0, fmt.Errorf("assign: %d rows exceed %d columns", n, m)
	}
	for i, row := range cost {
		if len(row) != m {
			return nil, 0, fmt.Errorf("assign: row %d has %d entries, want %d", i, len(row), m)
		}
		for j, c := range row {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, 0, fmt.Errorf("assign: cost[%d][%d] = %v", i, j, c)
			}
		}
	}

	// Hungarian with row/column potentials (1-indexed internals).
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)   // p[j] = row matched to column j
	way := make([]int, m+1) // alternating-path backtracking
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	out := make([]int, n)
	total := 0.0
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			out[p[j]-1] = j - 1
			total += cost[p[j]-1][j-1]
		}
	}
	return out, total, nil
}

// Greedy assigns rows in order, each to its cheapest unused column — the
// myopic baseline a naive dispatcher would use.
func Greedy(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if m < n {
		return nil, 0, fmt.Errorf("assign: %d rows exceed %d columns", n, m)
	}
	used := make([]bool, m)
	out := make([]int, n)
	total := 0.0
	for i := 0; i < n; i++ {
		best, bestC := -1, math.Inf(1)
		for j := 0; j < m; j++ {
			if !used[j] && cost[i][j] < bestC {
				best, bestC = j, cost[i][j]
			}
		}
		used[best] = true
		out[i] = best
		total += bestC
	}
	return out, total, nil
}

// TotalCost sums cost[i][match[i]] — used to account an assignment made
// on estimated costs against the true cost matrix.
func TotalCost(cost [][]float64, match []int) float64 {
	total := 0.0
	for i, j := range match {
		total += cost[i][j]
	}
	return total
}

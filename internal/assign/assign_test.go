package assign

import (
	"math"
	"math/rand"
	"testing"
)

func bruteForceAssign(cost [][]float64) float64 {
	n, m := len(cost), len(cost[0])
	cols := make([]int, m)
	for j := range cols {
		cols[j] = j
	}
	best := math.Inf(1)
	var rec func(i int, used []bool, acc float64)
	rec = func(i int, used []bool, acc float64) {
		if acc >= best {
			return
		}
		if i == n {
			best = acc
			return
		}
		for j := 0; j < m; j++ {
			if !used[j] {
				used[j] = true
				rec(i+1, used, acc+cost[i][j])
				used[j] = false
			}
		}
	}
	rec(0, make([]bool, m), 0)
	return best
}

func TestHungarianKnownCase(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	match, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %v, want 5 (match %v)", total, match)
	}
	seen := map[int]bool{}
	for _, j := range match {
		if seen[j] {
			t.Fatalf("duplicate column in match %v", match)
		}
		seen[j] = true
	}
}

func TestHungarianRectangular(t *testing.T) {
	cost := [][]float64{
		{10, 1, 10, 10},
		{10, 10, 2, 10},
	}
	match, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || match[0] != 1 || match[1] != 2 {
		t.Fatalf("match %v total %v", match, total)
	}
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Round(rng.Float64()*1000) / 100
			}
		}
		_, total, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceAssign(cost)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: Hungarian %v, brute force %v (cost %v)", trial, total, want, cost)
		}
	}
}

func TestHungarianRejectsBadInput(t *testing.T) {
	if _, _, err := Hungarian([][]float64{{1}, {2}}); err == nil {
		t.Fatal("accepted more rows than columns")
	}
	if _, _, err := Hungarian([][]float64{{1, math.NaN()}}); err == nil {
		t.Fatal("accepted NaN cost")
	}
	if _, _, err := Hungarian([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("accepted ragged matrix")
	}
	if match, total, err := Hungarian(nil); err != nil || match != nil || total != 0 {
		t.Fatal("empty input must be a no-op")
	}
}

func TestGreedyNeverBeatsHungarian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		m := n + rng.Intn(4)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 10
			}
		}
		_, hTotal, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		gMatch, gTotal, err := Greedy(cost)
		if err != nil {
			t.Fatal(err)
		}
		if hTotal > gTotal+1e-9 {
			t.Fatalf("trial %d: Hungarian %v worse than greedy %v", trial, hTotal, gTotal)
		}
		if math.Abs(TotalCost(cost, gMatch)-gTotal) > 1e-9 {
			t.Fatalf("TotalCost disagrees with greedy total")
		}
		seen := map[int]bool{}
		for _, j := range gMatch {
			if seen[j] {
				t.Fatalf("greedy reused a column: %v", gMatch)
			}
			seen[j] = true
		}
	}
}

func TestHungarianNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 2},
		{3, -4},
	}
	_, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != -9 {
		t.Fatalf("total = %v, want -9", total)
	}
}

// Package attack implements the paper's two threat models against a
// solved obfuscation mechanism (Section 3.2.2):
//
//   - the Bayesian optimal-inference attack on a single report: the
//     adversary, knowing the mechanism Z and the worker prior f_P,
//     inverts the report by Bayes' rule and outputs the interval
//     minimising the posterior-expected travel distance. The resulting
//     expected error is the paper's AdvError privacy metric.
//   - the spatial-correlation-aware attack on a report sequence: a
//     hidden Markov model whose hidden states are true intervals,
//     whose emissions are the mechanism's rows, and whose transition
//     matrix is learned from floating-vehicle data (Eq. 5); decoding is
//     Viterbi maximum-likelihood sequence inference.
package attack

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/discretize"
)

// Bayes is the single-report optimal-inference adversary.
type Bayes struct {
	part  *discretize.Partition
	mech  *core.Mechanism
	prior []float64

	// est[j] is the adversary's optimal estimate for report j.
	est []int
	// pObs[j] is the marginal probability of observing report j.
	pObs []float64
}

// NewBayes precomputes the adversary's optimal estimate for every
// possible report. prior must match the mechanism's partition; nil means
// uniform.
func NewBayes(m *core.Mechanism, prior []float64) (*Bayes, error) {
	k := m.K()
	if prior == nil {
		prior = core.UniformPrior(k)
	}
	if len(prior) != k {
		return nil, fmt.Errorf("attack: prior has %d entries, want %d", len(prior), k)
	}
	b := &Bayes{
		part:  m.Part,
		mech:  m,
		prior: prior,
		est:   make([]int, k),
		pObs:  make([]float64, k),
	}
	for j := 0; j < k; j++ {
		post := b.Posterior(j)
		b.pObs[j] = 0
		for i := 0; i < k; i++ {
			b.pObs[j] += prior[i] * m.Prob(i, j)
		}
		b.est[j] = optimalRemap(b.part, post)
	}
	return b, nil
}

// Posterior returns Pr(true = i | report = j) for all i.
func (b *Bayes) Posterior(j int) []float64 {
	k := b.mech.K()
	post := make([]float64, k)
	sum := 0.0
	for i := 0; i < k; i++ {
		post[i] = b.prior[i] * b.mech.Prob(i, j)
		sum += post[i]
	}
	if sum > 0 {
		for i := range post {
			post[i] /= sum
		}
	}
	return post
}

// Estimate returns the adversary's optimal guess for report j.
func (b *Bayes) Estimate(j int) int { return b.est[j] }

// AdvError returns the exact expected travel distance between the true
// interval and the adversary's optimal estimate:
//
//	Σ_i f_P(i) Σ_j z_{i,j} · d_min(u_i, u_ĵ)
//
// Higher AdvError means more privacy.
func (b *Bayes) AdvError() float64 {
	k := b.mech.K()
	tot := 0.0
	for i := 0; i < k; i++ {
		if b.prior[i] == 0 {
			continue
		}
		for j := 0; j < k; j++ {
			p := b.prior[i] * b.mech.Prob(i, j)
			if p == 0 {
				continue
			}
			tot += p * b.part.MidDistMin(i, b.est[j])
		}
	}
	return tot
}

// optimalRemap returns argmin_k Σ_i post[i]·d_min(i, k): the Bayes
// estimator under travel-distance loss.
func optimalRemap(part *discretize.Partition, post []float64) int {
	k := part.K()
	best, bestV := 0, math.Inf(1)
	for cand := 0; cand < k; cand++ {
		v := 0.0
		for i := 0; i < k; i++ {
			if post[i] == 0 {
				continue
			}
			v += post[i] * part.MidDistMin(i, cand)
			if v >= bestV {
				break
			}
		}
		if v < bestV {
			bestV = v
			best = cand
		}
	}
	return best
}

// HMM is the multi-report spatial-correlation-aware adversary.
type HMM struct {
	part  *discretize.Partition
	mech  *core.Mechanism
	prior []float64
	// trans is the K×K row-stochastic transition matrix between
	// consecutive reporting rounds.
	trans []float64
}

// NewHMM builds the adversary. trans must be K×K row-major and
// row-stochastic (LearnTransitions produces one); prior nil means
// uniform.
func NewHMM(m *core.Mechanism, prior, trans []float64) (*HMM, error) {
	k := m.K()
	if prior == nil {
		prior = core.UniformPrior(k)
	}
	if len(prior) != k {
		return nil, fmt.Errorf("attack: prior has %d entries, want %d", len(prior), k)
	}
	if len(trans) != k*k {
		return nil, fmt.Errorf("attack: transition matrix has %d entries, want %d", len(trans), k*k)
	}
	return &HMM{part: m.Part, mech: m, prior: prior, trans: trans}, nil
}

// Viterbi returns the maximum-likelihood true-interval sequence for the
// observed report sequence.
func (h *HMM) Viterbi(reports []int) []int {
	if len(reports) == 0 {
		return nil
	}
	k := h.mech.K()
	logZ := func(i, j int) float64 { return safeLog(h.mech.Prob(i, j)) }

	delta := make([]float64, k)
	back := make([][]int32, len(reports))
	for i := 0; i < k; i++ {
		delta[i] = safeLog(h.prior[i]) + logZ(i, reports[0])
	}
	next := make([]float64, k)
	for t := 1; t < len(reports); t++ {
		back[t] = make([]int32, k)
		for i := 0; i < k; i++ {
			bestV := math.Inf(-1)
			bestJ := 0
			for j := 0; j < k; j++ {
				lt := h.trans[j*k+i]
				if lt == 0 {
					continue
				}
				if v := delta[j] + math.Log(lt); v > bestV {
					bestV = v
					bestJ = j
				}
			}
			if math.IsInf(bestV, -1) {
				// No predecessor has positive probability; restart the
				// chain at i using the prior (robustness to sparse
				// transition estimates).
				bestV = safeLog(h.prior[i])
				bestJ = -1
			}
			next[i] = bestV + logZ(i, reports[t])
			if bestJ < 0 {
				back[t][i] = int32(i)
			} else {
				back[t][i] = int32(bestJ)
			}
		}
		delta, next = next, delta
	}

	// Backtrack.
	out := make([]int, len(reports))
	best, bestV := 0, math.Inf(-1)
	for i := 0; i < k; i++ {
		if delta[i] > bestV {
			bestV = delta[i]
			best = i
		}
	}
	out[len(reports)-1] = best
	for t := len(reports) - 1; t > 0; t-- {
		out[t-1] = int(back[t][out[t]])
	}
	return out
}

// SequenceError returns the mean travel-distance error of the Viterbi
// decoding against the true interval sequence.
func (h *HMM) SequenceError(truth, reports []int) float64 {
	if len(truth) != len(reports) || len(truth) == 0 {
		return math.NaN()
	}
	est := h.Viterbi(reports)
	tot := 0.0
	for t := range truth {
		tot += h.part.MidDistMin(truth[t], est[t])
	}
	return tot / float64(len(truth))
}

func safeLog(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

// Posteriors runs the forward-backward algorithm and returns, per round,
// the smoothed posterior Pr(true_t = i | all reports). Under travel-
// distance loss this is strictly more information than the Viterbi MAP
// path: the per-round Bayes-optimal estimate minimises the posterior-
// expected distance over the smoothed marginal.
func (h *HMM) Posteriors(reports []int) [][]float64 {
	if len(reports) == 0 {
		return nil
	}
	k := h.mech.K()
	n := len(reports)

	// Scaled forward pass: alpha[t][i] ∝ Pr(obs_1..t, state_t = i).
	alpha := make([][]float64, n)
	alpha[0] = make([]float64, k)
	for i := 0; i < k; i++ {
		alpha[0][i] = h.prior[i] * h.mech.Prob(i, reports[0])
	}
	normalize(alpha[0])
	for t := 1; t < n; t++ {
		alpha[t] = make([]float64, k)
		for i := 0; i < k; i++ {
			s := 0.0
			for j := 0; j < k; j++ {
				s += alpha[t-1][j] * h.trans[j*k+i]
			}
			alpha[t][i] = s * h.mech.Prob(i, reports[t])
		}
		normalize(alpha[t])
	}

	// Scaled backward pass: beta[t][i] ∝ Pr(obs_{t+1..n} | state_t = i).
	beta := make([][]float64, n)
	beta[n-1] = make([]float64, k)
	for i := range beta[n-1] {
		beta[n-1][i] = 1
	}
	for t := n - 2; t >= 0; t-- {
		beta[t] = make([]float64, k)
		for i := 0; i < k; i++ {
			s := 0.0
			for j := 0; j < k; j++ {
				s += h.trans[i*k+j] * h.mech.Prob(j, reports[t+1]) * beta[t+1][j]
			}
			beta[t][i] = s
		}
		normalize(beta[t])
	}

	post := make([][]float64, n)
	for t := 0; t < n; t++ {
		post[t] = make([]float64, k)
		for i := 0; i < k; i++ {
			post[t][i] = alpha[t][i] * beta[t][i]
		}
		normalize(post[t])
	}
	return post
}

// MarginalEstimates returns, per round, the Bayes-optimal estimate under
// travel-distance loss computed from the smoothed posteriors — the
// strongest sequence attack this package implements.
func (h *HMM) MarginalEstimates(reports []int) []int {
	post := h.Posteriors(reports)
	if post == nil {
		return nil
	}
	out := make([]int, len(post))
	for t, p := range post {
		out[t] = optimalRemap(h.part, p)
	}
	return out
}

// MarginalSequenceError returns the mean travel-distance error of the
// marginal (forward-backward) attack against the truth.
func (h *HMM) MarginalSequenceError(truth, reports []int) float64 {
	if len(truth) != len(reports) || len(truth) == 0 {
		return math.NaN()
	}
	est := h.MarginalEstimates(reports)
	tot := 0.0
	for t := range truth {
		tot += h.part.MidDistMin(truth[t], est[t])
	}
	return tot / float64(len(truth))
}

// normalize scales a non-negative vector to sum 1 in place; a zero
// vector becomes uniform (the chain lost track — no information).
func normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s <= 0 {
		u := 1 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return
	}
	for i := range v {
		v[i] /= s
	}
}

// LearnTransitions estimates the HMM transition matrix from observed
// true-interval sequences (floating-vehicle data, Eq. 5), with additive
// smoothing alpha so every transition stays decodable.
func LearnTransitions(k int, sequences [][]int, alpha float64) []float64 {
	if alpha <= 0 {
		alpha = 1e-3
	}
	counts := make([]float64, k*k)
	for _, seq := range sequences {
		for t := 0; t+1 < len(seq); t++ {
			counts[seq[t]*k+seq[t+1]]++
		}
	}
	trans := make([]float64, k*k)
	for i := 0; i < k; i++ {
		rowSum := 0.0
		for j := 0; j < k; j++ {
			rowSum += counts[i*k+j]
		}
		den := rowSum + alpha*float64(k)
		for j := 0; j < k; j++ {
			trans[i*k+j] = (counts[i*k+j] + alpha) / den
		}
	}
	return trans
}

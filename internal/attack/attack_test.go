package attack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/roadnet"
)

func solvedMechanism(t *testing.T, seed int64, eps float64) (*core.Problem, *core.Mechanism) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 2, Cols: 2, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.2,
	})
	part, err := discretize.New(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := core.NewProblem(part, core.Config{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SolveDirect(pr, core.DirectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return pr, res.Mechanism
}

func TestNewBayesValidation(t *testing.T) {
	_, m := solvedMechanism(t, 1, 3)
	if _, err := NewBayes(m, []float64{1}); err == nil {
		t.Fatal("accepted wrong-length prior")
	}
}

func TestPosteriorIsDistribution(t *testing.T) {
	_, m := solvedMechanism(t, 2, 3)
	b, err := NewBayes(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m.K(); j++ {
		post := b.Posterior(j)
		sum := 0.0
		for _, p := range post {
			if p < 0 {
				t.Fatalf("negative posterior entry")
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posterior(%d) sums to %v", j, sum)
		}
	}
}

func TestAdvErrorMatchesMonteCarlo(t *testing.T) {
	pr, m := solvedMechanism(t, 3, 3)
	b, err := NewBayes(m, pr.PriorP)
	if err != nil {
		t.Fatal(err)
	}
	exact := b.AdvError()

	rng := rand.New(rand.NewSource(4))
	k := m.K()
	const trials = 60000
	tot := 0.0
	for n := 0; n < trials; n++ {
		// Draw true interval from prior.
		u, i := rng.Float64(), 0
		acc := 0.0
		for ; i < k-1; i++ {
			acc += pr.PriorP[i]
			if u <= acc {
				break
			}
		}
		j := m.SampleInterval(rng, i)
		tot += pr.Part.MidDistMin(i, b.Estimate(j))
	}
	mc := tot / trials
	if math.Abs(mc-exact) > 0.02*(1+exact) {
		t.Fatalf("Monte-Carlo AdvError %v, exact %v", mc, exact)
	}
}

func TestAdvErrorZeroForIdentityMechanism(t *testing.T) {
	// A mechanism that always reports the truth has zero adversary error
	// (no privacy at all).
	pr, m := solvedMechanism(t, 5, 3)
	k := m.K()
	id := make([]float64, k*k)
	for i := 0; i < k; i++ {
		id[i*k+i] = 1
	}
	ident := &core.Mechanism{Part: m.Part, Z: id}
	b, err := NewBayes(ident, pr.PriorP)
	if err != nil {
		t.Fatal(err)
	}
	if e := b.AdvError(); e > 1e-12 {
		t.Fatalf("identity mechanism AdvError %v, want 0", e)
	}
}

func TestOptimalRemapBeatsNaiveRemap(t *testing.T) {
	// The optimal inference must do at least as well (lower expected
	// error) as the naive adversary who takes the report at face value.
	pr, m := solvedMechanism(t, 6, 2)
	b, err := NewBayes(m, pr.PriorP)
	if err != nil {
		t.Fatal(err)
	}
	k := m.K()
	naive := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			naive += pr.PriorP[i] * m.Prob(i, j) * pr.Part.MidDistMin(i, j)
		}
	}
	if adv := b.AdvError(); adv > naive+1e-9 {
		t.Fatalf("optimal attack error %v worse than naive %v", adv, naive)
	}
}

func TestLearnTransitionsRowStochastic(t *testing.T) {
	seqs := [][]int{{0, 1, 2, 1}, {2, 2, 0}}
	tr := LearnTransitions(3, seqs, 0.1)
	for i := 0; i < 3; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			v := tr[i*3+j]
			if v <= 0 {
				t.Fatalf("non-positive smoothed transition (%d,%d)", i, j)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Observed transitions must dominate unobserved ones.
	if tr[0*3+1] <= tr[0*3+2] {
		t.Fatal("observed transition 0→1 not favoured over unobserved 0→2")
	}
}

func TestViterbiRecoversDeterministicChain(t *testing.T) {
	// With a near-deterministic transition chain and a noisy mechanism,
	// Viterbi must recover the true path from its own emissions.
	pr, m := solvedMechanism(t, 7, 6)
	k := m.K()

	// Build a cyclic deterministic transition.
	trans := make([]float64, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if j == (i+1)%k {
				trans[i*k+j] = 0.94
			} else {
				trans[i*k+j] = 0.06 / float64(k-1)
			}
		}
	}
	h, err := NewHMM(m, pr.PriorP, trans)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(8))
	truth := make([]int, 30)
	reports := make([]int, 30)
	cur := 0
	for t2 := range truth {
		truth[t2] = cur
		reports[t2] = m.SampleInterval(rng, cur)
		cur = (cur + 1) % k
	}
	est := h.Viterbi(reports)
	if len(est) != len(truth) {
		t.Fatalf("viterbi length %d, want %d", len(est), len(truth))
	}
	correct := 0
	for t2 := range truth {
		if est[t2] == truth[t2] {
			correct++
		}
	}
	// The chain structure is strong: most states must be recovered.
	if correct < len(truth)*2/3 {
		t.Fatalf("viterbi recovered only %d/%d states", correct, len(truth))
	}
}

func TestHMMBeatsBayesUnderStrongCorrelation(t *testing.T) {
	// The paper's Fig. 15 effect: with strong spatial correlation, the
	// HMM adversary infers better (lower error) than independent Bayes.
	pr, m := solvedMechanism(t, 9, 4)
	k := m.K()
	trans := make([]float64, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if j == (i+1)%k {
				trans[i*k+j] = 0.9
			} else {
				trans[i*k+j] = 0.1 / float64(k-1)
			}
		}
	}
	h, err := NewHMM(m, pr.PriorP, trans)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBayes(m, pr.PriorP)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(10))
	const steps = 400
	truth := make([]int, steps)
	reports := make([]int, steps)
	cur := rng.Intn(k)
	for t2 := 0; t2 < steps; t2++ {
		truth[t2] = cur
		reports[t2] = m.SampleInterval(rng, cur)
		if rng.Float64() < 0.9 {
			cur = (cur + 1) % k
		} else {
			cur = rng.Intn(k)
		}
	}
	hmmErr := h.SequenceError(truth, reports)
	bayesErr := 0.0
	for t2 := range truth {
		bayesErr += pr.Part.MidDistMin(truth[t2], b.Estimate(reports[t2]))
	}
	bayesErr /= steps
	if hmmErr > bayesErr+1e-9 {
		t.Fatalf("HMM error %v not better than Bayes %v under strong correlation", hmmErr, bayesErr)
	}
}

func TestViterbiEmptyAndMismatched(t *testing.T) {
	pr, m := solvedMechanism(t, 11, 3)
	h, err := NewHMM(m, pr.PriorP, LearnTransitions(m.K(), nil, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if h.Viterbi(nil) != nil {
		t.Fatal("Viterbi(nil) must be nil")
	}
	if !math.IsNaN(h.SequenceError([]int{1}, []int{1, 2})) {
		t.Fatal("mismatched lengths must give NaN")
	}
}

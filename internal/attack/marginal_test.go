package attack

import (
	"math"
	"math/rand"
	"testing"
)

func chainHMM(t *testing.T, seed int64) (*HMM, *Bayes, func() ([]int, []int)) {
	t.Helper()
	pr, m := solvedMechanism(t, seed, 4)
	k := m.K()
	trans := make([]float64, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if j == (i+1)%k {
				trans[i*k+j] = 0.85
			} else {
				trans[i*k+j] = 0.15 / float64(k-1)
			}
		}
	}
	h, err := NewHMM(m, pr.PriorP, trans)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBayes(m, pr.PriorP)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 100))
	// Trajectories are sampled from the HMM's own transition matrix so
	// the attack-optimality claims hold exactly (no model mismatch).
	sampleNext := func(i int) int {
		u := rng.Float64()
		acc := 0.0
		for j := 0; j < k; j++ {
			acc += trans[i*k+j]
			if u <= acc {
				return j
			}
		}
		return k - 1
	}
	gen := func() ([]int, []int) {
		const steps = 200
		truth := make([]int, steps)
		reports := make([]int, steps)
		cur := rng.Intn(k)
		for s := 0; s < steps; s++ {
			truth[s] = cur
			reports[s] = m.SampleInterval(rng, cur)
			cur = sampleNext(cur)
		}
		return truth, reports
	}
	return h, b, gen
}

func TestPosteriorsAreDistributions(t *testing.T) {
	h, _, gen := chainHMM(t, 1)
	_, reports := gen()
	post := h.Posteriors(reports[:50])
	if len(post) != 50 {
		t.Fatalf("got %d posteriors", len(post))
	}
	for tt, p := range post {
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("round %d: invalid posterior entry %v", tt, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("round %d: posterior sums to %v", tt, sum)
		}
	}
}

func TestPosteriorsEmptyInput(t *testing.T) {
	h, _, _ := chainHMM(t, 2)
	if h.Posteriors(nil) != nil {
		t.Fatal("Posteriors(nil) must be nil")
	}
	if h.MarginalEstimates(nil) != nil {
		t.Fatal("MarginalEstimates(nil) must be nil")
	}
	if !math.IsNaN(h.MarginalSequenceError([]int{1}, nil)) {
		t.Fatal("mismatched lengths must give NaN")
	}
}

func TestMarginalAttackBeatsIndependentBayes(t *testing.T) {
	// The smoothed-marginal attack uses the correlation structure, so
	// over a correlated trajectory it must not lose to round-by-round
	// Bayes (both use the same loss).
	h, b, gen := chainHMM(t, 3)
	var mTot, bTot float64
	var n int
	for trial := 0; trial < 4; trial++ {
		truth, reports := gen()
		mTot += h.MarginalSequenceError(truth, reports) * float64(len(truth))
		for s := range truth {
			bTot += h.part.MidDistMin(truth[s], b.Estimate(reports[s]))
		}
		n += len(truth)
	}
	mErr, bErr := mTot/float64(n), bTot/float64(n)
	if mErr > bErr*1.02 {
		t.Fatalf("marginal attack error %v worse than independent Bayes %v", mErr, bErr)
	}
}

func TestMarginalAttackAtLeastAsGoodAsViterbiOnDistance(t *testing.T) {
	// Viterbi maximises path probability; the marginal attack minimises
	// per-round expected distance. On the distance metric the marginal
	// attack should be at least comparable (allow a small tolerance for
	// sampling noise).
	h, _, gen := chainHMM(t, 4)
	var mTot, vTot float64
	var n int
	for trial := 0; trial < 4; trial++ {
		truth, reports := gen()
		mTot += h.MarginalSequenceError(truth, reports) * float64(len(truth))
		vTot += h.SequenceError(truth, reports) * float64(len(truth))
		n += len(truth)
	}
	mErr, vErr := mTot/float64(n), vTot/float64(n)
	if mErr > vErr*1.1 {
		t.Fatalf("marginal attack error %v much worse than Viterbi %v", mErr, vErr)
	}
}

func TestPosteriorsDegenerateToUniformWhenLost(t *testing.T) {
	// normalize() turns an all-zero vector uniform; reachable only via
	// degenerate inputs, so test the helper directly.
	v := []float64{0, 0, 0, 0}
	normalize(v)
	for _, x := range v {
		if math.Abs(x-0.25) > 1e-12 {
			t.Fatalf("lost-track posterior not uniform: %v", v)
		}
	}
}

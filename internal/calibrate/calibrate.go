// Package calibrate turns the abstract privacy parameter ε into the
// operational unit an operator cares about: kilometres of adversary
// error. It searches ε by log-space bisection, solving the optimal
// mechanism and attacking it at each probe.
package calibrate

import (
	"fmt"
	"math"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/discretize"
)

// Options tune Epsilon.
type Options struct {
	// EpsLo and EpsHi bracket the search (defaults 0.25 and 32 /km).
	EpsLo, EpsHi float64
	// Tol is the acceptable relative deviation from the target AdvError
	// (default 5 %).
	Tol float64
	// MaxSolves bounds the number of mechanism solves (default 12).
	MaxSolves int
	// CG configures each solve.
	CG core.CGOptions
}

func (o Options) withDefaults() Options {
	if o.EpsLo <= 0 {
		o.EpsLo = 0.25
	}
	if o.EpsHi <= o.EpsLo {
		o.EpsHi = 32
	}
	if o.Tol <= 0 {
		o.Tol = 0.05
	}
	if o.MaxSolves <= 0 {
		o.MaxSolves = 12
	}
	if o.CG.RelGap == 0 && o.CG.Xi == 0 {
		o.CG = core.CGOptions{Xi: -0.05, RelGap: 0.05}
	}
	return o
}

// Result reports the calibrated privacy parameter.
type Result struct {
	Epsilon   float64
	AdvError  float64
	ETDD      float64
	Mechanism *core.Mechanism
	Solves    int
}

// Epsilon finds, by bisection, the privacy parameter ε whose
// optimal mechanism yields (approximately) the requested adversary
// error against the optimal Bayesian inference attack. This answers the
// deployment question the paper leaves to the operator — "how private is
// ε = 5, really?" — in the operational unit (km of adversary error)
// rather than the abstract ε. AdvError decreases monotonically in ε for
// the optimal mechanisms in practice, which bisection relies on.
func Epsilon(part *discretize.Partition, cfg core.Config, targetAdvError float64, opts Options) (*Result, error) {
	if targetAdvError <= 0 {
		return nil, fmt.Errorf("calibrate: target AdvError must be positive, got %v", targetAdvError)
	}
	opts = opts.withDefaults()

	solve := func(eps float64) (*Result, error) {
		c := cfg
		c.Epsilon = eps
		pr, err := core.NewProblem(part, c)
		if err != nil {
			return nil, err
		}
		sol, err := core.SolveCG(pr, opts.CG)
		if err != nil {
			return nil, err
		}
		adv, err := attack.NewBayes(sol.Mechanism, pr.PriorP)
		if err != nil {
			return nil, err
		}
		return &Result{
			Epsilon:   eps,
			AdvError:  adv.AdvError(),
			ETDD:      sol.ETDD,
			Mechanism: sol.Mechanism,
		}, nil
	}

	lo, hi := opts.EpsLo, opts.EpsHi
	solves := 0

	// Establish the bracket: AdvError(lo) should exceed the target and
	// AdvError(hi) should undershoot it; if not, the endpoint is the
	// best achievable answer.
	rLo, err := solve(lo)
	if err != nil {
		return nil, err
	}
	solves++
	if rLo.AdvError <= targetAdvError {
		rLo.Solves = solves
		return rLo, nil // even the most private end is below target
	}
	rHi, err := solve(hi)
	if err != nil {
		return nil, err
	}
	solves++
	if rHi.AdvError >= targetAdvError {
		rHi.Solves = solves
		return rHi, nil // even the least private end is above target
	}

	best := rLo
	for solves < opts.MaxSolves {
		mid := math.Sqrt(lo * hi) // ε acts multiplicatively; bisect in log space
		r, err := solve(mid)
		if err != nil {
			return nil, err
		}
		solves++
		if math.Abs(r.AdvError-targetAdvError) < math.Abs(best.AdvError-targetAdvError) {
			best = r
		}
		if math.Abs(r.AdvError-targetAdvError) <= opts.Tol*targetAdvError {
			r.Solves = solves
			return r, nil
		}
		if r.AdvError > targetAdvError {
			lo = mid // too private: raise ε
		} else {
			hi = mid
		}
	}
	best.Solves = solves
	return best, nil
}

package calibrate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/roadnet"
)

// tinyProblem mirrors the core package's small test fixture.
func tinyProblem(t *testing.T, seed int64, eps float64) *core.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 2, Cols: 2, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.2,
	})
	part, err := discretize.New(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := core.NewProblem(part, core.Config{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestEpsilonHitsTarget(t *testing.T) {
	pr := tinyProblem(t, 41, 3)

	// Establish a reachable target from a mid-range ε.
	mid, err := core.SolveCG(pr, core.CGOptions{Xi: -0.05, RelGap: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := attack.NewBayes(mid.Mechanism, pr.PriorP)
	if err != nil {
		t.Fatal(err)
	}
	target := adv.AdvError()
	if target <= 0 {
		t.Fatal("degenerate target")
	}

	res, err := Epsilon(pr.Part, core.Config{Epsilon: 1}, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solves == 0 || res.Mechanism == nil {
		t.Fatalf("empty result %+v", res)
	}
	if math.Abs(res.AdvError-target) > 0.15*target {
		t.Fatalf("calibrated AdvError %v misses target %v", res.AdvError, target)
	}
	if res.Epsilon < 0.5 || res.Epsilon > 32 {
		t.Fatalf("implausible calibrated epsilon %v", res.Epsilon)
	}
}

func TestEpsilonClampsAtBracket(t *testing.T) {
	pr := tinyProblem(t, 42, 3)

	// An absurdly large target (more error than the network diameter)
	// cannot be met even at the most private end: expect the lo endpoint.
	res, err := Epsilon(pr.Part, core.Config{Epsilon: 1}, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon != 0.25 {
		t.Fatalf("expected the most-private endpoint, got eps %v", res.Epsilon)
	}

	// A near-zero target is undershot even at the least private end.
	res, err = Epsilon(pr.Part, core.Config{Epsilon: 1}, 1e-9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon != 32 {
		t.Fatalf("expected the least-private endpoint, got eps %v", res.Epsilon)
	}
}

func TestEpsilonValidation(t *testing.T) {
	pr := tinyProblem(t, 43, 3)
	if _, err := Epsilon(pr.Part, core.Config{Epsilon: 1}, -1, Options{}); err == nil {
		t.Fatal("accepted negative target")
	}
}

package chaos

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/serial"
	"repro/internal/store"
)

// auditTol bounds the recomputed (ε, r)-Geo-I violation of a replayed
// mechanism. Commits are repaired to 1e-10 before they reach the store
// and the wire encoding round-trips float64 exactly, so anything past
// this margin means a fault phase corrupted a mechanism in place.
const auditTol = 1e-8

// auditStore is the end-of-run replay: with every process dead, a
// fresh Store over the shared directory must scan clean (nothing left
// to quarantine — torn temp files do not count, a real crash leaves
// those too) and every committed mechanism must still satisfy its own
// spec's Geo-I constraints. Returned violations feed the report's
// global violation list.
func auditStore(dir string) (AuditResult, []string) {
	var violations []string
	fail := func(format string, args ...interface{}) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}
	st, err := store.Open(dir)
	if err != nil {
		fail("audit: reopen store: %v", err)
		return AuditResult{}, violations
	}
	rep, err := st.Scan()
	if err != nil {
		fail("audit: replay scan: %v", err)
		return AuditResult{}, violations
	}
	a := AuditResult{
		Entries:     len(rep.Entries),
		Checkpoints: len(rep.Checkpoints),
		Quarantined: rep.Quarantined,
	}
	if rep.Quarantined > 0 {
		fail("audit: replay scan quarantined %d files", rep.Quarantined)
	}
	for _, se := range rep.Entries {
		e, err := st.LoadEntry(se.Digest)
		if err != nil {
			fail("audit: entry %s unreadable on replay: %v", se.Digest, err)
			continue
		}
		v, err := entryViolation(e)
		if err != nil {
			fail("audit: entry %s: %v", se.Digest, err)
			continue
		}
		if v > a.MaxGeoIViolation {
			a.MaxGeoIViolation = v
		}
		if v > auditTol {
			fail("audit: entry %s (%s tier) violates Geo-I by %g", se.Digest, e.Tier, v)
		}
	}
	a.ReplayClean = len(violations) == 0
	return a, violations
}

// entryViolation rebuilds the D-VLP instance from the entry's own spec
// and measures the stored mechanism's largest Geo-I constraint
// violation against it — the same pipeline the server runs before
// serving, re-derived from scratch so a corrupted spec or matrix
// cannot vouch for itself.
func entryViolation(e *serial.StoredEntry) (float64, error) {
	g, err := e.Spec.Network.ToGraph()
	if err != nil {
		return 0, err
	}
	part, err := discretize.New(g, e.Spec.Delta)
	if err != nil {
		return 0, err
	}
	var priorP, priorQ []float64
	if len(e.Spec.Prior) > 0 {
		priorP, priorQ = e.Spec.Prior, e.Spec.Prior
	}
	if len(e.Spec.TaskPrior) > 0 {
		priorQ = e.Spec.TaskPrior
	}
	pr, err := core.NewProblem(part, core.Config{
		Epsilon: e.Spec.Epsilon,
		Radius:  e.Spec.Radius,
		PriorP:  priorP,
		PriorQ:  priorQ,
	})
	if err != nil {
		return 0, err
	}
	m := &core.Mechanism{Part: pr.Part, Z: e.Z}
	if err := m.Validate(); err != nil {
		return 0, err
	}
	return pr.GeoIViolation(m), nil
}

// Package chaos is the deterministic fleet chaos harness: it runs an
// N-process vlpserved fleet over one shared store directory and drives
// a seeded request schedule through a scripted sequence of fault
// phases — disk full (ENOSPC), torn writes, stalled fsync, a SIGSTOP'd
// leader whose lease expires while the process lives, and blackholed
// follower→leader proxying — while classifying every response against
// the service's availability contract:
//
//   - every response is 2xx or 429; a timeout is tolerated only from
//     the paused member,
//   - every 2xx carries a known serving tier and in-domain locations,
//   - a member's nonzero fencing token never decreases, and a leader
//     pause forces the fleet-wide fence high-water to increase,
//   - after the run, a fresh store replay is clean (zero quarantined
//     files) and every committed mechanism still satisfies its spec's
//     (ε, r)-Geo-I constraints to tolerance.
//
// cmd/vlpchaos is the CLI; ci.sh runs the bounded TestChaosSmoke gate
// and archives the emitted report as BENCH_chaos.json.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/roadnet"
	"repro/internal/serial"
	"repro/internal/server"
	"repro/internal/store"
)

// Target selects which fleet members a phase's fault spec is armed on.
type Target string

const (
	TargetNone      Target = ""
	TargetLeader    Target = "leader"
	TargetFollowers Target = "followers"
	TargetAll       Target = "all"
)

// Phase is one step of the fault schedule. Faults are armed on the
// selected members at phase start (via the /debug/faults control
// surface the harness enables with VLP_FAULT_CTL=1) and cleared at
// phase end; load runs throughout.
type Phase struct {
	Name     string
	Duration time.Duration
	// FaultSpec is a faultinject spec string ("store/write=enospc")
	// POSTed to each Target member's /debug/faults; empty arms nothing.
	FaultSpec string
	Target    Target
	// PauseLeader SIGSTOPs the current leader for the whole phase: its
	// lease expires while the process lives, a follower must take over
	// with a bumped fencing token, and the stale leader's writes must be
	// fence-rejected after SIGCONT.
	PauseLeader bool
}

// Config parameterises a Run. Zero values take the documented defaults.
type Config struct {
	// Bin is the vlpserved binary to spawn.
	Bin string
	// StoreDir is the shared store directory; the caller owns cleanup.
	StoreDir string
	Procs    int     // fleet size (default 3)
	Seed     int64   // request-schedule seed (default 1)
	Rate     float64 // open-loop request rate in req/s (default 20)
	TTL      time.Duration
	Poll     time.Duration // fleet heartbeat cadence (default TTL/5)
	// RequestTimeout bounds each driver request; a request that exceeds
	// it counts as a violation unless its member was paused.
	RequestTimeout time.Duration // default max(3s, 2×TTL)
	Phases         []Phase
	// ChildLog receives the children's stderr (nil discards it).
	ChildLog io.Writer
	// Logf receives harness progress lines (nil is silent).
	Logf func(format string, args ...interface{})
}

func (c *Config) defaults() error {
	if c.Bin == "" {
		return fmt.Errorf("chaos: Config.Bin (vlpserved binary) is required")
	}
	if c.StoreDir == "" {
		return fmt.Errorf("chaos: Config.StoreDir is required")
	}
	if len(c.Phases) == 0 {
		return fmt.Errorf("chaos: Config.Phases is empty")
	}
	for i, ph := range c.Phases {
		if ph.Name == "" || ph.Duration <= 0 {
			return fmt.Errorf("chaos: phase %d needs a name and a positive duration", i)
		}
	}
	if c.Procs == 0 {
		c.Procs = 3
	}
	if c.Procs < 2 {
		return fmt.Errorf("chaos: a fleet needs at least 2 processes, got %d", c.Procs)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Rate == 0 {
		c.Rate = 20
	}
	if c.Rate <= 0 {
		return fmt.Errorf("chaos: non-positive request rate %v", c.Rate)
	}
	if c.TTL <= 0 {
		c.TTL = time.Second
	}
	if c.Poll <= 0 {
		c.Poll = c.TTL / 5
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 3 * time.Second
		if d := 2 * c.TTL; d > c.RequestTimeout {
			c.RequestTimeout = d
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	if c.ChildLog == nil {
		c.ChildLog = io.Discard
	}
	return nil
}

// StandardPhases is the canonical schedule: a healthy baseline, the
// three disk faults, a leader pause sized to outlive the lease (its
// duration is d + 2·ttl so the election reliably lands inside the
// phase), a follower-side proxy blackhole, and a recovery tail that
// proves the fleet returns to clean serving.
func StandardPhases(d, ttl time.Duration) []Phase {
	return []Phase{
		{Name: "baseline", Duration: d},
		{Name: "disk-full", Duration: d, FaultSpec: store.FaultSiteWrite + "=enospc", Target: TargetAll},
		{Name: "torn-write", Duration: d, FaultSpec: store.FaultSiteShortWrite + "=err:torn", Target: TargetAll},
		{Name: "fsync-stall", Duration: d, FaultSpec: store.FaultSiteFsync + "=delay:150ms", Target: TargetAll},
		{Name: "leader-pause", Duration: d + 2*ttl, PauseLeader: true},
		{Name: "proxy-blackhole", Duration: d, FaultSpec: server.FaultSiteFleetProxy + "=err:blackhole", Target: TargetFollowers},
		{Name: "recovery", Duration: d},
	}
}

// chaosSpec builds the i-th deterministic solve spec of a run: a small
// 2×2 grid whose jittered edge weights make every index a distinct
// digest, so each phase can introduce genuinely cold work.
func chaosSpec(seed int64, i int) *serial.SolveSpec {
	rng := rand.New(rand.NewSource(seed*1000003 + int64(i)))
	net := serial.FromGraph(roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 2, Cols: 2, Spacing: 0.3, WeightJitter: 0.2,
	}))
	return &serial.SolveSpec{Network: net, Delta: 0.3, Epsilon: 5}
}

// phaseRNG seeds one phase's request schedule. Each phase reseeds from
// (run seed, phase index) rather than sharing one stream, so the
// spec/location sequence a phase draws is deterministic even though
// how many requests fit in a wall-clock window is not.
func phaseRNG(seed int64, phase int) *rand.Rand {
	return rand.New(rand.NewSource(seed*7919 + int64(phase) + 1))
}

// randomLocs draws n uniform on-network true locations for spec.
func randomLocs(rng *rand.Rand, spec *serial.SolveSpec, n int) []serial.Loc {
	locs := make([]serial.Loc, n)
	for i := range locs {
		e := rng.Intn(len(spec.Network.Edges))
		locs[i] = serial.Loc{Road: e, FromStart: rng.Float64() * spec.Network.Edges[e].Weight}
	}
	return locs
}

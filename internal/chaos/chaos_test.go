package chaos

import (
	"testing"
	"time"

	"repro/internal/serial"
)

// TestStandardPhasesShape: the canonical schedule covers the three
// acceptance faults (disk full, leader pause, proxy blackhole), keeps
// names unique, and sizes the pause to outlive the lease.
func TestStandardPhasesShape(t *testing.T) {
	ttl := time.Second
	phases := StandardPhases(1200*time.Millisecond, ttl)
	names := map[string]bool{}
	var pause *Phase
	faults := 0
	for i := range phases {
		ph := &phases[i]
		if names[ph.Name] {
			t.Fatalf("duplicate phase name %q", ph.Name)
		}
		names[ph.Name] = true
		if ph.Duration <= 0 {
			t.Fatalf("phase %q has non-positive duration", ph.Name)
		}
		if ph.FaultSpec != "" || ph.PauseLeader {
			faults++
		}
		if ph.PauseLeader {
			pause = ph
		}
	}
	for _, want := range []string{"disk-full", "leader-pause", "proxy-blackhole"} {
		if !names[want] {
			t.Fatalf("standard schedule missing the %q phase", want)
		}
	}
	if faults < 3 {
		t.Fatalf("only %d fault phases, want >= 3", faults)
	}
	if pause == nil || pause.Duration <= 2*ttl {
		t.Fatalf("leader pause %v does not outlive the %v lease with margin", pause.Duration, ttl)
	}
	if phases[0].FaultSpec != "" || phases[len(phases)-1].FaultSpec != "" {
		t.Fatal("schedule must start and end with a healthy phase")
	}
}

// TestChaosSpecDeterminism: the spec generator is a pure function of
// (seed, index) — same inputs give the same digest, different indices
// give distinct cold work.
func TestChaosSpecDeterminism(t *testing.T) {
	a, b := chaosSpec(7, 0), chaosSpec(7, 0)
	if a.Digest() != b.Digest() {
		t.Fatal("same (seed, index) produced different digests")
	}
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		d := chaosSpec(7, i).Digest()
		if seen[d] {
			t.Fatalf("spec index %d repeats an earlier digest", i)
		}
		seen[d] = true
	}
	if chaosSpec(8, 0).Digest() == chaosSpec(7, 0).Digest() {
		t.Fatal("different seeds produced the same spec")
	}
	if err := chaosSpec(7, 3).Validate(); err != nil {
		t.Fatalf("generated spec invalid: %v", err)
	}
}

// TestRandomLocsInDomain: every generated true location must be a
// valid request the server cannot 4xx.
func TestRandomLocsInDomain(t *testing.T) {
	spec := chaosSpec(1, 0)
	rng := phaseRNG(1, 0)
	for _, l := range randomLocs(rng, spec, 64) {
		if l.Road < 0 || l.Road >= len(spec.Network.Edges) {
			t.Fatalf("road %d outside [0, %d)", l.Road, len(spec.Network.Edges))
		}
		if w := spec.Network.Edges[l.Road].Weight; l.FromStart < 0 || l.FromStart > w {
			t.Fatalf("offset %v outside road length %v", l.FromStart, w)
		}
	}
}

// TestConfigDefaults: zero values resolve to the documented defaults
// and impossible configs are rejected up front.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{Bin: "/bin/true", StoreDir: "/tmp/x", Phases: []Phase{{Name: "p", Duration: time.Second}}}
	if err := cfg.defaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.Procs != 3 || cfg.Rate != 20 || cfg.TTL != time.Second || cfg.Poll != 200*time.Millisecond {
		t.Fatalf("defaults: procs=%d rate=%v ttl=%v poll=%v", cfg.Procs, cfg.Rate, cfg.TTL, cfg.Poll)
	}
	if cfg.RequestTimeout != 3*time.Second {
		t.Fatalf("request timeout default %v, want 3s", cfg.RequestTimeout)
	}
	for _, bad := range []Config{
		{StoreDir: "d", Phases: []Phase{{Name: "p", Duration: time.Second}}},
		{Bin: "b", Phases: []Phase{{Name: "p", Duration: time.Second}}},
		{Bin: "b", StoreDir: "d"},
		{Bin: "b", StoreDir: "d", Phases: []Phase{{Name: "", Duration: time.Second}}},
		{Bin: "b", StoreDir: "d", Procs: 1, Phases: []Phase{{Name: "p", Duration: time.Second}}},
	} {
		if err := bad.defaults(); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
}

// TestCheckResponse: the per-response classifier rejects out-of-domain
// locations, wrong batch sizes and unknown tiers, and accepts the
// shapes the server actually emits.
func TestCheckResponse(t *testing.T) {
	spec := chaosSpec(1, 0)
	w := spec.Network.Edges[0].Weight
	ok := func() *serial.ObfuscateResponse {
		return &serial.ObfuscateResponse{
			Quality:   serial.QualityOptimal,
			Locations: []serial.Loc{{Road: 0, FromStart: w / 2}},
		}
	}
	if msg := checkResponse(spec, 1, ok()); msg != "" {
		t.Fatalf("valid response rejected: %s", msg)
	}
	cached := ok()
	cached.Cached, cached.Quality = true, ""
	if msg := checkResponse(spec, 1, cached); msg != "" {
		t.Fatalf("cached pre-tier response rejected: %s", msg)
	}
	bad := ok()
	bad.Quality = "experimental"
	if checkResponse(spec, 1, bad) == "" {
		t.Fatal("unknown tier accepted")
	}
	bad = ok()
	bad.Locations[0].Road = len(spec.Network.Edges)
	if checkResponse(spec, 1, bad) == "" {
		t.Fatal("out-of-range road accepted")
	}
	bad = ok()
	bad.Locations[0].FromStart = w * 2
	if checkResponse(spec, 1, bad) == "" {
		t.Fatal("off-road offset accepted")
	}
	if checkResponse(spec, 2, ok()) == "" {
		t.Fatal("short batch accepted")
	}
}

package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

// member is one vlpserved child process under harness control.
type member struct {
	index  int
	name   string
	addr   string
	cmd    *exec.Cmd
	client *http.Client
	// paused and killed are touched only by the runner goroutine; the
	// driver's request goroutines never read them.
	paused bool
	killed bool
}

// freeAddr reserves a loopback listen address for a child. The port is
// released before the child binds it — a benign race while the harness
// owns the machine's ephemeral range for milliseconds.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// startMember spawns one fleet member with the fault control surface
// enabled, so the harness can re-arm faults per phase over HTTP.
func startMember(cfg *Config, index int) (*member, error) {
	addr, err := freeAddr()
	if err != nil {
		return nil, fmt.Errorf("chaos: reserve addr: %w", err)
	}
	name := fmt.Sprintf("chaos-m%d", index)
	cmd := exec.Command(cfg.Bin,
		"-addr", addr,
		"-store-dir", cfg.StoreDir,
		"-fleet",
		"-instance", name,
		"-advertise", "http://"+addr,
		"-lease-ttl", cfg.TTL.String(),
		"-fleet-poll", cfg.Poll.String(),
	)
	cmd.Env = append(os.Environ(), "VLP_FAULT_CTL=1")
	cmd.Stderr = cfg.ChildLog
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("chaos: start %s: %w", name, err)
	}
	return &member{
		index:  index,
		name:   name,
		addr:   addr,
		cmd:    cmd,
		client: &http.Client{Timeout: cfg.RequestTimeout},
	}, nil
}

func (m *member) url(path string) string { return "http://" + m.addr + path }

func (m *member) waitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := m.client.Get(m.url("/healthz"))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("chaos: %s never became healthy on %s", m.name, m.addr)
}

// rawStats fetches and decodes GET /stats.
func (m *member) rawStats() (map[string]interface{}, error) {
	resp, err := m.client.Get(m.url("/stats"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var raw map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, err
	}
	return raw, nil
}

func (m *member) leaseState() (string, error) {
	raw, err := m.rawStats()
	if err != nil {
		return "", err
	}
	s, _ := raw["lease_state"].(string)
	return s, nil
}

func (m *member) fence() (uint64, error) {
	raw, err := m.rawStats()
	if err != nil {
		return 0, err
	}
	f, _ := raw["fence_token"].(float64)
	return uint64(f), nil
}

// armFault POSTs a faultinject spec to the member's control surface.
func (m *member) armFault(spec string) error {
	resp, err := m.client.Post(m.url("/debug/faults"), "text/plain", strings.NewReader(spec))
	if err != nil {
		return fmt.Errorf("chaos: arm %q on %s: %w", spec, m.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("chaos: arm %q on %s: status %d: %s", spec, m.name, resp.StatusCode, body)
	}
	return nil
}

// clearFaults resets every armed fault on the member.
func (m *member) clearFaults() error {
	req, err := http.NewRequest(http.MethodDelete, m.url("/debug/faults"), nil)
	if err != nil {
		return err
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return fmt.Errorf("chaos: clear faults on %s: %w", m.name, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("chaos: clear faults on %s: status %d", m.name, resp.StatusCode)
	}
	return nil
}

// pause SIGSTOPs the child: the process lives (sockets accept, lease
// record stays on disk) but cannot renew its lease or answer requests.
func (m *member) pause() error {
	if err := m.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		return fmt.Errorf("chaos: pause %s: %w", m.name, err)
	}
	m.paused = true
	return nil
}

func (m *member) resume() error {
	if err := m.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		return fmt.Errorf("chaos: resume %s: %w", m.name, err)
	}
	m.paused = false
	return nil
}

// kill SIGKILLs and reaps the child; safe to call more than once.
func (m *member) kill() {
	if m.killed || m.cmd.Process == nil {
		return
	}
	m.killed = true
	// A paused process cannot die until it is resumed.
	_ = m.cmd.Process.Signal(syscall.SIGCONT)
	_ = m.cmd.Process.Signal(syscall.SIGKILL)
	_, _ = m.cmd.Process.Wait()
}

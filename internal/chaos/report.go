// BENCH_chaos.json: the chaos harness's archived artifact. Like
// loadgen's BENCH_serve.json, ci.sh re-validates the emitted file
// through the strict ValidateJSON below, so a field rename or a
// truncated write fails CI rather than silently producing an
// unparseable trajectory point.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// maxViolationDetail caps how many violation messages a report carries
// verbatim; ViolationCount is always the full count.
const maxViolationDetail = 32

// PhaseConfig records one configured phase, JSON-shaped for the report.
type PhaseConfig struct {
	Name        string  `json:"name"`
	DurationSec float64 `json:"duration_sec"`
	FaultSpec   string  `json:"fault_spec,omitempty"`
	Target      string  `json:"target,omitempty"`
	PauseLeader bool    `json:"pause_leader,omitempty"`
}

// RunConfig records the knobs that shaped a run.
type RunConfig struct {
	Procs      int           `json:"procs"`
	Seed       int64         `json:"seed"`
	RateRPS    float64       `json:"rate_rps"`
	LeaseTTLMs float64       `json:"lease_ttl_ms"`
	Phases     []PhaseConfig `json:"phases"`
}

// RungMix counts 2xx responses by serving rung during a phase.
type RungMix struct {
	Cached    int `json:"cached"`
	Optimal   int `json:"optimal"`
	Incumbent int `json:"incumbent"`
	Fallback  int `json:"fallback"`
}

// PhaseResult is the classified outcome of one phase's request slice.
// Requests always equals OK + Shed + Tolerated + Violations.
type PhaseResult struct {
	Name     string `json:"name"`
	Requests int    `json:"requests"`
	// OK counts 2xx responses that passed every per-response check.
	OK int `json:"ok_2xx"`
	// Shed counts 429 backpressure responses — allowed in every phase.
	Shed int `json:"shed_429"`
	// Tolerated counts transport timeouts to the paused member, the one
	// failure mode the availability contract excuses.
	Tolerated int `json:"tolerated_timeouts"`
	// Violations counts responses that broke the contract: any 5xx or
	// non-429 4xx, a timeout to a live member, an unknown serving tier,
	// or an out-of-domain obfuscated location.
	Violations int     `json:"violations"`
	RungMix    RungMix `json:"rung_mix"`
	// FenceHighWater is the fleet-wide fence maximum observed by the
	// end of the phase; it never decreases across phases.
	FenceHighWater uint64 `json:"fence_high_water"`
}

// Counters sums the fleet's /stats resilience counters at run end.
type Counters struct {
	Solves             uint64 `json:"solves"`
	StoreWrites        uint64 `json:"store_writes"`
	StoreWriteShed     uint64 `json:"store_write_shed"`
	QuarantineGCBytes  uint64 `json:"quarantine_gc_bytes"`
	CorruptQuarantined uint64 `json:"corrupt_quarantined"`
	ProxyBreakerTrips  uint64 `json:"proxy_breaker_trips"`
	DegradedServes     uint64 `json:"degraded_serves"`
	LeaseLosses        uint64 `json:"lease_losses"`
	ProxiedSolves      uint64 `json:"proxied_solves"`
}

// AuditResult is the end-of-run store replay: a fresh Open + Scan of
// the shared directory after every process is dead, plus a Geo-I
// recheck of every committed mechanism against its own spec.
type AuditResult struct {
	Entries     int `json:"entries"`
	Checkpoints int `json:"checkpoints"`
	// Quarantined counts files the fresh scan had to move aside; any
	// nonzero value means a fault phase leaked a torn or corrupt commit.
	Quarantined int `json:"quarantined"`
	// MaxGeoIViolation is the largest (ε, r)-Geo-I constraint violation
	// across all replayed mechanisms; it must stay within tolerance.
	MaxGeoIViolation float64 `json:"max_geoi_violation"`
	// ReplayClean is true when the scan quarantined nothing and every
	// entry decoded, validated and passed the Geo-I recheck.
	ReplayClean bool `json:"replay_clean"`
}

// Report is the BENCH_chaos.json payload. GeneratedUnix and GoVersion
// are stamped by the caller — this package never reads the wall clock
// for the artifact.
type Report struct {
	GeneratedUnix int64     `json:"generated_unix"`
	GoVersion     string    `json:"go_version"`
	Config        RunConfig `json:"config"`

	// Requests counts driver requests across all phases (warmup solves
	// are excluded); it equals the sum of the per-phase counts.
	Requests int           `json:"requests"`
	Phases   []PhaseResult `json:"phases"`

	// ViolationCount is the full number of contract violations;
	// Violations carries at most maxViolationDetail of them verbatim.
	ViolationCount int      `json:"violation_count"`
	Violations     []string `json:"violations,omitempty"`

	// FenceStart/FenceEnd bracket the fleet's fence high-water;
	// FailoverFenceBumps counts leader-pause phases that forced the
	// high-water up (each one is an observed fenced failover).
	FenceStart         uint64 `json:"fence_start"`
	FenceEnd           uint64 `json:"fence_end"`
	FailoverFenceBumps int    `json:"failover_fence_bumps"`

	Counters Counters    `json:"counters"`
	Audit    AuditResult `json:"audit"`
}

// Validate is the checked-in schema gate for BENCH_chaos.json.
func (r *Report) Validate() error {
	if r.GeneratedUnix <= 0 {
		return fmt.Errorf("chaos: report missing generated_unix stamp")
	}
	if r.GoVersion == "" {
		return fmt.Errorf("chaos: report missing go_version stamp")
	}
	if r.Config.Procs < 2 {
		return fmt.Errorf("chaos: report config has fleet size %d, want >= 2", r.Config.Procs)
	}
	if !(r.Config.RateRPS > 0) || !(r.Config.LeaseTTLMs > 0) {
		return fmt.Errorf("chaos: report config has non-positive rate (%v) or lease TTL (%v)",
			r.Config.RateRPS, r.Config.LeaseTTLMs)
	}
	if len(r.Config.Phases) == 0 {
		return fmt.Errorf("chaos: report config has no phases")
	}
	pauses := 0
	for i, p := range r.Config.Phases {
		if p.Name == "" || !(p.DurationSec > 0) {
			return fmt.Errorf("chaos: config phase %d missing name or positive duration", i)
		}
		if p.PauseLeader {
			pauses++
		}
	}
	if len(r.Phases) != len(r.Config.Phases) {
		return fmt.Errorf("chaos: report has %d phase results for %d configured phases",
			len(r.Phases), len(r.Config.Phases))
	}
	total, violations := 0, 0
	var prevFence uint64
	for i, p := range r.Phases {
		if p.Name != r.Config.Phases[i].Name {
			return fmt.Errorf("chaos: phase result %d named %q, config says %q", i, p.Name, r.Config.Phases[i].Name)
		}
		if p.Requests < 0 || p.OK < 0 || p.Shed < 0 || p.Tolerated < 0 || p.Violations < 0 {
			return fmt.Errorf("chaos: phase %q has a negative count: %+v", p.Name, p)
		}
		if p.OK+p.Shed+p.Tolerated+p.Violations != p.Requests {
			return fmt.Errorf("chaos: phase %q outcomes (%d+%d+%d+%d) do not reconcile with %d requests",
				p.Name, p.OK, p.Shed, p.Tolerated, p.Violations, p.Requests)
		}
		m := p.RungMix
		if m.Cached < 0 || m.Optimal < 0 || m.Incumbent < 0 || m.Fallback < 0 {
			return fmt.Errorf("chaos: phase %q rung mix has a negative count: %+v", p.Name, m)
		}
		if m.Cached+m.Optimal+m.Incumbent+m.Fallback != p.OK {
			return fmt.Errorf("chaos: phase %q rung mix sums to %d, has %d 2xx",
				p.Name, m.Cached+m.Optimal+m.Incumbent+m.Fallback, p.OK)
		}
		if p.FenceHighWater < prevFence {
			return fmt.Errorf("chaos: phase %q fence high-water %d below predecessor's %d",
				p.Name, p.FenceHighWater, prevFence)
		}
		prevFence = p.FenceHighWater
		total += p.Requests
		violations += p.Violations
	}
	if total != r.Requests {
		return fmt.Errorf("chaos: phase requests sum to %d, report has %d", total, r.Requests)
	}
	if r.ViolationCount < violations {
		return fmt.Errorf("chaos: violation_count %d below the per-phase sum %d", r.ViolationCount, violations)
	}
	if len(r.Violations) > maxViolationDetail {
		return fmt.Errorf("chaos: %d verbatim violations exceed the %d cap", len(r.Violations), maxViolationDetail)
	}
	if len(r.Violations) > r.ViolationCount {
		return fmt.Errorf("chaos: %d verbatim violations exceed violation_count %d", len(r.Violations), r.ViolationCount)
	}
	if r.FenceEnd < r.FenceStart {
		return fmt.Errorf("chaos: fence_end %d below fence_start %d", r.FenceEnd, r.FenceStart)
	}
	if r.FailoverFenceBumps < 0 || r.FailoverFenceBumps > pauses {
		return fmt.Errorf("chaos: %d failover fence bumps for %d leader-pause phases", r.FailoverFenceBumps, pauses)
	}
	a := r.Audit
	if a.Entries < 0 || a.Checkpoints < 0 || a.Quarantined < 0 {
		return fmt.Errorf("chaos: audit has a negative count: %+v", a)
	}
	if a.MaxGeoIViolation < 0 || math.IsNaN(a.MaxGeoIViolation) || math.IsInf(a.MaxGeoIViolation, 0) {
		return fmt.Errorf("chaos: audit max_geoi_violation %v is not a non-negative finite value", a.MaxGeoIViolation)
	}
	if a.ReplayClean && a.Quarantined != 0 {
		return fmt.Errorf("chaos: audit claims a clean replay with %d quarantined files", a.Quarantined)
	}
	return nil
}

// ValidateJSON decodes data strictly (unknown fields rejected, so a
// field rename cannot slip through as an always-zero value) and applies
// Validate. This is the check ci.sh runs against the emitted file.
func ValidateJSON(data []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("chaos: malformed BENCH_chaos.json: %w", err)
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &rep, nil
}

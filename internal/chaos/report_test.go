package chaos

import (
	"encoding/json"
	"strings"
	"testing"
)

// goodReport is a minimal internally consistent BENCH_chaos.json
// payload; tests mutate copies of it to exercise each validator gate.
func goodReport() *Report {
	return &Report{
		GeneratedUnix: 1700000000,
		GoVersion:     "go1.22",
		Config: RunConfig{
			Procs:      3,
			Seed:       7,
			RateRPS:    15,
			LeaseTTLMs: 1000,
			Phases: []PhaseConfig{
				{Name: "baseline", DurationSec: 1.2},
				{Name: "disk-full", DurationSec: 1.2, FaultSpec: "store/write=enospc", Target: "all"},
				{Name: "leader-pause", DurationSec: 3.2, PauseLeader: true},
			},
		},
		Requests: 30,
		Phases: []PhaseResult{
			{Name: "baseline", Requests: 10, OK: 9, Shed: 1, RungMix: RungMix{Cached: 7, Optimal: 2}, FenceHighWater: 1},
			{Name: "disk-full", Requests: 10, OK: 10, RungMix: RungMix{Cached: 8, Optimal: 2}, FenceHighWater: 1},
			{Name: "leader-pause", Requests: 10, OK: 6, Tolerated: 4, RungMix: RungMix{Cached: 3, Fallback: 3}, FenceHighWater: 2},
		},
		FenceStart:         1,
		FenceEnd:           2,
		FailoverFenceBumps: 1,
		Counters:           Counters{Solves: 4, StoreWrites: 3, StoreWriteShed: 2},
		Audit:              AuditResult{Entries: 3, MaxGeoIViolation: 3e-12, ReplayClean: true},
	}
}

func TestReportValidateAccepts(t *testing.T) {
	if err := goodReport().Validate(); err != nil {
		t.Fatalf("consistent report rejected: %v", err)
	}
}

func TestReportValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Report)
		want string
	}{
		{"missing stamp", func(r *Report) { r.GeneratedUnix = 0 }, "generated_unix"},
		{"missing go version", func(r *Report) { r.GoVersion = "" }, "go_version"},
		{"solo fleet", func(r *Report) { r.Config.Procs = 1 }, "fleet size"},
		{"zero rate", func(r *Report) { r.Config.RateRPS = 0 }, "non-positive rate"},
		{"no phases", func(r *Report) { r.Config.Phases = nil }, "no phases"},
		{"phase count mismatch", func(r *Report) { r.Phases = r.Phases[:2] }, "phase results"},
		{"phase name mismatch", func(r *Report) { r.Phases[1].Name = "renamed" }, "config says"},
		{"unreconciled outcomes", func(r *Report) { r.Phases[0].OK = 5 }, "do not reconcile"},
		{"rung mix mismatch", func(r *Report) { r.Phases[0].RungMix.Cached = 1 }, "rung mix sums"},
		{"fence regression", func(r *Report) { r.Phases[2].FenceHighWater = 0 }, "below predecessor"},
		{"request sum mismatch", func(r *Report) { r.Requests = 29 }, "sum to"},
		{"undercounted violations", func(r *Report) {
			r.Phases[0].OK, r.Phases[0].Violations = 8, 1
			r.Phases[0].RungMix.Cached = 6
		}, "violation_count"},
		{"fence end below start", func(r *Report) { r.FenceEnd = 0 }, "fence_end"},
		{"phantom fence bump", func(r *Report) { r.FailoverFenceBumps = 2 }, "leader-pause phases"},
		{"dirty replay marked clean", func(r *Report) { r.Audit.Quarantined = 1 }, "clean replay"},
		{"non-finite geo-i audit", func(r *Report) { r.Audit.MaxGeoIViolation = -1 }, "max_geoi_violation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := goodReport()
			tc.mut(rep)
			err := rep.Validate()
			if err == nil {
				t.Fatal("corrupted report accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateJSONStrict: the strict decoder rejects renamed fields and
// truncated files, and round-trips a good report.
func TestValidateJSONStrict(t *testing.T) {
	data, err := json.Marshal(goodReport())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateJSON(data); err != nil {
		t.Fatalf("round-trip rejected: %v", err)
	}
	if _, err := ValidateJSON(data[:len(data)/2]); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	renamed := strings.Replace(string(data), `"fence_start"`, `"fence_begin"`, 1)
	if _, err := ValidateJSON([]byte(renamed)); err == nil {
		t.Fatal("unknown field accepted — DisallowUnknownFields not in effect")
	}
}

// TestViolationDetailCap: the verbatim list stays bounded while the
// count keeps the full total.
func TestViolationDetailCap(t *testing.T) {
	r := &runner{cfg: &Config{Logf: func(string, ...interface{}) {}}}
	for i := 0; i < maxViolationDetail+10; i++ {
		r.violate("violation %d", i)
	}
	if r.violationCount != maxViolationDetail+10 {
		t.Fatalf("count %d, want %d", r.violationCount, maxViolationDetail+10)
	}
	if len(r.violations) != maxViolationDetail {
		t.Fatalf("detail list %d, want cap %d", len(r.violations), maxViolationDetail)
	}
}

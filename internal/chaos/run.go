package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/serial"
)

// runner holds one Run's mutable state. All fields are touched only by
// the Run goroutine; the driver's request goroutines communicate back
// exclusively through the per-phase outcome slice.
type runner struct {
	cfg     *Config
	members []*member
	// specs is the warm pool: two warmup specs plus each completed
	// phase's fresh spec.
	specs []*serial.SolveSpec
	// lastFence remembers each member's last nonzero fencing token;
	// fenceHigh is the fleet-wide maximum ever observed.
	lastFence      map[int]uint64
	fenceHigh      uint64
	violations     []string
	violationCount int
	phases         []PhaseResult
	fenceBumps     int
}

// Run executes the configured fault schedule against a fresh fleet and
// returns the classified report. The caller stamps GeneratedUnix and
// GoVersion before archiving it. A non-nil error means the harness
// itself could not run (spawn failure, no leader, an unarmable fault);
// contract violations never error — they are counted in the report.
func Run(cfg Config) (*Report, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	r := &runner{cfg: &cfg, lastFence: make(map[int]uint64)}
	defer r.killAll()

	if err := r.startFleet(); err != nil {
		return nil, err
	}
	fenceStart, err := r.warmup()
	if err != nil {
		return nil, err
	}
	for i := range cfg.Phases {
		if err := r.runPhase(i); err != nil {
			return nil, err
		}
	}
	if _, err := r.awaitLeader(10 * cfg.TTL); err != nil {
		r.violate("fleet never settled on a single leader after the last phase: %v", err)
	}
	r.scanFences()
	counters := r.scrapeCounters()
	r.killAll()

	audit, auditViolations := auditStore(cfg.StoreDir)
	for _, v := range auditViolations {
		r.violate("%s", v)
	}

	rep := &Report{
		Config:             runConfig(&cfg),
		Phases:             r.phases,
		ViolationCount:     r.violationCount,
		Violations:         r.violations,
		FenceStart:         fenceStart,
		FenceEnd:           r.fenceHigh,
		FailoverFenceBumps: r.fenceBumps,
		Counters:           counters,
		Audit:              audit,
	}
	for _, p := range r.phases {
		rep.Requests += p.Requests
	}
	return rep, nil
}

func runConfig(cfg *Config) RunConfig {
	rc := RunConfig{
		Procs:      cfg.Procs,
		Seed:       cfg.Seed,
		RateRPS:    cfg.Rate,
		LeaseTTLMs: float64(cfg.TTL) / float64(time.Millisecond),
	}
	for _, ph := range cfg.Phases {
		rc.Phases = append(rc.Phases, PhaseConfig{
			Name:        ph.Name,
			DurationSec: ph.Duration.Seconds(),
			FaultSpec:   ph.FaultSpec,
			Target:      string(ph.Target),
			PauseLeader: ph.PauseLeader,
		})
	}
	return rc
}

// violate records one contract violation: always counted, kept
// verbatim up to the report's detail cap.
func (r *runner) violate(format string, args ...interface{}) {
	r.violationCount++
	msg := fmt.Sprintf(format, args...)
	r.cfg.Logf("chaos: VIOLATION: %s", msg)
	if len(r.violations) < maxViolationDetail {
		r.violations = append(r.violations, msg)
	}
}

func (r *runner) startFleet() error {
	for i := 0; i < r.cfg.Procs; i++ {
		m, err := startMember(r.cfg, i)
		if err != nil {
			return err
		}
		r.members = append(r.members, m)
	}
	for _, m := range r.members {
		if err := m.waitHealthy(15 * time.Second); err != nil {
			return err
		}
	}
	r.cfg.Logf("chaos: fleet of %d healthy over %s", len(r.members), r.cfg.StoreDir)
	return nil
}

func (r *runner) killAll() {
	for _, m := range r.members {
		m.kill()
	}
}

// awaitLeader polls the reachable members until exactly one reports
// lease_state "leader" and returns its index.
func (r *runner) awaitLeader(timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	leaders := 0
	for {
		leader := -1
		leaders = 0
		for _, m := range r.members {
			if m.paused || m.killed {
				continue
			}
			st, err := m.leaseState()
			if err != nil {
				continue
			}
			if st == "leader" {
				leader = m.index
				leaders++
			}
		}
		if leaders == 1 {
			return leader, nil
		}
		if !time.Now().Before(deadline) {
			return -1, fmt.Errorf("chaos: %d leaders visible after %v", leaders, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// warmup solves the two base specs through the leader and waits for
// both snapshots to be durable, so every fault phase starts from a
// store with committed state to corrupt. Returns the fence high-water
// at the healthy start.
func (r *runner) warmup() (uint64, error) {
	leader, err := r.awaitLeader(15 * time.Second)
	if err != nil {
		return 0, err
	}
	// Cold solves get their own generous budget; the driver's tight
	// RequestTimeout applies only to scheduled load.
	warm := &http.Client{Timeout: 30 * time.Second}
	for i := 0; i < 2; i++ {
		spec := chaosSpec(r.cfg.Seed, i)
		r.specs = append(r.specs, spec)
		body, err := json.Marshal(spec)
		if err != nil {
			return 0, fmt.Errorf("chaos: warmup spec %d: %w", i, err)
		}
		resp, err := warm.Post(r.members[leader].url("/solve"), "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, fmt.Errorf("chaos: warmup solve %d: %w", i, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("chaos: warmup solve %d: status %d", i, resp.StatusCode)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		raw, err := r.members[leader].rawStats()
		if err == nil {
			if w, _ := raw["store_writes"].(float64); w >= 2 {
				break
			}
		}
		if !time.Now().Before(deadline) {
			return 0, fmt.Errorf("chaos: warmup snapshots never became durable")
		}
		time.Sleep(50 * time.Millisecond)
	}
	r.scanFences()
	r.cfg.Logf("chaos: warm: 2 specs durable, fence high-water %d", r.fenceHigh)
	return r.fenceHigh, nil
}

func (r *runner) selectTargets(t Target, leader int) []*member {
	var out []*member
	for _, m := range r.members {
		switch t {
		case TargetAll:
			out = append(out, m)
		case TargetLeader:
			if m.index == leader {
				out = append(out, m)
			}
		case TargetFollowers:
			if m.index != leader {
				out = append(out, m)
			}
		}
	}
	return out
}

func (r *runner) runPhase(pi int) error {
	ph := r.cfg.Phases[pi]
	res := PhaseResult{Name: ph.Name}
	leader, err := r.awaitLeader(10 * r.cfg.TTL)
	if err != nil {
		return err
	}
	r.cfg.Logf("chaos: phase %q (%v): leader m%d, fault %q on %q",
		ph.Name, ph.Duration, leader, ph.FaultSpec, ph.Target)

	// Every phase introduces one genuinely cold spec, so fault paths
	// that only fire on misses (persist, proxy) see real work.
	fresh := chaosSpec(r.cfg.Seed, len(r.specs))
	if ph.FaultSpec != "" {
		for _, m := range r.selectTargets(ph.Target, leader) {
			if err := m.armFault(ph.FaultSpec); err != nil {
				return err
			}
		}
	}
	preFence := r.fenceHigh
	paused := -1
	if ph.PauseLeader {
		if err := r.members[leader].pause(); err != nil {
			return err
		}
		paused = leader
	}

	r.drive(&res, ph, fresh, paused)

	for _, m := range r.members {
		if m.killed {
			continue
		}
		if err := m.clearFaults(); err != nil {
			return err
		}
	}
	r.specs = append(r.specs, fresh)
	r.scanFences()
	if ph.PauseLeader {
		// The pause outlives the lease, so some follower must have taken
		// over under a strictly larger fencing token. Give the election a
		// few TTLs of grace past the phase itself.
		deadline := time.Now().Add(10 * r.cfg.TTL)
		for r.fenceHigh <= preFence && time.Now().Before(deadline) {
			time.Sleep(100 * time.Millisecond)
			r.scanFences()
		}
		if r.fenceHigh > preFence {
			r.fenceBumps++
		} else {
			r.violate("phase %q: fence high-water never rose above %d after the leader pause", ph.Name, preFence)
		}
	}
	res.FenceHighWater = r.fenceHigh
	r.phases = append(r.phases, res)
	r.cfg.Logf("chaos: phase %q done: %d requests (%d ok, %d shed, %d tolerated, %d violations)",
		ph.Name, res.Requests, res.OK, res.Shed, res.Tolerated, res.Violations)
	return nil
}

// outcome is one driver request's raw result, classified after the
// phase drains.
type outcome struct {
	member int
	spec   *serial.SolveSpec
	nloc   int
	status int
	err    error
	body   []byte
}

// drive runs the open-loop load for one phase: round-robin over all
// members (the paused one included — its timeouts are the tolerated
// failure mode under test), specs drawn from the seeded schedule. A
// paused leader is resumed after dispatch stops, so its backlog drains
// before classification.
func (r *runner) drive(res *PhaseResult, ph Phase, fresh *serial.SolveSpec, paused int) {
	interval := time.Duration(float64(time.Second) / r.cfg.Rate)
	// Fault phases skew toward the cold spec so the faulted paths
	// (persist, proxy) see steady work; healthy phases mostly re-serve
	// the warm pool.
	freshProb := 0.25
	if ph.FaultSpec != "" || ph.PauseLeader {
		freshProb = 0.5
	}
	rng := phaseRNG(r.cfg.Seed, len(r.phases))
	end := time.Now().Add(ph.Duration)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var outs []outcome
	for next, i := time.Now(), 0; time.Now().Before(end); i++ {
		m := r.members[i%len(r.members)]
		spec := fresh
		if rng.Float64() >= freshProb {
			spec = r.specs[rng.Intn(len(r.specs))]
		}
		nloc := 1 + rng.Intn(2)
		req := serial.ObfuscateRequest{SolveSpec: *spec, Locations: randomLocs(rng, spec, nloc)}
		body, err := json.Marshal(&req)
		if err != nil {
			r.violate("phase %q: marshal request: %v", ph.Name, err)
			continue
		}
		wg.Add(1)
		go func(tm *member, tspec *serial.SolveSpec, tn int, tbody []byte) {
			defer wg.Done()
			o := outcome{member: tm.index, spec: tspec, nloc: tn}
			resp, err := tm.client.Post(tm.url("/obfuscate"), "application/json", bytes.NewReader(tbody))
			if err != nil {
				o.err = err
			} else {
				o.status = resp.StatusCode
				o.body, _ = io.ReadAll(io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
			}
			mu.Lock()
			outs = append(outs, o)
			mu.Unlock()
		}(m, spec, nloc, body)
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	if paused >= 0 {
		if err := r.members[paused].resume(); err != nil {
			r.violate("phase %q: %v", ph.Name, err)
		}
	}
	wg.Wait()
	res.Requests = len(outs)
	for _, o := range outs {
		r.classify(res, paused, o)
	}
}

// classify applies the availability contract to one raw outcome.
func (r *runner) classify(res *PhaseResult, paused int, o outcome) {
	switch {
	case o.err != nil:
		if o.member == paused {
			res.Tolerated++
			return
		}
		res.Violations++
		r.violate("phase %q: request to live member m%d failed: %v", res.Name, o.member, o.err)
	case o.status == http.StatusTooManyRequests:
		res.Shed++
	case o.status < 200 || o.status >= 300:
		res.Violations++
		r.violate("phase %q: member m%d answered status %d: %.200s", res.Name, o.member, o.status, o.body)
	default:
		var or serial.ObfuscateResponse
		if err := json.Unmarshal(o.body, &or); err != nil {
			res.Violations++
			r.violate("phase %q: member m%d 2xx body undecodable: %v", res.Name, o.member, err)
			return
		}
		if msg := checkResponse(o.spec, o.nloc, &or); msg != "" {
			res.Violations++
			r.violate("phase %q: member m%d: %s", res.Name, o.member, msg)
			return
		}
		res.OK++
		switch {
		case or.Cached:
			res.RungMix.Cached++
		case or.Quality == serial.QualityIncumbent:
			res.RungMix.Incumbent++
		case or.Quality == serial.QualityFallback:
			res.RungMix.Fallback++
		default:
			res.RungMix.Optimal++
		}
	}
}

// checkResponse applies the per-response contract: a known serving tier
// and every obfuscated location inside the spec's network domain.
func checkResponse(spec *serial.SolveSpec, nloc int, or *serial.ObfuscateResponse) string {
	switch or.Quality {
	case "", serial.QualityOptimal, serial.QualityIncumbent, serial.QualityFallback:
	default:
		return fmt.Sprintf("unknown serving tier %q", or.Quality)
	}
	if len(or.Locations) != nloc {
		return fmt.Sprintf("%d locations returned for %d requested", len(or.Locations), nloc)
	}
	const slack = 1e-9
	for i, l := range or.Locations {
		if l.Road < 0 || l.Road >= len(spec.Network.Edges) {
			return fmt.Sprintf("location %d on road %d outside [0, %d)", i, l.Road, len(spec.Network.Edges))
		}
		w := spec.Network.Edges[l.Road].Weight
		if math.IsNaN(l.FromStart) || l.FromStart < -slack || l.FromStart > w+slack {
			return fmt.Sprintf("location %d at offset %v outside road %d length %v", i, l.FromStart, l.Road, w)
		}
	}
	return ""
}

// scanFences refreshes the per-member fence observations and the
// fleet-wide high-water. A member's nonzero fencing token must never
// decrease: tokens only grow through the shared lease counter, so a
// regression means a stale process kept committing under an old term.
func (r *runner) scanFences() {
	for _, m := range r.members {
		if m.paused || m.killed {
			continue
		}
		f, err := m.fence()
		if err != nil || f == 0 {
			continue
		}
		if last := r.lastFence[m.index]; f < last {
			r.violate("member m%d fence token went backwards: %d -> %d", m.index, last, f)
		}
		r.lastFence[m.index] = f
		if f > r.fenceHigh {
			r.fenceHigh = f
		}
	}
}

// scrapeCounters sums the reachable members' /stats resilience
// counters at run end.
func (r *runner) scrapeCounters() Counters {
	var c Counters
	add := func(raw map[string]interface{}, key string, dst *uint64) {
		if v, ok := raw[key].(float64); ok {
			*dst += uint64(v)
		}
	}
	for _, m := range r.members {
		if m.paused || m.killed {
			continue
		}
		raw, err := m.rawStats()
		if err != nil {
			continue
		}
		add(raw, "solves", &c.Solves)
		add(raw, "store_writes", &c.StoreWrites)
		add(raw, "store_write_shed", &c.StoreWriteShed)
		add(raw, "quarantine_gc_bytes", &c.QuarantineGCBytes)
		add(raw, "corrupt_quarantined", &c.CorruptQuarantined)
		add(raw, "proxy_breaker_trips", &c.ProxyBreakerTrips)
		add(raw, "degraded_serves", &c.DegradedServes)
		add(raw, "lease_losses", &c.LeaseLosses)
		add(raw, "proxied_solves", &c.ProxiedSolves)
	}
	return c
}

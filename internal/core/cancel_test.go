package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faultinject"
)

// TestSolveCGCtxCancelMidRun is the cancellation-latency regression: a
// context cancelled after round N must stop the loop before round N+1's
// master solve, returning the round-N incumbent together with the
// context error.
func TestSolveCGCtxCancelMidRun(t *testing.T) {
	pr := smallProblem(t, 41, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const cancelAfter = 1 // cancel once iteration index 1 has completed
	res, err := SolveCGCtx(ctx, pr, CGOptions{
		Xi: -1e-9,
		OnIteration: func(iter int, _ CGIteration) {
			if iter == cancelAfter {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Mechanism == nil {
		t.Fatal("cancelled solve returned no incumbent despite completed rounds")
	}
	if res.Stopped == "" {
		t.Error("Stopped should describe the interruption")
	}
	// Latency bound: no full round may run after the cancel is visible.
	if got := len(res.Iterations); got != cancelAfter+1 {
		t.Errorf("loop ran %d rounds, want exactly %d (cancel observed at next round boundary)", got, cancelAfter+1)
	}
	// The incumbent is a serviceable mechanism: row-stochastic and
	// repairable to full Geo-I feasibility.
	if e := res.Mechanism.RowStochasticError(); e > 1e-9 {
		t.Errorf("incumbent row-stochastic error %g", e)
	}
	if _, _, err := pr.EnforceGeoI(res.Mechanism, 1e-10); err != nil {
		t.Errorf("incumbent not repairable: %v", err)
	}
}

// TestSolveCGCtxPreCancelled: cancellation before any master round means
// there is no incumbent — only the error comes back.
func TestSolveCGCtxPreCancelled(t *testing.T) {
	pr := tinyProblem(t, 42, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveCGCtx(ctx, pr, CGOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("pre-cancelled solve returned a result: %+v", res)
	}
}

// TestSolveCGPanicRecovered: a panic injected under the master solve
// surfaces as a *PanicError, not an unwound goroutine.
func TestSolveCGPanicRecovered(t *testing.T) {
	defer faultinject.Reset()
	pr := tinyProblem(t, 43, 3)
	faultinject.Set(FaultSiteCGMaster, faultinject.Fault{Panic: "numeric breakdown", Times: 1})
	res, err := SolveCG(pr, CGOptions{})
	if res != nil {
		t.Fatalf("panicked solve returned a result: %+v", res)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Site != "core.SolveCG" || pe.Value != "numeric breakdown" {
		t.Errorf("PanicError = {Site: %q, Value: %v}", pe.Site, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError should capture the stack")
	}
}

// TestSolveCGMasterErrorFirstRound: the very first master failing is a
// hard error — there is no incumbent to degrade to.
func TestSolveCGMasterErrorFirstRound(t *testing.T) {
	defer faultinject.Reset()
	pr := tinyProblem(t, 44, 3)
	boom := errors.New("injected master failure")
	faultinject.Set(FaultSiteCGMaster, faultinject.Fault{Err: boom, Times: 1})
	res, err := SolveCG(pr, CGOptions{})
	if res != nil || !errors.Is(err, boom) {
		t.Fatalf("got (%v, %v), want (nil, wrapped %v)", res, err, boom)
	}
}

// TestSolveCGMasterErrorLateRound: a master failure after at least one
// clean round returns the previous round's incumbent with a diagnostic,
// not an error — the numerical-stall posture.
func TestSolveCGMasterErrorLateRound(t *testing.T) {
	defer faultinject.Reset()
	pr := smallProblem(t, 45, 3)
	boom := errors.New("late master failure")
	res, err := SolveCGCtx(context.Background(), pr, CGOptions{
		Xi: -1e-9,
		OnIteration: func(iter int, _ CGIteration) {
			if iter == 0 {
				// Arm after round 0 completes so round 1's master fails.
				faultinject.Set(FaultSiteCGMaster, faultinject.Fault{Err: boom, Times: 1})
			}
		},
	})
	if err != nil {
		t.Fatalf("late master failure should degrade, got error %v", err)
	}
	if res == nil || res.Mechanism == nil {
		t.Fatal("no incumbent returned")
	}
	if res.Stopped == "" {
		t.Error("Stopped should record the master failure")
	}
	if e := res.Mechanism.RowStochasticError(); e > 1e-9 {
		t.Errorf("incumbent row-stochastic error %g", e)
	}
}

// TestSolveCGPricingPanicRecovered: a panic on a pricing worker
// goroutine must not crash the process — the caller's recover cannot
// reach another goroutine, so the worker converts it itself.
func TestSolveCGPricingPanicRecovered(t *testing.T) {
	defer faultinject.Reset()
	pr := tinyProblem(t, 47, 3)
	faultinject.Set(FaultSiteCGPricing, faultinject.Fault{Panic: "worker breakdown", Times: 1})
	res, err := SolveCG(pr, CGOptions{})
	if res != nil {
		t.Fatalf("panicked solve returned a result: %+v", res)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want wrapped *PanicError", err, err)
	}
	if pe.Site != "core.pricer" {
		t.Errorf("panic site %q, want core.pricer", pe.Site)
	}
}

// TestSolveCGPricingErrorIsFatal: a pricing failure with a live context
// is a real solver error, not a degradation.
func TestSolveCGPricingErrorIsFatal(t *testing.T) {
	defer faultinject.Reset()
	pr := tinyProblem(t, 46, 3)
	boom := errors.New("injected pricing failure")
	faultinject.Set(FaultSiteCGPricing, faultinject.Fault{Err: boom, Times: 1})
	res, err := SolveCG(pr, CGOptions{})
	if res != nil || !errors.Is(err, boom) {
		t.Fatalf("got (%v, %v), want (nil, wrapped %v)", res, err, boom)
	}
}

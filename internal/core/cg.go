package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/lp"
	"repro/internal/roadnet"
)

// Fault-injection sites visited by the column-generation loop (see
// internal/faultinject): once per master solve and once per pricing
// subproblem.
const (
	FaultSiteCGMaster  = "core/cg/master"
	FaultSiteCGPricing = "core/cg/pricing"
)

// CGOptions tune the Dantzig–Wolfe column-generation solver.
type CGOptions struct {
	// Xi is the early-termination threshold on min_l ζ_l (Section 4.3.3):
	// the loop stops once every pricing subproblem's reduced cost is at
	// least Xi. Xi must be ≤ 0; 0 solves to (numerical) optimality.
	Xi float64
	// RelGap, when positive, additionally stops the loop once
	// (ETDD − dual bound)/ETDD falls below it.
	RelGap float64
	// MaxIterations bounds the master/pricing rounds (default 80).
	MaxIterations int
	// Workers is the pricing parallelism (default GOMAXPROCS).
	Workers int
	// Sequential forces one-at-a-time pricing regardless of Workers,
	// used by the parallel-pricing ablation benchmark.
	Sequential bool
	// Smoothing is the Wentges dual-smoothing weight β ∈ [0, 1): pricing
	// runs at β·(best-bound dual) + (1−β)·(master dual), which damps the
	// dual oscillation of degenerate masters. Negative disables; 0
	// selects the default 0.8.
	Smoothing float64
	// PlainSeed seeds the master with only the single ε/2 exponential
	// mechanism (plus zero columns) instead of the multi-sharpness seed
	// family — the seeding ablation.
	PlainSeed bool
	// ColdRestart disables every warm-start path: the master LP is
	// rebuilt from scratch each round and each pricing subproblem
	// constructs a fresh LP per solve. This is the pre-warm-start
	// behaviour, kept as the honest baseline for the benchmark suite.
	ColdRestart bool
	// Resume, when non-nil, seeds the master with the column pool of a
	// previous run on the same problem instead of the synthetic seed
	// family, so the loop restarts where the previous run stopped. A
	// state whose shape does not match the problem is ignored.
	Resume *CGState
	// LP passes solver options to both master and subproblems.
	LP lp.Options
	// OnIteration, when non-nil, observes each round (for tracing and
	// convergence experiments).
	OnIteration func(iter int, stats CGIteration)
	// OnState, when non-nil and CheckpointEvery > 0, receives an
	// immutable snapshot of the column pool after every CheckpointEvery
	// completed rounds. This is the serving layer's checkpoint hook: the
	// snapshot is Resume-able, so a process killed between rounds can
	// restart column generation from its last persisted pool instead of
	// from scratch. The callback runs synchronously on the solver
	// goroutine — a slow callback extends the solve by its own latency.
	OnState func(iter int, st *CGState)
	// CheckpointEvery is the round period of OnState; 0 disables it.
	CheckpointEvery int
}

func (o CGOptions) withDefaults() CGOptions {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 80
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Sequential {
		o.Workers = 1
	}
	switch {
	case o.Smoothing < 0:
		o.Smoothing = 0
	case o.Smoothing == 0:
		o.Smoothing = 0.8
	case o.Smoothing >= 1:
		o.Smoothing = 0.95
	}
	return o
}

// CGIteration records one round of the master/pricing exchange.
type CGIteration struct {
	// MasterObj is the restricted master's optimal ETDD (including any
	// stabilization-slack penalty, which is zero at convergence).
	MasterObj float64
	// MinZeta is min_l ζ_l under the master duals, the paper's
	// convergence measure; ≥ 0 means the master solution is optimal for
	// the full DW formulation.
	MinZeta float64
	// LowerBound is the Lagrangian dual bound produced this round
	// (Theorem 4.4).
	LowerBound float64
	// ColumnsAdded counts new extreme points appended this round.
	ColumnsAdded int
	// Verified reports that pricing ran at the exact master duals (not a
	// smoothed point), so MinZeta is exact.
	Verified bool
	// Elapsed is the wall time of the round.
	Elapsed time.Duration
}

// CGResult is the outcome of SolveCG.
type CGResult struct {
	Mechanism *Mechanism
	// ETDD is the achieved quality loss (recomputed from the recovered
	// mechanism).
	ETDD float64
	// LowerBound is the best dual bound seen across iterations; the true
	// D-VLP optimum lies in [LowerBound, ETDD].
	LowerBound float64
	// Iterations traces the convergence (Figs. 13(b)-(f)).
	Iterations []CGIteration
	// Stopped carries a diagnostic when the loop ended early on a
	// numerical condition rather than a convergence criterion; the
	// mechanism is still the valid incumbent of the last clean round.
	Stopped string
	// State is the final column pool, resumable via CGOptions.Resume. It
	// is immutable once returned and safe to share across goroutines.
	State *CGState
	// Elapsed is the total solve wall time.
	Elapsed time.Duration
}

// CGState is an opaque snapshot of a column-generation run's column
// pool. A run resumed from it (CGOptions.Resume) re-admits every column
// the previous run priced out, so an interrupted or gap-limited solve
// continues rather than restarts — the background-upgrade path of the
// serving layer warm-starts from its incumbent's state this way.
type CGState struct {
	k       int
	columns []cgColumn
}

// Columns returns the pool size (0 for a nil state).
func (st *CGState) Columns() int {
	if st == nil {
		return 0
	}
	return len(st.columns)
}

// validFor reports whether the snapshot matches a problem with k true
// intervals.
func (st *CGState) validFor(k int) bool {
	if st == nil || st.k != k || len(st.columns) == 0 {
		return false
	}
	covered := make([]bool, k)
	for _, c := range st.columns {
		if len(c.z) != k || c.l < 0 || c.l >= k {
			return false
		}
		covered[c.l] = true
	}
	// Every convexity row needs at least one column or the master is
	// structurally infeasible.
	for _, ok := range covered {
		if !ok {
			return false
		}
	}
	return true
}

// ApproxRatio returns ETDD / LowerBound, the paper's approximation-ratio
// metric (Fig. 13(e)); 1 means provably optimal.
func (r *CGResult) ApproxRatio() float64 {
	if r.LowerBound <= 0 {
		return math.NaN()
	}
	return r.ETDD / r.LowerBound
}

// cgColumn is one extreme point ẑ of a polyhedron Λ_l together with its
// objective contribution.
type cgColumn struct {
	l    int
	z    []float64 // K entries over true intervals
	cost float64   // Σ_i c_{i,l} z_i
}

const cgTol = 1e-9

// SolveCG solves D-VLP by Dantzig–Wolfe decomposition (Section 4.3).
//
// The master program optimises convex weights over known extreme points
// of the per-column polyhedra Λ_l under the K unit-measure rows and K
// convexity rows; each pricing subproblem sub_l minimises the reduced
// cost (c_l − π)·z − μ_l over Λ_l (reduced Geo-I rows + 0 ≤ z ≤ 1) and
// proposes a new extreme point when its optimum ζ_l is negative.
// Subproblems share no variables and are priced in parallel.
//
// Two standard column-generation stabilizers keep the degenerate master
// from oscillating: bounded-penalty slacks on the unit rows (escalated
// when binding, so exactness is preserved) and Wentges smoothing of the
// pricing duals with a verification pass at the exact master duals
// before any optimality claim.
//
// SolveCG is SolveCGCtx with a background context: it runs to a
// convergence or iteration-limit stop and cannot be abandoned.
func SolveCG(pr *Problem, opts CGOptions) (*CGResult, error) {
	//lint:ignore ctxflow SolveCG is the documented non-cancellable convenience entry; cancellable callers use SolveCGCtx
	return SolveCGCtx(context.Background(), pr, opts)
}

// SolveCGCtx solves D-VLP by column generation under a context.
//
// Cancellation semantics: the context is polled at every master/pricing
// round boundary and inside each LP solve (per simplex-pivot batch, per
// IPM Newton iteration), so abandonment latency is bounded by roughly
// one master round. When the context expires after at least one master
// solve has completed, SolveCGCtx returns the *incumbent* — a CGResult
// whose Mechanism is the valid (feasible up to solver tolerance) primal
// solution of the last completed master, with Stopped describing the
// interruption — together with the context's error. Callers that want
// graceful degradation use the mechanism; callers that want
// all-or-nothing semantics treat the non-nil error as fatal. If the
// context expires before any master solve completes, the result is nil.
//
// Any panic escaping the solver stack (a numeric breakdown deep in a
// factorisation) is recovered and returned as a *PanicError instead of
// unwinding into the caller.
func SolveCGCtx(ctx context.Context, pr *Problem, opts CGOptions) (res *CGResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, newPanicError("core.SolveCG", r)
		}
	}()
	opts = opts.withDefaults()
	if opts.Xi > 0 {
		return nil, fmt.Errorf("core: CG threshold Xi must be ≤ 0, got %v", opts.Xi)
	}
	start := time.Now()
	k := pr.Part.K()

	var columns []cgColumn
	if opts.Resume.validFor(k) {
		// Restart from a previous run's pool: the columns are immutable,
		// so sharing the backing entries (but not the slice header) with
		// the donor state is safe.
		columns = append(make([]cgColumn, 0, len(opts.Resume.columns)+k), opts.Resume.columns...)
	} else {
		columns = seedColumns(pr, opts.PlainSeed)
	}
	sub := newPricer(pr, opts)
	res = &CGResult{LowerBound: math.Inf(-1)}
	var lambda []float64
	// ctxErr records a cancellation observed mid-run; the loop breaks
	// with the incumbent and the error is returned alongside the result.
	var ctxErr error

	// Dual box radius for the master stabilization slacks.
	cmax := 0.0
	for _, c := range pr.Costs {
		if c > cmax {
			cmax = c
		}
	}
	rho := 10 * cmax
	if rho <= 0 {
		rho = 1
	}
	const slackTol = 1e-7

	xi := opts.Xi
	if xi > -cgTol {
		xi = -cgTol
	}

	// Persistent master (unless the cold-restart baseline is requested):
	// compiled once over the seed pool, grown in place as columns arrive.
	var ms *masterState
	if !opts.ColdRestart {
		var mserr error
		ms, mserr = newMasterState(pr, columns, rho, opts.LP)
		if mserr != nil {
			return nil, fmt.Errorf("core: CG master setup: %w", mserr)
		}
	}

	var piStab []float64 // dual point of the best Lagrangian bound

rounds:
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if cerr := ctx.Err(); cerr != nil {
			ctxErr = cerr
			res.Stopped = fmt.Sprintf("cancelled before iteration %d: %v", iter, cerr)
			break
		}
		iterStart := time.Now()

		merr := faultinject.At(FaultSiteCGMaster)
		var masterObj, slack float64
		var lam, piM, muM []float64
		if merr == nil {
			if ms != nil {
				masterObj, lam, piM, muM, slack, merr = ms.solve(ctx)
			} else {
				masterObj, lam, piM, muM, slack, merr = solveMaster(ctx, pr, columns, rho, opts.LP)
			}
		}
		if merr != nil {
			if lambda == nil {
				// No master has ever solved: there is no incumbent to
				// degrade to.
				return nil, fmt.Errorf("core: CG master iteration %d: %w", iter, merr)
			}
			// A late master failure leaves a valid incumbent from the
			// previous round; stop generating columns and return it
			// (the dual bound still brackets its gap).
			res.Stopped = fmt.Sprintf("master solve failed at iteration %d: %v", iter, merr)
			if cerr := ctx.Err(); cerr != nil {
				ctxErr = cerr
			}
			break
		}
		lambda = lam

		// Pricing point: smoothed toward the best-bound dual.
		piUse := piM
		if piStab != nil && opts.Smoothing > 0 {
			piUse = make([]float64, k)
			for i := range piUse {
				piUse[i] = opts.Smoothing*piStab[i] + (1-opts.Smoothing)*piM[i]
			}
		}

		var it CGIteration
		verified := samePoint(piUse, piM)
		for {
			subMins, cols, perr := sub.priceAll(ctx, piUse)
			if perr != nil {
				if cerr := ctx.Err(); cerr != nil {
					// Cancellation mid-pricing: this round's master
					// solution is a complete, valid incumbent.
					ctxErr = cerr
					res.Stopped = fmt.Sprintf("cancelled during pricing at iteration %d: %v", iter, cerr)
					break rounds
				}
				return nil, fmt.Errorf("core: CG pricing iteration %d: %w", iter, perr)
			}

			// Lagrangian bound L(π) = Σ_k π_k + Σ_l min_{z∈Λ_l}(c_l − π)z,
			// valid at any dual point (Theorem 4.4).
			bound := 0.0
			for _, p := range piUse {
				bound += p
			}
			for _, m := range subMins {
				bound += m
			}
			if bound > res.LowerBound {
				res.LowerBound = bound
				piStab = append([]float64(nil), piUse...)
			}

			// Reduced costs of the proposed columns under the exact
			// master duals decide both termination and admission.
			minRc := math.Inf(1)
			for l, c := range cols {
				rc := c.cost - muM[l]
				for i := 0; i < k; i++ {
					rc -= piM[i] * c.z[i]
				}
				if rc < minRc {
					minRc = rc
				}
				cols[l] = c
			}

			it = CGIteration{
				MasterObj:  masterObj,
				MinZeta:    minRc,
				LowerBound: bound,
				Verified:   verified,
			}

			if minRc >= xi {
				if !verified {
					// Possible mispricing at the smoothed point: verify
					// at the exact master duals before concluding.
					piUse = piM
					verified = true
					continue
				}
				break
			}

			added := 0
			for l, c := range cols {
				rc := c.cost - muM[l]
				for i := 0; i < k; i++ {
					rc -= piM[i] * c.z[i]
				}
				if rc < -cgTol && !duplicateColumn(columns, c) {
					columns = append(columns, c)
					if ms != nil {
						ms.addColumn(c)
					}
					added++
				}
			}
			if added == 0 && !verified {
				piUse = piM
				verified = true
				continue
			}
			it.ColumnsAdded = added
			break
		}

		it.Elapsed = time.Since(iterStart)
		res.Iterations = append(res.Iterations, it)
		if opts.OnIteration != nil {
			opts.OnIteration(iter, it)
		}
		if opts.OnState != nil && opts.CheckpointEvery > 0 && (iter+1)%opts.CheckpointEvery == 0 {
			// Snapshot the pool under a fresh slice header: existing
			// columns are immutable, only the slice itself still grows.
			opts.OnState(iter, &CGState{k: k, columns: append([]cgColumn(nil), columns...)})
		}

		converged := it.MinZeta >= xi && it.ColumnsAdded == 0
		gapMet := opts.RelGap > 0 && masterObj > 0 &&
			(masterObj-res.LowerBound)/masterObj <= opts.RelGap && slack <= slackTol
		if converged {
			if slack > slackTol {
				// Converged against a binding dual box: widen and go on.
				rho *= 10
				if ms != nil {
					ms.setRho(rho)
				}
				continue
			}
			break
		}
		if gapMet {
			break
		}
		if it.ColumnsAdded == 0 {
			if slack > slackTol {
				rho *= 10
				if ms != nil {
					ms.setRho(rho)
				}
				continue
			}
			// Verified negative reduced costs, yet every proposed column
			// already exists: a numerical stall. The incumbent stands and
			// the dual bound brackets its gap.
			break
		}
	}

	if lambda == nil {
		// Cancelled before the first master round ever completed: no
		// incumbent exists, only the error is meaningful.
		return nil, ctxErr
	}

	// Recover Z from the final master weights: z_{·,l} = Σ_t λ_{l,t} ẑ_t.
	// Columns appended after the last master solve carry no weight, so
	// only the first len(lambda) columns participate.
	z := make([]float64, k*k)
	for ci, c := range columns[:len(lambda)] {
		w := lambda[ci]
		if w <= 0 {
			continue
		}
		for i := 0; i < k; i++ {
			z[i*k+c.l] += w * c.z[i]
		}
	}
	normalizeRows(z, k)
	res.Mechanism = &Mechanism{Part: pr.Part, Z: z}
	res.ETDD = pr.ETDD(res.Mechanism)
	// Snapshot the pool for CGOptions.Resume; the slice is never mutated
	// after this point.
	res.State = &CGState{k: k, columns: columns}
	// The Lagrangian bound can be vacuous (negative) when the loop stops
	// very early; quality loss is non-negative by definition.
	if res.LowerBound < 0 {
		res.LowerBound = 0
	}
	res.Elapsed = time.Since(start)
	// A cancelled run still returns its incumbent: callers use the
	// mechanism for graceful degradation or drop it for all-or-nothing
	// semantics.
	return res, ctxErr
}

func samePoint(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:ignore floateq the pricing certificate is only valid at the exact dual point; bitwise identity is the contract here
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seedColumns builds the initial master columns. The full seed family
// holds, per polyhedron Λ_l, unnormalised exponential columns
// e^{−γ·ε·d_sym(·,l)} at several sharpness levels γ ∈ (0, 1] — all
// feasible for Λ_l because d_sym is a metric with d_sym ≤ d on adjacent
// pairs — plus the zero vertex, plus the columns of the normalised ε/2
// exponential mechanism, which collectively form a feasible master
// solution (so no artificial variables are ever needed).
func seedColumns(pr *Problem, plain bool) []cgColumn {
	k := pr.Part.K()
	mech := pr.ExponentialMechanism()
	gammas := []float64{1, 0.5, 0.25}
	if plain {
		gammas = nil
	}
	columns := make([]cgColumn, 0, (2+len(gammas))*k)
	for l := 0; l < k; l++ {
		z := make([]float64, k)
		for i := 0; i < k; i++ {
			z[i] = mech.Z[i*k+l]
		}
		columns = append(columns,
			cgColumn{l: l, z: z, cost: pr.columnCost(l, z)},
			cgColumn{l: l, z: make([]float64, k), cost: 0},
		)
		for _, g := range gammas {
			ze := make([]float64, k)
			eps := pr.MinEps()
			for i := 0; i < k; i++ {
				ze[i] = math.Exp(-g * eps * pr.Sym.Dist(roadnet.NodeID(i), roadnet.NodeID(l)))
			}
			// At small ε the γ family flattens toward the all-ones
			// vector; near-collinear columns only degrade the master's
			// conditioning, so drop them.
			if nearDuplicateSeed(columns, l, ze) {
				continue
			}
			columns = append(columns, cgColumn{l: l, z: ze, cost: pr.columnCost(l, ze)})
		}
	}
	return columns
}

// nearDuplicateSeed reports whether block l already has a seed column
// within 1e-3 of ze in every entry.
func nearDuplicateSeed(columns []cgColumn, l int, ze []float64) bool {
outer:
	for _, old := range columns {
		if old.l != l {
			continue
		}
		for i, v := range old.z {
			if math.Abs(v-ze[i]) > 1e-3 {
				continue outer
			}
		}
		return true
	}
	return false
}

// duplicateColumn reports whether an (l-matching) column with the same
// entries up to a small tolerance already exists.
func duplicateColumn(columns []cgColumn, c cgColumn) bool {
outer:
	for _, old := range columns {
		if old.l != c.l {
			continue
		}
		for i, v := range old.z {
			if math.Abs(v-c.z[i]) > 1e-9 {
				continue outer
			}
		}
		return true
	}
	return false
}

// columnCost is Σ_i c_{i,l} z_i.
func (pr *Problem) columnCost(l int, z []float64) float64 {
	k := pr.Part.K()
	c := 0.0
	for i := 0; i < k; i++ {
		c += pr.Costs[i*k+l] * z[i]
	}
	return c
}

// solveMaster builds and solves the restricted master, returning its
// objective, the column weights λ, the duals π (unit rows) and μ
// (convexity rows), and the total mass on stabilization slacks.
//
// Stabilization: the master's unit rows are softened to
// Σ ẑ_k λ + s_k⁺ − s_k⁻ = 1 with cost ρ per unit of slack, which caps the
// dual prices at |π_k| ≤ ρ. Without this, the heavily degenerate master
// has wildly non-unique duals and the pricing loop oscillates instead of
// converging. When the box binds (slack > 0), the caller escalates ρ and
// re-solves, so the final answer is exact.
func solveMaster(ctx context.Context, pr *Problem, columns []cgColumn, rho float64, lpOpts lp.Options) (obj float64, lambda, pi, mu []float64, slackUse float64, err error) {
	lpOpts.Ctx = ctx
	k := pr.Part.K()
	n := len(columns)
	prob := buildMasterProblem(k, columns, rho)

	// The master is heavily degenerate with many near-parallel columns —
	// hostile territory for pivoting methods — so it is solved with the
	// interior-point method, which needs no vertex (the recovered
	// mechanism is a convex combination anyway) and produces the
	// well-centred duals column generation wants.
	sol, err := lp.SolveIPM(prob, lpOpts)
	if err != nil {
		return 0, nil, nil, nil, 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, nil, nil, nil, 0, fmt.Errorf("master LP (%d rows, %d cols) ended %v after %d IPM iterations",
			prob.NumConstraints(), prob.NumVars(), sol.Status, sol.Iterations)
	}
	for s := 0; s < 2*k; s++ {
		slackUse += sol.X[n+s]
	}
	return sol.Objective, sol.X[:n], sol.Duals[:k], sol.Duals[k : 2*k], slackUse, nil
}

// buildMasterProblem compiles the restricted master LP over a column
// pool: n column weights plus 2k stabilization slacks, k unit rows and
// k convexity rows (the cold-restart layout; the persistent masterState
// puts slacks first instead).
func buildMasterProblem(k int, columns []cgColumn, rho float64) *lp.Problem {
	n := len(columns)
	prob := lp.NewProblem(n + 2*k)
	for ci, c := range columns {
		prob.SetObjectiveCoeff(ci, c.cost)
	}
	for s := 0; s < 2*k; s++ {
		prob.SetObjectiveCoeff(n+s, rho)
	}
	// Unit rows: Σ_cols ẑ_i λ + s_i⁺ − s_i⁻ = 1 for each true interval i.
	for i := 0; i < k; i++ {
		terms := make([]lp.Term, 0, n+2)
		for ci, c := range columns {
			if v := c.z[i]; v != 0 {
				terms = append(terms, lp.Term{Var: ci, Coef: v})
			}
		}
		terms = append(terms, lp.Term{Var: n + 2*i, Coef: 1}, lp.Term{Var: n + 2*i + 1, Coef: -1})
		prob.AddConstraint(terms, lp.EQ, 1)
	}
	// Convexity rows: Σ_{t∈l} λ_{l,t} = 1 for each polyhedron l.
	perL := make([][]lp.Term, k)
	for ci, c := range columns {
		perL[c.l] = append(perL[c.l], lp.Term{Var: ci, Coef: 1})
	}
	for l := 0; l < k; l++ {
		prob.AddConstraint(perL[l], lp.EQ, 1)
	}
	return prob
}

// PresolveReduction reports what lp.Presolve removes from the two LP
// shapes this instance generates: the restricted master over the seed
// column pool and one pricing dual subproblem. The benchmark suite
// archives the ratios per K tier — honest near-zero numbers on these
// shapes are expected (CG formulations carry no redundant rows), and a
// sudden nonzero value flags a formulation change.
func PresolveReduction(pr *Problem) (master, pricing lp.PresolveStats) {
	k := pr.Part.K()
	columns := seedColumns(pr, false)
	cmax := 0.0
	for _, c := range pr.Costs {
		if c > cmax {
			cmax = c
		}
	}
	rho := 10 * cmax
	if rho <= 0 {
		rho = 1
	}
	master = lp.Presolve(buildMasterProblem(k, columns, rho)).Stats()
	// The pricing shape as priceOneCold builds it: sub_0 at the zero dual
	// point, so the right-hand sides are the real −w values rather than
	// the warm template's placeholders.
	sub := newPricer(pr, CGOptions{}.withDefaults())
	dual := lp.NewProblem(sub.numDual)
	for b := 0; b < k; b++ {
		dual.SetObjectiveCoeff(2*len(pr.Red.Pairs)+b, 1)
	}
	for i := 0; i < k; i++ {
		dual.AddConstraint(sub.dualRows[i], lp.GE, -pr.Costs[i*k])
	}
	pricing = lp.Presolve(dual).Stats()
	return master, pricing
}

// masterState is the persistent restricted master: one interior-point
// instance kept alive for the whole column-generation run. The variable
// layout puts the 2K stabilization slacks first (so their indices never
// move) and appends one variable per admitted column after them; rows
// are the K unit rows followed by the K convexity rows, all equalities.
// Between rounds only three things change, each in place: new columns
// are appended (AddColumn), the slack penalty ρ is retuned
// (SetObjectiveCoeff), and the solver warm-starts from its previous
// optimal iterate — falling back to a cold start internally whenever
// that iterate goes stale.
type masterState struct {
	k     int
	ncols int
	sv    *lp.IPMSolver

	entryBuf []lp.Term // scratch for column entries
}

// newMasterState compiles the master over the initial column pool.
func newMasterState(pr *Problem, columns []cgColumn, rho float64, lpOpts lp.Options) (*masterState, error) {
	k := pr.Part.K()
	ms := &masterState{k: k}
	prob := lp.NewProblem(2 * k)
	for s := 0; s < 2*k; s++ {
		prob.SetObjectiveCoeff(s, rho)
	}
	// Unit rows 0..k−1: s_i⁺ − s_i⁻ + Σ ẑ_i λ = 1; convexity rows
	// k..2k−1: Σ_{t∈l} λ_{l,t} = 1 (filled by the column appends below).
	for i := 0; i < k; i++ {
		prob.AddConstraint([]lp.Term{{Var: 2 * i, Coef: 1}, {Var: 2*i + 1, Coef: -1}}, lp.EQ, 1)
	}
	for l := 0; l < k; l++ {
		prob.AddConstraint(nil, lp.EQ, 1)
	}
	for _, c := range columns {
		prob.AddColumn(c.cost, ms.colEntries(c))
	}
	sv, err := lp.NewIPMSolver(prob, lpOpts)
	if err != nil {
		return nil, err
	}
	ms.sv = sv
	ms.ncols = len(columns)
	return ms, nil
}

// colEntries renders a column's constraint entries (unit rows it touches
// plus its convexity row) into the shared scratch buffer.
func (ms *masterState) colEntries(c cgColumn) []lp.Term {
	ms.entryBuf = ms.entryBuf[:0]
	for i, v := range c.z {
		if v != 0 {
			ms.entryBuf = append(ms.entryBuf, lp.Term{Var: i, Coef: v})
		}
	}
	ms.entryBuf = append(ms.entryBuf, lp.Term{Var: ms.k + c.l, Coef: 1})
	return ms.entryBuf
}

// addColumn admits a priced-out column into the live master.
func (ms *masterState) addColumn(c cgColumn) {
	ms.sv.AddColumn(c.cost, ms.colEntries(c))
	ms.ncols++
}

// setRho retunes the stabilization penalty on all 2K slack variables.
func (ms *masterState) setRho(rho float64) {
	for s := 0; s < 2*ms.k; s++ {
		ms.sv.SetObjectiveCoeff(s, rho)
	}
}

// solve re-solves the live master; same contract as solveMaster. The
// returned slices alias the solver's solution and are valid until the
// next solve.
func (ms *masterState) solve(ctx context.Context) (obj float64, lambda, pi, mu []float64, slackUse float64, err error) {
	ms.sv.SetContext(ctx)
	sol, err := ms.sv.Solve()
	if err != nil {
		return 0, nil, nil, nil, 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, nil, nil, nil, 0, fmt.Errorf("master LP (%d rows, %d cols) ended %v after %d IPM iterations",
			2*ms.k, ms.sv.NumVars(), sol.Status, sol.Iterations)
	}
	for s := 0; s < 2*ms.k; s++ {
		slackUse += sol.X[s]
	}
	return sol.Objective, sol.X[2*ms.k:], sol.Duals[:ms.k], sol.Duals[ms.k : 2*ms.k], slackUse, nil
}

// pricer solves the K pricing subproblems.
//
// The primal form of sub_l — min w·z over Λ_l = {Gz ≤ 0, 0 ≤ z ≤ 1} with
// G the reduced Geo-I rows — has 2P+K rows that are almost all tight at
// zero: a maximally degenerate shape on which the simplex crawls.
// Pricing therefore solves the LP dual,
//
//	min b·u  s.t.  Aᵀu ≥ −w, u ≥ 0,   A = [G; I], b = (0…0, 1…1),
//
// which has only K rows with generic right-hand sides, and recovers the
// primal minimiser z* as the dual prices of that problem (the dual of
// the dual is the primal). Every recovered column is verified against
// Λ_l and the rare numerically-doubtful one falls back to a direct
// primal solve.
type pricer struct {
	pr   *Problem
	opts CGOptions

	// dualRows[i] holds the fixed coefficient terms of the dual row for
	// primal variable z_i; only the right-hand side −w_i changes between
	// solves.
	dualRows [][]lp.Term
	numDual  int // dual variable count = 2·pairs + K

	// primalBase is the straightforward primal formulation, used as the
	// verification fallback.
	primalBase *lp.Problem
	// dualBase is the dual formulation with placeholder right-hand sides;
	// warm workers compile their Prepared instances from it.
	dualBase *lp.Problem
	// pairF caches e^{ε·D} per reduced pair for feasibility checks.
	pairF []float64

	// Warm-start machinery (absent under CGOptions.ColdRestart): one
	// persistent compiled LP pair per worker, plus one basis snapshot per
	// subproblem. A subproblem is handled by exactly one worker per round
	// and rounds are separated by a WaitGroup barrier, so the per-l basis
	// slots are race-free even though successive rounds may assign l to
	// different workers.
	warm        bool
	workerState []*pricerWorker
	dualBases   []*lp.Basis
	primalBases []*lp.Basis
}

// pricerWorker is one worker goroutine's reusable solver state. The dual
// instance is compiled eagerly (it is the hot path); the primal fallback
// lazily on first use.
type pricerWorker struct {
	p      *pricer
	dual   *lp.Prepared
	primal *lp.Prepared
}

func newPricer(pr *Problem, opts CGOptions) *pricer {
	k := pr.Part.K()
	p := &pricer{pr: pr, opts: opts}

	// Primal fallback.
	base := lp.NewProblem(k)
	p.pairF = make([]float64, len(pr.Red.Pairs))
	for pi, pair := range pr.Red.Pairs {
		f := math.Exp(pr.reducedPairEps(pair) * pair.D)
		p.pairF[pi] = f
		base.AddConstraint([]lp.Term{{Var: pair.A, Coef: 1}, {Var: pair.B, Coef: -f}}, lp.LE, 0)
		base.AddConstraint([]lp.Term{{Var: pair.B, Coef: 1}, {Var: pair.A, Coef: -f}}, lp.LE, 0)
	}
	// Λ_l is a cone without an upper bound; the unit box makes its
	// extreme points well-defined and matches z being probabilities.
	for i := 0; i < k; i++ {
		base.AddConstraint([]lp.Term{{Var: i, Coef: 1}}, lp.LE, 1)
	}
	p.primalBase = base

	// Dual rows: u layout is [2 per pair][K box]. Primal column of z_i
	// appears in pair rows (±1 / −f) and its own box row (+1).
	p.numDual = 2*len(pr.Red.Pairs) + k
	p.dualRows = make([][]lp.Term, k)
	for pi, pair := range pr.Red.Pairs {
		f := p.pairF[pi]
		u1, u2 := 2*pi, 2*pi+1
		// Row u1: z_A − f·z_B ≤ 0  →  contributes +1 to z_A's dual row,
		// −f to z_B's. Row u2 is the mirrored direction.
		p.dualRows[pair.A] = append(p.dualRows[pair.A],
			lp.Term{Var: u1, Coef: 1}, lp.Term{Var: u2, Coef: -f})
		p.dualRows[pair.B] = append(p.dualRows[pair.B],
			lp.Term{Var: u1, Coef: -f}, lp.Term{Var: u2, Coef: 1})
	}
	for i := 0; i < k; i++ {
		p.dualRows[i] = append(p.dualRows[i], lp.Term{Var: 2*len(pr.Red.Pairs) + i, Coef: 1})
	}

	// Dual template with placeholder right-hand sides: structure (and
	// hence equilibration) is fixed, only −w_i changes between solves.
	dual := lp.NewProblem(p.numDual)
	for b := 0; b < k; b++ {
		dual.SetObjectiveCoeff(2*len(pr.Red.Pairs)+b, 1)
	}
	for i := 0; i < k; i++ {
		dual.AddConstraint(p.dualRows[i], lp.GE, 0)
	}
	p.dualBase = dual

	if !opts.ColdRestart {
		p.warm = true
		workers := opts.Workers
		if workers > k {
			workers = k
		}
		p.workerState = make([]*pricerWorker, workers)
		p.dualBases = make([]*lp.Basis, k)
		p.primalBases = make([]*lp.Basis, k)
	}
	return p
}

// worker returns (creating on first use) worker w's persistent solver
// state, or nil in cold-restart mode.
func (p *pricer) worker(w int) *pricerWorker {
	if !p.warm {
		return nil
	}
	if p.workerState[w] == nil {
		pp, err := lp.Prepare(p.dualBase, p.opts.LP)
		if err != nil {
			// Cannot happen for the non-empty dual template; degrade to
			// the cold path rather than crash.
			return nil
		}
		p.workerState[w] = &pricerWorker{p: p, dual: pp}
	}
	return p.workerState[w]
}

// primalPrepared lazily compiles the worker's persistent primal
// fallback instance.
func (wk *pricerWorker) primalPrepared() *lp.Prepared {
	if wk.primal == nil {
		pp, err := lp.Prepare(wk.p.primalBase, wk.p.opts.LP)
		if err != nil {
			return nil
		}
		wk.primal = pp
	}
	return wk.primal
}

// priceAll solves every sub_l at dual point π, returning per block the
// subproblem optimum min_{z∈Λ_l}(c_l − π)·z and the minimiser column.
// Workers poll ctx between subproblems, so a cancelled pricing round
// returns within one subproblem solve per worker.
func (p *pricer) priceAll(ctx context.Context, pi []float64) ([]float64, []cgColumn, error) {
	k := p.pr.Part.K()
	mins := make([]float64, k)
	cols := make([]cgColumn, k)
	errs := make([]error, k)

	var wg sync.WaitGroup
	work := make(chan int)
	workers := p.opts.Workers
	if workers > k {
		workers = k
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk := p.worker(w)
			for l := range work {
				if cerr := ctx.Err(); cerr != nil {
					errs[l] = cerr
					continue
				}
				// A panic on a worker goroutine would crash the process —
				// the caller's recover cannot reach it — so each subproblem
				// converts its own panics into a *PanicError.
				func() {
					defer func() {
						if r := recover(); r != nil {
							errs[l] = newPanicError("core.pricer", r)
						}
					}()
					mins[l], cols[l], errs[l] = p.priceOne(ctx, wk, l, pi)
				}()
			}
		}()
	}
	for l := 0; l < k; l++ {
		work <- l
	}
	close(work)
	wg.Wait()

	for l, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("sub_%d: %w", l, err)
		}
	}
	return mins, cols, nil
}

func (p *pricer) priceOne(ctx context.Context, wk *pricerWorker, l int, pi []float64) (float64, cgColumn, error) {
	if err := faultinject.At(FaultSiteCGPricing); err != nil {
		return 0, cgColumn{}, fmt.Errorf("injected fault: %w", err)
	}
	if wk != nil {
		return p.priceOneWarm(ctx, wk, l, pi)
	}
	return p.priceOneCold(ctx, l, pi)
}

// priceOneWarm solves sub_l on the worker's persistent instances: the
// dual LP's right-hand sides are retuned in place and the simplex
// restarts from the basis that was optimal for this subproblem last
// round. Since only −w moves between rounds (by however much the master
// duals moved), that basis is typically a handful of dual-simplex pivots
// from re-optimal; a stale basis silently costs a cold solve, never a
// wrong answer.
func (p *pricer) priceOneWarm(ctx context.Context, wk *pricerWorker, l int, pi []float64) (float64, cgColumn, error) {
	k := p.pr.Part.K()
	wk.dual.SetContext(ctx)
	for i := 0; i < k; i++ {
		w := p.pr.Costs[i*k+l] - pi[i]
		wk.dual.SetRHS(i, -w)
	}
	sol, err := wk.dual.SolveFrom(p.dualBases[l])
	if err == nil && sol.Status == lp.Optimal {
		p.dualBases[l] = wk.dual.Basis(p.dualBases[l])
		z := make([]float64, k)
		for i := 0; i < k; i++ {
			z[i] = clamp01(sol.Duals[i])
		}
		if p.feasible(z) {
			col := cgColumn{l: l, z: z, cost: p.pr.columnCost(l, z)}
			return -sol.Objective, col, nil // min wᵀz = −min bᵀu
		}
	}
	if err != nil && ctx.Err() != nil {
		return 0, cgColumn{}, err
	}

	// Fallback: persistent primal instance, objective retuned per l.
	primal := wk.primalPrepared()
	if primal == nil {
		return p.priceOneCold(ctx, l, pi)
	}
	primal.SetContext(ctx)
	for i := 0; i < k; i++ {
		primal.SetObjectiveCoeff(i, p.pr.Costs[i*k+l]-pi[i])
	}
	psol, err := primal.SolveFrom(p.primalBases[l])
	if err != nil {
		return 0, cgColumn{}, err
	}
	if psol.Status != lp.Optimal {
		return 0, cgColumn{}, fmt.Errorf("pricing LP ended %v", psol.Status)
	}
	p.primalBases[l] = primal.Basis(p.primalBases[l])
	z := make([]float64, k)
	copy(z, psol.X)
	col := cgColumn{l: l, z: z, cost: p.pr.columnCost(l, z)}
	return psol.Objective, col, nil
}

// priceOneCold is the rebuild-per-solve path (CGOptions.ColdRestart and
// the benchmark baseline): a fresh dual LP each call, with a cloned
// primal solve as the verification fallback.
func (p *pricer) priceOneCold(ctx context.Context, l int, pi []float64) (float64, cgColumn, error) {
	k := p.pr.Part.K()
	lpOpts := p.opts.LP
	lpOpts.Ctx = ctx

	// Dual formulation (see the pricer doc comment).
	prob := lp.NewProblem(p.numDual)
	for b := 0; b < k; b++ {
		prob.SetObjectiveCoeff(2*len(p.pr.Red.Pairs)+b, 1) // box duals cost 1
	}
	for i := 0; i < k; i++ {
		w := p.pr.Costs[i*k+l] - pi[i]
		prob.AddConstraint(p.dualRows[i], lp.GE, -w)
	}
	sol, err := lp.Solve(prob, lpOpts)
	if err == nil && sol.Status == lp.Optimal {
		z := make([]float64, k)
		for i := 0; i < k; i++ {
			z[i] = clamp01(sol.Duals[i])
		}
		if p.feasible(z) {
			col := cgColumn{l: l, z: z, cost: p.pr.columnCost(l, z)}
			return -sol.Objective, col, nil // min wᵀz = −min bᵀu
		}
	}

	// Fallback: direct primal solve.
	primal := p.primalBase.Clone()
	for i := 0; i < k; i++ {
		primal.SetObjectiveCoeff(i, p.pr.Costs[i*k+l]-pi[i])
	}
	psol, err := lp.Solve(primal, lpOpts)
	if err != nil {
		return 0, cgColumn{}, err
	}
	if psol.Status != lp.Optimal {
		return 0, cgColumn{}, fmt.Errorf("pricing LP ended %v", psol.Status)
	}
	z := make([]float64, k)
	copy(z, psol.X)
	col := cgColumn{l: l, z: z, cost: p.pr.columnCost(l, z)}
	return psol.Objective, col, nil
}

// feasible verifies a recovered column against Λ_l within tolerance.
func (p *pricer) feasible(z []float64) bool {
	const tolF = 1e-7
	for pi, pair := range p.pr.Red.Pairs {
		f := p.pairF[pi]
		if z[pair.A]-f*z[pair.B] > tolF || z[pair.B]-f*z[pair.A] > tolF {
			return false
		}
	}
	return true
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

package core

import (
	"math"
	"testing"
)

func TestSolveCGPlainSeedReachesSameOptimum(t *testing.T) {
	pr := tinyProblem(t, 31, 4)
	rich, err := SolveCG(pr, CGOptions{Xi: 0})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := SolveCG(pr, CGOptions{Xi: 0, PlainSeed: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rich.ETDD-plain.ETDD) > 1e-5*(1+rich.ETDD) {
		t.Fatalf("plain-seed optimum %v != rich-seed %v", plain.ETDD, rich.ETDD)
	}
}

func TestSolveCGRelGapStops(t *testing.T) {
	pr := smallProblem(t, 32, 3)
	loose, err := SolveCG(pr, CGOptions{Xi: 0, RelGap: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := SolveCG(pr, CGOptions{Xi: 0, RelGap: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(loose.Iterations) > len(tight.Iterations) {
		t.Fatalf("25%% gap took more iterations (%d) than 2%% gap (%d)",
			len(loose.Iterations), len(tight.Iterations))
	}
	if gap := (tight.ETDD - tight.LowerBound) / tight.ETDD; gap > 0.021 {
		t.Fatalf("tight solve stopped with gap %v > 2%%", gap)
	}
}

func TestSolveCGRejectsPositiveXi(t *testing.T) {
	pr := tinyProblem(t, 33, 3)
	if _, err := SolveCG(pr, CGOptions{Xi: 0.5}); err == nil {
		t.Fatal("accepted positive Xi")
	}
}

func TestSolveCGNoSmoothingStillConverges(t *testing.T) {
	pr := tinyProblem(t, 34, 3)
	sol, err := SolveCG(pr, CGOptions{Xi: 0, Smoothing: -1})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SolveDirect(pr, DirectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.ETDD-direct.ETDD) > 1e-4*(1+direct.ETDD) {
		t.Fatalf("unsmoothed CG %v != direct %v", sol.ETDD, direct.ETDD)
	}
}

func TestCGIterationTraceConsistent(t *testing.T) {
	pr := smallProblem(t, 35, 3)
	var seen []CGIteration
	sol, err := SolveCG(pr, CGOptions{Xi: 0, RelGap: 0.05,
		OnIteration: func(i int, it CGIteration) {
			if i != len(seen) {
				t.Fatalf("iteration index %d out of order", i)
			}
			seen = append(seen, it)
		}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(sol.Iterations) {
		t.Fatalf("observer saw %d iterations, result has %d", len(seen), len(sol.Iterations))
	}
	// The master objective must be non-increasing across rounds.
	for i := 1; i < len(seen); i++ {
		if seen[i].MasterObj > seen[i-1].MasterObj+1e-6 {
			t.Fatalf("master objective rose: %v -> %v", seen[i-1].MasterObj, seen[i].MasterObj)
		}
	}
	// The recorded best bound never exceeds the final quality loss.
	for _, it := range seen {
		if it.LowerBound > sol.ETDD+1e-6 {
			t.Fatalf("iteration bound %v above final ETDD %v", it.LowerBound, sol.ETDD)
		}
	}
}

func TestMechanismValidateShape(t *testing.T) {
	pr := tinyProblem(t, 36, 3)
	m := &Mechanism{Part: pr.Part, Z: []float64{1, 2, 3}}
	if err := m.Validate(); err == nil {
		t.Fatal("accepted wrong-shaped mechanism")
	}
}

func TestExponentialMechanismMonotoneInEps(t *testing.T) {
	// Sharper ε concentrates the exponential mechanism: self-probability
	// must rise with ε.
	prev := 0.0
	for _, eps := range []float64{1, 3, 9} {
		base := tinyProblem(t, 37, eps)
		m := base.ExponentialMechanism()
		self := 0.0
		for i := 0; i < m.K(); i++ {
			self += m.Prob(i, i)
		}
		self /= float64(m.K())
		if self < prev {
			t.Fatalf("self-probability fell from %v to %v as eps rose to %v", prev, self, eps)
		}
		prev = self
	}
}

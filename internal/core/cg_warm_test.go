package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/discretize"
	"repro/internal/roadnet"
)

// rowStochasticError is the largest |Σ_l z_{i,l} − 1| over true rows.
func rowStochasticError(m *Mechanism) float64 {
	k := m.Part.K()
	worst := 0.0
	for i := 0; i < k; i++ {
		sum := 0.0
		for l := 0; l < k; l++ {
			sum += m.Z[i*k+l]
		}
		if e := math.Abs(sum - 1); e > worst {
			worst = e
		}
	}
	return worst
}

// TestSolveCGWarmMatchesColdRestart is the warm-start correctness
// property: on randomized networks the default (persistent, warm-started)
// pipeline and the ColdRestart (rebuild-everything) baseline must agree
// on the final ETDD within tolerance, and the warm mechanism must be as
// feasible as the cold one.
func TestSolveCGWarmMatchesColdRestart(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		eps  float64
	}{
		{101, 3}, {102, 5}, {103, 8}, {104, 2},
	} {
		rng := rand.New(rand.NewSource(tc.seed))
		g := roadnet.Grid(rng, roadnet.GridConfig{
			Rows: 2 + rng.Intn(2), Cols: 2 + rng.Intn(2),
			Spacing: 0.25 + 0.1*rng.Float64(), OneWayFrac: 0.4, WeightJitter: 0.2,
		})
		part, err := discretize.New(g, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := NewProblem(part, Config{Epsilon: tc.eps})
		if err != nil {
			t.Fatal(err)
		}

		warm, err := SolveCG(pr, CGOptions{})
		if err != nil {
			t.Fatalf("seed %d: warm: %v", tc.seed, err)
		}
		cold, err := SolveCG(pr, CGOptions{ColdRestart: true})
		if err != nil {
			t.Fatalf("seed %d: cold: %v", tc.seed, err)
		}

		// Both pipelines run the same decomposition with the same
		// admission tolerance; the achieved quality loss must agree to
		// solver tolerance.
		relTol := 1e-5 * (1 + math.Abs(cold.ETDD))
		if math.Abs(warm.ETDD-cold.ETDD) > relTol {
			t.Errorf("seed %d: warm ETDD %v vs cold %v (diff %g)",
				tc.seed, warm.ETDD, cold.ETDD, math.Abs(warm.ETDD-cold.ETDD))
		}

		// Warm-started mechanisms are exactly as feasible as cold ones.
		// Raw CG output carries solver-tolerance-level violations on both
		// paths, so compare what is actually served: the mechanisms after
		// the same EnforceGeoI repair the pipeline applies. Post-repair,
		// Geo-I violation and row-stochastic error must match within 1e-9.
		const geoITol = 1e-10
		warmFix, _, err := pr.EnforceGeoI(warm.Mechanism, geoITol)
		if err != nil {
			t.Fatalf("seed %d: enforce warm: %v", tc.seed, err)
		}
		coldFix, _, err := pr.EnforceGeoI(cold.Mechanism, geoITol)
		if err != nil {
			t.Fatalf("seed %d: enforce cold: %v", tc.seed, err)
		}
		// GeoIViolation is signed (negative means strict slack); only
		// actual violations count.
		wv := math.Max(pr.GeoIViolation(warmFix), 0)
		cv := math.Max(pr.GeoIViolation(coldFix), 0)
		if dv := math.Abs(wv - cv); dv > 1e-9 || wv > 1e-9 {
			t.Errorf("seed %d: Geo-I violation warm %g vs cold %g", tc.seed, wv, cv)
		}
		if dr := math.Abs(rowStochasticError(warmFix) - rowStochasticError(coldFix)); dr > 1e-9 {
			t.Errorf("seed %d: row-stochastic error differs by %g between warm and cold", tc.seed, dr)
		}
		if warm.State == nil || warm.State.Columns() == 0 {
			t.Errorf("seed %d: warm result carries no resumable state", tc.seed)
		}
	}
}

// TestSolveCGResumeFromState checks that a run resumed from a previous
// run's column pool reaches the same answer, in no more rounds than the
// original.
func TestSolveCGResumeFromState(t *testing.T) {
	pr := smallProblem(t, 31, 5)
	first, err := SolveCG(pr, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if first.State == nil {
		t.Fatal("no state on first run")
	}
	resumed, err := SolveCG(pr, CGOptions{Resume: first.State})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resumed.ETDD-first.ETDD) > 1e-5*(1+first.ETDD) {
		t.Fatalf("resumed ETDD %v vs first %v", resumed.ETDD, first.ETDD)
	}
	if len(resumed.Iterations) > len(first.Iterations) {
		t.Fatalf("resume took %d rounds, original %d", len(resumed.Iterations), len(first.Iterations))
	}
}

// TestSolveCGResumeMismatchedStateIgnored: a state snapshot from a
// different-sized problem must be ignored, not crash or corrupt.
func TestSolveCGResumeMismatchedStateIgnored(t *testing.T) {
	big := smallProblem(t, 32, 5)
	tiny := tinyProblem(t, 33, 5)
	donor, err := SolveCG(big, CGOptions{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveCG(tiny, CGOptions{Resume: donor.State})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SolveCG(tiny, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ETDD-ref.ETDD) > 1e-6*(1+ref.ETDD) {
		t.Fatalf("mismatched resume changed the answer: %v vs %v", res.ETDD, ref.ETDD)
	}

	// A hand-poisoned state (wrong-length column, uncovered block) is
	// likewise ignored.
	k := tiny.Part.K()
	poisoned := &CGState{k: k, columns: []cgColumn{{l: 0, z: make([]float64, k-1)}}}
	res2, err := SolveCG(tiny, CGOptions{Resume: poisoned})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.ETDD-ref.ETDD) > 1e-6*(1+ref.ETDD) {
		t.Fatalf("poisoned resume changed the answer: %v vs %v", res2.ETDD, ref.ETDD)
	}
}

// TestWarmPricingRoundAllocs is the allocation-regression guard on the
// pricing hot path: once the per-worker Prepared instances and per-l
// bases exist, a steady-state subproblem solve allocates only the
// recovered column itself.
func TestWarmPricingRoundAllocs(t *testing.T) {
	pr := smallProblem(t, 35, 5)
	k := pr.Part.K()
	opts := CGOptions{Sequential: true}.withDefaults()
	p := newPricer(pr, opts)
	wk := p.worker(0)
	if wk == nil {
		t.Fatal("no warm worker")
	}
	pi := make([]float64, k)
	for i := range pi {
		pi[i] = 0.01 * float64(i%7)
	}
	ctx := context.Background()
	// Warm every subproblem's basis once.
	for l := 0; l < k; l++ {
		if _, _, err := p.priceOne(ctx, wk, l, pi); err != nil {
			t.Fatal(err)
		}
	}
	l := 0
	allocs := testing.AllocsPerRun(20, func() {
		pi[3] += 1e-4 // drift the duals slightly, as rounds do
		if _, _, err := p.priceOne(ctx, wk, l, pi); err != nil {
			t.Fatal(err)
		}
		l = (l + 1) % k
	})
	// Budget: the k-float z slice for the returned column plus a few
	// words of interface/closure noise — nothing proportional to the LP.
	if allocs > 8 {
		t.Fatalf("warm pricing solve allocates %v objects per run, want ≤ 8", allocs)
	}
}

// TestSolveCGWarmSequentialMatchesParallel guards the per-worker
// Prepared instances against worker-count dependence: the warm pipeline
// must give the same answer with one worker and with many.
func TestSolveCGWarmSequentialMatchesParallel(t *testing.T) {
	pr := smallProblem(t, 34, 4)
	seq, err := SolveCG(pr, CGOptions{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SolveCG(pr, CGOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq.ETDD-par.ETDD) > 1e-6*(1+seq.ETDD) {
		t.Fatalf("sequential ETDD %v vs parallel %v", seq.ETDD, par.ETDD)
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/discretize"
	"repro/internal/roadnet"
)

// tinyProblem builds a small D-VLP instance (K ≈ 8-12) suitable for the
// monolithic LP.
func tinyProblem(t *testing.T, seed int64, eps float64) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 2, Cols: 2, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.2,
	})
	part, err := discretize.New(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewProblem(part, Config{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// smallProblem builds a K ≈ 30-50 instance with a non-uniform prior.
func smallProblem(t *testing.T, seed int64, eps float64) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 3, Cols: 3, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.15,
	})
	part, err := discretize.New(g, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	k := part.K()
	priorP := make([]float64, k)
	sum := 0.0
	for i := range priorP {
		priorP[i] = 0.2 + rng.Float64()
		sum += priorP[i]
	}
	for i := range priorP {
		priorP[i] /= sum
	}
	pr, err := NewProblem(part, Config{Epsilon: eps, PriorP: priorP})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestNewProblemValidation(t *testing.T) {
	pr := tinyProblem(t, 1, 3)
	if _, err := NewProblem(pr.Part, Config{Epsilon: 0}); err == nil {
		t.Fatal("accepted epsilon = 0")
	}
	bad := make([]float64, pr.Part.K())
	bad[0] = 0.5 // sums to 0.5
	if _, err := NewProblem(pr.Part, Config{Epsilon: 1, PriorP: bad}); err == nil {
		t.Fatal("accepted non-normalised prior")
	}
	short := []float64{1}
	if _, err := NewProblem(pr.Part, Config{Epsilon: 1, PriorQ: short}); err == nil {
		t.Fatal("accepted wrong-length prior")
	}
}

func TestCostsDiagonalZeroAndNonNegative(t *testing.T) {
	pr := smallProblem(t, 2, 3)
	k := pr.Part.K()
	for i := 0; i < k; i++ {
		if pr.Costs[i*k+i] != 0 {
			t.Fatalf("c[%d,%d] = %v, want 0 (reporting truth distorts nothing)", i, i, pr.Costs[i*k+i])
		}
		for l := 0; l < k; l++ {
			if pr.Costs[i*k+l] < 0 {
				t.Fatalf("negative cost c[%d,%d] = %v", i, l, pr.Costs[i*k+l])
			}
		}
	}
}

func TestBuildCostsMatchesSerialReference(t *testing.T) {
	pr := smallProblem(t, 3, 3)
	k := pr.Part.K()
	for trial := 0; trial < 50; trial++ {
		i, l := trial%k, (trial*7)%k
		want := 0.0
		for m := 0; m < k; m++ {
			want += pr.PriorQ[m] * math.Abs(pr.Part.MidDist(i, m)-pr.Part.MidDist(l, m))
		}
		want *= pr.PriorP[i]
		if math.Abs(pr.Costs[i*k+l]-want) > 1e-9 {
			t.Fatalf("c[%d,%d] = %v, want %v", i, l, pr.Costs[i*k+l], want)
		}
	}
}

func TestExponentialMechanismFeasible(t *testing.T) {
	pr := smallProblem(t, 4, 4)
	m := pr.ExponentialMechanism()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := pr.GeoIViolation(m); v > 1e-9 {
		t.Fatalf("exponential mechanism violates Geo-I by %v", v)
	}
}

func TestSolveDirectProducesFeasibleOptimum(t *testing.T) {
	pr := tinyProblem(t, 5, 3)
	res, err := SolveDirect(pr, DirectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mechanism.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := pr.GeoIViolation(res.Mechanism); v > 1e-6 {
		t.Fatalf("direct optimum violates Geo-I by %v", v)
	}
	// The optimum can be no worse than the closed-form seed.
	seed := pr.ETDD(pr.ExponentialMechanism())
	if res.ETDD > seed+1e-9 {
		t.Fatalf("direct ETDD %v worse than exponential seed %v", res.ETDD, seed)
	}
}

func TestReductionPreservesOptimum(t *testing.T) {
	// The paper's central optimality claim: Algorithm 1's reduced
	// constraint set yields the same D-VLP optimum as the full O(K³) set.
	for _, eps := range []float64{1, 3, 8} {
		pr := tinyProblem(t, 6, eps)
		full, err := SolveDirect(pr, DirectOptions{FullConstraints: true})
		if err != nil {
			t.Fatalf("eps %v full: %v", eps, err)
		}
		red, err := SolveDirect(pr, DirectOptions{})
		if err != nil {
			t.Fatalf("eps %v reduced: %v", eps, err)
		}
		if red.Rows >= full.Rows {
			t.Fatalf("eps %v: reduction did not cut rows (%d vs %d)", eps, red.Rows, full.Rows)
		}
		if math.Abs(full.ETDD-red.ETDD) > 1e-6*(1+full.ETDD) {
			t.Fatalf("eps %v: reduced optimum %v != full optimum %v", eps, red.ETDD, full.ETDD)
		}
	}
}

func TestSolveCGMatchesDirect(t *testing.T) {
	pr := tinyProblem(t, 7, 3)
	direct, err := SolveDirect(pr, DirectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := SolveCG(pr, CGOptions{Xi: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.Mechanism.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(cg.ETDD-direct.ETDD) > 1e-5*(1+direct.ETDD) {
		t.Fatalf("CG ETDD %v != direct %v", cg.ETDD, direct.ETDD)
	}
	if v := pr.GeoIViolation(cg.Mechanism); v > 1e-6 {
		t.Fatalf("CG mechanism violates Geo-I by %v", v)
	}
}

func TestSolveCGDualBoundBracketsOptimum(t *testing.T) {
	pr := smallProblem(t, 8, 3)
	// RelGap keeps the runtime in check; the bracket property is what
	// matters here, and it must hold at any stopping point.
	cg, err := SolveCG(pr, CGOptions{Xi: 0, RelGap: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if cg.LowerBound > cg.ETDD+1e-6 {
		t.Fatalf("dual bound %v exceeds achieved ETDD %v", cg.LowerBound, cg.ETDD)
	}
	if ratio := cg.ApproxRatio(); !math.IsNaN(ratio) && ratio < 1-1e-6 {
		t.Fatalf("approximation ratio %v below 1", ratio)
	}
	if len(cg.Iterations) == 0 {
		t.Fatal("no iterations recorded")
	}
	// The dual gap at the stop must respect the requested RelGap.
	if gap := (cg.ETDD - cg.LowerBound) / cg.ETDD; gap > 0.011 {
		t.Fatalf("relative gap %v exceeds requested 1%%", gap)
	}
}

func TestSolveCGXiEarlyStop(t *testing.T) {
	pr := smallProblem(t, 9, 3)
	exact, err := SolveCG(pr, CGOptions{Xi: 0})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := SolveCG(pr, CGOptions{Xi: -0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(loose.Iterations) > len(exact.Iterations) {
		t.Fatalf("looser threshold took more iterations (%d vs %d)",
			len(loose.Iterations), len(exact.Iterations))
	}
	if loose.ETDD < exact.ETDD-1e-6 {
		t.Fatalf("early-stopped ETDD %v beats exact %v", loose.ETDD, exact.ETDD)
	}
	if v := pr.GeoIViolation(loose.Mechanism); v > 1e-6 {
		t.Fatalf("early-stopped mechanism violates Geo-I by %v", v)
	}
}

func TestSolveCGSequentialMatchesParallel(t *testing.T) {
	pr := tinyProblem(t, 10, 4)
	par, err := SolveCG(pr, CGOptions{Xi: 0})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SolveCG(pr, CGOptions{Xi: 0, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(par.ETDD-seq.ETDD) > 1e-9 {
		t.Fatalf("parallel ETDD %v != sequential %v", par.ETDD, seq.ETDD)
	}
}

func TestEpsilonMonotonicity(t *testing.T) {
	// Larger ε (weaker privacy) can only lower the optimal quality loss.
	var prev float64 = math.Inf(1)
	for _, eps := range []float64{1, 2, 4, 8} {
		pr := tinyProblem(t, 11, eps)
		res, err := SolveDirect(pr, DirectOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.ETDD > prev+1e-7 {
			t.Fatalf("ETDD increased from %v to %v as eps grew to %v", prev, res.ETDD, eps)
		}
		prev = res.ETDD
	}
}

func TestTradeoffLowerBound(t *testing.T) {
	pr := tinyProblem(t, 12, 2)
	res, err := SolveDirect(pr, DirectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lb := pr.TradeoffLowerBound(pr.Eps)
	if lb > res.ETDD+1e-6 {
		t.Fatalf("Prop 4.5 bound %v exceeds optimum %v", lb, res.ETDD)
	}
	// The bound must decrease monotonically in ε (Section 4.4).
	prev := math.Inf(1)
	for _, eps := range []float64{0.5, 1, 2, 4, 8, 16} {
		b := pr.TradeoffLowerBound(eps)
		if b > prev+1e-9 {
			t.Fatalf("bound increased with eps: %v -> %v", prev, b)
		}
		prev = b
	}
}

func TestSampleMatchesRow(t *testing.T) {
	pr := tinyProblem(t, 13, 3)
	res, err := SolveDirect(pr, DirectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mechanism
	rng := rand.New(rand.NewSource(14))
	const trials = 30000
	i := 0
	counts := make([]int, m.K())
	for n := 0; n < trials; n++ {
		counts[m.SampleInterval(rng, i)]++
	}
	for l := 0; l < m.K(); l++ {
		got := float64(counts[l]) / trials
		want := m.Prob(i, l)
		if math.Abs(got-want) > 0.015 {
			t.Fatalf("empirical P(%d|%d) = %v, mechanism %v", l, i, got, want)
		}
	}
}

func TestSamplePreservesRelativeLocation(t *testing.T) {
	pr := tinyProblem(t, 15, 3)
	res, err := SolveDirect(pr, DirectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 200; trial++ {
		truth := roadnet.RandomLocation(rng, pr.Part.G)
		obf := res.Mechanism.Sample(rng, truth)
		if !obf.Valid(pr.Part.G) {
			t.Fatalf("invalid obfuscated location %v", obf)
		}
		relT := pr.Part.RelativeLoc(truth)
		relO := pr.Part.RelativeLoc(obf)
		lenO := pr.Part.Intervals[pr.Part.Locate(obf)].Length()
		want := math.Min(relT, lenO)
		if math.Abs(relO-want) > 1e-6 {
			t.Fatalf("relative location %v after obfuscation, want %v", relO, want)
		}
	}
}

func TestNormalizeRowsProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%6) + 2
		rng := rand.New(rand.NewSource(seed))
		z := make([]float64, k*k)
		for i := range z {
			z[i] = rng.NormFloat64() // includes negatives
		}
		normalizeRows(z, k)
		for i := 0; i < k; i++ {
			sum := 0.0
			for l := 0; l < k; l++ {
				v := z[i*k+l]
				if v < 0 || math.IsNaN(v) {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformPrior(t *testing.T) {
	p := UniformPrior(7)
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("uniform prior sums to %v", sum)
	}
}

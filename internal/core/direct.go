package core

import (
	"fmt"
	"math"

	"repro/internal/geoi"
	"repro/internal/lp"
)

// DirectOptions tune the monolithic LP solve of D-VLP.
type DirectOptions struct {
	// FullConstraints switches from the reduced (Algorithm 1) Geo-I rows
	// to the complete O(K³) enumeration — only viable for tiny K, and
	// used by tests to verify the reduction preserves the optimum.
	FullConstraints bool
	// LP passes solver options through.
	LP lp.Options
}

// DirectResult reports the monolithic solve.
type DirectResult struct {
	Mechanism *Mechanism
	ETDD      float64
	// Rows and Cols report the LP size actually solved.
	Rows, Cols int
	Iterations int
}

// SolveDirect solves D-VLP as one LP over the K² decision variables
// z_{i,l}. The formulation follows Section 4.1 exactly:
//
//	min  Σ_{i,l} c_{i,l} z_{i,l}
//	s.t. Σ_l z_{i,l} = 1                            ∀i      (Eq. 21)
//	     z_{i,j} − e^{ε·D} z_{l,j} ≤ 0   constrained pairs  (Eq. 20)
//
// With reduced constraints the pair set is Algorithm 1's; each unordered
// pair contributes both directions. Intended for small K (the LP has K²
// variables); the column-generation solver scales much further.
func SolveDirect(pr *Problem, opts DirectOptions) (*DirectResult, error) {
	k := pr.Part.K()
	prob := lp.NewProblem(k * k)
	prob.SetObjective(pr.Costs)

	// Unit-measure rows.
	for i := 0; i < k; i++ {
		terms := make([]lp.Term, k)
		for l := 0; l < k; l++ {
			terms[l] = lp.Term{Var: i*k + l, Coef: 1}
		}
		prob.AddConstraint(terms, lp.EQ, 1)
	}

	// Geo-I rows.
	addPair := func(a, b int, d, eps float64) {
		f := math.Exp(eps * d)
		for j := 0; j < k; j++ {
			prob.AddConstraint([]lp.Term{
				{Var: a*k + j, Coef: 1},
				{Var: b*k + j, Coef: -f},
			}, lp.LE, 0)
		}
	}
	if opts.FullConstraints {
		for _, p := range geoi.FullPairs(pr.Part, pr.Radius) {
			addPair(p.I, p.L, p.D, pr.PairEps(p.I, p.L))
		}
	} else {
		for _, p := range pr.Red.Pairs {
			eps := pr.reducedPairEps(p)
			addPair(p.A, p.B, p.D, eps)
			addPair(p.B, p.A, p.D, eps)
		}
	}

	sol, err := lp.Solve(prob, opts.LP)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("core: direct D-VLP solve ended %v", sol.Status)
	}

	z := make([]float64, k*k)
	copy(z, sol.X)
	normalizeRows(z, k)
	m := &Mechanism{Part: pr.Part, Z: z}
	return &DirectResult{
		Mechanism:  m,
		ETDD:       pr.ETDD(m),
		Rows:       prob.NumConstraints(),
		Cols:       prob.NumVars(),
		Iterations: sol.Iterations,
	}, nil
}

package core

import "fmt"

// EnforceGeoI returns a mechanism whose full (ε, r)-Geo-I violation is at
// most tol, together with its ETDD under the problem's costs.
//
// Column-generation output is feasible only up to solver tolerances
// (~1e-7): column recovery clamps LP duals and row normalisation rescales
// each row by its own factor, either of which can push a tight Geo-I
// constraint slightly past equality. A serving layer must not hand out
// mechanisms that quietly break the privacy guarantee, so this routine
// repairs the residue by mixing toward the problem's ε/2 exponential
// mechanism — strictly feasible with positive slack on every constraint —
// escalating the mixing weight geometrically until the *full* constraint
// set verifies. Geo-I constraints are linear in Z, so feasibility of the
// mix follows from feasibility of both endpoints; the solved mechanism's
// violation is tiny, hence the accepted weight is tiny and the ETDD shift
// is far below the solver's own optimality gap.
//
// The input mechanism is never mutated. If even a full switch to the
// exponential mechanism cannot reach tol (impossible for tol ≥ 0 on a
// well-formed problem, but guarded anyway) an error is returned.
func (pr *Problem) EnforceGeoI(m *Mechanism, tol float64) (*Mechanism, float64, error) {
	if v := pr.GeoIViolation(m); v <= tol {
		return m, pr.ETDD(m), nil
	}
	exp := pr.ExponentialMechanism()
	k := pr.Part.K()
	for alpha := 1e-7; alpha < 1; alpha *= 8 {
		z := make([]float64, k*k)
		for idx := range z {
			z[idx] = (1-alpha)*m.Z[idx] + alpha*exp.Z[idx]
		}
		mixed := &Mechanism{Part: pr.Part, Z: z}
		if pr.GeoIViolation(mixed) <= tol {
			return mixed, pr.ETDD(mixed), nil
		}
	}
	if pr.GeoIViolation(exp) <= tol {
		return exp, pr.ETDD(exp), nil
	}
	return nil, 0, fmt.Errorf("core: cannot repair mechanism to Geo-I violation ≤ %g", tol)
}

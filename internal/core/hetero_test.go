package core

import (
	"math"
	"testing"
)

// heteroProblem builds a tiny instance whose first half of intervals is
// "suburb" (strict ε) and second half "downtown" (loose ε).
func heteroProblem(t *testing.T, strict, loose float64) *Problem {
	t.Helper()
	base := tinyProblem(t, 21, (strict+loose)/2)
	k := base.Part.K()
	epsAt := make([]float64, k)
	for i := range epsAt {
		if i < k/2 {
			epsAt[i] = strict
		} else {
			epsAt[i] = loose
		}
	}
	pr, err := NewProblem(base.Part, Config{Epsilon: (strict + loose) / 2, EpsilonAt: epsAt})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestHeteroValidation(t *testing.T) {
	base := tinyProblem(t, 22, 3)
	if _, err := NewProblem(base.Part, Config{Epsilon: 3, EpsilonAt: []float64{1}}); err == nil {
		t.Fatal("accepted wrong-length EpsilonAt")
	}
	bad := make([]float64, base.Part.K())
	for i := range bad {
		bad[i] = 1
	}
	bad[0] = -2
	if _, err := NewProblem(base.Part, Config{Epsilon: 3, EpsilonAt: bad}); err == nil {
		t.Fatal("accepted negative EpsilonAt entry")
	}
}

func TestHeteroPairEps(t *testing.T) {
	pr := heteroProblem(t, 2, 8)
	k := pr.Part.K()
	if got := pr.PairEps(0, k-1); got != 2 {
		t.Fatalf("cross-region PairEps = %v, want the stricter 2", got)
	}
	if got := pr.PairEps(k-1, k-2); got != 8 {
		t.Fatalf("downtown PairEps = %v, want 8", got)
	}
	if pr.MinEps() != 2 {
		t.Fatalf("MinEps = %v, want 2", pr.MinEps())
	}
}

func TestHeteroSolveSatisfiesPerPairGeoI(t *testing.T) {
	pr := heteroProblem(t, 2, 8)
	res, err := SolveDirect(pr, DirectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := pr.GeoIViolation(res.Mechanism); v > 1e-6 {
		t.Fatalf("heterogeneous mechanism violates its per-pair Geo-I by %v", v)
	}
	// The exponential seed must be feasible too (it uses MinEps).
	if v := pr.GeoIViolation(pr.ExponentialMechanism()); v > 1e-9 {
		t.Fatalf("hetero seed violates Geo-I by %v", v)
	}
}

func TestHeteroBeatsUniformStrict(t *testing.T) {
	// Granting the downtown region a looser ε must reduce total quality
	// loss versus enforcing the strict ε everywhere, while staying
	// (weakly) worse than the loose ε everywhere.
	strictPr := tinyProblem(t, 21, 2)
	strict, err := SolveDirect(strictPr, DirectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	loosePr, err := NewProblem(strictPr.Part, Config{Epsilon: 8})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := SolveDirect(loosePr, DirectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	het := heteroProblem(t, 2, 8)
	mixed, err := SolveDirect(het, DirectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.ETDD > strict.ETDD+1e-9 {
		t.Fatalf("hetero ETDD %v worse than uniformly strict %v", mixed.ETDD, strict.ETDD)
	}
	if mixed.ETDD < loose.ETDD-1e-9 {
		t.Fatalf("hetero ETDD %v better than uniformly loose %v", mixed.ETDD, loose.ETDD)
	}
}

func TestHeteroCGMatchesDirect(t *testing.T) {
	pr := heteroProblem(t, 2, 8)
	direct, err := SolveDirect(pr, DirectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := SolveCG(pr, CGOptions{Xi: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cg.ETDD-direct.ETDD) > 1e-4*(1+direct.ETDD) {
		t.Fatalf("hetero CG ETDD %v != direct %v", cg.ETDD, direct.ETDD)
	}
	if v := pr.GeoIViolation(cg.Mechanism); v > 1e-6 {
		t.Fatalf("hetero CG mechanism violates Geo-I by %v", v)
	}
}

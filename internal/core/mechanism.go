// Package core implements the paper's primary contribution: the D-VLP
// location-obfuscation linear program over a discretised road network and
// its time-efficient solution by constraint reduction plus Dantzig–Wolfe
// decomposition with column generation.
//
// The pipeline is:
//
//	part, _ := discretize.New(graph, delta)         // Step I
//	prob, _ := core.NewProblem(part, core.Config{...})
//	res, _ := core.SolveCG(prob, core.CGOptions{})  // Sections 4.2-4.3
//	obf := res.Mechanism.Sample(rng, trueLocation)  // Step II/III
package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/discretize"
	"repro/internal/roadnet"
)

// Mechanism is a solved location-obfuscation strategy: the K×K
// row-stochastic matrix Z with Z[i*K+l] = Pr(obfuscated ∈ u_l | true ∈ u_i).
type Mechanism struct {
	Part *discretize.Partition
	Z    []float64
}

// K returns the number of intervals.
func (m *Mechanism) K() int { return m.Part.K() }

// Prob returns Pr(obfuscated ∈ u_l | true ∈ u_i).
func (m *Mechanism) Prob(i, l int) float64 { return m.Z[i*m.K()+l] }

// Row returns the obfuscation distribution of true interval i. The slice
// aliases the mechanism and must not be modified.
func (m *Mechanism) Row(i int) []float64 {
	k := m.K()
	return m.Z[i*k : (i+1)*k]
}

// RowStochasticError returns the largest deviation of any row sum from 1
// or of any entry below 0; a well-formed mechanism returns ≈ 0.
func (m *Mechanism) RowStochasticError() float64 {
	k := m.K()
	worst := 0.0
	for i := 0; i < k; i++ {
		sum := 0.0
		for l := 0; l < k; l++ {
			v := m.Z[i*k+l]
			// NaN compares false against every threshold and would slip
			// through both checks below; treat it as maximally malformed.
			if math.IsNaN(v) {
				return math.Inf(1)
			}
			if -v > worst {
				worst = -v
			}
			sum += v
		}
		if d := math.Abs(sum - 1); d > worst {
			worst = d
		}
	}
	return worst
}

// SampleInterval draws an obfuscated interval for true interval i.
func (m *Mechanism) SampleInterval(rng *rand.Rand, i int) int {
	k := m.K()
	u := rng.Float64()
	acc := 0.0
	row := m.Row(i)
	for l := 0; l < k; l++ {
		acc += row[l]
		if u <= acc {
			return l
		}
	}
	// Row sums can fall a hair short of 1 from float round-off; return
	// the last interval with positive probability.
	for l := k - 1; l >= 0; l-- {
		if row[l] > 0 {
			return l
		}
	}
	return i
}

// Sample obfuscates a true on-network location per the paper's Steps
// II-III: the obfuscated interval is drawn from the true interval's row
// and the relative location within the interval is preserved.
func (m *Mechanism) Sample(rng *rand.Rand, truth roadnet.Location) roadnet.Location {
	i := m.Part.Locate(truth)
	rel := m.Part.RelativeLoc(truth)
	l := m.SampleInterval(rng, i)
	return m.Part.WithRelativeLoc(l, rel)
}

// Validate checks shape and stochasticity and returns a descriptive
// error when the mechanism is malformed.
func (m *Mechanism) Validate() error {
	k := m.K()
	if len(m.Z) != k*k {
		return fmt.Errorf("core: mechanism has %d entries, want %d", len(m.Z), k*k)
	}
	if e := m.RowStochasticError(); e > 1e-6 {
		return fmt.Errorf("core: mechanism is not row-stochastic (error %g)", e)
	}
	return nil
}

// normalizeRows clamps tiny negative entries to zero and rescales each
// row to sum exactly to 1. Solver output is within tolerance of
// stochastic; this removes the residue so downstream sampling and
// Bayesian inversion behave exactly.
func normalizeRows(z []float64, k int) {
	for i := 0; i < k; i++ {
		row := z[i*k : (i+1)*k]
		sum := 0.0
		for l, v := range row {
			if v < 0 {
				row[l] = 0
				continue
			}
			sum += v
		}
		if sum <= 0 {
			// Degenerate row: fall back to reporting the true interval.
			row[i] = 1
			continue
		}
		for l := range row {
			row[l] /= sum
		}
	}
}

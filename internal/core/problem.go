package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/discretize"
	"repro/internal/geoi"
	"repro/internal/roadnet"
)

// Config parameterises a D-VLP instance.
type Config struct {
	// Epsilon is the Geo-I privacy parameter in 1/km; larger values
	// disclose more (Definition 3.1).
	Epsilon float64
	// Radius is the Geo-I protection radius r in km. Non-positive means
	// "protect every pair" (r = network diameter).
	Radius float64
	// PriorP is the worker prior f_P over intervals. Nil means uniform.
	PriorP []float64
	// PriorQ is the task prior f_Q over intervals. Nil means uniform.
	PriorQ []float64
	// EpsilonAt optionally assigns a per-interval privacy parameter —
	// the paper's future-work scenario of workers with region-dependent
	// QoS/privacy preferences. A pair constraint uses the *smaller* of
	// its endpoints' values, so every interval enjoys at least its own
	// ε-guarantee toward every neighbour. Entries must be > 0; nil means
	// homogeneous Epsilon everywhere. Epsilon is still required as the
	// reference value for bounds and reporting.
	EpsilonAt []float64
}

// Problem is an assembled D-VLP instance: the discretised network, the
// quality-loss cost matrix c_{i,l} (Eq. 19), and the reduced Geo-I
// constraint set of Algorithm 1.
type Problem struct {
	Part   *discretize.Partition
	Eps    float64
	Radius float64
	PriorP []float64
	PriorQ []float64
	// EpsAt holds the optional per-interval privacy parameters (nil for
	// the homogeneous case); see Config.EpsilonAt.
	EpsAt []float64

	// Costs is the K×K row-major matrix with
	// c_{i,l} = f_P(u_i) · Σ_m f_Q(u_m) · |d_G(u_i, u_m) − d_G(u_l, u_m)|
	// evaluated at interval midpoints.
	Costs []float64

	// Red is the constraint-reduced Geo-I pair set.
	Red *geoi.Reduced
	// Aux is the auxiliary interval graph G′ used by the reduction.
	Aux *roadnet.Graph
	// Sym is the symmetrized interval metric used to seed the column
	// generation with a feasible exponential mechanism.
	Sym *roadnet.DistMatrix
}

// UniformPrior returns the uniform distribution over k intervals.
func UniformPrior(k int) []float64 {
	p := make([]float64, k)
	for i := range p {
		p[i] = 1 / float64(k)
	}
	return p
}

// NewProblem assembles a D-VLP instance: it validates the priors, builds
// the cost matrix (in parallel across rows) and runs the constraint
// reduction.
func NewProblem(part *discretize.Partition, cfg Config) (*Problem, error) {
	if cfg.Epsilon <= 0 {
		return nil, fmt.Errorf("core: epsilon must be positive, got %v", cfg.Epsilon)
	}
	k := part.K()
	pp, err := checkPrior("PriorP", cfg.PriorP, k)
	if err != nil {
		return nil, err
	}
	pq, err := checkPrior("PriorQ", cfg.PriorQ, k)
	if err != nil {
		return nil, err
	}

	if cfg.EpsilonAt != nil {
		if len(cfg.EpsilonAt) != k {
			return nil, fmt.Errorf("core: EpsilonAt has %d entries, want %d", len(cfg.EpsilonAt), k)
		}
		for i, e := range cfg.EpsilonAt {
			if e <= 0 || math.IsNaN(e) {
				return nil, fmt.Errorf("core: EpsilonAt[%d] = %v is not a valid privacy parameter", i, e)
			}
		}
	}

	pr := &Problem{
		Part:   part,
		Eps:    cfg.Epsilon,
		Radius: cfg.Radius,
		PriorP: pp,
		PriorQ: pq,
		EpsAt:  cfg.EpsilonAt,
		Aux:    part.AuxGraph(),
	}
	pr.Costs = BuildCosts(part, pp, pq)
	if cfg.EpsilonAt != nil {
		pr.Red = geoi.ReduceHetero(part, pr.Aux, cfg.Radius, cfg.EpsilonAt)
	} else {
		pr.Red = geoi.Reduce(part, pr.Aux, cfg.Radius)
	}
	pr.Sym = geoi.SymmetrizedDistances(pr.Aux)
	return pr, nil
}

// reducedPairEps returns the privacy parameter of one *reduced*
// adjacency: its recorded chain requirement in the heterogeneous case,
// the homogeneous ε otherwise.
func (pr *Problem) reducedPairEps(pair geoi.UnorderedPair) float64 {
	if pair.Eps > 0 {
		return pair.Eps
	}
	return pr.Eps
}

// PairEps returns the privacy parameter governing the Geo-I constraint
// between intervals a and b: the homogeneous ε, or the smaller of the
// two intervals' values in the heterogeneous case.
func (pr *Problem) PairEps(a, b int) float64 {
	if pr.EpsAt == nil {
		return pr.Eps
	}
	return math.Min(pr.EpsAt[a], pr.EpsAt[b])
}

// MinEps returns the smallest privacy parameter in force anywhere.
func (pr *Problem) MinEps() float64 {
	if pr.EpsAt == nil {
		return pr.Eps
	}
	m := pr.EpsAt[0]
	for _, e := range pr.EpsAt[1:] {
		if e < m {
			m = e
		}
	}
	return m
}

// NewCustomProblem assembles a Problem over the same interval set but
// with caller-supplied quality-loss costs, Geo-I pair constraints and
// seeding metric. The planar (2Db) baseline uses this to run the same
// direct/column-generation solvers under Euclidean geometry: its pair
// exponents and the metric backing the exponential seed columns are
// spanner-based rather than road-based.
//
// Note that road-geometry conveniences on the result — GeoIViolation and
// TradeoffLowerBound — keep their road semantics; callers supplying a
// different geometry must check their own constraint satisfaction.
func NewCustomProblem(part *discretize.Partition, eps, radius float64, priorP, costs []float64, pairs []geoi.UnorderedPair, sym *roadnet.DistMatrix) (*Problem, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("core: epsilon must be positive, got %v", eps)
	}
	k := part.K()
	pp, err := checkPrior("PriorP", priorP, k)
	if err != nil {
		return nil, err
	}
	if len(costs) != k*k {
		return nil, fmt.Errorf("core: costs have %d entries, want %d", len(costs), k*k)
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("core: custom problem needs at least one Geo-I pair")
	}
	return &Problem{
		Part:   part,
		Eps:    eps,
		Radius: radius,
		PriorP: pp,
		PriorQ: UniformPrior(k),
		Costs:  costs,
		Red:    &geoi.Reduced{Pairs: pairs},
		Sym:    sym,
	}, nil
}

func checkPrior(name string, p []float64, k int) ([]float64, error) {
	if p == nil {
		return UniformPrior(k), nil
	}
	if len(p) != k {
		return nil, fmt.Errorf("core: %s has %d entries, want %d", name, len(p), k)
	}
	sum := 0.0
	for i, v := range p {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("core: %s[%d] = %v is not a probability", name, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("core: %s sums to %v, want 1", name, sum)
	}
	return p, nil
}

// BuildCosts computes the Eq.-(19) cost matrix at interval midpoints:
// c_{i,l} = f_P(u_i) · E_Q[ |d_G(mid_i, Q) − d_G(mid_l, Q)| ].
// Work is spread across GOMAXPROCS goroutines; rows are independent.
func BuildCosts(part *discretize.Partition, priorP, priorQ []float64) []float64 {
	k := part.K()
	costs := make([]float64, k*k)

	// Pre-collect the support of the task prior to skip zero-mass tasks.
	type taskMass struct {
		m int
		w float64
	}
	tasks := make([]taskMass, 0, k)
	for m, w := range priorQ {
		if w > 0 {
			tasks = append(tasks, taskMass{m, w})
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				fp := priorP[i]
				if fp == 0 {
					continue
				}
				for l := 0; l < k; l++ {
					exp := 0.0
					for _, t := range tasks {
						exp += t.w * math.Abs(part.MidDist(i, t.m)-part.MidDist(l, t.m))
					}
					costs[i*k+l] = fp * exp
				}
			}
		}()
	}
	for i := 0; i < k; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()
	return costs
}

// ETDD evaluates the expected traveling-distance distortion (Eq. 18) of a
// mechanism under this problem's costs: Σ_{i,l} c_{i,l} z_{i,l}.
func (pr *Problem) ETDD(m *Mechanism) float64 {
	k := pr.Part.K()
	tot := 0.0
	for idx := 0; idx < k*k; idx++ {
		tot += pr.Costs[idx] * m.Z[idx]
	}
	return tot
}

// GeoIViolation returns the largest violation of the full (ε, r)-Geo-I
// constraint set by the mechanism (≤ 0 means satisfied). In the
// heterogeneous case every pair is checked against its own PairEps.
func (pr *Problem) GeoIViolation(m *Mechanism) float64 {
	if pr.EpsAt == nil {
		return geoi.MaxViolation(pr.Part, m.Z, pr.Eps, pr.Radius)
	}
	k := pr.Part.K()
	worst := math.Inf(-1)
	for _, pair := range geoi.FullPairs(pr.Part, pr.Radius) {
		f := math.Exp(pr.PairEps(pair.I, pair.L) * pair.D)
		for j := 0; j < k; j++ {
			if v := m.Z[pair.I*k+j] - f*m.Z[pair.L*k+j]; v > worst {
				worst = v
			}
		}
	}
	return worst
}

// TradeoffLowerBound returns the closed-form QoS/privacy bound of
// Proposition 4.5 for a given ε:
//
//	ETDD ≥ max_l min_j κ_{l,j}(ε),   κ_{l,j}(ε) = Σ_i c_{i,j} e^{−ε·d_min(u_i^e, u_l^e)}
//
// restricted to pairs within the protection radius (unconstrained pairs
// contribute nothing). Note the inner *min*: the paper prints max_j, but
// the derivation in its own proof — Σ_j κ_{l,j} z_{l,j} with Σ_j z_{l,j} = 1 —
// only supports the minimum over j, and the max_j variant is falsified by
// direct small instances. We implement the sound version.
func (pr *Problem) TradeoffLowerBound(eps float64) float64 {
	k := pr.Part.K()
	best := 0.0
	for l := 0; l < k; l++ {
		minJ := math.Inf(1)
		for j := 0; j < k; j++ {
			kappa := 0.0
			for i := 0; i < k; i++ {
				d := pr.Part.EndDistMin(i, l)
				if pr.Radius > 0 && d > pr.Radius {
					continue
				}
				kappa += pr.Costs[i*k+j] * math.Exp(-eps*d)
			}
			if kappa < minJ {
				minJ = kappa
			}
		}
		if minJ > best {
			best = minJ
		}
	}
	return best
}

// ExponentialMechanism builds the ε/2 exponential mechanism over the
// symmetrized interval metric (with ε = MinEps in the heterogeneous
// case, so the strictest regional guarantee holds everywhere). It
// satisfies (ε, r)-Geo-I for every r and serves both as the feasible
// seed of the column generation and as a closed-form fallback mechanism.
func (pr *Problem) ExponentialMechanism() *Mechanism {
	k := pr.Part.K()
	eps := pr.MinEps()
	z := make([]float64, k*k)
	for i := 0; i < k; i++ {
		sum := 0.0
		for l := 0; l < k; l++ {
			z[i*k+l] = math.Exp(-eps / 2 * pr.Sym.Dist(roadnet.NodeID(i), roadnet.NodeID(l)))
			sum += z[i*k+l]
		}
		for l := 0; l < k; l++ {
			z[i*k+l] /= sum
		}
	}
	return &Mechanism{Part: pr.Part, Z: z}
}

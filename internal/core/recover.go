package core

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic recovered at a solver entry point and converted
// into an ordinary error. Numeric code can panic far from its caller — a
// Cholesky breakdown, an index derailed by a NaN — and a long-lived
// serving process must treat that as "this solve failed", not die.
// Callers detect it with errors.As and can log Stack for the post-mortem
// while degrading to a fallback mechanism.
type PanicError struct {
	// Site names the recovering entry point (e.g. "core.SolveCG").
	Site string
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: panic recovered in %s: %v", e.Site, e.Value)
}

func newPanicError(site string, v interface{}) *PanicError {
	return &PanicError{Site: site, Value: v, Stack: debug.Stack()}
}

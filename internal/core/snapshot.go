package core

import (
	"fmt"
	"math"
)

// CGStateSnapshot is the exported, serialisable form of a CGState: the
// column pool of a (possibly interrupted) column-generation run, flat
// enough for a wire encoder. Snapshot and RestoreCGState convert in both
// directions; the opaque CGState stays the only type the solver accepts,
// so every restored pool passes through RestoreCGState's validation
// before CGOptions.Resume can see it.
type CGStateSnapshot struct {
	// K is the interval count of the problem the pool was generated on.
	K int
	// Columns are the pooled extreme points, one per admitted column.
	Columns []CGColumnSnapshot
}

// CGColumnSnapshot is one extreme point ẑ of polyhedron Λ_l with its
// objective contribution.
type CGColumnSnapshot struct {
	// L is the polyhedron (obfuscated-interval) index, in [0, K).
	L int
	// Z holds the K entries of the extreme point, each in [0, 1].
	Z []float64
	// Cost is Σ_i c_{i,l} Z_i under the problem's cost matrix.
	Cost float64
}

// Snapshot exports the state's column pool. The returned snapshot shares
// no mutable storage obligations with the solver — CGState columns are
// immutable once created — but callers must treat the nested slices as
// read-only all the same. A nil state snapshots to nil.
func (st *CGState) Snapshot() *CGStateSnapshot {
	if st == nil {
		return nil
	}
	s := &CGStateSnapshot{K: st.k, Columns: make([]CGColumnSnapshot, len(st.columns))}
	for i, c := range st.columns {
		s.Columns[i] = CGColumnSnapshot{L: c.l, Z: c.z, Cost: c.cost}
	}
	return s
}

// RestoreCGState rebuilds an opaque CGState from a snapshot, validating
// it strictly: the shape must be internally consistent (every column of
// length K with L in range), every value finite with Z entries in
// [0, 1] and non-negative costs, and the pool must cover every convexity
// row — the same structural requirement CGOptions.Resume enforces, so a
// restored state is never silently ignored by the solver for a reason
// validation could have caught. Untrusted (disk, wire) snapshots must
// come through here. A nil snapshot restores to nil without error.
func RestoreCGState(s *CGStateSnapshot) (*CGState, error) {
	if s == nil {
		return nil, nil
	}
	if s.K < 1 {
		return nil, fmt.Errorf("core: CG state has K = %d", s.K)
	}
	if len(s.Columns) == 0 {
		return nil, fmt.Errorf("core: CG state has no columns")
	}
	covered := make([]bool, s.K)
	st := &CGState{k: s.K, columns: make([]cgColumn, len(s.Columns))}
	for i, c := range s.Columns {
		if c.L < 0 || c.L >= s.K {
			return nil, fmt.Errorf("core: CG state column %d has L = %d outside [0, %d)", i, c.L, s.K)
		}
		if len(c.Z) != s.K {
			return nil, fmt.Errorf("core: CG state column %d has %d entries, want %d", i, len(c.Z), s.K)
		}
		for j, v := range c.Z {
			if math.IsNaN(v) || v < 0 || v > 1 {
				return nil, fmt.Errorf("core: CG state column %d entry %d = %v outside [0, 1]", i, j, v)
			}
		}
		if math.IsNaN(c.Cost) || math.IsInf(c.Cost, 0) || c.Cost < 0 {
			return nil, fmt.Errorf("core: CG state column %d has cost %v", i, c.Cost)
		}
		covered[c.L] = true
		st.columns[i] = cgColumn{l: c.L, z: c.Z, cost: c.Cost}
	}
	for l, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("core: CG state covers no column for polyhedron %d", l)
		}
	}
	return st, nil
}

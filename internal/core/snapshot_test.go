package core

import (
	"math"
	"testing"
)

// TestCGStateSnapshotRoundTrip: export → restore must reproduce a state
// the solver accepts as a resume point, reaching the same answer.
func TestCGStateSnapshotRoundTrip(t *testing.T) {
	pr := smallProblem(t, 41, 5)
	first, err := SolveCG(pr, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap := first.State.Snapshot()
	if snap == nil || snap.K != pr.Part.K() || len(snap.Columns) != first.State.Columns() {
		t.Fatalf("snapshot shape K=%d columns=%d, want K=%d columns=%d",
			snap.K, len(snap.Columns), pr.Part.K(), first.State.Columns())
	}
	st, err := RestoreCGState(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !st.validFor(pr.Part.K()) {
		t.Fatal("restored state rejected by validFor")
	}
	resumed, err := SolveCG(pr, CGOptions{Resume: st})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resumed.ETDD-first.ETDD) > 1e-5*(1+first.ETDD) {
		t.Fatalf("resume from restored snapshot: ETDD %v vs %v", resumed.ETDD, first.ETDD)
	}

	// Nil round-trips to nil on both sides.
	if (*CGState)(nil).Snapshot() != nil {
		t.Error("nil state snapshots to non-nil")
	}
	if st, err := RestoreCGState(nil); st != nil || err != nil {
		t.Errorf("nil snapshot restored to (%v, %v)", st, err)
	}
}

// TestRestoreCGStateRejectsMalformed: every structurally or numerically
// broken snapshot must be an error, never a usable state.
func TestRestoreCGStateRejectsMalformed(t *testing.T) {
	col := func(l int, z []float64, cost float64) CGColumnSnapshot {
		return CGColumnSnapshot{L: l, Z: z, Cost: cost}
	}
	ok2 := []float64{0.5, 0.5}
	cases := map[string]*CGStateSnapshot{
		"zero K":          {K: 0, Columns: []CGColumnSnapshot{col(0, nil, 0)}},
		"no columns":      {K: 2},
		"L out of range":  {K: 2, Columns: []CGColumnSnapshot{col(2, ok2, 0), col(0, ok2, 0)}},
		"negative L":      {K: 2, Columns: []CGColumnSnapshot{col(-1, ok2, 0), col(0, ok2, 0)}},
		"short column":    {K: 2, Columns: []CGColumnSnapshot{col(0, []float64{1}, 0), col(1, ok2, 0)}},
		"NaN entry":       {K: 2, Columns: []CGColumnSnapshot{col(0, []float64{math.NaN(), 0}, 0), col(1, ok2, 0)}},
		"entry above 1":   {K: 2, Columns: []CGColumnSnapshot{col(0, []float64{1.5, 0}, 0), col(1, ok2, 0)}},
		"negative entry":  {K: 2, Columns: []CGColumnSnapshot{col(0, []float64{-0.1, 0}, 0), col(1, ok2, 0)}},
		"NaN cost":        {K: 2, Columns: []CGColumnSnapshot{col(0, ok2, math.NaN()), col(1, ok2, 0)}},
		"negative cost":   {K: 2, Columns: []CGColumnSnapshot{col(0, ok2, -1), col(1, ok2, 0)}},
		"uncovered block": {K: 2, Columns: []CGColumnSnapshot{col(0, ok2, 0)}},
	}
	for name, snap := range cases {
		if st, err := RestoreCGState(snap); err == nil {
			t.Errorf("%s: restored to %v, want error", name, st)
		}
	}
}

// TestSolveCGCheckpointHook: OnState fires at the configured cadence and
// every emitted snapshot is independently resumable — the property the
// serving layer's crash recovery rests on.
func TestSolveCGCheckpointHook(t *testing.T) {
	pr := smallProblem(t, 42, 5)
	var states []*CGState
	var iters []int
	first, err := SolveCG(pr, CGOptions{
		CheckpointEvery: 2,
		OnState: func(iter int, st *CGState) {
			iters = append(iters, iter)
			states = append(states, st)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rounds := len(first.Iterations)
	want := rounds / 2
	if len(states) != want {
		t.Fatalf("checkpointed %d times over %d rounds with period 2, want %d", len(states), rounds, want)
	}
	for i, it := range iters {
		if (it+1)%2 != 0 {
			t.Errorf("checkpoint %d fired at round %d, want period-2 rounds only", i, it)
		}
	}
	k := pr.Part.K()
	for i, st := range states {
		if !st.validFor(k) {
			t.Fatalf("checkpoint %d is not a valid resume state", i)
		}
		// Round-trip through the export path, as the store does.
		restored, err := RestoreCGState(st.Snapshot())
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		res, err := SolveCG(pr, CGOptions{Resume: restored})
		if err != nil {
			t.Fatalf("resume from checkpoint %d: %v", i, err)
		}
		if math.Abs(res.ETDD-first.ETDD) > 1e-5*(1+first.ETDD) {
			t.Errorf("resume from checkpoint %d: ETDD %v vs uninterrupted %v", i, res.ETDD, first.ETDD)
		}
	}

	// Period 0 (the default) must never fire the hook.
	if _, err := SolveCG(pr, CGOptions{OnState: func(int, *CGState) {
		t.Error("OnState fired with CheckpointEvery = 0")
	}}); err != nil {
		t.Fatal(err)
	}
}

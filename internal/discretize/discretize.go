// Package discretize implements Step I of the paper's D-VLP
// approximation: every road edge is partitioned into intervals of length
// ≈ δ, obfuscation probabilities are defined per interval, and an
// auxiliary graph G′ over intervals supports the shortest-path-tree
// machinery of the constraint-reduction algorithm.
//
// One deliberate deviation from the paper's Step I: instead of cutting
// exact-δ intervals and leaving a shorter leftover piece at the end of
// each edge (which the paper then ignores "as δ is small enough"), each
// edge of weight w is cut into round(w/δ) equal intervals of length
// ≈ δ. Every point of the network is then covered by exactly one
// interval, which the probability-unit-measure constraint requires, and
// the interval length stays within ±50 % of δ.
package discretize

import (
	"fmt"
	"math"

	"repro/internal/roadnet"
)

// Interval is one partitioned piece u_k of an edge. Its endpoints follow
// the paper's ToEnd convention: StartToEnd is the distance from the
// interval's starting endpoint u_k^s to the edge head, EndToEnd from its
// ending endpoint u_k^e, so StartToEnd − EndToEnd = Length.
type Interval struct {
	Index      int
	Edge       roadnet.EdgeID
	StartToEnd float64
	EndToEnd   float64
}

// Length returns the interval's length along the edge.
func (iv Interval) Length() float64 { return iv.StartToEnd - iv.EndToEnd }

// Start returns the location of u_k^s.
func (iv Interval) Start() roadnet.Location {
	return roadnet.Location{Edge: iv.Edge, ToEnd: iv.StartToEnd}
}

// End returns the location of u_k^e.
func (iv Interval) End() roadnet.Location {
	return roadnet.Location{Edge: iv.Edge, ToEnd: iv.EndToEnd}
}

// Mid returns the interval midpoint, the representative the quality-loss
// integrals are evaluated at.
func (iv Interval) Mid() roadnet.Location {
	return roadnet.Location{Edge: iv.Edge, ToEnd: (iv.StartToEnd + iv.EndToEnd) / 2}
}

// Partition is the discretised road network: the interval set U, the
// node-distance matrix of the underlying graph, and precomputed
// interval-to-interval travel distances.
type Partition struct {
	G         *roadnet.Graph
	Delta     float64
	Intervals []Interval

	edgeFirst []int // first interval index of each edge
	edgeCount []int
	nodeDist  *roadnet.DistMatrix

	k       int
	midDist []float64 // d_G(mid_i, mid_l), K×K row-major
	endDist []float64 // d_G(u_i^e, u_l^e)
}

// New partitions the graph with target interval length delta (km). The
// graph must be strongly connected so all travel distances are finite.
// maxIntervals bounds the partition size New will build. The solver's
// K×K matrices make anything near this size unusable anyway, and the
// bound keeps adversarial inputs (a tiny delta against a long edge, as
// exercised by the serial-package fuzzers) from attempting an unbounded
// allocation.
const maxIntervals = 1 << 20

func New(g *roadnet.Graph, delta float64) (*Partition, error) {
	// !(delta > 0) rather than delta <= 0: NaN fails every comparison and
	// must be rejected too.
	if !(delta > 0) || math.IsInf(delta, 0) {
		return nil, fmt.Errorf("discretize: invalid delta %v", delta)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.StronglyConnected() {
		return nil, fmt.Errorf("discretize: graph is not strongly connected")
	}
	total := 0
	for ei := 0; ei < g.NumEdges(); ei++ {
		n := intervalCount(g.Edge(roadnet.EdgeID(ei)).Weight, delta)
		if n > maxIntervals-total {
			return nil, fmt.Errorf("discretize: delta %v yields more than %d intervals", delta, maxIntervals)
		}
		total += n
	}
	p := &Partition{
		G:         g,
		Delta:     delta,
		edgeFirst: make([]int, g.NumEdges()),
		edgeCount: make([]int, g.NumEdges()),
		nodeDist:  g.AllPairs(),
	}
	for ei := 0; ei < g.NumEdges(); ei++ {
		e := g.Edge(roadnet.EdgeID(ei))
		n := intervalCount(e.Weight, delta)
		size := e.Weight / float64(n)
		p.edgeFirst[ei] = len(p.Intervals)
		p.edgeCount[ei] = n
		for j := 0; j < n; j++ {
			p.Intervals = append(p.Intervals, Interval{
				Index:      len(p.Intervals),
				Edge:       e.ID,
				StartToEnd: e.Weight - float64(j)*size,
				EndToEnd:   e.Weight - float64(j+1)*size,
			})
		}
		// Clamp the last interval's EndToEnd to exactly 0 against float
		// drift.
		p.Intervals[len(p.Intervals)-1].EndToEnd = 0
	}
	p.k = len(p.Intervals)
	p.computeDistances()
	return p, nil
}

// intervalCount returns round(w/delta) clamped to [1, maxIntervals+1);
// the clamp keeps int conversion defined for overflowing ratios.
func intervalCount(w, delta float64) int {
	r := math.Round(w / delta)
	if !(r > 1) {
		return 1
	}
	if r > maxIntervals {
		return maxIntervals + 1
	}
	return int(r)
}

// K returns the number of intervals |U|.
func (p *Partition) K() int { return p.k }

// NodeDist exposes the underlying node-to-node distance matrix.
func (p *Partition) NodeDist() *roadnet.DistMatrix { return p.nodeDist }

// Locate returns the index of the interval containing the location.
func (p *Partition) Locate(l roadnet.Location) int {
	first := p.edgeFirst[l.Edge]
	n := p.edgeCount[l.Edge]
	w := p.G.Edge(l.Edge).Weight
	size := w / float64(n)
	j := int(l.FromStart(p.G) / size)
	if j >= n {
		j = n - 1
	}
	if j < 0 {
		j = 0
	}
	return first + j
}

// RelativeLoc returns δ(p) = x − x_{u_k}^e, the paper's relative location
// of a point within its interval (Step II preserves it under
// obfuscation).
func (p *Partition) RelativeLoc(l roadnet.Location) float64 {
	iv := p.Intervals[p.Locate(l)]
	return l.ToEnd - iv.EndToEnd
}

// WithRelativeLoc returns the location inside interval k that has the
// given relative location, clamped to the interval (Step II: the
// obfuscated point keeps the true point's relative location).
func (p *Partition) WithRelativeLoc(k int, rel float64) roadnet.Location {
	iv := p.Intervals[k]
	if rel < 0 {
		rel = 0
	}
	if rel > iv.Length() {
		rel = iv.Length()
	}
	return roadnet.Location{Edge: iv.Edge, ToEnd: iv.EndToEnd + rel}
}

// EdgeIntervals returns the interval index range [first, first+count) of
// the given edge, ordered from edge start to edge end.
func (p *Partition) EdgeIntervals(e roadnet.EdgeID) (first, count int) {
	return p.edgeFirst[e], p.edgeCount[e]
}

func (p *Partition) computeDistances() {
	k := p.k
	p.midDist = make([]float64, k*k)
	p.endDist = make([]float64, k*k)
	nd := p.nodeDist.Dist
	for i := 0; i < k; i++ {
		mi := p.Intervals[i].Mid()
		ei := p.Intervals[i].End()
		for l := 0; l < k; l++ {
			ml := p.Intervals[l].Mid()
			el := p.Intervals[l].End()
			p.midDist[i*k+l] = roadnet.TravelDist(p.G, nd, mi, ml)
			p.endDist[i*k+l] = roadnet.TravelDist(p.G, nd, ei, el)
		}
	}
}

// MidDist returns d_G(mid_i, mid_l): the travel distance between interval
// representatives, used for quality-loss costs and attack errors.
func (p *Partition) MidDist(i, l int) float64 { return p.midDist[i*p.k+l] }

// MidDistMin returns d_G^min between interval midpoints.
func (p *Partition) MidDistMin(i, l int) float64 {
	return math.Min(p.midDist[i*p.k+l], p.midDist[l*p.k+i])
}

// EndDist returns d_G(u_i^e, u_l^e), the distance between interval ending
// points that weights the Geo-I constraints (Eq. 20).
func (p *Partition) EndDist(i, l int) float64 { return p.endDist[i*p.k+l] }

// EndDistMin returns d_G^min(u_i^e, u_l^e).
func (p *Partition) EndDistMin(i, l int) float64 {
	return math.Min(p.endDist[i*p.k+l], p.endDist[l*p.k+i])
}

// TravelDistLoc returns d_G between two arbitrary on-network locations
// using the partition's cached node distances.
func (p *Partition) TravelDistLoc(a, b roadnet.Location) float64 {
	return roadnet.TravelDist(p.G, p.nodeDist.Dist, a, b)
}

// TravelDistMinLoc returns d_G^min between two locations.
func (p *Partition) TravelDistMinLoc(a, b roadnet.Location) float64 {
	return roadnet.TravelDistMin(p.G, p.nodeDist.Dist, a, b)
}

// AuxGraph builds the paper's auxiliary graph G′ (Definition 4.1): one
// vertex per interval, and a directed edge u′_i → u′_l whenever a worker
// can travel directly from u_i into u_l — consecutive intervals of the
// same edge, or a last interval of an edge into the first interval of a
// successor edge across a connection. Edge weights are the exact travel
// distance between the interval *ending* points (≈ δ), so shortest paths
// in G′ reproduce interval-to-interval travel distances and Geo-I chain
// weights compose exactly.
func (p *Partition) AuxGraph() *roadnet.Graph {
	aux := roadnet.NewGraph()
	for _, iv := range p.Intervals {
		aux.AddNode(iv.Mid().Point(p.G))
	}
	for ei := 0; ei < p.G.NumEdges(); ei++ {
		first, count := p.EdgeIntervals(roadnet.EdgeID(ei))
		for j := 0; j+1 < count; j++ {
			w := p.Intervals[first+j+1].Length()
			aux.AddEdge(roadnet.NodeID(first+j), roadnet.NodeID(first+j+1), w)
		}
	}
	for v := 0; v < p.G.NumNodes(); v++ {
		for _, inE := range p.G.InEdges(roadnet.NodeID(v)) {
			fi, ci := p.EdgeIntervals(inE)
			last := fi + ci - 1
			for _, outE := range p.G.OutEdges(roadnet.NodeID(v)) {
				fo, _ := p.EdgeIntervals(outE)
				w := p.Intervals[fo].Length()
				aux.AddEdge(roadnet.NodeID(last), roadnet.NodeID(fo), w)
			}
		}
	}
	return aux
}

package discretize

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/roadnet"
)

func smallGrid(t *testing.T, seed int64) *roadnet.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 3, Cols: 3, Spacing: 0.4, OneWayFrac: 0.5, WeightJitter: 0.2,
	})
}

func mustPartition(t *testing.T, g *roadnet.Graph, delta float64) *Partition {
	t.Helper()
	p, err := New(g, delta)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRejectsBadInput(t *testing.T) {
	g := smallGrid(t, 1)
	if _, err := New(g, 0); err == nil {
		t.Fatal("accepted delta = 0")
	}
	chain := roadnet.NewGraph()
	a := chain.AddNode(geom.Point{})
	b := chain.AddNode(geom.Point{X: 1})
	chain.AddEdge(a, b, 1)
	if _, err := New(chain, 0.1); err == nil {
		t.Fatal("accepted non-strongly-connected graph")
	}
}

func TestIntervalsCoverEveryEdgeExactly(t *testing.T) {
	g := smallGrid(t, 2)
	p := mustPartition(t, g, 0.1)
	perEdge := make(map[roadnet.EdgeID]float64)
	for _, iv := range p.Intervals {
		if iv.Length() <= 0 {
			t.Fatalf("interval %d has non-positive length", iv.Index)
		}
		perEdge[iv.Edge] += iv.Length()
	}
	for ei := 0; ei < g.NumEdges(); ei++ {
		e := g.Edge(roadnet.EdgeID(ei))
		if math.Abs(perEdge[e.ID]-e.Weight) > 1e-9 {
			t.Fatalf("edge %d covered length %v, weight %v", ei, perEdge[e.ID], e.Weight)
		}
	}
}

func TestIntervalLengthNearDelta(t *testing.T) {
	g := smallGrid(t, 3)
	const delta = 0.1
	p := mustPartition(t, g, delta)
	for _, iv := range p.Intervals {
		if iv.Length() < delta/2-1e-9 || iv.Length() > delta*1.5+1e-9 {
			t.Fatalf("interval %d length %v outside [δ/2, 1.5δ]", iv.Index, iv.Length())
		}
	}
}

func TestIntervalsOrderedAlongEdge(t *testing.T) {
	g := smallGrid(t, 4)
	p := mustPartition(t, g, 0.08)
	for ei := 0; ei < g.NumEdges(); ei++ {
		first, count := p.EdgeIntervals(roadnet.EdgeID(ei))
		w := g.Edge(roadnet.EdgeID(ei)).Weight
		if math.Abs(p.Intervals[first].StartToEnd-w) > 1e-9 {
			t.Fatalf("edge %d: first interval does not start at edge start", ei)
		}
		if p.Intervals[first+count-1].EndToEnd != 0 {
			t.Fatalf("edge %d: last interval does not end at edge end", ei)
		}
		for j := 0; j+1 < count; j++ {
			a, b := p.Intervals[first+j], p.Intervals[first+j+1]
			if math.Abs(a.EndToEnd-b.StartToEnd) > 1e-9 {
				t.Fatalf("edge %d: intervals %d,%d not contiguous", ei, j, j+1)
			}
		}
	}
}

func TestLocateRoundTrip(t *testing.T) {
	g := smallGrid(t, 5)
	p := mustPartition(t, g, 0.1)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 500; trial++ {
		loc := roadnet.RandomLocation(rng, g)
		k := p.Locate(loc)
		iv := p.Intervals[k]
		if iv.Edge != loc.Edge {
			t.Fatalf("Locate put %v on edge %d", loc, iv.Edge)
		}
		if loc.ToEnd < iv.EndToEnd-1e-9 || loc.ToEnd > iv.StartToEnd+1e-9 {
			t.Fatalf("location %v outside its interval [%v, %v]", loc, iv.EndToEnd, iv.StartToEnd)
		}
	}
}

func TestRelativeLocPreserved(t *testing.T) {
	g := smallGrid(t, 7)
	p := mustPartition(t, g, 0.1)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		loc := roadnet.RandomLocation(rng, g)
		rel := p.RelativeLoc(loc)
		if rel < -1e-9 {
			t.Fatalf("negative relative location %v", rel)
		}
		// Transplanting the relative location into another interval and
		// reading it back must return the same value (up to clamping).
		k := rng.Intn(p.K())
		moved := p.WithRelativeLoc(k, rel)
		if rel < p.Intervals[k].Length()-1e-9 {
			// Points exactly on an interval boundary may Locate to the
			// neighbouring interval; skip that measure-zero case.
			if p.Locate(moved) != k {
				t.Fatalf("WithRelativeLoc placed point in interval %d, want %d", p.Locate(moved), k)
			}
			got := p.RelativeLoc(moved)
			if math.Abs(got-rel) > 1e-9 {
				t.Fatalf("relative location %v after transplant, want %v", got, rel)
			}
		}
	}
}

func TestMidDistMatchesDirectComputation(t *testing.T) {
	g := smallGrid(t, 9)
	p := mustPartition(t, g, 0.15)
	nd := p.NodeDist().Dist
	for i := 0; i < p.K(); i += 3 {
		for l := 0; l < p.K(); l += 5 {
			want := roadnet.TravelDist(g, nd, p.Intervals[i].Mid(), p.Intervals[l].Mid())
			if math.Abs(p.MidDist(i, l)-want) > 1e-9 {
				t.Fatalf("MidDist(%d,%d) = %v, want %v", i, l, p.MidDist(i, l), want)
			}
		}
	}
}

func TestDistancesFiniteAndDiagonalZero(t *testing.T) {
	g := smallGrid(t, 10)
	p := mustPartition(t, g, 0.1)
	for i := 0; i < p.K(); i++ {
		if p.MidDist(i, i) != 0 || p.EndDist(i, i) != 0 {
			t.Fatalf("self-distance of %d not zero", i)
		}
		for l := 0; l < p.K(); l++ {
			if math.IsInf(p.MidDist(i, l), 0) || math.IsNaN(p.MidDist(i, l)) {
				t.Fatalf("MidDist(%d,%d) = %v", i, l, p.MidDist(i, l))
			}
			if p.MidDistMin(i, l) != p.MidDistMin(l, i) {
				t.Fatalf("MidDistMin not symmetric at (%d,%d)", i, l)
			}
		}
	}
}

func TestAuxGraphReproducesIntervalDistances(t *testing.T) {
	g := smallGrid(t, 11)
	p := mustPartition(t, g, 0.1)
	aux := p.AuxGraph()
	if aux.NumNodes() != p.K() {
		t.Fatalf("aux graph has %d nodes, want %d", aux.NumNodes(), p.K())
	}
	if !aux.StronglyConnected() {
		t.Fatal("aux graph of a strongly connected network must be strongly connected")
	}
	// Shortest path distance in G' between interval i and l must equal
	// the end-to-end travel distance d_G(u_i^e, u_l^e).
	for i := 0; i < p.K(); i += 4 {
		spt := aux.ShortestPathTree(roadnet.NodeID(i))
		for l := 0; l < p.K(); l += 3 {
			if math.Abs(spt.Dist[l]-p.EndDist(i, l)) > 1e-6 {
				t.Fatalf("aux dist(%d,%d) = %v, EndDist = %v", i, l, spt.Dist[l], p.EndDist(i, l))
			}
		}
	}
}

func TestAuxGraphEdgeCountNearPlanar(t *testing.T) {
	// The paper argues M (aux edges) stays close to K for real road
	// networks; for a grid it must stay within a small constant factor.
	g := smallGrid(t, 12)
	p := mustPartition(t, g, 0.05)
	aux := p.AuxGraph()
	m, k := aux.NumEdges(), p.K()
	if m < k { // every interval has at least one successor
		t.Fatalf("M = %d < K = %d", m, k)
	}
	if float64(m) > 2.5*float64(k) {
		t.Fatalf("M = %d too large versus K = %d", m, k)
	}
}

func TestSmallerDeltaMoreIntervals(t *testing.T) {
	g := smallGrid(t, 13)
	coarse := mustPartition(t, g, 0.2)
	fine := mustPartition(t, g, 0.05)
	if fine.K() <= coarse.K() {
		t.Fatalf("K(0.05) = %d not greater than K(0.2) = %d", fine.K(), coarse.K())
	}
}

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// Scale selects the experiment size. Quick keeps every figure within
// seconds on a laptop while preserving every qualitative shape; Full
// grows the map, fleet and sweeps toward the paper's proportions (the
// paper itself uses a city-scale map and 120 cabs, which a pure-Go LP
// stack regenerates in minutes rather than seconds).
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// Config drives all experiment runners.
type Config struct {
	Scale Scale
	Seed  int64
}

// params bundles the per-scale knobs.
type params struct {
	rome       roadnet.RomeLikeConfig
	sim        trace.SimConfig
	cabs       int       // top-N cabs analysed per-vehicle
	delta      float64   // headline interval length (km)
	deltaSweep []float64 // Fig. 10/13 sweep, descending
	epsSweep   []float64 // Figs. 11/12/14 sweep (1/km)
	eps        float64   // headline privacy parameter
	radius     float64
	cg         core.CGOptions
	cgTight    core.CGOptions // for bound-quality figures
	vehicles14 int
	tasks14    int
	strides15  []int
	groups     int // pilot-study groups
}

func (c Config) params() params {
	switch c.Scale {
	case Full:
		return params{
			rome: roadnet.RomeLikeConfig{
				DowntownRows: 4, DowntownCols: 4, DowntownSpacing: 0.3,
				RingRadiusFactor: 1.6, Radials: 5, SuburbDepth: 2,
				SuburbSpacing: 0.5, OneWayFrac: 0.5, WeightJitter: 0.15,
			},
			sim: trace.SimConfig{
				Vehicles: 290, Duration: 2 * 3600, RecordEvery: 7,
				SpeedKmh: 30, CenterBias: 1.2, DropoutProb: 0.25,
			},
			cabs:       12,
			delta:      0.3,
			deltaSweep: []float64{0.45, 0.3, 0.2},
			epsSweep:   []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
			eps:        5,
			cg:         core.CGOptions{Xi: -0.1, RelGap: 0.04, MaxIterations: 25},
			cgTight:    core.CGOptions{Xi: 0, RelGap: 0.008, MaxIterations: 60},
			vehicles14: 30,
			tasks14:    20,
			strides15:  []int{10, 11, 12, 13, 14, 15},
			groups:     20,
		}
	default:
		return params{
			rome: roadnet.RomeLikeConfig{
				DowntownRows: 3, DowntownCols: 3, DowntownSpacing: 0.3,
				RingRadiusFactor: 1.6, Radials: 4, SuburbDepth: 1,
				SuburbSpacing: 0.5, OneWayFrac: 0.5, WeightJitter: 0.15,
			},
			sim: trace.SimConfig{
				Vehicles: 40, Duration: 1800, RecordEvery: 7,
				SpeedKmh: 30, CenterBias: 1.2, DropoutProb: 0.25,
			},
			cabs:       6,
			delta:      0.3,
			deltaSweep: []float64{0.45, 0.3, 0.2},
			epsSweep:   []float64{1, 2, 4, 7, 10},
			eps:        5,
			cg:         core.CGOptions{Xi: -0.2, RelGap: 0.08, MaxIterations: 12},
			cgTight:    core.CGOptions{Xi: 0, RelGap: 0.02, MaxIterations: 30},
			vehicles14: 12,
			tasks14:    8,
			strides15:  []int{10, 12, 15},
			groups:     8,
		}
	}
}

// env is the trace-driven simulation environment shared by the
// simulation figures: the Rome-like map, the fleet traces, the selected
// cabs and their priors.
type env struct {
	cfg  Config
	prm  params
	rng  *rand.Rand
	G    *roadnet.Graph
	Part *discretize.Partition
	All  []*trace.VehicleTrace
	Cabs []*trace.VehicleTrace
	// PriorQ is the task prior: the paper assumes tasks follow the
	// location distribution of all cabs.
	PriorQ []float64
	// CabPriors holds each selected cab's own prior f_P.
	CabPriors [][]float64
}

func newEnv(cfg Config) (*env, error) {
	return newEnvDelta(cfg, 0)
}

// newEnvDelta builds the environment with an explicit interval length
// (0 selects the scale default).
func newEnvDelta(cfg Config, delta float64) (*env, error) {
	prm := cfg.params()
	if delta <= 0 {
		delta = prm.delta
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	g := roadnet.RomeLike(rng, prm.rome)
	part, err := discretize.New(g, delta)
	if err != nil {
		return nil, err
	}
	traces, err := trace.Simulate(rng, g, prm.sim)
	if err != nil {
		return nil, err
	}
	cabs := trace.TopByRecords(traces, prm.cabs)
	e := &env{
		cfg:    cfg,
		prm:    prm,
		rng:    rng,
		G:      g,
		Part:   part,
		All:    traces,
		Cabs:   cabs,
		PriorQ: trace.PriorFromTraces(part, traces, 0.5),
	}
	for _, cab := range cabs {
		e.CabPriors = append(e.CabPriors,
			trace.PriorFromTraces(part, []*trace.VehicleTrace{cab}, 0.5))
	}
	return e, nil
}

// cabProblem assembles the D-VLP instance of cab c at privacy level eps.
func (e *env) cabProblem(c int, eps float64) (*core.Problem, error) {
	return core.NewProblem(e.Part, core.Config{
		Epsilon: eps,
		Radius:  e.prm.radius,
		PriorP:  e.CabPriors[c],
		PriorQ:  e.PriorQ,
	})
}

// fleetProblem assembles a D-VLP instance with the whole fleet's prior,
// used where one shared mechanism serves all vehicles (Fig. 14).
func (e *env) fleetProblem(eps float64) (*core.Problem, error) {
	return core.NewProblem(e.Part, core.Config{
		Epsilon: eps,
		Radius:  e.prm.radius,
		PriorP:  trace.PriorFromTraces(e.Part, e.All, 0.5),
		PriorQ:  e.PriorQ,
	})
}

func (e *env) check() error {
	if len(e.Cabs) == 0 {
		return fmt.Errorf("experiments: no cabs selected")
	}
	return nil
}

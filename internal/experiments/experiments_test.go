package experiments

import (
	"strings"
	"testing"
)

// The CG-heavy figures are exercised end-to-end by cmd/experiments and
// the repository benchmarks; the tests here cover the cheap runners
// end-to-end plus the scaffolding all runners share.

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRowF(3.14159, 42)
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "3.142") {
		t.Fatalf("bad rendering:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestRegistryNamesAndUnknown(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) {
		t.Fatalf("Names() returned %d of %d", len(names), len(Registry))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("names not sorted")
		}
	}
	if _, err := Run("nope", Config{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestEnvDeterministic(t *testing.T) {
	cfg := Config{Scale: Quick, Seed: 5}
	a, err := newEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Part.K() != b.Part.K() || len(a.All) != len(b.All) {
		t.Fatal("environment not deterministic")
	}
	for i, tr := range a.All {
		if len(tr.Records) != len(b.All[i].Records) {
			t.Fatalf("vehicle %d trace differs between runs", i)
		}
	}
	for i := range a.PriorQ {
		if a.PriorQ[i] != b.PriorQ[i] {
			t.Fatal("prior not deterministic")
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	res, err := Fig9(Config{Scale: Quick, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vehicles == 0 || len(res.HeatMass) == 0 {
		t.Fatal("empty result")
	}
	// Heat masses sorted descending.
	for i := 1; i < len(res.HeatMass); i++ {
		if res.HeatMass[i] > res.HeatMass[i-1]+1e-12 {
			t.Fatal("heat masses not sorted")
		}
	}
	// The centre-biased walk concentrates mass downtown.
	if res.DowntownShare < 0.4 {
		t.Fatalf("downtown share %.3f suspiciously low", res.DowntownShare)
	}
	if len(res.Tables()) == 0 {
		t.Fatal("no tables")
	}
}

func TestFig13aShapes(t *testing.T) {
	res, err := Fig13a(Config{Scale: Quick, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Deltas {
		if res.Reduced[i] >= res.Full[i] {
			t.Fatalf("delta %v: reduction did not cut rows", res.Deltas[i])
		}
		if res.Reduction[i] < 0.5 {
			t.Fatalf("delta %v: reduction only %.2f", res.Deltas[i], res.Reduction[i])
		}
		if res.M[i] < res.K[i] {
			t.Fatalf("delta %v: M < K", res.Deltas[i])
		}
	}
	// Finer δ must reduce a larger fraction (constraints grow cubically,
	// reduced rows quadratically).
	last := len(res.Deltas) - 1
	if res.Reduction[last] <= res.Reduction[0] {
		t.Fatalf("reduction fraction did not grow with K: %v", res.Reduction)
	}
	// K grows as δ shrinks (sweep is descending).
	if res.K[last] <= res.K[0] {
		t.Fatalf("K did not grow: %v", res.K)
	}
}

func TestPilotMapsConnected(t *testing.T) {
	for _, scale := range []Scale{Quick, Full} {
		campus, ra, rb := pilotMaps(Config{Scale: scale, Seed: 3})
		for name, g := range map[string]interface {
			StronglyConnected() bool
			NumNodes() int
		}{"campus": campus, "regionA": ra, "regionB": rb} {
			if !g.StronglyConnected() {
				t.Fatalf("scale %v: %s not strongly connected", scale, name)
			}
		}
	}
}

func TestParamsScalesDiffer(t *testing.T) {
	q := Config{Scale: Quick}.params()
	f := Config{Scale: Full}.params()
	if f.sim.Vehicles <= q.sim.Vehicles {
		t.Fatal("Full fleet not larger than Quick")
	}
	if f.cabs <= q.cabs {
		t.Fatal("Full cab selection not larger")
	}
	if len(f.epsSweep) < len(q.epsSweep) {
		t.Fatal("Full eps sweep not denser")
	}
}

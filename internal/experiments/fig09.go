package experiments

import (
	"fmt"
	"sort"

	"repro/internal/roadnet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig9Result reproduces Fig. 9: the dataset heat map (as top-mass
// intervals of the fleet's location distribution) and the per-vehicle
// histograms of record count, traveling time and path distance.
type Fig9Result struct {
	Vehicles int
	Stats    trace.DatasetStats
	// HeatMass is the fleet's location-prior mass per interval,
	// descending; HeatIdx gives the interval indices in the same order.
	HeatMass []float64
	HeatIdx  []int
	// DowntownShare is the prior mass within the central third of the
	// map — the paper's "cabs are more likely located downtown".
	DowntownShare float64
}

// Fig9 simulates the fleet and summarises it.
func Fig9(cfg Config) (*Fig9Result, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.check(); err != nil {
		return nil, err
	}
	prior := e.PriorQ
	idx := make([]int, len(prior))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return prior[idx[a]] > prior[idx[b]] })

	res := &Fig9Result{
		Vehicles: len(e.All),
		Stats:    trace.Stats(e.All),
		HeatIdx:  idx,
	}
	res.HeatMass = make([]float64, len(idx))
	for i, ix := range idx {
		res.HeatMass[i] = prior[ix]
	}
	res.DowntownShare = downtownShare(e, prior)
	return res, nil
}

// downtownShare sums prior mass of intervals whose midpoint lies within
// half the map's max radius of the origin (RomeLike is origin-centred).
func downtownShare(e *env, prior []float64) float64 {
	maxR := 0.0
	for i := 0; i < e.G.NumNodes(); i++ {
		if d := e.G.Node(roadnet.NodeID(i)).Pos.Norm(); d > maxR {
			maxR = d
		}
	}
	share := 0.0
	for i, iv := range e.Part.Intervals {
		p := iv.Mid().Point(e.G)
		if p.Norm() < maxR/2 {
			share += prior[i]
		}
	}
	return share
}

// Tables renders the figure.
func (r *Fig9Result) Tables() []*Table {
	hist := &Table{
		Title:  "Fig 9(b): per-vehicle histograms (box summaries)",
		Header: []string{"metric", "min", "q1", "median", "q3", "max", "mean"},
	}
	for _, row := range []struct {
		name string
		xs   []float64
	}{
		{"records", r.Stats.RecordCounts},
		{"travel time (s)", r.Stats.TravelTimes},
		{"path distance (km)", r.Stats.PathDistances},
	} {
		b := stats.Summarize(row.xs)
		hist.AddRowF(row.name, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
	}

	heat := &Table{
		Title:  "Fig 9(a): heat map — top-10 interval mass (downtown share shown last)",
		Header: []string{"rank", "interval", "mass"},
	}
	for i := 0; i < 10 && i < len(r.HeatIdx); i++ {
		heat.AddRowF(i+1, r.HeatIdx[i], r.HeatMass[i])
	}
	heat.AddRow("—", "downtown share", fmt.Sprintf("%.3f", r.DowntownShare))
	return []*Table{heat, hist}
}

package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/stats"
)

// Fig10Result reproduces Fig. 10: per-cab quality loss across interval
// lengths δ, against a lower-bound reference, with the approximation
// ratio at the finest δ.
//
// Deviations from the paper, found and documented during reproduction:
//
//   - The paper's lower bound (Prop. 3.3 of the ICDCS'19 version) is
//     unavailable; the reference is the larger of the Theorem 4.4 dual
//     bound and the corrected Proposition 4.5 bound at the finest δ.
//   - Quality loss is Monte-Carlo-measured on continuous locations from
//     the cab's own trace (not the discretised objective), so values at
//     different δ are comparable.
//   - The paper reads as if quality loss decreases monotonically toward
//     the bound as δ shrinks. In this implementation the *reverse* holds
//     structurally: a coarse interval lets the mechanism report the true
//     interval "for free" (Step II preserves the relative location, so a
//     self-report is exact), which lowers measured quality loss while
//     also lowering real privacy — visible in the AdvError column. A
//     coarse solution is not feasible for the finer D-VLP (its
//     deterministic relative-location coupling violates the finer Geo-I
//     rows), so no monotonicity is implied in either direction; δ is a
//     genuine quality/privacy/compute trade-off knob.
type Fig10Result struct {
	Deltas []float64 // descending; last entry is the finest
	// ETDD[d][c] is cab c's continuous quality loss at Deltas[d].
	ETDD [][]float64
	// Adv[d][c] is the interval-level Bayesian adversary error.
	Adv [][]float64
	// Bound[c] is cab c's lower-bound reference (finest δ).
	Bound []float64
	// FinestRatio summarises ETDD[finest][c]/Bound[c] across cabs.
	FinestRatio stats.BoxPlot
}

// Fig10 runs the sweep.
func Fig10(cfg Config) (*Fig10Result, error) {
	prm := cfg.params()
	res := &Fig10Result{Deltas: prm.deltaSweep}

	// The δ × cab product dominates this figure's cost; a modest cab
	// sample keeps the summary statistics meaningful.
	maxCabs := prm.cabs
	if cfg.Scale == Quick && maxCabs > 4 {
		maxCabs = 4
	}

	nCabs := 0
	etdd := make([][]float64, len(prm.deltaSweep))
	advs := make([][]float64, len(prm.deltaSweep))
	var bounds, modelETDD []float64
	for di, delta := range prm.deltaSweep {
		e, err := newEnvDelta(cfg, delta)
		if err != nil {
			return nil, err
		}
		nCabs = len(e.Cabs)
		if nCabs > maxCabs {
			nCabs = maxCabs
		}
		etdd[di] = make([]float64, nCabs)
		advs[di] = make([]float64, nCabs)
		finest := di == len(prm.deltaSweep)-1
		if finest {
			bounds = make([]float64, nCabs)
			modelETDD = make([]float64, nCabs)
		}
		for c := 0; c < nCabs; c++ {
			pr, err := e.cabProblem(c, prm.eps)
			if err != nil {
				return nil, err
			}
			opts := prm.cg
			if finest {
				// The dual bound is the whole point of the finest solve;
				// the per-cab instances need a deeper budget than the
				// scale default to close the gap.
				opts = prm.cgTight
				opts.MaxIterations = 2 * prm.cgTight.MaxIterations
			}
			sol, err := core.SolveCG(pr, opts)
			if err != nil {
				return nil, fmt.Errorf("delta %v cab %d: %w", delta, c, err)
			}
			mcRng := rand.New(rand.NewSource(cfg.Seed + int64(1000*di+c)))
			etdd[di][c] = continuousETDD(mcRng, e, c, sol.Mechanism)
			adv, err := attack.NewBayes(sol.Mechanism, pr.PriorP)
			if err != nil {
				return nil, err
			}
			advs[di][c] = adv.AdvError()
			if finest {
				b := sol.LowerBound
				if p45 := pr.TradeoffLowerBound(prm.eps); p45 > b {
					b = p45
				}
				bounds[c] = b
				modelETDD[c] = sol.ETDD
			}
		}
	}
	res.ETDD = etdd
	res.Adv = advs
	res.Bound = bounds

	// The ratio compares like with like: the discretised objective the
	// solver optimised against its own dual bound (the Monte-Carlo
	// continuous measure above is a different quantity — midpoint costs
	// and smoothed priors shift it by a few percent either way).
	ratios := make([]float64, nCabs)
	for c := 0; c < nCabs; c++ {
		ratios[c] = modelETDD[c] / bounds[c]
	}
	res.FinestRatio = stats.Summarize(ratios)
	return res, nil
}

// continuousETDD Monte-Carlo-evaluates the mechanism's quality loss on
// continuous locations: true positions drawn from the cab's own trace
// records, obfuscations sampled from the mechanism (with the Step-II
// relative-location rule), tasks drawn from the fleet prior's records.
func continuousETDD(rng *rand.Rand, e *env, cab int, m *core.Mechanism) float64 {
	records := e.Cabs[cab].Records
	if len(records) == 0 {
		return math.NaN()
	}
	const samples = 1500
	const tasksPer = 4
	tot := 0.0
	n := 0
	for s := 0; s < samples; s++ {
		truth := records[rng.Intn(len(records))].Loc
		obf := m.Sample(rng, truth)
		for t := 0; t < tasksPer; t++ {
			q := e.randomTask(rng)
			d := math.Abs(e.Part.TravelDistLoc(truth, q) - e.Part.TravelDistLoc(obf, q))
			tot += d
			n++
		}
	}
	return tot / float64(n)
}

// randomTask draws a task location from the fleet's record density (the
// paper's task prior).
func (e *env) randomTask(rng *rand.Rand) roadnet.Location {
	for tries := 0; tries < 32; tries++ {
		tr := e.All[rng.Intn(len(e.All))]
		if len(tr.Records) > 0 {
			return tr.Records[rng.Intn(len(tr.Records))].Loc
		}
	}
	return roadnet.RandomLocation(rng, e.G)
}

// Tables renders the figure.
func (r *Fig10Result) Tables() []*Table {
	sweep := &Table{
		Title: "Fig 10(a): continuous quality loss and privacy by interval length δ " +
			"(coarse δ trades privacy for quality — see runner docs)",
		Header: []string{"delta (km)", "mean ETDD (km)", "mean AdvError (km)"},
	}
	for di, d := range r.Deltas {
		sweep.AddRowF(d, stats.Mean(r.ETDD[di]), stats.Mean(r.Adv[di]))
	}
	sweep.AddRow("bound", fmt.Sprintf("%.4g", stats.Mean(r.Bound)), "—")

	box := &Table{
		Title:  "Fig 10(b): approximation ratio at the finest δ (model ETDD / dual bound)",
		Header: []string{"min", "q1", "median", "q3", "max", "mean"},
	}
	b := r.FinestRatio
	box.AddRowF(b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
	return []*Table{sweep, box}
}

package experiments

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/planar"
	"repro/internal/stats"
)

// Fig11Result reproduces Fig. 11(a)(b): our road-network mechanism
// versus the 2D-plane baseline (2Db, Bordenabe et al.), both evaluated
// under *road-network* quality loss (ETDD) and privacy (AdvError from
// the optimal Bayesian inference attack), across the ε sweep. The
// paper's headline: ours reduces quality loss by ≈12 % and raises
// AdvError by ≈7 %.
type Fig11Result struct {
	Eps []float64
	// Mean over cabs at each ε.
	OursETDD, PlanarETDD []float64
	OursAdv, PlanarAdv   []float64
	// Relative headline numbers at the headline ε (fractions; negative
	// RelETDD means ours is lower).
	RelETDD, RelAdv float64
}

// Fig11 runs the comparison.
func Fig11(cfg Config) (*Fig11Result, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	prm := e.prm
	// The ε sweep multiplies solve counts; cap the per-ε cab sample (the
	// means stabilise quickly, and the full per-cab analysis lives in
	// Fig. 10).
	nCabs := len(e.Cabs)
	maxCabs := 3
	if cfg.Scale == Full {
		maxCabs = 4
	}
	if nCabs > maxCabs {
		nCabs = maxCabs
	}

	res := &Fig11Result{Eps: prm.epsSweep}
	for _, eps := range prm.epsSweep {
		var oE, oA, pE, pA float64
		for c := 0; c < nCabs; c++ {
			pr, err := e.cabProblem(c, eps)
			if err != nil {
				return nil, err
			}
			ours, err := core.SolveCG(pr, prm.cg)
			if err != nil {
				return nil, fmt.Errorf("ours eps %v cab %d: %w", eps, c, err)
			}
			twoDb, err := planar.Solve2D(e.Part, eps, prm.radius, e.CabPriors[c], planar.Options{CG: prm.cg})
			if err != nil {
				return nil, fmt.Errorf("2Db eps %v cab %d: %w", eps, c, err)
			}

			oursAdv, err := attack.NewBayes(ours.Mechanism, e.CabPriors[c])
			if err != nil {
				return nil, err
			}
			twoAdv, err := attack.NewBayes(twoDb.Mechanism, e.CabPriors[c])
			if err != nil {
				return nil, err
			}
			oE += ours.ETDD
			oA += oursAdv.AdvError()
			pE += pr.ETDD(twoDb.Mechanism) // road ETDD of the planar mechanism
			pA += twoAdv.AdvError()
		}
		n := float64(nCabs)
		res.OursETDD = append(res.OursETDD, oE/n)
		res.OursAdv = append(res.OursAdv, oA/n)
		res.PlanarETDD = append(res.PlanarETDD, pE/n)
		res.PlanarAdv = append(res.PlanarAdv, pA/n)
	}

	// Headline relative numbers at the sweep midpoint ε.
	mid := len(prm.epsSweep) / 2
	res.RelETDD = stats.RelChange(res.PlanarETDD[mid], res.OursETDD[mid])
	res.RelAdv = stats.RelChange(res.PlanarAdv[mid], res.OursAdv[mid])
	return res, nil
}

// Tables renders the figure.
func (r *Fig11Result) Tables() []*Table {
	t := &Table{
		Title: "Fig 11: ours vs 2Db (road-network ETDD and AdvError)",
		Header: []string{"eps (1/km)", "ETDD ours", "ETDD 2Db",
			"AdvError ours", "AdvError 2Db"},
	}
	for i, eps := range r.Eps {
		t.AddRowF(eps, r.OursETDD[i], r.PlanarETDD[i], r.OursAdv[i], r.PlanarAdv[i])
	}
	head := &Table{
		Title:  "Fig 11 headline (paper: ETDD −12.35%, AdvError +6.91%)",
		Header: []string{"metric", "relative change (ours vs 2Db)"},
	}
	head.AddRow("quality loss", fmt.Sprintf("%+.2f%%", 100*r.RelETDD))
	head.AddRow("AdvError", fmt.Sprintf("%+.2f%%", 100*r.RelAdv))
	return []*Table{t, head}
}

package experiments

import (
	"fmt"
	"sort"

	"repro/internal/attack"
	"repro/internal/core"
)

// Fig12Result reproduces Fig. 12: quality loss and AdvError of our
// mechanism across ε (panels a, b) and the obfuscation probability
// distribution of the busiest interval at a high and a low ε (the heat
// maps of panels c, d) — higher ε concentrates the distribution near the
// true location.
type Fig12Result struct {
	Eps      []float64
	ETDD     []float64
	AdvError []float64

	// HeatEpsHigh/Low are the ε values of the two heat-map panels.
	HeatEpsHigh, HeatEpsLow float64
	// SourceInterval is the interval whose obfuscation row is shown.
	SourceInterval int
	// RowHigh/RowLow are that interval's obfuscation distributions.
	RowHigh, RowLow []float64
	// SpreadHigh/Low are the expected travel distances between the true
	// and obfuscated interval under each row — the heat maps' visual
	// spread as one number.
	SpreadHigh, SpreadLow float64
}

// Fig12 runs the ε sweep with the fleet prior.
func Fig12(cfg Config) (*Fig12Result, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	prm := e.prm
	res := &Fig12Result{Eps: prm.epsSweep}

	var mechs []*core.Mechanism
	for _, eps := range prm.epsSweep {
		pr, err := e.fleetProblem(eps)
		if err != nil {
			return nil, err
		}
		sol, err := core.SolveCG(pr, prm.cg)
		if err != nil {
			return nil, fmt.Errorf("eps %v: %w", eps, err)
		}
		adv, err := attack.NewBayes(sol.Mechanism, pr.PriorP)
		if err != nil {
			return nil, err
		}
		res.ETDD = append(res.ETDD, sol.ETDD)
		res.AdvError = append(res.AdvError, adv.AdvError())
		mechs = append(mechs, sol.Mechanism)
	}

	// Heat-map panels: lowest and highest ε of the sweep, row of the
	// busiest (highest fleet-prior) interval.
	prior := e.PriorQ
	src := 0
	for i, p := range prior {
		if p > prior[src] {
			src = i
		}
	}
	res.SourceInterval = src
	res.HeatEpsLow = prm.epsSweep[0]
	res.HeatEpsHigh = prm.epsSweep[len(prm.epsSweep)-1]
	res.RowLow = append([]float64(nil), mechs[0].Row(src)...)
	res.RowHigh = append([]float64(nil), mechs[len(mechs)-1].Row(src)...)
	res.SpreadLow = rowSpread(e, src, res.RowLow)
	res.SpreadHigh = rowSpread(e, src, res.RowHigh)
	return res, nil
}

// rowSpread is Σ_l row[l]·d_min(src, l).
func rowSpread(e *env, src int, row []float64) float64 {
	s := 0.0
	for l, p := range row {
		s += p * e.Part.MidDistMin(src, l)
	}
	return s
}

// Tables renders the figure.
func (r *Fig12Result) Tables() []*Table {
	sweep := &Table{
		Title:  "Fig 12(a)(b): quality loss and AdvError vs eps",
		Header: []string{"eps (1/km)", "ETDD (km)", "AdvError (km)"},
	}
	for i, eps := range r.Eps {
		sweep.AddRowF(eps, r.ETDD[i], r.AdvError[i])
	}

	heat := &Table{
		Title: fmt.Sprintf("Fig 12(c)(d): obfuscation row of interval %d — top-5 targets and spread",
			r.SourceInterval),
		Header: []string{"eps", "top targets (interval:prob)", "expected spread (km)"},
	}
	heat.AddRow(fmt.Sprintf("%.3g", r.HeatEpsHigh), topTargets(r.RowHigh, 5), fmt.Sprintf("%.4g", r.SpreadHigh))
	heat.AddRow(fmt.Sprintf("%.3g", r.HeatEpsLow), topTargets(r.RowLow, 5), fmt.Sprintf("%.4g", r.SpreadLow))
	return []*Table{sweep, heat}
}

func topTargets(row []float64, n int) string {
	idx := make([]int, len(row))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
	if n > len(idx) {
		n = len(idx)
	}
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d:%.3f", idx[i], row[idx[i]])
	}
	return out
}

package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geoi"
)

// Fig13aResult reproduces Fig. 13(a): the number of Geo-I constraints
// with and without constraint reduction for each δ, plus the M/K ratio
// the paper quotes (aux edges only 19–57 % above the interval count).
type Fig13aResult struct {
	Deltas    []float64
	K         []int
	M         []int // auxiliary-graph edges
	Full      []int64
	Reduced   []int64
	Reduction []float64 // fraction removed
}

// Fig13a counts constraints for the δ sweep.
func Fig13a(cfg Config) (*Fig13aResult, error) {
	prm := cfg.params()
	res := &Fig13aResult{Deltas: prm.deltaSweep}
	for _, delta := range prm.deltaSweep {
		e, err := newEnvDelta(cfg, delta)
		if err != nil {
			return nil, err
		}
		aux := e.Part.AuxGraph()
		red := geoi.Reduce(e.Part, aux, prm.radius)
		full := geoi.CountFull(e.Part, prm.radius)
		reduced := red.NumRows(e.Part.K())
		res.K = append(res.K, e.Part.K())
		res.M = append(res.M, aux.NumEdges())
		res.Full = append(res.Full, full)
		res.Reduced = append(res.Reduced, reduced)
		res.Reduction = append(res.Reduction, 1-float64(reduced)/float64(full))
	}
	return res, nil
}

// Tables renders the figure.
func (r *Fig13aResult) Tables() []*Table {
	t := &Table{
		Title:  "Fig 13(a): Geo-I constraints with and without constraint reduction",
		Header: []string{"delta (km)", "K", "M", "M/K", "full rows", "reduced rows", "removed"},
	}
	for i, d := range r.Deltas {
		t.AddRow(
			fmt.Sprintf("%.3g", d),
			fmt.Sprintf("%d", r.K[i]),
			fmt.Sprintf("%d", r.M[i]),
			fmt.Sprintf("%.2f", float64(r.M[i])/float64(r.K[i])),
			fmt.Sprintf("%d", r.Full[i]),
			fmt.Sprintf("%d", r.Reduced[i]),
			fmt.Sprintf("%.2f%%", 100*r.Reduction[i]),
		)
	}
	return []*Table{t}
}

// Fig13Result reproduces Figs. 13(b), (e), (f): the convergence of
// min_l ζ_l over CG iterations, the approximation ratio against the
// Theorem 4.4 dual bound, and the iteration/time cost, per δ.
type Fig13Result struct {
	Deltas []float64
	// Zetas[d] is the min ζ trace of the (tight) solve at Deltas[d].
	Zetas [][]float64
	// Ratio[d] is ETDD / dual bound of the tight solve.
	Ratio []float64
	// XiIters[d] and XiTime[d] are the iteration count and wall time of
	// the production solve with the ξ threshold.
	XiIters []int
	XiTime  []time.Duration
	// XiETDD[d] is the production solve's quality loss.
	XiETDD []float64
}

// Fig13 runs per-δ tight and thresholded solves with the fleet prior.
func Fig13(cfg Config) (*Fig13Result, error) {
	prm := cfg.params()
	res := &Fig13Result{Deltas: prm.deltaSweep}
	for _, delta := range prm.deltaSweep {
		e, err := newEnvDelta(cfg, delta)
		if err != nil {
			return nil, err
		}
		pr, err := e.fleetProblem(prm.eps)
		if err != nil {
			return nil, err
		}

		var zetas []float64
		tight := prm.cgTight
		tight.OnIteration = func(_ int, it core.CGIteration) {
			zetas = append(zetas, it.MinZeta)
		}
		ts, err := core.SolveCG(pr, tight)
		if err != nil {
			return nil, fmt.Errorf("tight delta %v: %w", delta, err)
		}
		res.Zetas = append(res.Zetas, zetas)
		res.Ratio = append(res.Ratio, ts.ETDD/ts.LowerBound)

		xs, err := core.SolveCG(pr, prm.cg)
		if err != nil {
			return nil, fmt.Errorf("xi delta %v: %w", delta, err)
		}
		res.XiIters = append(res.XiIters, len(xs.Iterations))
		res.XiTime = append(res.XiTime, xs.Elapsed)
		res.XiETDD = append(res.XiETDD, xs.ETDD)
	}
	return res, nil
}

// Tables renders the figure.
func (r *Fig13Result) Tables() []*Table {
	conv := &Table{
		Title:  "Fig 13(b): CG convergence — min ζ per iteration",
		Header: []string{"delta (km)", "iterations", "min ζ trace (first 10)"},
	}
	for i, d := range r.Deltas {
		trace := ""
		for j, z := range r.Zetas[i] {
			if j == 10 {
				trace += " …"
				break
			}
			if j > 0 {
				trace += " "
			}
			trace += fmt.Sprintf("%.3g", z)
		}
		conv.AddRow(fmt.Sprintf("%.3g", d), fmt.Sprintf("%d", len(r.Zetas[i])), trace)
	}

	rest := &Table{
		Title:  "Fig 13(e)(f): CG approximation ratio, iterations and time",
		Header: []string{"delta (km)", "approx ratio", "ξ-solve iterations", "ξ-solve time", "ξ-solve ETDD"},
	}
	for i, d := range r.Deltas {
		rest.AddRow(
			fmt.Sprintf("%.3g", d),
			fmt.Sprintf("%.4f", r.Ratio[i]),
			fmt.Sprintf("%d", r.XiIters[i]),
			r.XiTime[i].Round(time.Millisecond).String(),
			fmt.Sprintf("%.4g", r.XiETDD[i]),
		)
	}
	return []*Table{conv, rest}
}

// Fig13cdResult reproduces Fig. 13(c)(d): iteration count and achieved
// ETDD as the termination threshold ξ rises toward 0.
type Fig13cdResult struct {
	Deltas []float64
	Xis    []float64
	// Iters[d][x] and ETDD[d][x] index by δ then ξ.
	Iters [][]int
	ETDD  [][]float64
}

// Fig13cd sweeps the ξ threshold. The ξ grid is denser near zero than
// the paper's −1.0…−0.1 because our laptop-scale instances have smaller
// cost magnitudes: their first-round min ζ sits around −1…−0.05, so the
// interesting knee lives at correspondingly smaller |ξ|.
func Fig13cd(cfg Config) (*Fig13cdResult, error) {
	prm := cfg.params()
	xis := []float64{-1.0, -0.3, -0.1, -0.03, -0.01, -0.003}
	if cfg.Scale == Full {
		xis = []float64{-1.0, -0.6, -0.3, -0.1, -0.06, -0.03, -0.01, -0.006, -0.003}
	}
	deltas := prm.deltaSweep[1:] // the finer δ show the knee
	res := &Fig13cdResult{Deltas: deltas, Xis: xis}
	for _, delta := range deltas {
		e, err := newEnvDelta(cfg, delta)
		if err != nil {
			return nil, err
		}
		pr, err := e.fleetProblem(prm.eps)
		if err != nil {
			return nil, err
		}
		iters := make([]int, len(xis))
		etdds := make([]float64, len(xis))
		for xi, x := range xis {
			opts := prm.cg
			opts.Xi = x
			opts.RelGap = 0                               // ξ is the only stopping rule here
			opts.MaxIterations = 4 * prm.cg.MaxIterations // let small |ξ| run its course
			sol, err := core.SolveCG(pr, opts)
			if err != nil {
				return nil, fmt.Errorf("delta %v xi %v: %w", delta, x, err)
			}
			iters[xi] = len(sol.Iterations)
			etdds[xi] = sol.ETDD
		}
		res.Iters = append(res.Iters, iters)
		res.ETDD = append(res.ETDD, etdds)
	}
	return res, nil
}

// Tables renders the figure.
func (r *Fig13cdResult) Tables() []*Table {
	t := &Table{
		Title:  "Fig 13(c)(d): iterations and ETDD vs threshold ξ",
		Header: []string{"delta (km)", "ξ", "iterations", "ETDD"},
	}
	for di, d := range r.Deltas {
		for xi, x := range r.Xis {
			t.AddRowF(d, x, r.Iters[di][xi], r.ETDD[di][xi])
		}
	}
	return []*Table{t}
}

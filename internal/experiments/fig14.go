package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/planar"
)

// Fig14Result reproduces Fig. 14: total true traveling distance of the
// multi-vehicle task assignment when the server matches tasks to
// vehicles using *estimated* (obfuscated-location) costs, with the
// vehicles obfuscated by our mechanism versus 2Db, across ε. A
// no-obfuscation reference shows the unavoidable floor.
type Fig14Result struct {
	Eps      []float64
	Ours     []float64
	Planar   []float64
	NoObf    float64
	Vehicles int
	Tasks    int
	Rounds   int
}

// Fig14 runs the assignment simulation.
func Fig14(cfg Config) (*Fig14Result, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	prm := e.prm
	rounds := 10
	if cfg.Scale == Full {
		rounds = 30
	}
	res := &Fig14Result{
		Eps:      prm.epsSweep,
		Vehicles: prm.vehicles14,
		Tasks:    prm.tasks14,
		Rounds:   rounds,
	}

	fleetPrior := e.PriorQ // tasks and vehicles share the fleet density

	for _, eps := range prm.epsSweep {
		pr, err := e.fleetProblem(eps)
		if err != nil {
			return nil, err
		}
		ours, err := core.SolveCG(pr, prm.cg)
		if err != nil {
			return nil, fmt.Errorf("ours eps %v: %w", eps, err)
		}
		twoDb, err := planar.Solve2D(e.Part, eps, prm.radius, pr.PriorP, planar.Options{CG: prm.cg})
		if err != nil {
			return nil, fmt.Errorf("2Db eps %v: %w", eps, err)
		}

		rng := rand.New(rand.NewSource(cfg.Seed + 1400))
		var oursTot, planarTot, noObfTot float64
		for round := 0; round < rounds; round++ {
			vehicles := samplePrior(rng, e.Part, fleetPrior, prm.vehicles14)
			tasks := samplePrior(rng, e.Part, e.PriorQ, prm.tasks14)
			noObfTot += assignCost(e, vehicles, vehicles, tasks)

			oursObf := obfuscate(rng, ours.Mechanism, vehicles)
			oursTot += assignCost(e, vehicles, oursObf, tasks)

			planarObf := obfuscate(rng, twoDb.Mechanism, vehicles)
			planarTot += assignCost(e, vehicles, planarObf, tasks)
		}
		res.Ours = append(res.Ours, oursTot/float64(rounds))
		res.Planar = append(res.Planar, planarTot/float64(rounds))
		// The no-obfuscation floor is ε-independent; keep the latest
		// per-sweep average (same distribution every pass).
		res.NoObf = noObfTot / float64(rounds)
	}
	return res, nil
}

// samplePrior draws n interval indices from a prior distribution over
// the partition's intervals.
func samplePrior(rng *rand.Rand, part *discretize.Partition, prior []float64, n int) []int {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		acc := 0.0
		idx := part.K() - 1
		for j, p := range prior {
			acc += p
			if u <= acc {
				idx = j
				break
			}
		}
		out[i] = idx
	}
	return out
}

// obfuscate samples one obfuscated interval per vehicle.
func obfuscate(rng *rand.Rand, m *core.Mechanism, vehicles []int) []int {
	out := make([]int, len(vehicles))
	for i, v := range vehicles {
		out[i] = m.SampleInterval(rng, v)
	}
	return out
}

// assignCost matches tasks to vehicles by estimated cost (reported
// intervals) and returns the true total traveling distance of the
// matched vehicles to their tasks.
func assignCost(e *env, trueV, reportedV, tasks []int) float64 {
	est := make([][]float64, len(tasks))
	for t, task := range tasks {
		est[t] = make([]float64, len(reportedV))
		for v, rep := range reportedV {
			est[t][v] = e.Part.MidDist(rep, task)
		}
	}
	match, _, err := assign.Hungarian(est)
	if err != nil {
		panic("experiments: assignment failed: " + err.Error())
	}
	total := 0.0
	for t, v := range match {
		total += e.Part.MidDist(trueV[v], tasks[t])
	}
	return total
}

// Tables renders the figure.
func (r *Fig14Result) Tables() []*Table {
	t := &Table{
		Title: fmt.Sprintf("Fig 14: total true travel distance, %d tasks / %d vehicles (%d rounds)",
			r.Tasks, r.Vehicles, r.Rounds),
		Header: []string{"eps (1/km)", "ours (km)", "2Db (km)", "no obfuscation (km)"},
	}
	for i, eps := range r.Eps {
		t.AddRowF(eps, r.Ours[i], r.Planar[i], r.NoObf)
	}
	return []*Table{t}
}

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/trace"
)

// Fig15Result reproduces Fig. 15: the adversary's error under the
// independent Bayesian attack versus the spatial-correlation-aware HMM
// attack as the report interval grows (paper: 70–105 s, built by taking
// one of every n≈10–15 records of the 7-second trace). Short intervals
// correlate consecutive reports strongly, so the HMM attack infers
// better (lower AdvError = less privacy); past ≈90 s the two coincide.
type Fig15Result struct {
	IntervalSecs []float64
	BayesErr     []float64
	HMMErr       []float64
}

// Fig15 runs both attacks against the fleet mechanism.
func Fig15(cfg Config) (*Fig15Result, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	prm := e.prm
	pr, err := e.fleetProblem(prm.eps)
	if err != nil {
		return nil, err
	}
	sol, err := core.SolveCG(pr, prm.cg)
	if err != nil {
		return nil, err
	}
	mech := sol.Mechanism
	bayes, err := attack.NewBayes(mech, pr.PriorP)
	if err != nil {
		return nil, err
	}

	res := &Fig15Result{}
	rng := rand.New(rand.NewSource(cfg.Seed + 1500))
	for _, stride := range prm.strides15 {
		// Learn the stride-specific transition matrix from the whole
		// fleet (the floating-vehicle data of Eq. 5).
		var seqs [][]int
		for _, tr := range e.All {
			if s := trace.IntervalSequence(e.Part, tr, stride); len(s) > 1 {
				seqs = append(seqs, s)
			}
		}
		trans := attack.LearnTransitions(e.Part.K(), seqs, 1e-3)
		hmm, err := attack.NewHMM(mech, pr.PriorP, trans)
		if err != nil {
			return nil, err
		}

		var bTot, hTot float64
		var n int
		for _, cab := range e.Cabs {
			truth := trace.IntervalSequence(e.Part, cab, stride)
			if len(truth) < 3 {
				continue
			}
			reports := make([]int, len(truth))
			for t, i := range truth {
				reports[t] = mech.SampleInterval(rng, i)
			}
			hTot += hmm.SequenceError(truth, reports) * float64(len(truth))
			for t, i := range truth {
				bTot += e.Part.MidDistMin(i, bayes.Estimate(reports[t]))
			}
			n += len(truth)
		}
		if n == 0 {
			return nil, fmt.Errorf("experiments: stride %d leaves no usable sequences", stride)
		}
		res.IntervalSecs = append(res.IntervalSecs, float64(stride)*e.prm.sim.RecordEvery)
		res.BayesErr = append(res.BayesErr, bTot/float64(n))
		res.HMMErr = append(res.HMMErr, hTot/float64(n))
	}
	return res, nil
}

// Tables renders the figure.
func (r *Fig15Result) Tables() []*Table {
	t := &Table{
		Title:  "Fig 15: AdvError under Bayes vs HMM attack by report interval",
		Header: []string{"report interval (s)", "AdvError Bayes (km)", "AdvError HMM (km)"},
	}
	for i, s := range r.IntervalSecs {
		t.AddRowF(s, r.BayesErr[i], r.HMMErr[i])
	}
	return []*Table{t}
}

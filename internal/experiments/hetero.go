package experiments

import (
	"math"

	"repro/internal/attack"
	"repro/internal/core"
)

// HeteroResult covers the paper's stated future-work scenario
// (Section 7): workers with region-dependent QoS/privacy preferences.
// One privacy-sensitive neighbourhood (a suburb spur) keeps a strict ε
// while the rest of the city runs loose. The table compares the
// heterogeneous mechanism against enforcing either ε uniformly: the
// heterogeneous solve should protect the sensitive zone like the strict
// mechanism (high zone AdvError) at close to the loose mechanism's
// city-wide quality loss.
//
// Geo-I requirements compose along roads, so strictness necessarily
// bleeds some distance past the zone boundary (geoi.ReduceHetero keeps,
// per adjacency, the strictest requirement of any protected pair routed
// over it); a finite protection radius keeps that bleed local.
type HeteroResult struct {
	EpsZone, EpsElse float64
	ZoneIntervals    int
	// Rows: uniform-strict, uniform-loose, heterogeneous.
	Names   []string
	ETDD    []float64
	ZoneAdv []float64 // adversary error on reports from the zone
	CityAdv []float64 // adversary error overall
}

// Hetero runs the comparison on the fleet problem.
func Hetero(cfg Config) (*HeteroResult, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	prm := e.prm
	const strict, loose = 2.0, 8.0
	const radius = 0.5

	// The sensitive zone: every interval within 0.45 km travel distance
	// of the interval farthest from the centre (a suburb spur tip).
	k := e.Part.K()
	tip := 0
	for i := 1; i < k; i++ {
		if e.Part.Intervals[i].Mid().Point(e.G).Norm() >
			e.Part.Intervals[tip].Mid().Point(e.G).Norm() {
			tip = i
		}
	}
	zone := make([]bool, k)
	epsAt := make([]float64, k)
	nZone := 0
	for i := 0; i < k; i++ {
		if e.Part.MidDistMin(tip, i) < 0.45 {
			zone[i] = true
			epsAt[i] = strict
			nZone++
		} else {
			epsAt[i] = loose
		}
	}

	res := &HeteroResult{
		EpsZone:       strict,
		EpsElse:       loose,
		ZoneIntervals: nZone,
		Names:         []string{"uniform strict", "uniform loose", "heterogeneous"},
	}
	prior := e.PriorQ
	configs := []core.Config{
		{Epsilon: strict, Radius: radius, PriorP: prior, PriorQ: prior},
		{Epsilon: loose, Radius: radius, PriorP: prior, PriorQ: prior},
		{Epsilon: math.Sqrt(strict * loose), Radius: radius, PriorP: prior, PriorQ: prior, EpsilonAt: epsAt},
	}
	for _, c := range configs {
		pr, err := core.NewProblem(e.Part, c)
		if err != nil {
			return nil, err
		}
		// The heterogeneous solve starts from a MinEps-flat seed and
		// needs more pricing rounds than the scale default to sharpen
		// the loose region.
		opts := prm.cg
		opts.MaxIterations = 3 * prm.cg.MaxIterations
		opts.Xi = prm.cg.Xi / 4
		sol, err := core.SolveCG(pr, opts)
		if err != nil {
			return nil, err
		}
		adv, err := attack.NewBayes(sol.Mechanism, prior)
		if err != nil {
			return nil, err
		}
		res.ETDD = append(res.ETDD, sol.ETDD)
		res.ZoneAdv = append(res.ZoneAdv, zoneAdvError(pr, sol.Mechanism, adv, zone))
		res.CityAdv = append(res.CityAdv, adv.AdvError())
	}
	return res, nil
}

// zoneAdvError is the adversary's expected error conditioned on the true
// location lying inside the sensitive zone.
func zoneAdvError(pr *core.Problem, m *core.Mechanism, adv *attack.Bayes, zone []bool) float64 {
	k := pr.Part.K()
	num, den := 0.0, 0.0
	for i := 0; i < k; i++ {
		if !zone[i] || pr.PriorP[i] == 0 {
			continue
		}
		den += pr.PriorP[i]
		for j := 0; j < k; j++ {
			p := pr.PriorP[i] * m.Prob(i, j)
			if p > 0 {
				num += p * pr.Part.MidDistMin(i, adv.Estimate(j))
			}
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// Tables renders the extension.
func (r *HeteroResult) Tables() []*Table {
	t := &Table{
		Title: "Extension (paper §7 future work): one privacy-sensitive zone " +
			"(strict ε) in a loose city",
		Header: []string{"strategy", "ETDD total", "AdvError in zone", "AdvError city-wide"},
	}
	for i, name := range r.Names {
		t.AddRowF(name, r.ETDD[i], r.ZoneAdv[i], r.CityAdv[i])
	}
	return []*Table{t}
}

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/planar"
	"repro/internal/realworld"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// pilotMaps builds the pilot-study maps at the configured scale.
func pilotMaps(cfg Config) (campus, regionA, regionB *roadnet.Graph) {
	rng := rand.New(rand.NewSource(cfg.Seed + 1700))
	if cfg.Scale == Full {
		return roadnet.Campus(rng), roadnet.RegionA(rng), roadnet.RegionB(rng)
	}
	campus = roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 3, Cols: 3, Spacing: 0.3, OneWayFrac: 0.4, WeightJitter: 0.15,
	})
	// The two regions cover the same spatial extent (≈0.9 × 0.45 km) so
	// that topology — block density and one-way streets — is the only
	// variable, as in the paper's Glassboro comparison.
	regionA = roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 2, Cols: 3, Spacing: 0.45, OneWayFrac: 0, WeightJitter: 0.25,
	})
	regionB = roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 4, Cols: 7, Spacing: 0.15, OneWayFrac: 0.8, WeightJitter: 0.1,
	})
	return campus, regionA, regionB
}

func pilotConfig(cfg Config) realworld.Config {
	prm := cfg.params()
	rc := realworld.DefaultConfig()
	rc.Groups = prm.groups
	rc.Epsilon = prm.eps
	rc.CG = prm.cg
	if cfg.Scale == Quick {
		// δ stays below the downtown block length so every block
		// carries its own intervals.
		rc.Delta = 0.12
		rc.DriveTime = 600
	}
	return rc
}

// Fig17Result reproduces Fig. 17: per-group empirical ETDD on the campus
// map against the Theorem 4.4 lower bound (paper: approximation ratio up
// to 1.14 across 20 groups).
type Fig17Result struct {
	Pilot *realworld.Result
}

// Fig17 runs the campus pilot. The campus map is small, so the tight
// solver profile is affordable and gives the figure a meaningful dual
// bound.
func Fig17(cfg Config) (*Fig17Result, error) {
	campus, _, _ := pilotMaps(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	rc := pilotConfig(cfg)
	rc.CG = cfg.params().cgTight
	res, err := realworld.Run(rng, campus, rc)
	if err != nil {
		return nil, err
	}
	return &Fig17Result{Pilot: res}, nil
}

// Tables renders the figure.
func (r *Fig17Result) Tables() []*Table {
	t := &Table{
		Title:  "Fig 17: campus pilot — empirical ETDD per group vs lower bound",
		Header: []string{"group", "ETDD (km)", "reports", "lower bound (km)", "model ETDD (km)"},
	}
	for i, g := range r.Pilot.Groups {
		t.AddRowF(i+1, g.ETDD, g.Reports, r.Pilot.LowerBound, r.Pilot.ModelETDD)
	}
	return []*Table{t}
}

// Fig19Result reproduces Fig. 19: the rural Region A versus the downtown
// Region B under our mechanism — the paper reports downtown ETDD and
// AdvError several times the rural values.
type Fig19Result struct {
	A, B *realworld.Result
}

// Fig19 runs both regional pilots.
func Fig19(cfg Config) (*Fig19Result, error) {
	_, ra, rb := pilotMaps(cfg)
	rc := pilotConfig(cfg)
	rngA := rand.New(rand.NewSource(cfg.Seed + 19))
	a, err := realworld.Run(rngA, ra, rc)
	if err != nil {
		return nil, fmt.Errorf("region A: %w", err)
	}
	rngB := rand.New(rand.NewSource(cfg.Seed + 20))
	rcB := rc
	rcB.Delta = rc.Delta / 2 // downtown blocks are shorter
	b, err := realworld.Run(rngB, rb, rcB)
	if err != nil {
		return nil, fmt.Errorf("region B: %w", err)
	}
	return &Fig19Result{A: a, B: b}, nil
}

// Tables renders the figure.
func (r *Fig19Result) Tables() []*Table {
	t := &Table{
		Title:  "Fig 19: Region A (rural) vs Region B (downtown), our mechanism",
		Header: []string{"region", "mean ETDD (km)", "mean AdvError (km)"},
	}
	t.AddRowF("A (rural)", r.A.MeanETDD(), r.A.MeanAdvError())
	t.AddRowF("B (downtown)", r.B.MeanETDD(), r.B.MeanAdvError())
	return []*Table{t}
}

// Fig20Result reproduces Fig. 20: ETDD and AdvError as the number of
// deployed tasks grows — ETDD falls (nearer tasks), AdvError is flat
// (the attack ignores tasks).
type Fig20Result struct {
	Tasks []int
	// Indexed by region (0 = A, 1 = B) then task count.
	ETDD   [2][]float64 // distortion |d(p,q*) − d(p̃,q*)|
	Travel [2][]float64 // realized d(p, q*) to the assigned task
	Adv    [2][]float64
}

// Fig20 reuses one mechanism per region and varies the deployment with
// proper common random numbers: each group has one drive, one fixed
// report sequence and one task pool; task count n uses the pool's first
// n entries. Only the deployment size varies, so the paper's trend —
// ETDD falls with more tasks, AdvError stays flat — is not swamped by
// sampling noise.
func Fig20(cfg Config) (*Fig20Result, error) {
	_, ra, rb := pilotMaps(cfg)
	rc := pilotConfig(cfg)
	taskCounts := []int{5, 6, 7, 8, 9, 10}
	if cfg.Scale == Quick {
		taskCounts = []int{5, 7, 10}
	}
	maxTasks := taskCounts[len(taskCounts)-1]
	res := &Fig20Result{Tasks: taskCounts}

	for ri, g := range []*roadnet.Graph{ra, rb} {
		rng := rand.New(rand.NewSource(cfg.Seed + 2000 + int64(ri)))
		pilot, err := realworld.Run(rng, g, rc)
		if err != nil {
			return nil, err
		}
		part := pilot.Mechanism.Part
		pr, err := core.NewProblem(part, core.Config{Epsilon: rc.Epsilon, Radius: rc.Radius})
		if err != nil {
			return nil, err
		}
		adv, err := attack.NewBayes(pilot.Mechanism, pr.PriorP)
		if err != nil {
			return nil, err
		}

		sumETDD := make([]float64, len(taskCounts))
		sumTravel := make([]float64, len(taskCounts))
		sumAdv := make([]float64, len(taskCounts))
		reports := 0
		mrng := rand.New(rand.NewSource(cfg.Seed + 2500 + int64(ri)))
		for grp := 0; grp < rc.Groups; grp++ {
			pool := make([]roadnet.Location, maxTasks)
			for i := range pool {
				pool[i] = roadnet.RandomLocation(mrng, g)
			}
			traces, err := trace.Simulate(mrng, g, trace.SimConfig{
				Vehicles: 1, Duration: rc.DriveTime, RecordEvery: rc.ReportEvery,
				SpeedKmh: 30, CenterBias: 0.5,
			})
			if err != nil {
				return nil, err
			}
			for _, rec := range traces[0].Records {
				truth := rec.Loc
				obf := pilot.Mechanism.Sample(mrng, truth)
				reports++
				for ni, n := range taskCounts {
					q := nearestTask(part, obf, pool[:n])
					dTrue := part.TravelDistLoc(truth, q)
					d := dTrue - part.TravelDistLoc(obf, q)
					if d < 0 {
						d = -d
					}
					sumETDD[ni] += d
					sumTravel[ni] += dTrue
				}
				ti, oi := part.Locate(truth), part.Locate(obf)
				e := part.MidDistMin(ti, adv.Estimate(oi))
				for ni := range taskCounts {
					sumAdv[ni] += e
				}
			}
		}
		for ni := range taskCounts {
			res.ETDD[ri] = append(res.ETDD[ri], sumETDD[ni]/float64(reports))
			res.Travel[ri] = append(res.Travel[ri], sumTravel[ni]/float64(reports))
			res.Adv[ri] = append(res.Adv[ri], sumAdv[ni]/float64(reports))
		}
	}
	return res, nil
}

// nearestTask returns the pool task closest to the reported location —
// the server's assignment rule.
func nearestTask(part *discretize.Partition, reported roadnet.Location, pool []roadnet.Location) roadnet.Location {
	best, bestD := pool[0], part.TravelDistMinLoc(reported, pool[0])
	for _, q := range pool[1:] {
		if d := part.TravelDistMinLoc(reported, q); d < bestD {
			best, bestD = q, d
		}
	}
	return best
}

// Tables renders the figure. The paper reports ETDD falling with more
// tasks and explains it by the shrinking distance to the nearest task —
// which is the realized assigned-task travel (falling here too). The
// distortion |Δd| itself *rises* with task density under the
// nearest-to-report assignment rule: a nearby assigned task turns the
// whole obfuscation displacement into estimation error, while a far
// task attenuates it. Both columns are shown.
func (r *Fig20Result) Tables() []*Table {
	t := &Table{
		Title: "Fig 20: quality and privacy vs number of tasks",
		Header: []string{"region", "tasks", "assigned travel (km)",
			"distortion |Δd| (km)", "AdvError (km)"},
	}
	names := []string{"A", "B"}
	for ri := 0; ri < 2; ri++ {
		for ti, n := range r.Tasks {
			t.AddRowF(names[ri], n, r.Travel[ri][ti], r.ETDD[ri][ti], r.Adv[ri][ti])
		}
	}
	return []*Table{t}
}

// Fig21Result reproduces Fig. 21: ours versus the 2D-plane baseline in
// both pilot regions (paper: ours −7.4 %/−10.7 % ETDD and
// +5.2 %/+8.6 % AdvError in regions A/B).
type Fig21Result struct {
	Regions    []string
	OursETDD   []float64
	PlanarETDD []float64
	OursAdv    []float64
	PlanarAdv  []float64
}

// Fig21 runs the per-region comparison with a shared test protocol.
func Fig21(cfg Config) (*Fig21Result, error) {
	_, ra, rb := pilotMaps(cfg)
	rc := pilotConfig(cfg)
	res := &Fig21Result{Regions: []string{"A", "B"}}
	for ri, g := range []*roadnet.Graph{ra, rb} {
		rcR := rc
		rng := rand.New(rand.NewSource(cfg.Seed + 2100 + int64(ri)))
		pilot, err := realworld.Run(rng, g, rcR)
		if err != nil {
			return nil, err
		}
		pr, err := core.NewProblem(pilot.Mechanism.Part, core.Config{Epsilon: rcR.Epsilon, Radius: rcR.Radius})
		if err != nil {
			return nil, err
		}
		twoDb, err := planar.Solve2D(pilot.Mechanism.Part, rcR.Epsilon, rcR.Radius, nil, planar.Options{CG: rcR.CG})
		if err != nil {
			return nil, err
		}

		measure := func(m *core.Mechanism) (float64, float64, error) {
			var etdd, adv float64
			for grp := 0; grp < rcR.Groups; grp++ {
				gr, err := realworld.RunGroup(rng, pr, m, rcR)
				if err != nil {
					return 0, 0, err
				}
				etdd += gr.ETDD
				adv += gr.AdvError
			}
			n := float64(rcR.Groups)
			return etdd / n, adv / n, nil
		}
		oe, oa, err := measure(pilot.Mechanism)
		if err != nil {
			return nil, err
		}
		pe, pa, err := measure(twoDb.Mechanism)
		if err != nil {
			return nil, err
		}
		res.OursETDD = append(res.OursETDD, oe)
		res.OursAdv = append(res.OursAdv, oa)
		res.PlanarETDD = append(res.PlanarETDD, pe)
		res.PlanarAdv = append(res.PlanarAdv, pa)
	}
	return res, nil
}

// Tables renders the figure.
func (r *Fig21Result) Tables() []*Table {
	t := &Table{
		Title:  "Fig 21: ours vs 2Db in the pilot regions",
		Header: []string{"region", "ETDD ours", "ETDD 2Db", "AdvError ours", "AdvError 2Db"},
	}
	for i, name := range r.Regions {
		t.AddRowF(name, r.OursETDD[i], r.PlanarETDD[i], r.OursAdv[i], r.PlanarAdv[i])
	}
	return []*Table{t}
}

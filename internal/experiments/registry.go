package experiments

import (
	"fmt"
	"sort"
)

// Tabler is any figure result that renders to text tables.
type Tabler interface {
	Tables() []*Table
}

// Runner regenerates one paper figure.
type Runner func(Config) (Tabler, error)

// Registry maps figure identifiers to their runners.
var Registry = map[string]Runner{
	"fig9":     func(c Config) (Tabler, error) { return Fig9(c) },
	"fig10":    func(c Config) (Tabler, error) { return Fig10(c) },
	"fig11":    func(c Config) (Tabler, error) { return Fig11(c) },
	"fig12":    func(c Config) (Tabler, error) { return Fig12(c) },
	"fig13a":   func(c Config) (Tabler, error) { return Fig13a(c) },
	"fig13":    func(c Config) (Tabler, error) { return Fig13(c) },
	"fig13cd":  func(c Config) (Tabler, error) { return Fig13cd(c) },
	"fig14":    func(c Config) (Tabler, error) { return Fig14(c) },
	"fig15":    func(c Config) (Tabler, error) { return Fig15(c) },
	"fig17":    func(c Config) (Tabler, error) { return Fig17(c) },
	"fig19":    func(c Config) (Tabler, error) { return Fig19(c) },
	"fig20":    func(c Config) (Tabler, error) { return Fig20(c) },
	"fig21":    func(c Config) (Tabler, error) { return Fig21(c) },
	"tradeoff": func(c Config) (Tabler, error) { return Tradeoff(c) },
	"hetero":   func(c Config) (Tabler, error) { return Hetero(c) },
}

// Names returns the registered figure identifiers, sorted.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for name := range Registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes one figure by name.
func Run(name string, cfg Config) (Tabler, error) {
	r, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", name, Names())
	}
	return r(cfg)
}

// Package experiments regenerates every figure of the paper's evaluation
// section (Section 5) on the synthetic substrates. Each FigNN function
// runs one experiment and returns typed results plus text tables that
// print the same rows/series the paper plots; cmd/experiments and the
// repository benchmarks both drive these runners.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment output: one figure panel's series.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowF appends a row, formatting each value with %v and floats
// compactly.
func (t *Table) AddRowF(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package experiments

import (
	"repro/internal/core"
)

// TradeoffResult covers the Section 4.4 analysis: the achieved quality
// loss against the closed-form Proposition 4.5 lower bound across ε. The
// bound decreases monotonically with ε and never exceeds the optimum.
type TradeoffResult struct {
	Eps      []float64
	ETDD     []float64
	Prop45   []float64
	DualBand []float64 // the Theorem 4.4 dual bound for comparison
}

// Tradeoff sweeps ε on the fleet problem.
func Tradeoff(cfg Config) (*TradeoffResult, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	prm := e.prm
	res := &TradeoffResult{Eps: prm.epsSweep}
	for _, eps := range prm.epsSweep {
		pr, err := e.fleetProblem(eps)
		if err != nil {
			return nil, err
		}
		sol, err := core.SolveCG(pr, prm.cg)
		if err != nil {
			return nil, err
		}
		res.ETDD = append(res.ETDD, sol.ETDD)
		res.Prop45 = append(res.Prop45, pr.TradeoffLowerBound(eps))
		res.DualBand = append(res.DualBand, sol.LowerBound)
	}
	return res, nil
}

// Tables renders the analysis.
func (r *TradeoffResult) Tables() []*Table {
	t := &Table{
		Title:  "Section 4.4: QoS/privacy trade-off — ETDD vs lower bounds",
		Header: []string{"eps (1/km)", "ETDD (km)", "Prop 4.5 bound", "Thm 4.4 dual bound"},
	}
	for i, eps := range r.Eps {
		t.AddRowF(eps, r.ETDD[i], r.Prop45[i], r.DualBand[i])
	}
	return []*Table{t}
}

// Package faultinject is a process-wide registry of named failure
// points for chaos testing. Production code marks interesting sites with
//
//	if err := faultinject.At("core/cg/master"); err != nil { ... }
//
// and tests arm those sites with an error, a panic or a delay. The
// design constraint is zero overhead on the serving path when nothing is
// armed: At performs a single atomic load and returns nil before
// touching any lock, so leaving the calls compiled into release binaries
// costs one predictable branch.
//
// The registry is global (faults cross goroutine boundaries exactly like
// the failures they imitate), so tests that arm faults must not run in
// parallel with tests that assume a clean solver; arm in a defer-Reset
// pair.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what an armed site does. Exactly the non-zero actions
// fire, in order: Delay first (simulating a slow dependency), then Panic,
// then Err. A Fault with only a Delay returns nil after sleeping.
type Fault struct {
	// Delay is slept before anything else, simulating a stalled
	// dependency; combined with a caller deadline it manufactures
	// timeouts.
	Delay time.Duration
	// Panic, when non-nil, is raised via panic() — the hard-failure mode
	// (numeric breakdowns, index bugs) that panic-recovery layers must
	// absorb.
	Panic interface{}
	// Err, when non-nil, is returned from At — the soft-failure mode.
	Err error
	// Times bounds how often the fault fires before disarming itself;
	// 0 means every visit until Clear/Reset.
	Times int
}

var (
	// armed counts armed sites; At bails out on zero without locking.
	armed atomic.Int32

	mu    sync.Mutex
	sites map[string]*Fault
)

// Set arms site with f, replacing any previous fault at that site.
func Set(site string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*Fault)
	}
	if _, ok := sites[site]; !ok {
		armed.Add(1)
	}
	fc := f
	sites[site] = &fc
}

// Clear disarms site; clearing an unarmed site is a no-op.
func Clear(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[site]; ok {
		delete(sites, site)
		armed.Add(-1)
	}
}

// Reset disarms every site.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Store(0)
	sites = nil
}

// At visits a failure point: it fires the fault armed at site (sleeping,
// panicking or returning its error) or returns nil. The fast path — no
// site armed anywhere — is a single atomic load.
func At(site string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	f, ok := sites[site]
	if ok && f.Times > 0 {
		f.Times--
		if f.Times == 0 {
			delete(sites, site)
			armed.Add(-1)
		}
	}
	mu.Unlock()
	if !ok {
		return nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	return f.Err
}

package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNil(t *testing.T) {
	Reset()
	if err := At("anything"); err != nil {
		t.Fatalf("unarmed site returned %v", err)
	}
}

func TestErrorFault(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set("a", Fault{Err: boom})
	if err := At("a"); !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	// Other sites stay clean while one is armed.
	if err := At("b"); err != nil {
		t.Fatalf("unarmed sibling site returned %v", err)
	}
	Clear("a")
	if err := At("a"); err != nil {
		t.Fatalf("cleared site returned %v", err)
	}
}

func TestPanicFault(t *testing.T) {
	defer Reset()
	Set("p", Fault{Panic: "cholesky broke"})
	defer func() {
		if r := recover(); r != "cholesky broke" {
			t.Fatalf("recovered %v", r)
		}
	}()
	_ = At("p")
	t.Fatal("At did not panic")
}

func TestDelayFault(t *testing.T) {
	defer Reset()
	Set("d", Fault{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := At("d"); err != nil {
		t.Fatalf("delay-only fault returned %v", err)
	}
	if e := time.Since(start); e < 25*time.Millisecond {
		t.Fatalf("delay fault slept only %v", e)
	}
}

func TestTimesDisarms(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set("t", Fault{Err: boom, Times: 2})
	for i := 0; i < 2; i++ {
		if err := At("t"); !errors.Is(err, boom) {
			t.Fatalf("firing %d: got %v", i, err)
		}
	}
	if err := At("t"); err != nil {
		t.Fatalf("exhausted fault still fired: %v", err)
	}
}

// TestConcurrentVisits exercises the registry under the race detector:
// many goroutines visiting armed and unarmed sites while another arms
// and clears.
func TestConcurrentVisits(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			Set("hot", Fault{Err: boom})
			Clear("hot")
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				_ = At("hot")
				_ = At("cold")
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

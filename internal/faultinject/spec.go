package faultinject

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// EnvVar is the environment variable ArmFromEnv reads. It lets a parent
// process (the chaos harness, a shell) arm fault sites inside a real
// child binary: the child calls ArmFromEnv at startup and the armed
// sites behave exactly as if a test had called Set.
const EnvVar = "VLP_FAULTS"

// ParseSpec parses a comma-separated fault spec into per-site Faults.
// Each entry is
//
//	site=action[;opt=val...]
//
// where action is one of
//
//	err[:message]   return an error (default message "faultinject: <site>")
//	enospc          return an error wrapping syscall.ENOSPC (errors.Is-able)
//	delay:<dur>     sleep for a time.ParseDuration duration, then return nil
//	panic:<message> panic with the message
//	off             disarm the site (useful over the HTTP control surface)
//
// and the only option is times=N, bounding how often the fault fires.
// An "off" entry maps to a nil Fault pointer in the result.
func ParseSpec(spec string) (map[string]*Fault, error) {
	out := make(map[string]*Fault)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, rest, ok := strings.Cut(entry, "=")
		site = strings.TrimSpace(site)
		if !ok || site == "" {
			return nil, fmt.Errorf("faultinject: bad spec entry %q: want site=action", entry)
		}
		parts := strings.Split(rest, ";")
		action, arg, _ := strings.Cut(strings.TrimSpace(parts[0]), ":")
		var f *Fault
		switch action {
		case "err":
			msg := arg
			if msg == "" {
				msg = "faultinject: " + site
			}
			f = &Fault{Err: fmt.Errorf("%s", msg)}
		case "enospc":
			f = &Fault{Err: fmt.Errorf("faultinject: %s: %w", site, syscall.ENOSPC)}
		case "delay":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad delay in %q: %v", entry, err)
			}
			f = &Fault{Delay: d}
		case "panic":
			msg := arg
			if msg == "" {
				msg = "faultinject: " + site
			}
			f = &Fault{Panic: msg}
		case "off":
			f = nil
		default:
			return nil, fmt.Errorf("faultinject: unknown action %q in %q", action, entry)
		}
		for _, opt := range parts[1:] {
			k, v, _ := strings.Cut(strings.TrimSpace(opt), "=")
			switch k {
			case "times":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("faultinject: bad times in %q", entry)
				}
				if f != nil {
					f.Times = n
				}
			default:
				return nil, fmt.Errorf("faultinject: unknown option %q in %q", k, entry)
			}
		}
		out[site] = f
	}
	return out, nil
}

// ArmSpec parses spec and arms (or, for "off" entries, clears) each
// site. On a parse error nothing is armed.
func ArmSpec(spec string) error {
	faults, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	for site, f := range faults {
		if f == nil {
			Clear(site)
		} else {
			Set(site, *f)
		}
	}
	return nil
}

// ArmFromEnv arms the spec in $VLP_FAULTS, if set. Binaries that want
// to be chaos-testable call it once at startup; with the variable unset
// it is a no-op and the registry stays cold.
func ArmFromEnv(getenv func(string) string) error {
	spec := getenv(EnvVar)
	if spec == "" {
		return nil
	}
	return ArmSpec(spec)
}

// Sites returns the currently armed site names, sorted.
func Sites() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(sites))
	for s := range sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Handler returns an HTTP control surface for the registry, so a chaos
// harness can re-arm faults in a running process between phases:
//
//	GET    list armed sites as a JSON array
//	POST   arm the spec in the request body (ParseSpec grammar)
//	DELETE reset every site
//
// Mount it only behind an explicit opt-in (vlpserved requires
// VLP_FAULT_CTL=1): it exists to break the process that serves it.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(Sites())
		case http.MethodPost:
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := ArmSpec(string(body)); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodDelete:
			Reset()
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

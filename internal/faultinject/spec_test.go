package faultinject

import (
	"errors"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseSpecGrammar(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr bool
		check   func(t *testing.T, faults map[string]*Fault)
	}{
		{spec: "", check: func(t *testing.T, f map[string]*Fault) {
			if len(f) != 0 {
				t.Fatalf("empty spec parsed to %v", f)
			}
		}},
		{spec: "store/write=err", check: func(t *testing.T, f map[string]*Fault) {
			fa := f["store/write"]
			if fa == nil || fa.Err == nil || fa.Times != 0 {
				t.Fatalf("got %+v", fa)
			}
		}},
		{spec: "store/write=err:disk on fire;times=3", check: func(t *testing.T, f map[string]*Fault) {
			fa := f["store/write"]
			if fa == nil || fa.Err == nil || fa.Err.Error() != "disk on fire" || fa.Times != 3 {
				t.Fatalf("got %+v", fa)
			}
		}},
		{spec: "store/write=enospc", check: func(t *testing.T, f map[string]*Fault) {
			fa := f["store/write"]
			if fa == nil || !errors.Is(fa.Err, syscall.ENOSPC) {
				t.Fatalf("enospc action not errors.Is(ENOSPC): %+v", fa)
			}
		}},
		{spec: "store/fsync=delay:150ms", check: func(t *testing.T, f map[string]*Fault) {
			fa := f["store/fsync"]
			if fa == nil || fa.Delay != 150*time.Millisecond {
				t.Fatalf("got %+v", fa)
			}
		}},
		{spec: "core/cg=panic:numeric blowup", check: func(t *testing.T, f map[string]*Fault) {
			fa := f["core/cg"]
			if fa == nil || fa.Panic != "numeric blowup" {
				t.Fatalf("got %+v", fa)
			}
		}},
		{spec: "a=err, b=enospc ,c=off", check: func(t *testing.T, f map[string]*Fault) {
			if len(f) != 3 || f["a"] == nil || f["b"] == nil || f["c"] != nil {
				t.Fatalf("got %v", f)
			}
		}},
		{spec: "noequals", wantErr: true},
		{spec: "a=frobnicate", wantErr: true},
		{spec: "a=delay:notadur", wantErr: true},
		{spec: "a=err;times=0", wantErr: true},
		{spec: "a=err;bogus=1", wantErr: true},
	}
	for _, tc := range cases {
		faults, err := ParseSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %v", tc.spec, faults)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		tc.check(t, faults)
	}
}

// TestParseSpecEdgeCases pins the grammar's corners: empty and
// whitespace-only specs, duplicate sites (last entry wins, matching
// "later flags override earlier" CLI convention), the times bound,
// unknown actions, and exactly where whitespace is forgiven.
func TestParseSpecEdgeCases(t *testing.T) {
	t.Run("empty and blank specs arm nothing", func(t *testing.T) {
		for _, spec := range []string{"", "   ", ",", " , , ", ",,,"} {
			f, err := ParseSpec(spec)
			if err != nil || len(f) != 0 {
				t.Errorf("ParseSpec(%q) = (%v, %v), want empty map", spec, f, err)
			}
		}
	})

	t.Run("duplicate site last wins", func(t *testing.T) {
		f, err := ParseSpec("a=err:first,a=err:second")
		if err != nil {
			t.Fatal(err)
		}
		if len(f) != 1 || f["a"] == nil || f["a"].Err.Error() != "second" {
			t.Fatalf("got %+v, want the later entry to win", f["a"])
		}
		// An off entry overrides an earlier arm of the same site.
		f, err = ParseSpec("a=err,a=off")
		if err != nil {
			t.Fatal(err)
		}
		if fa, present := f["a"]; !present || fa != nil {
			t.Fatalf("a=err,a=off gave (%v, %v), want an explicit nil entry", fa, present)
		}
	})

	t.Run("times bound", func(t *testing.T) {
		for _, spec := range []string{"a=err;times=0", "a=err;times=-2", "a=err;times=two", "a=err;times="} {
			if _, err := ParseSpec(spec); err == nil {
				t.Errorf("ParseSpec(%q) accepted a bad times bound", spec)
			}
		}
		// times on an off entry is tolerated and discarded: there is no
		// fault to bound.
		f, err := ParseSpec("a=off;times=3")
		if err != nil || f["a"] != nil {
			t.Fatalf("a=off;times=3 gave (%v, %v)", f["a"], err)
		}
	})

	t.Run("unknown action names the action", func(t *testing.T) {
		_, err := ParseSpec("a=nuke")
		if err == nil || !strings.Contains(err.Error(), `unknown action "nuke"`) {
			t.Fatalf("ParseSpec(a=nuke) error = %v, want the action named", err)
		}
	})

	t.Run("whitespace forgiven around entries, sites and actions", func(t *testing.T) {
		f, err := ParseSpec("  store/w  =  err  ,\tb = delay:5ms ;times=2")
		if err != nil {
			t.Fatal(err)
		}
		if f["store/w"] == nil || f["store/w"].Err == nil {
			t.Fatalf("padded site/action not parsed: %v", f)
		}
		if fb := f["b"]; fb == nil || fb.Delay != 5*time.Millisecond || fb.Times != 2 {
			t.Fatalf("padded entry with option parsed to %+v", fb)
		}
	})

	t.Run("whitespace inside action args is preserved", func(t *testing.T) {
		// The arg after ":" is payload, not grammar: "err: boom" keeps
		// the leading space in the error message.
		f, err := ParseSpec("a=err: boom")
		if err != nil {
			t.Fatal(err)
		}
		if got := f["a"].Err.Error(); got != " boom" {
			t.Fatalf("arg %q, want %q (payload untouched)", got, " boom")
		}
		// But space before the ":" makes the action itself unrecognised:
		// grammar tokens do not absorb inner whitespace.
		if _, err := ParseSpec("a=err : boom"); err == nil {
			t.Fatal(`"err : boom" accepted; space glued to the action token should be rejected`)
		}
	})
}

func TestArmSpecAndEnv(t *testing.T) {
	defer Reset()
	if err := ArmSpec("x=err:boom;times=1"); err != nil {
		t.Fatal(err)
	}
	if err := At("x"); err == nil || err.Error() != "boom" {
		t.Fatalf("armed site returned %v", err)
	}
	if err := At("x"); err != nil {
		t.Fatalf("times=1 fault fired twice: %v", err)
	}

	// "off" entries clear a previously armed site.
	if err := ArmSpec("y=err"); err != nil {
		t.Fatal(err)
	}
	if err := ArmSpec("y=off"); err != nil {
		t.Fatal(err)
	}
	if err := At("y"); err != nil {
		t.Fatalf("off entry left site armed: %v", err)
	}

	// A parse error arms nothing.
	if err := ArmSpec("z=err,bad entry"); err == nil {
		t.Fatal("bad spec accepted")
	}
	if err := At("z"); err != nil {
		t.Fatalf("failed ArmSpec partially armed: %v", err)
	}

	// Env arming: unset is a no-op, set arms the spec.
	if err := ArmFromEnv(func(string) string { return "" }); err != nil {
		t.Fatal(err)
	}
	if err := ArmFromEnv(func(k string) string {
		if k != EnvVar {
			t.Fatalf("read %q, want %q", k, EnvVar)
		}
		return "envsite=err:from env"
	}); err != nil {
		t.Fatal(err)
	}
	if err := At("envsite"); err == nil || err.Error() != "from env" {
		t.Fatalf("env-armed site returned %v", err)
	}
}

func TestHandlerControlSurface(t *testing.T) {
	defer Reset()
	h := Handler()

	post := func(body string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/debug/faults", strings.NewReader(body)))
		return w
	}
	if w := post("h1=err:via http,h2=delay:1ms"); w.Code != 204 {
		t.Fatalf("POST: %d %s", w.Code, w.Body)
	}
	if err := At("h1"); err == nil || err.Error() != "via http" {
		t.Fatalf("POSTed site returned %v", err)
	}
	if w := post("garbage"); w.Code != 400 {
		t.Fatalf("bad spec POST: %d", w.Code)
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/faults", nil))
	if w.Code != 200 || !strings.Contains(w.Body.String(), "h1") || !strings.Contains(w.Body.String(), "h2") {
		t.Fatalf("GET: %d %s", w.Code, w.Body)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("DELETE", "/debug/faults", nil))
	if w.Code != 204 {
		t.Fatalf("DELETE: %d", w.Code)
	}
	if err := At("h1"); err != nil {
		t.Fatalf("DELETE left site armed: %v", err)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("PUT", "/debug/faults", nil))
	if w.Code != 405 {
		t.Fatalf("PUT: %d", w.Code)
	}
}

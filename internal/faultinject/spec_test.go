package faultinject

import (
	"errors"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseSpecGrammar(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr bool
		check   func(t *testing.T, faults map[string]*Fault)
	}{
		{spec: "", check: func(t *testing.T, f map[string]*Fault) {
			if len(f) != 0 {
				t.Fatalf("empty spec parsed to %v", f)
			}
		}},
		{spec: "store/write=err", check: func(t *testing.T, f map[string]*Fault) {
			fa := f["store/write"]
			if fa == nil || fa.Err == nil || fa.Times != 0 {
				t.Fatalf("got %+v", fa)
			}
		}},
		{spec: "store/write=err:disk on fire;times=3", check: func(t *testing.T, f map[string]*Fault) {
			fa := f["store/write"]
			if fa == nil || fa.Err == nil || fa.Err.Error() != "disk on fire" || fa.Times != 3 {
				t.Fatalf("got %+v", fa)
			}
		}},
		{spec: "store/write=enospc", check: func(t *testing.T, f map[string]*Fault) {
			fa := f["store/write"]
			if fa == nil || !errors.Is(fa.Err, syscall.ENOSPC) {
				t.Fatalf("enospc action not errors.Is(ENOSPC): %+v", fa)
			}
		}},
		{spec: "store/fsync=delay:150ms", check: func(t *testing.T, f map[string]*Fault) {
			fa := f["store/fsync"]
			if fa == nil || fa.Delay != 150*time.Millisecond {
				t.Fatalf("got %+v", fa)
			}
		}},
		{spec: "core/cg=panic:numeric blowup", check: func(t *testing.T, f map[string]*Fault) {
			fa := f["core/cg"]
			if fa == nil || fa.Panic != "numeric blowup" {
				t.Fatalf("got %+v", fa)
			}
		}},
		{spec: "a=err, b=enospc ,c=off", check: func(t *testing.T, f map[string]*Fault) {
			if len(f) != 3 || f["a"] == nil || f["b"] == nil || f["c"] != nil {
				t.Fatalf("got %v", f)
			}
		}},
		{spec: "noequals", wantErr: true},
		{spec: "a=frobnicate", wantErr: true},
		{spec: "a=delay:notadur", wantErr: true},
		{spec: "a=err;times=0", wantErr: true},
		{spec: "a=err;bogus=1", wantErr: true},
	}
	for _, tc := range cases {
		faults, err := ParseSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %v", tc.spec, faults)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		tc.check(t, faults)
	}
}

func TestArmSpecAndEnv(t *testing.T) {
	defer Reset()
	if err := ArmSpec("x=err:boom;times=1"); err != nil {
		t.Fatal(err)
	}
	if err := At("x"); err == nil || err.Error() != "boom" {
		t.Fatalf("armed site returned %v", err)
	}
	if err := At("x"); err != nil {
		t.Fatalf("times=1 fault fired twice: %v", err)
	}

	// "off" entries clear a previously armed site.
	if err := ArmSpec("y=err"); err != nil {
		t.Fatal(err)
	}
	if err := ArmSpec("y=off"); err != nil {
		t.Fatal(err)
	}
	if err := At("y"); err != nil {
		t.Fatalf("off entry left site armed: %v", err)
	}

	// A parse error arms nothing.
	if err := ArmSpec("z=err,bad entry"); err == nil {
		t.Fatal("bad spec accepted")
	}
	if err := At("z"); err != nil {
		t.Fatalf("failed ArmSpec partially armed: %v", err)
	}

	// Env arming: unset is a no-op, set arms the spec.
	if err := ArmFromEnv(func(string) string { return "" }); err != nil {
		t.Fatal(err)
	}
	if err := ArmFromEnv(func(k string) string {
		if k != EnvVar {
			t.Fatalf("read %q, want %q", k, EnvVar)
		}
		return "envsite=err:from env"
	}); err != nil {
		t.Fatal(err)
	}
	if err := At("envsite"); err == nil || err.Error() != "from env" {
		t.Fatalf("env-armed site returned %v", err)
	}
}

func TestHandlerControlSurface(t *testing.T) {
	defer Reset()
	h := Handler()

	post := func(body string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/debug/faults", strings.NewReader(body)))
		return w
	}
	if w := post("h1=err:via http,h2=delay:1ms"); w.Code != 204 {
		t.Fatalf("POST: %d %s", w.Code, w.Body)
	}
	if err := At("h1"); err == nil || err.Error() != "via http" {
		t.Fatalf("POSTed site returned %v", err)
	}
	if w := post("garbage"); w.Code != 400 {
		t.Fatalf("bad spec POST: %d", w.Code)
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/faults", nil))
	if w.Code != 200 || !strings.Contains(w.Body.String(), "h1") || !strings.Contains(w.Body.String(), "h2") {
		t.Fatalf("GET: %d %s", w.Code, w.Body)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("DELETE", "/debug/faults", nil))
	if w.Code != 204 {
		t.Fatalf("DELETE: %d", w.Code)
	}
	if err := At("h1"); err != nil {
		t.Fatalf("DELETE left site armed: %v", err)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("PUT", "/debug/faults", nil))
	if w.Code != 405 {
		t.Fatalf("PUT: %d", w.Code)
	}
}

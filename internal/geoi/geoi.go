// Package geoi builds the (ε, r)-geo-indistinguishability constraint sets
// of the D-VLP linear program, both in full form (one constraint per
// ordered interval pair within the privacy radius, per obfuscated
// interval — O(K³)) and in the paper's reduced form (Algorithm 1): by the
// transitivity of Geo-I along shortest paths of the auxiliary graph
// (Theorem 4.2), it suffices to constrain interval pairs that are
// adjacent on some shortest path, cutting the count to O(KM).
package geoi

import (
	"math"
	"sort"

	"repro/internal/discretize"
	"repro/internal/roadnet"
)

// Pair is one ordered Geo-I relation u′_i ≃ u′_l with exponent distance D:
// it stands for the K constraints z_{i,j} ≤ e^{εD} · z_{l,j}, one per
// obfuscated interval j.
type Pair struct {
	I, L int
	D    float64
}

// FullPairs enumerates every ordered interval pair (i, l), i ≠ l, whose
// two-direction distance d_G^min(u_i^e, u_l^e) is within radius. A
// non-positive radius means "no radius cut" (constrain all pairs). The
// exponent distance is d_G^min per Eq. (20).
func FullPairs(p *discretize.Partition, radius float64) []Pair {
	k := p.K()
	pairs := make([]Pair, 0, k*k/2)
	for i := 0; i < k; i++ {
		for l := 0; l < k; l++ {
			if i == l {
				continue
			}
			d := p.EndDistMin(i, l)
			if radius > 0 && d > radius {
				continue
			}
			pairs = append(pairs, Pair{I: i, L: l, D: d})
		}
	}
	return pairs
}

// CountFull returns the number of Geo-I inequality rows the unreduced
// D-VLP would contain: (#ordered pairs within radius) × K, without
// materialising them.
func CountFull(p *discretize.Partition, radius float64) int64 {
	k := p.K()
	var pairs int64
	for i := 0; i < k; i++ {
		for l := 0; l < k; l++ {
			if i == l {
				continue
			}
			if radius <= 0 || p.EndDistMin(i, l) <= radius {
				pairs++
			}
		}
	}
	return pairs * int64(k)
}

// Reduced is the output of the constraint-reduction algorithm: the
// deduplicated set of *unordered* adjacent interval pairs that must carry
// a bidirectional Geo-I constraint, each with the tightest exponent
// distance seen. Every pair stands for 2K LP rows
// (z_{a,j} ≤ e^{εD} z_{b,j} and z_{b,j} ≤ e^{εD} z_{a,j} for all j).
type Reduced struct {
	Pairs []UnorderedPair
	// MarkedEdges is the number of distinct auxiliary-graph edges marked
	// by Algorithm 1 before deduplication of anti-parallel pairs.
	MarkedEdges int
}

// UnorderedPair is an adjacent interval pair {A, B} with exponent
// distance D. Eps, when positive, is the heterogeneous privacy
// requirement this adjacency must satisfy (the minimum over all interval
// pairs whose shortest path traverses it); zero means the problem's
// homogeneous ε applies.
type UnorderedPair struct {
	A, B int
	D    float64
	Eps  float64
}

// NumRows returns the number of Geo-I inequality rows of the reduced
// D-VLP: 2 directions × pairs × K obfuscated intervals.
func (r *Reduced) NumRows(k int) int64 {
	return 2 * int64(len(r.Pairs)) * int64(k)
}

// Reduce runs Algorithm 1 on the partition's auxiliary graph. For every
// interval pair within radius (non-positive radius = all pairs) it walks
// the shorter-direction shortest path and marks each traversed
// auxiliary edge; marked edges become bidirectional adjacent
// constraints. Chaining those constraints reproduces the full Geo-I
// constraint z_a ≤ e^{ε·d_min(a,b)} z_b in *both* directions for every
// pair, because the forward chain composes to the path length
// d_min(a, b) and the backward chain reuses the same edges' reverse
// constraints (see Theorem 4.2 and Property 4.1).
func Reduce(p *discretize.Partition, aux *roadnet.Graph, radius float64) *Reduced {
	return reduce(p, aux, radius, nil)
}

// ReduceHetero runs the constraint reduction for heterogeneous
// (per-interval) privacy parameters: every marked adjacency records the
// smallest requirement min(ε_a, ε_b) over all pairs (a, b) whose chosen
// shortest path traverses it, so chained constraints still certify every
// pair's own guarantee. This is (weakly) stricter than an exact
// heterogeneous D-VLP would need — a chain entirely inside a loose
// region keeps its loose ε, but an adjacency shared with a strict pair's
// path tightens to the strict value.
func ReduceHetero(p *discretize.Partition, aux *roadnet.Graph, radius float64, epsAt []float64) *Reduced {
	return reduce(p, aux, radius, epsAt)
}

func reduce(p *discretize.Partition, aux *roadnet.Graph, radius float64, epsAt []float64) *Reduced {
	k := p.K()
	inf := math.Inf(1)
	// edgeReq[e] is the strictest (smallest) heterogeneous requirement of
	// any pair routed over e; +Inf means unmarked. In the homogeneous
	// case a marked edge simply gets requirement 0 (sentinel).
	edgeReq := make([]float64, aux.NumEdges())
	for i := range edgeReq {
		edgeReq[i] = inf
	}
	pairEps := func(a, b int) float64 {
		if epsAt == nil {
			return 0
		}
		return math.Min(epsAt[a], epsAt[b])
	}

	// visited[v]/visitedReq[v] form a per-tree generation memo: once a
	// node's path to the root has been walked at requirement ≤ req,
	// later walks stop there. This keeps each root's work near O(K).
	visited := make([]int, k)
	visitedReq := make([]float64, k)
	for i := range visited {
		visited[i] = -1
	}
	stamp := 0

	walk := func(t *roadnet.SPT, from roadnet.NodeID, req float64) {
		cur := from
		for cur != t.Root {
			if visited[cur] == stamp && visitedReq[cur] <= req {
				return
			}
			visited[cur] = stamp
			visitedReq[cur] = req
			eid := t.Parent[cur]
			if eid == roadnet.NoEdge {
				return // unreachable; caller filtered, defensive only
			}
			if req < edgeReq[eid] {
				edgeReq[eid] = req
			}
			e := aux.Edge(eid)
			if t.Reverse {
				cur = e.To
			} else {
				cur = e.From
			}
		}
	}

	for i := 0; i < k; i++ {
		root := roadnet.NodeID(i)
		out := aux.ShortestPathTree(root)       // SPT-Out(i): paths i → j
		in := aux.ReverseShortestPathTree(root) // SPT-In(i): paths j → i
		stamp++                                 // new generation for out-tree walks
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			dOut, dIn := out.Dist[j], in.Dist[j]
			dmin := math.Min(dOut, dIn)
			if math.IsInf(dmin, 1) {
				continue
			}
			if radius > 0 && dmin > radius {
				continue
			}
			if dOut <= dIn {
				walk(out, roadnet.NodeID(j), pairEps(i, j))
			}
		}
		stamp++ // separate generation for in-tree walks
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			dOut, dIn := out.Dist[j], in.Dist[j]
			dmin := math.Min(dOut, dIn)
			if math.IsInf(dmin, 1) {
				continue
			}
			if radius > 0 && dmin > radius {
				continue
			}
			if dOut > dIn {
				walk(in, roadnet.NodeID(j), pairEps(i, j))
			}
		}
	}

	// Deduplicate anti-parallel marked edges into unordered pairs,
	// keeping the smaller (tighter, hence subsuming) exponent distance
	// and the stricter requirement.
	type key struct{ a, b int }
	type val struct{ d, eps float64 }
	best := make(map[key]val)
	count := 0
	for eid := 0; eid < aux.NumEdges(); eid++ {
		if math.IsInf(edgeReq[eid], 1) {
			continue
		}
		count++
		e := aux.Edge(roadnet.EdgeID(eid))
		a, b := int(e.From), int(e.To)
		if a > b {
			a, b = b, a
		}
		kk := key{a, b}
		v, ok := best[kk]
		if !ok {
			best[kk] = val{d: e.Weight, eps: edgeReq[eid]}
			continue
		}
		if e.Weight < v.d {
			v.d = e.Weight
		}
		if edgeReq[eid] < v.eps {
			v.eps = edgeReq[eid]
		}
		best[kk] = v
	}
	red := &Reduced{MarkedEdges: count, Pairs: make([]UnorderedPair, 0, len(best))}
	for kk, v := range best {
		red.Pairs = append(red.Pairs, UnorderedPair{A: kk.a, B: kk.b, D: v.d, Eps: v.eps})
	}
	// Deterministic order for reproducible LPs (map iteration is random).
	sort.Slice(red.Pairs, func(i, j int) bool {
		a, b := red.Pairs[i], red.Pairs[j]
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return red
}

// SymmetrizedDistances returns the all-pairs shortest-path metric of the
// *undirected* version of the auxiliary graph (each anti-parallel edge
// pair collapses to its smaller weight). Unlike d_min — the minimum of
// the two directed distances, which is symmetric but can violate the
// triangle inequality on one-way-street networks — this is a true
// metric, and it lower-bounds d_min pointwise. Functions 1-Lipschitz in
// it (for example the exponential-mechanism seed columns of the column
// generation) therefore satisfy Geo-I under d_min as well.
func SymmetrizedDistances(aux *roadnet.Graph) *roadnet.DistMatrix {
	und := roadnet.NewGraph()
	for i := 0; i < aux.NumNodes(); i++ {
		und.AddNode(aux.Node(roadnet.NodeID(i)).Pos)
	}
	type key struct{ a, b int }
	best := make(map[key]float64, aux.NumEdges())
	for e := 0; e < aux.NumEdges(); e++ {
		ed := aux.Edge(roadnet.EdgeID(e))
		a, b := int(ed.From), int(ed.To)
		if a > b {
			a, b = b, a
		}
		kk := key{a, b}
		if w, ok := best[kk]; !ok || ed.Weight < w {
			best[kk] = ed.Weight
		}
	}
	for kk, w := range best {
		und.AddTwoWay(roadnet.NodeID(kk.a), roadnet.NodeID(kk.b), w)
	}
	return und.AllPairs()
}

// MaxViolation measures how far a K×K row-major obfuscation matrix Z is
// from satisfying the *full* (ε, radius)-Geo-I constraint set:
// max over constrained (i, l, j) of z_{i,j} − e^{ε·d_min} z_{l,j}.
// A non-positive result means Z satisfies Geo-I exactly.
func MaxViolation(p *discretize.Partition, z []float64, eps, radius float64) float64 {
	k := p.K()
	worst := math.Inf(-1)
	for _, pr := range FullPairs(p, radius) {
		f := math.Exp(eps * pr.D)
		for j := 0; j < k; j++ {
			if v := z[pr.I*k+j] - f*z[pr.L*k+j]; v > worst {
				worst = v
			}
		}
	}
	return worst
}

package geoi

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/discretize"
	"repro/internal/roadnet"
)

func testPartition(t *testing.T, seed int64, delta float64) *discretize.Partition {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 3, Cols: 3, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.15,
	})
	p, err := discretize.New(g, delta)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFullPairsSymmetricAndWithinRadius(t *testing.T) {
	p := testPartition(t, 1, 0.15)
	const radius = 0.5
	pairs := FullPairs(p, radius)
	seen := make(map[[2]int]float64, len(pairs))
	for _, pr := range pairs {
		if pr.I == pr.L {
			t.Fatal("self pair emitted")
		}
		if pr.D > radius+1e-12 {
			t.Fatalf("pair (%d,%d) distance %v beyond radius", pr.I, pr.L, pr.D)
		}
		if math.Abs(pr.D-p.EndDistMin(pr.I, pr.L)) > 1e-12 {
			t.Fatalf("pair distance mismatch")
		}
		seen[[2]int{pr.I, pr.L}] = pr.D
	}
	// d_min is symmetric, so the pair set must contain both orders.
	for key, d := range seen {
		rd, ok := seen[[2]int{key[1], key[0]}]
		if !ok || math.Abs(rd-d) > 1e-12 {
			t.Fatalf("pair (%d,%d) lacks symmetric twin", key[0], key[1])
		}
	}
}

func TestCountFullMatchesEnumeration(t *testing.T) {
	p := testPartition(t, 2, 0.15)
	for _, radius := range []float64{0.3, 1.0, 0} {
		want := int64(len(FullPairs(p, radius))) * int64(p.K())
		if got := CountFull(p, radius); got != want {
			t.Fatalf("radius %v: CountFull = %d, enumeration %d", radius, got, want)
		}
	}
}

func TestReducePairsAreAuxAdjacent(t *testing.T) {
	p := testPartition(t, 3, 0.1)
	aux := p.AuxGraph()
	adj := make(map[[2]int]bool)
	for e := 0; e < aux.NumEdges(); e++ {
		ed := aux.Edge(roadnet.EdgeID(e))
		a, b := int(ed.From), int(ed.To)
		if a > b {
			a, b = b, a
		}
		adj[[2]int{a, b}] = true
	}
	red := Reduce(p, aux, 0)
	if len(red.Pairs) == 0 {
		t.Fatal("no reduced pairs")
	}
	for _, pr := range red.Pairs {
		if !adj[[2]int{pr.A, pr.B}] {
			t.Fatalf("reduced pair (%d,%d) is not auxiliary-adjacent", pr.A, pr.B)
		}
		if pr.D <= 0 {
			t.Fatalf("reduced pair (%d,%d) has non-positive distance %v", pr.A, pr.B, pr.D)
		}
	}
}

func TestReduceCutsConstraintCount(t *testing.T) {
	p := testPartition(t, 4, 0.08)
	aux := p.AuxGraph()
	red := Reduce(p, aux, 0)
	full := CountFull(p, 0)
	reduced := red.NumRows(p.K())
	if reduced >= full {
		t.Fatalf("reduction did not shrink constraints: %d >= %d", reduced, full)
	}
	// The paper reports >99%% cuts at realistic K; at our test sizes the
	// cut must already be large.
	if ratio := float64(reduced) / float64(full); ratio > 0.35 {
		t.Fatalf("reduction ratio %.3f too weak (reduced %d, full %d, K=%d)",
			ratio, reduced, full, p.K())
	}
}

func TestReduceMarkedEdgesNearK(t *testing.T) {
	// M (aux edges) close to K implies reduced rows ≈ O(K²); the marked
	// subset cannot exceed the aux edge count.
	p := testPartition(t, 5, 0.08)
	aux := p.AuxGraph()
	red := Reduce(p, aux, 0)
	if red.MarkedEdges > aux.NumEdges() {
		t.Fatalf("marked %d edges of %d", red.MarkedEdges, aux.NumEdges())
	}
	if red.MarkedEdges < p.K()/2 {
		t.Fatalf("marked suspiciously few edges: %d for K=%d", red.MarkedEdges, p.K())
	}
}

// chainBound computes, for each ordered interval pair (a,b), the tightest
// exponent implied by chaining the reduced bidirectional constraints:
// the shortest path from a to b in the graph whose edges are the reduced
// pairs (both directions, weight D). Geo-I for (a,b) requires this bound
// to be at most d_min(a,b) — the transitivity/soundness property.
func chainBound(k int, red *Reduced) [][]float64 {
	const inf = math.MaxFloat64
	d := make([][]float64, k)
	for i := range d {
		d[i] = make([]float64, k)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for _, pr := range red.Pairs {
		if pr.D < d[pr.A][pr.B] {
			d[pr.A][pr.B] = pr.D
			d[pr.B][pr.A] = pr.D
		}
	}
	for m := 0; m < k; m++ {
		for i := 0; i < k; i++ {
			if d[i][m] == inf {
				continue
			}
			for j := 0; j < k; j++ {
				if d[m][j] == inf {
					continue
				}
				if s := d[i][m] + d[m][j]; s < d[i][j] {
					d[i][j] = s
				}
			}
		}
	}
	return d
}

func TestReduceSoundness(t *testing.T) {
	// Chained reduced constraints must imply the full Geo-I constraint for
	// every pair: chain exponent ≤ d_min(a,b) + tolerance. (Equality holds
	// when the chain follows the min-direction shortest path.)
	p := testPartition(t, 6, 0.12)
	aux := p.AuxGraph()
	red := Reduce(p, aux, 0)
	bound := chainBound(p.K(), red)
	for a := 0; a < p.K(); a++ {
		for b := 0; b < p.K(); b++ {
			if a == b {
				continue
			}
			dmin := p.EndDistMin(a, b)
			if bound[a][b] > dmin+1e-6 {
				t.Fatalf("pair (%d,%d): chained exponent %v exceeds d_min %v",
					a, b, bound[a][b], dmin)
			}
		}
	}
}

func TestReduceRadiusFilterKeepsLocalSoundness(t *testing.T) {
	p := testPartition(t, 7, 0.12)
	aux := p.AuxGraph()
	const radius = 0.4
	red := Reduce(p, aux, radius)
	bound := chainBound(p.K(), red)
	for a := 0; a < p.K(); a++ {
		for b := 0; b < p.K(); b++ {
			if a == b {
				continue
			}
			dmin := p.EndDistMin(a, b)
			if dmin > radius {
				continue
			}
			if bound[a][b] > dmin+1e-6 {
				t.Fatalf("in-radius pair (%d,%d): chained exponent %v exceeds d_min %v",
					a, b, bound[a][b], dmin)
			}
		}
	}
}

func TestMaxViolation(t *testing.T) {
	p := testPartition(t, 8, 0.15)
	k := p.K()
	const eps = 3.0

	// The ε/2 exponential mechanism over the symmetrized metric
	// satisfies ε-Geo-I: the metric's triangle inequality bounds both
	// the numerator ratio and the normalisation ratio by e^{(ε/2)·d},
	// and the metric lower-bounds d_min.
	sym := SymmetrizedDistances(p.AuxGraph())
	z := make([]float64, k*k)
	for i := 0; i < k; i++ {
		sum := 0.0
		for l := 0; l < k; l++ {
			z[i*k+l] = math.Exp(-eps / 2 * sym.Dist(roadnet.NodeID(i), roadnet.NodeID(l)))
			sum += z[i*k+l]
		}
		for l := 0; l < k; l++ {
			z[i*k+l] /= sum
		}
	}
	if v := MaxViolation(p, z, eps, 0); v > 1e-9 {
		t.Fatalf("exponential mechanism violates Geo-I by %v", v)
	}

	// The identity mechanism grossly violates Geo-I.
	id := make([]float64, k*k)
	for i := 0; i < k; i++ {
		id[i*k+i] = 1
	}
	if v := MaxViolation(p, id, eps, 0); v <= 0 {
		t.Fatalf("identity mechanism reported Geo-I-compliant (violation %v)", v)
	}
}

// Package geom provides small planar-geometry primitives shared by the
// road-network model and the planar (2D) baseline mechanisms.
//
// All coordinates are in kilometres on a local tangent plane; the paper's
// maps are a few kilometres across, so a flat approximation is exact
// enough for every experiment.
package geom

import "math"

// Point is a location on the 2D plane, in kilometres.
type Point struct {
	X, Y float64
}

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Lerp returns the point a fraction t of the way from p to q.
// t = 0 yields p, t = 1 yields q; t outside [0, 1] extrapolates.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Midpoint returns the midpoint of the segment pq.
func Midpoint(p, q Point) Point { return Lerp(p, q, 0.5) }

// Segment is a directed straight segment from A to B.
type Segment struct {
	A, B Point
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return Dist(s.A, s.B) }

// At returns the point a fraction t along the segment from A.
func (s Segment) At(t float64) Point { return Lerp(s.A, s.B, t) }

// ClosestParam returns the parameter t in [0, 1] of the point on the
// segment closest to p, along with the squared distance to that point.
func (s Segment) ClosestParam(p Point) (t, distSq float64) {
	d := s.B.Sub(s.A)
	den := d.Dot(d)
	if den == 0 {
		dp := p.Sub(s.A)
		return 0, dp.Dot(dp)
	}
	t = p.Sub(s.A).Dot(d) / den
	t = Clamp(t, 0, 1)
	c := s.At(t)
	dp := p.Sub(c)
	return t, dp.Dot(dp)
}

// Clamp restricts v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BoundingBox is an axis-aligned rectangle.
type BoundingBox struct {
	Min, Max Point
}

// Contains reports whether p lies inside the box (inclusive).
func (b BoundingBox) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y
}

// Expand grows the box to include p.
func (b BoundingBox) Expand(p Point) BoundingBox {
	if p.X < b.Min.X {
		b.Min.X = p.X
	}
	if p.Y < b.Min.Y {
		b.Min.Y = p.Y
	}
	if p.X > b.Max.X {
		b.Max.X = p.X
	}
	if p.Y > b.Max.Y {
		b.Max.Y = p.Y
	}
	return b
}

// BoundsOf returns the bounding box of a non-empty point set.
// It panics on an empty slice: a bounding box of nothing is undefined.
func BoundsOf(pts []Point) BoundingBox {
	if len(pts) == 0 {
		panic("geom: BoundsOf of empty point set")
	}
	b := BoundingBox{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		b = b.Expand(p)
	}
	return b
}

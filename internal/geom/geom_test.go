package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Point{1, 2}, Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestDistAndNorm(t *testing.T) {
	if d := Dist(Point{0, 0}, Point{3, 4}); d != 5 {
		t.Fatalf("Dist = %v", d)
	}
	if n := (Point{3, 4}).Norm(); n != 5 {
		t.Fatalf("Norm = %v", n)
	}
}

func TestLerpMidpoint(t *testing.T) {
	a, b := Point{0, 0}, Point{2, 4}
	if m := Midpoint(a, b); m != (Point{1, 2}) {
		t.Fatalf("Midpoint = %v", m)
	}
	if l := Lerp(a, b, 0.25); l != (Point{0.5, 1}) {
		t.Fatalf("Lerp = %v", l)
	}
}

func TestSegmentClosestParam(t *testing.T) {
	s := Segment{A: Point{0, 0}, B: Point{2, 0}}
	cases := []struct {
		p      Point
		t, dsq float64
	}{
		{Point{1, 1}, 0.5, 1},
		{Point{-1, 0}, 0, 1},
		{Point{5, 0}, 1, 9},
	}
	for _, c := range cases {
		tt, dsq := s.ClosestParam(c.p)
		if math.Abs(tt-c.t) > 1e-12 || math.Abs(dsq-c.dsq) > 1e-12 {
			t.Fatalf("ClosestParam(%v) = %v, %v; want %v, %v", c.p, tt, dsq, c.t, c.dsq)
		}
	}
	// Degenerate zero-length segment.
	z := Segment{A: Point{1, 1}, B: Point{1, 1}}
	tt, dsq := z.ClosestParam(Point{2, 1})
	if tt != 0 || dsq != 1 {
		t.Fatalf("degenerate ClosestParam = %v, %v", tt, dsq)
	}
}

func TestClosestParamIsMinimumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(ax, ay, bx, by, px, py int16) bool {
		s := Segment{A: Point{float64(ax) / 100, float64(ay) / 100}, B: Point{float64(bx) / 100, float64(by) / 100}}
		p := Point{float64(px) / 100, float64(py) / 100}
		tBest, dBest := s.ClosestParam(p)
		_ = tBest
		for i := 0; i <= 20; i++ {
			tt := float64(i) / 20
			d := p.Sub(s.At(tt))
			if d.Dot(d) < dBest-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{{0, 0}, {2, -1}, {1, 3}}
	b := BoundsOf(pts)
	if b.Min != (Point{0, -1}) || b.Max != (Point{2, 3}) {
		t.Fatalf("bounds = %v", b)
	}
	if !b.Contains(Point{1, 1}) || b.Contains(Point{3, 0}) {
		t.Fatal("Contains wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BoundsOf(empty) must panic")
		}
	}()
	BoundsOf(nil)
}

// Package analysis is a deliberately small re-implementation of the
// golang.org/x/tools/go/analysis core: an Analyzer is a named check, a
// Pass hands it one type-checked package, and diagnostics flow back
// through Pass.Report. The shape mirrors the upstream framework so the
// analyzers in internal/lint/analyzers could be ported to the real
// multichecker verbatim if the dependency ever becomes available; until
// then cmd/vlplint drives them through internal/lint/loader.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass presents one type-checked package to an analyzer.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ProgramPass presents the whole loaded program — every type-checked
// package the loader has seen, module code and its module-internal
// dependencies alike — to an interprocedural analyzer. Packages is
// sorted by import path so iteration order (and therefore diagnostic
// order) is deterministic.
type ProgramPass struct {
	Fset     *token.FileSet
	Packages []*Pass
	// InScope reports whether findings in the package with the given
	// import path should be reported. The analysis itself always sees
	// the whole program (summaries must cross package boundaries); the
	// scope only gates where diagnostics may land.
	InScope func(pkgPath string) bool
	Report  func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package. Exactly one of Run and RunProgram is
	// set.
	Run func(*Pass) error
	// RunProgram, when non-nil, marks a whole-program analyzer: instead
	// of one Run call per package it receives every loaded package at
	// once, so summaries (call graphs, taint, lock sets) can flow
	// across function and package boundaries.
	RunProgram func(*ProgramPass) error
	// Finish, when non-nil, runs once after every pass, for invariants
	// that span packages (faultpoint's site-name uniqueness). State
	// accumulated by Run lives in the analyzer's package; Reset clears
	// it so test harnesses and repeated driver runs start clean.
	Finish func(report func(Diagnostic))
	// Reset clears any cross-pass state before a run. May be nil.
	Reset func()
}

// Inspect walks every file of the pass in depth-first order, calling f
// on each node; f returning false prunes the subtree. A nil-safe
// convenience over ast.Inspect.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

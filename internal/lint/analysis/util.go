package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the *types.Func a call invokes, or nil for calls
// through function values, type conversions and built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function (or
// method set member) pkgPath.name.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// WithStack walks every file of the pass keeping the ancestor stack;
// f receives each node with its ancestors (outermost first) and prunes
// the subtree by returning false.
func (p *Pass) WithStack(f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			keep := f(n, stack)
			if keep {
				stack = append(stack, n)
			}
			return keep
		})
	}
}

// EnclosingFunc returns the innermost function declaration or literal
// on the stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// EnclosingFuncDecl returns the innermost named function declaration on
// the stack (skipping literals), or nil.
func EnclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// NamedType returns the named type of t after stripping pointers and
// aliases, or nil.
func NamedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

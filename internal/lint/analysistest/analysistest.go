// Package analysistest runs a vlplint analyzer over a testdata package
// and checks its diagnostics against expectations written in the source
// as end-of-line comments:
//
//	s.hits++ // want `plain write to field`
//
// The backquoted text is a regular expression that must match a
// diagnostic reported on that line; a line may carry several want
// comments for several diagnostics. The harness fails the test on any
// unmatched expectation and on any unexpected diagnostic, so a "clean"
// package (zero want comments) asserts the analyzer stays silent —
// every analyzer in the suite ships one as an over-matching guard.
//
// It mirrors golang.org/x/tools/go/analysis/analysistest closely enough
// that the testdata layout (testdata/src/<pkg>/...) is identical.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// want is one expectation parsed from a // want comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")")

// Run loads testdata/src/<pkg> for each named package, applies the
// analyzer, and diffs diagnostics against want comments. The testdata
// directory is resolved relative to the calling test's working
// directory, which for `go test` is the analyzer's own package dir.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	if a.Reset != nil {
		a.Reset()
	}
	l, err := loader.New(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var diags []analysis.Diagnostic
	var allFiles []*ast.File
	requested := make(map[string]bool)
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		p, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("analysistest: load %s: %v", pkg, err)
		}
		requested[p.Path] = true
		if a.Run != nil {
			pass := &analysis.Pass{
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("analysistest: %s on %s: %v", a.Name, pkg, err)
			}
		}
		allFiles = append(allFiles, p.Files...)
	}
	if a.RunProgram != nil {
		// A whole-program analyzer sees everything the loader pulled in
		// (the testdata packages plus any module packages they import),
		// but only diagnostics inside the requested testdata packages
		// count against want comments.
		var passes []*analysis.Pass
		for _, p := range l.Loaded() {
			passes = append(passes, &analysis.Pass{
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
			})
		}
		pp := &analysis.ProgramPass{
			Fset:     l.Fset(),
			Packages: passes,
			InScope:  func(pkgPath string) bool { return requested[pkgPath] },
			Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.RunProgram(pp); err != nil {
			t.Fatalf("analysistest: %s: %v", a.Name, err)
		}
	}
	if a.Finish != nil {
		a.Finish(func(d analysis.Diagnostic) { diags = append(diags, d) })
	}

	wants := parseWants(t, l.Fset(), allFiles)

	// Match every diagnostic against a want on its line.
	var unexpected []string
	for _, d := range diags {
		pos := l.Fset().Position(d.Pos)
		ok := false
		for i := range wants {
			w := &wants[i]
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			unexpected = append(unexpected, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message))
		}
	}
	for _, w := range wants {
		if !w.matched {
			unexpected = append(unexpected, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re))
		}
	}
	sort.Strings(unexpected)
	for _, msg := range unexpected {
		t.Error(msg)
	}
}

// parseWants scans every comment for want expectations.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					pat := m[1][1 : len(m[1])-1] // strip quotes/backquotes
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("analysistest: bad want pattern %q: %v", pat, err)
					}
					pos := fset.Position(c.Pos())
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

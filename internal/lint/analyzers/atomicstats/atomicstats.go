// Package atomicstats enforces the serving path's counter discipline:
// the hot obfuscate/solve handlers bump stats on every request, so the
// stats struct is lock-free by contract — every field is a sync/atomic
// type and every access goes through its methods. Two rules:
//
//  1. A struct type named "stats", or any struct whose declaration
//     carries a "vlplint:atomicstats" marker comment, must declare
//     every field with a sync/atomic type (atomic.Uint64,
//     atomic.Int64, ...). A plain uint64 field — even one "protected"
//     by a mutex — reintroduces either a data race or a lock on the
//     hot path.
//
//  2. Anywhere in the package, a selector of sync/atomic-typed struct
//     field may only be used as the receiver of a method call
//     (s.hits.Add(1)) or have its address taken to pass the counter
//     along; copying the value (x := s.hits) smuggles a non-atomic
//     read out (and copies the internal state, which vet's copylocks
//     also hates).
package atomicstats

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicstats",
	Doc:  "stats structs must use sync/atomic fields, accessed only through atomic methods",
	Run:  run,
}

const marker = "vlplint:atomicstats"

func run(pass *analysis.Pass) error {
	checkStructDecls(pass)
	checkFieldUses(pass)
	return nil
}

// checkStructDecls applies rule 1 to every marked (or "stats"-named)
// struct declaration.
func checkStructDecls(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if ts.Name.Name != "stats" && !hasMarker(gd, ts) {
					continue
				}
				for _, field := range st.Fields.List {
					t := pass.TypesInfo.Types[field.Type].Type
					if isAtomicType(t) {
						continue
					}
					for _, name := range field.Names {
						pass.Reportf(name.Pos(), "field %s of atomic stats struct %s must use a sync/atomic type, not %s", name.Name, ts.Name.Name, types.TypeString(t, types.RelativeTo(pass.Pkg)))
					}
					if len(field.Names) == 0 { // embedded
						pass.Reportf(field.Pos(), "embedded field of atomic stats struct %s must use a sync/atomic type, not %s", ts.Name.Name, types.TypeString(t, types.RelativeTo(pass.Pkg)))
					}
				}
			}
		}
	}
}

// hasMarker reports whether the type declaration's doc comments contain
// the vlplint:atomicstats marker.
func hasMarker(gd *ast.GenDecl, ts *ast.TypeSpec) bool {
	for _, cg := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
		if cg != nil && strings.Contains(cg.Text(), marker) {
			return true
		}
	}
	// Marker directives (//vlplint:...) are dropped from CommentGroup.Text;
	// scan raw comment lines too.
	for _, cg := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, marker) {
				return true
			}
		}
	}
	return false
}

// checkFieldUses applies rule 2: every selector whose type is a
// sync/atomic struct type must be a method-call receiver or an
// address-of operand.
func checkFieldUses(pass *analysis.Pass) {
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Only field selections of atomic type matter.
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal || !isAtomicType(selection.Type()) {
			return true
		}
		if allowedAtomicUse(stack, sel) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "field %s has atomic type %s and may only be accessed through its methods (Load/Store/Add/...)", sel.Sel.Name, selection.Type())
		return true
	})
}

// allowedAtomicUse reports whether the atomic-typed selector is the
// receiver of a method call (parent SelectorExpr under a CallExpr) or
// under a unary & (passing *atomic.T onward keeps access atomic).
func allowedAtomicUse(stack []ast.Node, sel *ast.SelectorExpr) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		// s.hits.Add(1): parent is the method selector; require it to be
		// called.
		if parent.X == sel && len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == parent {
				return true
			}
		}
	case *ast.UnaryExpr:
		if parent.Op == token.AND && parent.X == sel {
			return true
		}
	}
	return false
}

// isAtomicType reports whether t is a named struct type from
// sync/atomic (Uint64, Int64, Bool, Value, Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	n := analysis.NamedType(t)
	if n == nil {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

package atomicstats_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/analyzers/atomicstats"
)

func TestAtomicstats(t *testing.T) {
	analysistest.Run(t, "testdata", atomicstats.Analyzer, "atomicstats", "atomicstats_clean")
}

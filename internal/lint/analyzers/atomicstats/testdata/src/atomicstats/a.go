package atomicstats

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	mu   sync.Mutex // want `field mu of atomic stats struct stats must use a sync/atomic type`
	hits uint64     // want `field hits of atomic stats struct stats must use a sync/atomic type`
	ok   atomic.Uint64
}

// counters opts into the same contract via the marker.
//
//vlplint:atomicstats
type counters struct {
	n int // want `field n of atomic stats struct counters must use a sync/atomic type`
}

func read(s *stats) uint64 {
	v := s.ok // want `field ok has atomic type .* may only be accessed through its methods`
	_ = v
	return s.ok.Load()
}

package atomicstats_clean

import "sync/atomic"

type stats struct {
	hits  atomic.Uint64
	total atomic.Int64
	ready atomic.Bool
}

func bump(s *stats) {
	s.hits.Add(1)
	s.total.Store(0)
	s.ready.Store(true)
}

func counter(s *stats) *atomic.Uint64 {
	return &s.hits // passing the counter by pointer keeps access atomic
}

// gauge mirrors the server's admission-gate pattern: a helper struct
// holds pointers to stats fields and mutates them through atomic
// methods. Both the address-of at construction and the method calls
// through the stored pointers are legal.
type gauge struct {
	depth   *atomic.Int64
	rejects *atomic.Uint64
}

func newGauge(s *stats) gauge {
	return gauge{depth: &s.total, rejects: &s.hits}
}

func (g gauge) enter() bool {
	if g.depth.Add(1) > 4 {
		g.depth.Add(-1)
		g.rejects.Add(1)
		return false
	}
	return true
}

// plain is not a stats struct, so ordinary fields stay legal.
type plain struct {
	n int
}

func (p *plain) inc() { p.n++ }

package atomicstats_clean

import "sync/atomic"

type stats struct {
	hits  atomic.Uint64
	total atomic.Int64
	ready atomic.Bool
}

func bump(s *stats) {
	s.hits.Add(1)
	s.total.Store(0)
	s.ready.Store(true)
}

func counter(s *stats) *atomic.Uint64 {
	return &s.hits // passing the counter by pointer keeps access atomic
}

// plain is not a stats struct, so ordinary fields stay legal.
type plain struct {
	n int
}

func (p *plain) inc() { p.n++ }

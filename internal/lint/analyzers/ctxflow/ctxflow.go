// Package ctxflow enforces the solver stack's cancellation contract.
// The degradation ladder only works if every solve can be cancelled —
// a context.Background() buried in library code detaches a subtree from
// the ladder's deadlines, abandonment and shutdown drain. Two rules:
//
//  1. Non-test code must not call context.Background() or
//     context.TODO() outside func main: roots belong to the process
//     entry point (or to tests, which are not analyzed). Documented
//     compatibility wrappers carry a //lint:ignore ctxflow directive.
//
//  2. Every exported function or method whose name starts with "Solve"
//     must be cancellable: it must accept a context.Context parameter,
//     or take an options struct carrying one (lp.Options.Ctx), or hang
//     off a receiver through which a context is reachable
//     (lp.IPMSolver → ipm → Options → Ctx). A Solve entry point with no
//     route to a context cannot participate in the ladder.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "forbid context.Background/TODO outside main; exported Solve* entry points must reach a context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := analysis.Callee(pass.TypesInfo, n)
			if analysis.IsPkgFunc(fn, "context", "Background") || analysis.IsPkgFunc(fn, "context", "TODO") {
				if fd := analysis.EnclosingFuncDecl(stack); fd == nil || fd.Name.Name != "main" {
					pass.Reportf(n.Pos(), "context.%s() outside main detaches this subtree from cancellation; thread the caller's ctx", fn.Name())
				}
			}
		case *ast.FuncDecl:
			checkSolveEntry(pass, n)
		}
		return true
	})
	return nil
}

// checkSolveEntry applies rule 2 to one function declaration.
func checkSolveEntry(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !fd.Name.IsExported() || len(name) < 5 || name[:5] != "Solve" {
		return
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if reachesContext(sig.Params().At(i).Type(), 4, nil) {
			return
		}
	}
	if recv := sig.Recv(); recv != nil && reachesContext(recv.Type(), 4, nil) {
		return
	}
	pass.Reportf(fd.Name.Pos(), "exported solve entry point %s cannot be cancelled: no context.Context is reachable from its parameters or receiver", name)
}

// reachesContext reports whether a context.Context can be reached from
// t through pointers and (nested) struct fields, up to the given depth.
func reachesContext(t types.Type, depth int, seen map[types.Type]bool) bool {
	if depth < 0 || t == nil {
		return false
	}
	t = types.Unalias(t)
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if analysis.IsNamed(t, "context", "Context") {
		return true
	}
	switch u := t.(type) {
	case *types.Pointer:
		return reachesContext(u.Elem(), depth, seen)
	case *types.Named:
		return reachesContext(u.Underlying(), depth-1, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if reachesContext(u.Field(i).Type(), depth, seen) {
				return true
			}
		}
	}
	return false
}

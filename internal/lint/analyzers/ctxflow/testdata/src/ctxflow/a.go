package ctxflow

import "context"

func helper() context.Context {
	return context.Background() // want `context.Background\(\) outside main`
}

func todo() context.Context {
	return context.TODO() // want `context.TODO\(\) outside main`
}

func inClosure() func() context.Context {
	return func() context.Context {
		return context.Background() // want `context.Background\(\) outside main`
	}
}

// SolveBlind has no route to a context: not a parameter, not an options
// struct, not a receiver.
func SolveBlind(n int) int { // want `exported solve entry point SolveBlind cannot be cancelled`
	return n
}

package ctxflow_clean

import "context"

// Options carries the context for solvers configured via a struct.
type Options struct {
	Ctx context.Context
}

type solver struct {
	opts Options
}

func SolveDirect(ctx context.Context, n int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return n, nil
}

func SolveViaOptions(opts Options) error {
	return opts.Ctx.Err()
}

func (s *solver) SolveFromReceiver() error {
	return s.opts.Ctx.Err()
}

// solveInternal is unexported: rule 2 applies to exported entry points.
func solveInternal(n int) int {
	return n
}

func main() {
	ctx := context.Background() // roots belong to the process entry point
	_, _ = SolveDirect(ctx, 1)
}

// Package errflow implements the errflow analyzer: errors from durable
// I/O must flow somewhere that can act on them. A call is "durable"
// when it is — or can reach, through the whole-program call graph —
// one of the primitives that commit or read bytes on disk or take the
// lease flock:
//
//	os.Rename, os.WriteFile, os.ReadFile, os.CreateTemp,
//	(*os.File).Sync, syscall.Flock
//
// The durable set is what makes the analyzer interprocedural: a
// wrapper three calls above os.Rename is as durable as os.Rename
// itself. For every durable call in the scoped packages the error
// result must be consumed; three ways of losing it are reported:
//
//   - the call stands alone as a statement, dropping all results
//   - the error result is assigned to _
//   - the error is assigned to a variable that is never read
//
// An error that is returned, branched on, latched (ENOSPC shed), or
// handed to quarantine reads the variable and therefore passes. Defer
// statements are exempt: `defer f.Close()`-style cleanup on error
// paths is idiomatic and the primary path is checked separately.
// Deliberate best-effort drops (shutdown-path lease release) carry a
// reasoned //lint:ignore.
package errflow

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:       "errflow",
	Doc:        "errors from durable-I/O and lease calls must reach a return, latch, or quarantine — never dropped or left unread",
	RunProgram: run,
}

var primitives = map[string]bool{
	"os.Rename":       true,
	"os.WriteFile":    true,
	"os.ReadFile":     true,
	"os.CreateTemp":   true,
	"(*os.File).Sync": true,
	"syscall.Flock":   true,
}

type checker struct {
	g     *callgraph.Graph
	sites map[*ast.CallExpr][]*callgraph.Node
	memo  map[*callgraph.Node]int // 0 unknown, 1 visiting, 2 no, 3 yes
}

func run(pp *analysis.ProgramPass) error {
	c := &checker{
		g:     callgraph.Build(pp.Packages),
		sites: make(map[*ast.CallExpr][]*callgraph.Node),
		memo:  make(map[*callgraph.Node]int),
	}
	for _, n := range c.g.Nodes {
		for _, e := range n.Out {
			c.sites[e.Site] = append(c.sites[e.Site], e.Callee)
		}
	}
	for _, n := range c.g.SortedNodes() {
		if !pp.InScope(n.Pass.Pkg.Path()) || n.Decl.Body == nil {
			continue
		}
		c.checkFunc(pp, n)
	}
	return nil
}

// durableCall reports whether this call site is durable, returning the
// callee name for the diagnostic.
func (c *checker) durableCall(n *callgraph.Node, call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(n.Pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	if primitives[fn.FullName()] {
		return fn.Name(), true
	}
	for _, tgt := range c.sites[call] {
		if c.durableNode(tgt) {
			return fn.Name(), true
		}
	}
	return "", false
}

// durableNode memoizes "can reach a primitive" over declared functions.
func (c *checker) durableNode(n *callgraph.Node) bool {
	switch c.memo[n] {
	case 2, 1:
		return false
	case 3:
		return true
	}
	c.memo[n] = 1
	durable := false
	if fn := n.Func; primitives[fn.FullName()] {
		durable = true
	}
	if !durable && n.Decl.Body != nil {
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			if durable {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := analysis.Callee(n.Pass.TypesInfo, call); fn != nil && primitives[fn.FullName()] {
				durable = true
				return false
			}
			for _, tgt := range c.sites[call] {
				if c.durableNode(tgt) {
					durable = true
					return false
				}
			}
			return true
		})
	}
	if durable {
		c.memo[n] = 3
	} else {
		c.memo[n] = 2
	}
	return durable
}

// lastResultIsError reports whether the call's final result is an
// error (the Go convention errflow polices).
func lastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// deadCandidate is an error variable assigned from a durable call,
// pending proof that something reads it.
type deadCandidate struct {
	obj    types.Object
	pos    ast.Node
	callee string
}

func (c *checker) checkFunc(pp *analysis.ProgramPass, n *callgraph.Node) {
	info := n.Pass.TypesInfo
	var candidates []deadCandidate
	writes := make(map[*ast.Ident]bool)   // idents that are assignment targets
	discards := make(map[*ast.Ident]bool) // bare idents assigned to _ only
	reads := make(map[types.Object]bool)

	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.DeferStmt:
			return false // deferred cleanup is exempt
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && lastResultIsError(info, call) {
				if name, durable := c.durableCall(n, call); durable {
					pp.Reportf(call.Pos(), "error from durable call %s dropped; handle, latch, or quarantine it", name)
				}
				// The call's arguments may still read error vars.
				for _, a := range call.Args {
					markReads(info, a, reads)
				}
				return false
			}
		case *ast.AssignStmt:
			allBlank := true
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					writes[id] = true
					if id.Name != "_" {
						allBlank = false
					}
				} else {
					allBlank = false
				}
			}
			if allBlank {
				// `_ = err` silences the compiler, not the error: a
				// blank-assign of a bare variable is a discard, not a
				// read.
				for _, r := range s.Rhs {
					if id, ok := ast.Unparen(r).(*ast.Ident); ok {
						discards[id] = true
					}
				}
			}
			c.checkAssign(pp, n, s.Lhs, s.Rhs, s, &candidates)
		}
		return true
	})
	// Second pass: every identifier use that is neither an assignment
	// target nor a blank-discard is a read.
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || writes[id] || discards[id] {
			return true
		}
		if obj := info.Uses[id]; obj != nil {
			reads[obj] = true
		}
		return true
	})
	for _, cand := range candidates {
		if !reads[cand.obj] {
			pp.Reportf(cand.pos.Pos(), "error from durable call %s assigned to %s but never read", cand.callee, cand.obj.Name())
		}
	}
}

// checkAssign flags `_` in the error slot of a durable call and
// registers named error variables as dead-read candidates.
func (c *checker) checkAssign(pp *analysis.ProgramPass, n *callgraph.Node, lhs, rhs []ast.Expr, at ast.Node, candidates *[]deadCandidate) {
	info := n.Pass.TypesInfo
	if len(rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
	if !ok || !lastResultIsError(info, call) {
		return
	}
	name, durable := c.durableCall(n, call)
	if !durable {
		return
	}
	errSlot := lhs[len(lhs)-1]
	id, ok := errSlot.(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		pp.Reportf(at.Pos(), "error from durable call %s discarded with _; handle, latch, or quarantine it", name)
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj != nil {
		*candidates = append(*candidates, deadCandidate{obj: obj, pos: at, callee: name})
	}
}

// markReads records every object used inside an expression as read.
func markReads(info *types.Info, e ast.Expr, reads map[types.Object]bool) {
	ast.Inspect(e, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				reads[obj] = true
			}
		}
		return true
	})
}

package errflow

import (
	"testing"

	"repro/internal/lint/analysistest"
)

func TestErrflow(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "errflow", "errflow_clean")
}

// Violating package: errors from durable calls are dropped. The
// durable primitive (os.WriteFile) is buried two wrappers below the
// call sites, so every finding requires call-graph reachability.
package errflow

import "os"

func write(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func save(path string, data []byte) error {
	return write(path, data)
}

func dropStatement(path string) {
	save(path, nil) // want `error from durable call save dropped`
}

func dropBlank(path string) {
	_ = save(path, nil) // want `error from durable call save discarded with _`
}

func dropDead(path string) {
	err := save(path, nil) // want `error from durable call save assigned to err but never read`
	_ = err
}

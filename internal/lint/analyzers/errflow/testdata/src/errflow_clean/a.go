// Clean package: every durable error reaches a return, a check, or a
// quarantine handler; deferred cleanup and non-durable drops are
// exempt — the analyzer must stay silent.
package errflow_clean

import (
	"fmt"
	"os"
)

func write(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func save(path string, data []byte) error {
	return write(path, data)
}

func quarantine(err error) {}

func returned(path string) error {
	return save(path, nil)
}

func checked(path string) {
	if err := save(path, nil); err != nil {
		quarantine(err)
	}
}

func handed(path string) {
	err := save(path, nil)
	quarantine(err)
}

func deferred(path string) {
	defer save(path, nil)
}

func nonDurable() {
	fmt.Println("not durable, drop away")
}

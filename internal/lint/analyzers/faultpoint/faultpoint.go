// Package faultpoint keeps the chaos suite honest. The durability
// protocol's crash-safety claims rest on the fault-injection points in
// internal/faultinject being (a) individually addressable and (b)
// actually present at every site that touches the disk. Three rules:
//
//  1. The site argument of faultinject.At must be a compile-time string
//     constant — a runtime-computed name cannot be armed by tests and
//     silently escapes the chaos matrix.
//
//  2. Site names are unique: two distinct constant declarations (or two
//     bare literals) must not share the same string. Duplicate names
//     alias unrelated sites, so arming one fires the other.
//     This check runs across every analyzed package (the registry spans
//     lp, core and store).
//
//  3. In the durable-I/O packages, every call that commits bytes or
//     metadata to disk or reads protocol state back —
//     (*os.File).Write/WriteString/WriteAt/Sync plus the os package's
//     Rename, ReadFile, WriteFile and ReadDir — must be preceded, in
//     the same function, by a faultinject.At visit, so the chaos suite
//     can kill the protocol immediately before the real operation.
//     Reads count because the lease and refresh protocols make safety
//     decisions from what they read: an uninjectable read path is an
//     untestable failover path.
package faultpoint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:   "faultpoint",
	Doc:    "faultinject site names are unique string constants; durable I/O sits under a point",
	Run:    run,
	Finish: finish,
	Reset:  reset,
}

// siteDecl identifies one declaration of a site name: a named constant
// (keyed by its object) or a bare literal occurrence (keyed by
// position).
type siteDecl struct {
	key  string // unique identity of the declaring const/literal
	pos  token.Pos
	name string // the site string
}

var declsByName map[string][]siteDecl

func reset() { declsByName = nil }

// fileWriteMethods are the (*os.File) methods that move bytes or
// metadata toward the disk.
var fileWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true, "Sync": true,
}

// osPkgFuncs are the os package-level calls the durability, lease and
// refresh protocols hang decisions on. Deliberately not here: os.Open,
// os.Stat, os.Remove and friends, whose failures the protocols treat
// as advisory (debris sweeping, existence probes) rather than as
// protocol state.
var osPkgFuncs = map[string]bool{
	"Rename": true, "ReadFile": true, "WriteFile": true, "ReadDir": true,
}

// coveredOSFunc reports whether fn is one of the os package calls that
// must sit under a fault point.
func coveredOSFunc(fn *types.Func) bool {
	return osPkgFuncs[fn.Name()] && analysis.IsPkgFunc(fn, "os", fn.Name())
}

func run(pass *analysis.Pass) error {
	if declsByName == nil {
		declsByName = make(map[string][]siteDecl)
	}
	// atPoints[fn] lists positions of faultinject.At calls per function.
	type ioCall struct {
		pos  token.Pos
		desc string
	}
	atPoints := map[ast.Node][]token.Pos{}
	ioCalls := map[ast.Node][]ioCall{}

	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		encl := analysis.EnclosingFunc(stack)
		switch {
		case isFaultinjectAt(fn):
			recordSite(pass, call)
			if encl != nil {
				atPoints[encl] = append(atPoints[encl], call.Pos())
			}
		case coveredOSFunc(fn):
			if encl != nil {
				ioCalls[encl] = append(ioCalls[encl], ioCall{call.Pos(), "os." + fn.Name()})
			}
		case fileWriteMethods[fn.Name()] && isOSFileMethod(fn):
			if encl != nil {
				ioCalls[encl] = append(ioCalls[encl], ioCall{call.Pos(), "(*os.File)." + fn.Name()})
			}
		}
		return true
	})

	for encl, calls := range ioCalls {
		points := atPoints[encl]
		for _, io := range calls {
			covered := false
			for _, p := range points {
				if p < io.pos {
					covered = true
					break
				}
			}
			if !covered {
				pass.Reportf(io.pos, "durable I/O call %s has no preceding faultinject.At point in this function; the chaos suite cannot kill the protocol here", io.desc)
			}
		}
	}
	return nil
}

// recordSite validates one At call's site argument and records its
// declaration for the cross-package uniqueness check.
func recordSite(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "faultinject.At site name must be a compile-time string constant so tests can arm it")
		return
	}
	name := constant.StringVal(tv.Value)
	d := siteDecl{pos: arg.Pos(), name: name}
	switch a := ast.Unparen(arg).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		var id *ast.Ident
		if sel, ok := a.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else {
			id = a.(*ast.Ident)
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			d.key = obj.Pkg().Path() + "." + obj.Name()
			d.pos = obj.Pos()
		}
	}
	if d.key == "" {
		// A bare literal: every occurrence is its own declaration, so two
		// identical literals at different sites collide (use a const).
		d.key = pass.Fset.Position(arg.Pos()).String()
	}
	declsByName[name] = append(declsByName[name], d)
}

// finish reports site names declared more than once across all passes.
func finish(report func(analysis.Diagnostic)) {
	names := make([]string, 0, len(declsByName))
	for name := range declsByName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		decls := declsByName[name]
		distinct := map[string]siteDecl{}
		for _, d := range decls {
			if _, ok := distinct[d.key]; !ok {
				distinct[d.key] = d
			}
		}
		if len(distinct) < 2 {
			continue
		}
		keys := make([]string, 0, len(distinct))
		for k := range distinct {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		// Report every declaration after the first.
		for _, k := range keys[1:] {
			report(analysis.Diagnostic{
				Pos:     distinct[k].pos,
				Message: "faultinject site name " + strconv.Quote(name) + " is declared more than once; site names must be unique so arming one cannot fire another",
			})
		}
	}
}

func isFaultinjectAt(fn *types.Func) bool {
	if fn.Name() != "At" || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "repro/internal/faultinject" || strings.HasSuffix(path, "/faultinject")
}

// isOSFileMethod reports whether fn is a method with *os.File (or
// os.File) receiver.
func isOSFileMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return analysis.IsNamed(sig.Recv().Type(), "os", "File")
}

package faultpoint_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/analyzers/faultpoint"
)

func TestFaultpoint(t *testing.T) {
	analysistest.Run(t, "testdata", faultpoint.Analyzer, "faultpoint", "faultpoint_clean")
}

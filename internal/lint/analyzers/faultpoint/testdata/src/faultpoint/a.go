package faultpoint

import (
	"os"

	"repro/internal/faultinject"
)

const (
	siteFirst  = "fp/dup"
	siteSecond = "fp/dup" // want `faultinject site name "fp/dup" is declared more than once`
	siteLate   = "fp/late"
)

func visitBoth() {
	_ = faultinject.At(siteFirst)
	_ = faultinject.At(siteSecond)
}

func dynamicSite(name string) {
	_ = faultinject.At(name) // want `faultinject.At site name must be a compile-time string constant`
}

func writeNoPoint(f *os.File, b []byte) error {
	_, err := f.Write(b) // want `durable I/O call \(\*os.File\)\.Write has no preceding faultinject.At point`
	return err
}

func renameNoPoint(from, to string) error {
	return os.Rename(from, to) // want `durable I/O call os.Rename has no preceding faultinject.At point`
}

func pointAfter(f *os.File) error {
	err := f.Sync() // want `durable I/O call \(\*os.File\)\.Sync has no preceding faultinject.At point`
	_ = faultinject.At(siteLate)
	return err
}

package faultpoint

import (
	"os"

	"repro/internal/faultinject"
)

const (
	siteFirst  = "fp/dup"
	siteSecond = "fp/dup" // want `faultinject site name "fp/dup" is declared more than once`
	siteLate   = "fp/late"
)

func visitBoth() {
	_ = faultinject.At(siteFirst)
	_ = faultinject.At(siteSecond)
}

func dynamicSite(name string) {
	_ = faultinject.At(name) // want `faultinject.At site name must be a compile-time string constant`
}

func writeNoPoint(f *os.File, b []byte) error {
	_, err := f.Write(b) // want `durable I/O call \(\*os.File\)\.Write has no preceding faultinject.At point`
	return err
}

func renameNoPoint(from, to string) error {
	return os.Rename(from, to) // want `durable I/O call os.Rename has no preceding faultinject.At point`
}

func readNoPoint(path string) ([]byte, error) {
	return os.ReadFile(path) // want `durable I/O call os.ReadFile has no preceding faultinject.At point`
}

func writeFileNoPoint(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want `durable I/O call os.WriteFile has no preceding faultinject.At point`
}

func readDirNoPoint(dir string) ([]os.DirEntry, error) {
	return os.ReadDir(dir) // want `durable I/O call os.ReadDir has no preceding faultinject.At point`
}

func pointAfter(f *os.File) error {
	err := f.Sync() // want `durable I/O call \(\*os.File\)\.Sync has no preceding faultinject.At point`
	_ = faultinject.At(siteLate)
	return err
}

package faultpoint_clean

import (
	"os"

	"repro/internal/faultinject"
)

// Unique site names, one per durable I/O step.
const (
	siteWrite  = "fpclean/write"
	siteSync   = "fpclean/fsync"
	siteRename = "fpclean/rename"
)

// commit follows the write → fsync → rename protocol with a kill point
// armed before every step.
func commit(f *os.File, b []byte, from, to string) error {
	if err := faultinject.At(siteWrite); err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := faultinject.At(siteSync); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := faultinject.At(siteRename); err != nil {
		return err
	}
	return os.Rename(from, to)
}

package faultpoint_clean

import (
	"os"

	"repro/internal/faultinject"
)

// Unique site names, one per durable I/O step.
const (
	siteWrite  = "fpclean/write"
	siteSync   = "fpclean/fsync"
	siteRename = "fpclean/rename"
	siteRecord = "fpclean/record"
	siteLoad   = "fpclean/load"
	siteScan   = "fpclean/scan"
)

// commit follows the write → fsync → rename protocol with a kill point
// armed before every step.
func commit(f *os.File, b []byte, from, to string) error {
	if err := faultinject.At(siteWrite); err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := faultinject.At(siteSync); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := faultinject.At(siteRename); err != nil {
		return err
	}
	return os.Rename(from, to)
}

// writeRecord covers the os package-level write shorthand.
func writeRecord(path string, b []byte) error {
	if err := faultinject.At(siteRecord); err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// loadRecord covers the protocol read path: a lease or snapshot read
// must be killable, since the caller decides ownership from it.
func loadRecord(path string) ([]byte, error) {
	if err := faultinject.At(siteLoad); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// scan covers the directory walk feeding the refresh protocol.
func scan(dir string) ([]os.DirEntry, error) {
	if err := faultinject.At(siteScan); err != nil {
		return nil, err
	}
	return os.ReadDir(dir)
}

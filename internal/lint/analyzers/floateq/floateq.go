// Package floateq forbids == and != between floating-point expressions
// in the numeric solver packages. PAPER.md §4's Geo-I constraints are
// satisfied only to tolerance — exactly-equal floats are either an
// accident of one code path or a latent bug (the class EnforceGeoI was
// built to repair), so equality tests must be written against an
// explicit tolerance.
//
// Allowed patterns:
//   - comparison against a compile-time constant exactly zero
//     (`x == 0` sentinels: unset fields, exact sparsity checks);
//   - comparison against ±Inf produced by math.Inf (infinity is exact);
//   - self-comparison `x != x` (the NaN idiom, though math.IsNaN is
//     preferred and reads better).
//
// Everything else needs math.Abs(a-b) <= tol — or a
// //lint:ignore floateq <reason> when bitwise identity is genuinely
// intended (e.g. detecting an unchanged dual point).
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= between floats except zero/Inf sentinels and the NaN self-compare idiom",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
			return true
		}
		if isZeroConst(pass, be.X) || isZeroConst(pass, be.Y) {
			return true
		}
		if isInfCall(pass, be.X) || isInfCall(pass, be.Y) {
			return true
		}
		if sameIdent(be.X, be.Y) {
			return true
		}
		pass.Reportf(be.OpPos, "floating-point %s comparison; compare |a-b| against a tolerance (or math.IsNaN)", be.Op)
		return true
	})
	return nil
}

// isFloat reports whether e has floating-point type (float32/float64 or
// an untyped float constant).
func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to 0.
func isZeroConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isInfCall reports whether e is a call to math.Inf.
func isInfCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return analysis.IsPkgFunc(analysis.Callee(pass.TypesInfo, call), "math", "Inf")
}

// sameIdent reports whether x and y are the same plain identifier
// (`v != v`, the NaN check).
func sameIdent(x, y ast.Expr) bool {
	xi, ok1 := ast.Unparen(x).(*ast.Ident)
	yi, ok2 := ast.Unparen(y).(*ast.Ident)
	return ok1 && ok2 && xi.Name == yi.Name
}

package floateq

func cmpEq(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func cmpNeq(a, b float64) bool {
	if a != b { // want `floating-point != comparison`
		return true
	}
	return false
}

func cmp32(a, b float32) bool {
	return a == b // want `floating-point == comparison`
}

func indexed(xs []float64) int {
	n := 0
	for i := range xs {
		if xs[i] == xs[0] { // want `floating-point == comparison`
			n++
		}
	}
	return n
}

func nonZeroConst(x float64) bool {
	return x == 1.5 // want `floating-point == comparison`
}

package floateq_clean

import "math"

const tol = 1e-9

func close(a, b float64) bool {
	return math.Abs(a-b) <= tol
}

func zeroSentinel(x float64) bool {
	return x == 0 // exact-zero sentinel is allowed
}

func zeroLeft(x float64) bool {
	return 0.0 != x
}

func isInf(x float64) bool {
	return x == math.Inf(1) // infinity is exact
}

func isNaN(x float64) bool {
	return x != x // the NaN self-compare idiom
}

func ints(a, b int) bool {
	return a == b // only floats are in scope
}

// Package geoigate guards the service's core privacy invariant: no
// mechanism that entered the process as bytes — decoded from the wire
// or loaded from the durable store — may reach the serving path without
// passing the EnforceGeoI repair gate. Disk and network bytes are
// untrusted even after checksums (CHANGES.md PR 1 fixed exactly this
// class by hand): only EnforceGeoI proves the (ε, r)-Geo-I constraint
// set holds to tolerance and repairs the residue.
//
// The mechanical form of the invariant is function-local: any function
// that calls a mechanism-yielding loader — a function or method whose
// name starts with Load or Decode and whose results include a
// *Mechanism or *StoredEntry — must itself contain a call to
// EnforceGeoI. Splitting load and gate across helpers hides the flow
// from reviewers just as it hides it from this analyzer; keep them in
// one function (see Server.entryFromStore for the canonical shape).
package geoigate

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "geoigate",
	Doc:  "functions loading/decoding mechanisms must gate them through EnforceGeoI",
	Run:  run,
}

// mechanismTypeNames are the named result types that mark a call as
// yielding an untrusted mechanism.
var mechanismTypeNames = map[string]bool{"Mechanism": true, "StoredEntry": true}

func run(pass *analysis.Pass) error {
	// Per enclosing function: positions of mechanism-yielding sources,
	// and whether an EnforceGeoI call appears.
	type source struct {
		pos  ast.Node
		name string
	}
	sources := map[ast.Node][]source{}
	gated := map[ast.Node]bool{}

	pass.WithStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		encl := analysis.EnclosingFuncDecl(stack)
		if encl == nil {
			return true
		}
		if fn.Name() == "EnforceGeoI" {
			gated[encl] = true
			return true
		}
		if (strings.HasPrefix(fn.Name(), "Load") || strings.HasPrefix(fn.Name(), "Decode")) && yieldsMechanism(fn) {
			sources[encl] = append(sources[encl], source{call, fn.Name()})
		}
		return true
	})

	for encl, srcs := range sources {
		if gated[encl] {
			continue
		}
		fd := encl.(*ast.FuncDecl)
		for _, s := range srcs {
			pass.Reportf(s.pos.Pos(), "%s yields an untrusted mechanism but %s never calls EnforceGeoI; decoded/loaded mechanisms must pass the repair gate before they can be cached or served", s.name, fd.Name.Name)
		}
	}
	return nil
}

// yieldsMechanism reports whether any direct result of fn is (a pointer
// to) a named type called Mechanism or StoredEntry.
func yieldsMechanism(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if n := analysis.NamedType(sig.Results().At(i).Type()); n != nil && mechanismTypeNames[n.Obj().Name()] {
			return true
		}
	}
	return false
}

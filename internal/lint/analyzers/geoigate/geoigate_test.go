package geoigate_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/analyzers/geoigate"
)

func TestGeoigate(t *testing.T) {
	analysistest.Run(t, "testdata", geoigate.Analyzer, "geoigate", "geoigate_clean")
}

package geoigate

import "errors"

// Mechanism is an obfuscation mechanism as decoded from bytes.
type Mechanism struct {
	Rows [][]float64
}

// StoredEntry is a durable snapshot wrapping a mechanism.
type StoredEntry struct {
	M *Mechanism
}

// DecodeMechanism parses untrusted bytes.
func DecodeMechanism(b []byte) (*Mechanism, error) {
	if len(b) == 0 {
		return nil, errors.New("empty")
	}
	return &Mechanism{}, nil
}

// LoadEntry reads a snapshot from disk.
func LoadEntry(path string) (*StoredEntry, error) {
	if path == "" {
		return nil, errors.New("no path")
	}
	return &StoredEntry{M: &Mechanism{}}, nil
}

func fromWire(b []byte) (*Mechanism, error) {
	m, err := DecodeMechanism(b) // want `DecodeMechanism yields an untrusted mechanism but fromWire never calls EnforceGeoI`
	if err != nil {
		return nil, err
	}
	return m, nil
}

func warmStart(path string) *Mechanism {
	e, err := LoadEntry(path) // want `LoadEntry yields an untrusted mechanism but warmStart never calls EnforceGeoI`
	if err != nil {
		return nil
	}
	return e.M
}

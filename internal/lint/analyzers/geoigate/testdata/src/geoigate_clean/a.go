package geoigate_clean

import "errors"

type Mechanism struct {
	Rows [][]float64
}

// EnforceGeoI is the repair gate: it proves the constraint set holds to
// tolerance (stub for the analyzer test).
func EnforceGeoI(m *Mechanism) error {
	if m == nil {
		return errors.New("nil mechanism")
	}
	return nil
}

func DecodeMechanism(b []byte) (*Mechanism, error) {
	if len(b) == 0 {
		return nil, errors.New("empty")
	}
	return &Mechanism{}, nil
}

// fromWire gates the decoded mechanism before returning it.
func fromWire(b []byte) (*Mechanism, error) {
	m, err := DecodeMechanism(b)
	if err != nil {
		return nil, err
	}
	if err := EnforceGeoI(m); err != nil {
		return nil, err
	}
	return m, nil
}

// buildFresh constructs a mechanism locally: nothing untrusted, no gate
// needed.
func buildFresh(k int) *Mechanism {
	return &Mechanism{Rows: make([][]float64, k)}
}

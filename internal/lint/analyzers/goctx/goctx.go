// Package goctx implements the goctx analyzer: every spawned goroutine
// must be cancellable or joined. A `go` statement passes if the
// spawned body — or any module function reachable from it through the
// call graph — does at least one of:
//
//   - check a context: call Done, Err, or Deadline on a value whose
//     type is named Context
//   - signal a join: call Done on a WaitGroup, close a channel, or
//     send on a channel (the drain idiom)
//
// Otherwise the goroutine can outlive shutdown with no way to stop it,
// and the analyzer reports the `go` statement. The reachability search
// is what makes the check interprocedural: `go s.loop(ctx)` passes
// because loop's transitive body selects on ctx.Done, even though the
// go statement itself shows none of that.
package goctx

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:       "goctx",
	Doc:        "every spawned goroutine must be cancellable (reach a ctx check) or joined (WaitGroup, channel close/send)",
	RunProgram: run,
}

type checker struct {
	g     *callgraph.Graph
	sites map[*ast.CallExpr][]*callgraph.Node
	memo  map[*callgraph.Node]int // 0 unknown, 1 visiting, 2 no, 3 yes
}

func run(pp *analysis.ProgramPass) error {
	c := &checker{
		g:     callgraph.Build(pp.Packages),
		sites: make(map[*ast.CallExpr][]*callgraph.Node),
		memo:  make(map[*callgraph.Node]int),
	}
	for _, n := range c.g.Nodes {
		for _, e := range n.Out {
			c.sites[e.Site] = append(c.sites[e.Site], e.Callee)
		}
	}
	for _, n := range c.g.SortedNodes() {
		if !pp.InScope(n.Pass.Pkg.Path()) || n.Decl.Body == nil {
			continue
		}
		nn := n
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			gs, ok := x.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !c.spawnOK(nn, gs) {
				pp.Reportf(gs.Pos(), "goroutine is not cancellable or joined: no ctx.Done/Err check, WaitGroup.Done, or channel close/send reachable from the spawned body")
			}
			return true
		})
	}
	return nil
}

// spawnOK reports whether the goroutine spawned by gs is cancellable
// or joined.
func (c *checker) spawnOK(n *callgraph.Node, gs *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return c.bodyOK(n, lit.Body)
	}
	for _, tgt := range c.sites[gs.Call] {
		if c.nodeOK(tgt) {
			return true
		}
	}
	// A spawned call with no module target (external or func value):
	// nothing to prove against; stay silent rather than guess.
	return len(c.sites[gs.Call]) == 0
}

// nodeOK memoizes bodyOK over declared functions, tolerating recursion.
func (c *checker) nodeOK(n *callgraph.Node) bool {
	switch c.memo[n] {
	case 2:
		return false
	case 3:
		return true
	case 1:
		return false // recursive cycle: let the outer frame decide
	}
	if n.Decl.Body == nil {
		return false
	}
	c.memo[n] = 1
	ok := c.bodyOK(n, n.Decl.Body)
	if ok {
		c.memo[n] = 3
	} else {
		c.memo[n] = 2
	}
	return ok
}

// bodyOK scans one body for a cancel/join signal, following module
// calls transitively.
func (c *checker) bodyOK(n *callgraph.Node, body *ast.BlockStmt) bool {
	ok := false
	ast.Inspect(body, func(x ast.Node) bool {
		if ok {
			return false
		}
		switch v := x.(type) {
		case *ast.SendStmt:
			ok = true
			return false
		case *ast.CallExpr:
			if isClose(n, v) || c.callOK(n, v) {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}

// callOK reports whether one call is itself a cancel/join signal or
// leads to one through a module callee.
func (c *checker) callOK(n *callgraph.Node, call *ast.CallExpr) bool {
	if fn := analysis.Callee(n.Pass.TypesInfo, call); fn != nil {
		recv := ""
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named := analysis.NamedType(sig.Recv().Type()); named != nil {
				recv = named.Obj().Name()
			}
		}
		switch recv {
		case "Context":
			if fn.Name() == "Done" || fn.Name() == "Err" || fn.Name() == "Deadline" {
				return true
			}
		case "WaitGroup":
			if fn.Name() == "Done" {
				return true
			}
		}
	}
	for _, tgt := range c.sites[call] {
		if c.nodeOK(tgt) {
			return true
		}
	}
	return false
}

// isClose reports a close(ch) builtin call.
func isClose(n *callgraph.Node, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := n.Pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

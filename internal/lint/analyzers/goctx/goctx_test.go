package goctx

import (
	"testing"

	"repro/internal/lint/analysistest"
)

func TestGoctx(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "goctx", "goctx_clean")
}

// Violating package: goroutines with no cancellation or join signal
// anywhere in their transitive bodies. The spawned work is in separate
// functions, so the check must walk the call graph to prove there is
// no ctx check downstream either.
package goctx

type Context struct{}

func (c *Context) Done() chan struct{} { return nil }
func (c *Context) Err() error          { return nil }

func spin() {
	for {
	}
}

func forever() {
	spin()
}

func start() {
	go forever() // want `goroutine is not cancellable or joined`
}

func startLit(n int) {
	go func() { // want `goroutine is not cancellable or joined`
		for i := 0; i < n; i++ {
			spin()
		}
	}()
}

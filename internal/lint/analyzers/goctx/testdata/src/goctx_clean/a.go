// Clean package: every goroutine is cancellable (a ctx check sits
// somewhere in the transitive body) or joined (WaitGroup.Done, channel
// close, or send) — the analyzer must stay silent.
package goctx_clean

type Context struct{}

func (c *Context) Done() chan struct{} { return nil }
func (c *Context) Err() error          { return nil }

type WaitGroup struct{ n int }

func (w *WaitGroup) Add(d int) {}
func (w *WaitGroup) Done()     {}
func (w *WaitGroup) Wait()     {}

// The ctx check is two calls down: interprocedural pass.
func loop(ctx *Context) {
	for {
		if step(ctx) {
			return
		}
	}
}

func step(ctx *Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

func start(ctx *Context) {
	go loop(ctx)
}

func joined(wg *WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func closer() chan struct{} {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	return done
}

func drains(out chan int) {
	go func() {
		out <- 1
	}()
}

// Package lockorder implements the lockorder analyzer: all code paths
// must acquire locks in one global order. It builds a whole-program
// lock graph — an edge A → B for every site that acquires B while
// (possibly transitively, through module calls) holding A — and
// reports every edge that participates in a cycle, plus re-acquisition
// of a lock already held.
//
// Lock identity is structural, not per-instance: s.mu on a *Server
// receiver is the lock "Server.mu" everywhere, a package-level or
// local mutex is its variable name, and the lease flock (functions
// named lockLease/unlockLease) is the lock "LEASE.flock". Acquire
// sites are calls to methods named Lock/RLock (sync) or lock (the
// ctx-aware mutexes); Unlock/RUnlock/unlock release. Deferred releases
// hold to function end, matching the dominant idiom.
//
// Goroutine bodies start with an empty held set — a spawned goroutine
// is not ordered after the locks its spawner holds — and lock
// acquisitions inside goroutine bodies are not charged to callers
// either. Branch bodies see a copy of the held set, so an early-return
// unlock cannot leak releases into the fallthrough path.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "lock acquisition must follow one global order across mutexes and the lease flock; any cycle is a potential deadlock",
	RunProgram: run,
}

var acquireNames = map[string]bool{"Lock": true, "RLock": true, "lock": true}
var releaseNames = map[string]bool{"Unlock": true, "RUnlock": true, "unlock": true}

// edge is one observed ordering: to acquired while holding from.
type edge struct{ from, to string }

type site struct {
	pos token.Pos
	pkg string
}

type checker struct {
	g     *callgraph.Graph
	edges map[edge]site // first site observed per ordering
	// acquires memoizes the set of locks a function (or its module
	// callees, goroutine bodies excluded) can acquire.
	acquires  map[*callgraph.Node]map[string]bool
	visiting  map[*callgraph.Node]bool
	siteIndex map[*ast.CallExpr][]*callgraph.Node
}

func run(pp *analysis.ProgramPass) error {
	c := &checker{
		g:        callgraph.Build(pp.Packages),
		edges:    make(map[edge]site),
		acquires: make(map[*callgraph.Node]map[string]bool),
		visiting: make(map[*callgraph.Node]bool),
	}
	for _, n := range c.g.SortedNodes() {
		if n.Decl.Body != nil {
			c.walkStmts(n, n.Decl.Body.List, nil)
		}
	}
	c.report(pp)
	return nil
}

// lockID names the lock a call acquires or releases, or "" if the call
// is not a lock operation. ok distinguishes acquire from release.
func lockID(info *typesInfo, call *ast.CallExpr) (id string, acquire, isLock bool) {
	fn := analysis.Callee(info.info, call)
	if fn == nil {
		return "", false, false
	}
	switch fn.Name() {
	case "lockLease":
		return "LEASE.flock", true, true
	case "unlockLease":
		return "LEASE.flock", false, true
	}
	isAcq, isRel := acquireNames[fn.Name()], releaseNames[fn.Name()]
	if !isAcq && !isRel {
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	return lockName(info, sel.X), isAcq, true
}

// lockName derives the structural identity of the mutex expression:
// "OwnerType.field" for field selections, the variable name otherwise.
func lockName(info *typesInfo, x ast.Expr) string {
	x = ast.Unparen(x)
	if sel, ok := x.(*ast.SelectorExpr); ok {
		if s, ok := info.info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if named := analysis.NamedType(s.Recv()); named != nil {
				return named.Obj().Name() + "." + sel.Sel.Name
			}
		}
		return sel.Sel.Name
	}
	if id, ok := x.(*ast.Ident); ok {
		return id.Name
	}
	return "<lock>"
}

// typesInfo lets lockID/lockName work for any node's package.
type typesInfo struct{ info *types.Info }

// walkStmts processes a statement list in order, threading the held
// set through and recording ordering edges.
func (c *checker) walkStmts(n *callgraph.Node, stmts []ast.Stmt, held []string) []string {
	for _, s := range stmts {
		held = c.walkStmt(n, s, held)
	}
	return held
}

func (c *checker) walkStmt(n *callgraph.Node, s ast.Stmt, held []string) []string {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return c.walkStmts(n, st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = c.walkStmt(n, st.Init, held)
		}
		held = c.scanExpr(n, st.Cond, held)
		c.walkStmts(n, st.Body.List, copyHeld(held))
		if st.Else != nil {
			c.walkStmt(n, st.Else, copyHeld(held))
		}
		return held
	case *ast.ForStmt:
		if st.Init != nil {
			held = c.walkStmt(n, st.Init, held)
		}
		if st.Cond != nil {
			held = c.scanExpr(n, st.Cond, held)
		}
		c.walkStmts(n, st.Body.List, copyHeld(held))
		return held
	case *ast.RangeStmt:
		held = c.scanExpr(n, st.X, held)
		c.walkStmts(n, st.Body.List, copyHeld(held))
		return held
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		for _, clause := range bodyOf(st).List {
			switch cl := clause.(type) {
			case *ast.CaseClause:
				c.walkStmts(n, cl.Body, copyHeld(held))
			case *ast.CommClause:
				c.walkStmts(n, cl.Body, copyHeld(held))
			}
		}
		return held
	case *ast.GoStmt:
		// The goroutine runs concurrently: empty held set, and nothing
		// it acquires is ordered after the spawner's locks.
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			c.walkStmts(n, lit.Body.List, nil)
		}
		return held
	case *ast.DeferStmt:
		// Deferred releases run at function end (the idiom); deferred
		// closures run with the locks already released.
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			c.walkStmts(n, lit.Body.List, nil)
		}
		return held
	case *ast.LabeledStmt:
		return c.walkStmt(n, st.Stmt, held)
	default:
		var exprs []ast.Expr
		switch st := s.(type) {
		case *ast.ExprStmt:
			exprs = []ast.Expr{st.X}
		case *ast.AssignStmt:
			exprs = append(append(exprs, st.Rhs...), st.Lhs...)
		case *ast.ReturnStmt:
			exprs = st.Results
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						exprs = append(exprs, vs.Values...)
					}
				}
			}
		case *ast.SendStmt:
			exprs = []ast.Expr{st.Chan, st.Value}
		}
		for _, e := range exprs {
			held = c.scanExpr(n, e, held)
		}
		return held
	}
}

// scanExpr visits the calls inside an expression in source order,
// updating the held set and recording edges. Function literals run
// under the current held set (they execute where they are passed);
// their GoStmt/Defer interiors are handled by walkStmt.
func (c *checker) scanExpr(n *callgraph.Node, e ast.Expr, held []string) []string {
	if e == nil {
		return held
	}
	info := &typesInfo{info: n.Pass.TypesInfo}
	ast.Inspect(e, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			held = c.walkStmts(n, v.Body.List, held)
			return false
		case *ast.CallExpr:
			// Arguments evaluate before the call.
			for _, a := range v.Args {
				held = c.scanExpr(n, a, held)
			}
			held = c.applyCall(n, info, v, held)
			return false
		}
		return true
	})
	return held
}

// applyCall updates the held set for one call and records edges, both
// for direct acquisitions and for locks the callee can acquire.
func (c *checker) applyCall(n *callgraph.Node, info *typesInfo, call *ast.CallExpr, held []string) []string {
	if id, acquire, isLock := lockID(info, call); isLock {
		if acquire {
			for _, h := range held {
				c.addEdge(n, h, id, call.Pos())
			}
			if contains(held, id) {
				c.addEdge(n, id, id, call.Pos())
			}
			return append(held, id)
		}
		return remove(held, id)
	}
	if len(held) > 0 {
		for _, tgt := range c.targets(call) {
			for a := range c.transitiveAcquires(tgt) {
				for _, h := range held {
					c.addEdge(n, h, a, call.Pos())
				}
				if contains(held, a) {
					c.addEdge(n, a, a, call.Pos())
				}
			}
		}
	}
	return held
}

// targets resolves a call site to its callgraph nodes.
func (c *checker) targets(call *ast.CallExpr) []*callgraph.Node {
	var out []*callgraph.Node
	// The graph stores sites per caller; a direct lookup by identity is
	// cheaper than indexing every site, and call sites are unique nodes.
	if c.siteIndex == nil {
		c.siteIndex = make(map[*ast.CallExpr][]*callgraph.Node)
		for _, n := range c.g.Nodes {
			for _, e := range n.Out {
				c.siteIndex[e.Site] = append(c.siteIndex[e.Site], e.Callee)
			}
		}
	}
	out = c.siteIndex[call]
	return out
}

// transitiveAcquires returns the set of lock IDs a function can acquire
// in its own body or through module callees, excluding goroutine
// bodies (those run concurrently, not under the caller's locks).
func (c *checker) transitiveAcquires(n *callgraph.Node) map[string]bool {
	if s, ok := c.acquires[n]; ok {
		return s
	}
	if c.visiting[n] {
		return nil // recursion: the other frames collect the rest
	}
	c.visiting[n] = true
	defer delete(c.visiting, n)
	set := make(map[string]bool)
	info := &typesInfo{info: n.Pass.TypesInfo}
	if n.Decl.Body != nil {
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			switch v := x.(type) {
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if id, acquire, isLock := lockID(info, v); isLock && acquire {
					set[id] = true
				}
				for _, tgt := range c.targets(v) {
					for a := range c.transitiveAcquires(tgt) {
						set[a] = true
					}
				}
			}
			return true
		})
	}
	c.acquires[n] = set
	return set
}

func (c *checker) addEdge(n *callgraph.Node, from, to string, pos token.Pos) {
	e := edge{from, to}
	if _, ok := c.edges[e]; !ok {
		c.edges[e] = site{pos: pos, pkg: n.Pass.Pkg.Path()}
	}
}

// report finds cycles in the lock graph and reports every in-scope
// edge participating in one.
func (c *checker) report(pp *analysis.ProgramPass) {
	adj := make(map[string][]string)
	for e := range c.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	cyclic := cyclicNodes(adj)
	var ordered []edge
	for e := range c.edges {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].from != ordered[j].from {
			return ordered[i].from < ordered[j].from
		}
		return ordered[i].to < ordered[j].to
	})
	for _, e := range ordered {
		s := c.edges[e]
		if !pp.InScope(s.pkg) {
			continue
		}
		if e.from == e.to {
			pp.Report(analysis.Diagnostic{Pos: s.pos, Message: fmt.Sprintf("lock %q acquired while already held: self-deadlock", e.to)})
			continue
		}
		if cyclic[e.from] && cyclic[e.to] && sameComponent(adj, e.from, e.to) {
			pp.Report(analysis.Diagnostic{Pos: s.pos, Message: fmt.Sprintf("acquiring %q while holding %q participates in a lock-order cycle", e.to, e.from)})
		}
	}
}

// cyclicNodes returns the lock IDs inside any strongly connected
// component of size > 1 (self-loops are reported separately).
func cyclicNodes(adj map[string][]string) map[string]bool {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	compSize := make(map[int]bool) // component id -> size > 1
	var stack []string
	counter, compID := 0, 0
	var names []string
	for n := range adj {
		names = append(names, n)
	}
	sort.Strings(names)
	var strongconnect func(v string)
	strongconnect = func(v string) {
		counter++
		index[v] = counter
		low[v] = counter
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			compID++
			size := 0
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = compID
				size++
				if w == v {
					break
				}
			}
			compSize[compID] = size > 1
		}
	}
	for _, v := range names {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	out := make(map[string]bool)
	for v, id := range comp {
		if compSize[id] {
			out[v] = true
		}
	}
	return out
}

// sameComponent reports whether a path exists from to back to from,
// i.e. the edge closes a cycle.
func sameComponent(adj map[string][]string, from, to string) bool {
	seen := map[string]bool{}
	var walk func(v string) bool
	walk = func(v string) bool {
		if v == from {
			return true
		}
		if seen[v] {
			return false
		}
		seen[v] = true
		for _, w := range adj[v] {
			if walk(w) {
				return true
			}
		}
		return false
	}
	return walk(to)
}

func copyHeld(h []string) []string {
	out := make([]string, len(h))
	copy(out, h)
	return out
}

func contains(h []string, id string) bool {
	for _, x := range h {
		if x == id {
			return true
		}
	}
	return false
}

func remove(h []string, id string) []string {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i] == id {
			return append(append([]string{}, h[:i]...), h[i+1:]...)
		}
	}
	return h
}

func bodyOf(s ast.Stmt) *ast.BlockStmt {
	switch st := s.(type) {
	case *ast.SwitchStmt:
		return st.Body
	case *ast.TypeSwitchStmt:
		return st.Body
	case *ast.SelectStmt:
		return st.Body
	}
	return &ast.BlockStmt{}
}

package lockorder

import (
	"testing"

	"repro/internal/lint/analysistest"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "lockorder", "lockorder_clean")
}

// Violating package: two call paths take the same pair of locks in
// opposite orders, and one path re-acquires a held lock through a
// helper. Every finding needs the call graph: the conflicting
// acquisitions live in different functions.
package lockorder

type Mutex struct{ state int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type Store struct {
	mu   Mutex
	quar Mutex
}

// scan acquires Store.mu, then Store.quar through sweep.
func (s *Store) scan() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweep() // want `acquiring "Store.quar" while holding "Store.mu" participates in a lock-order cycle`
}

func (s *Store) sweep() {
	s.quar.Lock()
	defer s.quar.Unlock()
}

// reverse closes the cycle: Store.quar first, then Store.mu.
func (s *Store) reverse() {
	s.quar.Lock()
	defer s.quar.Unlock()
	s.mu.Lock() // want `acquiring "Store.mu" while holding "Store.quar" participates in a lock-order cycle`
	s.mu.Unlock()
}

// again re-acquires Store.mu through a helper while holding it.
func (s *Store) again() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.helperLock() // want `lock "Store.mu" acquired while already held: self-deadlock`
}

func (s *Store) helperLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// Clean package: every path agrees on the order Store.mu before
// Store.quar, releases break the chain, and goroutines are not ordered
// after their spawner's locks — the analyzer must stay silent.
package lockorder_clean

type Mutex struct{ state int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type Store struct {
	mu   Mutex
	quar Mutex
}

func (s *Store) scan() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweep()
}

func (s *Store) sweep() {
	s.quar.Lock()
	defer s.quar.Unlock()
}

// Sequential, released in between: no ordering edge.
func (s *Store) sequential() {
	s.quar.Lock()
	s.quar.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// A goroutine's acquisitions are concurrent with the spawner's locks.
func (s *Store) spawn() {
	s.quar.Lock()
	defer s.quar.Unlock()
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
	}()
}

// An early-return unlock in a branch must not leak into the
// fallthrough path.
func (s *Store) branchy(done bool) {
	s.mu.Lock()
	if done {
		s.mu.Unlock()
		return
	}
	s.sweep()
	s.mu.Unlock()
}

// Package nilness reports dereferences that are provably nil, a
// conservative AST-level subset of golang.org/x/tools' SSA-based
// nilness analyzer (not part of go vet's default set). Two patterns,
// both chosen for a near-zero false-positive rate:
//
//  1. Guarded-nil use: inside the then-branch of `if x == nil { ... }`
//     (or the else-branch of `if x != nil`), x is dereferenced —
//     selected through, indexed, called or unary-dereferenced — before
//     any assignment to x in that branch.
//
//  2. Never-assigned pointer: a function-local `var p *T` that is
//     dereferenced somewhere in the function although no statement in
//     the function ever assigns to p or takes its address.
//
// Method calls are treated as dereferences too: a nil receiver is only
// rarely legal, and such APIs can carry a //lint:ignore nilness note.
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "report dereferences of provably nil values (guarded-nil use, never-assigned pointers)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	checkGuardedNil(pass)
	checkNeverAssigned(pass)
	return nil
}

// checkGuardedNil implements pattern 1.
func checkGuardedNil(pass *analysis.Pass) {
	pass.Inspect(func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		be, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		var v *ast.Ident
		switch {
		case isNilIdent(pass, be.Y):
			v, _ = ast.Unparen(be.X).(*ast.Ident)
		case isNilIdent(pass, be.X):
			v, _ = ast.Unparen(be.Y).(*ast.Ident)
		}
		if v == nil {
			return true
		}
		obj := pass.TypesInfo.Uses[v]
		if obj == nil || !nilable(obj.Type()) {
			return true
		}
		var branch ast.Stmt
		switch be.Op {
		case token.EQL: // if v == nil { <v is nil here> }
			branch = ifs.Body
		case token.NEQ: // if v != nil {} else { <v is nil here> }
			branch = ifs.Else
		}
		if branch == nil {
			return true
		}
		reportDerefsBeforeAssign(pass, branch, obj)
		return true
	})
}

// reportDerefsBeforeAssign walks branch in source order, reporting
// dereferences of obj until (if ever) obj is reassigned.
func reportDerefsBeforeAssign(pass *analysis.Pass, branch ast.Stmt, obj types.Object) {
	assigned := token.Pos(0) // position of first reassignment, 0 = none
	ast.Inspect(branch, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					if assigned == 0 || as.Pos() < assigned {
						assigned = as.Pos()
					}
				}
			}
		}
		return true
	})
	ast.Inspect(branch, func(n ast.Node) bool {
		if assigned != 0 && n != nil && n.Pos() >= assigned {
			return false
		}
		if d, ok := derefOf(pass, n); ok && pass.TypesInfo.Uses[d] == obj {
			pass.Reportf(d.Pos(), "%s is nil on this path (guarded by the enclosing if) and is dereferenced", d.Name)
		}
		return true
	})
}

// checkNeverAssigned implements pattern 2.
func checkNeverAssigned(pass *analysis.Pass) {
	pass.Inspect(func(n ast.Node) bool {
		// Each FuncDecl body is scanned once, nested closures included;
		// descending into FuncLits separately would double-report.
		fn, ok := n.(*ast.FuncDecl)
		if !ok {
			return true
		}
		body := fn.Body
		if body == nil {
			return true
		}
		// Candidates: `var p *T` (no initializer) declared in this body.
		candidates := map[types.Object]*ast.Ident{}
		ast.Inspect(body, func(n ast.Node) bool {
			ds, ok := n.(*ast.DeclStmt)
			if !ok {
				return true
			}
			gd, ok := ds.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if _, isPtr := types.Unalias(obj.Type()).(*types.Pointer); isPtr {
						candidates[obj] = name
					}
				}
			}
			return true
		})
		if len(candidates) == 0 {
			return true
		}
		// Disqualify candidates that are ever assigned or have their
		// address taken (including inside nested closures).
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						delete(candidates, pass.TypesInfo.Uses[id])
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
						delete(candidates, pass.TypesInfo.Uses[id])
					}
				}
			case *ast.RangeStmt:
				if id, ok := n.Key.(*ast.Ident); ok {
					delete(candidates, pass.TypesInfo.Uses[id])
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					delete(candidates, pass.TypesInfo.Uses[id])
				}
			}
			return true
		})
		if len(candidates) == 0 {
			return true
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if d, ok := derefOf(pass, n); ok {
				if obj := pass.TypesInfo.Uses[d]; obj != nil {
					if _, isCand := candidates[obj]; isCand {
						pass.Reportf(d.Pos(), "%s is declared without initialization, never assigned, and dereferenced here: it is always nil", d.Name)
					}
				}
			}
			return true
		})
		return true
	})
}

// derefOf reports whether n dereferences a plain identifier, returning
// it: x.f (pointer base), *x, x[i], x(...) on a nilable callee.
func derefOf(pass *analysis.Pass, n ast.Node) (*ast.Ident, bool) {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		id, ok := ast.Unparen(n.X).(*ast.Ident)
		if !ok {
			return nil, false
		}
		// Only pointer bases hard-crash; interfaces/values do not.
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			if _, isPtr := types.Unalias(obj.Type()).(*types.Pointer); isPtr {
				return id, true
			}
		}
	case *ast.StarExpr:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			return id, true
		}
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				switch types.Unalias(obj.Type()).Underlying().(type) {
				case *types.Slice, *types.Pointer:
					return id, true
				}
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				if _, isFunc := types.Unalias(obj.Type()).Underlying().(*types.Signature); isFunc {
					return id, true
				}
			}
		}
	}
	return nil, false
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// nilable reports whether a value of type t can be nil.
func nilable(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

package nilness_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/analyzers/nilness"
)

func TestNilness(t *testing.T) {
	analysistest.Run(t, "testdata", nilness.Analyzer, "nilness", "nilness_clean")
}

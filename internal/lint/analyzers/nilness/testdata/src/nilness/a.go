package nilness

type node struct {
	next *node
	val  int
}

func guarded(n *node) int {
	if n == nil {
		return n.val // want `n is nil on this path`
	}
	return 0
}

func guardedElse(n *node) int {
	if n != nil {
		return n.val
	} else {
		return n.val // want `n is nil on this path`
	}
}

func guardedDeref(p *int) int {
	if p == nil {
		return *p // want `p is nil on this path`
	}
	return *p
}

func neverAssigned() int {
	var p *node
	return p.val // want `p is declared without initialization, never assigned, and dereferenced`
}

package nilness_clean

type node struct {
	next *node
	val  int
}

func guardedSafely(n *node) int {
	if n == nil {
		return 0
	}
	return n.val
}

func assignedInBranch(n *node) int {
	if n == nil {
		n = &node{}
		return n.val // n was repaired before the dereference
	}
	return n.val
}

func assignedLater() int {
	var p *node
	p = &node{val: 3}
	return p.val
}

func addressTaken() int {
	var p *node
	fill(&p)
	return p.val
}

func fill(pp **node) { *pp = &node{val: 1} }

// Package nodeterm keeps the numeric kernel packages deterministic:
// identical inputs must produce identical mechanisms, or warm-start
// reproducibility, snapshot digests and the regression benchmarks all
// silently decay. It forbids
//
//   - wall-clock reads: time.Now, time.Since, time.Until;
//   - the global math/rand (and math/rand/v2) source: rand.Intn,
//     rand.Float64, rand.Shuffle, rand.Seed, ... — any package-level
//     function that draws from shared process-wide state.
//
// Explicitly seeded generators remain fine: rand.New(rand.NewSource(s))
// is deterministic and is how mechanism sampling receives its RNG.
// Timing belongs to the callers (internal/core records Elapsed; the
// server records solve times) — kernels compute, they do not observe
// the clock.
package nodeterm

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall-clock and global-RNG reads in deterministic kernel packages",
	Run:  run,
}

// allowedRand are math/rand package-level functions that only construct
// explicitly seeded generators.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		// Methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are fine; only
		// package-level functions touch global state or the clock.
		if sig := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if clockFuncs[fn.Name()] {
				pass.Reportf(call.Pos(), "wall-clock read time.%s in a deterministic kernel package; take timings in the caller", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !allowedRand[fn.Name()] {
				pass.Reportf(call.Pos(), "global math/rand call rand.%s in a deterministic kernel package; thread an explicitly seeded *rand.Rand instead", fn.Name())
			}
		}
		return true
	})
	return nil
}

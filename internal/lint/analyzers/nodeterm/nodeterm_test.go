package nodeterm_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/analyzers/nodeterm"
)

func TestNodeterm(t *testing.T) {
	analysistest.Run(t, "testdata", nodeterm.Analyzer, "nodeterm", "nodeterm_clean")
}

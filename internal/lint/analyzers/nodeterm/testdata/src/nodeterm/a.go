package nodeterm

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want `wall-clock read time.Now`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time.Since`
}

func deadline(t1 time.Time) time.Duration {
	return time.Until(t1) // want `wall-clock read time.Until`
}

func draw() float64 {
	return rand.Float64() // want `global math/rand call rand.Float64`
}

func pick(n int) int {
	return rand.Intn(n) // want `global math/rand call rand.Intn`
}

func mix(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand call rand.Shuffle`
}

package nodeterm_clean

import (
	"math/rand"
	"time"
)

func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed)) // constructing a seeded generator is allowed
	return r.Intn(n)                    // and its methods draw from explicit state
}

func span(a, b time.Time) time.Duration {
	return a.Sub(b) // time.Time methods are fine; only the wall clock is banned
}

func scale(d time.Duration) time.Duration {
	return 2 * d
}

// Package privtaint implements the privtaint analyzer: a worker's true
// location must leave the program only through a Geo-I mechanism. It
// runs the interprocedural taint engine (internal/lint/taint) over the
// whole-program call graph with the paper's roles:
//
// Sources (where a true location is born):
//   - reading the Locations field of an ObfuscateRequest — the decoded
//     wire batch of raw worker positions
//   - calling Simulate in a package named trace — ground-truth
//     trajectories for experiments
//
// SolveSpec fields are deliberately NOT sources: the spec carries the
// public task instance (network digest, epsilon, discretisation), not
// worker positions.
//
// Sanitizers (the only sanctioned exits):
//   - Sample / SampleInterval methods on a type named Mechanism — the
//     Geo-I draw itself
//   - EnforceGeoI — the repair gate (its output is a certified
//     mechanism, not location data)
//
// Sinks (where raw coordinates must never arrive):
//   - Encode on an Encoder (json/gob wire and store encoding)
//   - Write on an http ResponseWriter
//   - fmt.Fprint* stream writes
//   - package log prints and Logger methods
//   - os.WriteFile
//
// Matching is by type/function name, not import path, following the
// suite convention that lets analysistest exercise analyzers on
// synthetic testdata packages.
package privtaint

import (
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/taint"
)

var Analyzer = &analysis.Analyzer{
	Name:       "privtaint",
	Doc:        "true-location values must pass through a Geo-I mechanism sample before reaching any HTTP/log/store/encode sink",
	RunProgram: run,
}

var logNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

var config = taint.Config{
	SourceField: func(owner *types.Named, field *types.Var) bool {
		return owner.Obj().Name() == "ObfuscateRequest" && field.Name() == "Locations"
	},
	SourceFunc: func(fn *types.Func) bool {
		return fn.Name() == "Simulate" && fn.Pkg() != nil && fn.Pkg().Name() == "trace"
	},
	Sanitizer: func(fn *types.Func) bool {
		if fn.Name() == "EnforceGeoI" {
			return true
		}
		if fn.Name() != "Sample" && fn.Name() != "SampleInterval" {
			return false
		}
		return recvNamed(fn) == "Mechanism"
	},
	Sink: func(fn *types.Func) string {
		switch recvNamed(fn) {
		case "Encoder":
			if fn.Name() == "Encode" {
				return "a wire/store encoder"
			}
		case "ResponseWriter":
			if fn.Name() == "Write" {
				return "an HTTP response"
			}
		case "Logger":
			if logNames[fn.Name()] {
				return "a log"
			}
		}
		if fn.Pkg() != nil {
			switch {
			case fn.Pkg().Name() == "fmt" && (fn.Name() == "Fprint" || fn.Name() == "Fprintf" || fn.Name() == "Fprintln"):
				return "a stream write"
			case fn.Pkg().Name() == "log" && logNames[fn.Name()]:
				return "a log"
			case fn.Pkg().Name() == "os" && fn.Name() == "WriteFile":
				return "a file write"
			}
		}
		return ""
	},
}

// recvNamed returns the name of fn's receiver type (behind pointers),
// or "" for package-level functions.
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n := analysis.NamedType(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}

func run(pp *analysis.ProgramPass) error {
	g := callgraph.Build(pp.Packages)
	for _, f := range taint.Analyze(g, config) {
		if !pp.InScope(f.Node.Pass.Pkg.Path()) {
			continue
		}
		if f.Via != "" {
			pp.Reportf(f.Pos, "true location reaches %s via call to %s without Geo-I obfuscation; sample through the mechanism first", f.Sink, f.Via)
		} else {
			pp.Reportf(f.Pos, "true location reaches %s without Geo-I obfuscation; sample through the mechanism first", f.Sink)
		}
	}
	return nil
}

package privtaint

import (
	"testing"

	"repro/internal/lint/analysistest"
)

func TestPrivtaint(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "privtaint", "privtaint_clean")
}

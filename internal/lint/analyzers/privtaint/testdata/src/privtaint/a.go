// Violating package: true locations reach sinks without passing
// through the mechanism. The source and the sink live in different
// functions, so every finding here requires interprocedural summaries.
package privtaint

type Loc struct {
	Road      int
	FromStart float64
}

type ObfuscateRequest struct {
	Epsilon   float64
	Locations []Loc
}

type Mechanism struct{ k int }

func (m *Mechanism) Sample(l Loc) Loc { return Loc{Road: m.k} }

type Encoder struct{}

func (e *Encoder) Encode(v interface{}) error { return nil }

// handle reads the source; the sink is two calls away (emit → relay).
func handle(req ObfuscateRequest, enc *Encoder) {
	for _, loc := range req.Locations {
		emit(enc, loc) // want `true location reaches a wire/store encoder via call to emit`
	}
}

func emit(enc *Encoder, l Loc) {
	relay(enc, l)
}

func relay(enc *Encoder, l Loc) {
	_ = enc.Encode(l)
}

// first returns a tainted value; the caller sinks it directly.
func first(req ObfuscateRequest) Loc {
	return req.Locations[0]
}

func dump(req ObfuscateRequest, enc *Encoder) {
	l := first(req)
	_ = enc.Encode(l) // want `true location reaches a wire/store encoder without Geo-I obfuscation`
}

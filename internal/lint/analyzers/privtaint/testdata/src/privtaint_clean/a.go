// Clean package: every true location passes through Mechanism.Sample
// before any sink, including along the same interprocedural chains the
// violating package uses — the analyzer must stay silent.
package privtaint_clean

type Loc struct {
	Road      int
	FromStart float64
}

type ObfuscateRequest struct {
	Epsilon   float64
	Locations []Loc
}

type Mechanism struct{ k int }

func (m *Mechanism) Sample(l Loc) Loc { return Loc{Road: m.k} }

type Encoder struct{}

func (e *Encoder) Encode(v interface{}) error { return nil }

// handle samples before handing the value down the same emit chain.
func handle(req ObfuscateRequest, m *Mechanism, enc *Encoder) {
	for _, loc := range req.Locations {
		emit(enc, m.Sample(loc))
	}
}

func emit(enc *Encoder, l Loc) {
	_ = enc.Encode(l)
}

// Batch metadata derived by len() is not location data.
func count(req ObfuscateRequest, enc *Encoder) {
	_ = enc.Encode(len(req.Locations))
}

// The public spec fields are not sources.
func spec(req ObfuscateRequest, enc *Encoder) {
	_ = enc.Encode(req.Epsilon)
}

// Package shadow reports shadowed variable declarations, in the spirit
// of golang.org/x/tools' vet "shadow" analyzer (not part of go vet's
// default set). A declaration shadows when an inner scope re-declares a
// name that a function-local variable of the identical type already
// holds — and the outer variable is still used after the inner scope
// closes, which is the pattern where a reader (or a later edit)
// plausibly confuses the two. Shadowing where the outer variable is
// never touched again is deliberate scoping and stays silent, and the
// name "err" is exempt — idiomatic Go re-declares it constantly.
package shadow

import (
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "report inner declarations shadowing a same-typed outer variable that is used afterwards",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// usesAfter[obj] records the latest position at which obj is read.
	lastUse := map[types.Object]token.Pos{}
	for id, obj := range pass.TypesInfo.Uses {
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			if id.Pos() > lastUse[obj] {
				lastUse[obj] = id.Pos()
			}
		}
	}

	for id, obj := range pass.TypesInfo.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || v.Name() == "_" || v.Name() == "err" {
			continue
		}
		inner := v.Parent()
		if inner == nil {
			continue
		}
		// Walk enclosing scopes up to (excluding) package scope looking
		// for a same-named, same-typed, earlier variable.
		for s := inner.Parent(); s != nil && s != pass.Pkg.Scope() && s.Parent() != types.Universe; s = s.Parent() {
			outer := s.Lookup(v.Name())
			if outer == nil {
				continue
			}
			ov, ok := outer.(*types.Var)
			if !ok || ov == v || ov.Pos() >= v.Pos() {
				break
			}
			if !types.Identical(ov.Type(), v.Type()) {
				break
			}
			// Only report when the outer variable is used after the inner
			// scope ends — that is where the two get confused.
			if lastUse[ov] > inner.End() {
				pass.Reportf(id.Pos(), "declaration of %q shadows a %s declared at %s that is used after this scope ends", v.Name(), types.TypeString(v.Type(), types.RelativeTo(pass.Pkg)), pass.Fset.Position(ov.Pos()))
			}
			break
		}
	}
	return nil
}

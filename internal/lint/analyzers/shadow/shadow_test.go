package shadow_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/analyzers/shadow"
)

func TestShadow(t *testing.T) {
	analysistest.Run(t, "testdata", shadow.Analyzer, "shadow", "shadow_clean")
}

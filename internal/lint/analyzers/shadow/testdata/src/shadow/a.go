package shadow

func sum(items []int) int {
	total := 0
	for _, it := range items {
		total := total + it // want `declaration of "total" shadows`
		_ = total
	}
	return total
}

func lookup(m map[string]int, key string) int {
	v := m[key]
	if w, ok := m[key+"!"]; ok {
		v := w // want `declaration of "v" shadows`
		_ = v
	}
	return v
}

package shadow_clean

import "errors"

// err shadowing is idiomatic Go and exempt.
func errShadow() error {
	err := errors.New("outer")
	if true {
		err := errors.New("inner")
		_ = err
	}
	return err
}

// The outer variable is dead after the loop: deliberate scoping, silent.
func noUseAfter(items []int) int {
	n := 0
	before := n
	for _, it := range items {
		n := it
		_ = n
	}
	return before
}

// Different types cannot be confused the same way.
func differentType() string {
	v := 1
	{
		v := "inner"
		_ = v
	}
	return string(rune(v))
}

// Package callgraph builds a whole-program call graph over the
// packages the hermetic loader type-checked from source, in the style
// of golang.org/x/tools/go/callgraph/cha: static calls resolve to their
// single target, and dynamic calls through an interface method resolve
// by class-hierarchy analysis to every concrete method in the program
// whose receiver type implements the interface. The result
// over-approximates the true call graph (CHA ignores which concrete
// types actually flow to a call site), which is the right direction for
// the analyzers built on it: a taint path or lock edge is never missed,
// only possibly reported conservatively.
//
// Nodes exist only for functions with source in the loaded program
// (module packages and testdata trees); calls into GOROOT packages have
// no node and are the engine's job to model. Function literals are not
// nodes: call sites inside a literal belong to the enclosing declared
// function, which over-approximates when the literal escapes but keeps
// every flow attributable to a declared function.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// Node is one declared function or method with source in the program.
type Node struct {
	// Func is the canonical types object; the map key in Graph.Nodes.
	Func *types.Func
	// Decl is the function's source declaration (body may be nil for
	// assembly-backed declarations).
	Decl *ast.FuncDecl
	// Pass is the package pass the declaration lives in.
	Pass *analysis.Pass
	// Out lists this function's resolved call sites in source order.
	Out []Edge
}

// Edge is one resolved call: Site invokes Callee. A dynamic interface
// call produces one edge per CHA-feasible concrete method.
type Edge struct {
	Site   *ast.CallExpr
	Callee *Node
}

// Graph is the program call graph.
type Graph struct {
	// Nodes maps every declared function in the program to its node.
	Nodes map[*types.Func]*Node
}

// Build constructs the CHA call graph over the given packages. The
// passes must share one types importer (one loader), so a *types.Func
// used in one package is identical to its definition in another.
func Build(pkgs []*analysis.Pass) *Graph {
	g := &Graph{Nodes: make(map[*types.Func]*Node)}

	// Pass 1: one node per declared function, plus the program's
	// concrete named types for interface-call resolution.
	var concrete []types.Type
	for _, pass := range pkgs {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Nodes[fn] = &Node{Func: fn, Decl: fd, Pass: pass}
			}
		}
		scope := pass.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			concrete = append(concrete, named)
		}
	}

	// Pass 2: resolve every call site inside every node's declaration
	// (function literals included — they belong to the enclosing decl).
	for _, node := range g.Nodes {
		if node.Decl.Body == nil {
			continue
		}
		n := node
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(n.Pass.TypesInfo, call)
			if fn == nil {
				return true // call through a function value or a conversion
			}
			if recv := recvInterface(fn); recv != nil {
				for _, callee := range g.implementers(fn, recv, concrete) {
					n.Out = append(n.Out, Edge{Site: call, Callee: callee})
				}
				return true
			}
			if callee, ok := g.Nodes[fn]; ok {
				n.Out = append(n.Out, Edge{Site: call, Callee: callee})
			}
			return true
		})
		sort.SliceStable(n.Out, func(i, j int) bool { return n.Out[i].Site.Pos() < n.Out[j].Site.Pos() })
	}
	return g
}

// recvInterface returns the interface type a method is declared on, or
// nil for package functions and concrete methods.
func recvInterface(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// implementers resolves an interface method call to every concrete
// method in the program whose type satisfies the interface (CHA).
func (g *Graph) implementers(fn *types.Func, iface *types.Interface, concrete []types.Type) []*Node {
	var out []*Node
	for _, t := range concrete {
		impl := t
		if !types.Implements(t, iface) {
			p := types.NewPointer(t)
			if !types.Implements(p, iface) {
				continue
			}
			impl = p
		}
		sel := types.NewMethodSet(impl).Lookup(fn.Pkg(), fn.Name())
		if sel == nil {
			continue
		}
		m, ok := sel.Obj().(*types.Func)
		if !ok {
			continue
		}
		if node, ok := g.Nodes[m]; ok {
			out = append(out, node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i].Func, out[j].Func) })
	return out
}

// less orders functions deterministically: by package path, then full
// name, then declaration position.
func less(a, b *types.Func) bool {
	ap, bp := pkgPath(a), pkgPath(b)
	if ap != bp {
		return ap < bp
	}
	if a.FullName() != b.FullName() {
		return a.FullName() < b.FullName()
	}
	return a.Pos() < b.Pos()
}

func pkgPath(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// SortedNodes returns the graph's nodes ordered deterministically.
func (g *Graph) SortedNodes() []*Node {
	nodes := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return less(nodes[i].Func, nodes[j].Func) })
	return nodes
}

// SCCs returns the graph's strongly connected components in reverse
// topological order: every component appears after the components it
// calls into, so a bottom-up summary computation can process them in
// slice order and only iterate within a component (Tarjan's algorithm
// emits components in exactly this order).
func (g *Graph) SCCs() [][]*Node {
	type state struct {
		index, low int
		onStack    bool
	}
	var (
		sccs    [][]*Node
		stack   []*Node
		states  = make(map[*Node]*state, len(g.Nodes))
		counter = 0
	)
	var strongconnect func(n *Node)
	strongconnect = func(n *Node) {
		st := &state{index: counter, low: counter}
		counter++
		states[n] = st
		stack = append(stack, n)
		st.onStack = true
		for _, e := range n.Out {
			if e.Callee == nil {
				continue
			}
			ws, seen := states[e.Callee]
			if !seen {
				strongconnect(e.Callee)
				if cs := states[e.Callee]; cs.low < st.low {
					st.low = cs.low
				}
			} else if ws.onStack && ws.index < st.low {
				st.low = ws.index
			}
		}
		if st.low == st.index {
			var scc []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[m].onStack = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range g.SortedNodes() {
		if _, seen := states[n]; !seen {
			strongconnect(n)
		}
	}
	return sccs
}

// Reaches reports whether from can reach any function satisfying pred
// through the graph's edges (from itself included). Visited memoizes
// across calls so a whole-program sweep stays linear; pass a fresh map
// per predicate.
func Reaches(from *Node, pred func(*types.Func) bool, visited map[*Node]int) bool {
	const (
		inProgress = 1
		no         = 2
		yes        = 3
	)
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		switch visited[n] {
		case yes:
			return true
		case no, inProgress:
			return false
		}
		if pred(n.Func) {
			visited[n] = yes
			return true
		}
		visited[n] = inProgress
		for _, e := range n.Out {
			if e.Callee != nil && walk(e.Callee) {
				visited[n] = yes
				return true
			}
		}
		visited[n] = no
		return false
	}
	return walk(from)
}

// Pos returns a deterministic anchor position for a node.
func (n *Node) Pos() token.Pos { return n.Decl.Name.Pos() }

package callgraph

import (
	"go/types"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	l, err := loader.New(".")
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir("testdata/src/cg")
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{Fset: p.Fset, Files: p.Files, Pkg: p.Types, TypesInfo: p.Info}
	return Build([]*analysis.Pass{pass})
}

func (g *Graph) node(t *testing.T, name string) *Node {
	t.Helper()
	for fn, n := range g.Nodes {
		if fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

func callees(n *Node) map[string]bool {
	out := make(map[string]bool)
	for _, e := range n.Out {
		out[e.Callee.Func.FullName()] = true
	}
	return out
}

func TestStaticAndInterfaceEdges(t *testing.T) {
	g := buildTestGraph(t)
	top := g.node(t, "top")
	got := callees(top)
	// The interface call resolves to both implementations (CHA), and
	// the static call to ping resolves to exactly ping. Full names
	// embed the synthetic testdata import path; match on the suffix.
	for _, want := range []string{"cg.A).Run", "cg.B).Run"} {
		found := false
		for name := range got {
			if strings.HasSuffix(name, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("top: missing CHA edge to %s (have %v)", want, got)
		}
	}
	if len(top.Out) != 3 {
		t.Errorf("top: want 3 edges (2 CHA + ping), got %d", len(top.Out))
	}
}

func TestSCCOrder(t *testing.T) {
	g := buildTestGraph(t)
	sccs := g.SCCs()
	pos := make(map[*Node]int)
	for i, scc := range sccs {
		for _, n := range scc {
			pos[n] = i
		}
	}
	ping, pong := g.node(t, "ping"), g.node(t, "pong")
	if pos[ping] != pos[pong] {
		t.Errorf("ping and pong should share an SCC (got %d, %d)", pos[ping], pos[pong])
	}
	// Reverse topological: leaf's component comes before its callers'.
	leaf, top := g.node(t, "leaf"), g.node(t, "top")
	if !(pos[leaf] < pos[top]) {
		t.Errorf("leaf SCC (%d) must precede top SCC (%d)", pos[leaf], pos[top])
	}
	aRun := g.node(t, "Run")
	_ = aRun // Run nodes exist; ordering vs top checked via leaf
}

func TestReaches(t *testing.T) {
	g := buildTestGraph(t)
	top := g.node(t, "top")
	visited := make(map[*Node]int)
	if !Reaches(top, func(fn *types.Func) bool { return fn.Name() == "leaf" }, visited) {
		t.Error("top should reach leaf through (A).Run")
	}
	leaf := g.node(t, "leaf")
	if Reaches(leaf, func(fn *types.Func) bool { return fn.Name() == "top" }, make(map[*Node]int)) {
		t.Error("leaf must not reach top")
	}
}

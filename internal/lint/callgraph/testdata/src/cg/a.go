// Test program for the call-graph builder: a static call chain, a
// mutually recursive pair, and an interface call with two
// implementations.
package cg

type Runner interface{ Run() }

type A struct{}

func (A) Run() { leaf() }

type B struct{}

func (B) Run() {}

func leaf() {}

func top(r Runner) {
	r.Run()
	ping()
}

func ping() { pong() }

func pong() { ping() }

// Package directive implements vlplint's false-positive escape hatch:
//
//	//lint:ignore analyzer1[,analyzer2...] reason
//
// placed on the offending line or on the line directly above it
// suppresses matching diagnostics. The reason is mandatory — an ignore
// without a justification is itself reported by the driver — so every
// suppression in the tree documents why the invariant does not apply.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Ignore is one parsed //lint:ignore directive.
type Ignore struct {
	// Analyzers lists the analyzer names the directive suppresses.
	Analyzers []string
	// Reason is the free-text justification (must be non-empty).
	Reason string
	// File and Line locate the directive.
	File string
	Line int
	Pos  token.Pos
}

// Covers reports whether the directive suppresses a diagnostic from the
// named analyzer at the given file and line: same line as the
// directive, or the line immediately below it.
func (ig *Ignore) Covers(analyzer, file string, line int) bool {
	if file != ig.File || (line != ig.Line && line != ig.Line+1) {
		return false
	}
	for _, a := range ig.Analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

const prefix = "//lint:ignore"

// Parse extracts every //lint:ignore directive from the files.
// Malformed directives (no analyzer list or no reason) are returned
// separately so the driver can flag them instead of silently honouring
// or dropping them.
func Parse(fset *token.FileSet, files []*ast.File) (ok []Ignore, malformed []Ignore) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, found := strings.CutPrefix(c.Text, prefix)
				if !found {
					continue
				}
				pos := fset.Position(c.Pos())
				ig := Ignore{File: pos.Filename, Line: pos.Line, Pos: c.Pos()}
				fields := strings.Fields(text)
				if len(fields) >= 2 {
					for _, name := range strings.Split(fields[0], ",") {
						if name = strings.TrimSpace(name); name != "" {
							ig.Analyzers = append(ig.Analyzers, name)
						}
					}
					ig.Reason = strings.Join(fields[1:], " ")
				}
				if len(ig.Analyzers) == 0 || ig.Reason == "" {
					malformed = append(malformed, ig)
					continue
				}
				ok = append(ok, ig)
			}
		}
	}
	return ok, malformed
}

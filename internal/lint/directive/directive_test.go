package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const src = `package p

func f() {
	//lint:ignore floateq,shadow exact sentinel comparison
	x := 1
	_ = x
}

//lint:ignore ctxflow
func g() {}
`

func TestParseAndCovers(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ok, malformed := Parse(fset, []*ast.File{f})
	if len(ok) != 1 {
		t.Fatalf("ok directives = %d, want 1", len(ok))
	}
	if len(malformed) != 1 {
		t.Fatalf("malformed directives = %d, want 1 (missing reason)", len(malformed))
	}

	ig := ok[0]
	if got := len(ig.Analyzers); got != 2 {
		t.Fatalf("analyzers = %d, want 2", got)
	}
	if ig.Reason != "exact sentinel comparison" {
		t.Errorf("reason = %q", ig.Reason)
	}
	// The directive sits on line 4; it covers that line and the next.
	if !ig.Covers("floateq", "p.go", 4) || !ig.Covers("floateq", "p.go", 5) {
		t.Error("directive should cover its own line and the line below")
	}
	if !ig.Covers("shadow", "p.go", 5) {
		t.Error("directive should cover every listed analyzer")
	}
	if ig.Covers("nilness", "p.go", 5) {
		t.Error("directive must not cover unlisted analyzers")
	}
	if ig.Covers("floateq", "p.go", 6) {
		t.Error("directive must not reach two lines down")
	}
	if ig.Covers("floateq", "q.go", 5) {
		t.Error("directive must not cover other files")
	}
}

// Package loader loads and type-checks Go packages from source without
// any dependency outside the standard library. It exists because the
// vlplint analyzers (internal/lint/analyzers) need fully type-checked
// ASTs, and this module deliberately has no external dependencies —
// golang.org/x/tools is not available — so the usual go/packages path
// is closed.
//
// The loader resolves imports in two ways: paths inside this module
// ("repro/...") are located relative to the module root and recursively
// loaded from source; everything else is delegated to the standard
// library's source importer (go/importer with the "source" compiler),
// which type-checks GOROOT packages from source and therefore works
// offline. Cgo is disabled in the build context so packages like net
// select their pure-Go fallbacks, which the source importer can handle.
//
// Only non-test files are loaded: the invariants vlplint enforces are
// contracts of production code, and test files legitimately violate
// several of them (context.Background in helpers, wall-clock timing in
// benchmarks).
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path ("repro/internal/lp"), or a
	// synthetic dir-based path for packages outside the module (the
	// analysistest testdata trees).
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages rooted at a Go module. It caches every package
// it type-checks, so loading "./..." shares one type-checked copy of
// each dependency.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset  *token.FileSet
	ctxt  build.Context
	src   types.Importer
	cache map[string]*Package // by import path
}

// New returns a Loader for the module containing dir (dir or any parent
// must hold a go.mod).
func New(dir string) (*Loader, error) {
	root, modpath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModuleRoot: root,
		ModulePath: modpath,
		fset:       token.NewFileSet(),
		ctxt:       build.Default,
		cache:      make(map[string]*Package),
	}
	// The source importer type-checks GOROOT packages from source; with
	// cgo disabled every stdlib package has a pure-Go file set it can
	// handle, keeping the loader hermetic.
	l.ctxt.CgoEnabled = false
	l.src = importer.ForCompiler(l.fset, "source", nil)
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Loaded returns every package this loader has parsed and type-checked
// from source — the requested packages plus every module-internal
// dependency pulled in to satisfy imports — sorted by import path. This
// is the program a whole-program analyzer sees: GOROOT packages are
// type-checked by the stdlib source importer and therefore have types
// but no ASTs here.
func (l *Loader) Loaded() []*Package {
	pkgs := make([]*Package, 0, len(l.cache))
	for _, p := range l.cache {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("loader: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("loader: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// Import implements types.Importer: module-internal paths load from
// source under the module root, everything else goes to the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.src.Import(path)
}

// loadPath loads the module-internal package with the given import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return l.loadDir(filepath.Join(l.ModuleRoot, rel), path)
}

// LoadDir loads the single package in dir. For directories under the
// module root the canonical import path is derived from the module
// path; other directories (testdata trees) get their directory as a
// synthetic path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := abs
	if rel, err := filepath.Rel(l.ModuleRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			path = l.ModulePath
		} else {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
	}
	return l.loadDir(abs, path)
}

// Load expands one pattern: "./..." (every package under the module
// root), a relative directory, or an import path inside the module.
func (l *Loader) Load(pattern string) ([]*Package, error) {
	switch {
	case pattern == "./..." || pattern == "...":
		return l.loadTree(l.ModuleRoot)
	case strings.HasSuffix(pattern, "/..."):
		base := strings.TrimSuffix(pattern, "/...")
		return l.loadTree(filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(base, "./"))))
	default:
		pkg, err := l.LoadDir(filepath.FromSlash(strings.TrimPrefix(pattern, "./")))
		if err != nil {
			return nil, err
		}
		return []*Package{pkg}, nil
	}
}

// loadTree loads every Go package in or below root, skipping testdata
// and hidden directories.
func (l *Loader) loadTree(root string) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(p) {
			return nil
		}
		pkg, err := l.LoadDir(p)
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

var knownGOARCH = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

var knownGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

// fileMatchesHost reports whether the host's go build would include the
// file: both the _GOOS/_GOARCH filename convention and any //go:build
// constraint must select the running platform. Unknown tags evaluate
// false, matching a default (no -tags) build.
func fileMatchesHost(dir, fn string) bool {
	parts := strings.Split(strings.TrimSuffix(fn, ".go"), "_")
	if n := len(parts); n >= 2 {
		last := parts[n-1]
		switch {
		case knownGOARCH[last]:
			if last != runtime.GOARCH {
				return false
			}
			if n >= 3 && knownGOOS[parts[n-2]] && parts[n-2] != runtime.GOOS {
				return false
			}
		case knownGOOS[last]:
			if last != runtime.GOOS {
				return false
			}
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, fn))
	if err != nil {
		return true // surface the read error at parse time instead
	}
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return true
		}
		return expr.Eval(func(tag string) bool {
			switch tag {
			case runtime.GOOS, runtime.GOARCH, "gc":
				return true
			case "unix":
				return knownGOOS[runtime.GOOS] && runtime.GOOS != "windows" &&
					runtime.GOOS != "plan9" && runtime.GOOS != "js" && runtime.GOOS != "wasip1"
			}
			if strings.HasPrefix(tag, "go1") {
				return true
			}
			return false
		})
	}
	return true
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the package in dir under import path
// path, caching the result.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	var files []*ast.File
	var name string
	for _, e := range ents {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
			continue
		}
		if !fileMatchesHost(dir, fn) {
			// Platform-gated variants (foo_amd64.go, //go:build !amd64)
			// would redeclare each other's symbols if loaded together;
			// keep exactly the set the host's go build would compile.
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, fn), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = f.Name.Name
		}
		if f.Name.Name != name {
			// Ignore stray alternate packages (e.g. a main shim next to a
			// library); analyzers run per primary package.
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

package loader

import (
	"testing"
)

// TestLoadServerPackage exercises the hard case: repro/internal/server
// imports net/http, so the stdlib source importer must type-check a
// large slice of GOROOT from source, offline, with cgo disabled.
func TestLoadServerPackage(t *testing.T) {
	l, err := New(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(l.ModuleRoot + "/internal/server")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "repro/internal/server" {
		t.Fatalf("path = %q", pkg.Path)
	}
	if pkg.Types.Name() != "server" {
		t.Fatalf("package name = %q", pkg.Types.Name())
	}
	if len(pkg.Files) == 0 || len(pkg.Info.Defs) == 0 {
		t.Fatal("no files or type info loaded")
	}
	// The cache must dedupe: loading a dependent package reuses it.
	again, err := l.LoadDir(l.ModuleRoot + "/internal/server")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Fatal("cache miss on second load")
	}
}

// TestLoadTree loads every package in the module, proving the walker
// skips testdata and resolves cross-package imports.
func TestLoadTree(t *testing.T) {
	l, err := New(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"repro":                 false,
		"repro/internal/lp":     false,
		"repro/internal/core":   false,
		"repro/cmd/vlpserved":   false,
		"repro/internal/serial": false,
	}
	for _, p := range pkgs {
		if _, ok := want[p.Path]; ok {
			want[p.Path] = true
		}
	}
	for path, seen := range want {
		if !seen {
			t.Errorf("package %s not loaded", path)
		}
	}
}

// Package registry binds the vlplint analyzers to the package scopes
// they police. Analyzers themselves are scope-free (so analysistest can
// aim them at synthetic testdata packages); the scoping lives here, in
// one table, where a reviewer can audit exactly which invariant holds
// where. cmd/vlplint consumes this table.
package registry

import (
	"regexp"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analyzers/atomicstats"
	"repro/internal/lint/analyzers/ctxflow"
	"repro/internal/lint/analyzers/errflow"
	"repro/internal/lint/analyzers/faultpoint"
	"repro/internal/lint/analyzers/floateq"
	"repro/internal/lint/analyzers/geoigate"
	"repro/internal/lint/analyzers/goctx"
	"repro/internal/lint/analyzers/lockorder"
	"repro/internal/lint/analyzers/nilness"
	"repro/internal/lint/analyzers/nodeterm"
	"repro/internal/lint/analyzers/privtaint"
	"repro/internal/lint/analyzers/shadow"
)

// Scoped is one analyzer plus the import-path scope it runs on.
type Scoped struct {
	Analyzer *analysis.Analyzer
	// Scope matches the import paths the analyzer applies to.
	Scope *regexp.Regexp
	// Why is the one-line rationale shown by vlplint -list.
	Why string
}

// All returns the full suite in a stable order.
func All() []Scoped {
	return []Scoped{
		{
			Analyzer: geoigate.Analyzer,
			Scope:    regexp.MustCompile(`^repro/internal/server$`),
			Why:      "mechanisms decoded from disk/wire must pass the EnforceGeoI repair gate before serving",
		},
		{
			Analyzer: atomicstats.Analyzer,
			Scope:    regexp.MustCompile(`^repro/internal/server$`),
			Why:      "request-path counters are lock-free by contract: atomic fields, atomic accesses",
		},
		{
			Analyzer: ctxflow.Analyzer,
			Scope:    regexp.MustCompile(`^repro/internal/(core|lp|server)$`),
			Why:      "the degradation ladder needs every solve cancellable: no detached contexts, Solve* entry points reach a ctx",
		},
		{
			Analyzer: floateq.Analyzer,
			Scope:    regexp.MustCompile(`^repro/internal/(lp|core|geoi)$`),
			Why:      "Geo-I constraints hold only to tolerance; exact float equality is a latent bug",
		},
		{
			Analyzer: faultpoint.Analyzer,
			Scope:    regexp.MustCompile(`^repro/internal/(store|serial|lp|core|faultinject|server)$`),
			Why:      "every durable I/O site is killable by the chaos suite; site names are unique constants",
		},
		{
			Analyzer: nodeterm.Analyzer,
			Scope:    regexp.MustCompile(`^repro/internal/(lp|geoi|discretize|geom|roadnet|loadgen)$`),
			Why:      "numeric kernels (sparse LP, presolve, SYRK) and the load-schedule kernel must be reproducible: no wall clock, no global RNG",
		},
		{
			Analyzer: nilness.Analyzer,
			Scope:    regexp.MustCompile(`^repro(/|$)`),
			Why:      "provably nil dereferences (conservative subset of x/tools nilness, not in go vet's default set)",
		},
		{
			Analyzer: shadow.Analyzer,
			Scope:    regexp.MustCompile(`^repro(/|$)`),
			Why:      "confusing variable shadowing (x/tools shadow, not in go vet's default set)",
		},
		{
			Analyzer: privtaint.Analyzer,
			Scope:    regexp.MustCompile(`^repro/internal/server$`),
			Why:      "whole-program taint: true locations must pass through a Geo-I mechanism sample before any HTTP/log/store sink",
		},
		{
			Analyzer: lockorder.Analyzer,
			Scope:    regexp.MustCompile(`^repro/internal/(server|store|chaos)$`),
			Why:      "whole-program lock graph: mutexes and the lease flock must be acquired in one global order",
		},
		{
			Analyzer: errflow.Analyzer,
			Scope:    regexp.MustCompile(`^repro/internal/(server|store|chaos)$`),
			Why:      "whole-program error flow: durable-I/O and lease errors must be handled, latched, or quarantined, never dropped",
		},
		{
			Analyzer: goctx.Analyzer,
			Scope:    regexp.MustCompile(`^repro/internal/(server|chaos)$`),
			Why:      "whole-program goroutine audit: every spawn must be cancellable via ctx or joined via WaitGroup/drain",
		},
	}
}

// Package taint is a forward interprocedural taint engine over the
// callgraph package. A Config names the three roles — sources (where
// taint is born: a struct field read or a function's results),
// sanitizers (calls whose results are clean no matter the arguments),
// and sinks (calls whose arguments must be clean) — and Analyze reports
// every call site where a source-derived value reaches a sink with no
// sanitizer in between.
//
// The analysis is flow- and path-insensitive inside a function (one
// taint set per variable, merged over all assignments) and
// summary-based across functions: each function gets a summary mapping
// its inputs to the taint of its results and to the sinks its inputs
// can reach, computed bottom-up over the call graph's strongly
// connected components and iterated to fixpoint within each SCC, so
// recursion converges and each function body is re-scanned only while
// its component is still changing.
//
// Taint sets are uint64 bitsets: bit i (< 63) means "derived from input
// i of the enclosing function" (the receiver, when present, is input
// 0), and bit 63 (SourceBit) means "derived from a source". Calls to
// functions outside the loaded program are handled conservatively —
// every argument flows to every result — with two exceptions: builtins
// that measure rather than carry data (len, cap) and allocation
// builtins return clean values, which keeps len(req.Locations) usable
// in error messages. Writes through a parameter's pointee are not
// propagated back to callers; none of the invariants this engine
// enforces launder taint that way.
package taint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// SourceBit marks a value derived from a source, as opposed to one
// derived from an enclosing function's inputs.
const SourceBit = 63

const sourceMask = uint64(1) << SourceBit

// Config names the source, sanitizer, and sink roles for one analysis.
// Predicates match by types objects, so an analyzer can key on names
// (the testdata idiom) or on package paths as it sees fit. Any field
// may be nil.
type Config struct {
	// SourceField reports whether reading the given field of the given
	// named type yields a tainted value.
	SourceField func(owner *types.Named, field *types.Var) bool
	// SourceFunc reports whether every result of a call to fn is
	// tainted.
	SourceFunc func(fn *types.Func) bool
	// Sanitizer reports whether a call to fn returns clean values
	// regardless of its arguments. Sanitizer wins over SourceFunc and
	// Sink.
	Sanitizer func(fn *types.Func) bool
	// Sink returns a short description ("HTTP response write") when
	// arguments passed to fn must be clean, or "" otherwise.
	Sink func(fn *types.Func) string
}

// Finding is one tainted-value-reaches-sink event.
type Finding struct {
	// Pos is the call site where the tainted value left the function
	// that created it.
	Pos token.Pos
	// Node is the function containing the call site.
	Node *callgraph.Node
	// Sink describes the ultimate sink, as returned by Config.Sink.
	Sink string
	// Via is the callee the value entered on its way to the sink, or
	// "" when the sink call is direct.
	Via string
}

// summary is one function's interprocedural behaviour.
type summary struct {
	// results[i] is the taint of result i expressed over the function's
	// inputs (plus SourceBit for taint born inside).
	results []uint64
	// sinkParams has bit i set when input i can reach a sink inside
	// this function or its callees.
	sinkParams uint64
	// sinkDesc[i] describes the sink input i reaches.
	sinkDesc map[int]string
}

type engine struct {
	g   *callgraph.Graph
	cfg Config
	// sums, states, and paramBits persist across analyzeOnce calls so
	// the per-SCC fixpoint only re-scans bodies, never restarts.
	sums      map[*callgraph.Node]*summary
	states    map[*callgraph.Node]map[types.Object]uint64
	params    map[*callgraph.Node]map[types.Object]int
	resultIDs map[*callgraph.Node][]types.Object // named results, for naked returns
	sites     map[*ast.CallExpr][]*callgraph.Node
	changed   bool
}

// Analyze runs the engine over the whole program and returns the
// findings in deterministic order.
func Analyze(g *callgraph.Graph, cfg Config) []Finding {
	e := &engine{
		g:         g,
		cfg:       cfg,
		sums:      make(map[*callgraph.Node]*summary),
		states:    make(map[*callgraph.Node]map[types.Object]uint64),
		params:    make(map[*callgraph.Node]map[types.Object]int),
		resultIDs: make(map[*callgraph.Node][]types.Object),
		sites:     make(map[*ast.CallExpr][]*callgraph.Node),
	}
	for _, n := range g.Nodes {
		for _, edge := range n.Out {
			e.sites[edge.Site] = append(e.sites[edge.Site], edge.Callee)
		}
		e.prepare(n)
	}
	// Bottom-up over SCCs: callee summaries are final before callers
	// read them, except within a component, which iterates to fixpoint.
	for _, scc := range g.SCCs() {
		for {
			e.changed = false
			for _, n := range scc {
				e.analyzeOnce(n, nil)
			}
			if !e.changed {
				break
			}
		}
	}
	// Summaries and states are now fixed; one reporting pass collects
	// the sites where a source-tainted value meets a sink.
	var findings []Finding
	seen := make(map[Finding]bool)
	for _, n := range g.SortedNodes() {
		e.analyzeOnce(n, func(f Finding) {
			if !seen[f] {
				seen[f] = true
				findings = append(findings, f)
			}
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return findings[i].Pos < findings[j].Pos
		}
		if findings[i].Sink != findings[j].Sink {
			return findings[i].Sink < findings[j].Sink
		}
		return findings[i].Via < findings[j].Via
	})
	return findings
}

// prepare assigns input bits and result slots for a node.
func (e *engine) prepare(n *callgraph.Node) {
	bits := make(map[types.Object]int)
	sig, _ := n.Func.Type().(*types.Signature)
	i := 0
	if sig != nil {
		if sig.Recv() != nil {
			bits[sig.Recv()] = i
			i++
		}
		for j := 0; j < sig.Params().Len(); j++ {
			if i < SourceBit {
				bits[sig.Params().At(j)] = i
			}
			i++
		}
	}
	e.params[n] = bits
	nres := 0
	if sig != nil {
		nres = sig.Results().Len()
	}
	e.sums[n] = &summary{results: make([]uint64, nres), sinkDesc: make(map[int]string)}
	e.states[n] = make(map[types.Object]uint64)
	// Named results participate in naked returns.
	if n.Decl.Type.Results != nil {
		for _, field := range n.Decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := n.Pass.TypesInfo.Defs[name]; obj != nil {
					e.resultIDs[n] = append(e.resultIDs[n], obj)
				}
			}
		}
	}
}

// frame is the per-function view used while scanning one body.
type frame struct {
	e      *engine
	n      *callgraph.Node
	info   *types.Info
	state  map[types.Object]uint64
	bits   map[types.Object]int
	sum    *summary
	report func(Finding)
}

// analyzeOnce runs one monotone transfer pass over n's body, updating
// the persistent state and summary. With report non-nil it also emits
// findings; summaries must already be at fixpoint then.
func (e *engine) analyzeOnce(n *callgraph.Node, report func(Finding)) {
	if n.Decl.Body == nil {
		return
	}
	f := &frame{
		e:      e,
		n:      n,
		info:   n.Pass.TypesInfo,
		state:  e.states[n],
		bits:   e.params[n],
		sum:    e.sums[n],
		report: report,
	}
	ast.Inspect(n.Decl.Body, f.visit)
	// Naked returns return the named result variables' current taint.
	for i, obj := range e.resultIDs[n] {
		if i < len(f.sum.results) {
			f.mergeResult(i, f.state[obj])
		}
	}
}

func (f *frame) visit(x ast.Node) bool {
	switch s := x.(type) {
	case *ast.AssignStmt:
		f.assign(s.Lhs, s.Rhs)
	case *ast.GenDecl:
		for _, spec := range s.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			lhs := make([]ast.Expr, len(vs.Names))
			for i, name := range vs.Names {
				lhs[i] = name
			}
			f.assign(lhs, vs.Values)
		}
	case *ast.RangeStmt:
		t := f.eval(s.X)
		if s.Key != nil {
			// A slice/array index is a position, not data; only map
			// keys (and the values below) carry the container's taint.
			if tv, ok := f.info.Types[s.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					f.store(s.Key, t)
				}
			}
		}
		if s.Value != nil {
			f.store(s.Value, t)
		}
	case *ast.SendStmt:
		f.store(s.Chan, f.eval(s.Value))
	case *ast.ReturnStmt:
		for i, res := range s.Results {
			if len(s.Results) == 1 && len(f.sum.results) > 1 {
				// return f() spreading a multi-value call
				for j, t := range f.evalMulti(res, len(f.sum.results)) {
					f.mergeResult(j, t)
				}
				break
			}
			f.mergeResult(i, f.eval(res))
		}
	case *ast.CallExpr:
		f.checkSink(s)
	}
	return true
}

// assign handles both n:n assignments and 2:1/n:1 multi-value forms.
func (f *frame) assign(lhs, rhs []ast.Expr) {
	if len(lhs) == len(rhs) {
		for i := range lhs {
			f.store(lhs[i], f.eval(rhs[i]))
		}
		return
	}
	if len(rhs) == 1 {
		for i, t := range f.evalMulti(rhs[0], len(lhs)) {
			f.store(lhs[i], t)
		}
	}
}

// store propagates taint into the root variable of an lvalue. Writing
// through a field, index, or dereference taints the whole root object:
// the engine is object-granular except for source fields.
func (f *frame) store(lv ast.Expr, t uint64) {
	if t == 0 {
		return
	}
	root := rootExpr(lv)
	id, ok := root.(*ast.Ident)
	if !ok {
		return
	}
	obj := f.info.Defs[id]
	if obj == nil {
		obj = f.info.Uses[id]
	}
	if obj == nil {
		return
	}
	if _, isParam := f.bits[obj]; isParam {
		// A write into a parameter's pointee escapes to the caller;
		// see the package comment for why this is not modelled.
		return
	}
	if f.state[obj]|t != f.state[obj] {
		f.state[obj] |= t
		f.e.changed = true
	}
}

// mergeResult unions taint into summary result slot i.
func (f *frame) mergeResult(i int, t uint64) {
	if i >= len(f.sum.results) {
		return
	}
	if f.sum.results[i]|t != f.sum.results[i] {
		f.sum.results[i] |= t
		f.e.changed = true
	}
}

// mergeSinkParam records that input bit i reaches a sink described by
// desc inside this function.
func (f *frame) mergeSinkParam(bits uint64, desc string) {
	bits &^= sourceMask
	if bits == 0 {
		return
	}
	if f.sum.sinkParams|bits != f.sum.sinkParams {
		f.sum.sinkParams |= bits
		f.e.changed = true
	}
	for i := 0; i < SourceBit; i++ {
		if bits&(1<<uint(i)) != 0 {
			if _, ok := f.sum.sinkDesc[i]; !ok {
				f.sum.sinkDesc[i] = desc
			}
		}
	}
}

// eval computes the taint of an expression, collapsing multi-value
// calls to the union of their results.
func (f *frame) eval(x ast.Expr) uint64 {
	switch v := x.(type) {
	case *ast.Ident:
		obj := f.info.Uses[v]
		if obj == nil {
			obj = f.info.Defs[v]
		}
		if obj == nil {
			return 0
		}
		if bit, ok := f.bits[obj]; ok {
			return 1 << uint(bit)
		}
		return f.state[obj]
	case *ast.SelectorExpr:
		// Qualified identifier (pkg.Var)?
		if obj, ok := f.info.Uses[v.Sel]; ok {
			if _, isPkg := f.info.Uses[rootIdent(v.X)].(*types.PkgName); isPkg {
				_ = obj
				return 0
			}
		}
		base := f.eval(v.X)
		if sel, ok := f.info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			if field, ok := sel.Obj().(*types.Var); ok && f.e.cfg.SourceField != nil {
				if named := namedOf(sel.Recv()); named != nil && f.e.cfg.SourceField(named, field) {
					return base | sourceMask
				}
			}
		}
		return base
	case *ast.CallExpr:
		res := f.evalCall(v, -1)
		var t uint64
		for _, r := range res {
			t |= r
		}
		return t
	case *ast.BinaryExpr:
		return f.eval(v.X) | f.eval(v.Y)
	case *ast.UnaryExpr:
		return f.eval(v.X)
	case *ast.StarExpr:
		return f.eval(v.X)
	case *ast.ParenExpr:
		return f.eval(v.X)
	case *ast.IndexExpr:
		return f.eval(v.X)
	case *ast.SliceExpr:
		return f.eval(v.X)
	case *ast.TypeAssertExpr:
		return f.eval(v.X)
	case *ast.CompositeLit:
		var t uint64
		for _, elt := range v.Elts {
			t |= f.eval(elt)
		}
		return t
	case *ast.KeyValueExpr:
		return f.eval(v.Value)
	case *ast.FuncLit:
		return 0
	}
	return 0
}

// evalMulti computes per-result taint for an expression expected to
// produce want values (a multi-value call, type assertion, map index,
// or channel receive in a 2-valued context).
func (f *frame) evalMulti(x ast.Expr, want int) []uint64 {
	if call, ok := ast.Unparen(x).(*ast.CallExpr); ok {
		res := f.evalCall(call, want)
		for len(res) < want {
			res = append(res, 0)
		}
		return res[:want]
	}
	out := make([]uint64, want)
	out[0] = f.eval(x) // v, ok := m[k] / x.(T) / <-ch: the bool is clean
	return out
}

// evalCall computes the taint of each result of a call. want < 0 means
// "single-value context".
func (f *frame) evalCall(call *ast.CallExpr, want int) []uint64 {
	// Conversions carry their operand's taint.
	if tv, ok := f.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []uint64{f.eval(call.Args[0])}
		}
		return []uint64{0}
	}
	// Builtins: len/cap and the allocators are clean; append/copy and
	// min/max carry data through.
	if b, ok := f.builtin(call.Fun); ok {
		switch b.Name() {
		case "append", "copy", "min", "max":
			var t uint64
			for _, a := range call.Args {
				t |= f.eval(a)
			}
			return []uint64{t}
		default:
			return []uint64{0}
		}
	}
	fn := analysis.Callee(f.info, call)
	if fn != nil {
		if f.e.cfg.Sanitizer != nil && f.e.cfg.Sanitizer(fn) {
			return f.zeros(fn, want)
		}
		if f.e.cfg.SourceFunc != nil && f.e.cfg.SourceFunc(fn) {
			res := f.zeros(fn, want)
			for i := range res {
				res[i] = sourceMask
			}
			return res
		}
		if f.e.cfg.Sink != nil && f.e.cfg.Sink(fn) != "" {
			// Sink results (typically an error) are treated as clean;
			// the arguments were checked at the statement walk.
			return f.zeros(fn, want)
		}
	}
	// Known module callees: map argument taint through their result
	// summaries (union over CHA targets for interface calls).
	if targets := f.e.sites[call]; len(targets) > 0 {
		argT := f.argTaints(call)
		var res []uint64
		for _, tgt := range targets {
			sum := f.e.sums[tgt]
			if sum == nil {
				continue
			}
			for len(res) < len(sum.results) {
				res = append(res, 0)
			}
			for i, mask := range sum.results {
				res[i] |= applyMask(mask, argT)
			}
		}
		if res == nil {
			res = []uint64{0}
		}
		return res
	}
	// Unknown external callee: every argument flows to every result.
	var t uint64
	for _, a := range call.Args {
		t |= f.eval(a)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isPkg := f.info.Uses[rootIdent(sel.X)].(*types.PkgName); !isPkg {
			t |= f.eval(sel.X) // method call: the receiver flows too
		}
	} else {
		t |= f.eval(call.Fun) // call through a function value
	}
	n := want
	if n < 1 {
		n = 1
	}
	res := make([]uint64, n)
	for i := range res {
		res[i] = t
	}
	return res
}

// zeros returns a clean result vector sized to fn's signature (or want).
func (f *frame) zeros(fn *types.Func, want int) []uint64 {
	n := want
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() > n {
		n = sig.Results().Len()
	}
	if n < 1 {
		n = 1
	}
	return make([]uint64, n)
}

// argTaints computes the call's input taint vector in callee order:
// receiver first (for method calls), then arguments.
func (f *frame) argTaints(call *ast.CallExpr) []uint64 {
	var out []uint64
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isPkg := f.info.Uses[rootIdent(sel.X)].(*types.PkgName); !isPkg {
			out = append(out, f.eval(sel.X))
		}
	}
	for _, a := range call.Args {
		out = append(out, f.eval(a))
	}
	return out
}

// applyMask translates a callee-side taint mask into caller-side taint
// given the call's argument taints. Out-of-range bits (variadic tails)
// fold onto the last argument.
func applyMask(mask uint64, argT []uint64) uint64 {
	var t uint64
	if mask&sourceMask != 0 {
		t |= sourceMask
	}
	for i := 0; i < SourceBit; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		switch {
		case i < len(argT):
			t |= argT[i]
		case len(argT) > 0:
			t |= argT[len(argT)-1]
		}
	}
	return t
}

// checkSink inspects one call site: direct sink calls must receive
// clean arguments, and calls whose callee summary says "input i
// reaches a sink" are sinks for input i transitively.
func (f *frame) checkSink(call *ast.CallExpr) {
	fn := analysis.Callee(f.info, call)
	if fn != nil && f.e.cfg.Sanitizer != nil && f.e.cfg.Sanitizer(fn) {
		return
	}
	argT := f.argTaints(call)
	if fn != nil && f.e.cfg.Sink != nil {
		if desc := f.e.cfg.Sink(fn); desc != "" {
			for _, t := range argT {
				if t&sourceMask != 0 && f.report != nil {
					f.report(Finding{Pos: call.Pos(), Node: f.n, Sink: desc})
				}
				f.mergeSinkParam(t, desc)
			}
			return
		}
	}
	for _, tgt := range f.e.sites[call] {
		sum := f.e.sums[tgt]
		if sum == nil || sum.sinkParams == 0 {
			continue
		}
		for i, t := range argT {
			bit := uint64(1) << uint(i)
			if i >= SourceBit || sum.sinkParams&bit == 0 {
				continue
			}
			desc := sum.sinkDesc[i]
			if t&sourceMask != 0 && f.report != nil {
				f.report(Finding{Pos: call.Pos(), Node: f.n, Sink: desc, Via: tgt.Func.Name()})
			}
			f.mergeSinkParam(t, desc)
		}
	}
}

// builtin resolves a call target to a builtin, if it is one.
func (f *frame) builtin(fun ast.Expr) (*types.Builtin, bool) {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return nil, false
	}
	b, ok := f.info.Uses[id].(*types.Builtin)
	return b, ok
}

// rootExpr strips selectors, indexes, derefs, and parens down to the
// base expression of an lvalue.
func rootExpr(x ast.Expr) ast.Expr {
	for {
		switch v := x.(type) {
		case *ast.ParenExpr:
			x = v.X
		case *ast.SelectorExpr:
			x = v.X
		case *ast.IndexExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		default:
			return x
		}
	}
}

// rootIdent returns the base identifier of an expression, or nil.
func rootIdent(x ast.Expr) *ast.Ident {
	id, _ := rootExpr(x).(*ast.Ident)
	return id
}

// namedOf unwraps pointers to the named type of a receiver, if any.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

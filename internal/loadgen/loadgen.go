// Package loadgen is the deterministic kernel of the vlpload open-loop
// load harness: it builds a seeded arrival schedule (constant arrival
// rate, Zipf-skewed target popularity) and executes it against an
// arbitrary request function, recording per-request outcomes into the
// BENCH_serve.json report (see report.go).
//
// Open-loop means the generator fires requests at their scheduled
// instants regardless of whether earlier requests have completed — the
// arrival process is independent of service time, which is what exposes
// queueing collapse (a closed-loop driver self-throttles the moment the
// server slows down and hides exactly the tail it should measure).
//
// Determinism contract: this package is in vlplint's nodeterm scope —
// it never reads the wall clock or the global math/rand state. Time
// comes from an injected Clock (tests use VirtualClock and run with no
// real sleeps), randomness from explicitly seeded generators, so a
// (seed, rate, duration) triple always produces the identical request
// schedule.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Clock abstracts time for the scheduler so the dispatch loop is
// deterministic under test. Implementations must be safe for concurrent
// use. cmd/vlpload supplies the wall clock; tests use VirtualClock.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, whichever is first.
	Sleep(ctx context.Context, d time.Duration) error
}

// VirtualClock is a Clock whose Sleep advances the clock instantly:
// scheduler tests run an entire multi-second plan in microseconds of
// wall time and still observe exact per-arrival timestamps.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the virtual instant.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the virtual clock by d without blocking.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return nil
}

// Zipf draws target indices in [0, n) with Zipf(s, v) popularity: rank
// 0 is the most popular region digest, matching the locally-relevant
// observation that a few regions dominate serving traffic. A fixed seed
// yields a fixed pick sequence.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a seeded Zipf picker over n targets. The exponent s
// must exceed 1 and v must be at least 1 (math/rand's parameterisation);
// n must be positive.
func NewZipf(seed int64, s, v float64, n int) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: zipf needs a positive target count, got %d", n)
	}
	if !(s > 1) || !(v >= 1) {
		return nil, fmt.Errorf("loadgen: zipf requires s > 1 and v >= 1, got s=%v v=%v", s, v)
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, v, uint64(n-1))
	if z == nil {
		return nil, fmt.Errorf("loadgen: invalid zipf parameters s=%v v=%v n=%d", s, v, n)
	}
	return &Zipf{z: z}, nil
}

// Pick draws the next target index.
func (z *Zipf) Pick() int { return int(z.z.Uint64()) }

// Arrival is one scheduled request: fire at offset At from run start
// against target index Target. Index is the arrival's position in the
// plan — multi-instance harnesses use it to spread requests round-robin
// over base URLs without adding nondeterministic state to the hot loop.
type Arrival struct {
	At     time.Duration
	Target int
	Index  int
}

// Schedule builds the deterministic open-loop plan: floor(rate·duration)
// arrivals at constant spacing 1/rate, targets drawn from pick in
// arrival order. The same (rate, duration, pick-sequence) always yields
// the identical plan.
func Schedule(rate float64, duration time.Duration, pick func() int) ([]Arrival, error) {
	if !(rate > 0) {
		return nil, fmt.Errorf("loadgen: arrival rate must be positive, got %v", rate)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive, got %v", duration)
	}
	n := int(rate * duration.Seconds())
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: rate %v over %v schedules zero arrivals", rate, duration)
	}
	interval := time.Duration(float64(time.Second) / rate)
	plan := make([]Arrival, n)
	for i := range plan {
		plan[i] = Arrival{At: time.Duration(i) * interval, Target: pick(), Index: i}
	}
	return plan, nil
}

// Result is one completed request as classified by the caller's request
// function.
type Result struct {
	// Target is the spec-pool index the request was aimed at.
	Target int
	// Instance is the index into RunConfig.Targets of the base URL that
	// answered (0 in single-target runs), so multi-instance reports can
	// split latency and shed rate per fleet member.
	Instance int
	// Status is the HTTP status (0 on a transport error).
	Status int
	// Rung is the serving rung observed on a 2xx response: RungCached
	// when the response was served from cache, else the mechanism's
	// quality tier (optimal/incumbent/fallback). Empty on non-2xx.
	Rung string
	// Latency is request wall time as measured by the caller's clock.
	Latency time.Duration
}

// RungCached labels responses answered from the mechanism cache in the
// report's rung mix; non-cached 2xx responses carry their quality tier
// (serial.Quality*) instead.
const RungCached = "cached"

// Run executes the plan open-loop: the dispatcher sleeps until each
// arrival's offset and fires do in its own goroutine without waiting
// for earlier requests, then blocks until every dispatched request has
// returned. Results are positionally aligned with the dispatched prefix
// of plan; a cancelled ctx stops dispatching and truncates the result
// slice to what actually fired.
func Run(ctx context.Context, clock Clock, plan []Arrival, do func(context.Context, Arrival) Result) []Result {
	results := make([]Result, len(plan))
	start := clock.Now()
	dispatched := 0
	var wg sync.WaitGroup
	for i, a := range plan {
		if wait := a.At - clock.Now().Sub(start); wait > 0 {
			if err := clock.Sleep(ctx, wait); err != nil {
				break
			}
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = do(ctx, a)
		}()
		dispatched++
	}
	wg.Wait()
	return results[:dispatched]
}

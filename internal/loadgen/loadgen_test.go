package loadgen

import (
	"context"
	"math"
	"testing"
	"time"
)

// TestZipfDeterministic pins the exact pick sequence for fixed seeds:
// the whole point of the seeded schedule is that a BENCH_serve.json run
// is reproducible request-for-request.
func TestZipfDeterministic(t *testing.T) {
	cases := []struct {
		name string
		seed int64
		s, v float64
		n    int
	}{
		{"skewed", 1, 1.2, 1, 8},
		{"flatter", 7, 1.05, 2, 16},
		{"two targets", 42, 2.5, 1, 2},
		{"single target", 3, 1.5, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewZipf(tc.seed, tc.s, tc.v, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewZipf(tc.seed, tc.s, tc.v, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			counts := make([]int, tc.n)
			for i := 0; i < 4096; i++ {
				x, y := a.Pick(), b.Pick()
				if x != y {
					t.Fatalf("pick %d diverged between identically seeded generators: %d vs %d", i, x, y)
				}
				if x < 0 || x >= tc.n {
					t.Fatalf("pick %d = %d outside [0, %d)", i, x, tc.n)
				}
				counts[x]++
			}
			// Rank 0 must be the (weakly) most popular target.
			for i, c := range counts {
				if c > counts[0] {
					t.Fatalf("rank %d drew %d > rank 0's %d; Zipf skew inverted", i, c, counts[0])
				}
			}
		})
	}
}

func TestZipfRejectsBadParams(t *testing.T) {
	cases := []struct {
		name string
		s, v float64
		n    int
	}{
		{"s too small", 1.0, 1, 4},
		{"v too small", 1.5, 0.5, 4},
		{"zero targets", 1.5, 1, 0},
		{"negative targets", 1.5, 1, -3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewZipf(1, tc.s, tc.v, tc.n); err == nil {
				t.Fatalf("NewZipf(s=%v, v=%v, n=%d) accepted invalid parameters", tc.s, tc.v, tc.n)
			}
		})
	}
}

// TestScheduleExact pins the exact arrival plan for a seeded picker:
// constant 1/rate spacing and the picker's sequence in order.
func TestScheduleExact(t *testing.T) {
	cases := []struct {
		name     string
		rate     float64
		duration time.Duration
		want     int           // arrivals
		spacing  time.Duration // exact inter-arrival gap
	}{
		{"100rps for 1s", 100, time.Second, 100, 10 * time.Millisecond},
		{"8rps for 2s", 8, 2 * time.Second, 16, 125 * time.Millisecond},
		{"fractional count", 3, 1500 * time.Millisecond, 4, time.Second / 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := 0
			pick := func() int { seq++; return seq - 1 }
			plan, err := Schedule(tc.rate, tc.duration, pick)
			if err != nil {
				t.Fatal(err)
			}
			if len(plan) != tc.want {
				t.Fatalf("got %d arrivals, want %d", len(plan), tc.want)
			}
			for i, a := range plan {
				if a.Target != i {
					t.Fatalf("arrival %d drew target %d; picker sequence not consumed in order", i, a.Target)
				}
				if want := time.Duration(i) * tc.spacing; a.At != want {
					t.Fatalf("arrival %d scheduled at %v, want %v", i, a.At, want)
				}
			}
		})
	}
}

func TestScheduleRejectsBadParams(t *testing.T) {
	pick := func() int { return 0 }
	for _, tc := range []struct {
		name     string
		rate     float64
		duration time.Duration
	}{
		{"zero rate", 0, time.Second},
		{"negative rate", -5, time.Second},
		{"zero duration", 10, 0},
		{"rounds to zero arrivals", 0.1, time.Second},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Schedule(tc.rate, tc.duration, pick); err == nil {
				t.Fatalf("Schedule(%v, %v) accepted invalid parameters", tc.rate, tc.duration)
			}
		})
	}
}

// TestRunVirtualClockRate drives a full plan on the virtual clock — no
// wall-clock sleeps, so this runs in -short mode and stays inside the
// nodeterm determinism contract — and checks the dispatcher holds the
// configured rate exactly: elapsed virtual time equals the last
// arrival's offset and every request fired.
func TestRunVirtualClockRate(t *testing.T) {
	for _, tc := range []struct {
		name     string
		rate     float64
		duration time.Duration
	}{
		{"50rps over 10s", 50, 10 * time.Second},
		{"1000rps over 1s", 1000, time.Second},
	} {
		t.Run(tc.name, func(t *testing.T) {
			z, err := NewZipf(11, 1.3, 1, 4)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := Schedule(tc.rate, tc.duration, z.Pick)
			if err != nil {
				t.Fatal(err)
			}
			clock := NewVirtualClock(time.Unix(0, 0))
			start := clock.Now()
			results := Run(context.Background(), clock, plan, func(ctx context.Context, a Arrival) Result {
				return Result{Target: a.Target, Status: 200, Rung: RungCached, Latency: time.Millisecond}
			})
			if len(results) != len(plan) {
				t.Fatalf("dispatched %d of %d arrivals", len(results), len(plan))
			}
			elapsed := clock.Now().Sub(start)
			if want := plan[len(plan)-1].At; elapsed != want {
				t.Fatalf("virtual elapsed %v, want exactly %v (open-loop dispatcher drifted)", elapsed, want)
			}
			// Achieved rate within 1% of target once the fencepost (N
			// arrivals span N-1 intervals) is accounted for.
			achieved := float64(len(results)-1) / elapsed.Seconds()
			if math.Abs(achieved-tc.rate)/tc.rate > 0.01 {
				t.Fatalf("achieved %v rps on the virtual clock, want %v within 1%%", achieved, tc.rate)
			}
			for i, r := range results {
				if r.Target != plan[i].Target {
					t.Fatalf("result %d recorded target %d, plan says %d", i, r.Target, plan[i].Target)
				}
			}
		})
	}
}

// cancellingClock cancels its context at the n-th Sleep, simulating a
// run interrupted mid-plan at a deterministic dispatch point.
type cancellingClock struct {
	*VirtualClock
	cancel context.CancelFunc
	after  int
	sleeps int
}

func (c *cancellingClock) Sleep(ctx context.Context, d time.Duration) error {
	c.sleeps++
	if c.sleeps == c.after {
		c.cancel()
	}
	return c.VirtualClock.Sleep(ctx, d)
}

// TestRunCancelStopsDispatch cancels mid-plan and checks the dispatcher
// truncates the results to the dispatched prefix instead of firing the
// remainder.
func TestRunCancelStopsDispatch(t *testing.T) {
	plan := make([]Arrival, 100)
	for i := range plan {
		plan[i] = Arrival{At: time.Duration(i) * time.Millisecond, Target: i}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clock := &cancellingClock{VirtualClock: NewVirtualClock(time.Unix(0, 0)), cancel: cancel, after: 10}
	results := Run(ctx, clock, plan, func(ctx context.Context, a Arrival) Result {
		return Result{Target: a.Target, Status: 200, Rung: RungCached}
	})
	// The 10th sleep fires the cancel before arrival index 10 dispatches
	// (arrival 0 needs no sleep), so exactly 10 requests ran.
	if len(results) != 10 {
		t.Fatalf("cancellation at sleep 10 dispatched %d requests, want 10", len(results))
	}
	for i, r := range results {
		if r.Target != i {
			t.Fatalf("result %d carries target %d; dispatched prefix misaligned", i, r.Target)
		}
	}
}

// BENCH_serve.json: the serving-path counterpart of BENCH_solver.json.
// cmd/vlpload emits one Report per run; ci.sh's smoke gate re-validates
// the emitted file through ValidateJSON, so a field rename or a
// truncated write fails CI rather than silently producing an
// unparseable trajectory point.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"
)

// RunConfig records the knobs that shaped a run, so BENCH_serve.json
// entries are comparable across commits only when their configs match.
type RunConfig struct {
	// TargetRate is the configured open-loop arrival rate in requests
	// per second; AchievedRate in the report tells how closely the
	// dispatcher held it.
	TargetRate float64 `json:"target_rate_rps"`
	// DurationSec is the configured run length in seconds.
	DurationSec float64 `json:"duration_sec"`
	// Specs is the size of the region-digest pool.
	Specs int `json:"specs"`
	// ZipfS and ZipfV parameterise target popularity; larger S skews
	// harder toward the hottest digest.
	ZipfS float64 `json:"zipf_s"`
	ZipfV float64 `json:"zipf_v"`
	// Seed makes the whole request schedule reproducible.
	Seed int64 `json:"seed"`
	// LocsPerRequest is the obfuscate batch size per request.
	LocsPerRequest int `json:"locs_per_request"`
	// Targets lists the base URLs of a multi-instance (fleet) run in
	// round-robin order; empty for a single-target run. When set, the
	// report carries a matching per_target breakdown.
	Targets []string `json:"targets,omitempty"`
}

// Quantiles holds nearest-rank latency quantiles in milliseconds.
type Quantiles struct {
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// RungMix counts 2xx responses by serving rung: cached responses plus
// the three quality tiers of the degradation ladder for cold serves.
type RungMix struct {
	Cached    int `json:"cached"`
	Optimal   int `json:"optimal"`
	Incumbent int `json:"incumbent"`
	Fallback  int `json:"fallback"`
}

// TargetStats is one fleet member's slice of a multi-target run:
// latency quantiles and shed/error rates for the requests round-robined
// to that base URL. A follower proxying misses to the leader shows up
// here as a higher p99 on its slice, not as an error.
type TargetStats struct {
	URL       string    `json:"url"`
	Requests  int       `json:"requests"`
	LatencyMs Quantiles `json:"latency_ms"`
	Rate429   float64   `json:"rate_429"`
	ErrorRate float64   `json:"error_rate"`
}

// ServerCounters is the slice of the server's /stats snapshot worth
// archiving next to client-side latencies.
type ServerCounters struct {
	Solves           uint64 `json:"solves"`
	CacheHits        uint64 `json:"cache_hits"`
	CacheMisses      uint64 `json:"cache_misses"`
	Rejected         uint64 `json:"rejected"`
	Coalesced        uint64 `json:"coalesced_requests"`
	AdmissionRejects uint64 `json:"admission_rejects"`
	DegradedServes   uint64 `json:"degraded_serves"`
}

// Report is the BENCH_serve.json payload. GeneratedUnix and GoVersion
// are stamped by the caller (cmd/vlpload) — this package never reads
// the wall clock.
type Report struct {
	GeneratedUnix int64     `json:"generated_unix"`
	GoVersion     string    `json:"go_version"`
	Config        RunConfig `json:"config"`

	// Requests counts dispatched requests; AchievedRate is
	// Requests/elapsed and should sit near Config.TargetRate for a
	// healthy open-loop run.
	Requests     int     `json:"requests"`
	AchievedRate float64 `json:"achieved_rate_rps"`

	// LatencyMs covers every non-rejected completed request;
	// CachedLatencyMs restricts to cache-served responses — the tier
	// whose isolation from cold solves the admission control exists to
	// protect.
	LatencyMs       Quantiles `json:"latency_ms"`
	CachedLatencyMs Quantiles `json:"cached_latency_ms"`

	// Rate429 is the fraction of requests shed with 429 (solve-gate
	// backpressure or serve-gate admission rejects); ErrorRate is the
	// fraction that failed any other way (transport error or a non-2xx,
	// non-429 status). Both are in [0, 1].
	Rate429   float64 `json:"rate_429"`
	ErrorRate float64 `json:"error_rate"`

	RungMix RungMix `json:"rung_mix"`

	// PerTarget breaks latency and shed rates down by fleet member, one
	// entry per Config.Targets URL in the same order; absent for
	// single-target runs.
	PerTarget []TargetStats `json:"per_target,omitempty"`

	// Server mirrors the target's /stats counters at run end, when the
	// harness could fetch them (nil against a server it cannot reach).
	Server *ServerCounters `json:"server,omitempty"`

	// FleetTotals sums every fleet member's /stats counters into one
	// fleet-wide block on -targets runs — the per-process counters say
	// who did the work, the totals say what the fleet did. Absent for
	// single-target runs and when no member could be scraped.
	FleetTotals *ServerCounters `json:"fleet_totals,omitempty"`

	// FailoverMs is the measured leader-failover window: SIGKILL of the
	// lease holder to the first optimal-tier serve by its successor,
	// recorded by the kill-the-leader gate (cmd/vlpserved
	// TestLeaderFailover) rather than by the load harness itself. Zero
	// when the gate has not stamped the report.
	FailoverMs float64 `json:"failover_ms,omitempty"`
}

// MergeCounters sums per-member /stats snapshots into one fleet-wide
// block. Unreachable members (nil entries) are skipped; nil is returned
// when nothing was scraped at all.
func MergeCounters(parts []*ServerCounters) *ServerCounters {
	var tot *ServerCounters
	for _, p := range parts {
		if p == nil {
			continue
		}
		if tot == nil {
			tot = &ServerCounters{}
		}
		tot.Solves += p.Solves
		tot.CacheHits += p.CacheHits
		tot.CacheMisses += p.CacheMisses
		tot.Rejected += p.Rejected
		tot.Coalesced += p.Coalesced
		tot.AdmissionRejects += p.AdmissionRejects
		tot.DegradedServes += p.DegradedServes
	}
	return tot
}

// BuildReport folds per-request results into a Report. elapsed is the
// wall (or virtual) time between the first dispatch and the last
// completion as observed by the run's clock.
func BuildReport(cfg RunConfig, results []Result, elapsed time.Duration) Report {
	rep := Report{Config: cfg, Requests: len(results)}
	if elapsed > 0 {
		rep.AchievedRate = float64(len(results)) / elapsed.Seconds()
	}
	var all, cached []time.Duration
	n429, nerr := 0, 0
	for _, r := range results {
		switch {
		case r.Status == 429:
			n429++
			continue
		case r.Status < 200 || r.Status >= 300:
			nerr++
			continue
		}
		all = append(all, r.Latency)
		switch r.Rung {
		case RungCached:
			rep.RungMix.Cached++
			cached = append(cached, r.Latency)
		case "incumbent":
			rep.RungMix.Incumbent++
		case "fallback":
			rep.RungMix.Fallback++
		default:
			// An empty or unknown rung on a 2xx response comes from a
			// server predating quality tiers; count it as optimal rather
			// than inventing a bucket.
			rep.RungMix.Optimal++
		}
	}
	if len(results) > 0 {
		rep.Rate429 = float64(n429) / float64(len(results))
		rep.ErrorRate = float64(nerr) / float64(len(results))
	}
	rep.LatencyMs = quantiles(all)
	rep.CachedLatencyMs = quantiles(cached)
	rep.PerTarget = perTarget(cfg.Targets, results)
	return rep
}

// perTarget folds results into one TargetStats per configured base URL;
// nil for single-target runs (no Targets configured). Results whose
// Instance falls outside the target list are ignored here — Validate
// catches the resulting count mismatch.
func perTarget(targets []string, results []Result) []TargetStats {
	if len(targets) == 0 {
		return nil
	}
	lats := make([][]time.Duration, len(targets))
	per := make([]TargetStats, len(targets))
	for i, url := range targets {
		per[i].URL = url
	}
	for _, r := range results {
		if r.Instance < 0 || r.Instance >= len(targets) {
			continue
		}
		t := &per[r.Instance]
		t.Requests++
		switch {
		case r.Status == 429:
			t.Rate429++ // running count; normalised below
		case r.Status < 200 || r.Status >= 300:
			t.ErrorRate++
		default:
			lats[r.Instance] = append(lats[r.Instance], r.Latency)
		}
	}
	for i := range per {
		if per[i].Requests > 0 {
			per[i].Rate429 /= float64(per[i].Requests)
			per[i].ErrorRate /= float64(per[i].Requests)
		}
		per[i].LatencyMs = quantiles(lats[i])
	}
	return per
}

// quantiles computes nearest-rank quantiles in milliseconds; the zero
// Quantiles is returned for an empty sample.
func quantiles(sample []time.Duration) Quantiles {
	if len(sample) == 0 {
		return Quantiles{}
	}
	sorted := make([]time.Duration, len(sample))
	copy(sorted, sample)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return float64(sorted[idx]) / float64(time.Millisecond)
	}
	return Quantiles{
		P50:  at(0.50),
		P99:  at(0.99),
		P999: at(0.999),
		Max:  float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
	}
}

// Validate is the checked-in schema gate for BENCH_serve.json: it
// rejects reports with missing stamps, out-of-range rates, disordered
// quantiles, or a rung mix that does not reconcile with the request
// count. ci.sh feeds the emitted file back through ValidateJSON.
func (r *Report) Validate() error {
	if r.GeneratedUnix <= 0 {
		return fmt.Errorf("loadgen: report missing generated_unix stamp")
	}
	if r.GoVersion == "" {
		return fmt.Errorf("loadgen: report missing go_version stamp")
	}
	if !(r.Config.TargetRate > 0) || !(r.Config.DurationSec > 0) {
		return fmt.Errorf("loadgen: report config has non-positive rate (%v) or duration (%v)",
			r.Config.TargetRate, r.Config.DurationSec)
	}
	if r.Config.Specs <= 0 || r.Config.LocsPerRequest <= 0 {
		return fmt.Errorf("loadgen: report config has non-positive specs (%d) or locs_per_request (%d)",
			r.Config.Specs, r.Config.LocsPerRequest)
	}
	if r.Requests <= 0 {
		return fmt.Errorf("loadgen: report records no requests")
	}
	if !(r.AchievedRate > 0) {
		return fmt.Errorf("loadgen: report has non-positive achieved rate %v", r.AchievedRate)
	}
	for _, rate := range []struct {
		name string
		v    float64
	}{{"rate_429", r.Rate429}, {"error_rate", r.ErrorRate}} {
		if rate.v < 0 || rate.v > 1 || math.IsNaN(rate.v) {
			return fmt.Errorf("loadgen: report %s %v outside [0, 1]", rate.name, rate.v)
		}
	}
	for _, q := range []struct {
		name string
		q    Quantiles
	}{{"latency_ms", r.LatencyMs}, {"cached_latency_ms", r.CachedLatencyMs}} {
		if q.q.P50 < 0 || q.q.P50 > q.q.P99 || q.q.P99 > q.q.P999 || q.q.P999 > q.q.Max {
			return fmt.Errorf("loadgen: report %s quantiles disordered: p50=%v p99=%v p999=%v max=%v",
				q.name, q.q.P50, q.q.P99, q.q.P999, q.q.Max)
		}
	}
	m := r.RungMix
	if m.Cached < 0 || m.Optimal < 0 || m.Incumbent < 0 || m.Fallback < 0 {
		return fmt.Errorf("loadgen: report rung mix has a negative count: %+v", m)
	}
	served := m.Cached + m.Optimal + m.Incumbent + m.Fallback
	shed := int(math.Round((r.Rate429 + r.ErrorRate) * float64(r.Requests)))
	if served+shed != r.Requests {
		return fmt.Errorf("loadgen: rung mix (%d served) plus shed (%d) does not reconcile with %d requests",
			served, shed, r.Requests)
	}
	if len(r.PerTarget) != len(r.Config.Targets) {
		return fmt.Errorf("loadgen: report has %d per_target entries for %d configured targets",
			len(r.PerTarget), len(r.Config.Targets))
	}
	total := 0
	for i, t := range r.PerTarget {
		if t.URL == "" || t.URL != r.Config.Targets[i] {
			return fmt.Errorf("loadgen: per_target[%d] url %q does not match configured target %q",
				i, t.URL, r.Config.Targets[i])
		}
		if t.Requests < 0 {
			return fmt.Errorf("loadgen: per_target[%d] has negative request count %d", i, t.Requests)
		}
		for _, rate := range []struct {
			name string
			v    float64
		}{{"rate_429", t.Rate429}, {"error_rate", t.ErrorRate}} {
			if rate.v < 0 || rate.v > 1 || math.IsNaN(rate.v) {
				return fmt.Errorf("loadgen: per_target[%d] %s %v outside [0, 1]", i, rate.name, rate.v)
			}
		}
		q := t.LatencyMs
		if q.P50 < 0 || q.P50 > q.P99 || q.P99 > q.P999 || q.P999 > q.Max {
			return fmt.Errorf("loadgen: per_target[%d] quantiles disordered: p50=%v p99=%v p999=%v max=%v",
				i, q.P50, q.P99, q.P999, q.Max)
		}
		total += t.Requests
	}
	if len(r.PerTarget) > 0 && total != r.Requests {
		return fmt.Errorf("loadgen: per_target requests sum to %d, report has %d", total, r.Requests)
	}
	if r.FailoverMs < 0 || math.IsNaN(r.FailoverMs) || math.IsInf(r.FailoverMs, 0) {
		return fmt.Errorf("loadgen: failover_ms %v is not a non-negative finite duration", r.FailoverMs)
	}
	if r.FleetTotals != nil {
		if len(r.Config.Targets) == 0 {
			return fmt.Errorf("loadgen: fleet_totals present on a single-target run")
		}
		// The fleet-wide sum can never undercount the archived member.
		if s := r.Server; s != nil {
			ft := r.FleetTotals
			for _, c := range []struct {
				name      string
				part, tot uint64
			}{
				{"solves", s.Solves, ft.Solves},
				{"cache_hits", s.CacheHits, ft.CacheHits},
				{"cache_misses", s.CacheMisses, ft.CacheMisses},
				{"rejected", s.Rejected, ft.Rejected},
				{"coalesced_requests", s.Coalesced, ft.Coalesced},
				{"admission_rejects", s.AdmissionRejects, ft.AdmissionRejects},
				{"degraded_serves", s.DegradedServes, ft.DegradedServes},
			} {
				if c.part > c.tot {
					return fmt.Errorf("loadgen: fleet_totals %s %d below the server block's %d", c.name, c.tot, c.part)
				}
			}
		}
	}
	return nil
}

// ValidateJSON decodes data strictly (unknown fields rejected, so a
// field rename cannot slip through as an always-zero value) and applies
// Validate. This is the check ci.sh runs against the emitted file.
func ValidateJSON(data []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("loadgen: malformed BENCH_serve.json: %w", err)
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &rep, nil
}

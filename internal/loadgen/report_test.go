package loadgen

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func testConfig() RunConfig {
	return RunConfig{
		TargetRate: 100, DurationSec: 2, Specs: 8,
		ZipfS: 1.2, ZipfV: 1, Seed: 1, LocsPerRequest: 4,
	}
}

// stamp fills the caller-side fields BuildReport leaves to cmd/vlpload.
func stamp(r Report) Report {
	r.GeneratedUnix = 1754500000
	r.GoVersion = "go1.24.0"
	return r
}

func TestBuildReportFoldsResults(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	results := []Result{
		{Status: 200, Rung: RungCached, Latency: ms(1)},
		{Status: 200, Rung: RungCached, Latency: ms(2)},
		{Status: 200, Rung: "optimal", Latency: ms(30)},
		{Status: 200, Rung: "incumbent", Latency: ms(20)},
		{Status: 200, Rung: "fallback", Latency: ms(10)},
		{Status: 429},
		{Status: 429},
		{Status: 0}, // transport error
		{Status: 504},
		{Status: 200, Rung: RungCached, Latency: ms(3)},
	}
	rep := stamp(BuildReport(testConfig(), results, 2*time.Second))

	if rep.Requests != 10 {
		t.Fatalf("requests = %d, want 10", rep.Requests)
	}
	if rep.AchievedRate != 5 {
		t.Fatalf("achieved rate = %v, want 5 rps", rep.AchievedRate)
	}
	if rep.Rate429 != 0.2 {
		t.Fatalf("rate_429 = %v, want 0.2", rep.Rate429)
	}
	if rep.ErrorRate != 0.2 {
		t.Fatalf("error_rate = %v, want 0.2", rep.ErrorRate)
	}
	want := RungMix{Cached: 3, Optimal: 1, Incumbent: 1, Fallback: 1}
	if rep.RungMix != want {
		t.Fatalf("rung mix = %+v, want %+v", rep.RungMix, want)
	}
	if rep.LatencyMs.Max != 30 || rep.CachedLatencyMs.Max != 3 {
		t.Fatalf("max latencies = %v / %v, want 30 / 3 ms", rep.LatencyMs.Max, rep.CachedLatencyMs.Max)
	}
	if rep.CachedLatencyMs.P50 != 2 {
		t.Fatalf("cached p50 = %v ms, want 2", rep.CachedLatencyMs.P50)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("folded report failed its own schema check: %v", err)
	}
}

// TestQuantilesNearestRank pins the quantile convention on a known
// sample so the tracked BENCH_serve.json numbers cannot silently change
// meaning.
func TestQuantilesNearestRank(t *testing.T) {
	sample := make([]time.Duration, 1000)
	for i := range sample {
		sample[i] = time.Duration(i+1) * time.Millisecond // 1..1000ms
	}
	q := quantiles(sample)
	if q.P50 != 500 || q.P99 != 990 || q.P999 != 999 || q.Max != 1000 {
		t.Fatalf("nearest-rank quantiles = %+v, want p50=500 p99=990 p999=999 max=1000", q)
	}
	if got := quantiles(nil); got != (Quantiles{}) {
		t.Fatalf("empty sample quantiles = %+v, want zero", got)
	}
}

func TestValidateJSONRoundTrip(t *testing.T) {
	rep := stamp(BuildReport(testConfig(), []Result{
		{Status: 200, Rung: RungCached, Latency: time.Millisecond},
		{Status: 429},
	}, time.Second))
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateJSON(data)
	if err != nil {
		t.Fatalf("round-tripped report rejected: %v", err)
	}
	if back.Requests != rep.Requests || back.RungMix != rep.RungMix {
		t.Fatalf("round trip changed the report: %+v vs %+v", back, &rep)
	}
}

func TestValidateJSONRejectsMalformed(t *testing.T) {
	valid := stamp(BuildReport(testConfig(), []Result{
		{Status: 200, Rung: RungCached, Latency: time.Millisecond},
	}, time.Second))

	cases := []struct {
		name    string
		mutate  func(r *Report)
		raw     string // when non-empty, validated verbatim instead
		wantErr string
	}{
		{name: "truncated JSON", raw: `{"generated_unix": 17`, wantErr: "malformed"},
		{name: "unknown field", raw: `{"generated_unix": 1, "bogus_field": true}`, wantErr: "malformed"},
		{name: "missing stamp", mutate: func(r *Report) { r.GeneratedUnix = 0 }, wantErr: "generated_unix"},
		{name: "missing go version", mutate: func(r *Report) { r.GoVersion = "" }, wantErr: "go_version"},
		{name: "zero requests", mutate: func(r *Report) { r.Requests = 0 }, wantErr: "no requests"},
		{name: "rate out of range", mutate: func(r *Report) { r.Rate429 = 1.5 }, wantErr: "rate_429"},
		{name: "disordered quantiles", mutate: func(r *Report) { r.LatencyMs.P50 = r.LatencyMs.P999 + 1 }, wantErr: "quantiles"},
		{name: "unreconciled rung mix", mutate: func(r *Report) { r.RungMix.Cached += 3 }, wantErr: "reconcile"},
		{name: "bad config", mutate: func(r *Report) { r.Config.TargetRate = 0 }, wantErr: "non-positive rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := []byte(tc.raw)
			if tc.raw == "" {
				rep := valid
				tc.mutate(&rep)
				var err error
				if data, err = json.Marshal(&rep); err != nil {
					t.Fatal(err)
				}
			}
			_, err := ValidateJSON(data)
			if err == nil {
				t.Fatalf("schema check accepted a report that should fail (%s)", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

package loadgen

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func testConfig() RunConfig {
	return RunConfig{
		TargetRate: 100, DurationSec: 2, Specs: 8,
		ZipfS: 1.2, ZipfV: 1, Seed: 1, LocsPerRequest: 4,
	}
}

// stamp fills the caller-side fields BuildReport leaves to cmd/vlpload.
func stamp(r Report) Report {
	r.GeneratedUnix = 1754500000
	r.GoVersion = "go1.24.0"
	return r
}

func TestBuildReportFoldsResults(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	results := []Result{
		{Status: 200, Rung: RungCached, Latency: ms(1)},
		{Status: 200, Rung: RungCached, Latency: ms(2)},
		{Status: 200, Rung: "optimal", Latency: ms(30)},
		{Status: 200, Rung: "incumbent", Latency: ms(20)},
		{Status: 200, Rung: "fallback", Latency: ms(10)},
		{Status: 429},
		{Status: 429},
		{Status: 0}, // transport error
		{Status: 504},
		{Status: 200, Rung: RungCached, Latency: ms(3)},
	}
	rep := stamp(BuildReport(testConfig(), results, 2*time.Second))

	if rep.Requests != 10 {
		t.Fatalf("requests = %d, want 10", rep.Requests)
	}
	if rep.AchievedRate != 5 {
		t.Fatalf("achieved rate = %v, want 5 rps", rep.AchievedRate)
	}
	if rep.Rate429 != 0.2 {
		t.Fatalf("rate_429 = %v, want 0.2", rep.Rate429)
	}
	if rep.ErrorRate != 0.2 {
		t.Fatalf("error_rate = %v, want 0.2", rep.ErrorRate)
	}
	want := RungMix{Cached: 3, Optimal: 1, Incumbent: 1, Fallback: 1}
	if rep.RungMix != want {
		t.Fatalf("rung mix = %+v, want %+v", rep.RungMix, want)
	}
	if rep.LatencyMs.Max != 30 || rep.CachedLatencyMs.Max != 3 {
		t.Fatalf("max latencies = %v / %v, want 30 / 3 ms", rep.LatencyMs.Max, rep.CachedLatencyMs.Max)
	}
	if rep.CachedLatencyMs.P50 != 2 {
		t.Fatalf("cached p50 = %v ms, want 2", rep.CachedLatencyMs.P50)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("folded report failed its own schema check: %v", err)
	}
}

// TestQuantilesNearestRank pins the quantile convention on a known
// sample so the tracked BENCH_serve.json numbers cannot silently change
// meaning.
func TestQuantilesNearestRank(t *testing.T) {
	sample := make([]time.Duration, 1000)
	for i := range sample {
		sample[i] = time.Duration(i+1) * time.Millisecond // 1..1000ms
	}
	q := quantiles(sample)
	if q.P50 != 500 || q.P99 != 990 || q.P999 != 999 || q.Max != 1000 {
		t.Fatalf("nearest-rank quantiles = %+v, want p50=500 p99=990 p999=999 max=1000", q)
	}
	if got := quantiles(nil); got != (Quantiles{}) {
		t.Fatalf("empty sample quantiles = %+v, want zero", got)
	}
}

func TestValidateJSONRoundTrip(t *testing.T) {
	rep := stamp(BuildReport(testConfig(), []Result{
		{Status: 200, Rung: RungCached, Latency: time.Millisecond},
		{Status: 429},
	}, time.Second))
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateJSON(data)
	if err != nil {
		t.Fatalf("round-tripped report rejected: %v", err)
	}
	if back.Requests != rep.Requests || back.RungMix != rep.RungMix {
		t.Fatalf("round trip changed the report: %+v vs %+v", back, &rep)
	}
}

func TestBuildReportPerTarget(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cfg := testConfig()
	cfg.Targets = []string{"http://a:8750", "http://b:8751"}
	results := []Result{
		{Instance: 0, Status: 200, Rung: RungCached, Latency: ms(1)},
		{Instance: 1, Status: 200, Rung: RungCached, Latency: ms(40)},
		{Instance: 0, Status: 200, Rung: "optimal", Latency: ms(5)},
		{Instance: 1, Status: 429},
		{Instance: 0, Status: 200, Rung: RungCached, Latency: ms(2)},
		{Instance: 1, Status: 0}, // transport error
	}
	rep := stamp(BuildReport(cfg, results, time.Second))

	if len(rep.PerTarget) != 2 {
		t.Fatalf("per_target has %d entries, want 2", len(rep.PerTarget))
	}
	a, b := rep.PerTarget[0], rep.PerTarget[1]
	if a.URL != cfg.Targets[0] || b.URL != cfg.Targets[1] {
		t.Fatalf("per_target urls = %q, %q; want config order %v", a.URL, b.URL, cfg.Targets)
	}
	if a.Requests != 3 || b.Requests != 3 {
		t.Fatalf("per_target requests = %d, %d; want 3, 3", a.Requests, b.Requests)
	}
	if a.Rate429 != 0 || a.ErrorRate != 0 {
		t.Fatalf("target a rates = %v / %v, want clean", a.Rate429, a.ErrorRate)
	}
	if want := 1.0 / 3; b.Rate429 != want || b.ErrorRate != want {
		t.Fatalf("target b rates = %v / %v, want %v each", b.Rate429, b.ErrorRate, want)
	}
	if a.LatencyMs.Max != 5 || b.LatencyMs.Max != 40 {
		t.Fatalf("per_target max latency = %v / %v ms, want 5 / 40", a.LatencyMs.Max, b.LatencyMs.Max)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("per-target report failed its own schema check: %v", err)
	}

	// Single-target runs must not grow a per_target section.
	if solo := BuildReport(testConfig(), results, time.Second); solo.PerTarget != nil {
		t.Fatalf("single-target report grew per_target: %+v", solo.PerTarget)
	}
}

func TestValidateRejectsPerTargetMismatch(t *testing.T) {
	cfg := testConfig()
	cfg.Targets = []string{"http://a:8750", "http://b:8751"}
	valid := stamp(BuildReport(cfg, []Result{
		{Instance: 0, Status: 200, Rung: RungCached, Latency: time.Millisecond},
		{Instance: 1, Status: 200, Rung: RungCached, Latency: time.Millisecond},
	}, time.Second))
	if err := valid.Validate(); err != nil {
		t.Fatalf("baseline per-target report invalid: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(r *Report)
		wantErr string
	}{
		{
			name:    "missing breakdown",
			mutate:  func(r *Report) { r.PerTarget = nil },
			wantErr: "0 per_target entries for 2",
		},
		{
			name:    "breakdown without targets",
			mutate:  func(r *Report) { r.Config.Targets = nil },
			wantErr: "2 per_target entries for 0",
		},
		{
			name:    "url out of order",
			mutate:  func(r *Report) { r.PerTarget[0].URL, r.PerTarget[1].URL = r.PerTarget[1].URL, r.PerTarget[0].URL },
			wantErr: "does not match configured target",
		},
		{
			name:    "counts do not sum",
			mutate:  func(r *Report) { r.PerTarget[0].Requests++ },
			wantErr: "per_target requests sum",
		},
		{
			name:    "rate out of range",
			mutate:  func(r *Report) { r.PerTarget[1].Rate429 = -0.1 },
			wantErr: "per_target[1] rate_429",
		},
		{
			name:    "disordered quantiles",
			mutate:  func(r *Report) { r.PerTarget[0].LatencyMs.P50 = r.PerTarget[0].LatencyMs.Max + 1 },
			wantErr: "per_target[0] quantiles",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := valid
			rep.PerTarget = append([]TargetStats(nil), valid.PerTarget...)
			rep.Config.Targets = append([]string(nil), valid.Config.Targets...)
			tc.mutate(&rep)
			err := rep.Validate()
			if err == nil {
				t.Fatalf("schema check accepted a broken per-target report (%s)", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateJSONRejectsMalformed(t *testing.T) {
	valid := stamp(BuildReport(testConfig(), []Result{
		{Status: 200, Rung: RungCached, Latency: time.Millisecond},
	}, time.Second))

	cases := []struct {
		name    string
		mutate  func(r *Report)
		raw     string // when non-empty, validated verbatim instead
		wantErr string
	}{
		{name: "truncated JSON", raw: `{"generated_unix": 17`, wantErr: "malformed"},
		{name: "unknown field", raw: `{"generated_unix": 1, "bogus_field": true}`, wantErr: "malformed"},
		{name: "missing stamp", mutate: func(r *Report) { r.GeneratedUnix = 0 }, wantErr: "generated_unix"},
		{name: "missing go version", mutate: func(r *Report) { r.GoVersion = "" }, wantErr: "go_version"},
		{name: "zero requests", mutate: func(r *Report) { r.Requests = 0 }, wantErr: "no requests"},
		{name: "rate out of range", mutate: func(r *Report) { r.Rate429 = 1.5 }, wantErr: "rate_429"},
		{name: "disordered quantiles", mutate: func(r *Report) { r.LatencyMs.P50 = r.LatencyMs.P999 + 1 }, wantErr: "quantiles"},
		{name: "unreconciled rung mix", mutate: func(r *Report) { r.RungMix.Cached += 3 }, wantErr: "reconcile"},
		{name: "bad config", mutate: func(r *Report) { r.Config.TargetRate = 0 }, wantErr: "non-positive rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := []byte(tc.raw)
			if tc.raw == "" {
				rep := valid
				tc.mutate(&rep)
				var err error
				if data, err = json.Marshal(&rep); err != nil {
					t.Fatal(err)
				}
			}
			_, err := ValidateJSON(data)
			if err == nil {
				t.Fatalf("schema check accepted a report that should fail (%s)", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestFleetTotalsMergeAndValidate(t *testing.T) {
	if tot := MergeCounters([]*ServerCounters{nil, nil}); tot != nil {
		t.Fatalf("merge of unreachable members produced %+v, want nil", tot)
	}
	tot := MergeCounters([]*ServerCounters{
		{Solves: 3, CacheHits: 10, Rejected: 1},
		nil,
		{Solves: 1, CacheHits: 4, DegradedServes: 2},
	})
	want := ServerCounters{Solves: 4, CacheHits: 14, Rejected: 1, DegradedServes: 2}
	if tot == nil || *tot != want {
		t.Fatalf("merged counters %+v, want %+v", tot, want)
	}

	cfg := testConfig()
	cfg.Targets = []string{"http://a:8750", "http://b:8751"}
	rep := stamp(BuildReport(cfg, []Result{
		{Instance: 0, Status: 200, Rung: RungCached, Latency: time.Millisecond},
		{Instance: 1, Status: 200, Rung: RungCached, Latency: time.Millisecond},
	}, time.Second))
	rep.Server = &ServerCounters{Solves: 3, CacheHits: 10}
	rep.FleetTotals = tot
	if err := rep.Validate(); err != nil {
		t.Fatalf("fleet report failed its schema check: %v", err)
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateJSON(data)
	if err != nil {
		t.Fatalf("round-tripped fleet report rejected: %v", err)
	}
	if back.FleetTotals == nil || *back.FleetTotals != want {
		t.Fatalf("fleet_totals changed in the round trip: %+v", back.FleetTotals)
	}

	// The fleet-wide sum can never undercount the archived member.
	rep.FleetTotals = &ServerCounters{Solves: 2, CacheHits: 14}
	if err := rep.Validate(); err == nil {
		t.Fatal("fleet_totals below the server block passed validation")
	}
	rep.FleetTotals = tot

	// fleet_totals is a fleet-run concept; single-target reports must
	// not carry it.
	solo := stamp(BuildReport(testConfig(), []Result{
		{Status: 200, Rung: RungCached, Latency: time.Millisecond},
	}, time.Second))
	solo.FleetTotals = &ServerCounters{Solves: 1}
	if err := solo.Validate(); err == nil {
		t.Fatal("fleet_totals on a single-target run passed validation")
	}
}

// TestFailoverMsValidation: the failover gate's stamp must be a
// non-negative finite duration, and it must survive the strict JSON
// round trip ci.sh applies to the checked-in artifact.
func TestFailoverMsValidation(t *testing.T) {
	rep := stamp(BuildReport(testConfig(), []Result{
		{Status: 200, Rung: RungCached, Latency: time.Millisecond},
	}, time.Second))
	rep.FailoverMs = 1234.5
	if err := rep.Validate(); err != nil {
		t.Fatalf("report with failover_ms failed its schema check: %v", err)
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateJSON(data)
	if err != nil {
		t.Fatalf("round-tripped failover report rejected: %v", err)
	}
	if back.FailoverMs != rep.FailoverMs {
		t.Fatalf("failover_ms changed in the round trip: %v vs %v", back.FailoverMs, rep.FailoverMs)
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		rep.FailoverMs = bad
		if err := rep.Validate(); err == nil {
			t.Fatalf("failover_ms %v passed validation", bad)
		}
	}
}

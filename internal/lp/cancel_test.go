package lp

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faultinject"
)

func cancelTestProblem() *Problem {
	// min -x0 - 2x1 s.t. x0 + x1 <= 4, x1 <= 2.
	p := NewProblem(2)
	p.SetObjective([]float64{-1, -2})
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 1}}, LE, 2)
	return p
}

func TestSolvePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(cancelTestProblem(), Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Solve err = %v, want context.Canceled", err)
	}
	if _, err := SolveIPM(cancelTestProblem(), Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveIPM err = %v, want context.Canceled", err)
	}
}

func TestSolveNilCtxUnaffected(t *testing.T) {
	// The zero Options must keep working: nil context means "never
	// cancelled", the pre-context behaviour.
	if _, err := Solve(cancelTestProblem(), Options{}); err != nil {
		t.Fatalf("Solve with nil ctx: %v", err)
	}
	if _, err := SolveIPM(cancelTestProblem(), Options{}); err != nil {
		t.Fatalf("SolveIPM with nil ctx: %v", err)
	}
}

func TestSolveIPMInjectedFault(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("injected IPM failure")
	faultinject.Set(FaultSiteIPM, faultinject.Fault{Err: boom, Times: 1})
	if _, err := SolveIPM(cancelTestProblem(), Options{}); !errors.Is(err, boom) {
		t.Fatalf("SolveIPM err = %v, want wrapped %v", err, boom)
	}
	// The fault self-disarmed after one visit; the next solve succeeds.
	sol, err := SolveIPM(cancelTestProblem(), Options{})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("post-fault solve: %v (status %v)", err, sol.Status)
	}
}

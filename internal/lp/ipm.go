package lp

import (
	"fmt"
	"math"

	"repro/internal/faultinject"
)

// FaultSiteIPM is the fault-injection site visited once per SolveIPM
// call, before any factorisation work (see internal/faultinject).
const FaultSiteIPM = "lp/ipm"

// SolveIPM minimises the problem with an infeasible-start Mehrotra
// predictor-corrector primal-dual interior-point method.
//
// The IPM complements the simplex solver: it does not return a vertex,
// but it is essentially immune to the degeneracy and near-parallel
// columns that stall pivoting methods, and it produces high-quality dual
// prices — exactly what the Dantzig–Wolfe restricted master needs. Use
// Solve when a basic (extreme-point) solution matters, SolveIPM when
// robustness on degenerate instances matters.
//
// Infeasible or unbounded problems surface as IterationLimit: the method
// is intended for instances known to be feasible and bounded (the CG
// master always is).
// For re-solve sequences that mutate one instance in place (column
// generation masters), IPMSolver keeps the compiled form, the workspace
// and the previous iterate alive and warm-starts each Solve.
func SolveIPM(p *Problem, opts Options) (*Solution, error) {
	if len(p.constraints) == 0 {
		return nil, ErrNoConstraints
	}
	if err := faultinject.At(FaultSiteIPM); err != nil {
		return nil, fmt.Errorf("lp: injected fault: %w", err)
	}
	if !opts.NoPresolve {
		if sol, done, err := solvePresolved(p, opts, SolveIPM); done {
			return sol, err
		}
	}
	ip := newIPM(p, opts)
	return ip.solve()
}

// ipm holds the standard-form data min c·x s.t. Ax = b, x ≥ 0.
type ipm struct {
	opt Options

	m, n    int
	mat     csc // A by column, row-scaled, pooled CSC storage
	b       []float64
	c       []float64
	numOrig int
	rowSign []int
	rowScl  []float64
}

func newIPM(p *Problem, opts Options) *ipm {
	m := len(p.constraints)
	ip := &ipm{
		m:       m,
		numOrig: p.numVars,
		b:       make([]float64, m),
		rowSign: make([]int, m),
		rowScl:  make([]float64, m),
	}

	type rowInfo struct {
		op   Op
		sign float64
	}
	infos := make([]rowInfo, m)
	slacks := 0
	for i, cns := range p.constraints {
		sign := 1.0
		op := cns.Op
		if cns.RHS < 0 {
			sign = -1
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		maxAbs := 0.0
		for _, t := range cns.Terms {
			if a := math.Abs(t.Coef); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		infos[i] = rowInfo{op: op, sign: sign}
		ip.rowSign[i] = int(sign)
		ip.rowScl[i] = 1 / maxAbs
		if op != EQ {
			slacks++
		}
	}

	rowFactor := make([]float64, m)
	for i, cns := range p.constraints {
		rowFactor[i] = infos[i].sign * ip.rowScl[i]
		ip.b[i] = rowFactor[i] * cns.RHS
	}
	ip.mat = newCSCBuilder(p.constraints, p.numVars, slacks, rowFactor)
	for i, info := range infos {
		switch info.op {
		case LE:
			ip.mat.appendUnitCol(int32(i), 1)
		case GE:
			ip.mat.appendUnitCol(int32(i), -1)
		}
	}
	ip.n = ip.mat.numCols()
	ip.c = make([]float64, ip.n)
	copy(ip.c, p.objective)

	ip.opt = opts.withDefaults(m, ip.n)
	return ip
}

// ipmWorkspace holds every vector and matrix the Newton loop touches,
// preallocated once and reused across re-solves of a persistent
// instance. grow resizes it after columns are appended.
type ipmWorkspace struct {
	// m-sized
	rp, dy, dyc, rhs, acceptY, accept2Y []float64
	// n-sized
	rd, dx, ds, dxc, dsc, d, rc, acceptX, accept2X []float64
	// m×m
	mmat, chol []float64
	// formNormal scratch: per-column leading-run lengths (n-sized) and
	// the dense same-span panel plus its transposed fill buffer (grown
	// on demand). The classification is cached per matrix shape
	// (runsN, runsNNZ): within one solve the matrix is static, so the
	// run detection and modal-span vote run once, not once per Newton
	// iteration.
	runs            []int32
	panel           []float64
	panelT          []float64
	runsN, runsNNZ  int
	panelR0, panelL int32
	groupN          int
	usePanel        bool

	// CSR mirror of the constraint matrix plus an n-sized Aᵀ·vector
	// accumulator, cached per matrix shape like the run classification.
	// residuals and solveNewton compute Aᵀy as one row-major sweep with
	// streaming writes instead of n short column gathers.
	csrPtr, csrCols []int32
	csrVals         []float64
	csrNext         []int32
	atv             []float64
	csrN, csrNNZ    int
}

func newIPMWorkspace(m, n int) *ipmWorkspace {
	ws := &ipmWorkspace{}
	ws.grow(m, n)
	return ws
}

func (ws *ipmWorkspace) grow(m, n int) {
	for _, p := range []*[]float64{&ws.rp, &ws.dy, &ws.dyc, &ws.rhs, &ws.acceptY, &ws.accept2Y} {
		if cap(*p) < m {
			*p = make([]float64, m)
		}
		*p = (*p)[:m]
	}
	for _, p := range []*[]float64{&ws.rd, &ws.dx, &ws.ds, &ws.dxc, &ws.dsc, &ws.d, &ws.rc, &ws.acceptX, &ws.accept2X} {
		if cap(*p) < n {
			// Headroom for a column-generation master that keeps growing.
			*p = make([]float64, n, n+n/2+16)
		}
		*p = (*p)[:n]
	}
	if cap(ws.mmat) < m*m {
		ws.mmat = make([]float64, m*m)
		ws.chol = make([]float64, m*m)
	}
	ws.mmat = ws.mmat[:m*m]
	ws.chol = ws.chol[:m*m]
	if cap(ws.runs) < n {
		ws.runs = make([]int32, n, n+n/2+16)
	}
	ws.runs = ws.runs[:n]
}

// defaultStart fills (x, y, s) with the cold interior start scaled to the
// problem's magnitude.
func (ip *ipm) defaultStart(x, y, s []float64) {
	bn, cn := norm(ip.b), norm(ip.c)
	start := math.Max(1, math.Max(bn, cn))
	for j := range x {
		x[j] = start
		s[j] = start
	}
	for i := range y {
		y[i] = 0
	}
}

func (ip *ipm) solve() (*Solution, error) {
	x := make([]float64, ip.n)
	s := make([]float64, ip.n)
	y := make([]float64, ip.m)
	ws := newIPMWorkspace(ip.m, ip.n)
	if ip.mehrotraStart(x, y, s, ws) {
		sol, err := ip.run(x, y, s, ws)
		if err != nil || sol.Status == Optimal {
			return sol, err
		}
	}
	ip.defaultStart(x, y, s)
	return ip.run(x, y, s, ws)
}

// mehrotraStart fills (x, y, s) with Mehrotra's least-squares starting
// point: x̃ = Aᵀ(AAᵀ)⁻¹b (the least-norm primal), ỹ = (AAᵀ)⁻¹Ac with
// s̃ = c − Aᵀỹ (the least-squares dual), both shifted into the interior
// of the positive orthant. Compared to the uniform defaultStart —
// whose magnitude max(1, ‖b‖, ‖c‖) explodes with the stabilization
// penalty ρ — this point already satisfies Ax = b up to rounding, which
// typically saves a third or more of the Newton iterations on the CG
// master. Reports false (leaving the caller to use defaultStart) when
// the Gram matrix cannot be factored or the shifted point is not
// strictly interior.
func (ip *ipm) mehrotraStart(x, y, s []float64, ws *ipmWorkspace) bool {
	m, n := ip.m, ip.n
	d := ws.d
	for j := 0; j < n; j++ {
		d[j] = 1
	}
	ip.formNormal(d, ws.mmat, ws)
	reg := 1e-10 * (1 + traceMax(ws.mmat, m))
	for i := 0; i < m; i++ {
		ws.mmat[i*m+i] += reg
	}
	if !choleskyInto(ws.mmat, ws.chol, m) {
		return false
	}

	colPtr, rows, vals := ip.mat.colPtr, ip.mat.rows, ip.mat.vals
	cholSolve(ws.chol, m, ip.b, ws.dy)
	for j := 0; j < n; j++ {
		lo, hi := colPtr[j], colPtr[j+1]
		x[j] = dotRange(ws.dy, rows[lo:hi], vals[lo:hi])
	}
	rhs := ws.rhs
	for i := 0; i < m; i++ {
		rhs[i] = 0
	}
	for j := 0; j < n; j++ {
		cj := ip.c[j]
		if cj == 0 {
			continue
		}
		for k := colPtr[j]; k < colPtr[j+1]; k++ {
			rhs[rows[k]] += vals[k] * cj
		}
	}
	cholSolve(ws.chol, m, rhs, y)
	for j := 0; j < n; j++ {
		lo, hi := colPtr[j], colPtr[j+1]
		s[j] = ip.c[j] - dotRange(y, rows[lo:hi], vals[lo:hi])
	}

	// Shift both iterates strictly inside the orthant: first past their
	// most negative coordinate, then by half the resulting average
	// complementarity so neither side starts on the boundary.
	minX, minS := math.Inf(1), math.Inf(1)
	for j := 0; j < n; j++ {
		if x[j] < minX {
			minX = x[j]
		}
		if s[j] < minS {
			minS = s[j]
		}
	}
	dx := math.Max(-1.5*minX, 0)
	ds := math.Max(-1.5*minS, 0)
	xs, sumX, sumS := 0.0, 0.0, 0.0
	for j := 0; j < n; j++ {
		xs += (x[j] + dx) * (s[j] + ds)
		sumX += x[j] + dx
		sumS += s[j] + ds
	}
	if !(xs > 0) || !(sumX > 0) || !(sumS > 0) {
		return false
	}
	dxh := dx + 0.5*xs/sumS
	dsh := ds + 0.5*xs/sumX
	ok := true
	for j := 0; j < n; j++ {
		x[j] += dxh
		s[j] += dsh
		if !(x[j] > 0) || !(s[j] > 0) || math.IsInf(x[j], 0) || math.IsInf(s[j], 0) {
			ok = false
		}
	}
	for i := 0; i < m; i++ {
		if math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			ok = false
		}
	}
	return ok
}

// run iterates the predictor-corrector loop from the given starting
// point, which it mutates in place: at return, (x, y, s) hold the final
// iterate — a warm-startable point for a subsequent re-solve.
func (ip *ipm) run(x, y, s []float64, ws *ipmWorkspace) (*Solution, error) {
	m, n := ip.m, ip.n
	bn, cn := norm(ip.b), norm(ip.c)

	rp := ws.rp
	rd := ws.rd
	dx := ws.dx
	ds := ws.ds
	dy := ws.dy
	dxc := ws.dxc
	dsc := ws.dsc
	dyc := ws.dyc
	d := ws.d
	rhs := ws.rhs
	mmat := ws.mmat
	rc := ws.rc

	maxIter := 200
	tol := 1e-9
	// Near the optimum (and on nearly rank-deficient rows) the
	// regularised normal equations become too ill-conditioned to push
	// the residuals further — they can even grow while the gap
	// underflows. The best iterate seen is therefore kept and accepted
	// under slightly relaxed thresholds when exact tolerance is out of
	// reach.
	const (
		pAccept   = 1e-5
		dAccept   = 1e-6
		gapAccept = 1e-7
		// Second tier: still ample accuracy for dual prices when the
		// first tier proves unreachable on an ill-conditioned instance.
		pAccept2   = 1e-4
		dAccept2   = 1e-5
		gapAccept2 = 3e-6
	)
	var lastAP, lastAD, lastSigma float64
	bestScore := math.Inf(1)
	acceptX := ws.acceptX
	acceptY := ws.acceptY
	acceptScore := math.Inf(1)
	acceptOK := false
	accept2X := ws.accept2X
	accept2Y := ws.accept2Y
	accept2Score := math.Inf(1)
	accept2OK := false
	stalled := 0
	lastIter := 0

	for iter := 0; iter < maxIter; iter++ {
		lastIter = iter
		// A Newton iteration costs a dense Cholesky (O(m³)); polling the
		// context here bounds abandonment latency to one factorisation.
		if ip.opt.Ctx != nil {
			if err := ip.opt.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Residuals.
		ip.residuals(x, y, s, rp, rd, ws)
		mu := dot(x, s) / float64(n)
		pInf := norm(rp) / (1 + bn)
		dInf := norm(rd) / (1 + cn)
		gap := mu / (1 + math.Abs(dot(ip.c, x)))
		if pInf < tol && dInf < tol && gap < tol {
			return ip.finish(x, y, iter), nil
		}
		score := pInf + dInf + gap
		if math.IsNaN(score) {
			break
		}
		if score < bestScore {
			bestScore = score
			stalled = 0
		} else {
			stalled++
		}
		// Acceptable iterates are snapshotted independently of the raw
		// score: the lowest-score iterate is not necessarily one that
		// meets every threshold.
		if pInf < pAccept && dInf < dAccept && gap < gapAccept && score < acceptScore {
			acceptScore = score
			copy(acceptX, x)
			copy(acceptY, y)
			acceptOK = true
		}
		if pInf < pAccept2 && dInf < dAccept2 && gap < gapAccept2 && score < accept2Score {
			accept2Score = score
			copy(accept2X, x)
			copy(accept2Y, y)
			accept2OK = true
		}
		// Stop when the iterates no longer improve: with an acceptable
		// incumbent almost immediately, otherwise after a longer grace
		// period (residuals can plateau for a stretch mid-run).
		if (acceptOK && stalled > 3) || stalled > 30 || (mu < 1e-18 && acceptOK) {
			break
		}
		if debugLP && iter%5 == 4 {
			fmt.Printf("ipm debug: iter %d pInf %.3g dInf %.3g gap %.3g mu %.3g aP %.3g aD %.3g sigma %.3g\n",
				iter, pInf, dInf, gap, mu, lastAP, lastAD, lastSigma)
		}

		// Normal-equations matrix M = A D Aᵀ + reg·I with D = X/S.
		for j := 0; j < n; j++ {
			d[j] = x[j] / s[j]
		}
		ip.formNormal(d, mmat, ws)
		reg := 1e-12 * (1 + traceMax(mmat, m))
		for i := 0; i < m; i++ {
			mmat[i*m+i] += reg
		}
		chol := ws.chol
		if !choleskyInto(mmat, chol, m) {
			// Heavier regularisation as a fallback.
			for i := 0; i < m; i++ {
				mmat[i*m+i] += 1e-6 * (1 + traceMax(mmat, m))
			}
			if !choleskyInto(mmat, chol, m) {
				return &Solution{Status: IterationLimit, Iterations: iter}, nil
			}
		}

		// Affine-scaling (predictor) direction: rc = −x∘s.
		for j := 0; j < n; j++ {
			rc[j] = -x[j] * s[j]
		}
		ip.solveNewton(chol, d, rp, rd, rc, x, s, dy, dx, ds, rhs, ws)

		aP := math.Min(1, maxStep(x, dx))
		aD := math.Min(1, maxStep(s, ds))
		muAff := 0.0
		for j := 0; j < n; j++ {
			muAff += (x[j] + aP*dx[j]) * (s[j] + aD*ds[j])
		}
		muAff /= float64(n)
		sigma := math.Pow(muAff/mu, 3)
		if sigma > 1 {
			sigma = 1
		}
		lastSigma = sigma

		// Corrector direction: rc = σμe − x∘s − Δx_aff∘Δs_aff.
		for j := 0; j < n; j++ {
			rc[j] = sigma*mu - x[j]*s[j] - dx[j]*ds[j]
		}
		ip.solveNewton(chol, d, rp, rd, rc, x, s, dyc, dxc, dsc, rhs, ws)

		aP = 0.995 * maxStep(x, dxc)
		aD = 0.995 * maxStep(s, dsc)
		if aP > 1 {
			aP = 1
		}
		if aD > 1 {
			aD = 1
		}
		lastAP, lastAD = aP, aD
		for j := 0; j < n; j++ {
			x[j] += aP * dxc[j]
			s[j] += aD * dsc[j]
		}
		for i := 0; i < m; i++ {
			y[i] += aD * dyc[i]
		}
	}
	if acceptOK {
		return ip.finish(acceptX, acceptY, lastIter), nil
	}
	if accept2OK {
		return ip.finish(accept2X, accept2Y, lastIter), nil
	}
	return &Solution{Status: IterationLimit, Iterations: lastIter + 1}, nil
}

// residuals computes rp = b − Ax and rd = c − Aᵀy − s.
func (ip *ipm) residuals(x, y, s, rp, rd []float64, ws *ipmWorkspace) {
	// Ax lands row-major off the CSR mirror: per row the subtractions
	// run in ascending column order with the same zero skips the column
	// scatter used, so rp is bit-identical to the scattered form.
	copy(rp, ip.b)
	if ws.csrN != ip.n || ws.csrNNZ != ip.mat.nnz() {
		ip.buildCSRMirror(ws)
	}
	csrPtr, csrCols, csrVals := ws.csrPtr, ws.csrCols, ws.csrVals
	for i := 0; i < ip.m; i++ {
		lo, hi := csrPtr[i], csrPtr[i+1]
		cols, vals := csrCols[lo:hi], csrVals[lo:hi]
		acc := rp[i]
		for k, c := range cols {
			if xv := x[c]; xv != 0 {
				acc -= vals[k] * xv
			}
		}
		rp[i] = acc
	}
	aty := ip.transMulInto(y, ws)
	for j := 0; j < ip.n; j++ {
		rd[j] = ip.c[j] - s[j] - aty[j]
	}
}

// transMulInto returns ws.atv = Aᵀv, computed as one row-major sweep of
// the cached CSR mirror. Per column the products accumulate in the same
// ascending-row order dotRange uses, so the results are bit-identical
// to a per-column gather.
func (ip *ipm) transMulInto(v []float64, ws *ipmWorkspace) []float64 {
	if ws.csrN != ip.n || ws.csrNNZ != ip.mat.nnz() {
		ip.buildCSRMirror(ws)
	}
	acc := ws.atv
	for j := range acc {
		acc[j] = 0
	}
	csrPtr, csrCols, csrVals := ws.csrPtr, ws.csrCols, ws.csrVals
	for i := 0; i < ip.m; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		lo, hi := csrPtr[i], csrPtr[i+1]
		cols, vals := csrCols[lo:hi], csrVals[lo:hi]
		for k, c := range cols {
			acc[c] += vi * vals[k]
		}
	}
	return acc
}

// buildCSRMirror refreshes the row-major mirror after the matrix shape
// changed (a freshly compiled instance, or columns appended between
// solves). Entries land in ascending column order per row.
func (ip *ipm) buildCSRMirror(ws *ipmWorkspace) {
	m, nnz := ip.m, ip.mat.nnz()
	if cap(ws.csrPtr) < m+1 {
		ws.csrPtr = make([]int32, m+1)
		ws.csrNext = make([]int32, m)
	}
	ws.csrPtr, ws.csrNext = ws.csrPtr[:m+1], ws.csrNext[:m]
	if cap(ws.csrCols) < nnz {
		ws.csrCols = make([]int32, nnz, nnz+nnz/2)
		ws.csrVals = make([]float64, nnz, nnz+nnz/2)
	}
	ws.csrCols, ws.csrVals = ws.csrCols[:nnz], ws.csrVals[:nnz]
	if cap(ws.atv) < ip.n {
		ws.atv = make([]float64, ip.n, ip.n+ip.n/2+16)
	}
	ws.atv = ws.atv[:ip.n]

	cnt := ws.csrPtr
	for i := range cnt {
		cnt[i] = 0
	}
	for _, r := range ip.mat.rows {
		cnt[r+1]++
	}
	for i := 0; i < m; i++ {
		cnt[i+1] += cnt[i]
	}
	copy(ws.csrNext, cnt[:m])
	for j := 0; j < ip.n; j++ {
		lo, hi := ip.mat.colPtr[j], ip.mat.colPtr[j+1]
		for k := lo; k < hi; k++ {
			r := ip.mat.rows[k]
			p := ws.csrNext[r]
			ws.csrCols[p] = int32(j)
			ws.csrVals[p] = ip.mat.vals[k]
			ws.csrNext[r] = p + 1
		}
	}
	ws.csrN, ws.csrNNZ = ip.n, ip.mat.nnz()
}

// classifyColumns computes each column's leading-run length and elects
// the modal span (weighted by its L² SYRK work) among a handful of
// candidates, caching the result in ws keyed by the matrix shape. The
// panel buffers are sized here so formNormal's hot path only fills.
func (ip *ipm) classifyColumns(ws *ipmWorkspace) {
	colPtr, colRows := ip.mat.colPtr, ip.mat.rows
	runs := ws.runs
	type span struct {
		r0, l int32
		work  int64
	}
	var cands [8]span
	nc := 0
	for j := 0; j < ip.n; j++ {
		lo, hi := colPtr[j], colPtr[j+1]
		if lo == hi {
			runs[j] = 0
			continue
		}
		rows := colRows[lo:hi]
		run := int32(1)
		for int(run) < len(rows) && rows[run] == rows[run-1]+1 {
			run++
		}
		runs[j] = run
		if run < 16 {
			continue
		}
		r0 := rows[0]
		for c := 0; c < nc; c++ {
			if cands[c].r0 == r0 && cands[c].l == run {
				cands[c].work += int64(run) * int64(run)
				r0 = -1
				break
			}
		}
		if r0 >= 0 && nc < len(cands) {
			cands[nc] = span{r0: r0, l: run, work: int64(run) * int64(run)}
			nc++
		}
	}
	best := -1
	for c := 0; c < nc; c++ {
		if best < 0 || cands[c].work > cands[best].work {
			best = c
		}
	}

	ws.usePanel = false
	ws.groupN = 0
	if best >= 0 && cands[best].work >= 32*int64(cands[best].l)*int64(cands[best].l) {
		// At least 32 columns share the span: the SYRK pays for itself.
		ws.panelR0, ws.panelL = cands[best].r0, cands[best].l
		ws.usePanel = true
		for j := 0; j < ip.n; j++ {
			if runs[j] == ws.panelL && colRows[colPtr[j]] == ws.panelR0 {
				ws.groupN++
			}
		}
		need := int(ws.panelL) * ws.groupN
		if cap(ws.panel) < need {
			ws.panel = make([]float64, need, need+need/2)
			ws.panelT = make([]float64, need, need+need/2)
		}
	}
	ws.runsN, ws.runsNNZ = ip.n, ip.mat.nnz()
}

// formNormal fills mmat = A diag(d) Aᵀ (dense, symmetric). Each column's
// row indices are ascending, so only the upper triangle is accumulated —
// halving the flops of the hottest IPM kernel — and mirrored at the end.
//
// Geo-I master columns are dense over a contiguous run of unit rows
// (rows 0..k−1) plus one scattered convexity entry — measured ~97% of
// all stored entries live in such leading runs. Columns sharing the
// modal run span are therefore gathered into a dense panel W with
// W[i][g] = √d_g · v_g[r0+i], and the span's diagonal block A D Aᵀ
// restricted to [r0, r0+L) is computed as the rank-G update W·Wᵀ by a
// cache-blocked SYRK with four independent accumulator chains — turning
// the hottest IPM kernel from a latency-bound read-modify-write stream
// into a throughput-bound stack of dot products. Tails and off-span
// columns take the scalar contiguous/scattered path.
func (ip *ipm) formNormal(d []float64, mmat []float64, ws *ipmWorkspace) {
	m := ip.m
	for i := range mmat {
		mmat[i] = 0
	}
	colPtr, colRows, colVals := ip.mat.colPtr, ip.mat.rows, ip.mat.vals

	if ws.runsN != ip.n || ws.runsNNZ != ip.mat.nnz() {
		ip.classifyColumns(ws)
	}
	runs := ws.runs
	usePanel, panelR0, panelL := ws.usePanel, ws.panelR0, ws.panelL
	groupN := ws.groupN
	var panel, panelT []float64
	if usePanel {
		need := int(panelL) * groupN
		panel, panelT = ws.panel[:need], ws.panelT[:need]
	}

	// Fill the panel with √d-scaled run segments and run the scalar
	// path for everything else — off-span columns entirely, panel
	// columns only for their tails.
	g := 0
	for j := 0; j < ip.n; j++ {
		lo, hi := colPtr[j], colPtr[j+1]
		if lo == hi {
			continue
		}
		rows, vals := colRows[lo:hi], colVals[lo:hi]
		dj := d[j]
		run := int(runs[j])
		if usePanel && runs[j] == panelL && rows[0] == panelR0 {
			// Fill the member-major buffer contiguously; the strided
			// row-major layout the SYRK wants is produced by one blocked
			// transpose below instead of G·L scattered stores here.
			sd := math.Sqrt(dj)
			dst := panelT[g*run : g*run+run]
			src := vals[:run]
			for t := range dst {
				dst[t] = sd * src[t]
			}
			g++
			// Tail entries still need their run×tail and tail×tail
			// products accumulated here: one pass per tail entry, not
			// one per column row.
			for b := run; b < len(rows); b++ {
				rb := int(rows[b])
				vb := vals[b]
				for a := 0; a <= b; a++ {
					mmat[int(rows[a])*m+rb] += (dj * vals[a]) * vb
				}
			}
			continue
		}
		for a, ra := range rows {
			va := dj * vals[a]
			base := int(ra) * m
			bStart := a
			if a < run {
				// Contiguous segment [a, run): dst and src are plain
				// slices, so the compiler elides bounds checks and the
				// writes stream through one cache line after another.
				dst := mmat[base+int(ra) : base+int(ra)+(run-a)]
				src := vals[a:run]
				for t := range dst {
					dst[t] += va * src[t]
				}
				bStart = run
			}
			for b := bStart; b < len(rows); b++ {
				mmat[base+int(rows[b])] += va * vals[b]
			}
		}
	}
	if usePanel {
		transposeInto(panel, panelT, int(panelL), groupN)
		syrkUpperInto(panel, int(panelL), groupN, mmat, int(panelR0), m)
	}

	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			mmat[j*m+i] = mmat[i*m+j]
		}
	}
}

// transposeInto converts the member-major panel fill (G×L, each group
// member's run contiguous) into the row-major L×G layout the SYRK
// streams over, in cache-friendly tiles so neither side pays a miss
// per element.
func transposeInto(dst, src []float64, l, g int) {
	const tile = 32
	for t0 := 0; t0 < l; t0 += tile {
		t1 := t0 + tile
		if t1 > l {
			t1 = l
		}
		for g0 := 0; g0 < g; g0 += tile {
			g1 := g0 + tile
			if g1 > g {
				g1 = g
			}
			for gg := g0; gg < g1; gg++ {
				row := src[gg*l : gg*l+l]
				for t := t0; t < t1; t++ {
					dst[t*g+gg] = row[t]
				}
			}
		}
	}
}

// syrkUpperInto accumulates the upper triangle of W·Wᵀ into the L×L
// block of mmat anchored at (r0, r0), where W is L×G row-major. The G
// dimension is processed in cache-sized chunks and rows pair 2×4 —
// eight independent multiply-add chains per inner pass, enough to
// cover the FP add latency — with every partner-row load shared by
// two accumulators. This is the ILP the plain read-modify-write
// rank-one form cannot reach.
func syrkUpperInto(w []float64, l, g int, mmat []float64, r0, m int) {
	const gBlock = 512
	for g0 := 0; g0 < g; g0 += gBlock {
		g1 := g0 + gBlock
		if g1 > g {
			g1 = g
		}
		i := 0
		for ; i+1 < l; i += 2 {
			wi0 := w[i*g+g0 : i*g+g1]
			wi1 := w[(i+1)*g+g0 : (i+1)*g+g1]
			wi1 = wi1[:len(wi0)]
			base0 := (r0+i)*m + r0
			base1 := (r0+i+1)*m + r0
			// The 2×2 triangle on the diagonal.
			var d00, d01, d11 float64
			for t, v0 := range wi0 {
				v1 := wi1[t]
				d00 += v0 * v0
				d01 += v0 * v1
				d11 += v1 * v1
			}
			mmat[base0+i] += d00
			mmat[base0+i+1] += d01
			mmat[base1+i+1] += d11
			j := i + 2
			for ; j+3 < l; j += 4 {
				w0 := w[j*g+g0 : j*g+g1]
				w1 := w[(j+1)*g+g0 : (j+1)*g+g1]
				w2 := w[(j+2)*g+g0 : (j+2)*g+g1]
				w3 := w[(j+3)*g+g0 : (j+3)*g+g1]
				w0, w1 = w0[:len(wi0)], w1[:len(wi0)]
				w2, w3 = w2[:len(wi0)], w3[:len(wi0)]
				var s00, s01, s02, s03 float64
				var s10, s11, s12, s13 float64
				if nv := len(wi0) &^ 3; useSyrkAsm && nv > 0 {
					var sums [8]float64
					syrkDot2x4(&wi0[0], &wi1[0], &w0[0], &w1[0], &w2[0], &w3[0], nv, &sums)
					s00, s01, s02, s03 = sums[0], sums[1], sums[2], sums[3]
					s10, s11, s12, s13 = sums[4], sums[5], sums[6], sums[7]
					for t := nv; t < len(wi0); t++ {
						v0, v1 := wi0[t], wi1[t]
						x := w0[t]
						s00 += v0 * x
						s10 += v1 * x
						x = w1[t]
						s01 += v0 * x
						s11 += v1 * x
						x = w2[t]
						s02 += v0 * x
						s12 += v1 * x
						x = w3[t]
						s03 += v0 * x
						s13 += v1 * x
					}
				} else {
					for t, v0 := range wi0 {
						v1 := wi1[t]
						x := w0[t]
						s00 += v0 * x
						s10 += v1 * x
						x = w1[t]
						s01 += v0 * x
						s11 += v1 * x
						x = w2[t]
						s02 += v0 * x
						s12 += v1 * x
						x = w3[t]
						s03 += v0 * x
						s13 += v1 * x
					}
				}
				mmat[base0+j] += s00
				mmat[base0+j+1] += s01
				mmat[base0+j+2] += s02
				mmat[base0+j+3] += s03
				mmat[base1+j] += s10
				mmat[base1+j+1] += s11
				mmat[base1+j+2] += s12
				mmat[base1+j+3] += s13
			}
			for ; j < l; j++ {
				wj := w[j*g+g0 : j*g+g1]
				wj = wj[:len(wi0)]
				var s0, s1 float64
				for t, v0 := range wi0 {
					s0 += v0 * wj[t]
					s1 += wi1[t] * wj[t]
				}
				mmat[base0+j] += s0
				mmat[base1+j] += s1
			}
		}
		// Remainder row when L is odd.
		for ; i < l; i++ {
			wi := w[i*g+g0 : i*g+g1]
			base := (r0 + i) * m
			for j := i; j < l; j++ {
				wj := w[j*g+g0 : j*g+g1]
				wj = wj[:len(wi)]
				s := 0.0
				for t, v := range wi {
					s += v * wj[t]
				}
				mmat[base+r0+j] += s
			}
		}
	}
}

// solveNewton computes the (dx, dy, ds) Newton direction for the given
// complementarity right-hand side rc, reusing the Cholesky factor.
func (ip *ipm) solveNewton(chol []float64, d, rp, rd, rc, x, s, dy, dx, ds, rhs []float64, ws *ipmWorkspace) {
	m, n := ip.m, ip.n
	// rhs = rp + A·(d∘rd − rc/s), as a CSR row gather: per destination
	// the products arrive in the same ascending-column order (and with
	// the same zero-weight skips) a column-major scatter delivers them,
	// so the result is bit-identical — without the scattered
	// read-modify-write stream. dx is output-only until the final loop
	// below, so it doubles as the weight scratch.
	copy(rhs, rp)
	w := dx
	for j := 0; j < n; j++ {
		w[j] = d[j]*rd[j] - rc[j]/s[j]
	}
	if ws.csrN != ip.n || ws.csrNNZ != ip.mat.nnz() {
		ip.buildCSRMirror(ws)
	}
	csrPtr, csrCols, csrVals := ws.csrPtr, ws.csrCols, ws.csrVals
	for i := 0; i < m; i++ {
		lo, hi := csrPtr[i], csrPtr[i+1]
		cols, vals := csrCols[lo:hi], csrVals[lo:hi]
		acc := rhs[i]
		for k, c := range cols {
			if wc := w[c]; wc != 0 {
				acc += vals[k] * wc
			}
		}
		rhs[i] = acc
	}
	cholSolve(chol, m, rhs, dy)
	// dx = d∘(Aᵀdy − rd) + rc/s ; ds = (rc − s∘dx)/x
	aty := ip.transMulInto(dy, ws)
	for j := 0; j < n; j++ {
		dx[j] = d[j]*(aty[j]-rd[j]) + rc[j]/s[j]
		ds[j] = (rc[j] - s[j]*dx[j]) / x[j]
	}
}

// finish maps the interior solution back to the caller's variables.
func (ip *ipm) finish(x, y []float64, iters int) *Solution {
	sol := &Solution{Status: Optimal, Iterations: iters}
	sol.X = make([]float64, ip.numOrig)
	obj := 0.0
	for j := 0; j < ip.numOrig; j++ {
		v := x[j]
		if v < 0 {
			v = 0
		}
		sol.X[j] = v
		obj += ip.c[j] * v
	}
	sol.Objective = obj
	sol.Duals = make([]float64, ip.m)
	for i := 0; i < ip.m; i++ {
		sol.Duals[i] = y[i] * float64(ip.rowSign[i]) * ip.rowScl[i]
	}
	return sol
}

func dot(a, b []float64) float64 {
	v := 0.0
	for i := range a {
		v += a[i] * b[i]
	}
	return v
}

func norm(a []float64) float64 {
	v := 0.0
	for _, x := range a {
		v += x * x
	}
	return math.Sqrt(v)
}

// maxStep returns the largest α ∈ (0, 1e20] with v + α·dv ≥ 0.
func maxStep(v, dv []float64) float64 {
	a := math.Inf(1)
	for j := range v {
		if dv[j] < 0 {
			if r := -v[j] / dv[j]; r < a {
				a = r
			}
		}
	}
	if math.IsInf(a, 1) {
		return 1
	}
	return a
}

func traceMax(mmat []float64, m int) float64 {
	worst := 0.0
	for i := 0; i < m; i++ {
		if v := math.Abs(mmat[i*m+i]); v > worst {
			worst = v
		}
	}
	return worst
}

// choleskyInto factors a symmetric positive-definite matrix (row-major)
// into the caller-provided lower-triangular buffer l, reporting false if
// the factorisation breaks down.
func choleskyInto(a, l []float64, m int) bool {
	// Only the lower triangle (and diagonal) is ever written or read —
	// cholSolve's backward pass walks column i of the lower triangle —
	// so the upper triangle is left untouched rather than zeroed.
	for i := 0; i < m; i++ {
		li := l[i*m : i*m+i+1]
		for j := 0; j <= i; j++ {
			lj := l[j*m : j*m+j+1]
			// Four accumulator chains: the single-chain dot is latency
			// bound and this factorisation runs once per Newton step.
			var s0, s1, s2, s3 float64
			k := 0
			for ; k+3 < j; k += 4 {
				s0 += li[k] * lj[k]
				s1 += li[k+1] * lj[k+1]
				s2 += li[k+2] * lj[k+2]
				s3 += li[k+3] * lj[k+3]
			}
			for ; k < j; k++ {
				s0 += li[k] * lj[k]
			}
			sum := a[i*m+j] - ((s0 + s1) + (s2 + s3))
			if i == j {
				if sum <= 0 {
					return false
				}
				li[i] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return true
}

// cholSolve solves L Lᵀ out = rhs.
func cholSolve(l []float64, m int, rhs, out []float64) {
	// Forward substitution into out.
	for i := 0; i < m; i++ {
		v := rhs[i]
		for k := 0; k < i; k++ {
			v -= l[i*m+k] * out[k]
		}
		out[i] = v / l[i*m+i]
	}
	// Backward substitution in place.
	for i := m - 1; i >= 0; i-- {
		v := out[i]
		for k := i + 1; k < m; k++ {
			v -= l[k*m+i] * out[k]
		}
		out[i] = v / l[i*m+i]
	}
}

package lp

import (
	"fmt"
	"math"

	"repro/internal/faultinject"
)

// FaultSiteIPM is the fault-injection site visited once per SolveIPM
// call, before any factorisation work (see internal/faultinject).
const FaultSiteIPM = "lp/ipm"

// SolveIPM minimises the problem with an infeasible-start Mehrotra
// predictor-corrector primal-dual interior-point method.
//
// The IPM complements the simplex solver: it does not return a vertex,
// but it is essentially immune to the degeneracy and near-parallel
// columns that stall pivoting methods, and it produces high-quality dual
// prices — exactly what the Dantzig–Wolfe restricted master needs. Use
// Solve when a basic (extreme-point) solution matters, SolveIPM when
// robustness on degenerate instances matters.
//
// Infeasible or unbounded problems surface as IterationLimit: the method
// is intended for instances known to be feasible and bounded (the CG
// master always is).
// For re-solve sequences that mutate one instance in place (column
// generation masters), IPMSolver keeps the compiled form, the workspace
// and the previous iterate alive and warm-starts each Solve.
func SolveIPM(p *Problem, opts Options) (*Solution, error) {
	if len(p.constraints) == 0 {
		return nil, ErrNoConstraints
	}
	if err := faultinject.At(FaultSiteIPM); err != nil {
		return nil, fmt.Errorf("lp: injected fault: %w", err)
	}
	ip := newIPM(p, opts)
	return ip.solve()
}

// ipm holds the standard-form data min c·x s.t. Ax = b, x ≥ 0.
type ipm struct {
	opt Options

	m, n    int
	cols    []column // A by column, row-scaled
	b       []float64
	c       []float64
	numOrig int
	rowSign []int
	rowScl  []float64
}

func newIPM(p *Problem, opts Options) *ipm {
	m := len(p.constraints)
	ip := &ipm{
		m:       m,
		numOrig: p.numVars,
		b:       make([]float64, m),
		rowSign: make([]int, m),
		rowScl:  make([]float64, m),
	}

	type rowInfo struct {
		op   Op
		sign float64
	}
	infos := make([]rowInfo, m)
	slacks := 0
	for i, cns := range p.constraints {
		sign := 1.0
		op := cns.Op
		if cns.RHS < 0 {
			sign = -1
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		maxAbs := 0.0
		for _, t := range cns.Terms {
			if a := math.Abs(t.Coef); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		infos[i] = rowInfo{op: op, sign: sign}
		ip.rowSign[i] = int(sign)
		ip.rowScl[i] = 1 / maxAbs
		if op != EQ {
			slacks++
		}
	}

	ip.cols = make([]column, p.numVars, p.numVars+slacks)
	for i, cns := range p.constraints {
		f := infos[i].sign * ip.rowScl[i]
		ip.b[i] = f * cns.RHS
		for _, t := range cns.Terms {
			col := &ip.cols[t.Var]
			if k := len(col.rows); k > 0 && col.rows[k-1] == int32(i) {
				col.vals[k-1] += f * t.Coef
				continue
			}
			col.rows = append(col.rows, int32(i))
			col.vals = append(col.vals, f*t.Coef)
		}
	}
	for i, info := range infos {
		switch info.op {
		case LE:
			ip.cols = append(ip.cols, column{rows: []int32{int32(i)}, vals: []float64{1}})
		case GE:
			ip.cols = append(ip.cols, column{rows: []int32{int32(i)}, vals: []float64{-1}})
		}
	}
	ip.n = len(ip.cols)
	ip.c = make([]float64, ip.n)
	copy(ip.c, p.objective)

	ip.opt = opts.withDefaults(m, ip.n)
	return ip
}

// ipmWorkspace holds every vector and matrix the Newton loop touches,
// preallocated once and reused across re-solves of a persistent
// instance. grow resizes it after columns are appended.
type ipmWorkspace struct {
	// m-sized
	rp, dy, dyc, rhs, acceptY, accept2Y []float64
	// n-sized
	rd, dx, ds, dxc, dsc, d, rc, acceptX, accept2X []float64
	// m×m
	mmat, chol []float64
}

func newIPMWorkspace(m, n int) *ipmWorkspace {
	ws := &ipmWorkspace{}
	ws.grow(m, n)
	return ws
}

func (ws *ipmWorkspace) grow(m, n int) {
	for _, p := range []*[]float64{&ws.rp, &ws.dy, &ws.dyc, &ws.rhs, &ws.acceptY, &ws.accept2Y} {
		if cap(*p) < m {
			*p = make([]float64, m)
		}
		*p = (*p)[:m]
	}
	for _, p := range []*[]float64{&ws.rd, &ws.dx, &ws.ds, &ws.dxc, &ws.dsc, &ws.d, &ws.rc, &ws.acceptX, &ws.accept2X} {
		if cap(*p) < n {
			// Headroom for a column-generation master that keeps growing.
			*p = make([]float64, n, n+n/2+16)
		}
		*p = (*p)[:n]
	}
	if cap(ws.mmat) < m*m {
		ws.mmat = make([]float64, m*m)
		ws.chol = make([]float64, m*m)
	}
	ws.mmat = ws.mmat[:m*m]
	ws.chol = ws.chol[:m*m]
}

// defaultStart fills (x, y, s) with the cold interior start scaled to the
// problem's magnitude.
func (ip *ipm) defaultStart(x, y, s []float64) {
	bn, cn := norm(ip.b), norm(ip.c)
	start := math.Max(1, math.Max(bn, cn))
	for j := range x {
		x[j] = start
		s[j] = start
	}
	for i := range y {
		y[i] = 0
	}
}

func (ip *ipm) solve() (*Solution, error) {
	x := make([]float64, ip.n)
	s := make([]float64, ip.n)
	y := make([]float64, ip.m)
	ip.defaultStart(x, y, s)
	return ip.run(x, y, s, newIPMWorkspace(ip.m, ip.n))
}

// run iterates the predictor-corrector loop from the given starting
// point, which it mutates in place: at return, (x, y, s) hold the final
// iterate — a warm-startable point for a subsequent re-solve.
func (ip *ipm) run(x, y, s []float64, ws *ipmWorkspace) (*Solution, error) {
	m, n := ip.m, ip.n
	bn, cn := norm(ip.b), norm(ip.c)

	rp := ws.rp
	rd := ws.rd
	dx := ws.dx
	ds := ws.ds
	dy := ws.dy
	dxc := ws.dxc
	dsc := ws.dsc
	dyc := ws.dyc
	d := ws.d
	rhs := ws.rhs
	mmat := ws.mmat
	rc := ws.rc

	maxIter := 200
	tol := 1e-9
	// Near the optimum (and on nearly rank-deficient rows) the
	// regularised normal equations become too ill-conditioned to push
	// the residuals further — they can even grow while the gap
	// underflows. The best iterate seen is therefore kept and accepted
	// under slightly relaxed thresholds when exact tolerance is out of
	// reach.
	const (
		pAccept   = 1e-5
		dAccept   = 1e-6
		gapAccept = 1e-7
		// Second tier: still ample accuracy for dual prices when the
		// first tier proves unreachable on an ill-conditioned instance.
		pAccept2   = 1e-4
		dAccept2   = 1e-5
		gapAccept2 = 3e-6
	)
	var lastAP, lastAD, lastSigma float64
	bestScore := math.Inf(1)
	acceptX := ws.acceptX
	acceptY := ws.acceptY
	acceptScore := math.Inf(1)
	acceptOK := false
	accept2X := ws.accept2X
	accept2Y := ws.accept2Y
	accept2Score := math.Inf(1)
	accept2OK := false
	stalled := 0
	lastIter := 0

	for iter := 0; iter < maxIter; iter++ {
		lastIter = iter
		// A Newton iteration costs a dense Cholesky (O(m³)); polling the
		// context here bounds abandonment latency to one factorisation.
		if ip.opt.Ctx != nil {
			if err := ip.opt.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Residuals.
		ip.residuals(x, y, s, rp, rd)
		mu := dot(x, s) / float64(n)
		pInf := norm(rp) / (1 + bn)
		dInf := norm(rd) / (1 + cn)
		gap := mu / (1 + math.Abs(dot(ip.c, x)))
		if pInf < tol && dInf < tol && gap < tol {
			return ip.finish(x, y, iter), nil
		}
		score := pInf + dInf + gap
		if math.IsNaN(score) {
			break
		}
		if score < bestScore {
			bestScore = score
			stalled = 0
		} else {
			stalled++
		}
		// Acceptable iterates are snapshotted independently of the raw
		// score: the lowest-score iterate is not necessarily one that
		// meets every threshold.
		if pInf < pAccept && dInf < dAccept && gap < gapAccept && score < acceptScore {
			acceptScore = score
			copy(acceptX, x)
			copy(acceptY, y)
			acceptOK = true
		}
		if pInf < pAccept2 && dInf < dAccept2 && gap < gapAccept2 && score < accept2Score {
			accept2Score = score
			copy(accept2X, x)
			copy(accept2Y, y)
			accept2OK = true
		}
		// Stop when the iterates no longer improve: with an acceptable
		// incumbent almost immediately, otherwise after a longer grace
		// period (residuals can plateau for a stretch mid-run).
		if (acceptOK && stalled > 3) || stalled > 30 || (mu < 1e-18 && acceptOK) {
			break
		}
		if debugLP && iter%5 == 4 {
			fmt.Printf("ipm debug: iter %d pInf %.3g dInf %.3g gap %.3g mu %.3g aP %.3g aD %.3g sigma %.3g\n",
				iter, pInf, dInf, gap, mu, lastAP, lastAD, lastSigma)
		}

		// Normal-equations matrix M = A D Aᵀ + reg·I with D = X/S.
		for j := 0; j < n; j++ {
			d[j] = x[j] / s[j]
		}
		ip.formNormal(d, mmat)
		reg := 1e-12 * (1 + traceMax(mmat, m))
		for i := 0; i < m; i++ {
			mmat[i*m+i] += reg
		}
		chol := ws.chol
		if !choleskyInto(mmat, chol, m) {
			// Heavier regularisation as a fallback.
			for i := 0; i < m; i++ {
				mmat[i*m+i] += 1e-6 * (1 + traceMax(mmat, m))
			}
			if !choleskyInto(mmat, chol, m) {
				return &Solution{Status: IterationLimit, Iterations: iter}, nil
			}
		}

		// Affine-scaling (predictor) direction: rc = −x∘s.
		for j := 0; j < n; j++ {
			rc[j] = -x[j] * s[j]
		}
		ip.solveNewton(chol, d, rp, rd, rc, x, s, dy, dx, ds, rhs)

		aP := math.Min(1, maxStep(x, dx))
		aD := math.Min(1, maxStep(s, ds))
		muAff := 0.0
		for j := 0; j < n; j++ {
			muAff += (x[j] + aP*dx[j]) * (s[j] + aD*ds[j])
		}
		muAff /= float64(n)
		sigma := math.Pow(muAff/mu, 3)
		if sigma > 1 {
			sigma = 1
		}
		lastSigma = sigma

		// Corrector direction: rc = σμe − x∘s − Δx_aff∘Δs_aff.
		for j := 0; j < n; j++ {
			rc[j] = sigma*mu - x[j]*s[j] - dx[j]*ds[j]
		}
		ip.solveNewton(chol, d, rp, rd, rc, x, s, dyc, dxc, dsc, rhs)

		aP = 0.995 * maxStep(x, dxc)
		aD = 0.995 * maxStep(s, dsc)
		if aP > 1 {
			aP = 1
		}
		if aD > 1 {
			aD = 1
		}
		lastAP, lastAD = aP, aD
		for j := 0; j < n; j++ {
			x[j] += aP * dxc[j]
			s[j] += aD * dsc[j]
		}
		for i := 0; i < m; i++ {
			y[i] += aD * dyc[i]
		}
	}
	if acceptOK {
		return ip.finish(acceptX, acceptY, lastIter), nil
	}
	if accept2OK {
		return ip.finish(accept2X, accept2Y, lastIter), nil
	}
	return &Solution{Status: IterationLimit, Iterations: lastIter + 1}, nil
}

// residuals computes rp = b − Ax and rd = c − Aᵀy − s.
func (ip *ipm) residuals(x, y, s, rp, rd []float64) {
	copy(rp, ip.b)
	for j := 0; j < ip.n; j++ {
		if x[j] == 0 {
			continue
		}
		col := &ip.cols[j]
		for k, r := range col.rows {
			rp[r] -= col.vals[k] * x[j]
		}
	}
	for j := 0; j < ip.n; j++ {
		rd[j] = ip.c[j] - s[j] - dotSparse(y, &ip.cols[j])
	}
}

// formNormal fills mmat = A diag(d) Aᵀ (dense, symmetric). Each column's
// row indices are ascending, so only the upper triangle is accumulated —
// halving the flops of the hottest IPM kernel — and mirrored at the end.
func (ip *ipm) formNormal(d []float64, mmat []float64) {
	m := ip.m
	for i := range mmat {
		mmat[i] = 0
	}
	for j := 0; j < ip.n; j++ {
		col := &ip.cols[j]
		dj := d[j]
		rows, vals := col.rows, col.vals
		for a, ra := range rows {
			va := dj * vals[a]
			base := int(ra) * m
			for b := a; b < len(rows); b++ {
				mmat[base+int(rows[b])] += va * vals[b]
			}
		}
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			mmat[j*m+i] = mmat[i*m+j]
		}
	}
}

// solveNewton computes the (dx, dy, ds) Newton direction for the given
// complementarity right-hand side rc, reusing the Cholesky factor.
func (ip *ipm) solveNewton(chol []float64, d, rp, rd, rc, x, s, dy, dx, ds, rhs []float64) {
	m, n := ip.m, ip.n
	// rhs = rp + A·(d∘rd − rc/s)
	copy(rhs, rp)
	for j := 0; j < n; j++ {
		w := d[j]*rd[j] - rc[j]/s[j]
		if w == 0 {
			continue
		}
		col := &ip.cols[j]
		for k, r := range col.rows {
			rhs[r] += col.vals[k] * w
		}
	}
	cholSolve(chol, m, rhs, dy)
	// dx = d∘(Aᵀdy − rd) + rc/s ; ds = (rc − s∘dx)/x
	for j := 0; j < n; j++ {
		aty := dotSparse(dy, &ip.cols[j])
		dx[j] = d[j]*(aty-rd[j]) + rc[j]/s[j]
		ds[j] = (rc[j] - s[j]*dx[j]) / x[j]
	}
}

// finish maps the interior solution back to the caller's variables.
func (ip *ipm) finish(x, y []float64, iters int) *Solution {
	sol := &Solution{Status: Optimal, Iterations: iters}
	sol.X = make([]float64, ip.numOrig)
	obj := 0.0
	for j := 0; j < ip.numOrig; j++ {
		v := x[j]
		if v < 0 {
			v = 0
		}
		sol.X[j] = v
		obj += ip.c[j] * v
	}
	sol.Objective = obj
	sol.Duals = make([]float64, ip.m)
	for i := 0; i < ip.m; i++ {
		sol.Duals[i] = y[i] * float64(ip.rowSign[i]) * ip.rowScl[i]
	}
	return sol
}

func dot(a, b []float64) float64 {
	v := 0.0
	for i := range a {
		v += a[i] * b[i]
	}
	return v
}

func norm(a []float64) float64 {
	v := 0.0
	for _, x := range a {
		v += x * x
	}
	return math.Sqrt(v)
}

// maxStep returns the largest α ∈ (0, 1e20] with v + α·dv ≥ 0.
func maxStep(v, dv []float64) float64 {
	a := math.Inf(1)
	for j := range v {
		if dv[j] < 0 {
			if r := -v[j] / dv[j]; r < a {
				a = r
			}
		}
	}
	if math.IsInf(a, 1) {
		return 1
	}
	return a
}

func traceMax(mmat []float64, m int) float64 {
	worst := 0.0
	for i := 0; i < m; i++ {
		if v := math.Abs(mmat[i*m+i]); v > worst {
			worst = v
		}
	}
	return worst
}

// choleskyInto factors a symmetric positive-definite matrix (row-major)
// into the caller-provided lower-triangular buffer l, reporting false if
// the factorisation breaks down.
func choleskyInto(a, l []float64, m int) bool {
	for i := range l[:m*m] {
		l[i] = 0
	}
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*m+j]
			for k := 0; k < j; k++ {
				sum -= l[i*m+k] * l[j*m+k]
			}
			if i == j {
				if sum <= 0 {
					return false
				}
				l[i*m+i] = math.Sqrt(sum)
			} else {
				l[i*m+j] = sum / l[j*m+j]
			}
		}
	}
	return true
}

// cholSolve solves L Lᵀ out = rhs.
func cholSolve(l []float64, m int, rhs, out []float64) {
	// Forward substitution into out.
	for i := 0; i < m; i++ {
		v := rhs[i]
		for k := 0; k < i; k++ {
			v -= l[i*m+k] * out[k]
		}
		out[i] = v / l[i*m+i]
	}
	// Backward substitution in place.
	for i := m - 1; i >= 0; i-- {
		v := out[i]
		for k := i + 1; k < m; k++ {
			v -= l[k*m+i] * out[k]
		}
		out[i] = v / l[i*m+i]
	}
}

package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveIPMOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := SolveIPM(p, Options{})
	if err != nil {
		t.Fatalf("SolveIPM: %v\n%s", err, p.DebugString())
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal\n%s", sol.Status, p.DebugString())
	}
	if v := p.Violation(sol.X); v > 1e-5 {
		t.Fatalf("solution violates constraints by %g\n%s", v, p.DebugString())
	}
	return sol
}

func TestIPMSimpleLE(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{-1, -2})
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 1}}, LE, 2)
	sol := solveIPMOK(t, p)
	if math.Abs(sol.Objective+6) > 1e-5 {
		t.Fatalf("objective = %v, want -6", sol.Objective)
	}
}

func TestIPMEquality(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]Term{{0, 1}, {1, 2}}, EQ, 3)
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, EQ, 0)
	sol := solveIPMOK(t, p)
	if math.Abs(sol.Objective-2) > 1e-5 {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestIPMMatchesSimplexRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(4)
		p := NewProblem(n)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64() * 5
		}
		p.SetObjective(c)
		for i := 0; i < m; i++ {
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.7 {
					terms = append(terms, Term{j, rng.Float64() * 3})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{rng.Intn(n), 1})
			}
			p.AddConstraint(terms, GE, 1+rng.Float64()*5)
		}
		sx, err := Solve(p, Options{})
		if err != nil || sx.Status != Optimal {
			t.Fatalf("trial %d simplex: %v %v", trial, err, sx.Status)
		}
		si := solveIPMOK(t, p)
		if math.Abs(sx.Objective-si.Objective) > 1e-4*(1+math.Abs(sx.Objective)) {
			t.Fatalf("trial %d: IPM %v != simplex %v\n%s", trial, si.Objective, sx.Objective, p.DebugString())
		}
	}
}

func TestIPMDualsStrongDuality(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{2, 3})
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 10)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	p.AddConstraint([]Term{{1, 1}}, GE, 3)
	sol := solveIPMOK(t, p)
	dual := 10*sol.Duals[0] + 2*sol.Duals[1] + 3*sol.Duals[2]
	if math.Abs(dual-sol.Objective) > 1e-5*(1+math.Abs(dual)) {
		t.Fatalf("strong duality violated: dual %v primal %v", dual, sol.Objective)
	}
}

func TestIPMDegenerateParallelColumns(t *testing.T) {
	// Many near-parallel columns under equality rows: the structure that
	// stalls pivoting methods. IPM must sail through.
	rng := rand.New(rand.NewSource(12))
	const m, n = 30, 120
	p := NewProblem(n)
	base := make([]float64, m)
	for i := range base {
		base[i] = rng.Float64()
	}
	for j := 0; j < n; j++ {
		p.SetObjectiveCoeff(j, rng.Float64())
	}
	rows := make([][]Term, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			v := base[i] * (1 + 1e-4*rng.NormFloat64())
			rows[i] = append(rows[i], Term{j, v})
		}
	}
	for i := 0; i < m; i++ {
		p.AddConstraint(rows[i], EQ, base[i]*10)
	}
	sol := solveIPMOK(t, p)
	if sol.Iterations >= 200 {
		t.Fatalf("IPM failed to converge in %d iterations", sol.Iterations)
	}
}

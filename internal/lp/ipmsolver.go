package lp

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/faultinject"
)

// IPMSolver is a persistent interior-point instance for re-solve
// sequences that mutate one problem in place — the restricted master of
// a column-generation loop. It keeps the compiled standard form, the
// Newton-loop workspace and the previous optimal iterate alive across
// solves: AddColumn appends a priced-out column without rebuilding
// anything, SetObjectiveCoeff retunes costs (stabilization penalties),
// and each Solve warm-starts from the previous iterate, falling back to
// the usual cold start automatically whenever the warm point is stale or
// fails to converge.
//
// The instance is compiled for equality-constrained problems (every row
// EQ): that keeps appended columns in one-to-one correspondence with
// standard-form columns. Row equilibration factors are frozen at
// NewIPMSolver time and applied to appended columns, so all rows stay on
// a consistent scale. Not safe for concurrent use.
type IPMSolver struct {
	ip *ipm
	ws *ipmWorkspace

	// Previous optimal iterate; warm-start seed for the next Solve.
	warmX, warmY, warmS []float64
	haveWarm            bool

	entryBuf []Term    // scratch for AddColumn's sorted, scaled entries
	rowBuf   []int32   // scratch for AddColumn's merged CSC entries
	valBuf   []float64 // scratch for AddColumn's merged CSC entries
}

// NewIPMSolver compiles the problem. Every constraint row must be EQ; a
// problem with inequality rows (whose standard form appends slack
// columns after the originals) is rejected because AddColumn could no
// longer grow the tail of the column array.
func NewIPMSolver(p *Problem, opts Options) (*IPMSolver, error) {
	if len(p.constraints) == 0 {
		return nil, ErrNoConstraints
	}
	for i, c := range p.constraints {
		if c.Op != EQ {
			return nil, fmt.Errorf("lp: IPMSolver requires equality rows, row %d is %v", i, c.Op)
		}
	}
	ip := newIPM(p, opts)
	return &IPMSolver{ip: ip, ws: newIPMWorkspace(ip.m, ip.n)}, nil
}

// NumVars returns the current column count.
func (sv *IPMSolver) NumVars() int { return sv.ip.n }

// SetObjectiveCoeff updates the objective coefficient of column j.
func (sv *IPMSolver) SetObjectiveCoeff(j int, v float64) {
	sv.ip.c[j] = v
}

// SetContext installs the cancellation context polled by subsequent
// solves; nil runs to completion.
func (sv *IPMSolver) SetContext(ctx context.Context) { sv.ip.opt.Ctx = ctx }

// AddColumn appends a new non-negative variable with objective
// coefficient cost; in entries, Term.Var is a row index. The compiled
// form grows in place and the warm iterate is extended so the next Solve
// still warm-starts.
func (sv *IPMSolver) AddColumn(cost float64, entries []Term) int {
	ip := sv.ip
	j := ip.n

	sv.entryBuf = sv.entryBuf[:0]
	for _, e := range entries {
		if e.Var < 0 || e.Var >= ip.m {
			panic(fmt.Sprintf("lp: column references row %d of %d", e.Var, ip.m))
		}
		if e.Coef == 0 {
			continue
		}
		sv.entryBuf = append(sv.entryBuf, Term{Var: e.Var, Coef: e.Coef * ip.rowScl[e.Var] * float64(ip.rowSign[e.Var])})
	}
	// formNormal exploits ascending row order within each column.
	sort.Slice(sv.entryBuf, func(a, b int) bool { return sv.entryBuf[a].Var < sv.entryBuf[b].Var })

	sv.rowBuf, sv.valBuf = sv.rowBuf[:0], sv.valBuf[:0]
	for _, e := range sv.entryBuf {
		if k := len(sv.rowBuf); k > 0 && sv.rowBuf[k-1] == int32(e.Var) {
			sv.valBuf[k-1] += e.Coef
			continue
		}
		sv.rowBuf = append(sv.rowBuf, int32(e.Var))
		sv.valBuf = append(sv.valBuf, e.Coef)
	}
	ip.mat.appendCol(sv.rowBuf, sv.valBuf)
	ip.c = append(ip.c, cost)
	ip.n++
	// EQ-only problems carry no slack columns, so every standard-form
	// column is an original variable and must appear in Solution.X.
	ip.numOrig++

	if sv.haveWarm {
		// Seed the new coordinate: a small primal mass keeps the point
		// interior, and the dual slack is the column's (clamped) reduced
		// cost under the previous duals, which is exactly where a
		// post-pricing warm start wants it.
		floor := sv.warmFloor()
		sv.warmX = append(sv.warmX, floor)
		slack := cost - dotRange(sv.warmY, sv.rowBuf, sv.valBuf)
		if slack < floor {
			slack = floor
		}
		sv.warmS = append(sv.warmS, slack)
	}
	return j
}

// warmFloor is the positive floor applied to warm-start coordinates so
// the previous (near-boundary) optimum re-enters the interior.
func (sv *IPMSolver) warmFloor() float64 {
	mu := 0.0
	for j := range sv.warmX {
		mu += sv.warmX[j] * sv.warmS[j]
	}
	if len(sv.warmX) > 0 {
		mu /= float64(len(sv.warmX))
	}
	f := math.Sqrt(mu)
	if f < 1e-3 {
		f = 1e-3
	}
	if f > 1 {
		f = 1
	}
	return f
}

// Solve minimises the current instance, warm-starting from the previous
// optimal iterate when one exists. A warm attempt that fails to reach
// optimality is retried cold before anything is reported, so warm
// starting never changes outcomes — only iteration counts.
func (sv *IPMSolver) Solve() (*Solution, error) {
	if err := faultinject.At(FaultSiteIPM); err != nil {
		return nil, fmt.Errorf("lp: injected fault: %w", err)
	}
	ip := sv.ip
	sv.ws.grow(ip.m, ip.n)

	if sv.haveWarm && len(sv.warmX) == ip.n && len(sv.warmY) == ip.m {
		x, y, s := sv.warmPoint()
		sol, err := ip.run(x, y, s, sv.ws)
		if err != nil {
			return nil, err
		}
		if sol.Status == Optimal {
			sv.saveWarm(x, y, s)
			return sol, nil
		}
		// Stale warm point: fall through to a cold start.
		sv.haveWarm = false
	}

	x := growFloats(sv.warmX, ip.n)
	s := growFloats(sv.warmS, ip.n)
	y := growFloats(sv.warmY, ip.m)
	usedMehrotra := ip.mehrotraStart(x, y, s, sv.ws)
	if !usedMehrotra {
		ip.defaultStart(x, y, s)
	}
	sol, err := ip.run(x, y, s, sv.ws)
	if err != nil {
		return nil, err
	}
	if sol.Status != Optimal && usedMehrotra {
		// The least-squares start is a heuristic; the uniform cold start
		// remains the backstop so starting-point choice never changes an
		// outcome.
		ip.defaultStart(x, y, s)
		sol, err = ip.run(x, y, s, sv.ws)
		if err != nil {
			return nil, err
		}
	}
	if sol.Status == Optimal {
		sv.saveWarm(x, y, s)
	} else {
		sv.haveWarm = false
	}
	return sol, err
}

// warmPoint builds the starting point for a warm solve: the previous
// iterate pushed back into the interior by a μ-scaled floor. The arrays
// are the stored warm buffers themselves — run mutates them in place and
// saveWarm re-adopts them afterwards.
func (sv *IPMSolver) warmPoint() (x, y, s []float64) {
	floor := sv.warmFloor()
	for j := range sv.warmX {
		if sv.warmX[j] < floor {
			sv.warmX[j] = floor
		}
		if sv.warmS[j] < floor {
			sv.warmS[j] = floor
		}
	}
	return sv.warmX, sv.warmY, sv.warmS
}

// saveWarm adopts the final iterate of a successful solve as the next
// warm-start seed.
func (sv *IPMSolver) saveWarm(x, y, s []float64) {
	sv.warmX, sv.warmY, sv.warmS = x, y, s
	sv.haveWarm = true
}

// Package lp implements the self-contained linear-programming solvers
// used throughout the VLP reproduction: a dense revised simplex (Solve)
// and a Mehrotra predictor-corrector interior-point method (SolveIPM).
//
// The simplex carries the numerical defenses this problem family needs:
//
//   - conversion of general-form problems (≤ / ≥ / = rows, x ≥ 0) to
//     standard equality form with slack and surplus variables,
//   - a two-phase start (artificial variables priced out in phase 1),
//   - row and column equilibration (Geo-I rows mix unit and e^{εd}
//     coefficients),
//   - an anti-cycling right-hand-side perturbation, restored exactly at
//     optimality,
//   - Dantzig pricing with objective-stall detection that switches to
//     Bland's rule, and a Harris two-pass ratio test that trades ≤1e-9
//     of feasibility for healthy pivot magnitudes,
//   - periodic refactorisation of the basis inverse, and
//   - extraction of both the primal solution and the dual prices, which
//     the Dantzig–Wolfe column-generation loop in internal/core requires.
//
// The IPM complements it on instances that defeat any pivoting method —
// the heavily degenerate CG master with near-parallel columns — at the
// cost of returning interior (non-vertex) solutions; see SolveIPM.
//
// The package is deliberately stdlib-only: the paper's pipeline needs
// many small-to-medium LPs (hundreds of rows and columns) rather than one
// enormous one, and a careful dense implementation solves those in
// microseconds to milliseconds.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota + 1 // left-hand side ≤ rhs
	GE               // left-hand side ≥ rhs
	EQ               // left-hand side = rhs
)

// String returns the conventional symbol for the operator.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Term is one coefficient of a constraint row: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a general-form row: sum of Terms  Op  RHS.
type Constraint struct {
	Terms []Term
	Op    Op
	RHS   float64
}

// Problem is a minimisation LP over variables x[0..n-1] with x ≥ 0:
//
//	minimise  c · x
//	subject to general-form constraints.
//
// Maximisation callers negate their objective.
type Problem struct {
	numVars     int
	objective   []float64
	constraints []Constraint
}

// NewProblem returns an empty minimisation problem with n non-negative
// variables and a zero objective.
func NewProblem(n int) *Problem {
	if n <= 0 {
		panic("lp: NewProblem needs at least one variable")
	}
	return &Problem{
		numVars:   n,
		objective: make([]float64, n),
	}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints returns the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// SetObjective replaces the whole objective vector. The slice is copied.
func (p *Problem) SetObjective(c []float64) {
	if len(c) != p.numVars {
		panic(fmt.Sprintf("lp: objective length %d, want %d", len(c), p.numVars))
	}
	copy(p.objective, c)
}

// SetObjectiveCoeff sets a single objective coefficient.
func (p *Problem) SetObjectiveCoeff(j int, v float64) {
	p.objective[j] = v
}

// AddConstraint appends a general-form row and returns its index.
// Terms are copied; repeated Var entries are summed.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) int {
	row := Constraint{Terms: make([]Term, 0, len(terms)), Op: op, RHS: rhs}
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.numVars {
			panic(fmt.Sprintf("lp: constraint references variable %d of %d", t.Var, p.numVars))
		}
		if t.Coef == 0 {
			continue
		}
		row.Terms = append(row.Terms, t)
	}
	p.constraints = append(p.constraints, row)
	return len(p.constraints) - 1
}

// AddColumn appends a new non-negative decision variable with objective
// coefficient cost and one coefficient per existing constraint row, and
// returns its index. In entries, Term.Var is interpreted as a *row*
// index (the value returned by AddConstraint), not a variable index.
// This is the growth API of column generation: the restricted master
// gains one column per priced-out extreme point without being rebuilt.
func (p *Problem) AddColumn(cost float64, entries []Term) int {
	j := p.numVars
	p.numVars++
	p.objective = append(p.objective, cost)
	for _, e := range entries {
		if e.Var < 0 || e.Var >= len(p.constraints) {
			panic(fmt.Sprintf("lp: column references row %d of %d", e.Var, len(p.constraints)))
		}
		if e.Coef == 0 {
			continue
		}
		row := &p.constraints[e.Var]
		row.Terms = append(row.Terms, Term{Var: j, Coef: e.Coef})
	}
	return j
}

// Status reports the outcome of a solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
	IterationLimit
	// Cancelled is internal to the pivot loop: a solve abandoned via
	// Options.Ctx surfaces to callers as the context's error, never as a
	// Solution with this status.
	Cancelled
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a successful or partially successful solve.
type Solution struct {
	Status    Status
	Objective float64
	// X holds the optimal values of the original decision variables.
	X []float64
	// Duals holds one dual price per original constraint row, using the
	// convention of the minimisation problem in equality form: the
	// reduced cost of column j is c_j − y·A_j ≥ 0 at optimality. For a
	// binding ≤ row the dual is ≤ 0, for a binding ≥ row it is ≥ 0.
	Duals []float64
	// Iterations is the total simplex pivot count across both phases.
	Iterations int
}

// Options tune the solver. The zero value selects sensible defaults.
type Options struct {
	// Tol is the feasibility/optimality tolerance (default 1e-9).
	Tol float64
	// MaxIter bounds total pivots (default 50 000 + 50·(m+n)).
	MaxIter int
	// RefactorEvery forces a recomputation of the basis inverse after
	// this many pivots (default 120).
	RefactorEvery int
	// Ctx, when non-nil, lets callers abandon a solve early: Solve and
	// SolveIPM poll it (every few simplex pivots, every IPM Newton
	// iteration) and return Ctx.Err() as soon as it is done. Nil means
	// run to completion.
	Ctx context.Context
	// NoPresolve skips the Presolve reduction pass that Solve and
	// SolveIPM otherwise run first. The warm-start paths (Prepared,
	// IPMSolver) never presolve — their compiled form must match the
	// caller's row/column indices — so this flag exists for A/B
	// comparisons (the presolve-invariance CI gate) and for callers that
	// need the solver to see their exact formulation.
	NoPresolve bool
}

func (o Options) withDefaults(m, n int) Options {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 50000 + 50*(m+n)
	}
	if o.RefactorEvery <= 0 {
		o.RefactorEvery = 120
	}
	return o
}

// ErrNoConstraints is returned when a problem has no rows: the optimum of
// min c·x with x ≥ 0 is then trivially 0 or −∞, and callers almost
// certainly forgot to add their constraints.
var ErrNoConstraints = errors.New("lp: problem has no constraints")

// debugLP enables pivot-trace prints via the LPDEBUG environment variable.
var debugLP = os.Getenv("LPDEBUG") != ""

// Solve minimises the problem and returns the solution. A non-nil error
// is returned only for malformed inputs; Infeasible/Unbounded outcomes
// are reported through Solution.Status.
//
// Rows are equilibrated (scaled by their largest coefficient magnitude)
// before the simplex runs, and an optimal solution is verified against
// the original rows; on the rare numerically-drifted solve, one retry
// with aggressive refactorisation runs automatically.
func Solve(p *Problem, opts Options) (*Solution, error) {
	if len(p.constraints) == 0 {
		return nil, ErrNoConstraints
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	if !opts.NoPresolve {
		if sol, done, err := solvePresolved(p, opts, Solve); done {
			return sol, err
		}
	}
	sol, err := newSimplex(p, opts).solve()
	if err != nil || sol.Status != Optimal {
		return sol, err
	}
	if p.Violation(sol.X) <= 1e-6 {
		return sol, nil
	}
	retry := opts
	retry.RefactorEvery = 8
	sol2, err := newSimplex(p, retry).solve()
	if err != nil {
		return nil, err
	}
	if sol2.Status == Optimal && p.Violation(sol2.X) <= p.Violation(sol.X) {
		return sol2, nil
	}
	return sol, nil
}

// simplex carries the equality-form problem and the revised-simplex state.
type simplex struct {
	opt Options

	m int // rows
	n int // total columns incl. slack/surplus and artificials

	mat  csc       // A by column, pooled CSC storage
	b    []float64 // rhs, ≥ 0
	cost []float64 // phase-2 costs (original objective; 0 for slack; +big for artificial — never negative reduced cost in phase 2 because banned)

	numOrig  int       // original variable count
	artStart int       // first artificial column index
	rowSign  []int     // +1 if original row kept, −1 if negated to make b ≥ 0
	rowScale []float64 // equilibration factor applied to each row
	colScale []float64 // equilibration factor applied to each original column

	basis  []int     // basis[i] = column basic in row i
	inBase []bool    // inBase[j]
	binv   []float64 // m×m basis inverse, row-major
	xb     []float64 // current basic values (= binv·b)
	bOrig  []float64 // unperturbed rhs, restored at optimality

	// Preallocated workspaces, sized once so the pivot loop and the
	// periodic refactorisations allocate nothing. A one-shot solve pays
	// for them once; a Prepared instance reuses them across solves.
	scratchY   []float64 // m: dual vector of the pricing pass
	scratchDir []float64 // m: entering direction B⁻¹A_j
	scratchAcc []float64 // n: y·A accumulator of the pricing pass

	// CSR mirror of mat, rebuilt at the top of each iterate call (the
	// matrix is static within a pivot loop but Prepared re-signs
	// artificial columns between solves). Pricing sweeps it row-major:
	// one pass over the nonzeros with streaming writes replaces n short
	// column gathers whose per-column loop overhead dominated the scan.
	rowPtr  []int32
	rowCols []int32
	rowVals []float64
	rowNext []int32   // m: fill cursors for the CSR build
	bmatBuf []float64 // m×m: refactor's basis matrix
	invBuf  []float64 // m×m: refactor's inversion target (swapped with binv)
	p1Cost  []float64 // n: phase-1 cost vector (lazy)
	banned  []bool    // n: phase-2 banned mask (lazy)

	pivots              int
	sinceRefactor       int
	debugInfeasReported bool
}

func newSimplex(p *Problem, opts Options) *simplex {
	m := len(p.constraints)
	s := &simplex{
		m:       m,
		numOrig: p.numVars,
		b:       make([]float64, m),
		rowSign: make([]int, m),
	}

	// Count extra columns: one slack or surplus per inequality row, one
	// artificial per row that lacks an identity slack after sign fixing.
	type rowInfo struct {
		op   Op
		sign int
	}
	infos := make([]rowInfo, m)
	extra := 0
	for i, c := range p.constraints {
		sign := 1
		op := c.Op
		if c.RHS < 0 {
			sign = -1
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		infos[i] = rowInfo{op: op, sign: sign}
		s.rowSign[i] = sign
		if op != EQ {
			extra++ // slack or surplus
		}
	}

	// Row equilibration: scale each row so its largest coefficient
	// magnitude is 1, which keeps the basis well-conditioned when rows
	// mix unit and exponential-scale coefficients.
	s.rowScale = make([]float64, m)
	for i, c := range p.constraints {
		// Duplicate Var entries are merged below; for scaling purposes
		// the max unmerged magnitude is a fine (and cheaper) proxy.
		maxAbs := 0.0
		for _, t := range c.Terms {
			if a := math.Abs(t.Coef); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		s.rowScale[i] = 1 / maxAbs
	}

	// Column layout: [0..numOrig) originals, then slack/surplus, then
	// artificials. The builder merges duplicate Var entries within a row
	// and reserves pool headroom for the unit columns appended below.
	rowFactor := make([]float64, m)
	for i, c := range p.constraints {
		rowFactor[i] = float64(infos[i].sign) * s.rowScale[i]
		s.b[i] = rowFactor[i] * c.RHS
	}
	s.mat = newCSCBuilder(p.constraints, p.numVars, extra+m, rowFactor)

	// Column equilibration on the original variables: x_j = scale_j·x'_j
	// turns columns with uniformly tiny coefficients into unit-scale
	// ones, which keeps pivot elements healthy. Slack and artificial
	// columns are already unit-scale.
	s.colScale = make([]float64, p.numVars)
	for j := range s.colScale {
		maxAbs := s.mat.colMaxAbs(j)
		if maxAbs == 0 {
			s.colScale[j] = 1
			continue
		}
		s.colScale[j] = 1 / maxAbs
		s.mat.scaleCol(j, s.colScale[j])
	}

	// Slack / surplus columns; remember which rows get an identity start.
	slackRow := make([]int, 0, extra) // row of each slack usable as initial basis
	basisOf := make([]int, m)
	for i := range basisOf {
		basisOf[i] = -1
	}
	for i, info := range infos {
		switch info.op {
		case LE:
			j := s.mat.appendUnitCol(int32(i), 1)
			basisOf[i] = j
			slackRow = append(slackRow, i)
		case GE:
			s.mat.appendUnitCol(int32(i), -1)
		}
	}
	_ = slackRow

	// Artificial columns for rows without an identity start.
	s.artStart = s.mat.numCols()
	for i := 0; i < m; i++ {
		if basisOf[i] >= 0 {
			continue
		}
		basisOf[i] = s.mat.appendUnitCol(int32(i), 1)
	}
	s.n = s.mat.numCols()

	// Phase-2 cost vector, in the column-scaled variables.
	s.cost = make([]float64, s.n)
	for j := 0; j < p.numVars; j++ {
		s.cost[j] = p.objective[j] * s.colScale[j]
	}

	// Initial basis.
	s.basis = make([]int, m)
	s.inBase = make([]bool, s.n)
	for i := 0; i < m; i++ {
		s.basis[i] = basisOf[i]
		s.inBase[basisOf[i]] = true
	}
	// Anti-cycling perturbation: highly degenerate problems (the CG
	// master is one) can cycle even under tolerance-based Bland's rule,
	// so the right-hand side is nudged by tiny distinct amounts that
	// break every ratio-test tie. Reduced costs never see b, so the
	// optimal basis of the perturbed problem is optimal for the original
	// too; the true b is restored before the solution is read off.
	s.bOrig = append([]float64(nil), s.b...)
	rngState := uint64(0x9e3779b97f4a7c15)
	for i := range s.b {
		rngState ^= rngState << 13
		rngState ^= rngState >> 7
		rngState ^= rngState << 17
		u := 0.5 + float64(rngState%1024)/1024.0 // (0.5, 1.5)
		s.b[i] += 1e-8 * u * (1 + math.Abs(s.b[i]))
	}

	s.binv = identity(m)
	s.xb = make([]float64, m)
	copy(s.xb, s.b)
	s.allocScratch()

	s.opt = opts.withDefaults(m, s.n)
	return s
}

// allocScratch sizes the per-solve workspaces once.
func (s *simplex) allocScratch() {
	m := s.m
	s.scratchY = make([]float64, m)
	s.scratchDir = make([]float64, m)
	s.bmatBuf = make([]float64, m*m)
	s.invBuf = make([]float64, m*m)
}

func identity(m int) []float64 {
	id := make([]float64, m*m)
	for i := 0; i < m; i++ {
		id[i*m+i] = 1
	}
	return id
}

func (s *simplex) solve() (*Solution, error) {
	sol := &Solution{}
	if err := s.solveInto(sol); err != nil {
		return nil, err
	}
	return sol, nil
}

// solveInto runs the two-phase simplex from the current initial state and
// writes the outcome into sol, reusing sol's X and Duals buffers when
// they have capacity. A non-nil error is returned only for cancellation.
func (s *simplex) solveInto(sol *Solution) error {
	// Phase 1: minimise the sum of artificials (cost 1 on artificials).
	if s.artStart < s.n {
		phase1 := s.phase1Cost()
		status := s.iterate(phase1, nil)
		if status == Cancelled {
			return s.opt.Ctx.Err()
		}
		if status == IterationLimit {
			sol.Status, sol.Iterations = IterationLimit, s.pivots
			return nil
		}
		infeas := 0.0
		for i, j := range s.basis {
			if j >= s.artStart {
				infeas += s.xb[i]
			}
		}
		// The anti-cycling perturbation can leave equality systems
		// inconsistent by its own magnitude; only residues clearly above
		// the total injected perturbation mean true infeasibility.
		pertTotal := 0.0
		for i := range s.b {
			pertTotal += s.b[i] - s.bOrig[i]
		}
		if infeas > 1e-7+20*pertTotal {
			sol.Status, sol.Iterations = Infeasible, s.pivots
			return nil
		}
		s.evictArtificials()
	}

	// Phase 2: original costs, artificials banned from entering.
	status := s.iterate(s.cost, s.bannedArtificials())
	if status == Cancelled {
		return s.opt.Ctx.Err()
	}

	sol.Status, sol.Iterations = status, s.pivots
	if status != Optimal {
		return nil
	}
	s.extractInto(sol)
	return nil
}

// phase1Cost returns the phase-1 cost vector (1 on artificials), built in
// a lazily allocated reusable buffer.
func (s *simplex) phase1Cost() []float64 {
	if s.p1Cost == nil || len(s.p1Cost) != s.n {
		s.p1Cost = make([]float64, s.n)
		for j := s.artStart; j < s.n; j++ {
			s.p1Cost[j] = 1
		}
	}
	return s.p1Cost
}

// bannedArtificials returns the phase-2 banned mask, built in a lazily
// allocated reusable buffer.
func (s *simplex) bannedArtificials() []bool {
	if s.banned == nil || len(s.banned) != s.n {
		s.banned = make([]bool, s.n)
		for j := s.artStart; j < s.n; j++ {
			s.banned[j] = true
		}
	}
	return s.banned
}

// extractInto reads the optimal primal/dual solution off the current
// basis, restoring the unperturbed right-hand side first.
func (s *simplex) extractInto(sol *Solution) {
	// Restore the unperturbed right-hand side: the basis stays optimal
	// (reduced costs are b-independent) and the basic values are
	// recomputed exactly.
	copy(s.b, s.bOrig)
	s.refactor()

	// Recover primal values of the original variables, undoing the
	// column equilibration.
	sol.X = growFloats(sol.X, s.numOrig)
	obj := 0.0
	for i, j := range s.basis {
		if j < s.numOrig {
			v := s.xb[i]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			obj += s.cost[j] * v
			sol.X[j] = v * s.colScale[j]
		}
	}
	sol.Objective = obj

	// Duals: y = c_B · B⁻¹ prices the scaled, sign-fixed rows. The solver
	// saw row (scale·a)x ⋛ scale·b, so the original row's dual is
	// y·scale (then undo the sign flip): c_j − Σ yᵢ(scaleᵢ·aᵢⱼ) =
	// c_j − Σ (yᵢ·scaleᵢ)aᵢⱼ.
	y := s.scratchY
	s.dualInto(s.cost, y)
	sol.Duals = growFloats(sol.Duals, s.m)
	for i := 0; i < s.m; i++ {
		sol.Duals[i] = y[i] * float64(s.rowSign[i]) * s.rowScale[i]
	}
}

// growFloats returns a zeroed slice of length n, reusing buf's backing
// array when it has capacity.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// evictArtificials pivots basic artificial variables (all at value 0 after
// a feasible phase 1) out of the basis where possible so that phase-2
// duals are well-defined. Rows whose artificial cannot be replaced are
// redundant; the artificial stays basic at zero and is banned from
// re-entering, which is harmless.
func (s *simplex) evictArtificials() {
	for i := 0; i < s.m; i++ {
		if s.basis[i] < s.artStart {
			continue
		}
		// Find a non-artificial non-basic column with a nonzero pivot
		// element in row i of B⁻¹·A.
		for j := 0; j < s.artStart; j++ {
			if s.inBase[j] {
				continue
			}
			piv := s.binvRowDotCol(i, j)
			if math.Abs(piv) > 1e-7 {
				s.pivot(j, i, nil)
				break
			}
		}
	}
}

// binvRowDotCol returns (B⁻¹ A_j)[i] without forming the full direction.
func (s *simplex) binvRowDotCol(i, j int) float64 {
	row := s.binv[i*s.m : (i+1)*s.m]
	rows, vals := s.mat.col(j)
	return dotRange(row, rows, vals)
}

// iterate runs simplex pivots under the given cost vector until optimal,
// unbounded, or the iteration budget is exhausted. banned columns are
// never chosen to enter.
func (s *simplex) iterate(cost []float64, banned []bool) Status {
	tol := s.opt.Tol
	degenerate := 0
	useBland := false
	y := s.scratchY
	dir := s.scratchDir
	s.buildCSR()

	// Stall detection: perturbation can turn exactly-degenerate pivots
	// into micro-steps that never register as degenerate yet make no
	// real progress, letting Dantzig pricing cycle numerically. Lack of
	// objective improvement over ~2m pivots switches to Bland's rule.
	bestObj := math.Inf(1)
	sinceImprove := 0

	for s.pivots < s.opt.MaxIter {
		// Cancellation poll: cheap relative to a pivot's O(m²) work, but
		// still amortised over a few pivots to keep tiny LPs overhead-free.
		if s.opt.Ctx != nil && s.pivots&31 == 0 {
			if s.opt.Ctx.Err() != nil {
				return Cancelled
			}
		}
		obj := 0.0
		for i, j := range s.basis {
			if c := cost[j]; c != 0 {
				obj += c * s.xb[i]
			}
		}
		if math.IsInf(bestObj, 1) || obj < bestObj-1e-10*(1+math.Abs(bestObj)) {
			bestObj = obj
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove > 2*s.m+50 {
				useBland = true
			}
		}
		if debugLP && s.pivots%20000 == 0 && s.pivots > 0 {
			minXB, negXB := 0.0, 0
			for _, v := range s.xb {
				if v < -1e-9 {
					negXB++
				}
				if v < minXB {
					minXB = v
				}
			}
			fmt.Printf("lp debug: pivot %d obj %.12g best %.12g bland %v degen %d negXB %d minXB %.3g\n",
				s.pivots, obj, bestObj, useBland, degenerate, negXB, minXB)
		}

		s.dualInto(cost, y)

		// Pricing: accumulate y·A in one row-major sweep, then scan the
		// candidates. Per column the products arrive in the same
		// ascending-row order the old per-column gather used, so every
		// reduced cost — and hence every pivot choice — is bit-identical.
		s.accumPriceInto(y)
		acc := s.scratchAcc
		enter := -1
		best := -tol
		if !useBland && banned == nil {
			// Hot path: the Dantzig scan with the per-column ban and
			// Bland branches hoisted out. Same candidates in the same
			// order, so the pivot choice is identical.
			for j := 0; j < s.n; j++ {
				if s.inBase[j] {
					continue
				}
				if rc := cost[j] - acc[j]; rc < best {
					best = rc
					enter = j
				}
			}
		} else {
			for j := 0; j < s.n; j++ {
				if s.inBase[j] || (banned != nil && banned[j]) {
					continue
				}
				rc := cost[j] - acc[j]
				if useBland {
					if rc < -tol {
						enter = j
						break
					}
				} else if rc < best {
					best = rc
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal
		}

		// Direction d = B⁻¹ A_enter.
		s.directionInto(enter, dir)

		// Harris two-pass ratio test: pass 1 computes the largest step
		// that lets every basic variable go no lower than −δ; pass 2
		// picks, among rows whose exact ratio fits within that step, the
		// one with the largest pivot element (lowest basis index under
		// Bland's rule). Tiny pivots are what turn round-off into a
		// near-singular basis with exploding B⁻¹ — the dominant failure
		// mode on degenerate masters — and the δ-window buys the freedom
		// to avoid them at a per-step infeasibility cost of at most δ.
		leave := s.ratioTestHarris(dir, useBland)
		if leave < 0 {
			return Unbounded
		}
		minRatio := s.xb[leave] / dir[leave]
		if minRatio < 0 {
			minRatio = 0
		}
		if minRatio < tol {
			degenerate++
			if degenerate > 2*s.m+20 {
				// Switch to Bland's rule permanently for this phase:
				// resetting on occasional progress lets cycles that mix
				// degenerate and near-degenerate pivots run forever.
				useBland = true
			}
		} else {
			degenerate = 0
		}

		s.pivot(enter, leave, dir)
	}
	return IterationLimit
}

// ratioTestHarris returns the leaving row of the Harris two-pass ratio
// test, or -1 when the direction is unbounded. Basic variables already
// below zero (within the accumulated δ slack) are treated as zero, so
// they force near-zero steps until they leave the basis — a self-healing
// property.
func (s *simplex) ratioTestHarris(dir []float64, useBland bool) int {
	tol := s.opt.Tol
	const delta = 1e-9

	theta := math.Inf(1)
	for i := 0; i < s.m; i++ {
		if dir[i] <= tol {
			continue
		}
		xbi := s.xb[i]
		if xbi < 0 {
			xbi = 0
		}
		if a := (xbi + delta) / dir[i]; a < theta {
			theta = a
		}
	}
	if math.IsInf(theta, 1) {
		return -1
	}

	leave := -1
	for i := 0; i < s.m; i++ {
		if dir[i] <= tol {
			continue
		}
		xbi := s.xb[i]
		if xbi < 0 {
			xbi = 0
		}
		if xbi/dir[i] > theta {
			continue
		}
		if leave < 0 {
			leave = i
			continue
		}
		if useBland {
			if s.basis[i] < s.basis[leave] {
				leave = i
			}
		} else if dir[i] > dir[leave] {
			leave = i
		}
	}
	return leave
}

// pivot brings column enter into the basis at row leave, updating B⁻¹ and
// the basic values. dir may be the precomputed direction B⁻¹A_enter; pass
// nil to have pivot compute it.
func (s *simplex) pivot(enter, leave int, dir []float64) {
	m := s.m
	if dir == nil {
		dir = s.scratchDir
		s.directionInto(enter, dir)
	}
	pv := dir[leave]

	// Update B⁻¹: row ops turning dir into e_leave.
	lrow := s.binv[leave*m : (leave+1)*m]
	inv := 1 / pv
	for k := range lrow {
		lrow[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		f := dir[i]
		if f == 0 {
			continue
		}
		row := s.binv[i*m : (i+1)*m]
		for k := range row {
			row[k] -= f * lrow[k]
		}
	}

	// Update basic values the same way.
	s.xb[leave] *= inv
	xl := s.xb[leave]
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		if f := dir[i]; f != 0 {
			s.xb[i] -= f * xl
		}
	}

	s.inBase[s.basis[leave]] = false
	s.basis[leave] = enter
	s.inBase[enter] = true
	s.pivots++
	s.sinceRefactor++
	if s.sinceRefactor >= s.opt.RefactorEvery {
		s.refactor()
	}
	if debugLP && !s.debugInfeasReported {
		for i, v := range s.xb {
			if v < -1e-6 {
				s.debugInfeasReported = true
				fmt.Printf("lp debug: FIRST infeasible xb[%d]=%.6g at pivot %d (enter=%d leave=%d pv=%.3g dir[i]=%.3g)\n",
					i, v, s.pivots, enter, leave, pv, dir[i])
				break
			}
		}
	}
}

// refactor rebuilds B⁻¹ and the basic values from scratch for numerical
// hygiene, reusing preallocated buffers. It reports whether the basis
// matrix inverted cleanly; on a (numerically) singular basis the
// incrementally-updated inverse is kept, and the basic values are
// refreshed either way so a caller-side change of b takes effect.
func (s *simplex) refactor() bool {
	s.sinceRefactor = 0
	m := s.m
	bmat := s.bmatBuf
	for i := range bmat {
		bmat[i] = 0
	}
	for i, j := range s.basis {
		rows, vals := s.mat.col(j)
		for k, r := range rows {
			bmat[int(r)*m+i] = vals[k]
		}
	}
	ok := invertDenseInto(bmat, s.invBuf, m)
	if ok {
		s.binv, s.invBuf = s.invBuf, s.binv
	}
	for i := 0; i < m; i++ {
		row := s.binv[i*m : (i+1)*m]
		v := 0.0
		for k := 0; k < m; k++ {
			v += row[k] * s.b[k]
		}
		s.xb[i] = v
	}
	return ok
}

// dualInto fills y = c_B · B⁻¹.
func (s *simplex) dualInto(cost []float64, y []float64) {
	m := s.m
	for k := 0; k < m; k++ {
		y[k] = 0
	}
	for i, j := range s.basis {
		cb := cost[j]
		if cb == 0 {
			continue
		}
		row := s.binv[i*m : (i+1)*m]
		for k := 0; k < m; k++ {
			y[k] += cb * row[k]
		}
	}
}

// buildCSR refreshes the row-major mirror of mat used by the pricing
// sweep. O(nnz), called once per iterate — negligible next to the pivot
// loop — and necessary there because Prepared flips artificial-column
// signs between solves.
func (s *simplex) buildCSR() {
	m, nnz := s.m, s.mat.nnz()
	if cap(s.rowPtr) < m+1 {
		s.rowPtr = make([]int32, m+1)
		s.rowNext = make([]int32, m)
	}
	s.rowPtr, s.rowNext = s.rowPtr[:m+1], s.rowNext[:m]
	if cap(s.rowCols) < nnz {
		s.rowCols = make([]int32, nnz, nnz+nnz/2)
		s.rowVals = make([]float64, nnz, nnz+nnz/2)
	}
	s.rowCols, s.rowVals = s.rowCols[:nnz], s.rowVals[:nnz]
	if cap(s.scratchAcc) < s.n {
		s.scratchAcc = make([]float64, s.n, s.n+s.n/2)
	}
	s.scratchAcc = s.scratchAcc[:s.n]

	cnt := s.rowPtr
	for i := range cnt {
		cnt[i] = 0
	}
	for _, r := range s.mat.rows {
		cnt[r+1]++
	}
	for i := 0; i < m; i++ {
		cnt[i+1] += cnt[i]
	}
	copy(s.rowNext, cnt[:m])
	// Columns are visited ascending, so each row's entries land in
	// ascending column order and the pricing writes stream.
	for j := 0; j < s.n; j++ {
		lo, hi := s.mat.colPtr[j], s.mat.colPtr[j+1]
		for k := lo; k < hi; k++ {
			r := s.mat.rows[k]
			p := s.rowNext[r]
			s.rowCols[p] = int32(j)
			s.rowVals[p] = s.mat.vals[k]
			s.rowNext[r] = p + 1
		}
	}
}

// accumPriceInto fills scratchAcc[j] = y · A_j by sweeping the CSR
// mirror row-major. Rows with a zero multiplier are skipped: their
// products are exact zeros, so the accumulated values match the
// per-column gather bit for bit.
func (s *simplex) accumPriceInto(y []float64) {
	acc := s.scratchAcc
	for j := range acc {
		acc[j] = 0
	}
	rowPtr, rowCols, rowVals := s.rowPtr, s.rowCols, s.rowVals
	for i := 0; i < s.m; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		lo, hi := rowPtr[i], rowPtr[i+1]
		cols, vals := rowCols[lo:hi], rowVals[lo:hi]
		for k, c := range cols {
			acc[c] += yi * vals[k]
		}
	}
}

// directionInto fills d = B⁻¹ A_j, walking binv row-major so the column
// gather stays cache-friendly.
func (s *simplex) directionInto(j int, d []float64) {
	m := s.m
	rows, vals := s.mat.col(j)
	for i := 0; i < m; i++ {
		row := s.binv[i*m : (i+1)*m]
		d[i] = dotRange(row, rows, vals)
	}
}

// invertDense inverts an m×m row-major matrix with Gauss-Jordan
// elimination and partial pivoting. It reports false for (numerically)
// singular input.
func invertDense(a []float64, m int) ([]float64, bool) {
	work := make([]float64, len(a))
	copy(work, a)
	inv := make([]float64, m*m)
	if !invertDenseInto(work, inv, m) {
		return nil, false
	}
	return inv, true
}

// invertDenseInto inverts the m×m row-major matrix in work into inv,
// destroying work. Both buffers are caller-provided so the periodic
// refactorisations allocate nothing.
func invertDenseInto(work, inv []float64, m int) bool {
	for i := range inv {
		inv[i] = 0
	}
	for i := 0; i < m; i++ {
		inv[i*m+i] = 1
	}
	for col := 0; col < m; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(work[col*m+col])
		for r := col + 1; r < m; r++ {
			if v := math.Abs(work[r*m+col]); v > best {
				best = v
				p = r
			}
		}
		if best < 1e-12 {
			return false
		}
		if p != col {
			swapRows(work, m, p, col)
			swapRows(inv, m, p, col)
		}
		pivInv := 1 / work[col*m+col]
		for k := 0; k < m; k++ {
			work[col*m+k] *= pivInv
			inv[col*m+k] *= pivInv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := work[r*m+col]
			if f == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				work[r*m+k] -= f * work[col*m+k]
				inv[r*m+k] -= f * inv[col*m+k]
			}
		}
	}
	return true
}

func swapRows(a []float64, m, i, j int) {
	ri := a[i*m : (i+1)*m]
	rj := a[j*m : (j+1)*m]
	for k := 0; k < m; k++ {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Violation reports the largest constraint violation of x under the
// problem's rows, useful for solution verification in tests.
func (p *Problem) Violation(x []float64) float64 {
	worst := 0.0
	for _, c := range p.constraints {
		lhs := 0.0
		for _, t := range c.Terms {
			lhs += t.Coef * x[t.Var]
		}
		var v float64
		switch c.Op {
		case LE:
			v = lhs - c.RHS
		case GE:
			v = c.RHS - lhs
		case EQ:
			v = math.Abs(lhs - c.RHS)
		}
		if v > worst {
			worst = v
		}
	}
	for _, xi := range x {
		if -xi > worst {
			worst = -xi
		}
	}
	return worst
}

// Objective evaluates c·x for this problem's objective.
func (p *Problem) Objective(x []float64) float64 {
	v := 0.0
	for j, c := range p.objective {
		v += c * x[j]
	}
	return v
}

// Clone returns a copy of the problem, letting callers branch a base
// formulation (for example, re-solve with extra rows or a different
// objective). Constraint terms are shared copy-on-write — the solvers
// never mutate them, and the full-capacity re-slice below forces any
// later AddColumn/AddConstraint append on either copy to reallocate its
// own backing — so cloning costs one allocation per row instead of a
// deep copy of every coefficient.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		numVars:     p.numVars,
		objective:   append([]float64(nil), p.objective...),
		constraints: make([]Constraint, len(p.constraints)),
	}
	for i, c := range p.constraints {
		q.constraints[i] = Constraint{
			Terms: c.Terms[:len(c.Terms):len(c.Terms)],
			Op:    c.Op,
			RHS:   c.RHS,
		}
	}
	return q
}

// DebugString renders a tiny problem for test-failure messages. Rows are
// rendered in index order; only problems with few variables stay legible.
func (p *Problem) DebugString() string {
	out := "min"
	for j, c := range p.objective {
		if c != 0 {
			out += fmt.Sprintf(" %+gx%d", c, j)
		}
	}
	out += "\n"
	for _, c := range p.constraints {
		terms := append([]Term(nil), c.Terms...)
		sort.Slice(terms, func(a, b int) bool { return terms[a].Var < terms[b].Var })
		for _, t := range terms {
			out += fmt.Sprintf(" %+gx%d", t.Coef, t.Var)
		}
		out += fmt.Sprintf(" %s %g\n", c.Op, c.RHS)
	}
	return out
}

package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestLargeCoefficientSpread(t *testing.T) {
	// Geo-I-style rows mix unit and e^{εd} ≈ 10⁴ coefficients; the
	// equilibration must keep the solve exact.
	p := NewProblem(3)
	p.SetObjective([]float64{1, 2, 3})
	p.AddConstraint([]Term{{0, 1}, {1, 1}, {2, 1}}, EQ, 1)
	p.AddConstraint([]Term{{0, 1}, {1, -28000}}, LE, 0)
	p.AddConstraint([]Term{{1, 1}, {0, -28000}}, LE, 0)
	sol := solveOK(t, p)
	// Optimum pushes mass to x0 (cheapest) subject to coupling.
	if sol.X[0] < 0.9 {
		t.Fatalf("x = %v, expected x0 ≈ 1", sol.X)
	}
}

func TestEqualityOnlyDegenerate(t *testing.T) {
	// Multiple redundant equalities (rank-deficient): phase 1 must keep
	// an artificial basic at zero and still solve.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 2)
	p.AddConstraint([]Term{{0, 2}, {1, 2}}, EQ, 4) // redundant
	p.AddConstraint([]Term{{0, 1}}, GE, 0.5)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > 1e-6 {
		t.Fatalf("objective %v, want 2", sol.Objective)
	}
}

func TestZeroRHSConeWithBox(t *testing.T) {
	// The pricing subproblem shape: homogeneous rows plus a unit box,
	// negative costs pushing into the cone.
	p := NewProblem(4)
	p.SetObjective([]float64{-1, -0.5, 0.1, 0.2})
	f := math.Exp(3 * 0.2)
	for i := 0; i < 3; i++ {
		p.AddConstraint([]Term{{i, 1}, {i + 1, -f}}, LE, 0)
		p.AddConstraint([]Term{{i + 1, 1}, {i, -f}}, LE, 0)
	}
	for i := 0; i < 4; i++ {
		p.AddConstraint([]Term{{i, 1}}, LE, 1)
	}
	sol := solveOK(t, p)
	if sol.X[0] < 0.99 {
		t.Fatalf("x0 = %v, want 1 (most negative cost)", sol.X[0])
	}
	// Chain constraints force neighbours above x0/f.
	if sol.X[1] < 1/f-1e-9 {
		t.Fatalf("x1 = %v violates chained lower bound %v", sol.X[1], 1/f)
	}
}

func TestMaxIterReportsLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewProblem(20)
	for j := 0; j < 20; j++ {
		p.SetObjectiveCoeff(j, rng.NormFloat64())
	}
	for i := 0; i < 15; i++ {
		terms := make([]Term, 20)
		for j := range terms {
			terms[j] = Term{j, rng.NormFloat64()}
		}
		p.AddConstraint(terms, LE, 1+rng.Float64())
	}
	sol, err := Solve(p, Options{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == Optimal && sol.Iterations > 1 {
		t.Fatalf("exceeded MaxIter: %d iterations", sol.Iterations)
	}
}

func TestDualSignsGEBinding(t *testing.T) {
	// For a min problem, binding >= rows carry nonnegative duals.
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]Term{{0, 1}}, GE, 3)
	sol := solveOK(t, p)
	if sol.Duals[0] < -1e-9 {
		t.Fatalf("dual %v, want >= 0 for binding GE row", sol.Duals[0])
	}
	if math.Abs(sol.Duals[0]-1) > 1e-6 {
		t.Fatalf("dual %v, want 1 (marginal cost)", sol.Duals[0])
	}
}

func TestIPMInfeasibleReportsLimit(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	sol, err := SolveIPM(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == Optimal {
		t.Fatalf("IPM claimed optimal on an infeasible problem (x=%v)", sol.X)
	}
}

func TestIPMTransportation(t *testing.T) {
	// Balanced transportation problem (EQ rows both sides).
	const k = 5
	p := NewProblem(k * k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			p.SetObjectiveCoeff(i*k+j, float64((i+1)*(j+1)))
		}
	}
	for i := 0; i < k; i++ {
		terms := make([]Term, k)
		for j := 0; j < k; j++ {
			terms[j] = Term{i*k + j, 1}
		}
		p.AddConstraint(terms, EQ, 1)
	}
	for j := 0; j < k; j++ {
		terms := make([]Term, k)
		for i := 0; i < k; i++ {
			terms[i] = Term{i*k + j, 1}
		}
		p.AddConstraint(terms, EQ, 1)
	}
	si := solveIPMOK(t, p)
	sx, err := Solve(p, Options{})
	if err != nil || sx.Status != Optimal {
		t.Fatalf("simplex: %v %v", err, sx.Status)
	}
	if math.Abs(si.Objective-sx.Objective) > 1e-4*(1+sx.Objective) {
		t.Fatalf("IPM %v != simplex %v", si.Objective, sx.Objective)
	}
}

func TestSolutionIndependentOfTermOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	build := func(shuffle bool) *Problem {
		p := NewProblem(4)
		p.SetObjective([]float64{3, 1, 4, 1})
		rows := [][]Term{
			{{0, 2}, {1, 1}, {3, 0.5}},
			{{1, 1}, {2, 3}},
			{{0, 1}, {2, 1}, {3, 1}},
		}
		for _, terms := range rows {
			ts := append([]Term(nil), terms...)
			if shuffle {
				rng.Shuffle(len(ts), func(i, j int) { ts[i], ts[j] = ts[j], ts[i] })
			}
			p.AddConstraint(ts, GE, 2)
		}
		return p
	}
	a := solveOK(t, build(false))
	b := solveOK(t, build(true))
	if math.Abs(a.Objective-b.Objective) > 1e-9 {
		t.Fatalf("term order changed the optimum: %v vs %v", a.Objective, b.Objective)
	}
}

package lp

import (
	"math"
	"math/rand"
	"testing"
)

const tol = 1e-6

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v\n%s", err, p.DebugString())
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal\n%s", sol.Status, p.DebugString())
	}
	if v := p.Violation(sol.X); v > 1e-6 {
		t.Fatalf("solution violates constraints by %g\n%s", v, p.DebugString())
	}
	return sol
}

func TestSolveSimpleLE(t *testing.T) {
	// min -x0 - 2x1 s.t. x0 + x1 <= 4, x1 <= 2  => x = (2, 2), obj = -6.
	p := NewProblem(2)
	p.SetObjective([]float64{-1, -2})
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 1}}, LE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective+6) > tol {
		t.Fatalf("objective = %v, want -6", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > tol || math.Abs(sol.X[1]-2) > tol {
		t.Fatalf("x = %v, want (2,2)", sol.X)
	}
}

func TestSolveEquality(t *testing.T) {
	// min x0 + x1 s.t. x0 + 2x1 = 3, x0 - x1 = 0  => x = (1, 1), obj = 2.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]Term{{0, 1}, {1, 2}}, EQ, 3)
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, EQ, 0)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > tol {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestSolveGE(t *testing.T) {
	// Diet-style: min 3x0 + 2x1 s.t. x0 + x1 >= 4, x0 + 3x1 >= 6.
	// Vertices: (0,4) obj 8, (3,1) obj 11, (6,0) obj 18 => optimum 8.
	p := NewProblem(2)
	p.SetObjective([]float64{3, 2})
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 4)
	p.AddConstraint([]Term{{0, 1}, {1, 3}}, GE, 6)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-8) > tol {
		t.Fatalf("objective = %v, want 8 (x=%v)", sol.Objective, sol.X)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x0 s.t. -x0 <= -3  (i.e. x0 >= 3).
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]Term{{0, -1}}, LE, -3)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-3) > tol {
		t.Fatalf("x0 = %v, want 3", sol.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{-1, 0})
	p.AddConstraint([]Term{{1, 1}}, LE, 1)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNoConstraints(t *testing.T) {
	p := NewProblem(1)
	if _, err := Solve(p, Options{}); err != ErrNoConstraints {
		t.Fatalf("err = %v, want ErrNoConstraints", err)
	}
}

func TestDegenerateCycleGuard(t *testing.T) {
	// Beale's classic cycling example (cycles under naive Dantzig rule).
	// min -0.75x0 + 150x1 - 0.02x2 + 6x3
	// s.t. 0.25x0 - 60x1 - 0.04x2 + 9x3 <= 0
	//      0.5x0  - 90x1 - 0.02x2 + 3x3 <= 0
	//      x2 <= 1
	// Optimum: obj = -0.05 at x = (0.04, 0, 1, 0) scaled; known optimum -1/20.
	p := NewProblem(4)
	p.SetObjective([]float64{-0.75, 150, -0.02, 6})
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective+0.05) > tol {
		t.Fatalf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestDualsLE(t *testing.T) {
	// min -x0 - 2x1 s.t. x0 + x1 <= 4, x1 <= 2.
	// Duals (for min with <=): y = (-1, -1): strong duality b·y = -6.
	p := NewProblem(2)
	p.SetObjective([]float64{-1, -2})
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 1}}, LE, 2)
	sol := solveOK(t, p)
	if len(sol.Duals) != 2 {
		t.Fatalf("len(duals) = %d", len(sol.Duals))
	}
	dualObj := 4*sol.Duals[0] + 2*sol.Duals[1]
	if math.Abs(dualObj-sol.Objective) > tol {
		t.Fatalf("strong duality violated: dual %v primal %v (y=%v)", dualObj, sol.Objective, sol.Duals)
	}
	for i, y := range sol.Duals {
		if y > tol {
			t.Fatalf("dual %d = %v, want <= 0 for a <= row in a min problem", i, y)
		}
	}
}

func TestDualsMixed(t *testing.T) {
	// min 2x0 + 3x1 s.t. x0 + x1 = 10, x0 >= 2, x1 >= 3.
	// Optimum x = (7, 3), obj = 23.
	p := NewProblem(2)
	p.SetObjective([]float64{2, 3})
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 10)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	p.AddConstraint([]Term{{1, 1}}, GE, 3)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-23) > tol {
		t.Fatalf("objective = %v, want 23", sol.Objective)
	}
	dualObj := 10*sol.Duals[0] + 2*sol.Duals[1] + 3*sol.Duals[2]
	if math.Abs(dualObj-sol.Objective) > tol {
		t.Fatalf("strong duality violated: dual %v primal %v (y=%v)", dualObj, sol.Objective, sol.Duals)
	}
}

func TestDuplicateTermsMerged(t *testing.T) {
	// x0 + x0 <= 4 must behave as 2x0 <= 4.
	p := NewProblem(1)
	p.SetObjective([]float64{-1})
	p.AddConstraint([]Term{{0, 1}, {0, 1}}, LE, 4)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-2) > tol {
		t.Fatalf("x0 = %v, want 2", sol.X[0])
	}
}

func TestZeroCoefficientsDropped(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{1, 0})
	p.AddConstraint([]Term{{0, 1}, {1, 0}}, GE, 5)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-5) > tol {
		t.Fatalf("x0 = %v, want 5", sol.X[0])
	}
}

func TestClone(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 2)
	q := p.Clone()
	q.AddConstraint([]Term{{0, 1}}, GE, 5)
	if p.NumConstraints() != 1 || q.NumConstraints() != 2 {
		t.Fatalf("clone not independent: p=%d q=%d rows", p.NumConstraints(), q.NumConstraints())
	}
	q.SetObjectiveCoeff(0, 100)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > tol {
		t.Fatalf("objective of original changed: %v", sol.Objective)
	}
}

type plane struct {
	a   []float64
	rhs float64
}

// bruteForce enumerates all basic feasible points of a small LP (choosing
// n active constraints among rows and x_j = 0 planes) and returns the best
// objective. Second return is false when no feasible vertex exists.
func bruteForce(p *Problem, n int) (float64, bool) {
	var planes []plane
	for _, c := range p.constraints {
		a := make([]float64, n)
		for _, t := range c.Terms {
			a[t.Var] += t.Coef
		}
		planes = append(planes, plane{a, c.RHS})
	}
	for j := 0; j < n; j++ {
		a := make([]float64, n)
		a[j] = 1
		planes = append(planes, plane{a, 0})
	}

	best := math.Inf(1)
	found := false
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x := solveSquare(planes, idx, n)
			if x == nil {
				return
			}
			if p.Violation(x) > 1e-7 {
				return
			}
			if v := p.Objective(x); v < best {
				best = v
				found = true
			}
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

func solveSquare(planes []plane, idx []int, n int) []float64 {
	a := make([]float64, n*n)
	b := make([]float64, n)
	for r, pi := range idx {
		copy(a[r*n:(r+1)*n], planes[pi].a)
		b[r] = planes[pi].rhs
	}
	inv, ok := invertDense(a, n)
	if !ok {
		return nil
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			x[i] += inv[i*n+k] * b[k]
		}
	}
	return x
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(2) // 2-3 vars
		m := 2 + rng.Intn(3) // 2-4 rows
		p := NewProblem(n)
		c := make([]float64, n)
		for j := range c {
			c[j] = math.Round(rng.NormFloat64()*4*8) / 8
		}
		p.SetObjective(c)
		hasUpper := false
		for i := 0; i < m; i++ {
			terms := make([]Term, 0, n)
			allPos := true
			for j := 0; j < n; j++ {
				v := math.Round(rng.NormFloat64()*3*8) / 8
				if v != 0 {
					terms = append(terms, Term{j, v})
				}
				if v <= 0 {
					allPos = false
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{0, 1})
				allPos = false
			}
			op := []Op{LE, GE, EQ}[rng.Intn(3)]
			rhs := math.Round(rng.Float64()*10*8) / 8
			if op == LE && allPos {
				hasUpper = true
			}
			p.AddConstraint(terms, op, rhs)
		}
		if !hasUpper {
			// Bound the feasible region so the brute force is comparable
			// (avoids unbounded instances).
			terms := make([]Term, n)
			for j := 0; j < n; j++ {
				terms[j] = Term{j, 1}
			}
			p.AddConstraint(terms, LE, 50)
		}

		want, feasible := bruteForce(p, n)
		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible {
			if sol.Status == Optimal {
				t.Fatalf("trial %d: simplex says optimal %v, brute force says infeasible\n%s",
					trial, sol.Objective, p.DebugString())
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v, brute force found optimum %v\n%s",
				trial, sol.Status, want, p.DebugString())
		}
		if math.Abs(sol.Objective-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("trial %d: objective %v, brute force %v\n%s",
				trial, sol.Objective, want, p.DebugString())
		}
	}
}

func TestStrongDualityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(4)
		p := NewProblem(n)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64() * 5 // nonneg costs => bounded below
		}
		p.SetObjective(c)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.7 {
					terms = append(terms, Term{j, rng.Float64() * 3})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{rng.Intn(n), 1})
			}
			rhs[i] = 1 + rng.Float64()*5
			p.AddConstraint(terms, GE, rhs[i]) // covering LP: always feasible
		}
		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		dual := 0.0
		for i, y := range sol.Duals {
			dual += rhs[i] * y
		}
		if math.Abs(dual-sol.Objective) > 1e-5*(1+math.Abs(dual)) {
			t.Fatalf("trial %d: dual %v != primal %v", trial, dual, sol.Objective)
		}
	}
}

func TestLargerTransportation(t *testing.T) {
	// A 6x6 transportation problem with known optimum (balanced, costs i*j
	// pattern): supply 10 each, demand 10 each; min cost pairs i with
	// opposite j. Verify against brute-force assignment on the same costs
	// computed by the Hungarian-style exhaustive search over permutations
	// (transportation optimum with equal supplies/demands is a permutation
	// assignment scaled by 10).
	const k = 6
	p := NewProblem(k * k)
	cost := make([]float64, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			cost[i*k+j] = float64((i + 1) * (j + 1))
		}
	}
	p.SetObjective(cost)
	for i := 0; i < k; i++ {
		terms := make([]Term, k)
		for j := 0; j < k; j++ {
			terms[j] = Term{i*k + j, 1}
		}
		p.AddConstraint(terms, EQ, 10)
	}
	for j := 0; j < k; j++ {
		terms := make([]Term, k)
		for i := 0; i < k; i++ {
			terms[i] = Term{i*k + j, 1}
		}
		p.AddConstraint(terms, EQ, 10)
	}
	sol := solveOK(t, p)

	// Exhaustive permutation minimum.
	perm := []int{0, 1, 2, 3, 4, 5}
	best := math.Inf(1)
	var permute func(k int)
	permute = func(kk int) {
		if kk == len(perm) {
			tot := 0.0
			for i, j := range perm {
				tot += cost[i*k+j] * 10
			}
			if tot < best {
				best = tot
			}
			return
		}
		for i := kk; i < len(perm); i++ {
			perm[kk], perm[i] = perm[i], perm[kk]
			permute(kk + 1)
			perm[kk], perm[i] = perm[i], perm[kk]
		}
	}
	permute(0)
	if math.Abs(sol.Objective-best) > tol {
		t.Fatalf("objective %v, want %v", sol.Objective, best)
	}
}

func TestIterationCountReported(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{-1, -1})
	p.AddConstraint([]Term{{0, 1}, {1, 2}}, LE, 4)
	p.AddConstraint([]Term{{0, 2}, {1, 1}}, LE, 4)
	sol := solveOK(t, p)
	if sol.Iterations <= 0 {
		t.Fatalf("iterations = %d, want > 0", sol.Iterations)
	}
}

package lp

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteMPS renders the problem in free-format MPS so it can be archived
// and cross-checked against external solvers. The encoding is canonical:
// rows are named R0..R{m−1} in constraint order, columns X0..X{n−1},
// entries are written column-major sorted by row with duplicate terms
// summed, coefficients use the shortest exact decimal form, and every
// column carries an explicit OBJ entry (even a zero one) so the variable
// count survives a round trip. ParseMPS(WriteMPS(p)) reproduces p up to
// term ordering, and re-writing that parse reproduces the bytes exactly.
//
// The problem's implicit bounds (x ≥ 0, no upper bound) coincide with
// the MPS default, so no BOUNDS section is emitted.
func WriteMPS(w io.Writer, p *Problem, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "LP"
	}
	fmt.Fprintf(bw, "NAME          %s\n", name)
	bw.WriteString("ROWS\n")
	bw.WriteString(" N  OBJ\n")
	for i, c := range p.constraints {
		var letter byte
		switch c.Op {
		case LE:
			letter = 'L'
		case GE:
			letter = 'G'
		case EQ:
			letter = 'E'
		default:
			return fmt.Errorf("lp: WriteMPS: row %d has invalid operator %v", i, c.Op)
		}
		fmt.Fprintf(bw, " %c  R%d\n", letter, i)
	}

	// Column-major view with duplicate (row, col) terms summed.
	type entry struct {
		row  int
		coef float64
	}
	cols := make([][]entry, p.numVars)
	for ri, c := range p.constraints {
		for _, t := range c.Terms {
			cols[t.Var] = append(cols[t.Var], entry{row: ri, coef: t.Coef})
		}
	}
	bw.WriteString("COLUMNS\n")
	for j := 0; j < p.numVars; j++ {
		cn := "X" + strconv.Itoa(j)
		fmt.Fprintf(bw, "    %-10s %-10s %s\n", cn, "OBJ", fmtMPS(p.objective[j]))
		es := cols[j]
		sort.Slice(es, func(a, b int) bool { return es[a].row < es[b].row })
		for i := 0; i < len(es); {
			row, sum := es[i].row, es[i].coef
			for i++; i < len(es) && es[i].row == row; i++ {
				sum += es[i].coef
			}
			if sum == 0 {
				continue
			}
			fmt.Fprintf(bw, "    %-10s %-10s %s\n", cn, "R"+strconv.Itoa(row), fmtMPS(sum))
		}
	}
	bw.WriteString("RHS\n")
	for i, c := range p.constraints {
		if c.RHS == 0 {
			continue
		}
		fmt.Fprintf(bw, "    %-10s %-10s %s\n", "RHS", "R"+strconv.Itoa(i), fmtMPS(c.RHS))
	}
	bw.WriteString("ENDATA\n")
	return bw.Flush()
}

// fmtMPS renders a coefficient in the shortest decimal form that parses
// back to the identical float64.
func fmtMPS(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mpsRow is a parsed ROWS entry before the Problem is assembled.
type mpsRow struct {
	op    Op
	rhs   float64
	terms []Term
}

// ParseMPS reads a free-format MPS model (the subset WriteMPS emits:
// NAME/ROWS/COLUMNS/RHS/ENDATA with a single objective row and default
// bounds) and returns it as a Problem. Variables are numbered in the
// order COLUMNS first mentions them; rows keep their ROWS-section order.
// RANGES, BOUNDS, integer markers and negative lower bounds are not
// representable in Problem and are rejected rather than misread.
func ParseMPS(r io.Reader) (*Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)

	var objName string
	rowIdx := make(map[string]int)
	var rows []mpsRow
	colIdx := make(map[string]int)
	var colNames []string
	var objCoef []float64
	section := ""
	sawEnd := false

	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "*") {
			continue
		}
		if sawEnd {
			break
		}
		// Section headers start in column 1; data lines are indented.
		if !strings.HasPrefix(line, " ") && !strings.HasPrefix(line, "\t") {
			fields := strings.Fields(trimmed)
			section = strings.ToUpper(fields[0])
			switch section {
			case "NAME", "ROWS", "COLUMNS", "RHS", "OBJSENSE":
			case "ENDATA":
				sawEnd = true
			case "RANGES", "BOUNDS":
				return nil, fmt.Errorf("lp: ParseMPS: %s section not supported", section)
			default:
				return nil, fmt.Errorf("lp: ParseMPS: unknown section %q", section)
			}
			continue
		}
		fields := strings.Fields(trimmed)
		switch section {
		case "ROWS":
			if len(fields) != 2 {
				return nil, fmt.Errorf("lp: ParseMPS: malformed ROWS line %q", trimmed)
			}
			kind, name := strings.ToUpper(fields[0]), fields[1]
			if _, dup := rowIdx[name]; dup || name == objName {
				return nil, fmt.Errorf("lp: ParseMPS: duplicate row %q", name)
			}
			switch kind {
			case "N":
				if objName != "" {
					return nil, fmt.Errorf("lp: ParseMPS: multiple objective rows (%q, %q)", objName, name)
				}
				objName = name
			case "L":
				rowIdx[name] = len(rows)
				rows = append(rows, mpsRow{op: LE})
			case "G":
				rowIdx[name] = len(rows)
				rows = append(rows, mpsRow{op: GE})
			case "E":
				rowIdx[name] = len(rows)
				rows = append(rows, mpsRow{op: EQ})
			default:
				return nil, fmt.Errorf("lp: ParseMPS: unknown row type %q", kind)
			}
		case "COLUMNS":
			if len(fields) >= 3 && strings.ToUpper(fields[1]) == "'MARKER'" {
				return nil, fmt.Errorf("lp: ParseMPS: integer markers not supported")
			}
			if len(fields) < 3 || len(fields)%2 == 0 {
				return nil, fmt.Errorf("lp: ParseMPS: malformed COLUMNS line %q", trimmed)
			}
			cn := fields[0]
			j, ok := colIdx[cn]
			if !ok {
				j = len(colNames)
				colIdx[cn] = j
				colNames = append(colNames, cn)
				objCoef = append(objCoef, 0)
			}
			for f := 1; f+1 < len(fields); f += 2 {
				v, err := strconv.ParseFloat(fields[f+1], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: ParseMPS: bad coefficient %q: %w", fields[f+1], err)
				}
				if fields[f] == objName {
					objCoef[j] += v
					continue
				}
				ri, ok := rowIdx[fields[f]]
				if !ok {
					return nil, fmt.Errorf("lp: ParseMPS: column %q references unknown row %q", cn, fields[f])
				}
				rows[ri].terms = append(rows[ri].terms, Term{Var: j, Coef: v})
			}
		case "RHS":
			if len(fields) < 3 || len(fields)%2 == 0 {
				return nil, fmt.Errorf("lp: ParseMPS: malformed RHS line %q", trimmed)
			}
			for f := 1; f+1 < len(fields); f += 2 {
				v, err := strconv.ParseFloat(fields[f+1], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: ParseMPS: bad RHS value %q: %w", fields[f+1], err)
				}
				if fields[f] == objName {
					return nil, fmt.Errorf("lp: ParseMPS: objective constant not supported")
				}
				ri, ok := rowIdx[fields[f]]
				if !ok {
					return nil, fmt.Errorf("lp: ParseMPS: RHS references unknown row %q", fields[f])
				}
				rows[ri].rhs += v
			}
		case "NAME", "OBJSENSE", "":
			// NAME has no data lines in our dialect; tolerate and skip.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lp: ParseMPS: %w", err)
	}
	if !sawEnd {
		return nil, fmt.Errorf("lp: ParseMPS: missing ENDATA")
	}
	if len(colNames) == 0 {
		return nil, fmt.Errorf("lp: ParseMPS: model has no columns")
	}
	p := NewProblem(len(colNames))
	p.SetObjective(objCoef)
	for _, row := range rows {
		p.AddConstraint(row.terms, row.op, row.rhs)
	}
	return p, nil
}

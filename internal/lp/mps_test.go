package lp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestMPSRoundTrip: parse(write(p)) must reproduce the problem exactly
// (objective, operators, right-hand sides, summed coefficients), and the
// re-parsed problem must solve to the same optimum.
func TestMPSRoundTrip(t *testing.T) {
	rng := xorshift64(0x2545f4914f6cdd1d)
	for trial := 0; trial < 10; trial++ {
		p := geoIInstance(&rng, 3+int(rng.next()*5))
		var buf bytes.Buffer
		if err := WriteMPS(&buf, p, "roundtrip"); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		q, err := ParseMPS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, buf.String())
		}
		if q.NumVars() != p.NumVars() || q.NumConstraints() != p.NumConstraints() {
			t.Fatalf("trial %d: shape %dx%d, want %dx%d",
				trial, q.NumConstraints(), q.NumVars(), p.NumConstraints(), p.NumVars())
		}
		for j := 0; j < p.NumVars(); j++ {
			if math.Float64bits(q.objective[j]) != math.Float64bits(p.objective[j]) {
				t.Fatalf("trial %d: objective[%d] = %v, want %v", trial, j, q.objective[j], p.objective[j])
			}
		}
		ps, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: solve original: %v", trial, err)
		}
		qs, err := Solve(q, Options{})
		if err != nil {
			t.Fatalf("trial %d: solve reparse: %v", trial, err)
		}
		if ps.Status != qs.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, ps.Status, qs.Status)
		}
		if ps.Status == Optimal && math.Abs(ps.Objective-qs.Objective) > 1e-9*(1+math.Abs(ps.Objective)) {
			t.Fatalf("trial %d: objective %v vs %v", trial, ps.Objective, qs.Objective)
		}
		// The writer's output is a fixpoint: writing the parse reproduces
		// the bytes.
		var buf2 bytes.Buffer
		if err := WriteMPS(&buf2, q, "roundtrip"); err != nil {
			t.Fatalf("trial %d: rewrite: %v", trial, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("trial %d: canonical form not a fixpoint:\n--- first\n%s\n--- second\n%s",
				trial, buf.String(), buf2.String())
		}
	}
}

func TestParseMPSRejectsUnsupported(t *testing.T) {
	for _, tc := range []struct{ name, src string }{
		{"bounds", "NAME t\nROWS\n N  OBJ\n L  R0\nCOLUMNS\n    X0 OBJ 1 R0 1\nBOUNDS\n UP BND X0 5\nENDATA\n"},
		{"ranges", "NAME t\nROWS\n N  OBJ\n L  R0\nRANGES\n    RNG R0 1\nENDATA\n"},
		{"no-endata", "NAME t\nROWS\n N  OBJ\nCOLUMNS\n    X0 OBJ 1\n"},
		{"no-columns", "NAME t\nROWS\n N  OBJ\n L  R0\nRHS\nENDATA\n"},
		{"two-objectives", "NAME t\nROWS\n N  OBJ\n N  OBJ2\nCOLUMNS\n    X0 OBJ 1\nENDATA\n"},
		{"unknown-row", "NAME t\nROWS\n N  OBJ\nCOLUMNS\n    X0 NOPE 1\nENDATA\n"},
		{"bad-number", "NAME t\nROWS\n N  OBJ\n L  R0\nCOLUMNS\n    X0 R0 abc\nENDATA\n"},
	} {
		if _, err := ParseMPS(strings.NewReader(tc.src)); err == nil {
			t.Errorf("%s: expected a parse error", tc.name)
		}
	}
}

// FuzzMPSRoundTrip asserts the canonicalisation property on arbitrary
// input: anything that parses must write to a form that re-parses and
// re-writes to identical bytes.
func FuzzMPSRoundTrip(f *testing.F) {
	// Seed corpus: writer output for representative problems plus small
	// handwritten models exercising every section and row type.
	rng := xorshift64(0x853c49e6748fea9b)
	for _, k := range []int{3, 6} {
		var buf bytes.Buffer
		if err := WriteMPS(&buf, geoIInstance(&rng, k), "seed"); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	master := NewProblem(3)
	master.SetObjective([]float64{1.25, -2.5, 1e-3})
	master.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 1)
	master.AddConstraint([]Term{{1, 0.5}, {2, -0.25}}, EQ, 1)
	var mbuf bytes.Buffer
	if err := WriteMPS(&mbuf, master, "master"); err != nil {
		f.Fatal(err)
	}
	f.Add(mbuf.Bytes())
	f.Add([]byte("NAME t\nROWS\n N  OBJ\n L  R0\n G  R1\n E  R2\nCOLUMNS\n    X0 OBJ 2 R0 1\n    X0 R1 -3.5 R2 1\n    X1 R2 0.125\nRHS\n    RHS R0 4 R2 -1\nENDATA\n"))
	f.Add([]byte("* comment\nNAME\nROWS\n N  COST\nCOLUMNS\n    Y COST -0\nENDATA\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseMPS(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := WriteMPS(&first, p, "fuzz"); err != nil {
			t.Fatalf("write after successful parse: %v", err)
		}
		q, err := ParseMPS(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := WriteMPS(&second, q, "fuzz"); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("canonical form not a fixpoint:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
		}
	})
}

package lp

import (
	"context"
	"fmt"
	"math"
)

// Basis is an opaque snapshot of a simplex basis, captured from an
// optimal Prepared solve and restorable into a later solve of the same
// Prepared instance (or another Prepared compiled from a structurally
// identical problem). Snapshots are cheap — one int per row — which is
// what makes keeping one warm basis per pricing subproblem affordable.
type Basis struct {
	cols []int
}

// Len returns the number of rows the snapshot covers (0 for an empty
// snapshot that has never been filled).
func (b *Basis) Len() int {
	if b == nil {
		return 0
	}
	return len(b.cols)
}

// Prepared is a simplex instance compiled once from a Problem and kept
// alive across solves. The constraint *structure* (rows, columns, and
// their coefficients) is frozen at Prepare time; between solves the
// caller may mutate objective coefficients (SetObjectiveCoeff) and
// right-hand sides (SetRHS) in place. All standard-form arrays, the
// basis inverse and every pivot-loop workspace persist, so a steady-state
// re-solve allocates (almost) nothing.
//
// Warm starts: Basis captures the optimal basis of a solve; SolveFrom
// restores it into a later solve. After an objective change the old
// basis stays primal feasible and the primal simplex resumes from it;
// after a right-hand-side change it stays *dual* feasible and a dual
// simplex pass restores primal feasibility first. A snapshot that is
// stale, singular, or infeasible in any way silently falls back to a
// cold two-phase solve — warm starting is an optimisation, never a
// correctness risk.
//
// Unlike newSimplex's one-shot layout, the compiled form never flips row
// signs (the right-hand side may change sign between solves) and gives
// every row an artificial column whose ±1 coefficient is set from the
// current RHS sign at solve time, so the cold start is uniform under any
// RHS. Prepared detaches from the source Problem: later mutations of the
// Problem are not seen.
//
// A Prepared instance is not safe for concurrent use; give each worker
// goroutine its own (bases may be shared across workers as long as the
// rounds are externally synchronised).
type Prepared struct {
	s            *simplex
	pertU        []float64 // per-row anti-cycling factor in (0.5, 1.5)
	bPert        []float64 // perturbed scaled rhs installed at solve start
	initialBasis []int     // the all-artificial cold-start basis

	sol     Solution // reused result; invalidated by the next solve
	haveOpt bool     // last solve ended Optimal (Basis is meaningful)
}

// Prepare compiles the problem for repeated warm-started solves.
func Prepare(p *Problem, opts Options) (*Prepared, error) {
	if len(p.constraints) == 0 {
		return nil, ErrNoConstraints
	}
	m := len(p.constraints)
	s := &simplex{
		m:       m,
		numOrig: p.numVars,
		b:       make([]float64, m),
		rowSign: make([]int, m),
	}
	for i := range s.rowSign {
		s.rowSign[i] = 1 // rows are never sign-flipped here
	}

	// Row equilibration, as in newSimplex.
	s.rowScale = make([]float64, m)
	for i, c := range p.constraints {
		maxAbs := 0.0
		for _, t := range c.Terms {
			if a := math.Abs(t.Coef); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			maxAbs = 1
		}
		s.rowScale[i] = 1 / maxAbs
	}

	// Columns: originals, then slack/surplus per inequality row, then one
	// artificial per row (sign installed per solve).
	extra := 0
	for _, c := range p.constraints {
		if c.Op != EQ {
			extra++
		}
	}
	for i, c := range p.constraints {
		s.b[i] = s.rowScale[i] * c.RHS
	}
	s.mat = newCSCBuilder(p.constraints, p.numVars, extra+m, s.rowScale)

	// Column equilibration on the original variables.
	s.colScale = make([]float64, p.numVars)
	for j := range s.colScale {
		maxAbs := s.mat.colMaxAbs(j)
		if maxAbs == 0 {
			s.colScale[j] = 1
			continue
		}
		s.colScale[j] = 1 / maxAbs
		s.mat.scaleCol(j, s.colScale[j])
	}

	for i, c := range p.constraints {
		switch c.Op {
		case LE:
			s.mat.appendUnitCol(int32(i), 1)
		case GE:
			s.mat.appendUnitCol(int32(i), -1)
		}
	}
	s.artStart = s.mat.numCols()
	for i := 0; i < m; i++ {
		s.mat.appendUnitCol(int32(i), 1)
	}
	s.n = s.mat.numCols()

	s.cost = make([]float64, s.n)
	for j := 0; j < p.numVars; j++ {
		s.cost[j] = p.objective[j] * s.colScale[j]
	}

	s.basis = make([]int, m)
	s.inBase = make([]bool, s.n)
	s.bOrig = append([]float64(nil), s.b...)
	s.binv = make([]float64, m*m)
	s.xb = make([]float64, m)
	s.allocScratch()
	s.opt = opts.withDefaults(m, s.n)

	pp := &Prepared{
		s:            s,
		pertU:        make([]float64, m),
		bPert:        make([]float64, m),
		initialBasis: make([]int, m),
	}
	// Deterministic per-row anti-cycling factors (same xorshift stream as
	// newSimplex, so tie-breaking behaviour matches the one-shot path).
	rngState := uint64(0x9e3779b97f4a7c15)
	for i := range pp.pertU {
		rngState ^= rngState << 13
		rngState ^= rngState >> 7
		rngState ^= rngState << 17
		pp.pertU[i] = 0.5 + float64(rngState%1024)/1024.0
	}
	for i := range pp.initialBasis {
		pp.initialBasis[i] = s.artStart + i
		pp.refreshPert(i)
	}
	return pp, nil
}

// refreshPert recomputes the perturbed RHS of row i from its current
// unperturbed scaled value.
func (pp *Prepared) refreshPert(i int) {
	b := pp.s.bOrig[i]
	pp.bPert[i] = b + 1e-8*pp.pertU[i]*(1+math.Abs(b))
}

// NumRows returns the compiled row count.
func (pp *Prepared) NumRows() int { return pp.s.m }

// SetObjectiveCoeff updates the objective coefficient of original
// variable j for subsequent solves.
func (pp *Prepared) SetObjectiveCoeff(j int, v float64) {
	if j < 0 || j >= pp.s.numOrig {
		panic(fmt.Sprintf("lp: SetObjectiveCoeff(%d) of %d variables", j, pp.s.numOrig))
	}
	pp.s.cost[j] = v * pp.s.colScale[j]
}

// SetRHS updates the right-hand side of row i for subsequent solves. The
// row's operator and coefficients are unchanged.
func (pp *Prepared) SetRHS(i int, v float64) {
	if i < 0 || i >= pp.s.m {
		panic(fmt.Sprintf("lp: SetRHS(%d) of %d rows", i, pp.s.m))
	}
	pp.s.bOrig[i] = pp.s.rowScale[i] * v
	pp.refreshPert(i)
}

// SetContext installs the cancellation context polled by subsequent
// solves; nil runs to completion.
func (pp *Prepared) SetContext(ctx context.Context) { pp.s.opt.Ctx = ctx }

// Basis snapshots the current basis into dst (allocating one if nil) and
// returns it. Meaningful after a solve that ended Optimal; otherwise nil
// is returned and dst is untouched.
func (pp *Prepared) Basis(dst *Basis) *Basis {
	if !pp.haveOpt {
		return nil
	}
	if dst == nil {
		dst = &Basis{}
	}
	dst.cols = append(dst.cols[:0], pp.s.basis...)
	return dst
}

// Solve runs a cold two-phase solve from the all-artificial basis. The
// returned Solution (including its X and Duals slices) is owned by the
// Prepared instance and invalidated by the next solve.
func (pp *Prepared) Solve() (*Solution, error) { return pp.solveWith(nil) }

// SolveFrom warm-starts from a basis snapshot, falling back to a cold
// solve whenever the snapshot is nil, stale, numerically singular or
// infeasible beyond repair. The returned Solution is owned by the
// Prepared instance and invalidated by the next solve.
func (pp *Prepared) SolveFrom(basis *Basis) (*Solution, error) { return pp.solveWith(basis) }

func (pp *Prepared) solveWith(basis *Basis) (*Solution, error) {
	s := pp.s
	pp.haveOpt = false
	if s.opt.Ctx != nil {
		if err := s.opt.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	s.pivots = 0
	copy(s.b, pp.bPert)
	pp.installArtificialSigns()

	if basis != nil && pp.tryWarm(basis) {
		status := s.iterate(s.cost, s.bannedArtificials())
		if status == Cancelled {
			return nil, s.opt.Ctx.Err()
		}
		if status == Optimal {
			pp.sol.Status, pp.sol.Iterations = Optimal, s.pivots
			s.extractInto(&pp.sol)
			pp.haveOpt = true
			return &pp.sol, nil
		}
		// A warm start that wanders into Unbounded/IterationLimit is a
		// stale-basis artefact more often than a true verdict: re-verify
		// with a cold solve before reporting anything.
		copy(s.b, pp.bPert)
		pp.installArtificialSigns()
	}

	pp.resetCold()
	if err := s.solveInto(&pp.sol); err != nil {
		return nil, err
	}
	pp.haveOpt = pp.sol.Status == Optimal
	return &pp.sol, nil
}

// installArtificialSigns points every artificial column in the direction
// of its row's current (perturbed) RHS, so the all-artificial cold basis
// is always primal feasible.
func (pp *Prepared) installArtificialSigns() {
	s := pp.s
	for i := 0; i < s.m; i++ {
		sign := 1.0
		if s.b[i] < 0 {
			sign = -1
		}
		_, vals := s.mat.col(s.artStart + i)
		vals[0] = sign
	}
}

// resetCold restores the all-artificial starting basis: B = diag(±1), so
// B⁻¹ is its own diagonal and xb = |b| ≥ 0.
func (pp *Prepared) resetCold() {
	s := pp.s
	m := s.m
	for j := range s.inBase {
		s.inBase[j] = false
	}
	for i := range s.binv {
		s.binv[i] = 0
	}
	for i := 0; i < m; i++ {
		j := pp.initialBasis[i]
		s.basis[i] = j
		s.inBase[j] = true
		_, avals := s.mat.col(s.artStart + i)
		sign := avals[0]
		s.binv[i*m+i] = sign
		s.xb[i] = sign * s.b[i]
	}
	s.sinceRefactor = 0
}

// warmFeasTol is the primal-feasibility slack a restored basis may carry
// before the warm start is abandoned; matches the solver's self-healing
// ratio-test slack.
const warmFeasTol = 1e-7

// tryWarm restores the snapshot and brings it to primal feasibility,
// reporting whether the primal phase-2 iteration can start from it.
func (pp *Prepared) tryWarm(basis *Basis) bool {
	s := pp.s
	m := s.m
	if len(basis.cols) != m {
		return false
	}
	for j := range s.inBase {
		s.inBase[j] = false
	}
	for i, j := range basis.cols {
		if j < 0 || j >= s.n || s.inBase[j] {
			// Out-of-range or duplicated index: poisoned snapshot.
			for k := 0; k < i; k++ {
				s.inBase[basis.cols[k]] = false
			}
			return false
		}
		s.basis[i] = j
		s.inBase[j] = true
	}
	if !s.refactor() {
		return false // singular restored basis
	}
	// An artificial basic above tolerance means the snapshot's row sign
	// no longer matches, or the point genuinely violates its row; the
	// primal/dual machinery below cannot drive it out, so go cold.
	minXB := 0.0
	for i, j := range s.basis {
		if j >= s.artStart && s.xb[i] > warmFeasTol {
			return false
		}
		if s.xb[i] < minXB {
			minXB = s.xb[i]
		}
	}
	if minXB >= -warmFeasTol {
		return true // still primal feasible: resume the primal simplex
	}
	// RHS drift: the basis is dual feasible but not primal feasible any
	// more. A handful of dual-simplex pivots usually repairs it.
	return s.dualIterate(s.cost, s.bannedArtificials(), 50+2*m) == Optimal
}

// dualIterate runs dual-simplex pivots from a dual-feasible basis until
// primal feasibility is restored (returning Optimal — the basis is then
// optimal up to the primal clean-up pass), the pivot budget is exhausted
// (IterationLimit), or the basis turns out not to be dual feasible /
// the leaving row admits no entering column (Infeasible). Non-Optimal
// outcomes mean "fall back to a cold solve", not a verdict on the LP.
func (s *simplex) dualIterate(cost []float64, banned []bool, maxPivots int) Status {
	m := s.m
	y := s.scratchY
	dir := s.scratchDir
	const rcTol = 1e-7 // dual-feasibility slack on reduced costs

	for n := 0; n < maxPivots; n++ {
		if s.opt.Ctx != nil && n&15 == 0 {
			if s.opt.Ctx.Err() != nil {
				return Cancelled
			}
		}
		// Leaving row: most negative basic value.
		leave := -1
		worst := -warmFeasTol
		for i, v := range s.xb {
			if v < worst {
				worst = v
				leave = i
			}
		}
		if leave < 0 {
			return Optimal
		}
		s.dualInto(cost, y)
		lrow := s.binv[leave*m : (leave+1)*m]

		// Entering column: dual ratio test over α_j = (B⁻¹A)_{leave,j} < 0,
		// minimising rc_j / −α_j; ties prefer the larger |α| pivot.
		enter := -1
		bestRatio := math.Inf(1)
		bestAlpha := 0.0
		colPtr, colRows, colVals := s.mat.colPtr, s.mat.rows, s.mat.vals
		for j := 0; j < s.n; j++ {
			if s.inBase[j] || (banned != nil && banned[j]) {
				continue
			}
			lo, hi := colPtr[j], colPtr[j+1]
			rows, vals := colRows[lo:hi], colVals[lo:hi]
			alpha := dotRange(lrow, rows, vals)
			if alpha >= -1e-9 {
				continue
			}
			rc := cost[j] - dotRange(y, rows, vals)
			if rc < -rcTol {
				// The restored basis is not dual feasible after all
				// (objective must have changed too): dual pivoting would
				// be unsound, let the caller go cold.
				return Infeasible
			}
			if rc < 0 {
				rc = 0
			}
			ratio := rc / -alpha
			if ratio < bestRatio-1e-12 || (ratio <= bestRatio+1e-12 && -alpha > -bestAlpha) {
				bestRatio = ratio
				bestAlpha = alpha
				enter = j
			}
		}
		if enter < 0 {
			// No entering column: the row is unsatisfiable at this basis —
			// under a changed RHS that usually signals a genuinely
			// infeasible perturbation; the cold path will decide.
			return Infeasible
		}
		s.directionInto(enter, dir)
		s.pivot(enter, leave, dir)
	}
	return IterationLimit
}

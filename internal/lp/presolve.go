package lp

import (
	"math"
	"sort"
)

// Presolve tolerances. Reductions are only applied when they are safe at
// the solver's own feasibility tolerance: a borderline row (one whose
// redundancy or inconsistency is within presolveTol of the boundary) is
// passed through untouched and left for the simplex/IPM to adjudicate,
// so presolve can narrow the problem but never flip its outcome.
const presolveTol = 1e-9

// PresolveStats reports how much of the problem the presolve pass
// removed. Ratios are with respect to the original problem.
type PresolveStats struct {
	Rows, Cols, Nnz                      int // original problem size
	RowsRemoved, ColsRemoved, NnzRemoved int
}

// rowFate says how the dual of an original row is recovered after the
// reduced problem is solved.
type rowFate int8

const (
	rowKept   rowFate = iota // dual comes from the reduced solution
	rowZero                  // row proved redundant; dual 0 is optimal
	rowReplay                // singleton-EQ elimination; dual reconstructed
)

// elimRec records one fixed-variable elimination (a singleton equality
// row a·x_j = rhs fixing x_j = rhs/a) for the postsolve replay.
type elimRec struct {
	row int     // original row index
	col int     // original variable index
	val float64 // fixed value of the variable
}

// Presolved is the outcome of Presolve: a reduced problem plus the map
// that restores a full solution. When the pass finds nothing to remove,
// Reduced returns the original *Problem pointer and Postsolve is the
// identity, so presolve is bit-exact on irreducible instances — the
// served mechanisms and their digests cannot change.
type Presolved struct {
	orig       *Problem
	red        *Problem
	infeasible bool
	changed    bool

	offset  float64   // objective constant from fixed variables
	fixed   []bool    // per original variable
	fixVal  []float64 // value of each fixed variable
	colMap  []int32   // reduced column -> original column
	rowMap  []int32   // reduced row -> original row
	rowFate []rowFate // per original row
	elims   []elimRec // in elimination order

	stats PresolveStats
}

// Infeasible reports that presolve proved the problem infeasible (a row
// inconsistent on its own, beyond the solver tolerance). The reduced
// problem is meaningless in that case.
func (ps *Presolved) Infeasible() bool { return ps.infeasible }

// Reduced returns the problem to hand to the solver. It is the original
// problem itself (same pointer) when no reduction applied.
func (ps *Presolved) Reduced() *Problem { return ps.red }

// DidReduce reports whether any reduction applied.
func (ps *Presolved) DidReduce() bool { return ps.changed }

// Stats returns the reduction counters.
func (ps *Presolved) Stats() PresolveStats { return ps.stats }

// TrivialSolution returns the full solution directly when the reduced
// problem has no constraints left (so min c·x with x ≥ 0 is solved by
// inspection), and ok=false otherwise. The eliminations that emptied the
// row set each verified their own consistency, so the original problem
// is feasible; a remaining negative cost therefore certifies Unbounded.
func (ps *Presolved) TrivialSolution() (*Solution, bool) {
	if ps.infeasible || !ps.changed || ps.red.NumConstraints() != 0 {
		return nil, false
	}
	for _, c := range ps.red.objective {
		if c < 0 {
			return &Solution{Status: Unbounded}, true
		}
	}
	zero := &Solution{
		Status: Optimal,
		X:      make([]float64, ps.red.numVars),
		Duals:  []float64{},
	}
	return ps.Postsolve(zero), true
}

// Postsolve lifts a solution of the reduced problem back to the original
// problem: fixed variables get their values, eliminated singleton-EQ
// rows get duals reconstructed from dual stationarity of their fixed
// column (c_j − Σ_r y_r a_rj = 0, solved for the eliminated row's y and
// replayed in reverse elimination order so every other dual in the sum
// is already known), and redundant rows keep the dual 0 that certified
// their redundancy. Non-optimal statuses pass through unchanged. When
// presolve found no reduction, sol is returned as-is.
func (ps *Presolved) Postsolve(sol *Solution) *Solution {
	if !ps.changed {
		return sol
	}
	if sol.Status != Optimal {
		return &Solution{Status: sol.Status, Iterations: sol.Iterations}
	}
	full := &Solution{
		Status:     Optimal,
		Objective:  sol.Objective + ps.offset,
		X:          make([]float64, ps.orig.numVars),
		Duals:      make([]float64, len(ps.orig.constraints)),
		Iterations: sol.Iterations,
	}
	for rj, oj := range ps.colMap {
		full.X[oj] = sol.X[rj]
	}
	for j, ok := range ps.fixed {
		if ok {
			full.X[j] = ps.fixVal[j]
		}
	}
	for ri, oi := range ps.rowMap {
		full.Duals[oi] = sol.Duals[ri]
	}
	// rowZero rows stay at 0. Replay the eliminations newest-first: a row
	// containing an eliminated variable is either the eliminating row
	// itself, a surviving row, a redundant row, or a row eliminated
	// *later* (an earlier singleton could not have contained a variable
	// that was still free), so reverse order visits every needed dual
	// after it is known.
	if len(ps.elims) > 0 {
		cols := ps.origColumns()
		for t := len(ps.elims) - 1; t >= 0; t-- {
			e := ps.elims[t]
			num := ps.orig.objective[e.col]
			var diag float64
			for _, ent := range cols[e.col] {
				if int(ent.Var) == e.row {
					diag = ent.Coef
					continue
				}
				num -= full.Duals[ent.Var] * ent.Coef
			}
			full.Duals[e.row] = num / diag
		}
	}
	return full
}

// origColumns builds, for every variable that appears in an elimination
// record, its column of the ORIGINAL constraint matrix (duplicate terms
// summed) as (row, coef) pairs. Dual stationarity is a statement about
// the original data, not the partially reduced rows.
func (ps *Presolved) origColumns() map[int][]Term {
	need := make(map[int][]Term, len(ps.elims))
	for _, e := range ps.elims {
		need[e.col] = nil
	}
	for ri, row := range ps.orig.constraints {
		for _, t := range row.Terms {
			if lst, ok := need[t.Var]; ok {
				n := len(lst)
				if n > 0 && lst[n-1].Var == ri {
					lst[n-1].Coef += t.Coef
				} else {
					lst = append(lst, Term{Var: ri, Coef: t.Coef})
				}
				need[t.Var] = lst
			}
		}
	}
	return need
}

// presRow is a mutable working copy of one constraint: terms are
// deduplicated (repeated Var summed), zero coefficients dropped, and
// sorted by variable.
type presRow struct {
	terms []Term
	op    Op
	rhs   float64
	alive bool
}

// Presolve runs a fixpoint of safe reductions over the problem:
//
//   - empty rows are dropped when trivially satisfied (or prove the
//     problem infeasible when violated beyond tolerance),
//   - singleton equality rows fix their variable, which is substituted
//     out of every other row and the objective,
//   - singleton inequality rows that every x ≥ 0 satisfies are dropped,
//     and the upper bounds the kept ones imply are recorded,
//   - rows whose worst-case activity under those bounds cannot violate
//     them are dropped (bound-tightening redundancy),
//   - duplicate rows (bitwise-identical coefficients) collapse to the
//     tighter copy,
//   - empty columns with non-negative cost are fixed at 0, and duplicate
//     columns (bitwise-identical entries) fix the costlier copy at 0.
//
// Every reduction preserves at least one optimal solution and admits an
// exactly reconstructible optimal dual, so Postsolve returns a solution
// of the original problem that is optimal to the solver's tolerance.
// Reductions near a tolerance boundary are skipped rather than guessed.
func Presolve(p *Problem) *Presolved {
	m := len(p.constraints)
	n := p.numVars
	ps := &Presolved{
		orig:    p,
		red:     p,
		fixed:   make([]bool, n),
		fixVal:  make([]float64, n),
		rowFate: make([]rowFate, m),
	}

	rows := make([]presRow, m)
	origNnz := 0
	for _, c := range p.constraints {
		origNnz += len(c.Terms)
	}
	// One backing array for every row's working copy: presolve only ever
	// shrinks a row in place, so the rows can share storage (each slice
	// is capacity-clamped to its own region).
	backing := make([]Term, 0, origNnz)
	for i, c := range p.constraints {
		start := len(backing)
		backing = append(backing, c.Terms...)
		terms := backing[start:len(backing):len(backing)]
		// Fast path: strictly increasing variables means sorted, no
		// duplicates and (checked below) usually no zeros — the common
		// shape for solver-built rows, handled without sorting.
		clean := true
		for k := range terms {
			if terms[k].Coef == 0 || (k > 0 && terms[k].Var <= terms[k-1].Var) {
				clean = false
				break
			}
		}
		if !clean {
			sort.Slice(terms, func(a, b int) bool { return terms[a].Var < terms[b].Var })
			dst := terms[:0]
			for _, t := range terms {
				if len(dst) > 0 && dst[len(dst)-1].Var == t.Var {
					dst[len(dst)-1].Coef += t.Coef
				} else {
					dst = append(dst, t)
				}
			}
			kept := dst[:0]
			for _, t := range dst {
				if t.Coef != 0 {
					kept = append(kept, t)
				}
			}
			terms = kept
		}
		rows[i] = presRow{terms: terms, op: c.Op, rhs: c.RHS, alive: true}
	}
	ps.stats = PresolveStats{Rows: m, Cols: n, Nnz: origNnz}

	colAlive := make([]bool, n)
	for j := range colAlive {
		colAlive[j] = true
	}
	// Upper bounds implied by kept singleton inequality rows (math.Inf
	// when none). Bounds only come from rows the reduced problem keeps,
	// so redundancy proved against them survives the reduction.
	ub := make([]float64, n)
	for j := range ub {
		ub[j] = math.Inf(1)
	}

	// fix eliminates variable j at value v: the objective absorbs c_j·v
	// and every remaining row absorbs a_rj·v into its right-hand side.
	fix := func(j int, v float64, elimRow int) {
		colAlive[j] = false
		ps.fixed[j] = true
		ps.fixVal[j] = v
		ps.offset += p.objective[j] * v
		if elimRow >= 0 {
			ps.elims = append(ps.elims, elimRec{row: elimRow, col: j, val: v})
		}
		for ri := range rows {
			r := &rows[ri]
			if !r.alive {
				continue
			}
			for ti, t := range r.terms {
				if t.Var == j {
					r.rhs -= t.Coef * v
					r.terms = append(r.terms[:ti], r.terms[ti+1:]...)
					break
				}
			}
		}
	}

	changed := true
	for changed {
		changed = false

		// Bound sweep: collect every upper bound the current singleton
		// inequality rows imply before any redundancy check runs, so a
		// bound discovered late in the row order still serves checks on
		// earlier rows within the same pass.
		for ri := range rows {
			r := &rows[ri]
			if !r.alive || len(r.terms) != 1 {
				continue
			}
			t := r.terms[0]
			if (r.op == LE && t.Coef > 0) || (r.op == GE && t.Coef < 0) {
				if bnd := r.rhs / t.Coef; bnd < ub[t.Var] {
					ub[t.Var] = bnd
				}
			}
		}

		// Row rules: empty, singleton, bound-redundant.
		for ri := range rows {
			r := &rows[ri]
			if !r.alive {
				continue
			}
			switch len(r.terms) {
			case 0:
				var violated bool
				switch r.op {
				case LE:
					violated = r.rhs < -presolveTol
				case GE:
					violated = r.rhs > presolveTol
				case EQ:
					violated = math.Abs(r.rhs) > presolveTol
				}
				if violated {
					ps.infeasible = true
					return ps
				}
				r.alive = false
				ps.rowFate[ri] = rowZero
				changed = true
			case 1:
				t := r.terms[0]
				bnd := r.rhs / t.Coef
				switch {
				case r.op == EQ:
					if bnd < -presolveTol {
						ps.infeasible = true
						return ps
					}
					if bnd < 0 {
						continue // borderline: let the solver decide
					}
					r.alive = false
					ps.rowFate[ri] = rowReplay
					fix(t.Var, bnd, ri)
					changed = true
				case (r.op == LE && t.Coef > 0) || (r.op == GE && t.Coef < 0):
					// x_j ≤ bnd: an upper bound (recorded by the sweep above).
					if bnd < -presolveTol {
						ps.infeasible = true
						return ps
					}
				default:
					// x_j ≥ bnd: redundant against x ≥ 0 when bnd ≤ 0.
					if bnd <= 0 {
						r.alive = false
						ps.rowFate[ri] = rowZero
						changed = true
					}
				}
			default:
				// Bound-tightening redundancy: compare the row's extreme
				// activity over {0 ≤ x ≤ ub} to its right-hand side.
				// Singletons are skipped — they are the bound providers.
				if r.op == EQ {
					continue
				}
				ext := 0.0
				provable := true
				for _, t := range r.terms {
					worst := t.Coef > 0
					if r.op == GE {
						worst = !worst
					}
					if worst {
						// This variable pushes toward violation; it needs a
						// finite bound for the proof to close.
						u := ub[t.Var]
						if math.IsInf(u, 1) {
							provable = false
							break
						}
						ext += t.Coef * u
					}
				}
				if !provable {
					continue
				}
				if (r.op == LE && ext <= r.rhs) || (r.op == GE && ext >= r.rhs) {
					r.alive = false
					ps.rowFate[ri] = rowZero
					changed = true
				}
			}
		}

		// Duplicate rows: bitwise-identical supports collapse to the
		// tighter copy; the dropped copy's dual-0 stays optimal because
		// the kept copy is at least as binding. Equality duplicates only
		// collapse on a bitwise-equal right-hand side — a float mismatch
		// is left for the solver, never declared infeasible here.
		// Candidates are found by a 64-bit content hash and confirmed by
		// an exact term-by-term comparison, so no byte keys are built; a
		// true hash collision merely hides a reduction, never applies a
		// wrong one.
		seen := make(map[uint64]int, m)
		for ri := range rows {
			r := &rows[ri]
			if !r.alive || len(r.terms) == 0 {
				continue
			}
			h := rowHash(r)
			prev, dup := seen[h]
			if !dup {
				seen[h] = ri
				continue
			}
			pr := &rows[prev]
			if !sameSupport(pr, r) {
				continue
			}
			// The survivor must be the copy whose own right-hand side is
			// the tight one: its dual comes from the reduced solve, and
			// complementary slackness only holds on the row that binds.
			// The looser copy is slack at any feasible point, so dual 0
			// is exact for it.
			switch r.op {
			case EQ:
				if math.Float64bits(pr.rhs) == math.Float64bits(r.rhs) {
					r.alive = false
					ps.rowFate[ri] = rowZero
					changed = true
				}
			case LE, GE:
				loser := r
				loserIdx := ri
				if (r.op == LE && r.rhs < pr.rhs) || (r.op == GE && r.rhs > pr.rhs) {
					loser, loserIdx = pr, prev
					seen[h] = ri
				}
				loser.alive = false
				ps.rowFate[loserIdx] = rowZero
				changed = true
			}
		}

		// Column rules: empty columns with non-negative cost fix at 0
		// (negative-cost empty columns stay — the solver proves Unbounded
		// only after establishing feasibility); duplicate columns fix the
		// costlier copy at 0 (mass shifts to the cheaper twin without
		// changing any row activity, and its reduced cost stays ≥ the
		// twin's, so dual feasibility survives).
		occ := make([]int, n)
		for ri := range rows {
			if !rows[ri].alive {
				continue
			}
			for _, t := range rows[ri].terms {
				occ[t.Var]++
			}
		}
		for j := 0; j < n; j++ {
			if colAlive[j] && occ[j] == 0 && p.objective[j] >= 0 {
				fix(j, 0, -1)
				changed = true
			}
		}
		// Duplicate columns are likewise hash-detected (the per-column
		// hash folds in (row, coefbits) in row order, identical for true
		// twins) and confirmed by comparing the two columns' entries
		// across every alive row before anything is fixed.
		colSeen := make(map[uint64]int, n)
		colHash := buildColHashes(rows, colAlive, n)
		for j := 0; j < n; j++ {
			if !colAlive[j] || occ[j] == 0 {
				continue
			}
			prev, dup := colSeen[colHash[j]]
			if !dup {
				colSeen[colHash[j]] = j
				continue
			}
			if !sameColumn(rows, prev, j) {
				continue
			}
			drop := j
			if p.objective[j] < p.objective[prev] {
				drop = prev
				colSeen[colHash[j]] = j
			}
			fix(drop, 0, -1)
			changed = true
		}

		if changed {
			ps.changed = true
		}
	}

	if !ps.changed {
		return ps
	}

	// Assemble the reduced problem.
	redNnz := 0
	for j := 0; j < n; j++ {
		if colAlive[j] {
			ps.colMap = append(ps.colMap, int32(j))
		}
	}
	for ri := range rows {
		if rows[ri].alive {
			ps.rowMap = append(ps.rowMap, int32(ri))
			redNnz += len(rows[ri].terms)
		}
	}
	ps.stats.RowsRemoved = m - len(ps.rowMap)
	ps.stats.ColsRemoved = n - len(ps.colMap)
	ps.stats.NnzRemoved = origNnz - redNnz

	if len(ps.colMap) == 0 {
		// Every variable fixed: all rows must have emptied out too (a
		// surviving row with no alive variables is an empty row, handled
		// above), so the trivial path owns the answer.
		ps.red = NewProblem(1) // placeholder; NumConstraints()==0 routes to TrivialSolution
		return ps
	}
	inv := make([]int32, n)
	for rj, oj := range ps.colMap {
		inv[oj] = int32(rj)
	}
	red := NewProblem(len(ps.colMap))
	for rj, oj := range ps.colMap {
		red.objective[rj] = p.objective[oj]
	}
	terms := make([]Term, 0, 16)
	for _, oi := range ps.rowMap {
		r := &rows[oi]
		terms = terms[:0]
		for _, t := range r.terms {
			terms = append(terms, Term{Var: int(inv[t.Var]), Coef: t.Coef})
		}
		red.AddConstraint(terms, r.op, r.rhs)
	}
	ps.red = red
	return ps
}

// solvePresolved runs Presolve and, when the pass reduced the problem,
// solves the reduction with inner (Solve or SolveIPM recursing with
// NoPresolve set) and lifts the result through Postsolve. done=false
// means presolve found nothing to remove and the caller should solve the
// original problem itself — the bit-exact pass-through path.
func solvePresolved(p *Problem, opts Options, inner func(*Problem, Options) (*Solution, error)) (sol *Solution, done bool, err error) {
	ps := Presolve(p)
	if ps.Infeasible() {
		return &Solution{Status: Infeasible}, true, nil
	}
	if !ps.DidReduce() {
		return nil, false, nil
	}
	if triv, ok := ps.TrivialSolution(); ok {
		return triv, true, nil
	}
	opts.NoPresolve = true
	red, err := inner(ps.Reduced(), opts)
	if err != nil {
		return nil, true, err
	}
	return ps.Postsolve(red), true, nil
}

// mix64 folds one 64-bit word into an FNV-style running hash. Order
// sensitive, which is what both dup detectors need: rows keep terms
// sorted by variable and columns are visited in row order, so true
// duplicates see identical word streams.
func mix64(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	h ^= h >> 29
	return h
}

const hashSeed = 14695981039346656037

// rowHash hashes a row's support: op then (var, coefbits) pairs. Hash
// hits are confirmed with sameSupport before any collapse.
func rowHash(r *presRow) uint64 {
	h := mix64(hashSeed, uint64(r.op))
	for _, t := range r.terms {
		h = mix64(h, uint64(t.Var))
		h = mix64(h, math.Float64bits(t.Coef))
	}
	return h
}

// sameSupport reports bitwise-identical operator and coefficient rows.
func sameSupport(a, b *presRow) bool {
	if a.op != b.op || len(a.terms) != len(b.terms) {
		return false
	}
	for i, t := range a.terms {
		if b.terms[i].Var != t.Var || math.Float64bits(b.terms[i].Coef) != math.Float64bits(t.Coef) {
			return false
		}
	}
	return true
}

// buildColHashes hashes each alive column's (row, coefbits) entries for
// duplicate-column detection. Hash hits are confirmed with sameColumn.
func buildColHashes(rows []presRow, colAlive []bool, n int) []uint64 {
	hs := make([]uint64, n)
	for j := range hs {
		hs[j] = hashSeed
	}
	for ri := range rows {
		if !rows[ri].alive {
			continue
		}
		for _, t := range rows[ri].terms {
			if !colAlive[t.Var] {
				continue
			}
			hs[t.Var] = mix64(mix64(hs[t.Var], uint64(ri)), math.Float64bits(t.Coef))
		}
	}
	return hs
}

// sameColumn confirms that variables a and b have bitwise-identical
// coefficients in every alive row. Row terms stay sorted by variable
// throughout presolve, so each lookup is a binary search.
func sameColumn(rows []presRow, a, b int) bool {
	for ri := range rows {
		r := &rows[ri]
		if !r.alive {
			continue
		}
		ca, oka := findCoef(r.terms, a)
		cb, okb := findCoef(r.terms, b)
		if oka != okb {
			return false
		}
		if oka && math.Float64bits(ca) != math.Float64bits(cb) {
			return false
		}
	}
	return true
}

func findCoef(terms []Term, v int) (float64, bool) {
	lo, hi := 0, len(terms)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if terms[mid].Var < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(terms) && terms[lo].Var == v {
		return terms[lo].Coef, true
	}
	return 0, false
}

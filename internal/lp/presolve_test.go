package lp

import (
	"math"
	"testing"
)

// xorshift64 is the deterministic generator used by the presolve
// property tests.
type xorshift64 uint64

func (r *xorshift64) next() float64 {
	v := uint64(*r)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*r = xorshift64(v)
	return float64(v%(1<<20)) / (1 << 20)
}

func TestPresolveNoReductionAliases(t *testing.T) {
	// The CG master shape: no singletons, no empty rows or columns, no
	// duplicates — presolve must return the identical *Problem.
	p := NewProblem(4)
	p.SetObjective([]float64{1, 2, 0.5, 3})
	p.AddConstraint([]Term{{0, 1}, {1, 1}, {2, 0.5}}, EQ, 1)
	p.AddConstraint([]Term{{1, -1}, {2, 1}, {3, 2}}, EQ, 1)
	ps := Presolve(p)
	if ps.DidReduce() || ps.Infeasible() {
		t.Fatalf("unexpected reduction: %+v", ps.Stats())
	}
	if ps.Reduced() != p {
		t.Fatal("irreducible problem must alias the original")
	}
	sol := &Solution{Status: Optimal, X: []float64{1, 2, 3, 4}}
	if ps.Postsolve(sol) != sol {
		t.Fatal("postsolve must be the identity without reductions")
	}
}

func TestPresolveSingletonEQFixes(t *testing.T) {
	// min x0 + x1  s.t.  2·x1 = 4,  x0 + x1 ≥ 3.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]Term{{1, 2}}, EQ, 4)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 3)
	ps := Presolve(p)
	if !ps.DidReduce() {
		t.Fatal("singleton equality not eliminated")
	}
	st := ps.Stats()
	if st.RowsRemoved != 1 || st.ColsRemoved != 1 {
		t.Fatalf("stats = %+v, want 1 row and 1 col removed", st)
	}
	red := ps.Reduced()
	if red.NumVars() != 1 || red.NumConstraints() != 1 {
		t.Fatalf("reduced shape %dx%d, want 1x1", red.NumConstraints(), red.NumVars())
	}
	// Reduced row must be x0 ≥ 1 (rhs absorbed the fixed x1 = 2).
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", sol, err)
	}
	if math.Abs(sol.Objective-3) > 1e-9 {
		t.Fatalf("objective %v, want 3", sol.Objective)
	}
	if math.Abs(sol.X[1]-2) > 1e-12 || math.Abs(sol.X[0]-1) > 1e-9 {
		t.Fatalf("X = %v, want [1 2]", sol.X)
	}
	// Dual stationarity of the fixed column: c_1 − y·A_1 = 0.
	rc := 1.0 - 2*sol.Duals[0] - sol.Duals[1]
	if math.Abs(rc) > 1e-9 {
		t.Fatalf("reconstructed dual violates stationarity: rc = %v (duals %v)", rc, sol.Duals)
	}
}

func TestPresolveInfeasibleSingleton(t *testing.T) {
	p := NewProblem(2)
	p.AddConstraint([]Term{{0, 1}}, EQ, -1) // x0 = −1 with x ≥ 0
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 5)
	ps := Presolve(p)
	if !ps.Infeasible() {
		t.Fatal("x0 = -1 not detected as infeasible")
	}
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != Infeasible {
		t.Fatalf("Solve = %v, %v; want Infeasible", sol, err)
	}
}

func TestPresolveRedundantAndDuplicateRows(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 1)  // duplicate, looser
	p.AddConstraint([]Term{{0, 1}}, GE, -3)         // redundant vs x ≥ 0
	p.AddConstraint([]Term{{0, -2}}, LE, 1)         // redundant vs x ≥ 0
	p.AddConstraint(nil, LE, 0)                     // empty, satisfied
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 10) // kept
	ps := Presolve(p)
	if !ps.DidReduce() {
		t.Fatal("no reduction found")
	}
	if got := ps.Stats().RowsRemoved; got != 4 {
		t.Fatalf("rows removed = %d, want 4", got)
	}
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("solve through presolve: %+v, %v; want objective 2", sol, err)
	}
	// Dropped rows carry the dual 0 that certifies their redundancy.
	for _, i := range []int{1, 2, 3, 4} {
		if sol.Duals[i] != 0 {
			t.Fatalf("dual of dropped row %d = %v, want 0", i, sol.Duals[i])
		}
	}
}

func TestPresolveBoundRedundantRow(t *testing.T) {
	// x0 ≤ 1 and x1 ≤ 1 imply x0 + x1 ≤ 3.
	p := NewProblem(2)
	p.SetObjective([]float64{-1, -2})
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{1, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 3)
	ps := Presolve(p)
	if got := ps.Stats().RowsRemoved; got != 1 {
		t.Fatalf("rows removed = %d, want the implied row only", got)
	}
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != Optimal || math.Abs(sol.Objective+3) > 1e-9 {
		t.Fatalf("solve: %+v, %v; want objective -3", sol, err)
	}
}

func TestPresolveEmptyAndDuplicateColumns(t *testing.T) {
	// x2 appears in no row (cost ≥ 0 → fixed at 0); x3 duplicates x0
	// with a higher cost (fixed at 0, mass shifts to x0).
	p := NewProblem(4)
	p.SetObjective([]float64{1, 1, 2, 5})
	p.AddConstraint([]Term{{0, 1}, {1, 1}, {3, 1}}, GE, 2)
	p.AddConstraint([]Term{{0, 2}, {1, -1}, {3, 2}}, LE, 8)
	ps := Presolve(p)
	if got := ps.Stats().ColsRemoved; got != 2 {
		t.Fatalf("cols removed = %d, want 2 (empty + duplicate)", got)
	}
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("solve: %+v, %v; want objective 2", sol, err)
	}
	if sol.X[2] != 0 || sol.X[3] != 0 {
		t.Fatalf("fixed columns nonzero: %v", sol.X)
	}
}

func TestPresolveUnboundedTrivial(t *testing.T) {
	// The only row fixes x0; x1 is then an empty column with negative
	// cost on a feasible problem — certified Unbounded without a solve.
	p := NewProblem(2)
	p.SetObjective([]float64{1, -1})
	p.AddConstraint([]Term{{0, 1}}, EQ, 2)
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != Unbounded {
		t.Fatalf("Solve = %+v, %v; want Unbounded", sol, err)
	}
}

// geoIInstance builds a randomized pricing-shaped Geo-I LP: K variables
// z with pair rows z_a − f·z_b ≤ 0 (f = e^{εd} ≥ 1) along a random path
// structure, unit-box rows z_i ≤ 1, a random objective, and — to give
// presolve something to do — injected singleton equalities, duplicate
// and redundant rows, and an empty column.
func geoIInstance(rng *xorshift64, k int) *Problem {
	p := NewProblem(k + 1) // +1: an empty column
	for i := 0; i < k; i++ {
		p.SetObjectiveCoeff(i, 2*rng.next()-1)
	}
	p.SetObjectiveCoeff(k, 0.5+rng.next())
	for i := 0; i+1 < k; i++ {
		f := math.Exp(0.4 + rng.next())
		p.AddConstraint([]Term{{i, 1}, {i + 1, -f}}, LE, 0)
		p.AddConstraint([]Term{{i + 1, 1}, {i, -f}}, LE, 0)
	}
	for i := 0; i < k; i++ {
		p.AddConstraint([]Term{{i, 1}}, LE, 1)
	}
	// A mass row keeps the minimum bounded even with negative costs.
	terms := make([]Term, k)
	for i := range terms {
		terms[i] = Term{Var: i, Coef: 1}
	}
	p.AddConstraint(terms, GE, 0.5)
	// Reducible decorations.
	j := int(rng.next() * float64(k))
	p.AddConstraint([]Term{{j, 2}}, EQ, 2*0.5) // fixes z_j = 0.5
	p.AddConstraint([]Term{{j, 1}}, GE, -1)    // redundant
	p.AddConstraint(terms, GE, 0.5)            // duplicate of the mass row
	return p
}

// TestPresolvePostsolveRoundTrip is the presolve correctness property:
// on randomized Geo-I instances, solving through presolve+postsolve must
// match the direct solve to 1e-9 on the objective, produce a feasible
// primal, and reconstruct duals that satisfy stationarity (dual
// objective equal to primal) and dual feasibility.
func TestPresolvePostsolveRoundTrip(t *testing.T) {
	rng := xorshift64(0x9e3779b97f4a7c15)
	for trial := 0; trial < 40; trial++ {
		k := 3 + int(rng.next()*6)
		p := geoIInstance(&rng, k)

		direct, err := Solve(p, Options{NoPresolve: true})
		if err != nil {
			t.Fatalf("trial %d: direct solve: %v", trial, err)
		}
		via, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: presolve solve: %v", trial, err)
		}
		if via.Status != direct.Status {
			t.Fatalf("trial %d: status %v via presolve, %v direct\n%s",
				trial, via.Status, direct.Status, p.DebugString())
		}
		if direct.Status != Optimal {
			continue
		}
		if d := math.Abs(via.Objective - direct.Objective); d > 1e-9*(1+math.Abs(direct.Objective)) {
			t.Fatalf("trial %d: objective %v via presolve, %v direct (diff %g)",
				trial, via.Objective, direct.Objective, d)
		}
		if v := p.Violation(via.X); v > 1e-6 {
			t.Fatalf("trial %d: postsolved primal violates by %g", trial, v)
		}
		// Strong duality through the postsolve map: y·b == c·x.
		dualObj := 0.0
		for i := 0; i < p.NumConstraints(); i++ {
			dualObj += via.Duals[i] * rowRHS(p, i)
		}
		if d := math.Abs(dualObj - via.Objective); d > 1e-6*(1+math.Abs(via.Objective)) {
			t.Fatalf("trial %d: dual objective %v vs primal %v", trial, dualObj, via.Objective)
		}
		// Dual feasibility: every column's reduced cost ≥ −tol, with the
		// right sign restriction per row type already folded into y.
		rc := reducedCosts(p, via.Duals)
		for j, v := range rc {
			if v < -1e-6 {
				t.Fatalf("trial %d: column %d reduced cost %g < 0 (duals %v)", trial, j, v, via.Duals)
			}
		}
	}
}

func rowRHS(p *Problem, i int) float64 { return p.constraints[i].RHS }

func reducedCosts(p *Problem, y []float64) []float64 {
	rc := append([]float64(nil), p.objective...)
	for i, c := range p.constraints {
		for _, t := range c.Terms {
			rc[t.Var] -= y[i] * t.Coef
		}
	}
	return rc
}

// TestSparsePricingSweepAllocs guards the sparse pricing path: once a
// Prepared instance on the pricing-shaped dual LP is warm, retuning the
// right-hand sides and re-solving (the per-round CG pricing pattern,
// which runs the CSR pricing sweep every pivot) must stay allocation-
// free in steady state.
func TestSparsePricingSweepAllocs(t *testing.T) {
	rng := xorshift64(0x94d049bb133111eb)
	k := 8
	p := geoIInstance(&rng, k)
	pp, err := Prepare(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Solve(); err != nil {
		t.Fatal(err)
	}
	basis := pp.Basis(nil)
	if _, err := pp.SolveFrom(basis); err != nil {
		t.Fatal(err)
	}
	basis = pp.Basis(basis)
	step := 0
	allocs := testing.AllocsPerRun(20, func() {
		step++
		pp.SetRHS(2*(k-1), 0.9+0.01*float64(step%5))
		if _, err := pp.SolveFrom(basis); err != nil {
			t.Fatal(err)
		}
		basis = pp.Basis(basis)
	})
	if allocs > 2 {
		t.Fatalf("sparse pricing re-solve allocates %v objects per run, want ≤ 2", allocs)
	}
}

// TestPresolveIPMMatchesSimplex exercises the SolveIPM presolve wiring
// on a reducible instance.
func TestPresolveIPMMatchesSimplex(t *testing.T) {
	rng := xorshift64(0x6a09e667f3bcc909)
	p := geoIInstance(&rng, 6)
	sx, err := Solve(p, Options{NoPresolve: true})
	if err != nil || sx.Status != Optimal {
		t.Fatalf("simplex: %+v, %v", sx, err)
	}
	ipm, err := SolveIPM(p, Options{})
	if err != nil || ipm.Status != Optimal {
		t.Fatalf("IPM through presolve: %+v, %v", ipm, err)
	}
	if d := math.Abs(sx.Objective - ipm.Objective); d > 1e-6*(1+math.Abs(sx.Objective)) {
		t.Fatalf("objectives differ: simplex %v, IPM %v", sx.Objective, ipm.Objective)
	}
}

package lp

import "math"

// csc is a compressed-sparse-column constraint matrix: one shared pool
// of row indices and values, with colPtr[j]..colPtr[j+1] delimiting
// column j. Compared to a slice-of-slices layout this stores the whole
// matrix in three allocations, keeps columns adjacent in memory (the
// pricing and normal-equations kernels stream through all columns every
// pass), and makes appending a column at the tail — the only growth
// operation column generation needs — a pair of amortised appends.
//
// Invariant: within each column, row indices are strictly ascending.
// Every builder below merges duplicate (row, col) entries to maintain
// it; formNormal and the contiguous-run detection depend on it.
type csc struct {
	colPtr []int32
	rows   []int32
	vals   []float64
}

// numCols returns the number of columns.
func (a *csc) numCols() int { return len(a.colPtr) - 1 }

// nnz returns the number of stored entries.
func (a *csc) nnz() int { return len(a.rows) }

// col returns column j's row indices and values as subslices of the
// pool. The slices stay valid until the next appendCol/appendUnitCol.
func (a *csc) col(j int) ([]int32, []float64) {
	lo, hi := a.colPtr[j], a.colPtr[j+1]
	return a.rows[lo:hi], a.vals[lo:hi]
}

// appendUnitCol appends a single-entry column (slack, surplus or
// artificial), returning its index.
func (a *csc) appendUnitCol(row int32, val float64) int {
	j := a.numCols()
	a.rows = append(a.rows, row)
	a.vals = append(a.vals, val)
	a.colPtr = append(a.colPtr, int32(len(a.rows)))
	return j
}

// appendCol appends a column whose entries are already in ascending row
// order with no duplicates, returning its index.
func (a *csc) appendCol(rows []int32, vals []float64) int {
	j := a.numCols()
	a.rows = append(a.rows, rows...)
	a.vals = append(a.vals, vals...)
	a.colPtr = append(a.colPtr, int32(len(a.rows)))
	return j
}

// newCSCBuilder starts a builder for a matrix over numVars structural
// columns; extraCap reserves pool headroom for unit columns appended
// after the build (slacks, artificials) so the tail appends do not
// reallocate.
func newCSCBuilder(constraints []Constraint, numVars, extraCap int, rowFactor []float64) csc {
	// Pass 1: count entries per column (duplicates included; merging
	// only shrinks columns, compacted below).
	counts := make([]int32, numVars+1)
	for _, c := range constraints {
		for _, t := range c.Terms {
			counts[t.Var+1]++
		}
	}
	for j := 0; j < numVars; j++ {
		counts[j+1] += counts[j]
	}
	total := int(counts[numVars])

	a := csc{
		colPtr: counts,
		rows:   make([]int32, total, total+extraCap),
		vals:   make([]float64, total, total+extraCap),
	}

	// Pass 2: fill. Rows are visited in ascending order, so each
	// column's entries land ascending; duplicate (row, col) terms are
	// merged in place. next[j] tracks the fill cursor of column j.
	next := make([]int32, numVars)
	copy(next, a.colPtr[:numVars])
	for i, c := range constraints {
		f := rowFactor[i]
		for _, t := range c.Terms {
			k := next[t.Var]
			if lo := a.colPtr[t.Var]; k > lo && a.rows[k-1] == int32(i) {
				a.vals[k-1] += f * t.Coef
				continue
			}
			a.rows[k] = int32(i)
			a.vals[k] = f * t.Coef
			next[t.Var] = k + 1
		}
	}

	// Pass 3: compact out the gaps merging left behind.
	w := int32(0)
	for j := 0; j < numVars; j++ {
		lo, hi := a.colPtr[j], next[j]
		a.colPtr[j] = w
		for k := lo; k < hi; k++ {
			a.rows[w] = a.rows[k]
			a.vals[w] = a.vals[k]
			w++
		}
	}
	a.colPtr[numVars] = w
	a.rows = a.rows[:w]
	a.vals = a.vals[:w]
	return a
}

// colMaxAbs returns the largest coefficient magnitude in column j.
func (a *csc) colMaxAbs(j int) float64 {
	_, vals := a.col(j)
	maxAbs := 0.0
	for _, v := range vals {
		if x := math.Abs(v); x > maxAbs {
			maxAbs = x
		}
	}
	return maxAbs
}

// scaleCol multiplies every entry of column j by f.
func (a *csc) scaleCol(j int, f float64) {
	_, vals := a.col(j)
	for k := range vals {
		vals[k] *= f
	}
}

// dotRange computes y · col over a column's (rows, vals) entry lists.
func dotRange(y []float64, rows []int32, vals []float64) float64 {
	v := 0.0
	for k, r := range rows {
		v += y[r] * vals[k]
	}
	return v
}

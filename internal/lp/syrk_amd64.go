//go:build amd64

package lp

// syrkDot2x4 computes the eight dot products of rows {wi0, wi1} against
// {w0..w3} over n elements (n ≡ 0 mod 4) into out. AVX2+FMA assembly;
// see syrk_amd64.s.
//
//go:noescape
func syrkDot2x4(wi0, wi1, w0, w1, w2, w3 *float64, n int, out *[8]float64)

func cpuidLP(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbvLP() (eax, edx uint32)

// useSyrkAsm reports whether the CPU supports AVX2 and FMA with
// OS-enabled YMM state. Probed once at init; the pure-Go kernel remains
// the fallback everywhere else. The two paths round differently (the
// vector path sums four interleaved lanes and fuses multiply-adds), so
// low-order result bits can differ between machines that do and do not
// take this path; each path on its own is fully deterministic, and
// every in-process or same-host comparison — warm-vs-cold, presolve
// invariance, checkpoint digests — sees one path only.
var useSyrkAsm = func() bool {
	maxLeaf, _, _, _ := cpuidLP(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuidLP(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	const fma = 1 << 12
	if c&osxsave == 0 || c&avx == 0 || c&fma == 0 {
		return false
	}
	xcr0, _ := xgetbvLP()
	if xcr0&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, b, _, _ := cpuidLP(7, 0)
	const avx2 = 1 << 5
	return b&avx2 != 0
}()

// AVX2+FMA inner kernel for syrkUpperInto: eight simultaneous dot
// products of a 2×4 row block, vectorised four doubles wide. Only used
// when syrk_amd64.go's CPUID probe confirms AVX2, FMA and OS-enabled
// YMM state; every caller falls back to the pure-Go kernel otherwise.

#include "textflag.h"

// func syrkDot2x4(wi0, wi1, w0, w1, w2, w3 *float64, n int, out *[8]float64)
//
// n must be a multiple of 4 (the Go wrapper peels the remainder).
// out receives the eight dot products wi{0,1}·w{0..3}; each sum is the
// four vector-lane partials combined (l0+l2)+(l1+l3), a fixed order, so
// results are deterministic on every machine that takes this path.
TEXT ·syrkDot2x4(SB), NOSPLIT, $0-64
	MOVQ wi0+0(FP), SI
	MOVQ wi1+8(FP), DI
	MOVQ w0+16(FP), R8
	MOVQ w1+24(FP), R9
	MOVQ w2+32(FP), R10
	MOVQ w3+40(FP), R11
	MOVQ n+48(FP), CX
	MOVQ out+56(FP), DX

	VXORPD Y0, Y0, Y0 // wi0·w0
	VXORPD Y1, Y1, Y1 // wi0·w1
	VXORPD Y2, Y2, Y2 // wi0·w2
	VXORPD Y3, Y3, Y3 // wi0·w3
	VXORPD Y4, Y4, Y4 // wi1·w0
	VXORPD Y5, Y5, Y5 // wi1·w1
	VXORPD Y6, Y6, Y6 // wi1·w2
	VXORPD Y7, Y7, Y7 // wi1·w3

	SHRQ $2, CX
	JZ   reduce

loop:
	VMOVUPD (SI), Y8 // wi0[t:t+4]
	VMOVUPD (DI), Y9 // wi1[t:t+4]
	VMOVUPD (R8), Y10
	VFMADD231PD Y10, Y8, Y0
	VFMADD231PD Y10, Y9, Y4
	VMOVUPD (R9), Y11
	VFMADD231PD Y11, Y8, Y1
	VFMADD231PD Y11, Y9, Y5
	VMOVUPD (R10), Y12
	VFMADD231PD Y12, Y8, Y2
	VFMADD231PD Y12, Y9, Y6
	VMOVUPD (R11), Y13
	VFMADD231PD Y13, Y8, Y3
	VFMADD231PD Y13, Y9, Y7
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	DECQ CX
	JNZ  loop

reduce:
	VEXTRACTF128 $1, Y0, X8
	VADDPD X8, X0, X0
	VHADDPD X0, X0, X0
	VMOVSD X0, (DX)
	VEXTRACTF128 $1, Y1, X8
	VADDPD X8, X1, X1
	VHADDPD X1, X1, X1
	VMOVSD X1, 8(DX)
	VEXTRACTF128 $1, Y2, X8
	VADDPD X8, X2, X2
	VHADDPD X2, X2, X2
	VMOVSD X2, 16(DX)
	VEXTRACTF128 $1, Y3, X8
	VADDPD X8, X3, X3
	VHADDPD X3, X3, X3
	VMOVSD X3, 24(DX)
	VEXTRACTF128 $1, Y4, X8
	VADDPD X8, X4, X4
	VHADDPD X4, X4, X4
	VMOVSD X4, 32(DX)
	VEXTRACTF128 $1, Y5, X8
	VADDPD X8, X5, X5
	VHADDPD X5, X5, X5
	VMOVSD X5, 40(DX)
	VEXTRACTF128 $1, Y6, X8
	VADDPD X8, X6, X6
	VHADDPD X6, X6, X6
	VMOVSD X6, 48(DX)
	VEXTRACTF128 $1, Y7, X8
	VADDPD X8, X7, X7
	VHADDPD X7, X7, X7
	VMOVSD X7, 56(DX)
	VZEROUPPER
	RET

// func cpuidLP(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidLP(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvLP() (eax, edx uint32)
TEXT ·xgetbvLP(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

//go:build !amd64

package lp

// Non-amd64 builds always use the pure-Go SYRK kernel.
const useSyrkAsm = false

// syrkDot2x4 is never called when useSyrkAsm is false; this stub only
// satisfies the reference in the shared kernel driver.
func syrkDot2x4(wi0, wi1, w0, w1, w2, w3 *float64, n int, out *[8]float64) {
	panic("lp: syrkDot2x4 without assembly support")
}

package lp

import (
	"math"
	"testing"
)

// syrkRef is the O(L²·G) textbook upper-triangle W·Wᵀ accumulation the
// blocked kernel must reproduce.
func syrkRef(w []float64, l, g int, mmat []float64, r0, m int) {
	for i := 0; i < l; i++ {
		for j := i; j < l; j++ {
			s := 0.0
			for t := 0; t < g; t++ {
				s += w[i*g+t] * w[j*g+t]
			}
			mmat[(r0+i)*m+(r0+j)] += s
		}
	}
}

func TestSyrkUpperIntoMatchesReference(t *testing.T) {
	rng := uint64(0x243f6a8885a308d3)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%2048)/1024 - 1
	}
	for _, tc := range []struct{ l, g, r0, m int }{
		{1, 1, 0, 4},
		{2, 3, 1, 6},
		{5, 7, 0, 8},
		{8, 64, 2, 16},
		{13, 513, 3, 20},  // odd L, G past one cache chunk
		{44, 1027, 7, 96}, // the K44 master shape, unaligned G
	} {
		w := make([]float64, tc.l*tc.g)
		for i := range w {
			w[i] = next()
		}
		got := make([]float64, tc.m*tc.m)
		want := make([]float64, tc.m*tc.m)
		syrkUpperInto(w, tc.l, tc.g, got, tc.r0, tc.m)
		syrkRef(w, tc.l, tc.g, want, tc.r0, tc.m)
		for i := range want {
			// The blocked kernel reassociates the sums (chunked G, vector
			// lanes, fused multiply-adds on machines that have them), so
			// allow rounding-level differences only.
			if d := math.Abs(got[i] - want[i]); d > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("L=%d G=%d r0=%d m=%d: mmat[%d] = %g, want %g (diff %g)",
					tc.l, tc.g, tc.r0, tc.m, i, got[i], want[i], d)
			}
		}
	}
}

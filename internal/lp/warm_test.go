package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomCoveringLP builds a feasible bounded covering LP with mixed
// operators: minimise a positive objective under ≥ rows plus a few box
// rows.
func randomCoveringLP(rng *rand.Rand, nVars, nRows int) *Problem {
	p := NewProblem(nVars)
	for j := 0; j < nVars; j++ {
		p.SetObjectiveCoeff(j, 1+rng.Float64())
	}
	for i := 0; i < nRows; i++ {
		terms := make([]Term, 0, nVars/3)
		for j := 0; j < nVars; j++ {
			if rng.Float64() < 0.25 {
				terms = append(terms, Term{Var: j, Coef: 0.5 + rng.Float64()})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: i % nVars, Coef: 1})
		}
		p.AddConstraint(terms, GE, 1+rng.Float64())
	}
	for j := 0; j < nVars; j += 3 {
		p.AddConstraint([]Term{{Var: j, Coef: 1}}, LE, 5)
	}
	return p
}

func TestPreparedMatchesOneShotSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p := randomCoveringLP(rng, 12+rng.Intn(20), 8+rng.Intn(16))
		want, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: one-shot: %v", trial, err)
		}
		pp, err := Prepare(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: prepare: %v", trial, err)
		}
		got, err := pp.Solve()
		if err != nil {
			t.Fatalf("trial %d: prepared: %v", trial, err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d: status %v vs one-shot %v", trial, got.Status, want.Status)
		}
		if want.Status != Optimal {
			continue
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
			t.Fatalf("trial %d: objective %v vs one-shot %v", trial, got.Objective, want.Objective)
		}
		if v := p.Violation(got.X); v > 1e-6 {
			t.Fatalf("trial %d: prepared solution violates by %g", trial, v)
		}
	}
}

func TestPreparedWarmObjectiveChange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randomCoveringLP(rng, 30, 20)
	pp, err := Prepare(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Solve(); err != nil {
		t.Fatal(err)
	}
	basis := pp.Basis(nil)
	if basis == nil {
		t.Fatal("no basis after optimal solve")
	}

	for trial := 0; trial < 10; trial++ {
		// Drift the objective and warm-restart from the previous basis.
		for j := 0; j < p.NumVars(); j++ {
			c := 1 + rng.Float64()
			p.SetObjectiveCoeff(j, c)
			pp.SetObjectiveCoeff(j, c)
		}
		warm, err := pp.SolveFrom(basis)
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		cold, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		if warm.Status != Optimal || cold.Status != Optimal {
			t.Fatalf("trial %d: status warm %v cold %v", trial, warm.Status, cold.Status)
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: warm objective %v vs cold %v", trial, warm.Objective, cold.Objective)
		}
		basis = pp.Basis(basis)
	}
}

func TestPreparedWarmRHSChange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := randomCoveringLP(rng, 30, 20)
	pp, err := Prepare(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Solve(); err != nil {
		t.Fatal(err)
	}
	basis := pp.Basis(nil)

	rhs := make([]float64, 20)
	for i := range rhs {
		rhs[i] = 1 + rng.Float64()
	}
	for trial := 0; trial < 10; trial++ {
		// Drift the covering rows' right-hand sides (the dual-simplex
		// restart path) and compare against a from-scratch solve.
		cold := NewProblem(p.NumVars())
		for j := 0; j < p.NumVars(); j++ {
			cold.SetObjectiveCoeff(j, p.objective[j])
		}
		for i, c := range p.constraints {
			r := c.RHS
			if i < len(rhs) {
				r = rhs[i] + 0.3*rng.NormFloat64()
				if r < 0.1 {
					r = 0.1
				}
				pp.SetRHS(i, r)
			}
			cold.AddConstraint(c.Terms, c.Op, r)
		}
		warm, err := pp.SolveFrom(basis)
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		want, err := Solve(cold, Options{})
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		if warm.Status != want.Status {
			t.Fatalf("trial %d: status warm %v cold %v", trial, warm.Status, want.Status)
		}
		if want.Status == Optimal && math.Abs(warm.Objective-want.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
			t.Fatalf("trial %d: warm objective %v vs cold %v", trial, warm.Objective, want.Objective)
		}
		basis = pp.Basis(basis)
	}
}

func TestPreparedPoisonedBasisFallsBackCold(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := randomCoveringLP(rng, 24, 16)
	pp, err := Prepare(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := pp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	wantObj := want.Objective

	m := pp.NumRows()
	poisoned := []*Basis{
		{},                       // empty
		{cols: make([]int, m-1)}, // wrong length
		{cols: make([]int, m)},   // all-zero: duplicated indices
		{cols: func() []int {
			c := make([]int, m)
			for i := range c {
				c[i] = 1 << 30
			}
			return c
		}()}, // out of range
		{cols: func() []int {
			c := make([]int, m)
			for i := range c {
				c[i] = i
			}
			return c
		}()}, // arbitrary, likely singular/infeasible
	}
	for i, b := range poisoned {
		got, err := pp.SolveFrom(b)
		if err != nil {
			t.Fatalf("poisoned %d: %v", i, err)
		}
		if got.Status != Optimal || math.Abs(got.Objective-wantObj) > 1e-6*(1+math.Abs(wantObj)) {
			t.Fatalf("poisoned %d: status %v objective %v, want optimal %v", i, got.Status, got.Objective, wantObj)
		}
	}
}

func TestAddColumnMatchesRebuild(t *testing.T) {
	// A tiny transportation-style LP grown one column at a time must
	// match the same LP built in one shot.
	build := func(withExtra bool) *Problem {
		p := NewProblem(3)
		p.SetObjective([]float64{2, 3, 1})
		p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}, {Var: 2, Coef: 1}}, EQ, 4)
		p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 2, Coef: -1}}, LE, 1)
		if withExtra {
			p.AddColumn(0.5, []Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 2}})
		}
		return p
	}
	grown := build(true)
	direct := NewProblem(4)
	direct.SetObjective([]float64{2, 3, 1, 0.5})
	direct.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}, {Var: 2, Coef: 1}, {Var: 3, Coef: 1}}, EQ, 4)
	direct.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 2, Coef: -1}, {Var: 3, Coef: 2}}, LE, 1)

	a, err := Solve(grown, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(direct, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != Optimal || b.Status != Optimal {
		t.Fatalf("status %v vs %v", a.Status, b.Status)
	}
	if math.Abs(a.Objective-b.Objective) > 1e-9 {
		t.Fatalf("objective %v vs %v", a.Objective, b.Objective)
	}
}

func TestCloneIsolatesGrowth(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, GE, 1)
	q := p.Clone()
	// Growing the clone must not corrupt the original's rows (terms are
	// shared copy-on-write).
	q.AddColumn(5, []Term{{Var: 0, Coef: 1}})
	if got := len(p.constraints[0].Terms); got != 2 {
		t.Fatalf("original row grew to %d terms after clone mutation", got)
	}
	if got := len(q.constraints[0].Terms); got != 3 {
		t.Fatalf("clone row has %d terms, want 3", got)
	}
	sol, err := Solve(p, Options{})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("original unsolvable after clone growth: %v %v", err, sol)
	}
}

// eqTestProblem is a small all-EQ problem suitable for IPMSolver.
func eqTestProblem() *Problem {
	p := NewProblem(4)
	p.SetObjective([]float64{1, 2, 1.5, 0.3})
	p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}, {Var: 2, Coef: 1}}, EQ, 2)
	p.AddConstraint([]Term{{Var: 1, Coef: 1}, {Var: 2, Coef: 2}, {Var: 3, Coef: 1}}, EQ, 3)
	return p
}

func TestIPMSolverWarmMatchesCold(t *testing.T) {
	p := eqTestProblem()
	sv, err := NewIPMSolver(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := sv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SolveIPM(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != Optimal || math.Abs(first.Objective-ref.Objective) > 1e-6 {
		t.Fatalf("first solve %v obj %v, want %v", first.Status, first.Objective, ref.Objective)
	}

	// Grow a cheap column and warm re-solve; compare to a rebuilt solve.
	sv.AddColumn(0.1, []Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}})
	warm, err := sv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	p2 := eqTestProblem()
	p2.AddColumn(0.1, []Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}})
	ref2, err := SolveIPM(p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal || math.Abs(warm.Objective-ref2.Objective) > 1e-6 {
		t.Fatalf("warm solve %v obj %v, want %v", warm.Status, warm.Objective, ref2.Objective)
	}
	// Objective mutation (the rho escalation path).
	sv.SetObjectiveCoeff(3, 9)
	p2.SetObjectiveCoeff(3, 9)
	warm2, err := sv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	ref3, err := SolveIPM(p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm2.Status != Optimal || math.Abs(warm2.Objective-ref3.Objective) > 1e-6 {
		t.Fatalf("post-retune solve %v obj %v, want %v", warm2.Status, warm2.Objective, ref3.Objective)
	}
}

func TestIPMSolverRejectsInequalityRows(t *testing.T) {
	p := NewProblem(2)
	p.AddConstraint([]Term{{Var: 0, Coef: 1}}, LE, 1)
	if _, err := NewIPMSolver(p, Options{}); err == nil {
		t.Fatal("expected rejection of inequality rows")
	}
}

func TestIPMSolverResolveAllocs(t *testing.T) {
	p := eqTestProblem()
	sv, err := NewIPMSolver(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Solve(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		sv.SetObjectiveCoeff(0, 1.01)
		if _, err := sv.Solve(); err != nil {
			t.Fatal(err)
		}
	})
	// A steady-state re-solve reuses the full workspace; only the
	// Solution struct and its X/Duals slices are fresh per call.
	if allocs > 8 {
		t.Fatalf("steady-state IPM re-solve allocates %v objects per run, want ≤ 8", allocs)
	}
}

func TestPreparedWarmResolveAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := randomCoveringLP(rng, 30, 20)
	pp, err := Prepare(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Solve(); err != nil {
		t.Fatal(err)
	}
	basis := pp.Basis(nil)
	// Warm it up once so lazy buffers exist.
	if _, err := pp.SolveFrom(basis); err != nil {
		t.Fatal(err)
	}
	basis = pp.Basis(basis)
	allocs := testing.AllocsPerRun(20, func() {
		pp.SetRHS(0, 1.05)
		if _, err := pp.SolveFrom(basis); err != nil {
			t.Fatal(err)
		}
		basis = pp.Basis(basis)
	})
	// The steady-state warm re-solve must be allocation-free; a couple
	// of allocs of slack cover interface boxing in the test harness.
	if allocs > 2 {
		t.Fatalf("warm re-solve allocates %v objects per run, want ≤ 2", allocs)
	}
}

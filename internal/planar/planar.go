// Package planar implements the paper's baseline "2Db": the optimal
// planar geo-indistinguishable mechanism of Bordenabe, Chatzikokolakis
// and Palamidessi (CCS'14), which assumes workers move freely on the 2D
// plane. Locations are the road intervals' planar midpoints; quality
// loss and privacy are both measured by Euclidean distance; and the LP's
// O(K³) Euclidean Geo-I constraints are cut down with the CCS'14 greedy
// spanner trick. Because the mechanism's output alphabet is restricted
// to on-network points (the interval midpoints), the paper's footnote-3
// snap-to-road step is the identity here — the adversary and the server
// evaluate the reported interval directly.
//
// A discrete planar exponential mechanism (the workhorse of the original
// geo-indistinguishability paper by Andrés et al., CCS'13, adapted from
// the continuous planar Laplacian to the interval alphabet) is included
// as a second, closed-form baseline.
package planar

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/geoi"
	"repro/internal/geom"
	"repro/internal/roadnet"
)

// Options tune the 2Db solve.
type Options struct {
	// Stretch is the greedy-spanner dilation t > 1 (default 1.3).
	// Following CCS'14, constraints are placed on spanner edges at the
	// nominal ε with Euclidean exponents; chains certify ε-Geo-I w.r.t.
	// the spanner metric, i.e. (ε·t)-Geo-I w.r.t. the Euclidean one —
	// the baseline's documented approximation.
	Stretch float64
	// Direct switches to the monolithic LP (small K only).
	Direct bool
	// CG passes options to the column-generation solver.
	CG core.CGOptions
}

func (o Options) withDefaults() Options {
	if o.Stretch <= 1 {
		o.Stretch = 1.3
	}
	return o
}

// Result carries the solved planar mechanism and its Euclidean loss.
type Result struct {
	Mechanism *core.Mechanism
	// EuclidLoss is the mechanism's expected Euclidean distortion
	// E‖x − x̃‖, the objective 2Db optimises.
	EuclidLoss float64
	// Pairs is the number of spanner constraint pairs used.
	Pairs int
}

// Solve2D computes the 2Db mechanism for the given privacy parameters
// and worker prior (nil = uniform). radius ≤ 0 constrains all pairs.
func Solve2D(part *discretize.Partition, eps, radius float64, priorP []float64, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if eps <= 0 {
		return nil, fmt.Errorf("planar: epsilon must be positive, got %v", eps)
	}
	k := part.K()
	if priorP == nil {
		priorP = core.UniformPrior(k)
	}

	pts := midpoints(part)
	costs := euclidCosts(pts, priorP)
	pairs := SpannerPairs(pts, opts.Stretch)

	// Spanner metric for seeding: shortest paths over the spanner edges
	// (a true metric, and spanner-edge consistent).
	sym := spannerMetric(pts, pairs)

	pr, err := core.NewCustomProblem(part, eps, radius, priorP, costs, pairs, sym)
	if err != nil {
		return nil, err
	}

	var mech *core.Mechanism
	if opts.Direct {
		res, err := core.SolveDirect(pr, core.DirectOptions{})
		if err != nil {
			return nil, err
		}
		mech = res.Mechanism
	} else {
		res, err := core.SolveCG(pr, opts.CG)
		if err != nil {
			return nil, err
		}
		mech = res.Mechanism
	}
	return &Result{
		Mechanism:  mech,
		EuclidLoss: EuclidLoss(part, mech, priorP),
		Pairs:      len(pairs),
	}, nil
}

// laneOffset separates the two directions of a two-way street in the
// plane (2 m), like physical lanes. Without it, anti-parallel intervals
// occupy identical planar points, forcing exact-equality Geo-I rows that
// both degrade the LP's conditioning and are geometrically artificial.
const laneOffset = 0.002

// midpoints returns the planar positions of all interval midpoints, each
// shifted laneOffset to the right of its direction of travel.
func midpoints(part *discretize.Partition) []geom.Point {
	pts := make([]geom.Point, part.K())
	for i, iv := range part.Intervals {
		p := iv.Mid().Point(part.G)
		e := part.G.Edge(iv.Edge)
		dir := part.G.Node(e.To).Pos.Sub(part.G.Node(e.From).Pos)
		if n := dir.Norm(); n > 0 {
			// Right-hand perpendicular of (x, y) is (y, −x).
			perp := geom.Point{X: dir.Y / n, Y: -dir.X / n}
			p = p.Add(perp.Scale(laneOffset))
		}
		pts[i] = p
	}
	return pts
}

// euclidCosts is the 2Db objective matrix: c[i,l] = f_P(i)·‖x_i − x_l‖.
func euclidCosts(pts []geom.Point, priorP []float64) []float64 {
	k := len(pts)
	costs := make([]float64, k*k)
	for i := 0; i < k; i++ {
		if priorP[i] == 0 {
			continue
		}
		for l := 0; l < k; l++ {
			costs[i*k+l] = priorP[i] * geom.Dist(pts[i], pts[l])
		}
	}
	return costs
}

// EuclidLoss evaluates E‖x − x̃‖ of a mechanism under the prior.
func EuclidLoss(part *discretize.Partition, m *core.Mechanism, priorP []float64) float64 {
	pts := midpoints(part)
	k := part.K()
	if priorP == nil {
		priorP = core.UniformPrior(k)
	}
	tot := 0.0
	for i := 0; i < k; i++ {
		for l := 0; l < k; l++ {
			tot += priorP[i] * m.Prob(i, l) * geom.Dist(pts[i], pts[l])
		}
	}
	return tot
}

// spannerEdge is one undirected spanner edge stored in adjacency form.
type spannerEdge struct {
	to int
	d  float64
}

// SpannerPairs builds a greedy t-spanner over the points: candidate
// pairs are scanned in increasing Euclidean length, and a pair becomes a
// spanner edge when the current spanner cannot connect it within
// t × its Euclidean distance. The result is the CCS'14 constraint set —
// chaining edge constraints bounds every pair's exponent by t×Euclidean.
func SpannerPairs(pts []geom.Point, stretch float64) []geoi.UnorderedPair {
	k := len(pts)
	type cand struct {
		a, b int
		d    float64
	}
	cands := make([]cand, 0, k*(k-1)/2)
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			cands = append(cands, cand{a, b, geom.Dist(pts[a], pts[b])})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })

	adj := make([][]spannerEdge, k)
	var pairs []geoi.UnorderedPair
	dist := make([]float64, k)
	for _, c := range cands {
		if spannerDist(adj, dist, c.a, c.b, stretch*c.d) <= stretch*c.d {
			continue
		}
		// Anti-parallel road edges put two intervals at the same planar
		// midpoint; floor their distance so downstream graph weights and
		// Geo-I exponents stay positive (the constraint z_a ≈ z_b is
		// preserved to within solver tolerance).
		d := math.Max(c.d, coincidentFloor)
		adj[c.a] = append(adj[c.a], spannerEdge{to: c.b, d: d})
		adj[c.b] = append(adj[c.b], spannerEdge{to: c.a, d: d})
		pairs = append(pairs, geoi.UnorderedPair{A: c.a, B: c.b, D: d})
	}
	return pairs
}

// coincidentFloor keeps coincident planar points at a strictly positive
// nominal distance (1 micrometre).
const coincidentFloor = 1e-9

// spannerDist runs a bounded Dijkstra over the current spanner and
// returns the distance from a to b, or +Inf once it exceeds the limit.
func spannerDist(adj [][]spannerEdge, dist []float64, a, b int, limit float64) float64 {
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[a] = 0
	// Simple O(V²) Dijkstra; spanner degree is small and K is moderate.
	visited := make([]bool, len(dist))
	for {
		u, best := -1, limit
		for i, d := range dist {
			if !visited[i] && d <= best {
				u, best = i, d
			}
		}
		if u < 0 {
			return math.Inf(1)
		}
		if u == b {
			return dist[u]
		}
		visited[u] = true
		for _, e := range adj[u] {
			if nd := dist[u] + e.d; nd < dist[e.to] {
				dist[e.to] = nd
			}
		}
	}
}

// spannerMetric returns all-pairs shortest distances over the spanner
// edges, backing the CG seed columns.
func spannerMetric(pts []geom.Point, pairs []geoi.UnorderedPair) *roadnet.DistMatrix {
	g := roadnet.NewGraph()
	for _, p := range pts {
		g.AddNode(p)
	}
	for _, pr := range pairs {
		g.AddTwoWay(roadnet.NodeID(pr.A), roadnet.NodeID(pr.B), pr.D)
	}
	return g.AllPairs()
}

// MaxEuclidViolation measures the largest violation of ε-Geo-I under the
// Euclidean metric by the mechanism (≤ 0 means satisfied): for every
// ordered interval pair within radius, z_{i,j} ≤ e^{ε‖x_i−x_l‖} z_{l,j}.
func MaxEuclidViolation(part *discretize.Partition, m *core.Mechanism, eps, radius float64) float64 {
	pts := midpoints(part)
	k := part.K()
	worst := math.Inf(-1)
	for i := 0; i < k; i++ {
		for l := 0; l < k; l++ {
			if i == l {
				continue
			}
			d := geom.Dist(pts[i], pts[l])
			if radius > 0 && d > radius {
				continue
			}
			f := math.Exp(eps * d)
			for j := 0; j < k; j++ {
				if v := m.Prob(i, j) - f*m.Prob(l, j); v > worst {
					worst = v
				}
			}
		}
	}
	return worst
}

// ExponentialMechanism2D is the discrete planar analogue of the CCS'13
// planar Laplace mechanism over the interval alphabet: row i draws
// interval l with probability ∝ e^{−(ε/2)·‖x_i − x_l‖}. The ε/2 exponent
// absorbs the normalisation so the result satisfies ε-Geo-I under the
// Euclidean metric.
func ExponentialMechanism2D(part *discretize.Partition, eps float64) *core.Mechanism {
	pts := midpoints(part)
	k := part.K()
	z := make([]float64, k*k)
	for i := 0; i < k; i++ {
		sum := 0.0
		for l := 0; l < k; l++ {
			z[i*k+l] = math.Exp(-eps / 2 * geom.Dist(pts[i], pts[l]))
			sum += z[i*k+l]
		}
		for l := 0; l < k; l++ {
			z[i*k+l] /= sum
		}
	}
	return &core.Mechanism{Part: part, Z: z}
}

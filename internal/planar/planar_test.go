package planar

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/geom"
	"repro/internal/roadnet"
)

func testPartition(t *testing.T, seed int64, delta float64) *discretize.Partition {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 2, Cols: 2, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.2,
	})
	part, err := discretize.New(g, delta)
	if err != nil {
		t.Fatal(err)
	}
	return part
}

func TestSpannerPairsStretchProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 25)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 2, Y: rng.Float64() * 2}
	}
	const stretch = 1.3
	pairs := SpannerPairs(pts, stretch)
	if len(pairs) == 0 {
		t.Fatal("empty spanner")
	}
	// Spanner property: every pair connected within stretch × Euclidean.
	m := spannerMetric(pts, pairs)
	for a := 0; a < len(pts); a++ {
		for b := 0; b < len(pts); b++ {
			if a == b {
				continue
			}
			de := geom.Dist(pts[a], pts[b])
			ds := m.Dist(roadnet.NodeID(a), roadnet.NodeID(b))
			if ds > stretch*de+1e-9 {
				t.Fatalf("pair (%d,%d): spanner dist %v > %v × Euclid %v", a, b, ds, stretch, de)
			}
			if ds < de-1e-9 {
				t.Fatalf("pair (%d,%d): spanner dist %v below Euclid %v", a, b, ds, de)
			}
		}
	}
	// And it must actually be sparse: far fewer than all pairs.
	if len(pairs) >= len(pts)*(len(pts)-1)/2 {
		t.Fatalf("spanner kept all %d pairs", len(pairs))
	}
}

func TestSolve2DSatisfiesStretchedEuclidGeoI(t *testing.T) {
	part := testPartition(t, 2, 0.3)
	const eps = 3.0
	const stretch = 1.3
	res, err := Solve2D(part, eps, 0, nil, Options{Direct: true, Stretch: stretch})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mechanism.Validate(); err != nil {
		t.Fatal(err)
	}
	// CCS'14 semantics: exact ε w.r.t. the spanner metric, hence ε·t
	// w.r.t. the Euclidean one.
	if v := MaxEuclidViolation(part, res.Mechanism, eps*stretch, 0); v > 1e-6 {
		t.Fatalf("2Db mechanism violates (ε·t)-Euclidean Geo-I by %v", v)
	}
}

func TestSolve2DOptimisesEuclidLoss(t *testing.T) {
	part := testPartition(t, 3, 0.3)
	const eps = 4.0
	res, err := Solve2D(part, eps, 0, nil, Options{Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	expo := ExponentialMechanism2D(part, eps)
	if res.EuclidLoss > EuclidLoss(part, expo, nil)+1e-9 {
		t.Fatalf("optimal 2Db loss %v worse than exponential baseline %v",
			res.EuclidLoss, EuclidLoss(part, expo, nil))
	}
}

func TestSolve2DCGMatchesDirect(t *testing.T) {
	part := testPartition(t, 4, 0.3)
	const eps = 3.0
	direct, err := Solve2D(part, eps, 0, nil, Options{Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := Solve2D(part, eps, 0, nil, Options{CG: core.CGOptions{Xi: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct.EuclidLoss-cg.EuclidLoss) > 1e-4*(1+direct.EuclidLoss) {
		t.Fatalf("CG loss %v != direct %v", cg.EuclidLoss, direct.EuclidLoss)
	}
}

func TestSolve2DEpsilonMonotone(t *testing.T) {
	part := testPartition(t, 5, 0.3)
	prev := math.Inf(1)
	for _, eps := range []float64{1, 3, 9} {
		res, err := Solve2D(part, eps, 0, nil, Options{Direct: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.EuclidLoss > prev+1e-9 {
			t.Fatalf("Euclid loss rose with eps: %v -> %v", prev, res.EuclidLoss)
		}
		prev = res.EuclidLoss
	}
}

func TestExponentialMechanism2D(t *testing.T) {
	part := testPartition(t, 6, 0.3)
	const eps = 5.0
	m := ExponentialMechanism2D(part, eps)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if v := MaxEuclidViolation(part, m, eps, 0); v > 1e-9 {
		t.Fatalf("planar exponential mechanism violates Geo-I by %v", v)
	}
}

func TestSolve2DRejectsBadEpsilon(t *testing.T) {
	part := testPartition(t, 7, 0.3)
	if _, err := Solve2D(part, 0, 0, nil, Options{}); err == nil {
		t.Fatal("accepted epsilon = 0")
	}
}

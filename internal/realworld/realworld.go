// Package realworld reproduces the paper's prototype pilot study
// (Section 5.2) with a scripted vehicle instead of a human driver: a
// campus-scale map (or the contrasting Region A / Region B maps), a
// random deployment of tasks, a participant that drives the map
// reporting an obfuscated location every 20–30 s, and a server that
// assigns the nearest task by estimated distance. Each test group
// measures the empirical quality loss (ETDD against the assigned task)
// and the privacy level (the Bayesian adversary's error on the reported
// sequence).
package realworld

import (
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/roadnet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config parameterises one pilot study.
type Config struct {
	// Delta is the interval length (paper: 0.05 km).
	Delta float64
	// Epsilon and Radius are the Geo-I parameters.
	Epsilon float64
	Radius  float64
	// Tasks is the number of tasks deployed per group.
	Tasks int
	// Groups is the number of independent test groups (paper: 20).
	Groups int
	// ReportEvery is the seconds between location reports (paper: 20–30).
	ReportEvery float64
	// DriveTime is the seconds each group's participant drives.
	DriveTime float64
	// CG configures the solver used for the region's mechanism.
	CG core.CGOptions
}

// DefaultConfig mirrors the paper's pilot at laptop scale.
func DefaultConfig() Config {
	return Config{
		Delta:       0.1,
		Epsilon:     5,
		Tasks:       5,
		Groups:      20,
		ReportEvery: 25,
		DriveTime:   1200,
		CG:          core.CGOptions{Xi: -0.05, RelGap: 0.03},
	}
}

// GroupResult is the outcome of one test group.
type GroupResult struct {
	// ETDD is the empirical quality loss: the mean over reports of
	// |d(p, q*) − d(p̃, q*)| where q* is the task the server assigns
	// from the obfuscated report (its nearest-task choice).
	ETDD float64
	// AdvError is the mean travel distance between the Bayesian
	// adversary's optimal estimate and the true location over the
	// group's reports.
	AdvError float64
	// Reports is the number of location reports in the group.
	Reports int
}

// Result is a full pilot study outcome.
type Result struct {
	// Mechanism is the region's solved obfuscation mechanism.
	Mechanism *core.Mechanism
	// LowerBound is the solver's dual (Theorem 4.4) bound on the model
	// ETDD, the reference line of Fig. 17.
	LowerBound float64
	// ModelETDD is the model-predicted quality loss of the mechanism
	// (against the uniform task prior the mechanism was solved with).
	ModelETDD float64
	Groups    []GroupResult
}

// MeanETDD returns the across-group mean empirical ETDD.
func (r *Result) MeanETDD() float64 {
	xs := make([]float64, len(r.Groups))
	for i, g := range r.Groups {
		xs[i] = g.ETDD
	}
	return stats.Mean(xs)
}

// MeanAdvError returns the across-group mean adversary error.
func (r *Result) MeanAdvError() float64 {
	xs := make([]float64, len(r.Groups))
	for i, g := range r.Groups {
		xs[i] = g.AdvError
	}
	return stats.Mean(xs)
}

// Run solves the region's mechanism once (the server ships one
// obfuscation function per region, built from historical priors — not
// one per task deployment) and then executes the test groups.
func Run(rng *rand.Rand, g *roadnet.Graph, cfg Config) (*Result, error) {
	part, err := discretize.New(g, cfg.Delta)
	if err != nil {
		return nil, err
	}
	pr, err := core.NewProblem(part, core.Config{Epsilon: cfg.Epsilon, Radius: cfg.Radius})
	if err != nil {
		return nil, err
	}
	sol, err := core.SolveCG(pr, cfg.CG)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Mechanism:  sol.Mechanism,
		LowerBound: sol.LowerBound,
		ModelETDD:  sol.ETDD,
	}
	for grp := 0; grp < cfg.Groups; grp++ {
		gr, err := RunGroup(rng, pr, sol.Mechanism, cfg)
		if err != nil {
			return nil, err
		}
		res.Groups = append(res.Groups, gr)
	}
	return res, nil
}

// RunGroup deploys tasks, drives the participant and measures one group
// with the given (already solved) mechanism.
func RunGroup(rng *rand.Rand, pr *core.Problem, mech *core.Mechanism, cfg Config) (GroupResult, error) {
	part := pr.Part
	g := part.G

	// Deploy tasks uniformly over the region.
	if cfg.Tasks < 1 {
		return GroupResult{}, fmt.Errorf("realworld: need at least one task, got %d", cfg.Tasks)
	}
	tasks := make([]roadnet.Location, cfg.Tasks)
	for i := range tasks {
		tasks[i] = roadnet.RandomLocation(rng, g)
	}

	// The participant drives and reports every ReportEvery seconds.
	traces, err := trace.Simulate(rng, g, trace.SimConfig{
		Vehicles:    1,
		Duration:    cfg.DriveTime,
		RecordEvery: cfg.ReportEvery,
		SpeedKmh:    30,
		CenterBias:  0.5,
	})
	if err != nil {
		return GroupResult{}, err
	}
	records := traces[0].Records
	if len(records) == 0 {
		return GroupResult{}, fmt.Errorf("realworld: participant produced no reports")
	}

	adv, err := attack.NewBayes(mech, pr.PriorP)
	if err != nil {
		return GroupResult{}, err
	}

	var gr GroupResult
	for _, rec := range records {
		truth := rec.Loc
		obf := mech.Sample(rng, truth)

		// Server: assign the task nearest to the reported location.
		best, bestD := 0, part.TravelDistMinLoc(obf, tasks[0])
		for ti := 1; ti < len(tasks); ti++ {
			if d := part.TravelDistMinLoc(obf, tasks[ti]); d < bestD {
				best, bestD = ti, d
			}
		}
		q := tasks[best]
		etdd := part.TravelDistLoc(truth, q) - part.TravelDistLoc(obf, q)
		if etdd < 0 {
			etdd = -etdd
		}
		gr.ETDD += etdd

		// Adversary: optimal estimate from the reported interval.
		ti, oi := part.Locate(truth), part.Locate(obf)
		gr.AdvError += part.MidDistMin(ti, adv.Estimate(oi))
		gr.Reports++
	}
	gr.ETDD /= float64(gr.Reports)
	gr.AdvError /= float64(gr.Reports)
	return gr, nil
}

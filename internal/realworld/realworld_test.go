package realworld

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/roadnet"
)

func quickConfig() Config {
	return Config{
		Delta:       0.3,
		Epsilon:     5,
		Tasks:       4,
		Groups:      4,
		ReportEvery: 25,
		DriveTime:   400,
		CG:          core.CGOptions{Xi: -0.2, RelGap: 0.1, MaxIterations: 15},
	}
}

func TestRunPilotStudy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 2, Cols: 3, Spacing: 0.3, OneWayFrac: 0.4, WeightJitter: 0.15,
	})
	res, err := Run(rng, g, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 4 {
		t.Fatalf("%d groups, want 4", len(res.Groups))
	}
	for i, gr := range res.Groups {
		if gr.Reports == 0 {
			t.Fatalf("group %d has no reports", i)
		}
		if gr.ETDD < 0 || gr.AdvError < 0 {
			t.Fatalf("group %d has negative metrics: %+v", i, gr)
		}
	}
	if res.MeanETDD() <= 0 {
		t.Fatalf("mean empirical ETDD %v, expected positive under obfuscation", res.MeanETDD())
	}
	if res.MeanAdvError() <= 0 {
		t.Fatalf("mean AdvError %v, expected positive under obfuscation", res.MeanAdvError())
	}
	if res.LowerBound > res.ModelETDD+1e-9 {
		t.Fatalf("dual bound %v above model ETDD %v", res.LowerBound, res.ModelETDD)
	}
}

func TestRunGroupRejectsZeroTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3})
	cfg := quickConfig()
	res, err := Run(rng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tasks = 0
	pr, err := core.NewProblem(res.Mechanism.Part, core.Config{Epsilon: cfg.Epsilon})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunGroup(rng, pr, res.Mechanism, cfg); err == nil {
		t.Fatal("accepted zero tasks")
	}
}

// Package retryhttp is a small retrying HTTP client for talking to
// vlpserved. The service sheds load deliberately — 429 with Retry-After
// past the solve-admission gate, 503 while an instance drains — so a
// well-behaved client treats those as "come back shortly", not as
// failures. Do retries transient failures (connection errors, 429, 503
// and other 5xx) with capped exponential backoff and full jitter,
// honouring the server's Retry-After when present, and respects the
// request context throughout, including while sleeping between attempts.
// When a rejected attempt carries the fleet's X-VLP-Leader hint, the
// next attempt is re-aimed at the advertised leader instead of blindly
// re-sending to the same instance.
//
// Requests with bodies are replayed via Request.GetBody, which
// http.NewRequest populates automatically for byte readers; vlpserved's
// POST endpoints are safe to replay because a solve is deterministic in
// its spec digest.
package retryhttp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// LeaderHeader is the response header a follower stamps with the
// current leaseholder's advertised base URL. A retry that blindly
// re-sends to the same follower buys the same rejection; when a
// retryable response carries this hint, the next attempt is re-aimed
// at the leader instead.
const LeaderHeader = "X-VLP-Leader"

// Client wraps an http.Client with retries. The zero value is usable.
type Client struct {
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds total tries including the first (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100ms); subsequent
	// steps double, capped at MaxDelay (default 5s). The actual sleep is
	// drawn uniformly from (0, step] — "full jitter" — so a burst of
	// rejected clients does not re-arrive in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 4
}

// jitter draws a uniform sleep from (0, step].
func (c *Client) jitter(step time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return time.Duration(c.rng.Int63n(int64(step))) + 1
}

// backoff computes the sleep before the next attempt: a full-jitter
// draw over the exponential step, added on top of the server's
// Retry-After hint when the response carries one. The hint is a floor,
// never the whole wait — if every rejected client slept exactly
// Retry-After, the burst that tripped the server's admission gate
// would re-arrive in lockstep and trip it again; jitter on top spreads
// the retry wave while still respecting the server's horizon.
func (c *Client) backoff(resp *http.Response, step time.Duration) time.Duration {
	wait := c.jitter(step)
	if resp == nil {
		return wait
	}
	if d, ok := retryAfter(resp); ok {
		wait += d
	}
	return wait
}

// StatusError records an HTTP status a failed Do saw on its way to
// giving up. Do returns the last response directly when the final
// attempt produced one; when the final attempt died in transport
// instead, the most recent status rides along wrapped in the returned
// error, extractable with errors.As — so callers never lose what the
// server last said.
type StatusError struct {
	Status int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("retryhttp: server answered %d %s", e.Status, http.StatusText(e.Status))
}

// retryable reports whether a response status is worth another attempt:
// explicit backpressure and drain signals (429, 503), plus any other
// 5xx. Every other 4xx is deterministic — the server parsed the request
// and rejected it, so a replay buys the same answer at the cost of the
// full backoff ladder — and is returned to the caller on the first
// attempt. The follower→leader proxy rung depends on this: a leader's
// 422 must fail the proxy immediately, not stack retry latency onto a
// request that will degrade to the fallback rung anyway.
func retryable(status int) bool {
	if status == http.StatusTooManyRequests {
		return true
	}
	if status >= 400 && status < 500 {
		return false
	}
	return status == http.StatusServiceUnavailable || status >= 500
}

// retryAfter parses a Retry-After header (delta-seconds or HTTP-date);
// ok is false when absent or unparseable.
func retryAfter(resp *http.Response) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if when, err := http.ParseTime(v); err == nil {
		if d := time.Until(when); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// Do sends req, retrying transient failures until an attempt succeeds,
// the attempt budget is spent, or the request context is done. On
// success the caller owns resp.Body as usual; on a final retryable
// status the last response is returned (body open) with a nil error so
// the caller can inspect it. A retryable response bearing the
// X-VLP-Leader header redirects the next attempt to that leader base
// URL (original path and query preserved).
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	if req.Body != nil && req.GetBody == nil {
		return nil, fmt.Errorf("retryhttp: request body is not replayable (nil GetBody)")
	}
	base := c.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxDelay := c.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}

	var lastErr error
	var lastStatus int
	var resp *http.Response
	step := base
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			// Rewind the body for the replay.
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					return nil, fmt.Errorf("retryhttp: rewinding request body: %w", err)
				}
				req.Body = body
			}
			wait := c.backoff(resp, step)
			if resp != nil {
				resp.Body.Close()
			}
			if step *= 2; step > maxDelay {
				step = maxDelay
			}
			if err := sleep(req.Context(), wait); err != nil {
				return nil, err
			}
		}

		var err error
		resp, err = c.httpClient().Do(req)
		if err != nil {
			// Context errors are final; transport errors are retried.
			if ctxErr := req.Context().Err(); ctxErr != nil {
				return nil, ctxErr
			}
			lastErr, resp = err, nil
			continue
		}
		if !retryable(resp.StatusCode) {
			return resp, nil
		}
		lastStatus = resp.StatusCode
		lastErr = &StatusError{Status: resp.StatusCode}
		followLeader(req, resp)
	}
	if resp != nil {
		// Out of attempts on a retryable status: hand the caller the last
		// response rather than discarding what the server said.
		return resp, nil
	}
	if lastStatus != 0 {
		// The final attempt died in transport but an earlier one got an
		// answer; surface both, each reachable via errors.As/Is.
		return nil, fmt.Errorf("retryhttp: %d attempts failed, last error: %w (last status: %w)",
			c.attempts(), lastErr, &StatusError{Status: lastStatus})
	}
	return nil, fmt.Errorf("retryhttp: %d attempts failed, last error: %w", c.attempts(), lastErr)
}

// PostJSON marshals in, POSTs it to url with the client's retry policy,
// and decodes a 2xx JSON response into out (when out is non-nil). The
// final HTTP status is returned in every non-error case, including a
// retryable status that outlived the attempt budget — so a load
// generator's warmup loop can distinguish "server still shedding" (429,
// nil error) from a dead target. This is the shared request path of
// cmd/vlpload and the serveclient example.
func (c *Client) PostJSON(ctx context.Context, url string, in, out interface{}) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, fmt.Errorf("retryhttp: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		// Drain so the transport can reuse the connection; the caller
		// branches on the status, not the error body.
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("retryhttp: decoding response: %w", err)
		}
	}
	return resp.StatusCode, nil
}

// followLeader re-aims req at the base URL a follower advertised in
// the response's LeaderHeader, keeping the original path and query. A
// missing or malformed hint leaves the request untouched — the retry
// then falls back to the plain same-target backoff, which is always
// safe (the follower proxies writes to the leader anyway; the hint
// just skips a hop). Only scheme and host are taken from the hint so a
// hint can never rewrite which endpoint is being called.
func followLeader(req *http.Request, resp *http.Response) {
	hint := resp.Header.Get(LeaderHeader)
	if hint == "" {
		return
	}
	u, err := url.Parse(hint)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return
	}
	next := *req.URL
	next.Scheme = u.Scheme
	next.Host = u.Host
	req.URL = &next
	// Clear any explicit Host override so the new target derives its
	// Host header from the leader's URL.
	req.Host = ""
}

// sleep waits for d or until ctx is done, whichever is first.
func sleep(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

package retryhttp

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetriesBackpressureThenSucceeds(t *testing.T) {
	var hits atomic.Int32
	var bodies atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		if string(b) == "payload" {
			bodies.Add(1)
		}
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := &Client{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	req, err := http.NewRequest(http.MethodPost, ts.URL, bytes.NewReader([]byte("payload")))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 after retries", resp.StatusCode)
	}
	if hits.Load() != 3 {
		t.Errorf("server saw %d attempts, want 3 (two 429s then success)", hits.Load())
	}
	// GetBody rewind: every attempt must carry the full payload.
	if bodies.Load() != 3 {
		t.Errorf("server saw the payload on %d/3 attempts", bodies.Load())
	}
}

func TestHonoursRetryAfter(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := &Client{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	start := time.Now()
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	// The hinted 1s dominates the millisecond backoff schedule.
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retried after %v, want the server's 1s Retry-After honoured", elapsed)
	}
}

func TestExhaustedAttemptsReturnLastResponse(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "still busy", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := &Client{MaxAttempts: 3, BaseDelay: time.Millisecond}
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want the final 429 surfaced", resp.StatusCode)
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()

	c := &Client{BaseDelay: time.Millisecond}
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Errorf("a 400 was retried %d times; client errors are final", hits.Load())
	}
}

func TestContextCancelsBackoffSleep(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := &Client{BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second}
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	_, err := c.Do(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded from the backoff sleep", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Do slept %v past its context", elapsed)
	}
}

func TestRejectsUnreplayableBody(t *testing.T) {
	c := &Client{}
	req, _ := http.NewRequest(http.MethodPost, "http://example.invalid", nil)
	req.Body = io.NopCloser(strings.NewReader("one-shot"))
	req.GetBody = nil
	if _, err := c.Do(req); err == nil {
		t.Fatal("accepted a request whose body cannot be replayed")
	}
}

// TestPostJSONRetriesThenDecodes drives the shared vlpload/serveclient
// request path: a 429 with Retry-After followed by a 2xx JSON body must
// come back decoded, and a replayed attempt must carry the same body.
func TestPostJSONRetriesThenDecodes(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if string(body) != `{"epsilon":5}` {
			t.Errorf("attempt %d body = %q, replay lost the payload", attempts.Load(), body)
		}
		if attempts.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"key":"abc","cached":true}`)
	}))
	defer ts.Close()

	c := &Client{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	var out struct {
		Key    string `json:"key"`
		Cached bool   `json:"cached"`
	}
	status, err := c.PostJSON(context.Background(), ts.URL, map[string]float64{"epsilon": 5}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || out.Key != "abc" || !out.Cached {
		t.Fatalf("status %d, decoded %+v; want 200 with key=abc cached=true", status, out)
	}
	if n := attempts.Load(); n != 2 {
		t.Fatalf("server saw %d attempts, want 2", n)
	}
}

// TestPostJSONSurfacesFinalStatus: a retryable status that outlives the
// attempt budget comes back as (status, nil error) so warmup loops can
// branch on it.
func TestPostJSONSurfacesFinalStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := &Client{MaxAttempts: 2, BaseDelay: time.Millisecond}
	status, err := c.PostJSON(context.Background(), ts.URL, map[string]int{"x": 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 surfaced after exhausted retries", status)
	}
}

// TestBackoffJittersAtopRetryAfter: the server's hint is a floor under
// the jittered backoff, not a replacement for it. A Retry-After that
// merely dominated the jitter would put every rejected client back on
// the wire at the same instant — the wait must be strictly inside
// (hint, hint+step], and must actually vary between draws.
func TestBackoffJittersAtopRetryAfter(t *testing.T) {
	c := &Client{}
	c.rng = rand.New(rand.NewSource(7))
	resp := &http.Response{Header: http.Header{}}
	resp.Header.Set("Retry-After", "2")
	const step = 100 * time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		w := c.backoff(resp, step)
		if w <= 2*time.Second || w > 2*time.Second+step {
			t.Fatalf("wait %v outside (2s, 2s+%v]", w, step)
		}
		seen[w] = true
	}
	if len(seen) < 2 {
		t.Fatal("every wait identical: no jitter atop Retry-After, clients re-arrive in lockstep")
	}
}

// TestBackoffWithoutHint: no response (transport error) or no header
// falls back to pure full jitter over the step.
func TestBackoffWithoutHint(t *testing.T) {
	c := &Client{}
	c.rng = rand.New(rand.NewSource(11))
	const step = 50 * time.Millisecond
	for i := 0; i < 32; i++ {
		if w := c.backoff(nil, step); w <= 0 || w > step {
			t.Fatalf("nil-response wait %v outside (0, %v]", w, step)
		}
		bare := &http.Response{Header: http.Header{}}
		if w := c.backoff(bare, step); w <= 0 || w > step {
			t.Fatalf("no-header wait %v outside (0, %v]", w, step)
		}
	}
}

// TestRetryAfterParsing covers both header forms and the garbage cases.
func TestRetryAfterParsing(t *testing.T) {
	mk := func(v string) *http.Response {
		r := &http.Response{Header: http.Header{}}
		if v != "" {
			r.Header.Set("Retry-After", v)
		}
		return r
	}
	if d, ok := retryAfter(mk("3")); !ok || d != 3*time.Second {
		t.Fatalf("delta-seconds: (%v, %v), want (3s, true)", d, ok)
	}
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if d, ok := retryAfter(mk(future)); !ok || d <= 25*time.Second || d > 30*time.Second {
		t.Fatalf("http-date: (%v, %v), want ~30s", d, ok)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d, ok := retryAfter(mk(past)); !ok || d != 0 {
		t.Fatalf("past http-date: (%v, %v), want (0, true)", d, ok)
	}
	if _, ok := retryAfter(mk("")); ok {
		t.Fatal("absent header parsed as a hint")
	}
	if _, ok := retryAfter(mk("soon")); ok {
		t.Fatal("garbage header parsed as a hint")
	}
	if _, ok := retryAfter(mk("-5")); ok {
		t.Fatal("negative delta-seconds parsed as a hint")
	}
}

// TestClientErrorsNeverRetried pins the 4xx contract across the range:
// only 429 is backpressure; every other client error is deterministic
// and gets exactly one attempt.
func TestClientErrorsNeverRetried(t *testing.T) {
	cases := []struct {
		status   int
		wantHits int32
	}{
		{http.StatusBadRequest, 1},
		{http.StatusNotFound, 1},
		{http.StatusUnprocessableEntity, 1},
		{http.StatusTooManyRequests, 3}, // the one retryable 4xx
	}
	for _, tc := range cases {
		var hits atomic.Int32
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			w.WriteHeader(tc.status)
		}))
		c := &Client{MaxAttempts: 3, BaseDelay: time.Millisecond}
		req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
		resp, err := c.Do(req)
		ts.Close()
		if err != nil {
			t.Fatalf("status %d: %v", tc.status, err)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("status %d: got %d back", tc.status, resp.StatusCode)
		}
		resp.Body.Close()
		if hits.Load() != tc.wantHits {
			t.Errorf("status %d: %d attempts, want %d", tc.status, hits.Load(), tc.wantHits)
		}
	}
}

// TestFollowsLeaderHint: a follower that sheds a write with 503 and an
// X-VLP-Leader hint must see exactly one attempt — the retry belongs
// to the advertised leader, with the original path, query and body
// intact.
func TestFollowsLeaderHint(t *testing.T) {
	var leaderHits, followerHits atomic.Int32
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		leaderHits.Add(1)
		if r.URL.Path != "/solve" || r.URL.RawQuery != "tier=gold" {
			t.Errorf("leader got %q?%q, want /solve?tier=gold preserved across the redirect", r.URL.Path, r.URL.RawQuery)
		}
		if b, _ := io.ReadAll(r.Body); string(b) != "payload" {
			t.Errorf("leader got body %q, replay lost the payload", b)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer leader.Close()
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		followerHits.Add(1)
		w.Header().Set(LeaderHeader, leader.URL)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer follower.Close()

	c := &Client{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	req, err := http.NewRequest(http.MethodPost, follower.URL+"/solve?tier=gold", bytes.NewReader([]byte("payload")))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 from the leader", resp.StatusCode)
	}
	if followerHits.Load() != 1 {
		t.Errorf("follower saw %d attempts, want 1 (hint redirects the retry)", followerHits.Load())
	}
	if leaderHits.Load() != 1 {
		t.Errorf("leader saw %d attempts, want 1", leaderHits.Load())
	}
}

// TestMalformedLeaderHintIgnored: garbage in X-VLP-Leader must not
// derail the retry — the client falls back to same-target backoff.
func TestMalformedLeaderHintIgnored(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set(LeaderHeader, "not a url at all\x7f")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := &Client{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 from the same-target retry", resp.StatusCode)
	}
	if hits.Load() != 2 {
		t.Errorf("server saw %d attempts, want 2 (retry stayed on target)", hits.Load())
	}
}

// statusThenDieTransport answers the first request with a synthetic
// retryable status and fails every later one in transport — the exact
// shape of a server that sheds load and then drops off the network.
type statusThenDieTransport struct {
	calls atomic.Int32
}

func (tr *statusThenDieTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if tr.calls.Add(1) == 1 {
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable",
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader("")),
			Request:    req,
		}, nil
	}
	return nil, errors.New("connection refused")
}

// TestStatusErrorSurfaced: when the final attempt dies in transport but
// an earlier attempt saw a retryable status, the returned error carries
// that status as an errors.As-able StatusError — the caller learns what
// the server last said even though no response survived.
func TestStatusErrorSurfaced(t *testing.T) {
	tr := &statusThenDieTransport{}
	c := &Client{
		HTTP:        &http.Client{Transport: tr},
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
	}
	req, _ := http.NewRequest(http.MethodGet, "http://fleet.invalid/solve", nil)
	if _, err := c.Do(req); err == nil {
		t.Fatal("Do succeeded against a dead transport")
	} else {
		var se *StatusError
		if !errors.As(err, &se) {
			t.Fatalf("error %v does not carry a StatusError", err)
		}
		if se.Status != http.StatusServiceUnavailable {
			t.Fatalf("surfaced status %d, want 503", se.Status)
		}
	}
	if tr.calls.Load() != 2 {
		t.Fatalf("transport saw %d calls, want 2", tr.calls.Load())
	}
}

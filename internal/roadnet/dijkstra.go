package roadnet

import (
	"container/heap"
	"math"
)

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// SPT is a shortest-path tree rooted at Root. For an out-tree
// (Reverse = false) Dist[v] is the travel distance Root→v and Parent[v]
// is the final edge of that path (entering v). For an in-tree
// (Reverse = true) Dist[v] is the distance v→Root and Parent[v] is the
// first edge of that path (leaving v). Unreachable nodes have
// Dist = +Inf and Parent = NoEdge.
type SPT struct {
	Root    NodeID
	Reverse bool
	Dist    []float64
	Parent  []EdgeID
}

// ShortestPathTree runs Dijkstra from src over out-edges, returning the
// out-tree (the paper's SPT-Out).
func (g *Graph) ShortestPathTree(src NodeID) *SPT {
	return g.dijkstra(src, false)
}

// ReverseShortestPathTree runs Dijkstra toward dst over in-edges,
// returning the in-tree (the paper's SPT-In): distances from every node
// to dst.
func (g *Graph) ReverseShortestPathTree(dst NodeID) *SPT {
	return g.dijkstra(dst, true)
}

func (g *Graph) dijkstra(root NodeID, reverse bool) *SPT {
	n := g.NumNodes()
	dist := make([]float64, n)
	parent := make([]EdgeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = NoEdge
	}
	dist[root] = 0

	q := make(pq, 0, n)
	heap.Push(&q, pqItem{root, 0})
	done := make([]bool, n)
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		var adj []EdgeID
		if reverse {
			adj = g.in[u]
		} else {
			adj = g.out[u]
		}
		for _, eid := range adj {
			e := g.edges[eid]
			var v NodeID
			if reverse {
				v = e.From
			} else {
				v = e.To
			}
			if nd := it.dist + e.Weight; nd < dist[v] {
				dist[v] = nd
				parent[v] = eid
				heap.Push(&q, pqItem{v, nd})
			}
		}
	}
	return &SPT{Root: root, Reverse: reverse, Dist: dist, Parent: parent}
}

// PathEdges returns the edges of the tree path between v and the root, in
// travel order (root→v for an out-tree, v→root for an in-tree). It
// returns nil when v is unreachable.
func (t *SPT) PathEdges(g *Graph, v NodeID) []EdgeID {
	if math.IsInf(t.Dist[v], 1) {
		return nil
	}
	var rev []EdgeID
	cur := v
	for cur != t.Root {
		eid := t.Parent[cur]
		if eid == NoEdge {
			return nil
		}
		rev = append(rev, eid)
		e := g.edges[eid]
		if t.Reverse {
			cur = e.To
		} else {
			cur = e.From
		}
	}
	if t.Reverse {
		// Parent chain already walks v→root in travel order; rev holds
		// the first edge first.
		return rev
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// DistMatrix holds all-pairs shortest node-to-node traveling distances.
type DistMatrix struct {
	n int
	d []float64
}

// AllPairs computes all-pairs shortest distances with one Dijkstra per
// node: O(n·(m + n log n)). Road graphs are sparse, so this beats
// Floyd-Warshall well past the sizes the experiments use.
func (g *Graph) AllPairs() *DistMatrix {
	n := g.NumNodes()
	m := &DistMatrix{n: n, d: make([]float64, n*n)}
	for u := 0; u < n; u++ {
		t := g.ShortestPathTree(NodeID(u))
		copy(m.d[u*n:(u+1)*n], t.Dist)
	}
	return m
}

// Dist returns the shortest traveling distance from u to v.
func (m *DistMatrix) Dist(u, v NodeID) float64 { return m.d[int(u)*m.n+int(v)] }

// Min returns min{d(u,v), d(v,u)}.
func (m *DistMatrix) Min(u, v NodeID) float64 {
	return math.Min(m.Dist(u, v), m.Dist(v, u))
}

// Diameter returns the largest finite pairwise distance.
func (m *DistMatrix) Diameter() float64 {
	worst := 0.0
	for _, v := range m.d {
		if !math.IsInf(v, 1) && v > worst {
			worst = v
		}
	}
	return worst
}

package roadnet

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// GridConfig parameterises the synthetic grid-city generator.
type GridConfig struct {
	Rows, Cols int     // intersections per side (≥ 2)
	Spacing    float64 // block length in km
	// OneWayFrac is the probability that an interior street line (a whole
	// row or column of segments) becomes one-way. Adjacent one-way lines
	// alternate direction, Manhattan style; border lines stay two-way so
	// the network remains strongly connected.
	OneWayFrac float64
	// WeightJitter inflates each segment's travel weight by a factor
	// uniform in [1, 1+WeightJitter], modelling curved or slow roads.
	WeightJitter float64
	// Origin offsets the grid in the plane.
	Origin geom.Point
}

// Grid generates a rows×cols Manhattan-style grid city. The result is
// always strongly connected.
func Grid(rng *rand.Rand, cfg GridConfig) *Graph {
	if cfg.Rows < 2 || cfg.Cols < 2 {
		panic("roadnet: Grid needs Rows, Cols >= 2")
	}
	if cfg.Spacing <= 0 {
		panic("roadnet: Grid needs positive Spacing")
	}
	g := NewGraph()
	ids := make([][]NodeID, cfg.Rows)
	for r := 0; r < cfg.Rows; r++ {
		ids[r] = make([]NodeID, cfg.Cols)
		for c := 0; c < cfg.Cols; c++ {
			ids[r][c] = g.AddNode(geom.Point{
				X: cfg.Origin.X + float64(c)*cfg.Spacing,
				Y: cfg.Origin.Y + float64(r)*cfg.Spacing,
			})
		}
	}

	jitter := func() float64 {
		if cfg.WeightJitter <= 0 {
			return 1
		}
		return 1 + rng.Float64()*cfg.WeightJitter
	}
	weight := func(a, b NodeID) float64 {
		return geom.Dist(g.Node(a).Pos, g.Node(b).Pos) * jitter()
	}

	// Decide one-way status per line. Direction alternates with the line
	// index so traffic can always circulate.
	rowOneWay := make([]bool, cfg.Rows)
	colOneWay := make([]bool, cfg.Cols)
	for r := 1; r < cfg.Rows-1; r++ {
		rowOneWay[r] = rng.Float64() < cfg.OneWayFrac
	}
	for c := 1; c < cfg.Cols-1; c++ {
		colOneWay[c] = rng.Float64() < cfg.OneWayFrac
	}

	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c+1 < cfg.Cols; c++ {
			a, b := ids[r][c], ids[r][c+1]
			switch {
			case !rowOneWay[r]:
				g.AddEdge(a, b, weight(a, b))
				g.AddEdge(b, a, weight(a, b))
			case r%2 == 0:
				g.AddEdge(a, b, weight(a, b)) // eastbound
			default:
				g.AddEdge(b, a, weight(a, b)) // westbound
			}
		}
	}
	for c := 0; c < cfg.Cols; c++ {
		for r := 0; r+1 < cfg.Rows; r++ {
			a, b := ids[r][c], ids[r+1][c]
			switch {
			case !colOneWay[c]:
				g.AddEdge(a, b, weight(a, b))
				g.AddEdge(b, a, weight(a, b))
			case c%2 == 0:
				g.AddEdge(a, b, weight(a, b)) // northbound
			default:
				g.AddEdge(b, a, weight(a, b)) // southbound
			}
		}
	}

	if !g.StronglyConnected() {
		// With two-way borders this cannot happen for Rows, Cols >= 2,
		// but guard against future generator edits: fall back to the
		// fully two-way grid, which is trivially strongly connected.
		cfg.OneWayFrac = 0
		return Grid(rng, cfg)
	}
	return g
}

// RomeLikeConfig sizes the composite "Rome-like" city used by the
// trace-driven simulation: a dense downtown grid, a ring road around it
// and radial arteries reaching sparse suburb spurs.
type RomeLikeConfig struct {
	DowntownRows, DowntownCols int
	DowntownSpacing            float64
	RingRadiusFactor           float64 // ring radius as a multiple of the downtown half-diagonal
	Radials                    int     // number of radial arteries (≥ 3)
	SuburbDepth                int     // extra nodes strung outward past the ring on each radial
	SuburbSpacing              float64
	OneWayFrac                 float64
	WeightJitter               float64
}

// DefaultRomeLike returns the configuration used by the headline
// simulation experiments: large enough to show every effect, small
// enough that a full figure regenerates in seconds.
func DefaultRomeLike() RomeLikeConfig {
	return RomeLikeConfig{
		DowntownRows:     5,
		DowntownCols:     5,
		DowntownSpacing:  0.25,
		RingRadiusFactor: 1.6,
		Radials:          6,
		SuburbDepth:      2,
		SuburbSpacing:    0.5,
		OneWayFrac:       0.5,
		WeightJitter:     0.15,
	}
}

// RomeLike generates the composite city. The downtown grid sits at the
// origin-centred block; suburbs hang off the ring road.
func RomeLike(rng *rand.Rand, cfg RomeLikeConfig) *Graph {
	if cfg.Radials < 3 {
		panic("roadnet: RomeLike needs at least 3 radials")
	}
	halfW := float64(cfg.DowntownCols-1) * cfg.DowntownSpacing / 2
	halfH := float64(cfg.DowntownRows-1) * cfg.DowntownSpacing / 2
	g := Grid(rng, GridConfig{
		Rows:         cfg.DowntownRows,
		Cols:         cfg.DowntownCols,
		Spacing:      cfg.DowntownSpacing,
		OneWayFrac:   cfg.OneWayFrac,
		WeightJitter: cfg.WeightJitter,
		Origin:       geom.Point{X: -halfW, Y: -halfH},
	})

	jitter := func() float64 {
		if cfg.WeightJitter <= 0 {
			return 1
		}
		return 1 + rng.Float64()*cfg.WeightJitter
	}

	// Ring road: two-way polygon around downtown.
	radius := math.Hypot(halfW, halfH) * cfg.RingRadiusFactor
	ring := make([]NodeID, cfg.Radials)
	for i := 0; i < cfg.Radials; i++ {
		ang := 2 * math.Pi * float64(i) / float64(cfg.Radials)
		ring[i] = g.AddNode(geom.Point{X: radius * math.Cos(ang), Y: radius * math.Sin(ang)})
	}
	for i := 0; i < cfg.Radials; i++ {
		a, b := ring[i], ring[(i+1)%cfg.Radials]
		w := geom.Dist(g.Node(a).Pos, g.Node(b).Pos) * jitter()
		g.AddTwoWay(a, b, w)
	}

	// Radial arteries: connect each ring node to the nearest downtown
	// border node, two-way.
	for i := 0; i < cfg.Radials; i++ {
		rp := g.Node(ring[i]).Pos
		best := NodeID(0)
		bestD := math.Inf(1)
		for n := 0; n < cfg.DowntownRows*cfg.DowntownCols; n++ {
			if d := geom.Dist(g.Node(NodeID(n)).Pos, rp); d < bestD {
				bestD = d
				best = NodeID(n)
			}
		}
		g.AddTwoWay(ring[i], best, bestD*jitter())
	}

	// Suburb spurs: chains of nodes stretching outward from ring nodes.
	for i := 0; i < cfg.Radials; i++ {
		prev := ring[i]
		ang := 2 * math.Pi * float64(i) / float64(cfg.Radials)
		for d := 1; d <= cfg.SuburbDepth; d++ {
			r := radius + float64(d)*cfg.SuburbSpacing
			n := g.AddNode(geom.Point{X: r * math.Cos(ang), Y: r * math.Sin(ang)})
			w := geom.Dist(g.Node(prev).Pos, g.Node(n).Pos) * jitter()
			g.AddTwoWay(prev, n, w)
			prev = n
		}
	}

	return g
}

// RegionA generates the paper's rural pilot-study region: sparse,
// long blocks, no one-way streets.
func RegionA(rng *rand.Rand) *Graph {
	return Grid(rng, GridConfig{
		Rows: 3, Cols: 4,
		Spacing:      0.6,
		OneWayFrac:   0,
		WeightJitter: 0.25,
	})
}

// RegionB generates the paper's downtown pilot-study region: dense,
// short blocks, many one-way streets.
func RegionB(rng *rand.Rand) *Graph {
	return Grid(rng, GridConfig{
		Rows: 6, Cols: 6,
		Spacing:      0.15,
		OneWayFrac:   0.8,
		WeightJitter: 0.1,
	})
}

// Campus generates the Rowan-campus-scale map used by the prototype
// pilot study (Fig. 17): a medium grid with a few one-way streets.
func Campus(rng *rand.Rand) *Graph {
	return Grid(rng, GridConfig{
		Rows: 4, Cols: 5,
		Spacing:      0.3,
		OneWayFrac:   0.4,
		WeightJitter: 0.15,
	})
}

// RandomLocation draws a location uniformly over the total directed edge
// length of the graph.
func RandomLocation(rng *rand.Rand, g *Graph) Location {
	target := rng.Float64() * g.TotalLength()
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(EdgeID(i))
		if target <= e.Weight || i == g.NumEdges()-1 {
			return LocationFromStart(g, e.ID, geom.Clamp(target, 0, e.Weight))
		}
		target -= e.Weight
	}
	panic("roadnet: empty graph")
}

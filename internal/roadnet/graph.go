// Package roadnet models the road network of the VLP paper: a weighted
// directed graph whose nodes are road connections embedded in the plane
// and whose edges are one-way road segments (a two-way street is a pair
// of anti-parallel edges). Workers and tasks live *on* edges, addressed
// by the paper's (edge, distance-to-endpoint) convention, and all
// distances are shortest *traveling* distances over the graph rather than
// Euclidean distances.
package roadnet

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// NodeID identifies a connection (graph vertex).
type NodeID int32

// EdgeID identifies a directed road segment.
type EdgeID int32

// NoEdge marks the absence of an edge (for example, the root of a
// shortest-path tree).
const NoEdge EdgeID = -1

// Node is a road connection with a planar position.
type Node struct {
	ID  NodeID
	Pos geom.Point
}

// Edge is a directed road segment from From to To with a positive travel
// weight in kilometres. The paper's v_e^s is From and v_e^e is To.
type Edge struct {
	ID     EdgeID
	From   NodeID
	To     NodeID
	Weight float64
}

// Graph is a weighted directed road network. The zero value is an empty
// graph ready to use.
type Graph struct {
	nodes []Node
	edges []Edge
	out   [][]EdgeID
	in    [][]EdgeID
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode inserts a connection at pos and returns its ID.
func (g *Graph) AddNode(pos geom.Point) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Pos: pos})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge inserts a directed segment. A non-positive weight selects the
// Euclidean distance between the endpoints. It panics when the endpoints
// coincide in position and no weight is given, since a zero-length road
// segment is meaningless.
func (g *Graph) AddEdge(from, to NodeID, weight float64) EdgeID {
	if weight <= 0 {
		weight = geom.Dist(g.nodes[from].Pos, g.nodes[to].Pos)
		if weight == 0 {
			panic("roadnet: zero-length edge with no explicit weight")
		}
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Weight: weight})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id
}

// AddTwoWay inserts the anti-parallel edge pair modelling a two-way
// street and returns both edge IDs.
func (g *Graph) AddTwoWay(a, b NodeID, weight float64) (EdgeID, EdgeID) {
	return g.AddEdge(a, b, weight), g.AddEdge(b, a, weight)
}

// NumNodes returns the number of connections.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of directed segments.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// OutEdges returns the edges leaving n. The slice must not be modified.
func (g *Graph) OutEdges(n NodeID) []EdgeID { return g.out[n] }

// InEdges returns the edges entering n. The slice must not be modified.
func (g *Graph) InEdges(n NodeID) []EdgeID { return g.in[n] }

// TotalLength returns the summed weight of all directed segments.
func (g *Graph) TotalLength() float64 {
	tot := 0.0
	for _, e := range g.edges {
		tot += e.Weight
	}
	return tot
}

// EdgePoint returns the planar position of the point on edge e at the
// given distance from the edge's start, assuming a straight segment.
func (g *Graph) EdgePoint(e EdgeID, fromStart float64) geom.Point {
	ed := g.edges[e]
	t := geom.Clamp(fromStart/ed.Weight, 0, 1)
	return geom.Lerp(g.nodes[ed.From].Pos, g.nodes[ed.To].Pos, t)
}

// StronglyConnected reports whether every node can reach every other
// node, which the VLP discretisation requires (otherwise some travel
// distances are infinite). It runs two BFS passes from node 0.
func (g *Graph) StronglyConnected() bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	reach := func(adj [][]EdgeID, endpoint func(Edge) NodeID) int {
		seen := make([]bool, n)
		stack := []NodeID{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, eid := range adj[u] {
				v := endpoint(g.edges[eid])
				if !seen[v] {
					seen[v] = true
					count++
					stack = append(stack, v)
				}
			}
		}
		return count
	}
	fwd := reach(g.out, func(e Edge) NodeID { return e.To })
	bwd := reach(g.in, func(e Edge) NodeID { return e.From })
	return fwd == n && bwd == n
}

// Validate checks structural invariants and returns a descriptive error
// for the first violation found.
func (g *Graph) Validate() error {
	for _, e := range g.edges {
		if e.Weight <= 0 || math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
			return fmt.Errorf("roadnet: edge %d has invalid weight %v", e.ID, e.Weight)
		}
		if int(e.From) >= len(g.nodes) || int(e.To) >= len(g.nodes) || e.From < 0 || e.To < 0 {
			return fmt.Errorf("roadnet: edge %d references missing node", e.ID)
		}
		if e.From == e.To {
			return fmt.Errorf("roadnet: edge %d is a self-loop", e.ID)
		}
	}
	return nil
}

// NearestLocation snaps an arbitrary planar point to the closest position
// on any edge (treating edges as straight segments) and returns that
// on-network location. This implements the paper's footnote-3 rule for
// mapping the planar baseline's obfuscated points back onto roads.
func (g *Graph) NearestLocation(p geom.Point) Location {
	best := Location{Edge: NoEdge}
	bestD := math.Inf(1)
	for _, e := range g.edges {
		seg := geom.Segment{A: g.nodes[e.From].Pos, B: g.nodes[e.To].Pos}
		t, d2 := seg.ClosestParam(p)
		if d2 < bestD {
			bestD = d2
			best = LocationFromStart(g, e.ID, t*e.Weight)
		}
	}
	return best
}

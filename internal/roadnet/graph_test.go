package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// line builds the 3-node one-way chain a→b→c with unit weights.
func line(t *testing.T) (*Graph, []NodeID) {
	t.Helper()
	g := NewGraph()
	a := g.AddNode(geom.Point{X: 0, Y: 0})
	b := g.AddNode(geom.Point{X: 1, Y: 0})
	c := g.AddNode(geom.Point{X: 2, Y: 0})
	g.AddEdge(a, b, 0) // Euclidean weight = 1
	g.AddEdge(b, c, 0)
	return g, []NodeID{a, b, c}
}

func TestAddEdgeEuclideanWeight(t *testing.T) {
	g, _ := line(t)
	if w := g.Edge(0).Weight; math.Abs(w-1) > 1e-12 {
		t.Fatalf("weight = %v, want 1", w)
	}
}

func TestAddTwoWay(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(geom.Point{})
	b := g.AddNode(geom.Point{X: 2})
	e1, e2 := g.AddTwoWay(a, b, 3)
	if g.Edge(e1).From != a || g.Edge(e1).To != b || g.Edge(e2).From != b || g.Edge(e2).To != a {
		t.Fatal("two-way edges misdirected")
	}
	if g.Edge(e1).Weight != 3 || g.Edge(e2).Weight != 3 {
		t.Fatal("two-way weights wrong")
	}
}

func TestValidateCatchesSelfLoop(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(geom.Point{})
	b := g.AddNode(geom.Point{X: 1})
	g.AddEdge(a, b, 1)
	g.edges = append(g.edges, Edge{ID: 1, From: a, To: a, Weight: 1})
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted a self-loop")
	}
}

func TestStronglyConnected(t *testing.T) {
	g, _ := line(t) // one-way chain: not strongly connected
	if g.StronglyConnected() {
		t.Fatal("one-way chain reported strongly connected")
	}
	g2 := NewGraph()
	a := g2.AddNode(geom.Point{})
	b := g2.AddNode(geom.Point{X: 1})
	g2.AddTwoWay(a, b, 1)
	if !g2.StronglyConnected() {
		t.Fatal("two-way pair reported not strongly connected")
	}
}

func TestDijkstraChain(t *testing.T) {
	g, ids := line(t)
	spt := g.ShortestPathTree(ids[0])
	want := []float64{0, 1, 2}
	for i, w := range want {
		if math.Abs(spt.Dist[i]-w) > 1e-12 {
			t.Fatalf("dist[%d] = %v, want %v", i, spt.Dist[i], w)
		}
	}
	if !math.IsInf(g.ShortestPathTree(ids[2]).Dist[ids[0]], 1) {
		t.Fatal("backwards distance should be infinite on a one-way chain")
	}
}

func TestReverseSPTMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Grid(rng, GridConfig{Rows: 4, Cols: 4, Spacing: 0.2, OneWayFrac: 0.5, WeightJitter: 0.2})
	dst := NodeID(5)
	in := g.ReverseShortestPathTree(dst)
	for u := 0; u < g.NumNodes(); u++ {
		fwd := g.ShortestPathTree(NodeID(u))
		if math.Abs(fwd.Dist[dst]-in.Dist[u]) > 1e-9 {
			t.Fatalf("dist(%d→%d): forward %v reverse %v", u, dst, fwd.Dist[dst], in.Dist[u])
		}
	}
}

func TestSPTPathEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := Grid(rng, GridConfig{Rows: 3, Cols: 3, Spacing: 0.5, OneWayFrac: 0.5})
	out := g.ShortestPathTree(0)
	for v := 1; v < g.NumNodes(); v++ {
		path := out.PathEdges(g, NodeID(v))
		if path == nil {
			t.Fatalf("no path 0→%d in strongly connected graph", v)
		}
		// Path must chain correctly and sum to Dist.
		cur := NodeID(0)
		total := 0.0
		for _, eid := range path {
			e := g.Edge(eid)
			if e.From != cur {
				t.Fatalf("path edge %d does not start at %d", eid, cur)
			}
			cur = e.To
			total += e.Weight
		}
		if cur != NodeID(v) {
			t.Fatalf("path ends at %d, want %d", cur, v)
		}
		if math.Abs(total-out.Dist[v]) > 1e-9 {
			t.Fatalf("path length %v, Dist %v", total, out.Dist[v])
		}
	}

	in := g.ReverseShortestPathTree(0)
	for v := 1; v < g.NumNodes(); v++ {
		path := in.PathEdges(g, NodeID(v))
		cur := NodeID(v)
		total := 0.0
		for _, eid := range path {
			e := g.Edge(eid)
			if e.From != cur {
				t.Fatalf("reverse path edge %d does not start at %d", eid, cur)
			}
			cur = e.To
			total += e.Weight
		}
		if cur != 0 {
			t.Fatalf("reverse path ends at %d, want 0", cur)
		}
		if math.Abs(total-in.Dist[v]) > 1e-9 {
			t.Fatalf("reverse path length %v, Dist %v", total, in.Dist[v])
		}
	}
}

func TestAllPairsMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := Grid(rng, GridConfig{Rows: 4, Cols: 3, Spacing: 0.3, OneWayFrac: 0.6, WeightJitter: 0.3})
	m := g.AllPairs()
	for u := 0; u < g.NumNodes(); u++ {
		spt := g.ShortestPathTree(NodeID(u))
		for v := 0; v < g.NumNodes(); v++ {
			if math.Abs(m.Dist(NodeID(u), NodeID(v))-spt.Dist[v]) > 1e-12 {
				t.Fatalf("AllPairs(%d,%d) = %v, Dijkstra %v", u, v, m.Dist(NodeID(u), NodeID(v)), spt.Dist[v])
			}
		}
	}
	if m.Diameter() <= 0 {
		t.Fatal("diameter should be positive")
	}
}

func TestTriangleInequalityAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := RomeLike(rng, DefaultRomeLike())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.StronglyConnected() {
		t.Fatal("RomeLike not strongly connected")
	}
	m := g.AllPairs()
	n := g.NumNodes()
	for trial := 0; trial < 2000; trial++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		w := NodeID(rng.Intn(n))
		if m.Dist(u, w) > m.Dist(u, v)+m.Dist(v, w)+1e-9 {
			t.Fatalf("triangle inequality violated: d(%d,%d)=%v > %v + %v",
				u, w, m.Dist(u, w), m.Dist(u, v), m.Dist(v, w))
		}
	}
}

func TestTravelDistSameEdge(t *testing.T) {
	g, ids := line(t)
	_ = ids
	e := EdgeID(0)
	p := Location{Edge: e, ToEnd: 0.8} // 0.2 from start
	q := Location{Edge: e, ToEnd: 0.3} // 0.7 from start
	m := g.AllPairs()
	nd := m.Dist
	// p upstream of q: direct drive 0.5.
	if d := TravelDist(g, nd, p, q); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("d(p,q) = %v, want 0.5", d)
	}
	// q to p must loop, but the chain is one-way: infinite.
	if d := TravelDist(g, nd, q, p); !math.IsInf(d, 1) {
		t.Fatalf("d(q,p) = %v, want +Inf on a one-way chain", d)
	}
}

func TestTravelDistAcrossEdges(t *testing.T) {
	g, _ := line(t)
	m := g.AllPairs()
	nd := m.Dist
	p := Location{Edge: 0, ToEnd: 0.4}
	q := Location{Edge: 1, ToEnd: 0.9} // 0.1 from start of edge 1
	// p→head(e0)=0.4, head(e0)=tail(e1), then 0.1 into edge 1: total 0.5.
	if d := TravelDist(g, nd, p, q); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("d(p,q) = %v, want 0.5", d)
	}
}

func TestTravelDistMinSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := Grid(rng, GridConfig{Rows: 3, Cols: 3, Spacing: 0.4, OneWayFrac: 0.5})
	m := g.AllPairs()
	nd := m.Dist
	for trial := 0; trial < 200; trial++ {
		p := RandomLocation(rng, g)
		q := RandomLocation(rng, g)
		if math.Abs(TravelDistMin(g, nd, p, q)-TravelDistMin(g, nd, q, p)) > 1e-12 {
			t.Fatalf("d_min not symmetric for %v, %v", p, q)
		}
		if TravelDistMin(g, nd, p, q) < 0 {
			t.Fatalf("negative distance for %v, %v", p, q)
		}
	}
}

func TestLocationRoundTrip(t *testing.T) {
	g, _ := line(t)
	l := LocationFromStart(g, 0, 0.25)
	if math.Abs(l.ToEnd-0.75) > 1e-12 {
		t.Fatalf("ToEnd = %v, want 0.75", l.ToEnd)
	}
	if math.Abs(l.FromStart(g)-0.25) > 1e-12 {
		t.Fatalf("FromStart = %v, want 0.25", l.FromStart(g))
	}
	pt := l.Point(g)
	if math.Abs(pt.X-0.25) > 1e-12 || pt.Y != 0 {
		t.Fatalf("Point = %v, want (0.25, 0)", pt)
	}
	if !l.Valid(g) {
		t.Fatal("valid location reported invalid")
	}
	if (Location{Edge: 99, ToEnd: 0}).Valid(g) {
		t.Fatal("invalid edge reported valid")
	}
}

func TestNearestLocation(t *testing.T) {
	g, _ := line(t)
	loc := g.NearestLocation(geom.Point{X: 1.5, Y: 0.3})
	if loc.Edge != 1 {
		t.Fatalf("snapped to edge %d, want 1", loc.Edge)
	}
	if math.Abs(loc.FromStart(g)-0.5) > 1e-9 {
		t.Fatalf("snapped offset %v, want 0.5", loc.FromStart(g))
	}
}

func TestGridGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, frac := range []float64{0, 0.5, 1} {
		g := Grid(rng, GridConfig{Rows: 5, Cols: 4, Spacing: 0.2, OneWayFrac: frac, WeightJitter: 0.2})
		if err := g.Validate(); err != nil {
			t.Fatalf("frac %v: %v", frac, err)
		}
		if !g.StronglyConnected() {
			t.Fatalf("frac %v: not strongly connected", frac)
		}
		if g.NumNodes() != 20 {
			t.Fatalf("frac %v: %d nodes, want 20", frac, g.NumNodes())
		}
	}
}

func TestGeneratorsConnectedAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for name, g := range map[string]*Graph{
		"RegionA":  RegionA(rng),
		"RegionB":  RegionB(rng),
		"Campus":   Campus(rng),
		"RomeLike": RomeLike(rng, DefaultRomeLike()),
	} {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !g.StronglyConnected() {
			t.Fatalf("%s: not strongly connected", name)
		}
	}
}

func TestRegionBDenserThanRegionA(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, b := RegionA(rng), RegionB(rng)
	// Density = edges per unit length of map side; downtown must be denser.
	da := float64(a.NumEdges()) / a.TotalLength()
	db := float64(b.NumEdges()) / b.TotalLength()
	if db <= da {
		t.Fatalf("downtown density %v not greater than rural %v", db, da)
	}
}

func TestRandomLocationUniformish(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g, _ := line(t)
	counts := [2]int{}
	for i := 0; i < 4000; i++ {
		counts[RandomLocation(rng, g).Edge]++
	}
	// Two unit edges: expect roughly even split.
	if counts[0] < 1700 || counts[0] > 2300 {
		t.Fatalf("edge 0 drawn %d of 4000, expected ≈2000", counts[0])
	}
}

func TestRandomLocationAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := RomeLike(rng, DefaultRomeLike())
	for i := 0; i < 1000; i++ {
		if l := RandomLocation(rng, g); !l.Valid(g) {
			t.Fatalf("invalid random location %v", l)
		}
	}
}

package roadnet

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Location is a point on the road network using the paper's convention
// p = (e, x): x = ToEnd is the remaining travel distance from the point
// to the edge's ending connection v_e^e, with ToEnd ∈ (0, w_e]. ToEnd = w_e
// therefore places the point at the edge's *starting* connection.
type Location struct {
	Edge  EdgeID
	ToEnd float64
}

// LocationFromStart builds a Location from the more familiar
// distance-from-start parameterisation, clamped to the edge.
func LocationFromStart(g *Graph, e EdgeID, fromStart float64) Location {
	w := g.Edge(e).Weight
	fromStart = geom.Clamp(fromStart, 0, w)
	return Location{Edge: e, ToEnd: w - fromStart}
}

// FromStart returns the travel distance from the edge's starting
// connection to the location.
func (l Location) FromStart(g *Graph) float64 {
	return g.Edge(l.Edge).Weight - l.ToEnd
}

// Point returns the planar position of the location.
func (l Location) Point(g *Graph) geom.Point {
	return g.EdgePoint(l.Edge, l.FromStart(g))
}

// Valid reports whether the location lies on an existing edge with an
// offset within the edge length.
func (l Location) Valid(g *Graph) bool {
	if l.Edge < 0 || int(l.Edge) >= g.NumEdges() {
		return false
	}
	w := g.Edge(l.Edge).Weight
	return l.ToEnd >= 0 && l.ToEnd <= w && !math.IsNaN(l.ToEnd)
}

// String implements fmt.Stringer.
func (l Location) String() string {
	return fmt.Sprintf("(e%d, toEnd=%.4f)", l.Edge, l.ToEnd)
}

// TravelDist returns the paper's one-directional shortest traveling
// distance d_G(p, q) over the network, following the C1/C2 case analysis
// of Section 3.3 (Eqs. 9-10):
//
//	C2: p and q share an edge and p is upstream of q  →  x_p − x_q.
//	C1: otherwise the path exits via p's edge head, travels to q's edge
//	    tail, and enters q's edge  →  x_p + d(head(e_p), tail(e_q)) + (w_q − x_q).
//
// nodeDist must return the shortest node-to-node traveling distance; use
// Graph.AllPairs().Dist or a closure over Dijkstra results.
func TravelDist(g *Graph, nodeDist func(u, v NodeID) float64, p, q Location) float64 {
	if p.Edge == q.Edge && p.ToEnd >= q.ToEnd {
		return p.ToEnd - q.ToEnd
	}
	ep, eq := g.Edge(p.Edge), g.Edge(q.Edge)
	return p.ToEnd + nodeDist(ep.To, eq.From) + (eq.Weight - q.ToEnd)
}

// TravelDistMin returns d_G^min(p, q) = min{d_G(p,q), d_G(q,p)}, the
// two-direction traveling distance the paper uses as its privacy metric.
func TravelDistMin(g *Graph, nodeDist func(u, v NodeID) float64, p, q Location) float64 {
	return math.Min(TravelDist(g, nodeDist, p, q), TravelDist(g, nodeDist, q, p))
}

package roadnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// randomConnectedGraph builds a random strongly connected graph by
// layering a two-way spanning cycle with random one-way chords.
func randomConnectedGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddNode(geom.Point{X: rng.Float64() * 2, Y: rng.Float64() * 2})
	}
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		a, b := NodeID(perm[i]), NodeID(perm[(i+1)%n])
		w := geom.Dist(g.Node(a).Pos, g.Node(b).Pos)
		if w == 0 {
			w = 0.01
		}
		g.AddTwoWay(a, b, w)
	}
	chords := rng.Intn(2 * n)
	for c := 0; c < chords; c++ {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		w := geom.Dist(g.Node(a).Pos, g.Node(b).Pos)
		if w == 0 {
			w = 0.01
		}
		g.AddEdge(a, b, w*(1+rng.Float64()))
	}
	return g
}

func TestTravelDistTriangleProperty(t *testing.T) {
	// d_G is a quasi-metric over locations: d(p,q) ≤ d(p,m) + d(m,q).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 4+rng.Intn(6))
		m := g.AllPairs()
		nd := m.Dist
		p := RandomLocation(rng, g)
		q := RandomLocation(rng, g)
		mid := RandomLocation(rng, g)
		return TravelDist(g, nd, p, q) <= TravelDist(g, nd, p, mid)+TravelDist(g, nd, mid, q)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTravelDistSelfZeroProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 3+rng.Intn(5))
		m := g.AllPairs()
		p := RandomLocation(rng, g)
		return TravelDist(g, m.Dist, p, p) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTravelDistNonNegativeFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 3+rng.Intn(6))
		m := g.AllPairs()
		for trial := 0; trial < 20; trial++ {
			p := RandomLocation(rng, g)
			q := RandomLocation(rng, g)
			d := TravelDist(g, m.Dist, p, q)
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSPTDistancesDominatedByEdges(t *testing.T) {
	// For every edge (u,v): dist[v] ≤ dist[u] + w (Bellman condition).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 4+rng.Intn(8))
		src := NodeID(rng.Intn(g.NumNodes()))
		spt := g.ShortestPathTree(src)
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edge(EdgeID(e))
			if spt.Dist[ed.To] > spt.Dist[ed.From]+ed.Weight+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNearestLocationIsNearestProperty(t *testing.T) {
	f := func(seed int64, px, py int16) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 4+rng.Intn(5))
		p := geom.Point{X: float64(px) / 1000, Y: float64(py) / 1000}
		loc := g.NearestLocation(p)
		if !loc.Valid(g) {
			return false
		}
		best := geom.Dist(loc.Point(g), p)
		// No sampled on-network point may be closer than the snap.
		for e := 0; e < g.NumEdges(); e++ {
			w := g.Edge(EdgeID(e)).Weight
			for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
				cand := LocationFromStart(g, EdgeID(e), frac*w)
				if geom.Dist(cand.Point(g), p) < best-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

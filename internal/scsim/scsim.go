// Package scsim simulates the paper's Section-2 spatial-crowdsourcing
// framework end to end: available workers upload (obfuscated) locations
// before each assignment snapshot, the server matches pending tasks to
// workers by estimated travel cost, matched workers turn occupied, drive
// to the task, complete it and become available again at the task's
// location. The simulation measures what the obfuscation actually costs
// the platform — assignment quality, travel overhead, task latency.
package scsim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/roadnet"
)

// WorkerState is the paper's worker lifecycle.
type WorkerState int

// Worker states (Section 2): available workers participate in
// assignment; occupied workers are en route to or serving a task.
const (
	Available WorkerState = iota
	Occupied
)

// Worker is one vehicle worker.
type Worker struct {
	ID    int
	Loc   roadnet.Location
	State WorkerState
	// doneAt is the simulation time the current task completes.
	doneAt float64
	// task is the index of the task being served, -1 when available.
	task int
}

// Task is one spatial task.
type Task struct {
	ID       int
	Loc      roadnet.Location
	Arrived  float64
	Assigned float64 // 0 until assignment
	Done     float64 // 0 until completion
	Worker   int     // -1 until assignment
}

// Config parameterises the simulation.
type Config struct {
	// Workers is the fleet size.
	Workers int
	// TaskRate is the Poisson arrival rate (tasks per second).
	TaskRate float64
	// SnapshotEvery is the seconds between assignment snapshots
	// (workers upload locations once per snapshot, per the framework).
	SnapshotEvery float64
	// Duration is the simulated span in seconds.
	Duration float64
	// SpeedKmh is the travel speed of occupied workers.
	SpeedKmh float64
	// ServiceTime is the on-site seconds a task takes after arrival.
	ServiceTime float64
	// Mechanism obfuscates the workers' reports; nil reports the truth.
	Mechanism *core.Mechanism
}

// Metrics summarises one run.
type Metrics struct {
	TasksArrived   int
	TasksAssigned  int
	TasksCompleted int
	// MeanWait is the mean seconds from task arrival to assignment.
	MeanWait float64
	// MeanTravel is the mean true travel distance (km) of the assigned
	// worker to the task.
	MeanTravel float64
	// AssignmentRegret is the mean extra true travel distance per
	// snapshot versus the assignment the server would have chosen with
	// exact locations — the platform-level price of obfuscation.
	AssignmentRegret float64
	snapshots        int
}

// Run executes the simulation.
func Run(rng *rand.Rand, part *discretize.Partition, cfg Config) (*Metrics, error) {
	if cfg.Workers <= 0 || cfg.Duration <= 0 || cfg.SnapshotEvery <= 0 {
		return nil, fmt.Errorf("scsim: invalid config %+v", cfg)
	}
	if cfg.SpeedKmh <= 0 {
		return nil, fmt.Errorf("scsim: non-positive speed")
	}
	if cfg.Mechanism != nil && cfg.Mechanism.Part != part {
		return nil, fmt.Errorf("scsim: mechanism was solved on a different partition")
	}
	g := part.G
	speed := cfg.SpeedKmh / 3600 // km/s

	workers := make([]*Worker, cfg.Workers)
	for i := range workers {
		workers[i] = &Worker{ID: i, Loc: roadnet.RandomLocation(rng, g), task: -1}
	}
	var tasks []*Task
	var pending []int // indices of unassigned tasks

	m := &Metrics{}
	var waitSum, travelSum float64

	for now := 0.0; now < cfg.Duration; now += cfg.SnapshotEvery {
		// Complete due tasks.
		for _, w := range workers {
			if w.State == Occupied && w.doneAt <= now {
				t := tasks[w.task]
				t.Done = w.doneAt
				w.Loc = t.Loc
				w.State = Available
				w.task = -1
				m.TasksCompleted++
			}
		}

		// Poisson arrivals during the last interval.
		arrivals := poisson(rng, cfg.TaskRate*cfg.SnapshotEvery)
		for a := 0; a < arrivals; a++ {
			t := &Task{
				ID:      len(tasks),
				Loc:     roadnet.RandomLocation(rng, g),
				Arrived: now,
				Worker:  -1,
			}
			tasks = append(tasks, t)
			pending = append(pending, t.ID)
			m.TasksArrived++
		}

		// Snapshot assignment: available workers report; server matches
		// pending tasks (rows) to reported workers (columns).
		var avail []*Worker
		for _, w := range workers {
			if w.State == Available {
				avail = append(avail, w)
			}
		}
		if len(avail) == 0 || len(pending) == 0 {
			continue
		}
		nAssign := len(pending)
		if nAssign > len(avail) {
			nAssign = len(avail)
		}
		batch := pending[:nAssign]

		reported := make([]roadnet.Location, len(avail))
		for i, w := range avail {
			if cfg.Mechanism != nil {
				reported[i] = cfg.Mechanism.Sample(rng, w.Loc)
			} else {
				reported[i] = w.Loc
			}
		}
		est := make([][]float64, nAssign)
		truth := make([][]float64, nAssign)
		for ti, taskID := range batch {
			est[ti] = make([]float64, len(avail))
			truth[ti] = make([]float64, len(avail))
			for wi, w := range avail {
				est[ti][wi] = part.TravelDistLoc(reported[wi], tasks[taskID].Loc)
				truth[ti][wi] = part.TravelDistLoc(w.Loc, tasks[taskID].Loc)
			}
		}
		match, _, err := assign.Hungarian(est)
		if err != nil {
			return nil, err
		}
		_, idealTotal, err := assign.Hungarian(truth)
		if err != nil {
			return nil, err
		}

		actualTotal := 0.0
		for ti, wi := range match {
			w := avail[wi]
			t := tasks[batch[ti]]
			d := truth[ti][wi]
			actualTotal += d
			t.Assigned = now
			t.Worker = w.ID
			w.State = Occupied
			w.task = t.ID
			w.doneAt = now + d/speed + cfg.ServiceTime
			waitSum += now - t.Arrived
			travelSum += d
			m.TasksAssigned++
		}
		m.AssignmentRegret += actualTotal - idealTotal
		m.snapshots++
		pending = pending[nAssign:]
	}

	if m.TasksAssigned > 0 {
		m.MeanWait = waitSum / float64(m.TasksAssigned)
		m.MeanTravel = travelSum / float64(m.TasksAssigned)
	}
	if m.snapshots > 0 {
		m.AssignmentRegret /= float64(m.snapshots)
	}
	return m, nil
}

// poisson draws from Poisson(lambda) by inversion (small lambda).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // lambda absurdly large; avoid spinning
		}
	}
}

package scsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/roadnet"
)

func simSetup(t *testing.T) (*discretize.Partition, *core.Mechanism) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g := roadnet.Grid(rng, roadnet.GridConfig{
		Rows: 3, Cols: 3, Spacing: 0.3, OneWayFrac: 0.4, WeightJitter: 0.15,
	})
	part, err := discretize.New(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := core.NewProblem(part, core.Config{Epsilon: 5})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.SolveCG(pr, core.CGOptions{Xi: -0.1, RelGap: 0.1, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	return part, sol.Mechanism
}

func baseConfig() Config {
	return Config{
		Workers:       8,
		TaskRate:      1.0 / 60,
		SnapshotEvery: 30,
		Duration:      3600,
		SpeedKmh:      30,
		ServiceTime:   60,
	}
}

func TestRunValidation(t *testing.T) {
	part, _ := simSetup(t)
	rng := rand.New(rand.NewSource(2))
	if _, err := Run(rng, part, Config{}); err == nil {
		t.Fatal("accepted zero config")
	}
	cfg := baseConfig()
	cfg.SpeedKmh = 0
	if _, err := Run(rng, part, cfg); err == nil {
		t.Fatal("accepted zero speed")
	}
}

func TestRunConservation(t *testing.T) {
	part, mech := simSetup(t)
	rng := rand.New(rand.NewSource(3))
	cfg := baseConfig()
	cfg.Mechanism = mech
	m, err := Run(rng, part, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.TasksArrived == 0 {
		t.Fatal("no tasks arrived in an hour")
	}
	if m.TasksAssigned > m.TasksArrived {
		t.Fatalf("assigned %d > arrived %d", m.TasksAssigned, m.TasksArrived)
	}
	if m.TasksCompleted > m.TasksAssigned {
		t.Fatalf("completed %d > assigned %d", m.TasksCompleted, m.TasksAssigned)
	}
	if m.TasksAssigned > 0 && (m.MeanWait < 0 || m.MeanTravel <= 0) {
		t.Fatalf("implausible metrics: %+v", m)
	}
	if m.AssignmentRegret < -1e-9 {
		t.Fatalf("negative regret %v: obfuscated assignment cannot beat exact", m.AssignmentRegret)
	}
}

func TestObfuscationCostsThePlatform(t *testing.T) {
	part, mech := simSetup(t)
	cfg := baseConfig()
	cfg.Duration = 2 * 3600

	run := func(m *core.Mechanism, seed int64) *Metrics {
		rng := rand.New(rand.NewSource(seed))
		c := cfg
		c.Mechanism = m
		out, err := Run(rng, part, c)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// Average over a few seeds to stabilise the comparison.
	var exact, obf float64
	for seed := int64(10); seed < 16; seed++ {
		exact += run(nil, seed).AssignmentRegret
		obf += run(mech, seed).AssignmentRegret
	}
	if exact > 1e-9 {
		t.Fatalf("exact reporting has nonzero regret %v", exact)
	}
	if obf <= 0 {
		t.Fatalf("obfuscation shows no assignment regret (%v); suspicious", obf)
	}
}

func TestMechanismPartitionMismatchRejected(t *testing.T) {
	part, mech := simSetup(t)
	rng := rand.New(rand.NewSource(5))
	other, err := discretize.New(part.G, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.Mechanism = mech
	if _, err := Run(rng, other, cfg); err == nil {
		t.Fatal("accepted mechanism from a different partition")
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const lambda = 3.0
	n := 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-lambda) > 0.1 {
		t.Fatalf("poisson mean %v, want ≈ %v", mean, lambda)
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("poisson(0) must be 0")
	}
}

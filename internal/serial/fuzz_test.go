package serial

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/roadnet"
)

// seedNetworkJSON renders networks the way cmd/vlpgen does (indented
// WriteJSON), so the fuzz corpus starts from real wire files.
func seedNetworkJSON(tb testing.TB, g *roadnet.Graph) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, FromGraph(g)); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func seedGraphs() []*roadnet.Graph {
	rng := rand.New(rand.NewSource(7))
	return []*roadnet.Graph{
		roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3}),
		roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 3, Spacing: 0.25, OneWayFrac: 0.5, WeightJitter: 0.1}),
		roadnet.Campus(rng),
	}
}

// FuzzNetworkRoundTrip checks that decoding a road network from
// arbitrary JSON never panics, and that for every accepted network
// decode→encode→decode is stable (the encoding is a fixed point).
func FuzzNetworkRoundTrip(f *testing.F) {
	for _, g := range seedGraphs() {
		f.Add(seedNetworkJSON(f, g))
	}
	f.Add([]byte(`{"nodes":[{"x":0,"y":0}],"edges":[{"from":0,"to":0,"weight":-1}]}`))
	f.Add([]byte(`{"nodes":[],"edges":[{"from":5,"to":-2,"weight":1e308}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var n Network
		if err := json.Unmarshal(data, &n); err != nil {
			t.Skip() // malformed JSON: rejection is the contract
		}
		if len(n.Nodes) > 200 || len(n.Edges) > 800 {
			t.Skip() // keep adversarial blowups out of the time budget
		}
		g, err := n.ToGraph()
		if err != nil {
			return // semantic rejection must be an error, never a panic
		}
		var enc1 bytes.Buffer
		if err := WriteJSON(&enc1, FromGraph(g)); err != nil {
			t.Fatalf("encode accepted network: %v", err)
		}
		var n2 Network
		if err := ReadJSON(bytes.NewReader(enc1.Bytes()), &n2); err != nil {
			t.Fatalf("re-decode own encoding: %v", err)
		}
		g2, err := n2.ToGraph()
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		var enc2 bytes.Buffer
		if err := WriteJSON(&enc2, FromGraph(g2)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatalf("round trip not stable:\nfirst:  %s\nsecond: %s", enc1.Bytes(), enc2.Bytes())
		}
	})
}

// seedMechanismJSON renders a solved-mechanism wire file the way
// cmd/vlpsolve does. The exponential mechanism stands in for a CG solve
// to keep corpus construction fast; the wire format is identical.
func seedMechanismJSON(tb testing.TB, g *roadnet.Graph, delta, eps float64) []byte {
	tb.Helper()
	part, err := discretize.New(g, delta)
	if err != nil {
		tb.Fatal(err)
	}
	pr, err := core.NewProblem(part, core.Config{Epsilon: eps})
	if err != nil {
		tb.Fatal(err)
	}
	m := pr.ExponentialMechanism()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, FromMechanism(m, delta, eps, 0, pr.ETDD(m), 0)); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzMechanismRoundTrip checks that decoding a serialized mechanism
// from arbitrary JSON never panics (malformed deltas, K/Z mismatches and
// broken networks must all surface as errors), and that accepted
// mechanisms re-encode stably.
func FuzzMechanismRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	f.Add(seedMechanismJSON(f, roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3}), 0.3, 5))
	f.Add(seedMechanismJSON(f, roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.4, WeightJitter: 0.2}), 0.2, 2))
	f.Add([]byte(`{"network":{"nodes":[],"edges":[]},"delta":1e-308,"k":3,"z":[1]}`))
	f.Add([]byte(`{"k":-5,"z":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var sm Mechanism
		if err := json.Unmarshal(data, &sm); err != nil {
			t.Skip()
		}
		if sm.K > 64 || len(sm.Z) > 64*64 {
			t.Skip()
		}
		if sm.Network != nil && (len(sm.Network.Nodes) > 100 || len(sm.Network.Edges) > 400) {
			t.Skip()
		}
		m, err := sm.ToMechanism()
		if err != nil {
			return // rejection is fine; panicking or hanging is not
		}
		var enc1 bytes.Buffer
		if err := WriteJSON(&enc1, FromMechanism(m, sm.Delta, sm.Epsilon, sm.Radius, sm.ETDD, sm.Bound)); err != nil {
			t.Fatalf("encode accepted mechanism: %v", err)
		}
		var sm2 Mechanism
		if err := ReadJSON(bytes.NewReader(enc1.Bytes()), &sm2); err != nil {
			t.Fatalf("re-decode own encoding: %v", err)
		}
		m2, err := sm2.ToMechanism()
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if m2.K() != m.K() {
			t.Fatalf("K changed across round trip: %d → %d", m.K(), m2.K())
		}
		for i := range m.Z {
			if m.Z[i] != m2.Z[i] {
				t.Fatalf("Z[%d] changed across round trip: %v → %v", i, m.Z[i], m2.Z[i])
			}
		}
		var enc2 bytes.Buffer
		if err := WriteJSON(&enc2, FromMechanism(m2, sm2.Delta, sm2.Epsilon, sm2.Radius, sm2.ETDD, sm2.Bound)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("mechanism round trip not stable")
		}
	})
}

// FuzzStoreDecode hammers the durable-store snapshot decoders with
// arbitrary bytes: they must never panic or hang — truncated, bit-flipped
// and hostile inputs all surface as errors — and any accepted snapshot
// must re-encode to the identical byte string (decode∘encode is the
// identity on the valid set, so a recovered file can be re-persisted
// without drift).
func FuzzStoreDecode(f *testing.F) {
	entry := storedTestEntry(f, 3)
	entryBytes, err := EncodeStoredEntry(entry)
	if err != nil {
		f.Fatal(err)
	}
	ckBytes, err := EncodeStoredCheckpoint(&StoredCheckpoint{Spec: entry.Spec, Rounds: 3, State: *entry.State})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(entryBytes)
	f.Add(ckBytes)
	f.Add(entryBytes[:len(entryBytes)/2])
	flipped := append([]byte(nil), ckBytes...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("VLPENT1\x00 not really"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip() // keep adversarial blowups out of the time budget
		}
		if e, err := DecodeStoredEntry(data); err == nil {
			re, err := EncodeStoredEntry(e)
			if err != nil {
				t.Fatalf("decoded entry refuses to re-encode: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatal("entry decode∘encode is not the identity")
			}
		}
		if c, err := DecodeStoredCheckpoint(data); err == nil {
			re, err := EncodeStoredCheckpoint(c)
			if err != nil {
				t.Fatalf("decoded checkpoint refuses to re-encode: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatal("checkpoint decode∘encode is not the identity")
			}
		}
	})
}

package serial

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/lp"
	"repro/internal/roadnet"
)

// TestPresolveInvariantMechanismDigest is the CI gate for the LP
// presolve layer: presolve is a solver-internal transformation and must
// never change a served mechanism. Both column-generation LP shapes
// (the stabilized master and the pricing duals) are irreducible, so
// Presolve takes its zero-reduction fast path and the solve must be
// bit-for-bit identical with the pass disabled — the gate compares the
// SHA-256 of the serialized wire form, which is exactly what a vlpserved
// store entry holds.
func TestPresolveInvariantMechanismDigest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 3, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.2})
	const delta, eps = 0.3, 4.0
	part, err := discretize.New(g, delta)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := core.NewProblem(part, core.Config{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}

	solve := func(noPresolve bool) []byte {
		t.Helper()
		// ColdRestart + Sequential: every LP goes through the
		// Solve/SolveIPM entry points (where presolve is wired in) in a
		// deterministic order, so any byte drift is attributable to the
		// presolve flag alone.
		res, err := core.SolveCG(pr, core.CGOptions{
			Xi:          0,
			ColdRestart: true,
			Sequential:  true,
			LP:          lp.Options{NoPresolve: noPresolve},
		})
		if err != nil {
			t.Fatalf("SolveCG(NoPresolve=%v): %v", noPresolve, err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, FromMechanism(res.Mechanism, delta, eps, 0, res.ETDD, res.LowerBound)); err != nil {
			t.Fatalf("WriteJSON(NoPresolve=%v): %v", noPresolve, err)
		}
		return buf.Bytes()
	}

	withPresolve := solve(false)
	withoutPresolve := solve(true)
	dw := sha256.Sum256(withPresolve)
	dwo := sha256.Sum256(withoutPresolve)
	if dw != dwo {
		t.Fatalf("presolve changed the served mechanism digest:\n  with:    %s\n  without: %s",
			hex.EncodeToString(dw[:]), hex.EncodeToString(dwo[:]))
	}
}

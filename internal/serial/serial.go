// Package serial provides the JSON wire formats of the command-line
// tools: road networks, priors and solved obfuscation mechanisms.
package serial

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/geom"
	"repro/internal/roadnet"
)

// Node is a road connection.
type Node struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Edge is a directed road segment.
type Edge struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Weight float64 `json:"weight"`
}

// Network is a serialised road network.
type Network struct {
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
}

// FromGraph converts a graph to its wire format.
func FromGraph(g *roadnet.Graph) *Network {
	n := &Network{
		Nodes: make([]Node, g.NumNodes()),
		Edges: make([]Edge, g.NumEdges()),
	}
	for i := 0; i < g.NumNodes(); i++ {
		p := g.Node(roadnet.NodeID(i)).Pos
		n.Nodes[i] = Node{X: p.X, Y: p.Y}
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(roadnet.EdgeID(i))
		n.Edges[i] = Edge{From: int(e.From), To: int(e.To), Weight: e.Weight}
	}
	return n
}

// ToGraph reconstructs the graph and validates it.
func (n *Network) ToGraph() (*roadnet.Graph, error) {
	g := roadnet.NewGraph()
	for _, nd := range n.Nodes {
		g.AddNode(geom.Point{X: nd.X, Y: nd.Y})
	}
	for i, e := range n.Edges {
		if e.From < 0 || e.From >= len(n.Nodes) || e.To < 0 || e.To >= len(n.Nodes) {
			return nil, fmt.Errorf("serial: edge %d references missing node", i)
		}
		if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
			return nil, fmt.Errorf("serial: edge %d has non-finite weight %v", i, e.Weight)
		}
		// AddEdge panics on a zero-length edge with no explicit weight;
		// wire input must get an error instead.
		if e.Weight <= 0 && n.Nodes[e.From] == n.Nodes[e.To] {
			return nil, fmt.Errorf("serial: edge %d is zero-length with no explicit weight", i)
		}
		g.AddEdge(roadnet.NodeID(e.From), roadnet.NodeID(e.To), e.Weight)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Mechanism is a serialised obfuscation mechanism together with the
// network and discretisation it was solved on.
type Mechanism struct {
	Network *Network  `json:"network"`
	Delta   float64   `json:"delta"`
	Epsilon float64   `json:"epsilon"`
	Radius  float64   `json:"radius"`
	K       int       `json:"k"`
	Z       []float64 `json:"z"` // K×K row-major
	ETDD    float64   `json:"etdd"`
	Bound   float64   `json:"lower_bound"`
}

// FromMechanism packages a solved mechanism.
func FromMechanism(m *core.Mechanism, delta, eps, radius, etdd, bound float64) *Mechanism {
	return &Mechanism{
		Network: FromGraph(m.Part.G),
		Delta:   delta,
		Epsilon: eps,
		Radius:  radius,
		K:       m.K(),
		Z:       m.Z,
		ETDD:    etdd,
		Bound:   bound,
	}
}

// ToMechanism reconstructs the mechanism (re-deriving the partition).
func (s *Mechanism) ToMechanism() (*core.Mechanism, error) {
	// Shape checks come first: they are cheap, and rejecting a malformed
	// K/Z pair before deriving the partition keeps adversarial wire input
	// (fuzzed K values, absurd deltas) from triggering expensive work.
	if s.K < 1 || s.K > maxWireK {
		return nil, fmt.Errorf("serial: mechanism K = %d out of range [1, %d]", s.K, maxWireK)
	}
	if len(s.Z) != s.K*s.K {
		return nil, fmt.Errorf("serial: Z has %d entries, want %d", len(s.Z), s.K*s.K)
	}
	if s.Network == nil {
		return nil, fmt.Errorf("serial: mechanism has no network")
	}
	g, err := s.Network.ToGraph()
	if err != nil {
		return nil, err
	}
	part, err := discretize.New(g, s.Delta)
	if err != nil {
		return nil, err
	}
	if part.K() != s.K {
		return nil, fmt.Errorf("serial: partition has %d intervals, mechanism was solved with %d", part.K(), s.K)
	}
	m := &core.Mechanism{Part: part, Z: s.Z}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteJSON writes v as indented JSON.
func WriteJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(v)
}

// ReadJSON decodes JSON into v.
func ReadJSON(r io.Reader, v interface{}) error {
	return json.NewDecoder(r).Decode(v)
}

package serial

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/roadnet"
)

func TestGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 3, Cols: 3, Spacing: 0.3, OneWayFrac: 0.5, WeightJitter: 0.2})

	var buf bytes.Buffer
	if err := WriteJSON(&buf, FromGraph(g)); err != nil {
		t.Fatal(err)
	}
	var n Network
	if err := ReadJSON(&buf, &n); err != nil {
		t.Fatal(err)
	}
	g2, err := n.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(roadnet.EdgeID(i)), g2.Edge(roadnet.EdgeID(i))
		if a.From != b.From || a.To != b.To || math.Abs(a.Weight-b.Weight) > 1e-12 {
			t.Fatalf("edge %d changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestToGraphRejectsBadEdges(t *testing.T) {
	n := &Network{
		Nodes: []Node{{0, 0}, {1, 0}},
		Edges: []Edge{{From: 0, To: 5, Weight: 1}},
	}
	if _, err := n.ToGraph(); err == nil {
		t.Fatal("accepted edge to missing node")
	}
}

func TestMechanismRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3, OneWayFrac: 0.5})
	part, err := discretize.New(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := core.NewProblem(part, core.Config{Epsilon: 4})
	if err != nil {
		t.Fatal(err)
	}
	mech := pr.ExponentialMechanism()

	var buf bytes.Buffer
	if err := WriteJSON(&buf, FromMechanism(mech, 0.3, 4, 0, 0.1, 0.05)); err != nil {
		t.Fatal(err)
	}
	var s Mechanism
	if err := ReadJSON(&buf, &s); err != nil {
		t.Fatal(err)
	}
	m2, err := s.ToMechanism()
	if err != nil {
		t.Fatal(err)
	}
	if m2.K() != mech.K() {
		t.Fatalf("K changed: %d vs %d", m2.K(), mech.K())
	}
	for i := range mech.Z {
		if math.Abs(m2.Z[i]-mech.Z[i]) > 1e-12 {
			t.Fatalf("Z[%d] changed", i)
		}
	}
}

func TestMechanismRejectsWrongShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3})
	s := &Mechanism{Network: FromGraph(g), Delta: 0.3, K: 3, Z: []float64{1}}
	if _, err := s.ToMechanism(); err == nil {
		t.Fatal("accepted wrong-shaped mechanism")
	}
}

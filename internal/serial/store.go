package serial

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"math"
)

// Binary snapshot encoding for the durable mechanism store
// (internal/store). Snapshots are what survives a crash, so the format is
// deliberately paranoid:
//
//   - versioned: an 8-byte magic carries the format revision; unknown
//     revisions are rejected, never guessed at;
//   - checksummed: the last 32 bytes are the SHA-256 of everything before
//     them, so a torn write or a flipped bit is detected before any field
//     is trusted;
//   - strictly validated: after the checksum passes, every decoded value
//     is range-checked (finite, probabilities in rows summing to 1, K
//     within the wire cap, CG columns inside the unit box) — the decoder
//     returns errors, never panics, on truncated or hostile input;
//   - self-describing: the full SolveSpec is embedded, so a snapshot can
//     be re-keyed, re-verified against its file name's digest, and turned
//     back into a servable mechanism with no out-of-band context.
//
// The payload uses fixed-width big-endian integers and IEEE-754 bit
// patterns, mirroring the canonical encoding SolveSpec.Digest hashes.

// Snapshot format magics; the trailing digit is the format revision.
// Revision 2 added the fencing token stamped by the shared-store lease
// protocol; revision-1 files are rejected (and therefore quarantined by
// the store), costing at most a cold re-solve.
const (
	entryMagic      = "VLPENT2\x00"
	checkpointMagic = "VLPCKP2\x00"
)

// maxStoredColumns bounds the CG column pool a snapshot may carry;
// generous (the solver admits at most a handful of columns per block per
// round) while keeping hostile inputs from requesting huge allocations.
const maxStoredColumns = 1 << 22

// StoredState is the wire form of a column-generation state snapshot
// (core.CGStateSnapshot mirrors it field for field; serial cannot import
// core both ways, so the shapes are kept in sync by the store layer).
type StoredState struct {
	K    int
	Cols []StoredColumn
}

// StoredColumn is one pooled extreme point of polyhedron Λ_l.
type StoredColumn struct {
	L    int
	Z    []float64
	Cost float64
}

// StoredEntry is a durable snapshot of one completed (possibly degraded)
// cache entry: the spec that keys it, the served mechanism and its
// quality metadata, plus — on degraded tiers — the interrupted run's
// resumable column pool.
type StoredEntry struct {
	Spec  SolveSpec
	Tier  string // one of the Quality* constants
	ETDD  float64
	Bound float64
	K     int
	Z     []float64 // K×K row-major, post-EnforceGeoI
	// Fence is the lease fencing token the writer held when it committed
	// this snapshot (0 for a single-process store with no lease). The
	// store layer stamps it; forensics on a quarantined snapshot can then
	// attribute the write to a leadership term.
	Fence uint64
	// State is the degraded entry's resumable pool (nil on the optimal
	// tier), so an upgrade re-solve still starts warm after a restart.
	State *StoredState
}

// StoredCheckpoint is a durable mid-solve snapshot: the spec being
// solved and the column pool as of Rounds completed CG rounds. A process
// killed mid-solve resumes from the latest checkpoint via
// core.CGOptions.Resume instead of starting over.
type StoredCheckpoint struct {
	Spec   SolveSpec
	Rounds int
	// Fence mirrors StoredEntry.Fence for mid-solve checkpoints.
	Fence uint64
	State StoredState
}

// Validate applies the full decode-side checks; Decode* call it, and
// writers call it before encoding so a corrupt snapshot is never
// committed in the first place.
func (e *StoredEntry) Validate() error {
	if err := e.Spec.Validate(); err != nil {
		return fmt.Errorf("stored entry spec: %w", err)
	}
	switch e.Tier {
	case QualityOptimal, QualityIncumbent, QualityFallback:
	default:
		return fmt.Errorf("stored entry has unknown tier %q", e.Tier)
	}
	if !finite(e.ETDD) || e.ETDD < 0 {
		return fmt.Errorf("stored entry has ETDD %v", e.ETDD)
	}
	if !finite(e.Bound) || e.Bound < 0 {
		return fmt.Errorf("stored entry has lower bound %v", e.Bound)
	}
	if e.K < 1 || e.K > maxWireK {
		return fmt.Errorf("stored entry K = %d out of range [1, %d]", e.K, maxWireK)
	}
	if len(e.Z) != e.K*e.K {
		return fmt.Errorf("stored entry Z has %d entries, want %d", len(e.Z), e.K*e.K)
	}
	for i := 0; i < e.K; i++ {
		sum := 0.0
		for l := 0; l < e.K; l++ {
			v := e.Z[i*e.K+l]
			if !finite(v) || v < 0 {
				return fmt.Errorf("stored entry Z[%d,%d] = %v is not a probability", i, l, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("stored entry row %d sums to %v, want 1", i, sum)
		}
	}
	if e.State != nil {
		if err := e.State.validate(); err != nil {
			return err
		}
		if e.State.K != e.K {
			return fmt.Errorf("stored entry state K = %d, mechanism K = %d", e.State.K, e.K)
		}
	}
	return nil
}

// Validate applies the full decode-side checks to a checkpoint.
func (c *StoredCheckpoint) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return fmt.Errorf("stored checkpoint spec: %w", err)
	}
	if c.Rounds < 0 {
		return fmt.Errorf("stored checkpoint has %d rounds", c.Rounds)
	}
	return c.State.validate()
}

func (st *StoredState) validate() error {
	if st.K < 1 || st.K > maxWireK {
		return fmt.Errorf("stored CG state K = %d out of range [1, %d]", st.K, maxWireK)
	}
	if len(st.Cols) == 0 {
		return fmt.Errorf("stored CG state has no columns")
	}
	for i, c := range st.Cols {
		if c.L < 0 || c.L >= st.K {
			return fmt.Errorf("stored CG column %d has L = %d outside [0, %d)", i, c.L, st.K)
		}
		if len(c.Z) != st.K {
			return fmt.Errorf("stored CG column %d has %d entries, want %d", i, len(c.Z), st.K)
		}
		for j, v := range c.Z {
			if !finite(v) || v < 0 || v > 1 {
				return fmt.Errorf("stored CG column %d entry %d = %v outside [0, 1]", i, j, v)
			}
		}
		if !finite(c.Cost) || c.Cost < 0 {
			return fmt.Errorf("stored CG column %d has cost %v", i, c.Cost)
		}
	}
	return nil
}

// EncodeStoredEntry renders a validated entry snapshot, checksum
// included. Encoding an invalid entry is a programming error surfaced as
// an error, not a corrupt file.
func EncodeStoredEntry(e *StoredEntry) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("serial: refusing to encode: %w", err)
	}
	w := newSnapWriter(entryMagic)
	w.spec(&e.Spec)
	w.u64(uint64(tierCode(e.Tier)))
	w.u64(e.Fence)
	w.f64(e.ETDD)
	w.f64(e.Bound)
	w.u64(uint64(e.K))
	w.f64s(e.Z)
	if e.State == nil {
		w.u64(0)
	} else {
		w.u64(1)
		w.state(e.State)
	}
	return w.seal(), nil
}

// DecodeStoredEntry parses and fully validates an entry snapshot. Any
// truncation, bit flip, version mismatch or out-of-range field is an
// error; the function never panics on hostile input.
func DecodeStoredEntry(data []byte) (*StoredEntry, error) {
	r, err := openSnap(data, entryMagic)
	if err != nil {
		return nil, err
	}
	var e StoredEntry
	if err := r.spec(&e.Spec); err != nil {
		return nil, err
	}
	tier, err := r.u64()
	if err != nil {
		return nil, err
	}
	if e.Tier, err = tierName(tier); err != nil {
		return nil, err
	}
	if e.Fence, err = r.u64(); err != nil {
		return nil, err
	}
	if e.ETDD, err = r.f64(); err != nil {
		return nil, err
	}
	if e.Bound, err = r.f64(); err != nil {
		return nil, err
	}
	k, err := r.count(maxWireK)
	if err != nil {
		return nil, err
	}
	e.K = k
	n, err := r.count(k * k)
	if err != nil {
		return nil, err
	}
	if n != k*k {
		return nil, corruptf("Z length %d, want %d", n, k*k)
	}
	if e.Z, err = r.f64s(n); err != nil {
		return nil, err
	}
	hasState, err := r.u64()
	if err != nil {
		return nil, err
	}
	switch hasState {
	case 0:
	case 1:
		e.State = &StoredState{}
		if err := r.state(e.State); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("serial: stored entry state flag %d", hasState)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("serial: %w", err)
	}
	return &e, nil
}

// EncodeStoredCheckpoint renders a validated checkpoint snapshot.
func EncodeStoredCheckpoint(c *StoredCheckpoint) ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("serial: refusing to encode: %w", err)
	}
	w := newSnapWriter(checkpointMagic)
	w.spec(&c.Spec)
	w.u64(uint64(c.Rounds))
	w.u64(c.Fence)
	w.state(&c.State)
	return w.seal(), nil
}

// DecodeStoredCheckpoint parses and fully validates a checkpoint
// snapshot; same hostile-input contract as DecodeStoredEntry.
func DecodeStoredCheckpoint(data []byte) (*StoredCheckpoint, error) {
	r, err := openSnap(data, checkpointMagic)
	if err != nil {
		return nil, err
	}
	var c StoredCheckpoint
	if err := r.spec(&c.Spec); err != nil {
		return nil, err
	}
	rounds, err := r.u64()
	if err != nil {
		return nil, err
	}
	if rounds > 1<<30 {
		return nil, corruptf("checkpoint rounds %d", rounds)
	}
	c.Rounds = int(rounds)
	if c.Fence, err = r.u64(); err != nil {
		return nil, err
	}
	if err := r.state(&c.State); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("serial: %w", err)
	}
	return &c, nil
}

func tierCode(tier string) int {
	switch tier {
	case QualityOptimal:
		return 0
	case QualityIncumbent:
		return 1
	default:
		return 2
	}
}

func tierName(code uint64) (string, error) {
	switch code {
	case 0:
		return QualityOptimal, nil
	case 1:
		return QualityIncumbent, nil
	case 2:
		return QualityFallback, nil
	default:
		return "", fmt.Errorf("serial: unknown stored tier code %d", code)
	}
}

// snapWriter accumulates the snapshot body; seal appends the checksum.
type snapWriter struct {
	buf []byte
}

func newSnapWriter(magic string) *snapWriter {
	w := &snapWriter{buf: make([]byte, 0, 1024)}
	w.buf = append(w.buf, magic...)
	return w
}

func (w *snapWriter) u64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

func (w *snapWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *snapWriter) f64s(vs []float64) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.f64(v)
	}
}

func (w *snapWriter) spec(s *SolveSpec) {
	w.u64(uint64(len(s.Network.Nodes)))
	for _, n := range s.Network.Nodes {
		w.f64(n.X)
		w.f64(n.Y)
	}
	w.u64(uint64(len(s.Network.Edges)))
	for _, e := range s.Network.Edges {
		w.u64(uint64(int64(e.From)))
		w.u64(uint64(int64(e.To)))
		w.f64(e.Weight)
	}
	w.f64(s.Delta)
	w.f64(s.Epsilon)
	w.f64(s.Radius)
	w.f64s(s.Prior)
	w.f64s(s.TaskPrior)
	if s.Exact {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w *snapWriter) state(st *StoredState) {
	w.u64(uint64(st.K))
	w.u64(uint64(len(st.Cols)))
	for _, c := range st.Cols {
		w.u64(uint64(c.L))
		for _, v := range c.Z {
			w.f64(v)
		}
		w.f64(c.Cost)
	}
}

// seal appends the SHA-256 of everything written so far.
func (w *snapWriter) seal() []byte {
	sum := sha256.Sum256(w.buf)
	return append(w.buf, sum[:]...)
}

// corruptf builds a decode failure with the uniform corrupt-snapshot
// prefix the store layer keys quarantine decisions on.
func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("serial: corrupt snapshot: "+format, args...)
}

// snapReader walks the checksum-verified body with bounds checks on
// every read; all methods return errors rather than panicking.
type snapReader struct {
	buf []byte
	off int
}

// openSnap verifies length, magic and checksum, returning a reader over
// the payload (magic excluded, checksum stripped).
func openSnap(data []byte, magic string) (*snapReader, error) {
	if len(data) < len(magic)+sha256.Size {
		return nil, corruptf("%d bytes is shorter than header + checksum", len(data))
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	want := sha256.Sum256(body)
	if subtle.ConstantTimeCompare(sum, want[:]) != 1 {
		return nil, corruptf("checksum mismatch")
	}
	if string(body[:len(magic)]) != magic {
		return nil, corruptf("magic %q, want %q", body[:len(magic)], magic)
	}
	return &snapReader{buf: body, off: len(magic)}, nil
}

func (r *snapReader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, corruptf("truncated at offset %d", r.off)
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *snapReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

// count reads a u64 used as a length or index and bounds it both by max
// and by the bytes actually remaining (8 bytes per element at minimum),
// so hostile lengths cannot drive huge allocations.
func (r *snapReader) count(max int) (int, error) {
	v, err := r.u64()
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, corruptf("count %d exceeds cap %d", v, max)
	}
	if v > uint64(len(r.buf)-r.off)/8+1 {
		return 0, corruptf("count %d exceeds remaining payload", v)
	}
	return int(v), nil
}

func (r *snapReader) f64s(n int) ([]float64, error) {
	if n > (len(r.buf)-r.off)/8 {
		return nil, corruptf("%d floats exceed remaining payload", n)
	}
	vs := make([]float64, n)
	for i := range vs {
		v, err := r.f64()
		if err != nil {
			return nil, err
		}
		vs[i] = v
	}
	return vs, nil
}

func (r *snapReader) f64Slice() ([]float64, error) {
	n, err := r.count(maxWireK)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	return r.f64s(n)
}

func (r *snapReader) spec(s *SolveSpec) error {
	nNodes, err := r.count(maxWireK)
	if err != nil {
		return err
	}
	net := &Network{Nodes: make([]Node, nNodes)}
	for i := range net.Nodes {
		if net.Nodes[i].X, err = r.f64(); err != nil {
			return err
		}
		if net.Nodes[i].Y, err = r.f64(); err != nil {
			return err
		}
	}
	nEdges, err := r.count(maxWireK)
	if err != nil {
		return err
	}
	net.Edges = make([]Edge, nEdges)
	for i := range net.Edges {
		from, err := r.u64()
		if err != nil {
			return err
		}
		to, err := r.u64()
		if err != nil {
			return err
		}
		net.Edges[i].From = int(int64(from))
		net.Edges[i].To = int(int64(to))
		if net.Edges[i].Weight, err = r.f64(); err != nil {
			return err
		}
	}
	s.Network = net
	if s.Delta, err = r.f64(); err != nil {
		return err
	}
	if s.Epsilon, err = r.f64(); err != nil {
		return err
	}
	if s.Radius, err = r.f64(); err != nil {
		return err
	}
	if s.Prior, err = r.f64Slice(); err != nil {
		return err
	}
	if s.TaskPrior, err = r.f64Slice(); err != nil {
		return err
	}
	exact, err := r.u64()
	if err != nil {
		return err
	}
	switch exact {
	case 0:
		s.Exact = false
	case 1:
		s.Exact = true
	default:
		return corruptf("exact flag %d", exact)
	}
	return nil
}

func (r *snapReader) state(st *StoredState) error {
	k, err := r.count(maxWireK)
	if err != nil {
		return err
	}
	st.K = k
	nCols, err := r.count(maxStoredColumns)
	if err != nil {
		return err
	}
	st.Cols = make([]StoredColumn, nCols)
	for i := range st.Cols {
		l, err := r.u64()
		if err != nil {
			return err
		}
		st.Cols[i].L = int(int64(l))
		if st.Cols[i].Z, err = r.f64s(k); err != nil {
			return err
		}
		if st.Cols[i].Cost, err = r.f64(); err != nil {
			return err
		}
	}
	return nil
}

// done asserts the payload was consumed exactly; trailing garbage after
// a valid prefix still fails the decode.
func (r *snapReader) done() error {
	if r.off != len(r.buf) {
		return corruptf("%d unread payload bytes", len(r.buf)-r.off)
	}
	return nil
}

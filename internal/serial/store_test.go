package serial

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
)

// storedTestSpec is a small valid spec shared by the snapshot tests.
func storedTestSpec(tb testing.TB) SolveSpec {
	tb.Helper()
	rng := rand.New(rand.NewSource(21))
	net := FromGraph(roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3}))
	return SolveSpec{Network: net, Delta: 0.3, Epsilon: 5}
}

// storedTestEntry builds a valid degraded entry snapshot (uniform rows,
// one CG column per block) over k intervals.
func storedTestEntry(tb testing.TB, k int) *StoredEntry {
	tb.Helper()
	z := make([]float64, k*k)
	for i := range z {
		z[i] = 1 / float64(k)
	}
	cols := make([]StoredColumn, k)
	for l := range cols {
		zc := make([]float64, k)
		zc[l] = 1
		cols[l] = StoredColumn{L: l, Z: zc, Cost: 0.25}
	}
	return &StoredEntry{
		Spec:  storedTestSpec(tb),
		Tier:  QualityIncumbent,
		ETDD:  0.5,
		Bound: 0.25,
		K:     k,
		Z:     z,
		Fence: 3,
		State: &StoredState{K: k, Cols: cols},
	}
}

func TestStoredEntryRoundTrip(t *testing.T) {
	for _, withState := range []bool{true, false} {
		e := storedTestEntry(t, 3)
		if !withState {
			e.State = nil
			e.Tier = QualityOptimal
		}
		data, err := EncodeStoredEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeStoredEntry(data)
		if err != nil {
			t.Fatalf("withState=%v: %v", withState, err)
		}
		if got.Tier != e.Tier || got.ETDD != e.ETDD || got.Bound != e.Bound || got.K != e.K || got.Fence != e.Fence {
			t.Fatalf("metadata changed: %+v vs %+v", got, e)
		}
		if got.Spec.Digest() != e.Spec.Digest() {
			t.Fatal("spec digest changed across round trip")
		}
		for i := range e.Z {
			if got.Z[i] != e.Z[i] {
				t.Fatalf("Z[%d] changed: %v vs %v", i, got.Z[i], e.Z[i])
			}
		}
		if withState {
			if got.State == nil || got.State.K != e.State.K || len(got.State.Cols) != len(e.State.Cols) {
				t.Fatal("state dropped or reshaped across round trip")
			}
		} else if got.State != nil {
			t.Fatal("state appeared from nowhere")
		}
		// Deterministic: re-encoding the decoded value is byte-identical.
		data2, err := EncodeStoredEntry(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatal("entry encoding is not a fixed point")
		}
	}
}

func TestStoredCheckpointRoundTrip(t *testing.T) {
	e := storedTestEntry(t, 3)
	c := &StoredCheckpoint{Spec: e.Spec, Rounds: 7, Fence: 9, State: *e.State}
	data, err := EncodeStoredCheckpoint(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStoredCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != 7 || got.Spec.Digest() != c.Spec.Digest() || len(got.State.Cols) != len(c.State.Cols) || got.Fence != 9 {
		t.Fatalf("checkpoint changed across round trip: %+v", got)
	}
	data2, err := EncodeStoredCheckpoint(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("checkpoint encoding is not a fixed point")
	}

	// The two snapshot kinds must not decode as each other.
	if _, err := DecodeStoredEntry(data); err == nil {
		t.Fatal("checkpoint decoded as an entry")
	}
	entryData, err := EncodeStoredEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeStoredCheckpoint(entryData); err == nil {
		t.Fatal("entry decoded as a checkpoint")
	}
}

// TestStoredDecodeRejectsCorruption: every byte-level corruption — bit
// flips anywhere, truncation at every length, trailing garbage — must be
// rejected (and must not panic).
func TestStoredDecodeRejectsCorruption(t *testing.T) {
	data, err := EncodeStoredEntry(storedTestEntry(t, 3))
	if err != nil {
		t.Fatal(err)
	}

	// Bit flips: every byte position, one flipped bit.
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 1 << (i % 8)
		if _, err := DecodeStoredEntry(bad); err == nil {
			t.Fatalf("accepted snapshot with bit flip at byte %d", i)
		}
	}
	// Truncations at every length.
	for n := 0; n < len(data); n++ {
		if _, err := DecodeStoredEntry(data[:n]); err == nil {
			t.Fatalf("accepted snapshot truncated to %d bytes", n)
		}
	}
	// Trailing garbage breaks the checksum.
	if _, err := DecodeStoredEntry(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("accepted snapshot with trailing garbage")
	}
}

// TestStoredValidateRejectsBadValues: encode refuses snapshots whose
// fields violate the invariants the decoder would reject, so a corrupt
// snapshot can never be committed by a correct writer.
func TestStoredValidateRejectsBadValues(t *testing.T) {
	cases := map[string]func(*StoredEntry){
		"NaN in Z":          func(e *StoredEntry) { e.Z[0] = math.NaN() },
		"Inf in Z":          func(e *StoredEntry) { e.Z[0] = math.Inf(1) },
		"negative row":      func(e *StoredEntry) { e.Z[0] = -0.5; e.Z[1] += 0.5 },
		"row not summing":   func(e *StoredEntry) { e.Z[0] += 0.5 },
		"bad tier":          func(e *StoredEntry) { e.Tier = "bogus" },
		"negative ETDD":     func(e *StoredEntry) { e.ETDD = -1 },
		"NaN bound":         func(e *StoredEntry) { e.Bound = math.NaN() },
		"K mismatch":        func(e *StoredEntry) { e.K = 2 },
		"state K mismatch":  func(e *StoredEntry) { e.State.K = 2 },
		"state col L":       func(e *StoredEntry) { e.State.Cols[0].L = 99 },
		"state col NaN":     func(e *StoredEntry) { e.State.Cols[0].Z[0] = math.NaN() },
		"state col above 1": func(e *StoredEntry) { e.State.Cols[0].Z[0] = 1.5 },
		"spec epsilon":      func(e *StoredEntry) { e.Spec.Epsilon = -1 },
	}
	for name, mutate := range cases {
		e := storedTestEntry(t, 3)
		mutate(e)
		if _, err := EncodeStoredEntry(e); err == nil {
			t.Errorf("%s: encode accepted an invalid snapshot", name)
		}
	}
}

package serial

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
)

// maxWireK bounds the interval count any wire-level mechanism or solve
// spec may claim; it matches discretize's own partition-size cap.
const maxWireK = 1 << 20

// SolveSpec identifies one obfuscation mechanism: the road network plus
// every parameter that shapes the solved matrix. Two specs with the same
// Digest are guaranteed to describe the same mechanism, which is what the
// serving layer keys its cache on.
type SolveSpec struct {
	Network *Network `json:"network"`
	Delta   float64  `json:"delta"`
	Epsilon float64  `json:"epsilon"`
	Radius  float64  `json:"radius,omitempty"`
	// Prior is the worker prior f_P over intervals; nil means uniform.
	Prior []float64 `json:"prior,omitempty"`
	// TaskPrior is the task prior f_Q; nil falls back to Prior.
	TaskPrior []float64 `json:"task_prior,omitempty"`
	Exact     bool      `json:"exact,omitempty"`
}

// Validate rejects specs the solver cannot accept: a missing or invalid
// network, non-finite or non-positive delta/epsilon, a non-finite radius
// or prior entries that are not probabilities. Full prior normalisation
// is left to the solver (which checks the sum against K).
func (s *SolveSpec) Validate() error {
	if s.Network == nil || len(s.Network.Nodes) == 0 || len(s.Network.Edges) == 0 {
		return fmt.Errorf("serial: solve spec has no network")
	}
	for i, n := range s.Network.Nodes {
		if !finite(n.X) || !finite(n.Y) {
			return fmt.Errorf("serial: node %d has non-finite position", i)
		}
	}
	for i, e := range s.Network.Edges {
		if !finite(e.Weight) {
			return fmt.Errorf("serial: edge %d has non-finite weight", i)
		}
	}
	if !(s.Delta > 0) || !finite(s.Delta) {
		return fmt.Errorf("serial: invalid delta %v", s.Delta)
	}
	if !(s.Epsilon > 0) || !finite(s.Epsilon) {
		return fmt.Errorf("serial: invalid epsilon %v", s.Epsilon)
	}
	if !finite(s.Radius) || s.Radius < 0 {
		return fmt.Errorf("serial: invalid radius %v", s.Radius)
	}
	for name, prior := range map[string][]float64{"prior": s.Prior, "task_prior": s.TaskPrior} {
		if len(prior) > maxWireK {
			return fmt.Errorf("serial: %s has %d entries, cap is %d", name, len(prior), maxWireK)
		}
		for i, p := range prior {
			if !(p >= 0) || !finite(p) {
				return fmt.Errorf("serial: %s[%d] = %v is not a probability", name, i, p)
			}
		}
	}
	return nil
}

// Digest returns a deterministic content digest of the spec: the
// hex-encoded SHA-256 of a canonical binary encoding of the network
// topology and every solve parameter. Equal specs always digest equal;
// the digest is stable across processes and releases of this package
// (the encoding is versioned).
func (s *SolveSpec) Digest() string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	h.Write([]byte("vlp-solve-spec-v1"))
	u64(uint64(len(s.Network.Nodes)))
	for _, n := range s.Network.Nodes {
		f64(n.X)
		f64(n.Y)
	}
	u64(uint64(len(s.Network.Edges)))
	for _, e := range s.Network.Edges {
		u64(uint64(int64(e.From)))
		u64(uint64(int64(e.To)))
		f64(e.Weight)
	}
	f64(s.Delta)
	f64(s.Epsilon)
	f64(s.Radius)
	u64(uint64(len(s.Prior)))
	for _, p := range s.Prior {
		f64(p)
	}
	u64(uint64(len(s.TaskPrior)))
	for _, p := range s.TaskPrior {
		f64(p)
	}
	if s.Exact {
		u64(1)
	} else {
		u64(0)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Quality tiers of a served mechanism, carried on every solve and
// obfuscate response. The privacy guarantee is identical at every tier —
// each served mechanism satisfies the full (ε, r)-Geo-I constraint set —
// only the quality loss (ETDD) degrades down the ladder.
const (
	// QualityOptimal: the column-generation solve completed as
	// configured (within its deadline and stop criteria).
	QualityOptimal = "optimal"
	// QualityIncumbent: the solve was interrupted (deadline, client
	// abandonment or shutdown drain) and the best incumbent of the
	// interrupted run was repaired to exact feasibility and served.
	QualityIncumbent = "incumbent"
	// QualityFallback: the solver failed outright (error, panic or
	// cancellation before a first incumbent existed) and the closed-form
	// ε/2 exponential mechanism is served instead.
	QualityFallback = "fallback"
)

// Loc is an on-network location in the public road/from-start
// convention: the Road-th directed edge (insertion order) at travel
// distance FromStart from its starting connection.
type Loc struct {
	Road      int     `json:"road"`
	FromStart float64 `json:"from_start"`
}

// SolveResponse answers POST /solve.
type SolveResponse struct {
	Key    string  `json:"key"`
	Cached bool    `json:"cached"`
	K      int     `json:"k"`
	ETDD   float64 `json:"etdd"`
	Bound  float64 `json:"lower_bound"`
	// SolveMs is the wall time of the cold solve that produced the cached
	// mechanism (0 reported only if the server predates the field).
	SolveMs float64 `json:"solve_ms"`
	// Quality is the serving tier of the mechanism (QualityOptimal,
	// QualityIncumbent or QualityFallback); empty only from a server
	// that predates the degradation ladder.
	Quality string `json:"quality,omitempty"`
}

// ObfuscateRequest asks POST /obfuscate for obfuscated replacements of a
// batch of true locations; the embedded spec selects (and on a cache
// miss, triggers the solve of) the mechanism.
type ObfuscateRequest struct {
	SolveSpec
	Locations []Loc `json:"locations"`
}

// ObfuscateResponse carries the obfuscated batch in input order.
type ObfuscateResponse struct {
	Key    string `json:"key"`
	Cached bool   `json:"cached"`
	// Quality is the serving tier of the mechanism that produced the
	// batch; see the Quality constants.
	Quality   string `json:"quality,omitempty"`
	Locations []Loc  `json:"locations"`
}

// ErrorResponse is the JSON body of every non-2xx service answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

package serial

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
)

func testSpec(t *testing.T) *SolveSpec {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3, WeightJitter: 0.1})
	return &SolveSpec{Network: FromGraph(g), Delta: 0.2, Epsilon: 5}
}

func TestDigestDeterministic(t *testing.T) {
	a, b := testSpec(t), testSpec(t)
	if a.Digest() != b.Digest() {
		t.Fatal("equal specs produced different digests")
	}
	if len(a.Digest()) != 64 {
		t.Fatalf("digest is not hex SHA-256: %q", a.Digest())
	}
}

func TestDigestSensitivity(t *testing.T) {
	base := testSpec(t).Digest()
	mutations := map[string]func(*SolveSpec){
		"delta":      func(s *SolveSpec) { s.Delta = 0.25 },
		"epsilon":    func(s *SolveSpec) { s.Epsilon = 4 },
		"radius":     func(s *SolveSpec) { s.Radius = 1 },
		"exact":      func(s *SolveSpec) { s.Exact = true },
		"prior":      func(s *SolveSpec) { s.Prior = []float64{1} },
		"task prior": func(s *SolveSpec) { s.TaskPrior = []float64{1} },
		"node":       func(s *SolveSpec) { s.Network.Nodes[0].X += 0.01 },
		"edge":       func(s *SolveSpec) { s.Network.Edges[0].Weight += 0.01 },
	}
	for name, mutate := range mutations {
		s := testSpec(t)
		mutate(s)
		if s.Digest() == base {
			t.Errorf("mutating %s did not change the digest", name)
		}
	}
}

func TestSolveSpecValidate(t *testing.T) {
	if err := testSpec(t).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := map[string]func(*SolveSpec){
		"nil network":     func(s *SolveSpec) { s.Network = nil },
		"no edges":        func(s *SolveSpec) { s.Network.Edges = nil },
		"zero delta":      func(s *SolveSpec) { s.Delta = 0 },
		"nan delta":       func(s *SolveSpec) { s.Delta = math.NaN() },
		"inf delta":       func(s *SolveSpec) { s.Delta = math.Inf(1) },
		"zero epsilon":    func(s *SolveSpec) { s.Epsilon = 0 },
		"negative radius": func(s *SolveSpec) { s.Radius = -1 },
		"nan node":        func(s *SolveSpec) { s.Network.Nodes[0].X = math.NaN() },
		"inf edge weight": func(s *SolveSpec) { s.Network.Edges[0].Weight = math.Inf(1) },
		"negative prior":  func(s *SolveSpec) { s.Prior = []float64{-0.5, 1.5} },
		"nan task prior":  func(s *SolveSpec) { s.TaskPrior = []float64{math.NaN()} },
	}
	for name, mutate := range bad {
		s := testSpec(t)
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

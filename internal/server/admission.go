package server

import (
	"context"
	"sync/atomic"
)

// tierGate is the serving-tier admission gate: a bounded-concurrency,
// bounded-queue semaphore with lock-free depth accounting. The server
// runs two disjoint pools — the solve pool (cold column-generation
// solves, seconds each) and the serve pool (cached sampling,
// microseconds each) — so a queue of cold solves can never add latency
// to the cached path. vlpload's admission-control experiments are the
// yardstick: cached p99 under cold-solve saturation must stay within a
// constant factor of the unloaded cached p99.
//
// Admission policy: a request may wait for a busy slot as long as the
// total population (running + queued) stays within capacity+maxQueue;
// past that the gate sheds it immediately with ErrBusy (429) instead of
// growing an unbounded queue. Waiting is context-bounded, so a request
// deadline also caps time spent queued.
type tierGate struct {
	slots    chan struct{}
	maxQueue int64
	// depth gauges running+queued requests; rejects counts admission
	// 429s. Both point into the server's stats struct so the gate stays
	// on the lock-free counter contract (atomicstats).
	depth   *atomic.Int64
	rejects *atomic.Uint64
}

func newTierGate(capacity, maxQueue int, depth *atomic.Int64, rejects *atomic.Uint64) *tierGate {
	return &tierGate{
		slots:    make(chan struct{}, capacity),
		maxQueue: int64(maxQueue),
		depth:    depth,
		rejects:  rejects,
	}
}

// acquire admits the caller or sheds it: ErrBusy past the queue bound,
// ctx.Err() if the context ends while queued. On nil the caller must
// release.
func (g *tierGate) acquire(ctx context.Context) error {
	if g.depth.Add(1) > int64(cap(g.slots))+g.maxQueue {
		g.depth.Add(-1)
		g.rejects.Add(1)
		return ErrBusy
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		g.depth.Add(-1)
		return ctx.Err()
	}
}

func (g *tierGate) release() {
	<-g.slots
	g.depth.Add(-1)
}

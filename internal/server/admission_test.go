package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serial"
)

// slowSolveSite is the fault-injection point the admission tests arm
// with a delay to impersonate a saturated solver: the solve-pool slot
// stays occupied for the armed duration while the cached tier keeps
// serving.
const slowSolveSite = "server/test/slow-solve"

// installSlowSolver replaces solveFn with a stub that visits the
// slow-solve fault point, so tests control solve duration by arming a
// Delay there.
func installSlowSolver(t *testing.T, srv *Server) {
	srv.solveFn = func(ctx context.Context, spec *serial.SolveSpec) (*entry, error) {
		if err := faultinject.At(slowSolveSite); err != nil {
			return nil, err
		}
		return stubEntry(t), nil
	}
}

// measureCached fires n sequential obfuscate requests for a warmed spec
// and returns the nearest-rank p99 latency; every response must be 200.
func measureCached(t *testing.T, ts *httptest.Server, req *serial.ObfuscateRequest, n int) time.Duration {
	t.Helper()
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		code, body := postJSONB(t, ts, "/obfuscate", req)
		if code != http.StatusOK {
			t.Fatalf("cached obfuscate %d answered %d: %s", i, code, body)
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[(99*len(lat))/100]
}

// TestAdmissionIsolatesCachedServing is the admission-control
// integration test: with every solve-pool slot held by a deliberately
// slow cold solve (faultinject delay), cached digests must keep serving
// within a bounded latency — never queued behind the solver, never
// 429'd — while additional cold requests are the ones shed. This is the
// property the solve/serve pool split exists to provide; before the
// split, a single queued cold solve could add seconds to cached p99.
func TestAdmissionIsolatesCachedServing(t *testing.T) {
	slowDelay := 1200 * time.Millisecond
	if testing.Short() {
		slowDelay = 400 * time.Millisecond
	}

	srv := New(context.Background(), Config{
		CacheSize: 8,
		SolvePool: 1,
		ServePool: 4,
		SolveWait: 30 * time.Second,
	})
	installSlowSolver(t, srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	specs := testSpecs(t, 3)

	// Warm the cache for the hot digest (no fault armed: instant solve).
	if code, body := postJSONB(t, ts, "/solve", specs[0]); code != http.StatusOK {
		t.Fatalf("warmup solve answered %d: %s", code, body)
	}
	obf := &serial.ObfuscateRequest{
		SolveSpec: *specs[0],
		Locations: []serial.Loc{{Road: 0, FromStart: 0}},
	}

	// Unloaded baseline for the cached tier.
	unloadedP99 := measureCached(t, ts, obf, 50)

	// Saturate the solve pool: the armed delay holds the only slot.
	defer faultinject.Reset()
	faultinject.Set(slowSolveSite, faultinject.Fault{Delay: slowDelay})
	coldDone := make(chan int, 1)
	go func() {
		code, _ := postJSONB(t, ts, "/solve", specs[1])
		coldDone <- code
	}()
	// Deterministic gate, no sleep guessing: the cold request is visibly
	// waiting on its flight before we measure anything.
	waitFor(t, 5*time.Second, func() bool { return srv.Stats().SolveQueueDepth >= 1 })

	// A second cold digest must be shed by the solve gate (429), because
	// its tier is saturated...
	if code, _ := postJSONB(t, ts, "/solve", specs[2]); code != http.StatusTooManyRequests {
		t.Fatalf("cold solve with a saturated solve pool answered %d, want 429", code)
	}

	// ...while the cached digest keeps serving on its own tier.
	loadedP99 := measureCached(t, ts, obf, 50)

	snap := srv.Stats()
	if snap.AdmissionRejects != 0 {
		t.Fatalf("%d cached requests were 429'd by the serve gate while only the solve pool was saturated", snap.AdmissionRejects)
	}
	if snap.Rejected == 0 {
		t.Fatal("solve gate recorded no rejects; the cold tier was not actually saturated")
	}

	// Isolation bound: cached p99 under solver saturation stays within a
	// constant factor of the unloaded p99 (generous floor for CI-machine
	// scheduling noise), and in particular nowhere near the solve delay
	// it would inherit if cached serving queued behind the solver.
	bound := 50 * unloadedP99
	if floor := 250 * time.Millisecond; bound < floor {
		bound = floor
	}
	if half := slowDelay / 2; bound > half {
		bound = half
	}
	if loadedP99 > bound {
		t.Fatalf("cached p99 under cold-solve saturation = %v (unloaded %v); not isolated within bound %v",
			loadedP99, unloadedP99, bound)
	}

	// The slow solve completes and was never lost.
	if code := <-coldDone; code != http.StatusOK {
		t.Fatalf("saturating cold solve finished with %d, want 200", code)
	}
	// Queue-depth gauges must return to zero at quiescence.
	waitFor(t, 5*time.Second, func() bool {
		s := srv.Stats()
		return s.SolveQueueDepth == 0 && s.ServeQueueDepth == 0
	})
}

// TestServeGateShedsPastQueueBound covers the serve tier's own
// admission policy in isolation: with capacity and queue both exhausted
// by parked requests, the next request is shed immediately with 429 and
// counted in admission_rejects, and releases restore the gauge to zero.
func TestServeGateShedsPastQueueBound(t *testing.T) {
	srv := New(context.Background(), Config{ServePool: 1, ServeQueue: 1})
	g := srv.serveGate

	// Fill the slot.
	if err := g.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Fill the queue: a context-bounded waiter parks.
	parked := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { parked <- g.acquire(ctx) }()
	waitFor(t, 2*time.Second, func() bool { return srv.Stats().ServeQueueDepth == 2 })

	// Past capacity+queue: immediate shed, no blocking.
	if err := g.acquire(context.Background()); err != ErrBusy {
		t.Fatalf("over-bound acquire returned %v, want ErrBusy", err)
	}
	if snap := srv.Stats(); snap.AdmissionRejects != 1 {
		t.Fatalf("admission_rejects = %d, want 1", snap.AdmissionRejects)
	}

	// Releasing the slot admits the parked waiter; a cancelled waiter
	// leaves no residue in the gauge.
	g.release()
	if err := <-parked; err != nil {
		t.Fatalf("parked waiter got %v after a release", err)
	}
	g.release()
	if snap := srv.Stats(); snap.ServeQueueDepth != 0 {
		t.Fatalf("serve queue depth %d after all releases, want 0", snap.ServeQueueDepth)
	}
}

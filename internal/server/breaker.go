package server

import (
	"sync"
	"time"
)

// breaker is the circuit breaker on the follower→leader proxy rung. A
// blackholed leader (partition, SIGSTOP, dead-but-leased) would
// otherwise charge every follower miss the full proxy retry budget
// before it degrades; after BreakerThreshold consecutive failures the
// breaker opens and misses fall straight to the ε/2 fallback rung —
// identical privacy, bounded latency. After BreakerCooldown one probe
// request is let through (half-open): success closes the breaker,
// failure re-opens it for another cooldown.
//
// States: closed (proxying normally), open (all proxies refused),
// half-open (exactly one probe in flight).
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

type breaker struct {
	threshold int
	cooldown  time.Duration
	// now is swappable so the state machine is table-testable without
	// sleeping through cooldowns.
	now func() time.Time

	mu       sync.Mutex
	state    int32
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	trips    uint64    // closed/half-open → open transitions, for /stats
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a proxy attempt may proceed. In the open state
// it also performs the cooldown→half-open transition, admitting the
// caller as the probe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// result reports the outcome of an attempt admitted by allow. A success
// closes the breaker from any state; a failure counts toward the
// threshold when closed, re-opens immediately when half-open, and is
// ignored when already open (a straggler admitted before the trip has
// nothing new to teach).
func (b *breaker) result(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = breakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	case breakerHalfOpen:
		b.trip()
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
	b.trips++
}

// snapshot returns the state name and trip count for /stats.
func (b *breaker) snapshot() (string, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	name := "closed"
	switch b.state {
	case breakerOpen:
		name = "open"
	case breakerHalfOpen:
		name = "half-open"
	}
	return name, b.trips
}

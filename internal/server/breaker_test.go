package server

import (
	"testing"
	"time"
)

// TestBreakerStateMachine drives the full closed→open→half-open→closed
// cycle (and the half-open→open relapse) through a scripted table, with
// the clock injected so cooldowns cost nothing.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, 10*time.Second)
	b.now = func() time.Time { return now }

	type step struct {
		desc string
		run  func() bool // returns the value under test
		want bool
	}
	allow := func() func() bool { return b.allow }
	fail := func() func() bool { return func() bool { b.result(false); return true } }
	succeed := func() func() bool { return func() bool { b.result(true); return true } }
	advance := func(d time.Duration) func() bool {
		return func() bool { now = now.Add(d); return true }
	}
	inState := func(want string) func() bool {
		return func() bool { s, _ := b.snapshot(); return s == want }
	}

	steps := []step{
		{"starts closed", inState("closed"), true},
		{"closed allows", allow(), true},
		{"failure 1", fail(), true},
		{"failure 2", fail(), true},
		{"still closed below threshold", inState("closed"), true},
		{"still allowing", allow(), true},
		{"a success resets the count", succeed(), true},
		{"failure 1 again", fail(), true},
		{"failure 2 again", fail(), true},
		{"failure 3 trips", fail(), true},
		{"now open", inState("open"), true},
		{"open refuses", allow(), false},
		{"open still refuses mid-cooldown", advance(9 * time.Second), true},
		{"…refused", allow(), false},
		{"late straggler failure is ignored while open", fail(), true},
		{"still open", inState("open"), true},
		{"cooldown elapses", advance(2 * time.Second), true},
		{"first caller admitted as probe", allow(), true},
		{"now half-open", inState("half-open"), true},
		{"second caller refused while probe in flight", allow(), false},
		{"probe fails → re-open", fail(), true},
		{"re-opened", inState("open"), true},
		{"refused again", allow(), false},
		{"second cooldown", advance(11 * time.Second), true},
		{"probe admitted again", allow(), true},
		{"probe succeeds → closed", succeed(), true},
		{"closed again", inState("closed"), true},
		{"closed allows freely", allow(), true},
	}
	for i, s := range steps {
		if got := s.run(); got != s.want {
			t.Fatalf("step %d (%s): got %v, want %v", i, s.desc, got, s.want)
		}
	}
	if _, trips := b.snapshot(); trips != 2 {
		t.Fatalf("trips = %d, want 2 (threshold trip + failed probe)", trips)
	}
}

// TestBreakerThresholdIsConsecutive: interleaved successes keep the
// breaker closed forever — only an unbroken run of failures trips it.
func TestBreakerThresholdIsConsecutive(t *testing.T) {
	b := newBreaker(2, time.Minute)
	for i := 0; i < 10; i++ {
		if !b.allow() {
			t.Fatalf("iteration %d: closed breaker refused", i)
		}
		b.result(false)
		b.result(true)
	}
	if s, trips := b.snapshot(); s != "closed" || trips != 0 {
		t.Fatalf("state %q trips %d after alternating outcomes, want closed/0", s, trips)
	}
}

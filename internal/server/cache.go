package server

import (
	"container/list"
	"sync"
)

// mechCache is a bounded LRU of solved mechanisms keyed by the solve
// spec's content digest. A solved mechanism is immutable apart from its
// internally-locked sampler state, so entries are shared freely between
// requests; eviction merely drops the cache's reference.
type mechCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *entry
	items map[string]*list.Element
}

func newMechCache(max int) *mechCache {
	if max < 1 {
		max = 1
	}
	return &mechCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// get returns the entry for key, promoting it to most recently used.
func (c *mechCache) get(key string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry), true
}

// add inserts (or refreshes) key and returns how many entries were
// evicted to respect the bound.
func (c *mechCache) add(key string, e *entry) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return 0
	}
	c.items[key] = c.ll.PushFront(e)
	evicted := 0
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		evicted++
	}
	return evicted
}

// len returns the number of cached mechanisms.
func (c *mechCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// entries snapshots the cached mechanisms in most-recently-used order.
func (c *mechCache) entries() []*entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*entry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry))
	}
	return out
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serial"
)

func TestMechCacheLRU(t *testing.T) {
	c := newMechCache(2)
	a, b, d := &entry{key: "a"}, &entry{key: "b"}, &entry{key: "d"}
	if ev := c.add("a", a); ev != 0 {
		t.Fatalf("evicted %d from empty cache", ev)
	}
	c.add("b", b)

	// Touch a so b becomes least recently used.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	if ev := c.add("d", d); ev != 1 {
		t.Fatalf("adding past capacity evicted %d entries, want 1", ev)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used a should survive eviction")
	}
	if _, ok := c.get("d"); !ok {
		t.Fatal("d missing")
	}
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2", c.len())
	}

	// entries() lists MRU-first.
	got := c.entries()
	if len(got) != 2 || got[0].key != "d" || got[1].key != "a" {
		keys := make([]string, len(got))
		for i, e := range got {
			keys[i] = e.key
		}
		t.Fatalf("entries order %v, want [d a]", keys)
	}

	// Re-adding an existing key refreshes in place without eviction.
	if ev := c.add("a", &entry{key: "a"}); ev != 0 {
		t.Fatalf("refresh evicted %d entries", ev)
	}
	if c.len() != 2 {
		t.Fatalf("cache len %d after refresh, want 2", c.len())
	}
}

func TestSingleflightSharesOneCall(t *testing.T) {
	g := newGroup(new(atomic.Uint64), new(atomic.Int64))
	var calls atomic.Int64
	release := make(chan struct{})
	fn := func(context.Context) (*entry, error) {
		calls.Add(1)
		<-release
		return &entry{key: "x"}, nil
	}

	// Leader first, so the flight is registered before any follower runs.
	results := make(chan *entry, 8)
	collect := func() {
		e, err := g.do(context.Background(), "x", context.Background(), 0, fn)
		if err != nil {
			t.Error(err)
		}
		results <- e
	}
	go collect()
	waitFor(t, time.Second, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.m) == 1
	})

	// Followers join the registered flight; the flight cannot complete
	// until release closes, so none of them can become a second leader.
	var entered atomic.Int64
	for i := 0; i < 7; i++ {
		go func() {
			entered.Add(1)
			collect()
		}()
	}
	waitFor(t, time.Second, func() bool { return entered.Load() == 7 })
	time.Sleep(10 * time.Millisecond) // let the last follower reach do()
	close(release)

	for i := 0; i < 8; i++ {
		if e := <-results; e == nil || e.key != "x" {
			t.Fatal("waiter got wrong result")
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	g.wait()
}

func TestSingleflightFollowerHonoursContext(t *testing.T) {
	g := newGroup(new(atomic.Uint64), new(atomic.Int64))
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		_, _ = g.do(context.Background(), "k", context.Background(), 0, func(context.Context) (*entry, error) {
			<-release
			return &entry{key: "k"}, nil
		})
		close(leaderDone)
	}()
	// Give the leader time to register the flight.
	waitFor(t, time.Second, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.m) == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := g.do(ctx, "k", context.Background(), 0, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower got %v, want deadline exceeded", err)
	}
	close(release)
	<-leaderDone
	g.wait()
}

func TestHandlerValidation(t *testing.T) {
	srv := New(context.Background(), Config{})
	srv.solveFn = func(ctx context.Context, spec *serial.SolveSpec) (*entry, error) { return stubEntry(t), nil }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path, body string) int {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("/solve", "{not json"); code != http.StatusBadRequest {
		t.Errorf("bad JSON: got %d, want 400", code)
	}
	if code := post("/solve", `{"network":null,"delta":0.1,"epsilon":5}`); code != http.StatusBadRequest {
		t.Errorf("missing network: got %d, want 400", code)
	}
	if code := post("/obfuscate", `{"network":{"nodes":[],"edges":[]},"delta":0.1,"epsilon":5,"locations":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty network: got %d, want 400", code)
	}

	spec := testSpecs(t, 1)[0]
	req := serial.ObfuscateRequest{SolveSpec: *spec}
	body, _ := json.Marshal(req)
	if code := post("/obfuscate", string(body)); code != http.StatusBadRequest {
		t.Errorf("empty batch: got %d, want 400", code)
	}

	// Out-of-range locations must 400, not sample garbage.
	req.Locations = []serial.Loc{{Road: 9999, FromStart: 0}}
	body, _ = json.Marshal(req)
	if code := post("/obfuscate", string(body)); code != http.StatusBadRequest {
		t.Errorf("out-of-range road: got %d, want 400", code)
	}
	req.Locations = []serial.Loc{{Road: 0, FromStart: 1e9}}
	body, _ = json.Marshal(req)
	if code := post("/obfuscate", string(body)); code != http.StatusBadRequest {
		t.Errorf("from_start beyond road: got %d, want 400", code)
	}

	// GET /stats reflects the traffic above: the two location-validation
	// failures still resolved the mechanism, so the cache served them.
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Solves != 1 {
		t.Errorf("stats solves = %d, want 1", snap.Solves)
	}
	if snap.CacheLen != 1 || len(snap.Mechanisms) != 1 {
		t.Errorf("stats cache len = %d (%d mechanisms), want 1", snap.CacheLen, len(snap.Mechanisms))
	}
}

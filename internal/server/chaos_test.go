package server

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/lp"
	"repro/internal/roadnet"
	"repro/internal/serial"
)

// TestChaos is the fault-injection acceptance suite (run under -race by
// ci.sh): with failures armed at every solver site — master, pricing and
// the IPM — concurrent clients must still get HTTP 200 responses backed
// by mechanisms that satisfy the full (ε, r)-Geo-I constraint set within
// 1e-9, each honestly labelled with its degradation tier. The faults are
// process-global, so the subtests must not run in parallel.
func TestChaos(t *testing.T) {
	chaosErr := errors.New("chaos: injected failure")
	cases := []struct {
		name string
		site string
		// fault is armed for the whole subtest (Times 0 = every visit).
		fault faultinject.Fault
		// deadline, when positive, sets the per-solve deadline.
		deadline time.Duration
		// tiers is the set of acceptable quality labels.
		tiers map[string]bool
	}{
		{
			name: "master error", site: core.FaultSiteCGMaster,
			fault: faultinject.Fault{Err: chaosErr},
			tiers: map[string]bool{serial.QualityFallback: true},
		},
		{
			name: "master panic", site: core.FaultSiteCGMaster,
			fault: faultinject.Fault{Panic: "chaos: injected panic"},
			tiers: map[string]bool{serial.QualityFallback: true},
		},
		{
			name: "pricing error", site: core.FaultSiteCGPricing,
			fault: faultinject.Fault{Err: chaosErr},
			tiers: map[string]bool{serial.QualityFallback: true},
		},
		{
			name: "pricing panic", site: core.FaultSiteCGPricing,
			fault: faultinject.Fault{Panic: "chaos: injected panic"},
			tiers: map[string]bool{serial.QualityFallback: true},
		},
		{
			name: "ipm error", site: lp.FaultSiteIPM,
			fault: faultinject.Fault{Err: chaosErr},
			tiers: map[string]bool{serial.QualityFallback: true},
		},
		{
			name: "pricing stall against deadline", site: core.FaultSiteCGPricing,
			fault:    faultinject.Fault{Delay: 500 * time.Millisecond},
			deadline: 150 * time.Millisecond,
			// The first master round usually completes before the stall, so
			// the incumbent rung is expected; a slow scheduler may cancel
			// earlier and land on the fallback. Both are acceptable — what
			// is not is an error or an optimal label.
			tiers: map[string]bool{serial.QualityIncumbent: true, serial.QualityFallback: true},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer faultinject.Reset()
			faultinject.Set(tc.site, tc.fault)

			srv := New(context.Background(), Config{
				CacheSize:      8,
				MaxSolves:      4,
				SolveDeadline:  tc.deadline,
				DisableUpgrade: true, // upgrades would re-solve under the same fault
				Seed:           7,
			})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			rng := rand.New(rand.NewSource(13))
			g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3})
			net := serial.FromGraph(g)
			specs := []*serial.SolveSpec{
				{Network: net, Delta: 0.3, Epsilon: 3},
				{Network: net, Delta: 0.3, Epsilon: 5},
			}

			const clients = 8
			type outcome struct {
				status  int
				quality string
				body    string
			}
			outcomes := make(chan outcome, clients)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					req := serial.ObfuscateRequest{
						SolveSpec: *specs[c%len(specs)],
						Locations: []serial.Loc{{Road: c % g.NumEdges(), FromStart: 0}},
					}
					status, body := postJSONB(t, ts, "/obfuscate", req)
					var or serial.ObfuscateResponse
					_ = json.Unmarshal([]byte(body), &or)
					outcomes <- outcome{status: status, quality: or.Quality, body: body}
				}(c)
			}
			wg.Wait()
			close(outcomes)

			for o := range outcomes {
				if o.status != http.StatusOK {
					t.Fatalf("chaos response status %d: %s", o.status, o.body)
				}
				if !tc.tiers[o.quality] {
					t.Errorf("chaos response quality %q, want one of %v", o.quality, tc.tiers)
				}
			}

			// Every mechanism the chaos run banked must uphold the full
			// privacy guarantee — degraded means slower to converge on
			// quality loss, never leakier.
			entries := srv.cache.entries()
			if len(entries) == 0 {
				t.Fatal("chaos run cached no mechanisms")
			}
			for _, e := range entries {
				assertServable(t, e)
				if !tc.tiers[e.tier] {
					t.Errorf("cached entry tier %q, want one of %v", e.tier, tc.tiers)
				}
			}

			snap := srv.Stats()
			if snap.DegradedServes == 0 {
				t.Error("degraded_serves counter never moved under injected faults")
			}
			switch {
			case tc.fault.Panic != nil && snap.PanicRecoveries == 0:
				t.Error("panic_recoveries counter never moved under an injected panic")
			case tc.deadline > 0 && snap.CancelledSolves == 0:
				t.Error("cancelled_solves counter never moved under a deadline stall")
			}
		})
	}
}

// TestChaosAbandonment: when every waiting client gives up, the detached
// solve is cancelled (not leaked) and the ladder still banks a degraded
// entry into the cache for the next request.
func TestChaosAbandonment(t *testing.T) {
	defer faultinject.Reset()
	// A long pricing stall guarantees the clients' deadlines fire first.
	faultinject.Set(core.FaultSiteCGPricing, faultinject.Fault{Delay: 400 * time.Millisecond})

	srv := New(context.Background(), Config{DisableUpgrade: true, SolveWait: 80 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := testSpecs(t, 1)[0]
	if code, _ := postJSONB(t, ts, "/solve", spec); code != http.StatusGatewayTimeout {
		t.Fatalf("abandoning client got %d, want 504", code)
	}

	// The abandoned solve's incumbent (or fallback) lands in the cache.
	waitFor(t, 5*time.Second, func() bool {
		_, ok := srv.cache.get(spec.Digest())
		return ok
	})
	e, _ := srv.cache.get(spec.Digest())
	if e.tier == serial.QualityOptimal {
		t.Fatalf("abandoned solve claims the optimal tier")
	}
	assertServable(t, e)

	// The next client is served instantly from the banked entry.
	faultinject.Reset()
	code, body := postJSONB(t, ts, "/solve", spec)
	if code != http.StatusOK {
		t.Fatalf("post-abandonment request got %d: %s", code, body)
	}
	var sr serial.SolveResponse
	if err := json.Unmarshal([]byte(body), &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Cached || !(sr.Quality == serial.QualityIncumbent || sr.Quality == serial.QualityFallback) {
		t.Fatalf("post-abandonment response cached=%v quality=%q", sr.Cached, sr.Quality)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

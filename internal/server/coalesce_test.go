package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestCoalesceWindowBatchesSameDigestBurst is the race-enabled
// coalescing test: N concurrent cold requests for the same digest,
// arriving inside one coalescing window, must produce exactly one solve
// even though they race for a single solve-pool slot. The window delays
// the flight leader's slot acquisition long enough for the whole burst
// to join the flight (or land on the freshly filled cache), so nobody
// is shed with 429 and the solver runs once. ci.sh runs this under
// -race explicitly.
func TestCoalesceWindowBatchesSameDigestBurst(t *testing.T) {
	srv := New(context.Background(), Config{
		CacheSize:      8,
		SolvePool:      1,
		CoalesceWindow: 150 * time.Millisecond,
		SolveWait:      30 * time.Second,
	})
	ctr := &solveCounter{counts: map[string]int{}, tb: t}
	ctr.install(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	spec := testSpecs(t, 1)[0]
	const n = 16
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _ := postJSONB(t, ts, "/solve", spec)
			codes <- code
		}()
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("burst request answered %d; the coalescing window must absorb same-digest bursts without shedding", code)
		}
	}

	if got := ctr.total(); got != 1 {
		t.Fatalf("solver ran %d times for a %d-request same-digest burst, want exactly 1", got, n)
	}
	snap := srv.Stats()
	if snap.Solves != 1 {
		t.Fatalf("/stats solves = %d, want 1", snap.Solves)
	}
	// Exact accounting for the other n-1 requests: each either joined the
	// leader's flight (coalesced) or arrived after the flight resolved and
	// hit the cache. Nothing may be double-counted or lost.
	if snap.CoalescedRequests+snap.CacheHits != n-1 {
		t.Fatalf("coalesced (%d) + cache hits (%d) = %d, want %d: burst accounting does not reconcile",
			snap.CoalescedRequests, snap.CacheHits, snap.CoalescedRequests+snap.CacheHits, n-1)
	}
	if snap.Rejected != 0 {
		t.Fatalf("%d requests were 429'd during a single-digest burst with SolvePool=1; coalescing should need only one slot", snap.Rejected)
	}
}

// TestCoalesceWindowRespectsContext: a waiter that gives up during the
// window must not wedge the flight — the leader still completes the
// solve for later arrivals unless every waiter abandons.
func TestCoalesceWaitHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- coalesceWait(ctx, time.Hour) }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("coalesceWait returned nil after cancellation")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("coalesceWait ignored a cancelled context")
	}
	// And with no window configured it must be a no-op, not a stall.
	if err := coalesceWait(context.Background(), 0); err != nil {
		t.Fatalf("zero-window coalesceWait: %v", err)
	}
}

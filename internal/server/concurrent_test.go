package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/discretize"
	"repro/internal/roadnet"
	"repro/internal/serial"
)

// stubEntry builds a real (exponential-mechanism) cache entry without a
// CG solve, so concurrency tests can pace "solves" deterministically.
func stubEntry(tb testing.TB) *entry {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	g := roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3})
	part, err := discretize.New(g, 0.3)
	if err != nil {
		tb.Fatal(err)
	}
	pr, err := core.NewProblem(part, core.Config{Epsilon: 5})
	if err != nil {
		tb.Fatal(err)
	}
	m := pr.ExponentialMechanism()
	return &entry{
		prob:     pr,
		mech:     m,
		etdd:     pr.ETDD(m),
		tier:     serial.QualityOptimal,
		sampleMu: newChanMutex(),
		rng:      rand.New(rand.NewSource(2)),
	}
}

// testSpecs returns n distinct valid specs (distinct epsilons → distinct
// digests) over one shared network.
func testSpecs(tb testing.TB, n int) []*serial.SolveSpec {
	tb.Helper()
	rng := rand.New(rand.NewSource(8))
	net := serial.FromGraph(roadnet.Grid(rng, roadnet.GridConfig{Rows: 2, Cols: 2, Spacing: 0.3}))
	specs := make([]*serial.SolveSpec, n)
	for i := range specs {
		specs[i] = &serial.SolveSpec{Network: net, Delta: 0.3, Epsilon: 1 + float64(i)}
	}
	return specs
}

// solveCounter replaces a server's solveFn with a paced stub that counts
// invocations per digest.
type solveCounter struct {
	mu     sync.Mutex
	counts map[string]int
	delay  time.Duration
	tb     testing.TB
}

func (c *solveCounter) install(s *Server) {
	s.solveFn = func(ctx context.Context, spec *serial.SolveSpec) (*entry, error) {
		c.mu.Lock()
		c.counts[spec.Digest()]++
		c.mu.Unlock()
		time.Sleep(c.delay)
		return stubEntry(c.tb), nil
	}
}

func (c *solveCounter) count(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[key]
}

func (c *solveCounter) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.counts {
		n += v
	}
	return n
}

// TestConcurrentClients hammers one live server instance with mixes of
// identical and distinct specs and asserts the service's concurrency
// contract: singleflight dedup (exactly one solve per distinct key),
// 429 backpressure past the in-flight solve limit, and a clean drain on
// shutdown. Run under -race this also exercises every lock in the cache,
// flight group and samplers.
func TestConcurrentClients(t *testing.T) {
	t.Run("singleflight dedup", func(t *testing.T) {
		srv := New(context.Background(), Config{CacheSize: 8, MaxSolves: 4})
		ctr := &solveCounter{counts: map[string]int{}, delay: 100 * time.Millisecond, tb: t}
		ctr.install(srv)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		specs := testSpecs(t, 3)
		const perSpec = 8
		codes := make(chan int, len(specs)*perSpec)
		var wg sync.WaitGroup
		for _, spec := range specs {
			for j := 0; j < perSpec; j++ {
				wg.Add(1)
				go func(spec *serial.SolveSpec) {
					defer wg.Done()
					resp, _ := postJSONB(t, ts, "/solve", spec)
					codes <- resp
				}(spec)
			}
		}
		wg.Wait()
		close(codes)
		for code := range codes {
			if code != http.StatusOK {
				t.Fatalf("unexpected status %d with capacity for every key", code)
			}
		}
		for i, spec := range specs {
			if got := ctr.count(spec.Digest()); got != 1 {
				t.Errorf("spec %d solved %d times, want exactly 1", i, got)
			}
		}
		if snap := srv.Stats(); snap.Rejected != 0 {
			t.Errorf("no request should have been rejected, got %d", snap.Rejected)
		}
	})

	t.Run("backpressure past in-flight limit", func(t *testing.T) {
		srv := New(context.Background(), Config{CacheSize: 8, MaxSolves: 1})
		ctr := &solveCounter{counts: map[string]int{}, delay: 300 * time.Millisecond, tb: t}
		ctr.install(srv)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		specs := testSpecs(t, 3)
		// Prime one long solve to occupy the single slot, then race the
		// other specs against it: they must be rejected, not queued.
		first := make(chan int, 1)
		go func() { code, _ := postJSONB(t, ts, "/solve", specs[0]); first <- code }()
		waitFor(t, time.Second, func() bool { return ctr.total() == 1 })

		okCount, busyCount := 0, 0
		var wg sync.WaitGroup
		codes := make(chan int, 2)
		for _, spec := range specs[1:] {
			wg.Add(1)
			go func(spec *serial.SolveSpec) {
				defer wg.Done()
				code, _ := postJSONB(t, ts, "/solve", spec)
				codes <- code
			}(spec)
		}
		wg.Wait()
		close(codes)
		for code := range codes {
			switch code {
			case http.StatusOK:
				okCount++
			case http.StatusTooManyRequests:
				busyCount++
			default:
				t.Fatalf("unexpected status %d", code)
			}
		}
		if busyCount != 2 || okCount != 0 {
			t.Fatalf("want both overflow specs rejected with 429, got %d ok / %d busy", okCount, busyCount)
		}
		if code := <-first; code != http.StatusOK {
			t.Fatalf("slot-holding request failed with %d", code)
		}
		if snap := srv.Stats(); snap.Rejected != 2 {
			t.Errorf("stats should record 2 rejections, got %d", snap.Rejected)
		}

		// Rejection must not poison the key: with the slot free the same
		// specs now solve.
		for i, spec := range specs[1:] {
			if code, _ := postJSONB(t, ts, "/solve", spec); code != http.StatusOK {
				t.Fatalf("retry of rejected spec %d failed with %d", i+1, code)
			}
		}
		if got := ctr.total(); got != 3 {
			t.Errorf("3 distinct specs should yield 3 solves total, got %d", got)
		}
	})

	t.Run("mixed hammer", func(t *testing.T) {
		srv := New(context.Background(), Config{CacheSize: 8, MaxSolves: 4})
		ctr := &solveCounter{counts: map[string]int{}, delay: 20 * time.Millisecond, tb: t}
		ctr.install(srv)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		specs := testSpecs(t, 4)
		const clients = 24
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(c)))
				for round := 0; round < 6; round++ {
					spec := specs[rng.Intn(len(specs))]
					code, _ := postJSONB(t, ts, "/solve", spec)
					if code != http.StatusOK && code != http.StatusTooManyRequests {
						t.Errorf("client %d: unexpected status %d", c, code)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		for i, spec := range specs {
			if got := ctr.count(spec.Digest()); got != 1 {
				t.Errorf("spec %d solved %d times under mixed load, want exactly 1", i, got)
			}
		}
	})

	t.Run("clean shutdown drains solves", func(t *testing.T) {
		srv := New(context.Background(), Config{CacheSize: 8, MaxSolves: 2})
		solveStarted := make(chan struct{})
		release := make(chan struct{})
		srv.solveFn = func(ctx context.Context, spec *serial.SolveSpec) (*entry, error) {
			close(solveStarted)
			<-release
			return stubEntry(t), nil
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		spec := testSpecs(t, 1)[0]
		reqDone := make(chan int, 1)
		go func() { code, _ := postJSONB(t, ts, "/solve", spec); reqDone <- code }()
		<-solveStarted

		shutdownDone := make(chan error, 1)
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			shutdownDone <- srv.Shutdown(ctx)
		}()
		select {
		case <-shutdownDone:
			t.Fatal("Shutdown returned while a solve was still in flight")
		case <-time.After(50 * time.Millisecond):
		}

		// New work is refused during the drain.
		if code, _ := postJSONB(t, ts, "/solve", testSpecs(t, 2)[1]); code != http.StatusServiceUnavailable {
			t.Fatalf("request during shutdown got %d, want 503", code)
		}

		close(release)
		if err := <-shutdownDone; err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		if code := <-reqDone; code != http.StatusOK {
			t.Fatalf("in-flight request got %d after drain, want 200", code)
		}
	})
}

// postJSONB posts body and returns only the status code and raw body
// (concurrent helpers must not call t.Fatal off the test goroutine).
func postJSONB(t *testing.T, ts *httptest.Server, path string, body interface{}) (int, string) {
	payload, err := json.Marshal(body)
	if err != nil {
		t.Error(err)
		return 0, ""
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Error(err)
		return 0, ""
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	return resp.StatusCode, string(buf[:n])
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

package server

import (
	"errors"
	"math/rand"
	"syscall"

	"repro/internal/core"
	"repro/internal/serial"
	"repro/internal/store"
)

// Durable-store glue: converting between the in-memory cache entry and
// its on-disk snapshot, the checkpoint write path, and startup recovery.
// Everything here is best-effort by design — the store makes the server
// cheaper to restart, never less available: a write failure costs
// durability of one snapshot, a read failure or corrupt file costs one
// cold solve, and neither ever surfaces to a client.

// checkpointEvery resolves the effective checkpoint cadence: zero when
// no store is configured or checkpointing is disabled.
func (s *Server) checkpointEvery() int {
	if s.store == nil || s.cfg.CheckpointRounds < 0 {
		return 0
	}
	if s.cfg.CheckpointRounds == 0 {
		return defaultCheckpointRounds
	}
	return s.cfg.CheckpointRounds
}

// storedStateFrom converts a solver column pool to its wire shape.
func storedStateFrom(st *core.CGState) *serial.StoredState {
	snap := st.Snapshot()
	if snap == nil {
		return nil
	}
	ss := &serial.StoredState{K: snap.K, Cols: make([]serial.StoredColumn, len(snap.Columns))}
	for i, c := range snap.Columns {
		ss.Cols[i] = serial.StoredColumn{L: c.L, Z: c.Z, Cost: c.Cost}
	}
	return ss
}

// restoreState converts a wire column pool back to a solver state,
// re-running core's strict validation (disk bytes are untrusted even
// after the checksum: the two validators guard different invariants).
func restoreState(ss *serial.StoredState) (*core.CGState, error) {
	if ss == nil {
		return nil, nil
	}
	snap := &core.CGStateSnapshot{K: ss.K, Columns: make([]core.CGColumnSnapshot, len(ss.Cols))}
	for i, c := range ss.Cols {
		snap.Columns[i] = core.CGColumnSnapshot{L: c.L, Z: c.Z, Cost: c.Cost}
	}
	return core.RestoreCGState(snap)
}

// persistEntry snapshots a completed entry to the store. On the optimal
// tier the mid-solve checkpoint (now superseded) and the recovery
// warm-start are dropped too. No-op without a store; write failures are
// swallowed — the entry still serves from memory.
//
// Full-disk handling: an ENOSPC failure latches storeDegraded, which
// sheds checkpoint writes (writeCheckpoint) while entry persists keep
// going as cheap recovery probes — one snapshot per completed solve.
// The first persist that lands clears the latch, so durability resumes
// by itself when space returns. Every write failed or skipped while
// handling the condition is counted in store_write_shed.
func (s *Server) persistEntry(key string, spec *serial.SolveSpec, e *entry) {
	if s.store == nil {
		return
	}
	se := &serial.StoredEntry{
		Spec:  *spec,
		Tier:  e.tier,
		ETDD:  e.etdd,
		Bound: e.bound,
		K:     e.mech.K(),
		Z:     e.mech.Z,
		State: storedStateFrom(e.state),
	}
	if err := s.store.WriteEntry(se); err != nil {
		if isDiskFull(err) {
			s.storeDegraded.Store(true)
			s.stats.storeShed()
		}
		return
	}
	s.storeDegraded.Store(false)
	s.stats.storeWrote()
	if e.tier == serial.QualityOptimal {
		s.store.DeleteCheckpoint(key)
		s.resume.Delete(key)
	}
}

// writeCheckpoint durably snapshots a mid-solve column pool; called from
// the solver's OnState hook every checkpointEvery rounds. While the
// store is ENOSPC-degraded, checkpoints are shed without touching the
// disk: they are pure recovery optimisation, and hammering a full disk
// with doomed multi-megabyte column pools only delays its recovery.
func (s *Server) writeCheckpoint(spec *serial.SolveSpec, rounds int, st *core.CGState) {
	if s.storeDegraded.Load() {
		s.stats.storeShed()
		return
	}
	ss := storedStateFrom(st)
	if ss == nil {
		return
	}
	ck := &serial.StoredCheckpoint{Spec: *spec, Rounds: rounds, State: *ss}
	if err := s.store.WriteCheckpoint(ck); err != nil {
		if isDiskFull(err) {
			s.storeDegraded.Store(true)
			s.stats.storeShed()
		}
		return
	}
	s.stats.checkpointWrote()
}

// isDiskFull reports whether a store write failed for lack of space.
func isDiskFull(err error) bool {
	return errors.Is(err, syscall.ENOSPC)
}

// entryFromStore rebuilds a servable cache entry from the durable
// snapshot for key, or returns nil (cold solve required). The snapshot
// is never trusted into the serving path as-is: the mechanism must match
// the spec's own discretisation, validate as row-stochastic, and pass
// the same EnforceGeoI repair gate every freshly solved mechanism
// passes — a snapshot that fails any of it costs a re-solve, never a
// privacy-violating mechanism. A decode-valid snapshot whose semantics
// are off is left in place: the re-solve's persist overwrites it.
//
// A nil spec means "whatever the snapshot was solved for": the fleet
// refresh loop loads by digest alone, and the snapshot's embedded spec
// (already verified to hash to key by LoadEntry) is authoritative.
func (s *Server) entryFromStore(key string, spec *serial.SolveSpec) *entry {
	if s.store == nil {
		return nil
	}
	se, err := s.store.LoadEntry(key)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return nil
		}
		s.stats.storeLoadFailed(errors.Is(err, store.ErrCorrupt))
		return nil
	}
	if spec == nil {
		spec = &se.Spec
	}
	pr, err := s.buildProblem(spec)
	if err != nil {
		s.stats.storeLoadFailed(false)
		return nil
	}
	if pr.Part.K() != se.K {
		// The snapshot was written against a different discretisation
		// (version skew); its matrix means nothing for this problem.
		s.stats.storeLoadFailed(false)
		return nil
	}
	mech := &core.Mechanism{Part: pr.Part, Z: se.Z}
	if err := mech.Validate(); err != nil {
		s.stats.storeLoadFailed(false)
		return nil
	}
	served, etdd, err := pr.EnforceGeoI(mech, geoITol)
	if err != nil {
		s.stats.storeLoadFailed(false)
		return nil
	}
	e := &entry{
		key:      key,
		prob:     pr,
		mech:     served,
		etdd:     etdd,
		bound:    se.Bound,
		tier:     se.Tier,
		sampleMu: newChanMutex(),
		rng:      rand.New(rand.NewSource(s.cfg.Seed + s.seq.Add(1))),
	}
	if se.State != nil {
		// A failed state restore only loses the warm start, not the entry.
		if st, err := restoreState(se.State); err == nil {
			e.state = st
		}
	}
	return e
}

// recoverFromStore scans the store at startup: corrupt files are
// quarantined (counted, never fatal), checkpoints of solves the previous
// process never finished are turned into warm-starts and re-enqueued in
// the background, and completed entries stay on disk for lazy loading on
// first request. Called from New before the server accepts traffic.
func (s *Server) recoverFromStore() {
	rep, err := s.store.Scan()
	if err != nil {
		// Unreadable directory: run as a purely in-memory server.
		return
	}
	s.stats.scanQuarantined(rep.Quarantined)
	optimal := make(map[string]bool, len(rep.Entries))
	for _, se := range rep.Entries {
		if se.Tier == serial.QualityOptimal {
			optimal[se.Digest] = true
		}
	}
	for _, ck := range rep.Checkpoints {
		spec := ck.Spec
		digest := spec.Digest()
		if optimal[digest] {
			// The solve finished (optimal entry on disk) but the process
			// died before the checkpoint was cleaned up. Stale; drop it.
			s.store.DeleteCheckpoint(digest)
			continue
		}
		st, err := restoreState(&ck.State)
		if err != nil {
			s.stats.storeLoadFailed(false)
			s.store.DeleteCheckpoint(digest)
			continue
		}
		s.resume.Store(digest, st)
		s.stats.recovered()
		// Re-enqueue the interrupted solve: scheduleUpgrade runs it on
		// the root context, warm from the resume map, and persists +
		// promotes the result when it reaches the optimal tier.
		s.scheduleUpgrade(digest, &spec)
	}
}

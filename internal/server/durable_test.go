package server

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/serial"
	"repro/internal/store"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreWarmRestartPreservesServedMechanism is the recovery property
// test: a restart served from the durable store must hand out the same
// mechanism — identical Z, identical ETDD, same quality tier, full
// Geo-I feasibility — without running a single solve.
func TestStoreWarmRestartPreservesServedMechanism(t *testing.T) {
	st := testStore(t)
	spec := ladderSpec(t)
	key := spec.Digest()

	srvA := New(context.Background(), Config{Store: st, DisableUpgrade: true})
	e1, cached, err := srvA.mechanismFor(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first request reported a cache hit")
	}
	if snap := srvA.Stats(); snap.StoreWrites != 1 || snap.Solves != 1 {
		t.Fatalf("first life: store_writes=%d solves=%d, want 1/1", snap.StoreWrites, snap.Solves)
	}
	if err := srvA.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Second life: fresh server over the same directory. The mechanism
	// must come off disk, not out of the solver.
	srvB := New(context.Background(), Config{Store: st, DisableUpgrade: true})
	e2, _, err := srvB.mechanismFor(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	snap := srvB.Stats()
	if snap.Solves != 0 {
		t.Fatalf("warm restart ran %d solves, want 0", snap.Solves)
	}
	if snap.StoreLoads != 1 {
		t.Fatalf("store_loads = %d, want 1", snap.StoreLoads)
	}
	if e2.tier != e1.tier {
		t.Fatalf("tier changed across restart: %q → %q", e1.tier, e2.tier)
	}
	if e2.etdd != e1.etdd {
		t.Fatalf("served ETDD changed across restart: %v → %v", e1.etdd, e2.etdd)
	}
	if len(e2.mech.Z) != len(e1.mech.Z) {
		t.Fatalf("mechanism reshaped across restart")
	}
	for i := range e1.mech.Z {
		if e2.mech.Z[i] != e1.mech.Z[i] {
			t.Fatalf("Z[%d] changed across restart: %v → %v", i, e1.mech.Z[i], e2.mech.Z[i])
		}
	}
	assertServable(t, e2)
	if e3, cached, err := srvB.mechanismFor(context.Background(), spec); err != nil || !cached || e3 != e2 {
		t.Fatalf("second request not served from repopulated cache (cached=%v err=%v)", cached, err)
	}
	if _, err := st.LoadEntry(key); err != nil {
		t.Fatalf("snapshot gone after warm restart: %v", err)
	}
}

// TestStoreServesEvictedEntry closes the eviction/persistence gap: an
// entry pushed out of the LRU is reloaded from disk on its next
// request instead of being re-solved.
func TestStoreServesEvictedEntry(t *testing.T) {
	st := testStore(t)
	srv := New(context.Background(), Config{CacheSize: 1, Store: st, DisableUpgrade: true})
	ctr := &solveCounter{counts: map[string]int{}, tb: t}
	ctr.install(srv)
	specs := testSpecs(t, 2)

	if _, _, err := srv.mechanismFor(context.Background(), specs[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.mechanismFor(context.Background(), specs[1]); err != nil {
		t.Fatal(err)
	}
	if snap := srv.Stats(); snap.CacheEvicted != 1 {
		t.Fatalf("cache_evicted = %d, want 1 with CacheSize 1", snap.CacheEvicted)
	}

	e, _, err := srv.mechanismFor(context.Background(), specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := ctr.count(specs[0].Digest()); got != 1 {
		t.Fatalf("evicted spec re-solved: %d solves, want 1", got)
	}
	if snap := srv.Stats(); snap.StoreLoads != 1 {
		t.Fatalf("store_loads = %d, want 1", snap.StoreLoads)
	}
	assertServable(t, e)
}

// interruptedSolve runs a real solve that gets cancelled mid-run on a
// server with checkpointing every round, returning the degraded entry.
func interruptedSolve(t *testing.T, st *store.Store, spec *serial.SolveSpec) (*Server, *entry) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := New(context.Background(), Config{
		Store:            st,
		CheckpointRounds: 1,
		DisableUpgrade:   true,
		CG: core.CGOptions{
			Xi: -1e-9, RelGap: -1, // force many rounds so the cancel lands mid-run
			OnIteration: func(iter int, _ core.CGIteration) {
				if iter == 0 {
					cancel()
				}
			},
		},
	})
	e, err := srv.solve(ctx, spec)
	if err != nil {
		t.Fatalf("cancelled solve must degrade, got error %v", err)
	}
	if e.tier != serial.QualityIncumbent || e.state == nil {
		t.Fatalf("tier %q state %v, want incumbent with resume state", e.tier, e.state != nil)
	}
	return srv, e
}

// TestStoreDegradedEntryStateSurvives: a degraded entry's resumable
// column pool makes it to disk and back, and the interrupted run left
// durable mid-solve checkpoints behind.
func TestStoreDegradedEntryStateSurvives(t *testing.T) {
	st := testStore(t)
	spec := ladderSpec(t)
	key := spec.Digest()
	srvA, e := interruptedSolve(t, st, spec)
	if snap := srvA.Stats(); snap.CheckpointWrites == 0 {
		t.Fatal("no checkpoint written by an interrupted checkpointing solve")
	}
	if _, err := st.LoadCheckpoint(key); err != nil {
		t.Fatalf("checkpoint not on disk: %v", err)
	}
	srvA.persistEntry(key, spec, e)
	if _, err := st.LoadEntry(key); err != nil {
		t.Fatalf("degraded entry not persisted: %v", err)
	}

	// Restart (upgrades off): the entry must come back with its resume
	// state, and the checkpoint must be recognised as an interrupted
	// solve.
	srvB := New(context.Background(), Config{Store: st, DisableUpgrade: true})
	if snap := srvB.Stats(); snap.RecoveredSolves != 1 {
		t.Fatalf("recovered_solves = %d, want 1", snap.RecoveredSolves)
	}
	e2 := srvB.entryFromStore(key, spec)
	if e2 == nil {
		t.Fatal("persisted degraded entry not loadable")
	}
	if e2.tier != serial.QualityIncumbent {
		t.Fatalf("tier %q, want incumbent", e2.tier)
	}
	if e2.state == nil {
		t.Fatal("resume state lost across the store round trip")
	}
	assertServable(t, e2)

	// The restored pool is genuinely resumable: finishing the solve from
	// it reaches the optimal tier.
	srvB.cache.add(key, e2)
	done, err := srvB.solve(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if done.tier != serial.QualityOptimal {
		t.Fatalf("resumed solve tier %q, want optimal", done.tier)
	}
	assertServable(t, done)
}

// TestStoreRecoveryReenqueuesInterruptedSolve: a checkpoint with no
// completed entry is an interrupted solve; a restarting server must
// finish it in the background and clean the checkpoint up.
func TestStoreRecoveryReenqueuesInterruptedSolve(t *testing.T) {
	st := testStore(t)
	spec := ladderSpec(t)
	key := spec.Digest()
	interruptedSolve(t, st, spec) // leaves a checkpoint, no entry persisted

	srv := New(context.Background(), Config{Store: st})
	if snap := srv.Stats(); snap.RecoveredSolves != 1 {
		t.Fatalf("recovered_solves = %d, want 1", snap.RecoveredSolves)
	}
	waitFor(t, 30*time.Second, func() bool {
		e, ok := srv.cache.get(key)
		return ok && e.tier == serial.QualityOptimal
	})
	if snap := srv.Stats(); snap.Upgrades != 1 || snap.StoreWrites != 1 {
		t.Fatalf("upgrades=%d store_writes=%d, want 1/1", snap.Upgrades, snap.StoreWrites)
	}
	if _, err := st.LoadCheckpoint(key); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("completed recovery left its checkpoint behind: %v", err)
	}
	if se, err := st.LoadEntry(key); err != nil || se.Tier != serial.QualityOptimal {
		t.Fatalf("recovered solve not persisted optimal: %+v, %v", se, err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestStoreStaleCheckpointDropped: a checkpoint whose digest already has
// an optimal entry on disk is leftover from a crash between the final
// persist and the checkpoint cleanup; recovery deletes it instead of
// re-solving.
func TestStoreStaleCheckpointDropped(t *testing.T) {
	st := testStore(t)
	spec := ladderSpec(t)
	key := spec.Digest()
	srvA, e := interruptedSolve(t, st, spec)
	e.tier = serial.QualityOptimal
	e.state = nil
	srvA.persistEntry(key, spec, e)
	// persistEntry of an optimal entry already deletes the checkpoint;
	// recreate one to model the crash-between-steps window.
	ck := &serial.StoredCheckpoint{Spec: *spec, Rounds: 1, State: *storedStateFrom(mustState(t, srvA, spec))}
	if err := st.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}

	srvB := New(context.Background(), Config{Store: st})
	if snap := srvB.Stats(); snap.RecoveredSolves != 0 {
		t.Fatalf("recovered_solves = %d, want 0 for a stale checkpoint", snap.RecoveredSolves)
	}
	if _, err := st.LoadCheckpoint(key); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("stale checkpoint survived recovery: %v", err)
	}
}

// mustState runs a quick interrupted solve and returns its column pool.
func mustState(t *testing.T, srv *Server, spec *serial.SolveSpec) *core.CGState {
	t.Helper()
	pr, err := srv.buildProblem(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SolveCG(pr, core.CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res.State
}

// TestStoreCorruptSnapshotDegradesToResolve: corruption discovered on
// the load path costs exactly one cold solve — counted, quarantined,
// and healed by the re-solve's persist. Never an error to the client,
// never a served mechanism.
func TestStoreCorruptSnapshotDegradesToResolve(t *testing.T) {
	st := testStore(t)
	srv := New(context.Background(), Config{Store: st, DisableUpgrade: true})
	ctr := &solveCounter{counts: map[string]int{}, tb: t}
	ctr.install(srv)
	spec := testSpecs(t, 1)[0]
	key := spec.Digest()

	// Plant the corruption after New so the startup scan cannot clean it.
	if err := os.WriteFile(filepath.Join(st.Dir(), key+".mech"), []byte("torn to shreds"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, _, err := srv.mechanismFor(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	assertServable(t, e)
	if got := ctr.count(key); got != 1 {
		t.Fatalf("corrupt snapshot triggered %d solves, want 1", got)
	}
	snap := srv.Stats()
	if snap.StoreLoadErrors != 1 || snap.CorruptQuarantined != 1 {
		t.Fatalf("store_load_errors=%d corrupt_quarantined=%d, want 1/1",
			snap.StoreLoadErrors, snap.CorruptQuarantined)
	}
	// The re-solve's persist healed the snapshot.
	if _, err := st.LoadEntry(key); err != nil {
		t.Fatalf("snapshot not healed by re-solve: %v", err)
	}
	// Startup-scan path: a corrupt file present before New is quarantined
	// during recovery and counted there.
	if err := os.WriteFile(filepath.Join(st.Dir(), testSpecs(t, 2)[1].Digest()+".mech"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv2 := New(context.Background(), Config{Store: st, DisableUpgrade: true})
	if snap := srv2.Stats(); snap.CorruptQuarantined != 1 {
		t.Fatalf("startup scan corrupt_quarantined = %d, want 1", snap.CorruptQuarantined)
	}
}

// TestChaosStoreFaults arms the store's fault sites under live traffic:
// a failing disk costs durability (and is visible in the counters), but
// never availability and never a privacy-violating mechanism.
func TestChaosStoreFaults(t *testing.T) {
	defer faultinject.Reset()
	st := testStore(t)
	srv := New(context.Background(), Config{Store: st, DisableUpgrade: true})
	ctr := &solveCounter{counts: map[string]int{}, tb: t}
	ctr.install(srv)
	specs := testSpecs(t, 2)

	// Entry persistence dies at every commit step; serving must not care.
	for _, site := range []string{store.FaultSiteWrite, store.FaultSiteShortWrite, store.FaultSiteFsync, store.FaultSiteRename} {
		faultinject.Set(site, faultinject.Fault{Err: errors.New("injected " + site), Times: 1})
		e, _, err := srv.mechanismFor(context.Background(), specs[0])
		if err != nil {
			t.Fatalf("%s armed: serving failed: %v", site, err)
		}
		assertServable(t, e)
		faultinject.Clear(site)
		// Evict by hand so the next request is a fresh miss.
		srv.cache = newMechCache(srv.cfg.CacheSize)
	}
	if snap := srv.Stats(); snap.StoreWrites != 0 {
		t.Fatalf("store_writes = %d with every commit faulted, want 0", snap.StoreWrites)
	}

	// Faults cleared: the next miss persists, and a transient read fault
	// neither loses the snapshot nor reaches the client.
	if _, _, err := srv.mechanismFor(context.Background(), specs[1]); err != nil {
		t.Fatal(err)
	}
	if snap := srv.Stats(); snap.StoreWrites != 1 {
		t.Fatalf("store_writes = %d after faults cleared, want 1", snap.StoreWrites)
	}
	srv.cache = newMechCache(srv.cfg.CacheSize)
	faultinject.Set(store.FaultSiteRead, faultinject.Fault{Err: errors.New("disk hiccup"), Times: 1})
	e, _, err := srv.mechanismFor(context.Background(), specs[1])
	if err != nil {
		t.Fatalf("read fault reached the client: %v", err)
	}
	assertServable(t, e)
	snap := srv.Stats()
	if snap.StoreLoadErrors != 1 || snap.CorruptQuarantined != 0 {
		t.Fatalf("store_load_errors=%d corrupt_quarantined=%d after read fault, want 1/0",
			snap.StoreLoadErrors, snap.CorruptQuarantined)
	}
	srv.cache = newMechCache(srv.cfg.CacheSize)
	if _, _, err := srv.mechanismFor(context.Background(), specs[1]); err != nil {
		t.Fatal(err)
	}
	if snap := srv.Stats(); snap.StoreLoads != 1 {
		t.Fatalf("snapshot lost after transient read fault: store_loads = %d, want 1", snap.StoreLoads)
	}
}

// TestChaosCheckpointServeRace runs a checkpointing solve while other
// goroutines hammer the cache, the stats endpoint and the sampler; under
// -race this is the checkpoint-vs-serve data-race check.
func TestChaosCheckpointServeRace(t *testing.T) {
	st := testStore(t)
	srv := New(context.Background(), Config{
		Store:            st,
		CheckpointRounds: 1,
		DisableUpgrade:   true,
		SolveDeadline:    600 * time.Millisecond,
		CG:               core.CGOptions{Xi: -1e-9, RelGap: -1}, // keep generating columns until the deadline
	})
	spec := ladderSpec(t)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				srv.Stats()
				if e, ok := srv.cache.get(spec.Digest()); ok {
					ctx, cancel := context.WithTimeout(context.Background(), time.Second)
					_, _ = e.sample(ctx, e.prob.Part.WithRelativeLoc(0, 0.5))
					cancel()
				}
			}
		}()
	}
	e, _, err := srv.mechanismFor(context.Background(), spec)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertServable(t, e)
	if snap := srv.Stats(); snap.CheckpointWrites == 0 {
		t.Fatal("no checkpoints written during the contested solve")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

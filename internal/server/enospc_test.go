package server

import (
	"context"
	"fmt"
	"syscall"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/store"
)

// TestStoreWriteShedOnENOSPC: a full disk must never fail a request.
// While the store reports ENOSPC, entry persists fail (counted as
// shed, latching degradation), checkpoint writes are shed without
// touching the disk at all, and serving continues untouched; when
// space returns the first successful persist clears the latch and
// durability resumes — no restart, no operator action.
func TestStoreWriteShedOnENOSPC(t *testing.T) {
	defer faultinject.Reset()
	st := testStore(t)
	srv := New(context.Background(), Config{Store: st, DisableUpgrade: true})
	defer srv.Shutdown(context.Background())
	specs := testSpecs(t, 3)

	// Healthy baseline: the first solve persists.
	if _, _, err := srv.mechanismFor(context.Background(), specs[0]); err != nil {
		t.Fatal(err)
	}
	if snap := srv.Stats(); snap.StoreWrites != 1 || snap.StoreWriteShed != 0 {
		t.Fatalf("baseline: store_writes=%d shed=%d, want 1/0", snap.StoreWrites, snap.StoreWriteShed)
	}

	// Disk fills: every store write now fails with ENOSPC.
	faultinject.Set(store.FaultSiteWrite, faultinject.Fault{
		Err: fmt.Errorf("no space left on device: %w", syscall.ENOSPC),
	})

	// The request is served anyway — same solve, same Geo-I gate — and
	// the failed persist is counted and latches degradation.
	e, cached, err := srv.mechanismFor(context.Background(), specs[1])
	if err != nil {
		t.Fatalf("request during ENOSPC failed: %v", err)
	}
	if cached {
		t.Fatal("unexpected cache hit")
	}
	assertServable(t, e)
	snap := srv.Stats()
	if snap.StoreWrites != 1 {
		t.Fatalf("store_writes=%d during ENOSPC, want 1", snap.StoreWrites)
	}
	if snap.StoreWriteShed == 0 {
		t.Fatal("failed persist not counted in store_write_shed")
	}
	if !srv.storeDegraded.Load() {
		t.Fatal("ENOSPC did not latch store degradation")
	}

	// While degraded, checkpoints shed before any I/O: even with the
	// write fault still armed nothing reaches the store.
	shedBefore := snap.StoreWriteShed
	state := mustState(t, srv, specs[2])
	srv.writeCheckpoint(specs[2], 1, state)
	snap = srv.Stats()
	if snap.CheckpointWrites != 0 {
		t.Fatalf("checkpoint committed while degraded: %d", snap.CheckpointWrites)
	}
	if snap.StoreWriteShed != shedBefore+1 {
		t.Fatalf("shed=%d after checkpoint, want %d", snap.StoreWriteShed, shedBefore+1)
	}

	// Space returns: the next entry persist doubles as the probe, lands,
	// clears the latch, and checkpoints flow again.
	faultinject.Clear(store.FaultSiteWrite)
	if _, _, err := srv.mechanismFor(context.Background(), specs[2]); err != nil {
		t.Fatal(err)
	}
	snap = srv.Stats()
	if snap.StoreWrites != 2 {
		t.Fatalf("store_writes=%d after recovery, want 2", snap.StoreWrites)
	}
	if srv.storeDegraded.Load() {
		t.Fatal("degradation latch survived a successful persist")
	}
	srv.writeCheckpoint(specs[2], 2, state)
	if snap = srv.Stats(); snap.CheckpointWrites != 1 {
		t.Fatalf("checkpoint_writes=%d after recovery, want 1", snap.CheckpointWrites)
	}

	// The recovered snapshot is really on disk.
	if _, err := st.LoadEntry(specs[2].Digest()); err != nil {
		t.Fatalf("post-recovery snapshot unreadable: %v", err)
	}
}

// TestStoreWriteShedNonENOSPCDoesNotLatch: other write failures stay
// best-effort one-offs — no latch, so the next checkpoint still tries.
func TestStoreWriteShedNonENOSPCDoesNotLatch(t *testing.T) {
	defer faultinject.Reset()
	st := testStore(t)
	srv := New(context.Background(), Config{Store: st, DisableUpgrade: true})
	defer srv.Shutdown(context.Background())
	spec := testSpecs(t, 1)[0]

	faultinject.Set(store.FaultSiteWrite, faultinject.Fault{
		Err: fmt.Errorf("transient I/O error"), Times: 1,
	})
	if _, _, err := srv.mechanismFor(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	snap := srv.Stats()
	if snap.StoreWriteShed != 0 {
		t.Fatalf("transient failure counted as shed: %d", snap.StoreWriteShed)
	}
	if srv.storeDegraded.Load() {
		t.Fatal("transient failure latched degradation")
	}
}
